/// The Curation pattern (§1.1): a team collectively maintains a canonical
/// dataset (think of OpenStreetMap-style points of interest). Curators
/// stage fixes on development branches and land them back into the
/// mainline; Decibel's field-level three-way merge reconciles
/// non-overlapping edits automatically and resolves true conflicts by
/// precedence.
///
/// Table: pk, lat, lon, category, open_hours

#include <cstdio>

#include "common/io.h"
#include "core/decibel.h"

using namespace decibel;

namespace {

Record Poi(const Schema& schema, int64_t pk, int32_t lat, int32_t lon,
           int32_t category, int32_t hours) {
  Record rec(&schema);
  rec.SetPk(pk);
  rec.SetInt32(1, lat);
  rec.SetInt32(2, lon);
  rec.SetInt32(3, category);
  rec.SetInt32(4, hours);
  return rec;
}

void Show(Decibel* db, BranchId branch, int64_t pk, const char* label) {
  auto it = db->NewScan(ScanSpec::Branch(branch));
  ScanRow row;
  while ((*it)->Next(&row)) {
    const RecordRef& rec = row.record;
    if (rec.pk() == pk) {
      printf("  %-22s pk=%lld lat=%d lon=%d cat=%d hours=%d\n", label,
             static_cast<long long>(pk), rec.GetInt32(1), rec.GetInt32(2),
             rec.GetInt32(3), rec.GetInt32(4));
      return;
    }
  }
  printf("  %-22s pk=%lld <deleted>\n", label, static_cast<long long>(pk));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/decibel_curation";
  RemoveDirRecursive(path).ok();
  auto schema = Schema::Make({{"pk", FieldType::kInt64, 0},
                              {"lat", FieldType::kInt32, 0},
                              {"lon", FieldType::kInt32, 0},
                              {"category", FieldType::kInt32, 0},
                              {"hours", FieldType::kInt32, 0}});
  auto db = Decibel::Open(path, *schema, DecibelOptions{}).MoveValueUnsafe();

  // The canonical map.
  db->InsertInto(kMasterBranch, Poi(*schema, 100, 52520, 13405, 1, 9)).ok();
  db->InsertInto(kMasterBranch, Poi(*schema, 101, 52516, 13377, 2, 24)).ok();
  db->InsertInto(kMasterBranch, Poi(*schema, 102, 52500, 13420, 3, 8)).ok();
  db->CommitBranch(kMasterBranch).ok();

  // Curator 1: a development branch fixing geometry (lat/lon only).
  Session s = db->NewSession();
  const BranchId geometry = *db->Branch("fix/geometry", &s);
  db->UpdateIn(geometry, Poi(*schema, 100, 52521, 13406, 1, 9)).ok();
  db->UpdateIn(geometry, Poi(*schema, 101, 52517, 13378, 2, 24)).ok();

  // Curator 2: a parallel branch updating metadata (category/hours only),
  // plus a new point of interest and a removal.
  db->Use(&s, kMasterBranch).ok();
  const BranchId metadata = *db->Branch("fix/metadata", &s);
  db->UpdateIn(metadata, Poi(*schema, 100, 52520, 13405, 1, 22)).ok();
  db->InsertInto(metadata, Poi(*schema, 103, 52490, 13350, 1, 12)).ok();
  db->DeleteFrom(metadata, 102).ok();

  // Meanwhile the mainline itself gets an edit that will conflict with
  // curator 2: both change the opening hours of pk 100.
  db->UpdateIn(kMasterBranch, Poi(*schema, 100, 52520, 13405, 1, 10)).ok();

  printf("before the merges:\n");
  Show(db.get(), kMasterBranch, 100, "mainline");
  Show(db.get(), geometry, 100, "fix/geometry");
  Show(db.get(), metadata, 100, "fix/metadata");

  // Land the geometry branch: its lat/lon edits touch different fields
  // than mainline's hours edit, so everything auto-merges.
  auto merge1 = db->Merge(kMasterBranch, geometry,
                          MergePolicy::kThreeWayLeft);
  printf("\nlanded fix/geometry: %llu conflicts, %llu field merges\n",
         static_cast<unsigned long long>(merge1->result.conflicts),
         static_cast<unsigned long long>(merge1->result.field_merges));
  Show(db.get(), kMasterBranch, 100, "mainline");

  // Land the metadata branch: hours of pk 100 now conflict (changed to 10
  // on mainline, 22 on the branch). Precedence decides; mainline wins
  // with kThreeWayLeft.
  auto merge2 = db->Merge(kMasterBranch, metadata,
                          MergePolicy::kThreeWayLeft);
  printf("\nlanded fix/metadata: %llu conflicts (mainline kept its hours)\n",
         static_cast<unsigned long long>(merge2->result.conflicts));
  Show(db.get(), kMasterBranch, 100, "mainline");
  Show(db.get(), kMasterBranch, 102, "mainline");
  Show(db.get(), kMasterBranch, 103, "mainline");

  printf("\nversion graph:\n");
  for (const BranchInfo& b : db->graph().branches()) {
    printf("  branch %u '%s' head=%llu%s\n", b.id, b.name.c_str(),
           static_cast<unsigned long long>(b.head),
           b.active ? "" : " (retired)");
  }
  return 0;
}
