/// Quickstart: the transaction-centric Decibel API in one sitting.
///
/// Creates a dataset, loads it through a multi-statement transaction,
/// commits a version, branches it, makes diverging edits (one per-record,
/// one transactional), reads through ScanSpec cursors (predicate and
/// projection pushed into the engine) and point lookups, inspects the
/// diff, merges the branch back with a field-level three-way merge, and
/// shows the abort-and-retry discipline for lock-timeout Status::Aborted
/// — the core loop of §2.2.3.
///
///   $ ./quickstart [db_path]

#include <cstdio>

#include "common/io.h"
#include "core/decibel.h"

using namespace decibel;

namespace {

void PrintBranch(Decibel* db, BranchId branch, const char* label) {
  printf("--- %s ---\n", label);
  auto cursor = db->NewScan(ScanSpec::Branch(branch));
  if (!cursor.ok()) {
    printf("error: %s\n", cursor.status().ToString().c_str());
    return;
  }
  ScanRow row;
  while ((*cursor)->Next(&row)) {
    printf("  pk=%lld  qty=%d  price=%d\n",
           static_cast<long long>(row.record.pk()), row.record.GetInt32(1),
           row.record.GetInt32(2));
  }
}

Record Item(const Schema& schema, int64_t pk, int32_t qty, int32_t price) {
  Record rec(&schema);
  rec.SetPk(pk);
  rec.SetInt32(1, qty);
  rec.SetInt32(2, price);
  return rec;
}

/// The retry discipline for transactional commits: Status::Aborted means
/// the branch lock timed out (another transaction held it too long). The
/// staged batch is retained, so back off and Commit() again.
Status CommitWithRetry(Transaction* txn, int max_attempts = 3) {
  Status status = txn->Commit();
  for (int attempt = 1; status.IsAborted() && attempt < max_attempts;
       ++attempt) {
    printf("commit aborted (%s); retrying...\n",
           status.ToString().c_str());
    status = txn->Commit();
  }
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/decibel_quickstart";
  RemoveDirRecursive(path).ok();

  // A tiny product table: pk, quantity, price.
  auto schema = Schema::Make({{"pk", FieldType::kInt64, 0},
                              {"qty", FieldType::kInt32, 0},
                              {"price", FieldType::kInt32, 0}});
  if (!schema.ok()) return 1;

  DecibelOptions options;
  options.engine = EngineType::kHybrid;  // the paper's winning engine
  auto db_result = Decibel::Open(path, *schema, options);
  if (!db_result.ok()) {
    fprintf(stderr, "open failed: %s\n",
            db_result.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(db_result).MoveValueUnsafe();

  // 1. Populate master inside one transaction: the three inserts stage
  // into a WriteBatch and become visible atomically on Commit(), applied
  // to the engine in a single pass under the branch lock.
  Session session = db->NewSession();
  {
    auto txn = db->Begin(&session);
    if (!txn.ok()) return 1;
    txn->Insert(Item(*schema, 1, 10, 100)).ok();
    txn->Insert(Item(*schema, 2, 5, 250)).ok();
    txn->Insert(Item(*schema, 3, 7, 40)).ok();
    if (!CommitWithRetry(&*txn).ok()) return 1;
  }
  const CommitId v1 = *db->Commit(&session);  // version snapshot
  printf("committed version %llu on master\n",
         static_cast<unsigned long long>(v1));

  // 2. Branch off and edit both sides. The restock edits form one atomic
  // transaction; the master price cut uses the per-record convenience
  // path (itself a one-op transaction under the hood).
  const BranchId restock = *db->Branch("restock", &session);
  {
    auto txn = db->Begin(restock);
    if (!txn.ok()) return 1;
    txn->Update(Item(*schema, 1, 50, 100)).ok();   // qty on branch
    txn->Insert(Item(*schema, 4, 12, 75)).ok();    // new item
    if (!CommitWithRetry(&*txn).ok()) return 1;
  }
  db->UpdateIn(kMasterBranch, Item(*schema, 1, 10, 90)).ok();  // price cut

  PrintBranch(db.get(), kMasterBranch, "master (price cut on pk 1)");
  PrintBranch(db.get(), restock, "restock (qty bump on pk 1, new pk 4)");

  // 2b. Reads are ScanSpec cursors: here a WHERE qty < 10, projected to
  // the qty column, pushed into the engine — non-matching rows never
  // leave the storage layer — plus a pk-index point lookup.
  {
    auto low = Predicate::Compare(*schema, "qty", CompareOp::kLt, 10);
    if (!low.ok()) return 1;
    auto cursor = db->NewScan(
        ScanSpec::Branch(restock).Where(*low).Project({1}));
    if (!cursor.ok()) {
      fprintf(stderr, "scan failed: %s\n",
              cursor.status().ToString().c_str());
      return 1;
    }
    printf("--- restock items with qty < 10 (pushed-down scan) ---\n");
    ScanRow row;
    while ((*cursor)->Next(&row)) {
      printf("  pk=%lld  qty=%d\n", static_cast<long long>(row.record.pk()),
             row.record.GetInt32(1));
    }
    auto item = db->Get(restock, 4);  // O(1) through the pk index
    if (item.ok()) {
      printf("point lookup pk=4: qty=%d price=%d\n",
             item->ref().GetInt32(1), item->ref().GetInt32(2));
    }
  }

  // 3. An abort: staged operations are discarded, nothing reaches the
  // branch. (Destroying an uncommitted transaction aborts it too.)
  {
    auto txn = db->Begin(restock);
    if (!txn.ok()) return 1;
    txn->Delete(4).ok();
    txn->Abort().ok();
    printf("aborted a staged delete; pk 4 survives on restock\n");
  }

  // 4. Positive diff: what does restock have that master lacks?
  printf("--- keys in restock missing from master ---\n");
  db->Diff(restock, kMasterBranch, DiffMode::kByKey,
           [](const RecordRef& rec) {
             printf("  pk=%lld\n", static_cast<long long>(rec.pk()));
           },
           nullptr)
      .ok();

  // 5. Merge: qty changed on the branch, price on master — disjoint
  // fields, so the three-way merge reconciles without conflicts.
  auto merged = db->Merge(kMasterBranch, restock,
                          MergePolicy::kThreeWayLeft);
  if (!merged.ok()) {
    fprintf(stderr, "merge failed: %s\n",
            merged.status().ToString().c_str());
    return 1;
  }
  printf("merge commit %llu: %llu records merged, %llu conflicts, "
         "%llu field-level merges\n",
         static_cast<unsigned long long>(merged->commit),
         static_cast<unsigned long long>(merged->result.merged_records),
         static_cast<unsigned long long>(merged->result.conflicts),
         static_cast<unsigned long long>(merged->result.field_merges));
  PrintBranch(db.get(), kMasterBranch,
              "master after merge (qty=50 AND price=90 on pk 1)");

  // 6. Time travel: the committed v1 is still intact. A session with a
  // historical checkout routes NewScan and Get to the commit view.
  Session historical = db->NewSession();
  db->Checkout(&historical, v1).ok();
  auto cursor = db->NewScan(historical);
  if (!cursor.ok()) return 1;
  int rows = 0;
  ScanRow row;
  while ((*cursor)->Next(&row)) ++rows;
  auto old_item = db->Get(historical, 1);
  printf("version %llu still has %d rows; pk 1 was qty=%d price=%d\n",
         static_cast<unsigned long long>(v1), rows,
         old_item.ok() ? old_item->ref().GetInt32(1) : -1,
         old_item.ok() ? old_item->ref().GetInt32(2) : -1);
  return 0;
}
