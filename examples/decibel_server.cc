/// The Decibel network server: one durable (or in-memory) Decibel
/// instance behind the TCP wire protocol (src/net/). Sessions run VQuel
/// statements; SUBSCRIBE pushes commit notifications.
///
///   $ ./decibel_server --data-dir /tmp/db --sync fsync --port 7447
///   decibel_server listening on 127.0.0.1:7447
///
/// --port 0 (the default) binds an ephemeral port; the "listening on"
/// line is machine-parseable, which is how the CI smoke script finds it.
/// SIGINT/SIGTERM shut down cleanly (drain sessions, flush).

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/decibel.h"
#include "net/server.h"

using namespace decibel;

namespace {

std::atomic<bool> g_stop{false};

void OnSignal(int) { g_stop.store(true); }

int Usage(const char* argv0) {
  fprintf(stderr,
          "usage: %s [--data-dir <path>] [--host <ip>] [--port <n>]\n"
          "          [--sync none|flush|fsync] [--threads <n>]\n"
          "A non-durable in-memory database is used without --data-dir.\n",
          argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string data_dir;
  net::ServerOptions net_opts;
  wal::SyncMode sync = wal::SyncMode::kFlush;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--data-dir" && value != nullptr) {
      data_dir = value;
      ++i;
    } else if (arg == "--host" && value != nullptr) {
      net_opts.host = value;
      ++i;
    } else if (arg == "--port" && value != nullptr) {
      net_opts.port = static_cast<uint16_t>(atoi(value));
      ++i;
    } else if (arg == "--threads" && value != nullptr) {
      net_opts.worker_threads = static_cast<size_t>(atoi(value));
      ++i;
    } else if (arg == "--sync" && value != nullptr) {
      if (strcmp(value, "none") == 0) {
        sync = wal::SyncMode::kNone;
      } else if (strcmp(value, "flush") == 0) {
        sync = wal::SyncMode::kFlush;
      } else if (strcmp(value, "fsync") == 0) {
        sync = wal::SyncMode::kFsync;
      } else {
        return Usage(argv[0]);
      }
      ++i;
    } else {
      return Usage(argv[0]);
    }
  }

  // The same benchmark schema the shell uses: pk, c1, c2.
  const Schema schema = Schema::MakeBenchmark(2);
  DecibelOptions options;
  std::string path = "/tmp/decibel_server";
  if (!data_dir.empty()) {
    path = data_dir;
    options.data_dir = data_dir;
    options.sync_mode = sync;
  }
  auto db = Decibel::Open(path, schema, options);
  if (!db.ok()) {
    fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    return 1;
  }

  auto server = net::Server::Start(db->get(), net_opts);
  if (!server.ok()) {
    fprintf(stderr, "server start failed: %s\n",
            server.status().ToString().c_str());
    return 1;
  }
  printf("decibel_server listening on %s:%u\n", net_opts.host.c_str(),
         static_cast<unsigned>((*server)->port()));
  fflush(stdout);

  signal(SIGINT, OnSignal);
  signal(SIGTERM, OnSignal);
  while (!g_stop.load()) usleep(50 * 1000);

  (*server)->Stop();
  return 0;
}
