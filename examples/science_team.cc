/// The Science pattern (§1.1): a data-science team works off an evolving
/// mainline dataset. Each analyst takes a private branch pinned to the
/// version they started from, cleans and re-labels records there, and can
/// always compare their view against the (still evolving) mainline —
/// without ever copying the dataset.
///
/// The "dataset" here is a toy user-activity table:
///   pk, score (model feature), label (cleaned annotation)

#include <cstdio>

#include "common/io.h"
#include "common/random.h"
#include "core/decibel.h"
#include "query/queries.h"

using namespace decibel;

namespace {

Record Row(const Schema& schema, int64_t pk, int32_t score, int32_t label) {
  Record rec(&schema);
  rec.SetPk(pk);
  rec.SetInt32(1, score);
  rec.SetInt32(2, label);
  return rec;
}

double AverageScore(Decibel* db, BranchId branch) {
  double sum = 0;
  uint64_t count = 0;
  auto stats = query::ScanVersion(db, branch, Predicate(),
                                  [&](const RecordRef& rec) {
                                    sum += rec.GetInt32(1);
                                    ++count;
                                  });
  if (!stats.ok() || count == 0) return 0;
  return sum / static_cast<double>(count);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/decibel_science";
  RemoveDirRecursive(path).ok();
  auto schema = Schema::Make({{"pk", FieldType::kInt64, 0},
                              {"score", FieldType::kInt32, 0},
                              {"label", FieldType::kInt32, 0}});
  auto db = Decibel::Open(path, *schema, DecibelOptions{}).MoveValueUnsafe();
  Random rng(7);

  // The mainline ingestion pipeline loads the first snapshot.
  for (int64_t pk = 0; pk < 500; ++pk) {
    db->InsertInto(kMasterBranch,
                   Row(*schema, pk, static_cast<int32_t>(rng.Uniform(100)),
                       /*label=*/0))
        .ok();
  }
  Session ingest = db->NewSession();
  const CommitId snapshot = *db->Commit(&ingest);
  printf("mainline snapshot at commit %llu, avg score %.2f\n",
         static_cast<unsigned long long>(snapshot),
         AverageScore(db.get(), kMasterBranch));

  // Analyst A branches to test a cleaning strategy: outliers re-scored.
  Session alice = db->NewSession();
  const BranchId cleaning = *db->Branch("alice/cleaning", &alice);
  db->Use(&alice, cleaning).ok();
  int cleaned = 0;
  {
    std::vector<Record> fixes;
    auto it = db->NewScan(ScanSpec::Branch(cleaning));
    ScanRow row;
    while ((*it)->Next(&row)) {
      if (row.record.GetInt32(1) > 90) {  // "improper capitalization"
        fixes.push_back(
            Row(*schema, row.record.pk(), 90, row.record.GetInt32(2)));
      }
    }
    // The whole cleaning pass is one transaction: either all outliers are
    // clipped or none are.
    auto txn = db->Begin(&alice);
    if (!txn.ok()) {
      fprintf(stderr, "begin failed: %s\n",
              txn.status().ToString().c_str());
      return 1;
    }
    for (const Record& fix : fixes) {
      txn->Update(fix).ok();
      ++cleaned;
    }
    Status committed = txn->Commit();
    while (committed.IsAborted()) committed = txn->Commit();  // retry
    if (!committed.ok()) {
      fprintf(stderr, "cleaning transaction failed: %s\n",
              committed.ToString().c_str());
      return 1;
    }
  }
  db->Commit(&alice).ok();
  printf("alice clipped %d outliers on her branch (avg %.2f)\n", cleaned,
         AverageScore(db.get(), cleaning));

  // Analyst B branches from the same historical snapshot — not from
  // today's mainline — to keep the training set frozen (§1.1: analysts
  // "limit themselves to the subset of data available when analysis
  // began").
  const BranchId labeling = *db->BranchAt("bob/labels", snapshot);
  for (int64_t pk = 0; pk < 500; pk += 5) {
    db->UpdateIn(labeling,
                 Row(*schema, pk, -1 /*overwritten below*/, 1))
        .ok();
  }
  // Oops — that clobbered scores. Bob re-reads his branch and repairs it
  // against the snapshot he branched from.
  {
    Session fix = db->NewSession();
    db->Checkout(&fix, snapshot).ok();
    auto it = db->NewScan(fix);
    ScanRow row;
    while ((*it)->Next(&row)) {
      if (row.record.pk() % 5 == 0) {
        db->UpdateIn(labeling, Row(*schema, row.record.pk(),
                                   row.record.GetInt32(1), 1))
            .ok();
      }
    }
  }
  db->CommitBranch(labeling).ok();

  // Meanwhile the mainline keeps ingesting.
  for (int64_t pk = 500; pk < 700; ++pk) {
    db->InsertInto(kMasterBranch,
                   Row(*schema, pk, static_cast<int32_t>(rng.Uniform(100)),
                       0))
        .ok();
  }
  db->CommitBranch(kMasterBranch).ok();

  // Each analyst can ask "what changed under me?" cheaply (Q2).
  uint64_t behind = 0;
  db->Diff(kMasterBranch, labeling, DiffMode::kByKey,
           [&](const RecordRef&) { ++behind; }, nullptr)
      .ok();
  printf("bob's frozen branch is %llu records behind mainline\n",
         static_cast<unsigned long long>(behind));

  // And the team lead can scan every active line of work at once (Q4).
  size_t heads = 0;
  uint64_t rows = 0;
  {
    auto it = db->NewScan(ScanSpec::Heads());
    if (it.ok()) {
      ScanRow row;
      while ((*it)->Next(&row)) ++rows;
      heads = (*it)->branches().size();
    }
  }
  printf("Q4 over %zu active branches touched %llu distinct records\n",
         heads, static_cast<unsigned long long>(rows));
  printf("final averages: mainline %.2f, alice %.2f, bob %.2f\n",
         AverageScore(db.get(), kMasterBranch),
         AverageScore(db.get(), cleaning),
         AverageScore(db.get(), labeling));
  return 0;
}
