/// Durable load driver for crash-recovery smoke testing.
///
/// `load` opens a database in fsync durability and streams records into
/// two branches, committing every few rows. After each acknowledged
/// commit it durably records the high-water mark in a sidecar progress
/// file. The process is designed to be SIGKILLed mid-load.
///
/// `verify` reopens the same directory — recovering from the manifest,
/// checkpoint, and WAL tail — and checks that every record up to the
/// acknowledged high-water mark survived, on the right branch, with the
/// right values.
///
///   $ ./durable_load load <dir> [num_records]     # kill -9 me
///   $ ./durable_load verify <dir>                 # exit 0 iff intact
///
/// The CI release job runs exactly this pair around a SIGKILL.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/io.h"
#include "core/decibel.h"

using namespace decibel;

namespace {

Record Row(const Schema& schema, int64_t pk, int32_t value) {
  Record rec(&schema);
  rec.SetPk(pk);
  for (size_t c = 1; c < schema.num_columns(); ++c) {
    rec.SetInt32(c, value);
  }
  return rec;
}

DecibelOptions LoadOptions(const std::string& dir) {
  DecibelOptions options;
  options.data_dir = dir;
  options.sync_mode = wal::SyncMode::kFsync;
  options.page_size = 1 << 16;
  // Checkpoint aggressively so a kill lands between checkpoints too.
  options.checkpoint_interval_bytes = 1 << 20;
  return options;
}

std::string ProgressPath(const std::string& dir) { return dir + ".progress"; }

int RunLoad(const std::string& dir, int num_records) {
  auto db = Decibel::Open(dir, Schema::MakeBenchmark(3), LoadOptions(dir));
  if (!db.ok()) {
    fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  auto dev = (*db)->BranchAt("dev", (*db)->graph().Head(kMasterBranch));
  if (!dev.ok()) {
    fprintf(stderr, "branch failed: %s\n", dev.status().ToString().c_str());
    return 1;
  }
  for (int i = 0; i < num_records; ++i) {
    const BranchId target = (i % 2 == 0) ? kMasterBranch : *dev;
    Status s = (*db)->InsertInto(target, Row((*db)->schema(), i, i));
    if (!s.ok()) {
      fprintf(stderr, "insert %d failed: %s\n", i, s.ToString().c_str());
      return 1;
    }
    if (i % 8 == 7) {
      auto c1 = (*db)->CommitBranch(kMasterBranch);
      auto c2 = (*db)->CommitBranch(*dev);
      if (!c1.ok() || !c2.ok()) {
        fprintf(stderr, "commit at %d failed\n", i);
        return 1;
      }
      // Both commits are acknowledged: record the high-water mark with
      // the same durability the commits themselves have.
      s = AtomicWriteFile(ProgressPath(dir), std::to_string(i),
                          /*sync=*/true);
      if (!s.ok()) {
        fprintf(stderr, "progress write failed: %s\n", s.ToString().c_str());
        return 1;
      }
      if (i % 256 == 255) {
        printf("acked %d\n", i);
        fflush(stdout);
      }
    }
  }
  printf("load complete: %d records\n", num_records);
  return 0;
}

int RunVerify(const std::string& dir) {
  auto note = ReadFileToString(ProgressPath(dir));
  if (!note.ok()) {
    fprintf(stderr, "no progress file: %s\n", note.status().ToString().c_str());
    return 1;
  }
  const int acked = std::atoi(note->c_str());
  auto db = Decibel::Open(dir, LoadOptions(dir));
  if (!db.ok()) {
    fprintf(stderr, "reopen failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  auto dev = (*db)->graph().FindBranchByName("dev");
  if (!dev.ok()) {
    fprintf(stderr, "branch 'dev' lost\n");
    return 1;
  }
  int verified = 0;
  for (int i = 0; i <= acked; ++i) {
    const BranchId target = (i % 2 == 0) ? kMasterBranch : *dev;
    auto rec = (*db)->Get(target, i);
    if (!rec.ok()) {
      fprintf(stderr, "record %d lost: %s\n", i,
              rec.status().ToString().c_str());
      return 1;
    }
    if (rec->ref().GetInt32(1) != i) {
      fprintf(stderr, "record %d corrupt: got %d\n", i,
              rec->ref().GetInt32(1));
      return 1;
    }
    ++verified;
  }
  printf("verified %d acknowledged records across 2 branches (acked=%d)\n",
         verified, acked);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    fprintf(stderr, "usage: %s load <dir> [num_records] | verify <dir>\n",
            argv[0]);
    return 2;
  }
  const std::string mode = argv[1];
  const std::string dir = argv[2];
  if (mode == "load") {
    const int n = argc > 3 ? std::atoi(argv[3]) : 100000;
    return RunLoad(dir, n);
  }
  if (mode == "verify") {
    return RunVerify(dir);
  }
  fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
  return 2;
}
