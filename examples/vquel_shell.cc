/// A tiny interactive shell for the VQuel-flavoured query language (§2.3):
/// pipe statements in, or run with no stdin redirection for a REPL. With
/// no input at all it executes a short demo script.
///
///   $ ./vquel_shell /tmp/mydb
///   vquel> INSERT master 1 10 20
///   vquel> BRANCH dev FROM master
///   vquel> SCAN dev WHERE c1 > 5
///   vquel> MERGE master dev THREEWAY LEFT

#include <unistd.h>

#include <cstdio>
#include <iostream>
#include <string>

#include "common/io.h"
#include "core/decibel.h"
#include "query/vquel.h"

using namespace decibel;

namespace {

const char* kDemo[] = {
    "INSERT master 1 10 100",
    "INSERT master 2 20 200",
    "COMMIT master",
    "BRANCH dev FROM master",
    "BEGIN dev",
    "UPDATE dev 1 11 100",
    "INSERT dev 3 30 300",
    "SCAN dev",  // staged ops are invisible until COMMIT TX
    "COMMIT TX",
    "SCAN dev",
    "BEGIN dev",
    "DELETE dev 3",
    "ABORT",
    "SCAN dev",  // pk 3 survives the aborted delete
    "SELECT pk, c1 FROM dev WHERE c1 > 10 LIMIT 5",  // pushed-down cursor
    "DIFF dev master",
    "JOIN master dev WHERE c1 > 5",
    "MERGE master dev THREEWAY LEFT",
    "SCAN master",
    "HEADS",
    "BRANCHES",
    "LOG master",
};

void RunOne(vquel::Interpreter* interp, const std::string& line, bool echo) {
  if (line.empty() || line[0] == '#') return;
  if (echo) printf("vquel> %s\n", line.c_str());
  auto result = interp->Execute(line);
  if (result.ok()) {
    printf("%s\n", result->output.c_str());
  } else {
    printf("error: %s\n", result.status().ToString().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/decibel_vquel";
  if (argc <= 1) RemoveDirRecursive(path).ok();

  // pk + two int columns; adjust to taste.
  const Schema schema = Schema::MakeBenchmark(2);
  auto db_result = Decibel::Open(path, schema, DecibelOptions{});
  if (!db_result.ok()) {
    fprintf(stderr, "open failed: %s\n",
            db_result.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(db_result).MoveValueUnsafe();
  vquel::Interpreter interp(db.get());

  if (isatty(STDIN_FILENO)) {
    printf("Decibel VQuel shell — schema: pk, c1, c2. Ctrl-D to exit.\n");
    std::string line;
    while (true) {
      fputs(interp.in_transaction() ? "vquel(tx)> " : "vquel> ", stdout);
      fflush(stdout);
      if (!std::getline(std::cin, line)) break;
      RunOne(&interp, line, /*echo=*/false);
    }
    printf("\n");
    return 0;
  }

  // Piped input, or the built-in demo when stdin is empty.
  std::string line;
  bool any = false;
  while (std::getline(std::cin, line)) {
    any = true;
    RunOne(&interp, line, /*echo=*/true);
  }
  if (!any) {
    for (const char* statement : kDemo) {
      RunOne(&interp, statement, /*echo=*/true);
    }
  }
  return 0;
}
