/// A tiny interactive shell for the VQuel-flavoured query language (§2.3):
/// pipe statements in, or run with no stdin redirection for a REPL. With
/// no input at all it executes a short demo script.
///
///   $ ./vquel_shell --data-dir /tmp/mydb         # durable, in-process
///   $ ./vquel_shell --connect 127.0.0.1:7447     # against decibel_server
///   vquel> INSERT master 1 10 20
///   vquel> BRANCH dev FROM master
///   vquel> SCAN dev WHERE c1 > 5
///   vquel> MERGE master dev THREEWAY LEFT
///
/// Scripted (piped) runs exit nonzero if any statement fails, so CI can
/// assert on them. In client mode the extra directive
///   \wait-notify <ms>
/// blocks for one commit notification (after SUBSCRIBE) and fails the
/// script if none arrives in time.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "common/io.h"
#include "core/decibel.h"
#include "net/client.h"
#include "query/vquel.h"

using namespace decibel;

namespace {

const char* kDemo[] = {
    "INSERT master 1 10 100",
    "INSERT master 2 20 200",
    "COMMIT master",
    "BRANCH dev FROM master",
    "BEGIN dev",
    "UPDATE dev 1 11 100",
    "INSERT dev 3 30 300",
    "SCAN dev",  // staged ops are invisible until COMMIT TX
    "COMMIT TX",
    "SCAN dev",
    "BEGIN dev",
    "DELETE dev 3",
    "ABORT",
    "SCAN dev",  // pk 3 survives the aborted delete
    "SELECT pk, c1 FROM dev WHERE c1 > 10 LIMIT 5",  // pushed-down cursor
    "DIFF dev master",
    "JOIN master dev WHERE c1 > 5",
    "MERGE master dev THREEWAY LEFT",
    "SCAN master",
    "HEADS",
    "BRANCHES",
    "LOG master",
    "INFO",
};

/// In-process interpreter or remote client — one of the two is set.
struct Shell {
  vquel::Interpreter* interp = nullptr;
  net::Client* client = nullptr;

  /// Executes one line; prints the result; returns false on error.
  bool Run(const std::string& line, bool echo) {
    if (line.empty() || line[0] == '#') return true;
    if (echo) printf("vquel> %s\n", line.c_str());
    if (line.rfind("\\wait-notify", 0) == 0) {
      if (client == nullptr) {
        printf("error: \\wait-notify needs --connect\n");
        return false;
      }
      const int ms = atoi(line.c_str() + strlen("\\wait-notify"));
      auto note = client->WaitNotification(ms > 0 ? ms : 5000);
      if (!note.ok()) {
        printf("error: %s\n", note.status().ToString().c_str());
        return false;
      }
      PrintNote(*note);
      return true;
    }
    if (client != nullptr) {
      auto wr = client->Execute(line);
      if (!wr.ok()) {  // connection-level failure
        printf("error: %s\n", wr.status().ToString().c_str());
        return false;
      }
      // Notifications that arrived interleaved with the response.
      net::Notification note;
      while (client->PollNotification(&note)) PrintNote(note);
      if (!wr->ok()) {
        printf("error: %s\n", wr->ToStatus().ToString().c_str());
        return false;
      }
      printf("%s\n", wr->output.c_str());
      return true;
    }
    auto result = interp->Execute(line);
    if (!result.ok()) {
      printf("error: %s\n", result.status().ToString().c_str());
      return false;
    }
    printf("%s\n", result->output.c_str());
    return true;
  }

  bool in_transaction() const {
    return interp != nullptr && interp->in_transaction();
  }

  static void PrintNote(const net::Notification& note) {
    printf("notify: %s on branch %s (%u): commit %llu, %llu records\n",
           note.merge ? "merge" : "commit", note.branch_name.c_str(),
           static_cast<unsigned>(note.branch),
           static_cast<unsigned long long>(note.commit),
           static_cast<unsigned long long>(note.records));
  }
};

int Usage(const char* argv0) {
  fprintf(stderr,
          "usage: %s [--data-dir <path> | --connect <host:port>] [<path>]\n",
          argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string data_dir;
  std::string connect;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--data-dir" && value != nullptr) {
      data_dir = value;
      ++i;
    } else if (arg == "--connect" && value != nullptr) {
      connect = value;
      ++i;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage(argv[0]);
    } else {
      path = arg;  // legacy positional path (non-durable)
    }
  }

  Shell shell;
  std::unique_ptr<Decibel> db;
  std::optional<net::Client> client;
  std::optional<vquel::Interpreter> interp;

  if (!connect.empty()) {
    const size_t colon = connect.rfind(':');
    if (colon == std::string::npos) return Usage(argv[0]);
    const std::string host = connect.substr(0, colon);
    const int port = atoi(connect.c_str() + colon + 1);
    auto connected =
        net::Client::Connect(host, static_cast<uint16_t>(port));
    if (!connected.ok()) {
      fprintf(stderr, "connect failed: %s\n",
              connected.status().ToString().c_str());
      return 1;
    }
    client.emplace(std::move(connected).MoveValueUnsafe());
    shell.client = &*client;
  } else {
    DecibelOptions options;
    if (!data_dir.empty()) {
      path = data_dir;
      options.data_dir = data_dir;
    } else if (path.empty()) {
      path = "/tmp/decibel_vquel";
      RemoveDirRecursive(path).ok();  // scratch database, start fresh
    }
    // pk + two int columns; adjust to taste.
    const Schema schema = Schema::MakeBenchmark(2);
    auto db_result = Decibel::Open(path, schema, options);
    if (!db_result.ok()) {
      fprintf(stderr, "open failed: %s\n",
              db_result.status().ToString().c_str());
      return 1;
    }
    db = std::move(db_result).MoveValueUnsafe();
    interp.emplace(db.get());
    shell.interp = &*interp;
  }

  if (isatty(STDIN_FILENO)) {
    printf("Decibel VQuel shell — schema: pk, c1, c2. Ctrl-D to exit.\n");
    std::string line;
    while (true) {
      fputs(shell.in_transaction() ? "vquel(tx)> " : "vquel> ", stdout);
      fflush(stdout);
      if (!std::getline(std::cin, line)) break;
      shell.Run(line, /*echo=*/false);
    }
    printf("\n");
    return 0;
  }

  // Piped input, or the built-in demo when stdin is empty. Scripts exit
  // nonzero when any statement fails.
  std::string line;
  bool any = false;
  int failures = 0;
  while (std::getline(std::cin, line)) {
    any = true;
    if (!shell.Run(line, /*echo=*/true)) ++failures;
  }
  if (!any) {
    for (const char* statement : kDemo) {
      if (!shell.Run(statement, /*echo=*/true)) ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
