/// Unit and property tests for the bitmap machinery: the growable Bitmap,
/// both BitmapIndex orientations, and the XOR-delta commit history.

#include <gtest/gtest.h>

#include <vector>

#include "bitmap/bitmap.h"
#include "bitmap/bitmap_index.h"
#include "bitmap/commit_history.h"
#include "common/random.h"
#include "test_util.h"

namespace decibel {
namespace {

using testing_util::ScratchDir;

// ------------------------------------------------------------------ Bitmap

TEST(BitmapTest, SetTestReset) {
  Bitmap b;
  EXPECT_FALSE(b.Test(0));
  b.Set(5);
  b.Set(64);
  b.Set(1000);
  EXPECT_TRUE(b.Test(5));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(1000));
  EXPECT_FALSE(b.Test(6));
  EXPECT_EQ(b.Count(), 3u);
  b.Reset(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(BitmapTest, TestPastEndIsFalse) {
  Bitmap b(10);
  EXPECT_FALSE(b.Test(100000));
  b.Reset(100000);  // no-op, no growth
  EXPECT_EQ(b.size(), 10u);
}

TEST(BitmapTest, AlgebraZeroExtends) {
  Bitmap a, b;
  a.Set(1);
  a.Set(100);
  b.Set(1);
  b.Set(500);

  Bitmap or_ab = Bitmap::Or(a, b);
  EXPECT_TRUE(or_ab.Test(1));
  EXPECT_TRUE(or_ab.Test(100));
  EXPECT_TRUE(or_ab.Test(500));

  Bitmap and_ab = Bitmap::And(a, b);
  EXPECT_TRUE(and_ab.Test(1));
  EXPECT_FALSE(and_ab.Test(100));
  EXPECT_FALSE(and_ab.Test(500));

  Bitmap xor_ab = Bitmap::Xor(a, b);
  EXPECT_FALSE(xor_ab.Test(1));
  EXPECT_TRUE(xor_ab.Test(100));
  EXPECT_TRUE(xor_ab.Test(500));

  Bitmap diff = Bitmap::AndNot(a, b);
  EXPECT_FALSE(diff.Test(1));
  EXPECT_TRUE(diff.Test(100));
  EXPECT_FALSE(diff.Test(500));
}

TEST(BitmapTest, EqualityUpToZeroExtension) {
  Bitmap a(10), b(1000);
  a.Set(3);
  b.Set(3);
  EXPECT_TRUE(a == b);
  b.Set(999);
  EXPECT_FALSE(a == b);
}

TEST(BitmapTest, NextSetAndIteration) {
  Bitmap b;
  const std::vector<uint64_t> bits = {0, 63, 64, 65, 128, 1000, 4095};
  for (uint64_t i : bits) b.Set(i);
  std::vector<uint64_t> seen;
  for (uint64_t i = b.NextSet(0); i != UINT64_MAX; i = b.NextSet(i + 1)) {
    seen.push_back(i);
  }
  EXPECT_EQ(seen, bits);
  std::vector<uint64_t> cb;
  b.ForEachSet([&](uint64_t i) { cb.push_back(i); });
  EXPECT_EQ(cb, bits);
  EXPECT_EQ(b.NextSet(4096), UINT64_MAX);
}

TEST(BitmapTest, CountPrefix) {
  Bitmap b;
  for (uint64_t i = 0; i < 300; i += 3) b.Set(i);
  EXPECT_EQ(b.CountPrefix(0), 0u);
  EXPECT_EQ(b.CountPrefix(1), 1u);
  EXPECT_EQ(b.CountPrefix(90), 30u);
  EXPECT_EQ(b.CountPrefix(10000), b.Count());
}

TEST(BitmapTest, BytesRoundTrip) {
  Bitmap b;
  Random rng(3);
  for (int i = 0; i < 200; ++i) b.Set(rng.Uniform(5000));
  const std::string bytes = b.ToBytes();
  Bitmap restored = Bitmap::FromBytes(bytes, b.size());
  EXPECT_TRUE(b == restored);

  std::string encoded;
  b.EncodeTo(&encoded);
  Slice in(encoded);
  Bitmap decoded;
  ASSERT_TRUE(Bitmap::DecodeFrom(&in, &decoded));
  EXPECT_TRUE(b == decoded);
}

// Regression: an empty bitmap backs its words with a null pointer, and the
// serialization paths used to hand that null to memcpy (UB even for zero
// bytes — caught by UBSan's nonnull-attribute check).
TEST(BitmapTest, EmptyBytesRoundTrip) {
  Bitmap b;
  const std::string bytes = b.ToBytes();
  EXPECT_TRUE(bytes.empty());
  Bitmap restored = Bitmap::FromBytes(bytes, 0);
  EXPECT_TRUE(restored.empty());
  EXPECT_TRUE(b == restored);
}

TEST(BitmapTest, EmptyEncodeDecodeRoundTrip) {
  Bitmap b;
  std::string encoded;
  b.EncodeTo(&encoded);
  EXPECT_FALSE(encoded.empty());  // still carries the bit-count varint
  Slice in(encoded);
  Bitmap decoded;
  ASSERT_TRUE(Bitmap::DecodeFrom(&in, &decoded));
  EXPECT_TRUE(decoded.empty());
  EXPECT_TRUE(b == decoded);
  EXPECT_EQ(in.size(), 0u);
}

// Regression: FromBytes with a default (null-data) Slice and a nonzero bit
// count must produce an all-zero bitmap without touching the null source.
TEST(BitmapTest, FromBytesNullSliceZeroFills) {
  Bitmap b = Bitmap::FromBytes(Slice(), 128);
  EXPECT_EQ(b.size(), 128u);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_FALSE(b.Any());
}

// ------------------------------------------------------------ BitmapIndex

class BitmapIndexTest : public ::testing::TestWithParam<BitmapOrientation> {
 protected:
  std::unique_ptr<BitmapIndex> Make() {
    return BitmapIndex::Make(GetParam());
  }
};

TEST_P(BitmapIndexTest, SetAndTest) {
  auto idx = Make();
  idx->AddBranch(0);
  idx->AppendTuples(100);
  idx->Set(5, 0, true);
  idx->Set(50, 0, true);
  EXPECT_TRUE(idx->Test(5, 0));
  EXPECT_TRUE(idx->Test(50, 0));
  EXPECT_FALSE(idx->Test(6, 0));
  idx->Set(5, 0, false);
  EXPECT_FALSE(idx->Test(5, 0));
}

TEST_P(BitmapIndexTest, CloneBranchCopiesColumn) {
  auto idx = Make();
  idx->AddBranch(0);
  idx->AppendTuples(100);
  for (uint64_t t = 0; t < 100; t += 7) idx->Set(t, 0, true);
  idx->CloneBranch(0, 1);
  for (uint64_t t = 0; t < 100; ++t) {
    EXPECT_EQ(idx->Test(t, 1), idx->Test(t, 0)) << t;
  }
  // Divergence after the clone.
  idx->Set(3, 1, true);
  EXPECT_FALSE(idx->Test(3, 0));
  EXPECT_TRUE(idx->Test(3, 1));
}

TEST_P(BitmapIndexTest, ManyBranchesForceGrowth) {
  auto idx = Make();
  idx->AddBranch(0);
  idx->AppendTuples(10);
  idx->Set(1, 0, true);
  // Push past the 64-branch row width so tuple-oriented must expand.
  for (uint32_t b = 1; b < 200; ++b) {
    idx->AddBranch(b);
    idx->Set(b % 10, b, true);
  }
  EXPECT_TRUE(idx->Test(1, 0));
  for (uint32_t b = 1; b < 200; ++b) {
    EXPECT_TRUE(idx->Test(b % 10, b)) << b;
  }
}

TEST_P(BitmapIndexTest, MaterializeMatchesTest) {
  auto idx = Make();
  idx->AddBranch(3);
  idx->AppendTuples(500);
  Random rng(17);
  for (int i = 0; i < 200; ++i) idx->Set(rng.Uniform(500), 3, true);
  const Bitmap col = idx->MaterializeBranch(3);
  for (uint64_t t = 0; t < 500; ++t) {
    EXPECT_EQ(col.Test(t), idx->Test(t, 3)) << t;
  }
}

TEST_P(BitmapIndexTest, RestoreBranchOverwrites) {
  auto idx = Make();
  idx->AddBranch(0);
  idx->AppendTuples(100);
  idx->Set(10, 0, true);
  Bitmap snapshot;
  snapshot.Set(20);
  snapshot.Set(30);
  idx->RestoreBranch(0, snapshot);
  EXPECT_FALSE(idx->Test(10, 0));
  EXPECT_TRUE(idx->Test(20, 0));
  EXPECT_TRUE(idx->Test(30, 0));
}

TEST_P(BitmapIndexTest, SerializationRoundTrip) {
  auto idx = Make();
  idx->AddBranch(0);
  idx->AddBranch(7);
  idx->AppendTuples(300);
  Random rng(23);
  for (int i = 0; i < 100; ++i) {
    idx->Set(rng.Uniform(300), rng.OneIn(2) ? 0 : 7, true);
  }
  std::string blob;
  idx->EncodeTo(&blob);
  Slice in(blob);
  auto restored = BitmapIndex::DecodeFrom(&in);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->orientation(), GetParam());
  EXPECT_EQ((*restored)->num_tuples(), 300u);
  for (uint64_t t = 0; t < 300; ++t) {
    EXPECT_EQ((*restored)->Test(t, 0), idx->Test(t, 0));
    EXPECT_EQ((*restored)->Test(t, 7), idx->Test(t, 7));
  }
}

INSTANTIATE_TEST_SUITE_P(
    BothOrientations, BitmapIndexTest,
    ::testing::Values(BitmapOrientation::kBranchOriented,
                      BitmapOrientation::kTupleOriented),
    [](const auto& info) {
      return info.param == BitmapOrientation::kBranchOriented
                 ? "BranchOriented"
                 : "TupleOriented";
    });

// ---------------------------------------------------------- CommitHistory

TEST(CommitHistoryTest, CheckoutReconstructsEverySnapshot) {
  ScratchDir dir("ch");
  auto h = CommitHistory::Create(JoinPath(dir.path(), "h.hist"),
                                 {.composite_every = 4});
  ASSERT_TRUE(h.ok());
  Random rng(3);
  Bitmap state;
  std::vector<Bitmap> snapshots;
  std::vector<uint64_t> seqs;
  uint64_t seq = 0;
  for (int c = 0; c < 40; ++c) {
    for (int i = 0; i < 25; ++i) {
      const uint64_t bit = rng.Uniform(3000);
      if (rng.OneIn(4)) {
        state.Reset(bit);
      } else {
        state.Set(bit);
      }
    }
    seq += 1 + rng.Uniform(5);
    ASSERT_OK((*h)->AppendCommit(seq, state));
    snapshots.push_back(state);
    seqs.push_back(seq);
  }
  for (size_t i = 0; i < snapshots.size(); ++i) {
    auto got = (*h)->Checkout(seqs[i]);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_TRUE(*got == snapshots[i]) << "commit " << i;
  }
}

TEST(CommitHistoryTest, FloorSemantics) {
  ScratchDir dir("ch");
  auto h = CommitHistory::Create(JoinPath(dir.path(), "h.hist"), {});
  ASSERT_TRUE(h.ok());
  Bitmap b1, b2;
  b1.Set(1);
  b2.Set(1);
  b2.Set(2);
  ASSERT_OK((*h)->AppendCommit(10, b1));
  ASSERT_OK((*h)->AppendCommit(20, b2));

  EXPECT_FALSE((*h)->HasCommitAtOrBefore(9));
  EXPECT_TRUE((*h)->Checkout(9).status().IsNotFound());
  auto at15 = (*h)->Checkout(15);  // floor -> seq 10
  ASSERT_TRUE(at15.ok());
  EXPECT_TRUE(*at15 == b1);
  auto at99 = (*h)->Checkout(99);  // floor -> seq 20
  ASSERT_TRUE(at99.ok());
  EXPECT_TRUE(*at99 == b2);
}

TEST(CommitHistoryTest, RejectsNonIncreasingSeq) {
  ScratchDir dir("ch");
  auto h = CommitHistory::Create(JoinPath(dir.path(), "h.hist"), {});
  ASSERT_TRUE(h.ok());
  Bitmap b;
  b.Set(1);
  ASSERT_OK((*h)->AppendCommit(5, b));
  EXPECT_TRUE((*h)->AppendCommit(5, b).IsInvalidArgument());
  EXPECT_TRUE((*h)->AppendCommit(3, b).IsInvalidArgument());
}

TEST(CommitHistoryTest, ReopenAndContinue) {
  ScratchDir dir("ch");
  const std::string path = JoinPath(dir.path(), "h.hist");
  Bitmap b1, b2, b3;
  b1.Set(1);
  b2.Set(1);
  b2.Set(200);
  b3.Set(200);
  {
    auto h = CommitHistory::Create(path, {.composite_every = 2});
    ASSERT_TRUE(h.ok());
    ASSERT_OK((*h)->AppendCommit(1, b1));
    ASSERT_OK((*h)->AppendCommit(2, b2));
  }
  {
    auto h = CommitHistory::Open(path, {.composite_every = 2});
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    EXPECT_EQ((*h)->num_commits(), 2u);
    // Continue appending after reopen (writer state rebuilt lazily).
    ASSERT_OK((*h)->AppendCommit(3, b3));
    for (const auto& [seq, want] :
         std::vector<std::pair<uint64_t, Bitmap*>>{{1, &b1}, {2, &b2},
                                                   {3, &b3}}) {
      auto got = (*h)->Checkout(seq);
      ASSERT_TRUE(got.ok());
      EXPECT_TRUE(*got == *want) << "seq " << seq;
    }
  }
}

TEST(CommitHistoryTest, DetectsCorruptRecords) {
  ScratchDir dir("ch");
  const std::string path = JoinPath(dir.path(), "h.hist");
  {
    auto h = CommitHistory::Create(path, {});
    ASSERT_TRUE(h.ok());
    Bitmap b;
    for (uint64_t i = 0; i < 100; i += 2) b.Set(i);
    ASSERT_OK((*h)->AppendCommit(1, b));
  }
  // Flip a payload byte.
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  std::string mutated = *contents;
  mutated[mutated.size() / 2] ^= 0xff;
  ASSERT_OK(WriteStringToFile(path, mutated));
  auto h = CommitHistory::Open(path, {});
  EXPECT_FALSE(h.ok());
  EXPECT_TRUE(h.status().IsCorruption());
}

TEST(CommitHistoryTest, CompressionIsEffectiveOnSparseDeltas) {
  // Consecutive commits differing by a handful of bits should cost far
  // less than full snapshots (the point of §3.2's delta+RLE encoding).
  ScratchDir dir("ch");
  auto h = CommitHistory::Create(JoinPath(dir.path(), "h.hist"), {});
  ASSERT_TRUE(h.ok());
  Bitmap state(1 << 20);  // 128 KiB of bitmap
  for (uint64_t i = 0; i < (1 << 20); i += 2) state.Set(i);
  ASSERT_OK((*h)->AppendCommit(1, state));
  const uint64_t first = (*h)->SizeBytes();
  for (int c = 2; c <= 20; ++c) {
    state.Set(1000 + static_cast<uint64_t>(c) * 2);
    ASSERT_OK((*h)->AppendCommit(c, state));
  }
  const uint64_t per_commit = ((*h)->SizeBytes() - first) / 19;
  EXPECT_LT(per_commit, 256u) << "sparse deltas should be tiny";
}

}  // namespace
}  // namespace decibel
