/// MergeSpec / diff-engine tests: cross-engine merge equivalence under
/// every MergePolicy (identical MergeResult and identical merged tables on
/// all three engines — the engines share one staging path and may only
/// diverge on cost), the §2.2.3 conflict-classification edge cases
/// (both-sides-delete, update-vs-delete, both-added-identical), the
/// pluggable resolutions (ours/theirs/latest-wins/callback), the dry-run
/// preview cursor, the three-way commit diff cursor, and the WAL-ordering
/// failure injection: a merge aborted by its callback must leave no graph
/// commit, no kMerge WAL record, and a recoverable database.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/io.h"
#include "core/decibel.h"
#include "test_util.h"
#include "wal/wal_format.h"
#include "wal/wal_reader.h"
#include "wal/wal_writer.h"

namespace decibel {
namespace {

using testing_util::CollectBranch;
using testing_util::CollectBranchAll;
using testing_util::MakeRecord;
using testing_util::MakeRecordVals;
using testing_util::ScratchDir;
using testing_util::TestSchema;

std::unique_ptr<Decibel> MakeDb(const ScratchDir& dir, EngineType engine) {
  DecibelOptions options;
  options.engine = engine;
  options.page_size = 4096;
  auto db = Decibel::Open(dir.path(), TestSchema(3), options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).MoveValueUnsafe();
}

/// Seeds the canonical conflicted history used across these tests.
/// master/dev fork after pks 0..9 (value 100+pk in every column), then:
///
///   pk1: master-only update          -> left change, no conflict
///   pk2: dev-only update             -> right change, no conflict
///   pk3: both update, different      -> conflict (same column)
///   pk4: both delete                 -> agreement, not a conflict
///   pk5: master delete vs dev update -> conflict
///   pk6: master update vs dev delete -> conflict
///   pk8: master edits col1, dev col2 -> 3-way field merge, no conflict
///   pk20: both insert identical      -> agreement, not a conflict
///   pk21: both insert different      -> conflict
///   pk30: dev-only insert            -> right change, no conflict
///
/// Returns the fork commit (the merges' lca).
CommitId SeedHistory(Decibel* db, BranchId* dev_out) {
  const Schema& s = db->schema();
  for (int i = 0; i < 10; ++i) {
    EXPECT_OK(db->InsertInto(kMasterBranch, MakeRecord(s, i, 100 + i)));
  }
  auto base = db->CommitBranch(kMasterBranch);
  EXPECT_TRUE(base.ok()) << base.status().ToString();
  auto dev = db->BranchAt("dev", *base);
  EXPECT_TRUE(dev.ok()) << dev.status().ToString();
  *dev_out = *dev;

  EXPECT_OK(db->UpdateIn(kMasterBranch, MakeRecord(s, 1, 201)));
  EXPECT_OK(db->UpdateIn(*dev, MakeRecord(s, 2, 302)));
  EXPECT_OK(db->UpdateIn(kMasterBranch, MakeRecord(s, 3, 203)));
  EXPECT_OK(db->UpdateIn(*dev, MakeRecord(s, 3, 303)));
  EXPECT_OK(db->DeleteFrom(kMasterBranch, 4));
  EXPECT_OK(db->DeleteFrom(*dev, 4));
  EXPECT_OK(db->DeleteFrom(kMasterBranch, 5));
  EXPECT_OK(db->UpdateIn(*dev, MakeRecord(s, 5, 305)));
  EXPECT_OK(db->UpdateIn(kMasterBranch, MakeRecord(s, 6, 206)));
  EXPECT_OK(db->DeleteFrom(*dev, 6));
  EXPECT_OK(db->UpdateIn(kMasterBranch, MakeRecordVals(s, 8, {208, 108, 108})));
  EXPECT_OK(db->UpdateIn(*dev, MakeRecordVals(s, 8, {108, 308, 108})));
  EXPECT_OK(db->InsertInto(kMasterBranch, MakeRecord(s, 20, 420)));
  EXPECT_OK(db->InsertInto(*dev, MakeRecord(s, 20, 420)));
  EXPECT_OK(db->InsertInto(kMasterBranch, MakeRecord(s, 21, 221)));
  EXPECT_OK(db->InsertInto(*dev, MakeRecord(s, 21, 321)));
  EXPECT_OK(db->InsertInto(*dev, MakeRecord(s, 30, 330)));
  return *base;
}

const EngineType kEngines[] = {EngineType::kTupleFirst,
                               EngineType::kVersionFirst,
                               EngineType::kHybrid};
const MergePolicy kPolicies[] = {
    MergePolicy::kTwoWayLeft, MergePolicy::kTwoWayRight,
    MergePolicy::kThreeWayLeft, MergePolicy::kThreeWayRight};

// ---------------------------------------------- cross-engine equivalence

TEST(MergeEquivalenceTest, AllEnginesAgreeUnderEveryPolicy) {
  for (MergePolicy policy : kPolicies) {
    std::map<int64_t, std::vector<int32_t>> first_into, first_from;
    MergeResult first_result;
    bool have_first = false;
    for (EngineType engine : kEngines) {
      SCOPED_TRACE(std::string("engine=") + EngineTypeName(engine) +
                   " policy=" + std::to_string(static_cast<int>(policy)));
      ScratchDir dir("merge_equiv");
      auto db = MakeDb(dir, engine);
      BranchId dev = kInvalidBranch;
      SeedHistory(db.get(), &dev);
      auto merged = db->Merge(kMasterBranch, dev, policy);
      ASSERT_TRUE(merged.ok()) << merged.status().ToString();
      auto into_rows = CollectBranchAll(db.get(), kMasterBranch);
      auto from_rows = CollectBranchAll(db.get(), dev);
      if (!have_first) {
        have_first = true;
        first_into = into_rows;
        first_from = from_rows;
        first_result = merged->result;
        continue;
      }
      // The answer — tables and every engine-independent counter — must be
      // identical; only bytes_processed (the physical cost) may differ.
      EXPECT_EQ(into_rows, first_into);
      EXPECT_EQ(from_rows, first_from);
      EXPECT_EQ(merged->result.conflicts, first_result.conflicts);
      EXPECT_EQ(merged->result.merged_records, first_result.merged_records);
      EXPECT_EQ(merged->result.field_merges, first_result.field_merges);
      EXPECT_EQ(merged->result.diff_bytes, first_result.diff_bytes);
    }
  }
}

// ------------------------------------------------- conflict edge cases

class MergeSpecTest : public ::testing::TestWithParam<EngineType> {};

TEST_P(MergeSpecTest, PreviewClassifiesEdgeCases) {
  ScratchDir dir("merge_edges");
  auto db = MakeDb(dir, GetParam());
  BranchId dev = kInvalidBranch;
  SeedHistory(db.get(), &dev);
  const auto before = CollectBranchAll(db.get(), kMasterBranch);

  auto cursor = db->PreviewMerge(MergeSpec::Branches(kMasterBranch, dev)
                                     .WithPolicy(MergePolicy::kThreeWayLeft));
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  std::map<int64_t, MergeRow> rows;
  int64_t last_pk = INT64_MIN;
  const MergeRow* row;
  while ((row = (*cursor)->Next()) != nullptr) {
    EXPECT_GT(row->pk, last_pk) << "rows must stream in ascending pk order";
    last_pk = row->pk;
    rows[row->pk] = *row;
  }
  ASSERT_OK((*cursor)->status());

  // Left-only change: nothing to do, not emitted (or emitted as kNone).
  EXPECT_TRUE(rows.count(1) == 0 ||
              rows[1].change == MergeChangeKind::kNone);
  // Right-only update is adopted.
  ASSERT_EQ(rows.count(2), 1u);
  EXPECT_EQ(rows[2].change, MergeChangeKind::kUpdate);
  EXPECT_FALSE(rows[2].conflict);
  // Both updated the same column differently: conflict, left wins, so the
  // into branch keeps its record (kNone).
  ASSERT_EQ(rows.count(3), 1u);
  EXPECT_TRUE(rows[3].conflict);
  EXPECT_EQ(rows[3].change, MergeChangeKind::kNone);
  // Both deleted: agreement, no conflict, nothing to change.
  EXPECT_TRUE(rows.count(4) == 0 ||
              (!rows[4].conflict && rows[4].change == MergeChangeKind::kNone));
  // Delete-vs-update and update-vs-delete: conflicts.
  ASSERT_EQ(rows.count(5), 1u);
  EXPECT_TRUE(rows[5].conflict);
  ASSERT_EQ(rows.count(6), 1u);
  EXPECT_TRUE(rows[6].conflict);
  // Disjoint-field edits merge without conflict, taking both sides.
  ASSERT_EQ(rows.count(8), 1u);
  EXPECT_FALSE(rows[8].conflict);
  EXPECT_TRUE(rows[8].field_merge);
  EXPECT_EQ(rows[8].change, MergeChangeKind::kUpdate);
  ASSERT_TRUE(rows[8].resolved.has_value());
  EXPECT_EQ(rows[8].resolved->ref().GetInt32(1), 208);
  EXPECT_EQ(rows[8].resolved->ref().GetInt32(2), 308);
  // Both inserted identical bytes: agreement.
  EXPECT_TRUE(rows.count(20) == 0 ||
              (!rows[20].conflict &&
               rows[20].change == MergeChangeKind::kNone));
  // Both inserted different bytes: conflict.
  ASSERT_EQ(rows.count(21), 1u);
  EXPECT_TRUE(rows[21].conflict);
  // Right-only insert is adopted.
  ASSERT_EQ(rows.count(30), 1u);
  EXPECT_EQ(rows[30].change, MergeChangeKind::kAdd);
  EXPECT_FALSE(rows[30].conflict);
  ASSERT_TRUE(rows[30].resolved.has_value());
  EXPECT_EQ(rows[30].resolved->ref().GetInt32(1), 330);

  // A preview mutates nothing.
  EXPECT_EQ(CollectBranchAll(db.get(), kMasterBranch), before);

  // Executing the same spec produces exactly the previewed counters and
  // exactly the previewed per-key outcomes.
  auto merged = db->Merge(MergeSpec::Branches(kMasterBranch, dev)
                              .WithPolicy(MergePolicy::kThreeWayLeft));
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->result.conflicts, (*cursor)->stats().conflicts);
  EXPECT_EQ(merged->result.merged_records, (*cursor)->stats().merged_records);
  EXPECT_EQ(merged->result.field_merges, (*cursor)->stats().field_merges);
  EXPECT_EQ(merged->result.diff_bytes, (*cursor)->stats().diff_bytes);
  auto after = CollectBranchAll(db.get(), kMasterBranch);
  for (const auto& [pk, prow] : rows) {
    if (prow.resolved.has_value()) {
      ASSERT_EQ(after.count(pk), 1u) << "pk " << pk;
      EXPECT_EQ(after[pk][0], prow.resolved->ref().GetInt32(1)) << "pk " << pk;
    } else if (prow.change == MergeChangeKind::kDelete) {
      EXPECT_EQ(after.count(pk), 0u) << "pk " << pk;
    }
  }
}

// ----------------------------------------------------------- resolutions

TEST_P(MergeSpecTest, OursAndTheirsResolveEveryConflictToOneSide) {
  for (bool ours : {true, false}) {
    ScratchDir dir("merge_ours");
    auto db = MakeDb(dir, GetParam());
    BranchId dev = kInvalidBranch;
    SeedHistory(db.get(), &dev);
    auto merged = db->Merge(
        MergeSpec::Branches(kMasterBranch, dev)
            .WithPolicy(MergePolicy::kThreeWayLeft)
            .Resolve(ours ? MergeResolution::kOurs : MergeResolution::kTheirs));
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    auto rows = CollectBranch(db.get(), kMasterBranch);
    if (ours) {
      EXPECT_EQ(rows[3], 203);       // our update
      EXPECT_EQ(rows.count(5), 0u);  // our delete
      EXPECT_EQ(rows[6], 206);       // our update over their delete
      EXPECT_EQ(rows[21], 221);      // our insert
    } else {
      EXPECT_EQ(rows[3], 303);       // their update
      EXPECT_EQ(rows[5], 305);       // their update over our delete
      EXPECT_EQ(rows.count(6), 0u);  // their delete
      EXPECT_EQ(rows[21], 321);      // their insert
    }
    // Non-conflicting reconciliation is resolution-independent.
    EXPECT_EQ(rows[1], 201);
    EXPECT_EQ(rows[2], 302);
    EXPECT_EQ(rows.count(4), 0u);
    EXPECT_EQ(rows[30], 330);
  }
}

TEST_P(MergeSpecTest, LatestWinsFollowsTheNewerHead) {
  ScratchDir dir("merge_latest");
  auto db = MakeDb(dir, GetParam());
  BranchId dev = kInvalidBranch;
  SeedHistory(db.get(), &dev);
  // Commit master first, dev second: dev's head commit is newer, so
  // latest-wins behaves like theirs.
  ASSERT_OK(db->CommitBranch(kMasterBranch).status());
  ASSERT_OK(db->CommitBranch(dev).status());
  auto merged = db->Merge(MergeSpec::Branches(kMasterBranch, dev)
                              .WithPolicy(MergePolicy::kThreeWayLeft)
                              .Resolve(MergeResolution::kLatestWins));
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  auto rows = CollectBranch(db.get(), kMasterBranch);
  EXPECT_EQ(rows[3], 303);
  EXPECT_EQ(rows[5], 305);
  EXPECT_EQ(rows.count(6), 0u);
  EXPECT_EQ(rows[21], 321);
}

TEST_P(MergeSpecTest, CallbackDecidesEachConflict) {
  ScratchDir dir("merge_cb");
  auto db = MakeDb(dir, GetParam());
  BranchId dev = kInvalidBranch;
  SeedHistory(db.get(), &dev);
  const Schema& s = db->schema();
  std::vector<int64_t> seen;
  auto merged = db->Merge(MergeSpec::Branches(kMasterBranch, dev)
                              .WithPolicy(MergePolicy::kThreeWayLeft)
                              .OnConflict([&](const MergeConflict& c)
                                              -> Result<ConflictResolution> {
                                seen.push_back(c.pk);
                                switch (c.pk) {
                                  case 3:
                                    return ConflictResolution::Drop();
                                  case 5:
                                    return ConflictResolution::TakeRight();
                                  case 6:
                                    return ConflictResolution::TakeLeft();
                                  default:
                                    return ConflictResolution::Custom(
                                        MakeRecord(s, c.pk, 777));
                                }
                              }));
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(seen, (std::vector<int64_t>{3, 5, 6, 21}));
  auto rows = CollectBranch(db.get(), kMasterBranch);
  EXPECT_EQ(rows.count(3), 0u);  // dropped
  EXPECT_EQ(rows[5], 305);       // their side
  EXPECT_EQ(rows[6], 206);       // our side
  EXPECT_EQ(rows[21], 777);      // synthesized record
  EXPECT_EQ(merged->result.conflicts, 4u);
}

// ------------------------------------------------------------ diff cursor

TEST_P(MergeSpecTest, DiffCommitsClassifiesAgainstTheAncestor) {
  ScratchDir dir("merge_diffc");
  auto db = MakeDb(dir, GetParam());
  BranchId dev = kInvalidBranch;
  SeedHistory(db.get(), &dev);
  ASSERT_OK_AND_ASSIGN(CommitId head_m, db->CommitBranch(kMasterBranch));
  ASSERT_OK_AND_ASSIGN(CommitId head_d, db->CommitBranch(dev));

  auto cursor = db->DiffCommits(head_m, head_d);
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  std::map<int64_t, MergeRow> rows;
  const MergeRow* row;
  while ((row = (*cursor)->Next()) != nullptr) rows[row->pk] = *row;
  ASSERT_OK((*cursor)->status());

  // From master's point of view: pk1 modified (only on master — still a
  // difference between the two commits), pk5 added on dev / deleted on
  // master, pk6 the reverse, pk30 only on dev.
  ASSERT_EQ(rows.count(1), 1u);
  EXPECT_EQ(rows[1].change, MergeChangeKind::kUpdate);
  EXPECT_FALSE(rows[1].conflict);
  ASSERT_EQ(rows.count(3), 1u);
  EXPECT_EQ(rows[3].change, MergeChangeKind::kUpdate);
  EXPECT_TRUE(rows[3].conflict);  // both commits changed it since the lca
  ASSERT_EQ(rows.count(5), 1u);
  EXPECT_EQ(rows[5].change, MergeChangeKind::kAdd);  // absent left, live right
  ASSERT_EQ(rows.count(6), 1u);
  EXPECT_EQ(rows[6].change, MergeChangeKind::kDelete);
  ASSERT_EQ(rows.count(30), 1u);
  EXPECT_EQ(rows[30].change, MergeChangeKind::kAdd);
  // Agreements are invisible to a diff: same bytes on both sides.
  EXPECT_EQ(rows.count(4), 0u);
  EXPECT_EQ(rows.count(20), 0u);
  // Diffs stage nothing and resolve nothing.
  EXPECT_FALSE(rows[3].resolved.has_value());
  // Left/right states ride along for consumers.
  ASSERT_TRUE(rows[3].left.has_value());
  EXPECT_EQ(rows[3].left->ref().GetInt32(1), 203);
  ASSERT_TRUE(rows[3].right.has_value());
  EXPECT_EQ(rows[3].right->ref().GetInt32(1), 303);

  // A diff of a commit against itself is empty.
  auto self = db->DiffCommits(head_m, head_m);
  ASSERT_TRUE(self.ok()) << self.status().ToString();
  EXPECT_EQ((*self)->Next(), nullptr);
  ASSERT_OK((*self)->status());
}

// ---------------------------------------------- WAL ordering (the bugfix)

TEST_P(MergeSpecTest, FailedMergeLeavesNoCommitNoWalRecordAndRecovers) {
  ScratchDir dir("merge_fail");
  DecibelOptions options;
  options.engine = GetParam();
  options.data_dir = dir.path();
  options.sync_mode = wal::SyncMode::kFlush;
  options.page_size = 4096;

  BranchId dev = kInvalidBranch;
  std::map<int64_t, int32_t> before;
  CommitId head_before = kInvalidCommit;
  {
    ASSERT_OK_AND_ASSIGN(auto db,
                         Decibel::Open(dir.path(), TestSchema(3), options));
    SeedHistory(db.get(), &dev);
    before = CollectBranch(db.get(), kMasterBranch);

    // The callback fails partway through staging: the merge must abort
    // with no graph commit, no WAL record, and no data mutation. (Before
    // the reorder, the facade allocated the merge commit and logged the
    // kMerge record *before* running the merge — this exact injection
    // left a phantom commit and a lying WAL.)
    auto merged =
        db->Merge(MergeSpec::Branches(kMasterBranch, dev)
                      .OnConflict([&](const MergeConflict& c)
                                      -> Result<ConflictResolution> {
                        if (c.pk >= 5) {
                          return Status::InvalidArgument("operator bailed");
                        }
                        return ConflictResolution::TakeLeft();
                      }));
    ASSERT_FALSE(merged.ok());
    EXPECT_TRUE(merged.status().IsInvalidArgument());

    head_before = db->graph().Head(kMasterBranch);
    ASSERT_OK_AND_ASSIGN(CommitInfo head, db->graph().GetCommit(head_before));
    EXPECT_EQ(head.parents.size(), 1u) << "no merge commit may exist";
    EXPECT_EQ(CollectBranch(db.get(), kMasterBranch), before);

    // No kMerge record anywhere in the log.
    ASSERT_OK_AND_ASSIGN(auto names, ListDir(JoinPath(dir.path(), "wal")));
    for (const auto& name : names) {
      if (name.size() < 4 || name.compare(name.size() - 4, 4, ".wal") != 0) {
        continue;
      }
      ASSERT_OK_AND_ASSIGN(
          auto reader, wal::Reader::Open(JoinPath(JoinPath(dir.path(), "wal"),
                                                  name)));
      wal::FrameView frame;
      while (reader->Next(&frame)) {
        EXPECT_NE(frame.type, wal::RecordType::kMerge)
            << "aborted merge leaked a WAL record";
      }
    }

    // The database stays fully usable: a retry with a deciding callback
    // succeeds.
    auto retried = db->Merge(MergeSpec::Branches(kMasterBranch, dev)
                                 .OnConflict([](const MergeConflict&) {
                                   return ConflictResolution::TakeLeft();
                                 }));
    ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  }

  // And it recovers: reopen replays the WAL (which now holds only the
  // successful retry) without tripping over the aborted attempt.
  ASSERT_OK_AND_ASSIGN(auto db, Decibel::Open(dir.path(), options));
  ASSERT_OK_AND_ASSIGN(CommitInfo head,
                       db->graph().GetCommit(db->graph().Head(kMasterBranch)));
  EXPECT_EQ(head.parents.size(), 2u) << "the retry's merge commit survives";
  auto rows = CollectBranch(db.get(), kMasterBranch);
  EXPECT_EQ(rows[2], 302);   // adopted from dev by the retry
  EXPECT_EQ(rows[30], 330);  // dev's insert adopted
}

INSTANTIATE_TEST_SUITE_P(AllEngines, MergeSpecTest,
                         ::testing::ValuesIn(kEngines),
                         [](const auto& info) {
                           const std::string name = EngineTypeName(info.param);
                           return name == "tuple-first"    ? "TupleFirst"
                                  : name == "version-first" ? "VersionFirst"
                                                            : "Hybrid";
                         });

}  // namespace
}  // namespace decibel
