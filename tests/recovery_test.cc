/// Durability and crash-recovery tests: the io.cc crash-safety helpers,
/// WAL framing and torn-tail handling, manifest generations and fallback,
/// and full Decibel recovery — clean reopen, crash-consistent reopen,
/// torn WAL tails, missing segments, corrupt manifests, and a fork/_exit
/// child killed mid-load whose acknowledged commits the parent verifies —
/// across all three storage engines.

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/coding.h"
#include "common/io.h"
#include "core/decibel.h"
#include "test_util.h"
#include "wal/manifest.h"
#include "wal/wal_format.h"
#include "wal/wal_reader.h"
#include "wal/wal_writer.h"

namespace decibel {
namespace {

using testing_util::CollectBranch;
using testing_util::MakeRecord;
using testing_util::ScratchDir;
using testing_util::TestSchema;

// --------------------------------------------------------------- helpers

/// Recursively copies \p src into \p dst through ordinary reads: the copy
/// observes the page-cache view of every file, i.e. exactly the bytes a
/// crashed process would leave behind under SyncMode::kFlush (userspace
/// buffers lost, flushed data retained).
Status CopyDirRecursive(const std::string& src, const std::string& dst) {
  DECIBEL_RETURN_NOT_OK(CreateDir(dst));
  DECIBEL_ASSIGN_OR_RETURN(std::vector<std::string> names, ListDir(src));
  for (const std::string& name : names) {
    const std::string from = JoinPath(src, name);
    const std::string to = JoinPath(dst, name);
    struct ::stat st;
    if (::stat(from.c_str(), &st) != 0) {
      return Status::IOError("stat " + from);
    }
    if (S_ISDIR(st.st_mode)) {
      DECIBEL_RETURN_NOT_OK(CopyDirRecursive(from, to));
    } else {
      DECIBEL_ASSIGN_OR_RETURN(std::string data, ReadFileToString(from));
      DECIBEL_RETURN_NOT_OK(WriteStringToFile(to, data));
    }
  }
  return Status::OK();
}

/// Sorted *.wal segment paths under <dir>/wal.
std::vector<std::string> WalSegments(const std::string& dir) {
  std::vector<std::string> out;
  auto names = ListDir(JoinPath(dir, "wal"));
  if (!names.ok()) return out;
  for (const auto& name : *names) {
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".wal") == 0) {
      out.push_back(JoinPath(JoinPath(dir, "wal"), name));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Frame start offsets within one WAL segment (parsed from the length
/// prefixes), plus the clean end of the final frame.
std::vector<uint64_t> FrameOffsets(const std::string& data, uint64_t* end) {
  std::vector<uint64_t> offsets;
  uint64_t pos = 0;
  while (pos + wal::kFrameHeaderSize <= data.size()) {
    const uint32_t len = DecodeFixed32(data.data() + pos);
    if (len == 0 || pos + wal::kFrameHeaderSize + len > data.size()) break;
    offsets.push_back(pos);
    pos += wal::kFrameHeaderSize + len;
  }
  *end = pos;
  return offsets;
}

void FlipByte(const std::string& path, uint64_t offset) {
  auto data = ReadFileToString(path);
  ASSERT_OK(data.status());
  ASSERT_LT(offset, data->size());
  (*data)[offset] ^= 0x5a;
  ASSERT_OK(WriteStringToFile(path, *data));
}

DecibelOptions DurableOptions(const std::string& dir, EngineType engine,
                              wal::SyncMode mode = wal::SyncMode::kFlush) {
  DecibelOptions options;
  options.engine = engine;
  options.data_dir = dir;
  options.sync_mode = mode;
  options.page_size = 1 << 16;
  return options;
}

// ------------------------------------------------------- io.cc helpers

TEST(DurableIoTest, AtomicWriteFileReplacesContents) {
  ScratchDir dir("io_atomic");
  const std::string path = JoinPath(dir.path(), "blob");
  ASSERT_OK(AtomicWriteFile(path, "first"));
  ASSERT_OK_AND_ASSIGN(std::string got, ReadFileToString(path));
  EXPECT_EQ(got, "first");
  ASSERT_OK(AtomicWriteFile(path, "second", /*sync=*/true));
  ASSERT_OK_AND_ASSIGN(got, ReadFileToString(path));
  EXPECT_EQ(got, "second");
  // The temporary sibling must not linger.
  ASSERT_OK_AND_ASSIGN(std::vector<std::string> names, ListDir(dir.path()));
  EXPECT_EQ(names.size(), 1u);
}

TEST(DurableIoTest, TruncateFileShrinksAndGrows) {
  ScratchDir dir("io_trunc");
  const std::string path = JoinPath(dir.path(), "f");
  ASSERT_OK(WriteStringToFile(path, "abcdefgh"));
  ASSERT_OK(TruncateFile(path, 3));
  ASSERT_OK_AND_ASSIGN(std::string got, ReadFileToString(path));
  EXPECT_EQ(got, "abc");
  ASSERT_OK(TruncateFile(path, 5));
  ASSERT_OK_AND_ASSIGN(uint64_t size, FileSize(path));
  EXPECT_EQ(size, 5u);
}

TEST(DurableIoTest, RenameFileSyncedMovesContents) {
  ScratchDir dir("io_rename");
  const std::string from = JoinPath(dir.path(), "from");
  const std::string to = JoinPath(dir.path(), "to");
  ASSERT_OK(WriteStringToFile(from, "payload"));
  ASSERT_OK(RenameFile(from, to, /*sync=*/true));
  EXPECT_FALSE(FileExists(from));
  ASSERT_OK_AND_ASSIGN(std::string got, ReadFileToString(to));
  EXPECT_EQ(got, "payload");
}

TEST(DurableIoTest, SyncDirAndParentDir) {
  ScratchDir dir("io_syncdir");
  ASSERT_OK(SyncDir(dir.path()));
  EXPECT_TRUE(SyncDir(JoinPath(dir.path(), "missing")).IsIOError());
  EXPECT_EQ(ParentDir(JoinPath(dir.path(), "leaf")), dir.path());
  EXPECT_EQ(ParentDir("plain"), ".");
}

TEST(DurableIoTest, SyncDataPersistsFlushedBytes) {
  ScratchDir dir("io_syncdata");
  const std::string path = JoinPath(dir.path(), "f");
  ASSERT_OK_AND_ASSIGN(WritableFile f, WritableFile::Open(path));
  ASSERT_OK(f.Append("hello"));
  ASSERT_OK(f.Flush());
  ASSERT_OK(f.SyncData());
  ASSERT_OK_AND_ASSIGN(std::string got, ReadFileToString(path));
  EXPECT_EQ(got, "hello");
  ASSERT_OK(f.Close());
}

// ------------------------------------------------- options validation

TEST(DecibelOptionsTest, RejectsInvalidOptions) {
  ScratchDir dir("opts");
  const Schema schema = TestSchema();

  DecibelOptions zero_stripes;
  zero_stripes.write_stripes = 0;
  EXPECT_TRUE(Decibel::Open(dir.path(), schema, zero_stripes)
                  .status()
                  .IsInvalidArgument());

  DecibelOptions tiny_page;
  tiny_page.page_size = 128;
  EXPECT_TRUE(Decibel::Open(dir.path(), schema, tiny_page)
                  .status()
                  .IsInvalidArgument());

  DecibelOptions huge_page;
  huge_page.page_size = 3ull << 30;
  EXPECT_TRUE(Decibel::Open(dir.path(), schema, huge_page)
                  .status()
                  .IsInvalidArgument());

  DecibelOptions zero_segment;
  zero_segment.data_dir = dir.path();
  zero_segment.wal_segment_bytes = 0;
  EXPECT_TRUE(Decibel::Open(dir.path(), schema, zero_segment)
                  .status()
                  .IsInvalidArgument());

  DecibelOptions zero_interval;
  zero_interval.data_dir = dir.path();
  zero_interval.checkpoint_interval_bytes = 0;
  EXPECT_TRUE(Decibel::Open(dir.path(), schema, zero_interval)
                  .status()
                  .IsInvalidArgument());

  DecibelOptions mismatched_dir;
  mismatched_dir.data_dir = dir.path() + "_elsewhere";
  EXPECT_TRUE(Decibel::Open(dir.path(), schema, mismatched_dir)
                  .status()
                  .IsInvalidArgument());
}

TEST(DecibelOptionsTest, DurableReopenValidatesSchemaAndEngine) {
  ScratchDir dir("opts_reopen");
  auto options = DurableOptions(dir.path(), EngineType::kHybrid);
  {
    ASSERT_OK_AND_ASSIGN(auto db,
                         Decibel::Open(dir.path(), TestSchema(3), options));
    ASSERT_OK(db->InsertInto(kMasterBranch, MakeRecord(db->schema(), 1, 10)));
  }
  // Wrong schema shape.
  EXPECT_TRUE(Decibel::Open(dir.path(), TestSchema(5), options)
                  .status()
                  .IsInvalidArgument());
  // Wrong engine.
  auto wrong_engine = DurableOptions(dir.path(), EngineType::kTupleFirst);
  EXPECT_TRUE(Decibel::Open(dir.path(), TestSchema(3), wrong_engine)
                  .status()
                  .IsInvalidArgument());
  // The schema-less overload needs a manifest.
  ScratchDir empty("opts_empty");
  EXPECT_TRUE(
      Decibel::Open(empty.path(), DecibelOptions{}).status().IsNotFound());
}

// ------------------------------------------------------------ WAL layer

TEST(WalFormatTest, BodyRoundTrips) {
  const Schema schema = TestSchema();
  WriteBatch batch(&schema);
  batch.Insert(MakeRecord(schema, 1, 11));
  batch.Update(MakeRecord(schema, 2, 22));
  batch.Delete(3);

  std::string body;
  wal::EncodeBatchBody(&body, /*branch=*/7, batch);
  WriteBatch decoded(&schema);
  BranchId branch = kInvalidBranch;
  ASSERT_OK(wal::DecodeBatchBody(Slice(body), &branch, &decoded));
  EXPECT_EQ(branch, 7u);
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded.ops()[0].kind, WriteBatch::OpKind::kInsert);
  EXPECT_EQ(decoded.ops()[1].kind, WriteBatch::OpKind::kUpdate);
  EXPECT_EQ(decoded.ops()[2].kind, WriteBatch::OpKind::kDelete);
  EXPECT_EQ(decoded.ops()[2].pk, 3);
  EXPECT_EQ(decoded.RecordAt(decoded.ops()[0]).pk(), 1);

  wal::CommitBody commit{5, 42, {40, 41}};
  body.clear();
  wal::EncodeCommitBody(&body, commit);
  wal::CommitBody commit_out;
  ASSERT_OK(wal::DecodeCommitBody(Slice(body), &commit_out));
  EXPECT_EQ(commit_out.branch, 5u);
  EXPECT_EQ(commit_out.commit, 42u);
  EXPECT_EQ(commit_out.parents, (std::vector<CommitId>{40, 41}));

  wal::BranchBody br{9, "dev", 17, 2, false, 19};
  body.clear();
  wal::EncodeBranchBody(&body, br);
  wal::BranchBody br_out;
  ASSERT_OK(wal::DecodeBranchBody(Slice(body), &br_out));
  EXPECT_EQ(br_out.child, 9u);
  EXPECT_EQ(br_out.name, "dev");
  EXPECT_EQ(br_out.base, 17u);
  EXPECT_EQ(br_out.parent_branch, 2u);
  EXPECT_FALSE(br_out.at_head);
  EXPECT_EQ(br_out.head, 19u);

  std::string staged;
  wal::EncodeBatchBody(&staged, /*branch=*/1, batch);
  wal::MergeBody mg{1, 2, 30, 31, MergePolicy::kThreeWayLeft, {29, 30}, staged};
  body.clear();
  wal::EncodeMergeBody(&body, mg);
  wal::MergeBody mg_out;
  ASSERT_OK(wal::DecodeMergeBody(Slice(body), &mg_out));
  EXPECT_EQ(mg_out.into, 1u);
  EXPECT_EQ(mg_out.from, 2u);
  EXPECT_EQ(mg_out.lca, 30u);
  EXPECT_EQ(mg_out.commit, 31u);
  EXPECT_EQ(mg_out.policy, MergePolicy::kThreeWayLeft);
  EXPECT_EQ(mg_out.parents, (std::vector<CommitId>{29, 30}));
  // The trailing bytes — the staged batch — survive the round trip and
  // decode back to the original ops.
  EXPECT_EQ(mg_out.batch_body, staged);
  WriteBatch staged_out(&schema);
  BranchId staged_branch = kInvalidBranch;
  ASSERT_OK(wal::DecodeBatchBody(Slice(mg_out.batch_body), &staged_branch,
                                 &staged_out));
  EXPECT_EQ(staged_branch, 1u);
  EXPECT_EQ(staged_out.size(), 3u);
}

TEST(WalWriterTest, AppendReadRoundTripAndRoll) {
  ScratchDir dir("wal_rt");
  wal::Writer::Options wopts;
  wopts.sync_mode = wal::SyncMode::kNone;
  wopts.segment_bytes = 64;  // force a roll between records
  ASSERT_OK_AND_ASSIGN(
      auto writer, wal::Writer::Open(dir.path(), wopts, /*next_lsn=*/1,
                                     /*segment_seq=*/1));
  const std::string big(80, 'x');
  ASSERT_OK_AND_ASSIGN(uint64_t lsn1,
                       writer->Append(wal::RecordType::kBatch, Slice(big)));
  ASSERT_OK_AND_ASSIGN(uint64_t lsn2,
                       writer->Append(wal::RecordType::kCommit, "tiny"));
  EXPECT_EQ(lsn1, 1u);
  EXPECT_EQ(lsn2, 2u);
  EXPECT_EQ(writer->segment_seq(), 2u);  // record 2 rolled into segment 2
  ASSERT_OK(writer->Close());

  ASSERT_OK_AND_ASSIGN(auto r1,
                       wal::Reader::Open(wal::Writer::SegmentPath(dir.path(), 1)));
  wal::FrameView frame;
  ASSERT_TRUE(r1->Next(&frame));
  EXPECT_EQ(frame.lsn, 1u);
  EXPECT_EQ(frame.type, wal::RecordType::kBatch);
  EXPECT_EQ(frame.body.ToString(), big);
  EXPECT_FALSE(r1->Next(&frame));
  EXPECT_FALSE(r1->torn_tail());

  ASSERT_OK_AND_ASSIGN(auto r2,
                       wal::Reader::Open(wal::Writer::SegmentPath(dir.path(), 2)));
  ASSERT_TRUE(r2->Next(&frame));
  EXPECT_EQ(frame.lsn, 2u);
  EXPECT_EQ(frame.body.ToString(), "tiny");
  EXPECT_FALSE(r2->Next(&frame));
}

TEST(WalReaderTest, TornTailAtEveryByteOffset) {
  ScratchDir dir("wal_torn");
  wal::Writer::Options wopts;
  wopts.sync_mode = wal::SyncMode::kNone;
  ASSERT_OK_AND_ASSIGN(auto writer,
                       wal::Writer::Open(dir.path(), wopts, 1, 1));
  ASSERT_OK(writer->Append(wal::RecordType::kBatch, "first-record").status());
  ASSERT_OK(writer->Append(wal::RecordType::kCommit, "second").status());
  ASSERT_OK(
      writer->Append(wal::RecordType::kMerge, "the-final-record").status());
  ASSERT_OK(writer->Close());

  const std::string seg = wal::Writer::SegmentPath(dir.path(), 1);
  ASSERT_OK_AND_ASSIGN(std::string data, ReadFileToString(seg));
  uint64_t clean_end = 0;
  std::vector<uint64_t> offsets = FrameOffsets(data, &clean_end);
  ASSERT_EQ(offsets.size(), 3u);
  ASSERT_EQ(clean_end, data.size());
  const uint64_t last_start = offsets[2];

  // Truncate at every byte offset inside the last record: the reader must
  // always yield exactly the first two records and flag the torn tail
  // (except at the exact boundary, where the file simply ends cleanly).
  const std::string cut_path = JoinPath(dir.path(), "cut.wal");
  for (uint64_t cut = last_start; cut < data.size(); ++cut) {
    ASSERT_OK(WriteStringToFile(cut_path, Slice(data.data(), cut)));
    ASSERT_OK_AND_ASSIGN(auto reader, wal::Reader::Open(cut_path));
    wal::FrameView frame;
    int n = 0;
    while (reader->Next(&frame)) ++n;
    EXPECT_EQ(n, 2) << "cut=" << cut;
    EXPECT_EQ(reader->valid_end(), last_start) << "cut=" << cut;
    EXPECT_EQ(reader->torn_tail(), cut != last_start) << "cut=" << cut;
  }
}

TEST(WalReaderTest, CorruptCrcStopsAtValidPrefix) {
  ScratchDir dir("wal_crc");
  wal::Writer::Options wopts;
  wopts.sync_mode = wal::SyncMode::kNone;
  ASSERT_OK_AND_ASSIGN(auto writer,
                       wal::Writer::Open(dir.path(), wopts, 1, 1));
  ASSERT_OK(writer->Append(wal::RecordType::kBatch, "intact").status());
  ASSERT_OK(writer->Append(wal::RecordType::kCommit, "damaged").status());
  ASSERT_OK(writer->Close());

  const std::string seg = wal::Writer::SegmentPath(dir.path(), 1);
  ASSERT_OK_AND_ASSIGN(std::string data, ReadFileToString(seg));
  uint64_t clean_end = 0;
  std::vector<uint64_t> offsets = FrameOffsets(data, &clean_end);
  ASSERT_EQ(offsets.size(), 2u);
  // Flip a payload byte of the second record: its CRC no longer matches.
  FlipByte(seg, offsets[1] + wal::kFrameHeaderSize + 2);

  ASSERT_OK_AND_ASSIGN(auto reader, wal::Reader::Open(seg));
  wal::FrameView frame;
  ASSERT_TRUE(reader->Next(&frame));
  EXPECT_EQ(frame.body.ToString(), "intact");
  EXPECT_FALSE(reader->Next(&frame));
  EXPECT_TRUE(reader->torn_tail());
  EXPECT_EQ(reader->valid_end(), offsets[1]);
}

// ------------------------------------------------------------- manifest

TEST(ManifestTest, RoundTripAndFallback) {
  ScratchDir dir("manifest");
  wal::ManifestData m;
  m.version = 1;
  m.checkpoint_tag = wal::CheckpointTag(1);
  m.checkpoint_lsn = 12;
  m.next_lsn = 13;
  m.wal_start_seq = 3;
  m.schema = "schema-bytes";
  m.engine = EngineType::kVersionFirst;
  ASSERT_OK(wal::WriteManifest(dir.path(), m, /*sync=*/false));

  ASSERT_OK_AND_ASSIGN(wal::ManifestData got,
                       wal::ReadCurrentManifest(dir.path()));
  EXPECT_EQ(got.version, 1u);
  EXPECT_EQ(got.checkpoint_tag, "ckpt-000001");
  EXPECT_EQ(got.checkpoint_lsn, 12u);
  EXPECT_EQ(got.next_lsn, 13u);
  EXPECT_EQ(got.wal_start_seq, 3u);
  EXPECT_EQ(got.schema, "schema-bytes");
  EXPECT_EQ(got.engine, EngineType::kVersionFirst);

  // Publish generation 2, then corrupt it: reads fall back to gen 1.
  m.version = 2;
  m.checkpoint_tag = wal::CheckpointTag(2);
  ASSERT_OK(wal::WriteManifest(dir.path(), m, false));
  ASSERT_OK_AND_ASSIGN(got, wal::ReadCurrentManifest(dir.path()));
  EXPECT_EQ(got.version, 2u);
  FlipByte(wal::ManifestFilePath(dir.path(), 2), 10);
  ASSERT_OK_AND_ASSIGN(got, wal::ReadCurrentManifest(dir.path()));
  EXPECT_EQ(got.version, 1u);

  // A missing CURRENT pointer also falls back to the highest readable.
  ASSERT_OK(RemoveFile(wal::CurrentFilePath(dir.path())));
  ASSERT_OK_AND_ASSIGN(got, wal::ReadCurrentManifest(dir.path()));
  EXPECT_EQ(got.version, 1u);

  ScratchDir empty("manifest_empty");
  EXPECT_TRUE(wal::ReadCurrentManifest(empty.path()).status().IsNotFound());
}

// ------------------------------------------------------- full recovery

class RecoveryTest : public ::testing::TestWithParam<EngineType> {
 protected:
  Result<std::unique_ptr<Decibel>> OpenDb(
      const std::string& dir, wal::SyncMode mode = wal::SyncMode::kFlush) {
    return Decibel::Open(dir, TestSchema(), DurableOptions(dir, GetParam(), mode));
  }
  Result<std::unique_ptr<Decibel>> ReopenDb(
      const std::string& dir, wal::SyncMode mode = wal::SyncMode::kFlush) {
    return Decibel::Open(dir, DurableOptions(dir, GetParam(), mode));
  }
};

TEST_P(RecoveryTest, CleanReopenPreservesBranchesCommitsAndData) {
  ScratchDir dir("recov_clean");
  CommitId c1 = kInvalidCommit;
  BranchId dev = kInvalidBranch;
  {
    ASSERT_OK_AND_ASSIGN(auto db, OpenDb(dir.path()));
    for (int i = 0; i < 20; ++i) {
      ASSERT_OK(db->InsertInto(kMasterBranch, MakeRecord(db->schema(), i, i)));
    }
    ASSERT_OK_AND_ASSIGN(c1, db->CommitBranch(kMasterBranch));
    ASSERT_OK_AND_ASSIGN(dev, db->BranchAt("dev", c1));
    ASSERT_OK(db->InsertInto(dev, MakeRecord(db->schema(), 100, 100)));
    ASSERT_OK(db->UpdateIn(kMasterBranch, MakeRecord(db->schema(), 3, 333)));
    ASSERT_OK(db->DeleteFrom(kMasterBranch, 4));
    ASSERT_OK(db->CommitBranch(dev).status());
    ASSERT_OK(db->CommitBranch(kMasterBranch).status());
    ASSERT_OK(
        db->Merge(kMasterBranch, dev, MergePolicy::kThreeWayLeft).status());
  }  // destructor checkpoints + closes the WAL

  ASSERT_OK_AND_ASSIGN(auto db, ReopenDb(dir.path()));
  EXPECT_TRUE(db->durable());
  EXPECT_EQ(db->schema().num_columns(), TestSchema().num_columns());

  auto master = CollectBranch(db.get(), kMasterBranch);
  EXPECT_EQ(master.size(), 20u);  // 20 - deleted pk4 + merged pk100
  EXPECT_EQ(master.count(4), 0u);
  EXPECT_EQ(master[3], 333);
  EXPECT_EQ(master[100], 100);
  auto dev_rows = CollectBranch(db.get(), dev);
  EXPECT_EQ(dev_rows.size(), 21u);
  EXPECT_EQ(dev_rows[100], 100);

  // Graph state: branch names, heads, and history all survive.
  ASSERT_OK_AND_ASSIGN(BranchId dev_again,
                       db->graph().FindBranchByName("dev"));
  EXPECT_EQ(dev_again, dev);
  EXPECT_TRUE(db->graph().HasCommit(c1));
  EXPECT_NE(db->graph().Head(kMasterBranch), kInvalidCommit);
  EXPECT_FALSE(db->IsDirty(kMasterBranch));
  // Historical read at the first commit still sees the original values.
  ASSERT_OK_AND_ASSIGN(Record old3, db->GetAt(c1, 3));
  EXPECT_EQ(old3.ref().GetInt32(1), 3);

  // The database stays writable after recovery.
  ASSERT_OK(db->InsertInto(kMasterBranch, MakeRecord(db->schema(), 200, 2)));
  ASSERT_OK(db->CommitBranch(kMasterBranch).status());
}

TEST_P(RecoveryTest, CrashConsistentCopyReplaysWal) {
  ScratchDir dir("recov_crash");
  ScratchDir crash("recov_crash_copy");
  BranchId side = kInvalidBranch;
  {
    ASSERT_OK_AND_ASSIGN(auto db, OpenDb(dir.path()));
    for (int i = 0; i < 10; ++i) {
      ASSERT_OK(db->InsertInto(kMasterBranch, MakeRecord(db->schema(), i, i)));
    }
    ASSERT_OK_AND_ASSIGN(CommitId base, db->CommitBranch(kMasterBranch));
    ASSERT_OK_AND_ASSIGN(side, db->BranchAt("side", base));
    ASSERT_OK(db->InsertInto(side, MakeRecord(db->schema(), 50, 5)));
    ASSERT_OK(db->CommitBranch(side).status());
    // Snapshot the directory while the db is still open: no destructor,
    // no final checkpoint — recovery must come from the WAL alone.
    ASSERT_OK(CopyDirRecursive(dir.path(), crash.path()));
  }

  ASSERT_OK_AND_ASSIGN(auto db, ReopenDb(crash.path()));
  auto master = CollectBranch(db.get(), kMasterBranch);
  EXPECT_EQ(master.size(), 10u);
  auto side_rows = CollectBranch(db.get(), side);
  EXPECT_EQ(side_rows.size(), 11u);
  EXPECT_EQ(side_rows[50], 5);
  ASSERT_OK_AND_ASSIGN(BranchId side_again,
                       db->graph().FindBranchByName("side"));
  EXPECT_EQ(side_again, side);
  EXPECT_FALSE(db->IsDirty(side));
}

TEST_P(RecoveryTest, MergeInWalTailReplaysCarriedBatch) {
  // A merge whose kMerge record sits in the WAL tail (crash after the
  // merge, before any checkpoint) must replay to the exact merged state.
  // The record carries the *resolved* batch, so replay applies it without
  // re-running the merge — a callback-resolved merge recovers bit-exact
  // even though the callback itself no longer exists at recovery time.
  ScratchDir dir("recov_merge");
  ScratchDir crash("recov_merge_copy");
  BranchId dev = kInvalidBranch;
  {
    ASSERT_OK_AND_ASSIGN(auto db, OpenDb(dir.path()));
    for (int i = 0; i < 10; ++i) {
      ASSERT_OK(db->InsertInto(kMasterBranch, MakeRecord(db->schema(), i, i)));
    }
    ASSERT_OK_AND_ASSIGN(CommitId base, db->CommitBranch(kMasterBranch));
    ASSERT_OK_AND_ASSIGN(dev, db->BranchAt("dev", base));
    // dev: update pk1, delete pk2, insert pk40. master: update pk1 too,
    // so the merge has a genuine conflict for the callback to decide.
    ASSERT_OK(db->UpdateIn(dev, MakeRecord(db->schema(), 1, 111)));
    ASSERT_OK(db->DeleteFrom(dev, 2));
    ASSERT_OK(db->InsertInto(dev, MakeRecord(db->schema(), 40, 44)));
    ASSERT_OK(db->UpdateIn(kMasterBranch, MakeRecord(db->schema(), 1, 999)));
    const MergeSpec spec =
        MergeSpec::Branches(kMasterBranch, dev)
            .OnConflict([&](const MergeConflict& c) {
              // Resolve the pk-1 conflict to a value neither side holds:
              // only the carried batch can reproduce it at replay.
              return ConflictResolution::Custom(
                  MakeRecord(db->schema(), c.pk, 555));
            });
    ASSERT_OK_AND_ASSIGN(MergeInfo info, db->Merge(spec));
    EXPECT_EQ(info.result.conflicts, 1u);
    // Snapshot with the db still open: the merge exists only in the WAL.
    ASSERT_OK(CopyDirRecursive(dir.path(), crash.path()));
  }

  ASSERT_OK_AND_ASSIGN(auto db, ReopenDb(crash.path()));
  auto master = CollectBranch(db.get(), kMasterBranch);
  EXPECT_EQ(master[1], 555);       // callback's custom record
  EXPECT_EQ(master.count(2), 0u);  // dev's delete adopted
  EXPECT_EQ(master[40], 44);       // dev's insert adopted
  EXPECT_EQ(master.size(), 10u);   // 10 - pk2 + pk40
  // The merge commit survives with both parents.
  ASSERT_OK_AND_ASSIGN(CommitInfo head,
                       db->graph().GetCommit(db->graph().Head(kMasterBranch)));
  EXPECT_EQ(head.parents.size(), 2u);
  // The recovered db keeps working: scan dev and write master.
  EXPECT_EQ(CollectBranch(db.get(), dev).size(), 10u);
  ASSERT_OK(db->InsertInto(kMasterBranch, MakeRecord(db->schema(), 50, 5)));
  ASSERT_OK(db->CommitBranch(kMasterBranch).status());
}

TEST_P(RecoveryTest, TornWalTailLosesOnlyTheTornSuffix) {
  ScratchDir dir("recov_torn");
  {
    ASSERT_OK_AND_ASSIGN(auto db, OpenDb(dir.path()));
    for (int i = 0; i < 8; ++i) {
      ASSERT_OK(db->InsertInto(kMasterBranch, MakeRecord(db->schema(), i, i)));
    }
    ASSERT_OK(db->CommitBranch(kMasterBranch).status());
    // One more insert whose WAL record we will shear off.
    ASSERT_OK(db->InsertInto(kMasterBranch, MakeRecord(db->schema(), 99, 9)));

    std::vector<std::string> segments = WalSegments(dir.path());
    ASSERT_FALSE(segments.empty());
    const std::string& last_seg = segments.back();
    ASSERT_OK_AND_ASSIGN(std::string data, ReadFileToString(last_seg));
    uint64_t clean_end = 0;
    std::vector<uint64_t> offsets = FrameOffsets(data, &clean_end);
    ASSERT_GE(offsets.size(), 2u);

    // Shear mid-way through the final record (the pk-99 insert), then
    // abandon the db without closing it (the copy below is the "disk").
    ScratchDir crash("recov_torn_copy");
    ASSERT_OK(CopyDirRecursive(dir.path(), crash.path()));
    const std::string crash_seg =
        JoinPath(JoinPath(crash.path(), "wal"),
                 last_seg.substr(last_seg.find_last_of('/') + 1));
    ASSERT_OK(TruncateFile(crash_seg, offsets.back() + wal::kFrameHeaderSize + 1));

    ASSERT_OK_AND_ASSIGN(auto recovered, ReopenDb(crash.path()));
    auto master = CollectBranch(recovered.get(), kMasterBranch);
    EXPECT_EQ(master.size(), 8u);  // torn pk-99 insert is gone...
    EXPECT_EQ(master.count(99), 0u);
    // ...and the recovered db accepts new writes where the tail was cut.
    ASSERT_OK(recovered->InsertInto(kMasterBranch,
                                    MakeRecord(recovered->schema(), 99, 1)));
    EXPECT_EQ(CollectBranch(recovered.get(), kMasterBranch).size(), 9u);
  }
}

TEST_P(RecoveryTest, RecoveryIgnoresGarbageGraphFile) {
  ScratchDir dir("recov_graph");
  ScratchDir crash("recov_graph_copy");
  BranchId feature = kInvalidBranch;
  {
    ASSERT_OK_AND_ASSIGN(auto db, OpenDb(dir.path()));
    for (int i = 0; i < 10; ++i) {
      ASSERT_OK(db->InsertInto(kMasterBranch, MakeRecord(db->schema(), i, i)));
    }
    ASSERT_OK_AND_ASSIGN(CommitId base, db->CommitBranch(kMasterBranch));
    ASSERT_OK_AND_ASSIGN(feature, db->BranchAt("feature", base));
    ASSERT_OK(db->InsertInto(feature, MakeRecord(db->schema(), 70, 7)));
    ASSERT_OK(db->CommitBranch(feature).status());
    ASSERT_OK(CopyDirRecursive(dir.path(), crash.path()));
  }
  // A power loss can leave a legacy per-commit graph.bin rename as
  // anything — stale bytes, garbage, an empty file. Recovery must never
  // read it: the checkpointed graph.bin.<tag> plus WAL replay is the
  // truth.
  ASSERT_OK(WriteStringToFile(JoinPath(crash.path(), "graph.bin"), "junk"));
  ASSERT_OK_AND_ASSIGN(auto db, ReopenDb(crash.path()));
  EXPECT_EQ(CollectBranch(db.get(), kMasterBranch).size(), 10u);
  auto feature_rows = CollectBranch(db.get(), feature);
  EXPECT_EQ(feature_rows.size(), 11u);
  EXPECT_EQ(feature_rows[70], 7);
  ASSERT_OK_AND_ASSIGN(BranchId again,
                       db->graph().FindBranchByName("feature"));
  EXPECT_EQ(again, feature);
}

TEST_P(RecoveryTest, CorruptCheckpointGraphIsCorruption) {
  ScratchDir dir("recov_graphckpt");
  {
    ASSERT_OK_AND_ASSIGN(auto db, OpenDb(dir.path()));
    ASSERT_OK(db->InsertInto(kMasterBranch, MakeRecord(db->schema(), 1, 1)));
    ASSERT_OK(db->CommitBranch(kMasterBranch).status());
  }
  // The per-checkpoint graph copy is the durable anchor; if it is
  // damaged, recovery must say so rather than improvise.
  ASSERT_OK_AND_ASSIGN(wal::ManifestData m,
                       wal::ReadCurrentManifest(dir.path()));
  FlipByte(JoinPath(dir.path(), "graph.bin." + m.checkpoint_tag), 2);
  EXPECT_TRUE(ReopenDb(dir.path()).status().IsCorruption());
}

TEST_P(RecoveryTest, MissingFirstLiveWalSegmentIsCorruption) {
  ScratchDir dir("recov_first");
  ScratchDir crash("recov_first_copy");
  {
    DecibelOptions options = DurableOptions(dir.path(), GetParam());
    options.wal_segment_bytes = 128;  // roll constantly
    ASSERT_OK_AND_ASSIGN(auto db,
                         Decibel::Open(dir.path(), TestSchema(), options));
    for (int i = 0; i < 30; ++i) {
      ASSERT_OK(db->InsertInto(kMasterBranch, MakeRecord(db->schema(), i, i)));
    }
    ASSERT_OK(db->CommitBranch(kMasterBranch).status());
    ASSERT_OK(CopyDirRecursive(dir.path(), crash.path()));
  }
  // Drop exactly the segment the manifest pins as the start of the live
  // window: the remaining segments are gap-free among themselves, but the
  // oldest post-checkpoint records are gone.
  ASSERT_OK_AND_ASSIGN(wal::ManifestData m,
                       wal::ReadCurrentManifest(crash.path()));
  ASSERT_OK(RemoveFile(wal::Writer::SegmentPath(JoinPath(crash.path(), "wal"),
                                                m.wal_start_seq)));
  EXPECT_TRUE(ReopenDb(crash.path()).status().IsCorruption());
}

TEST_P(RecoveryTest, EngineMetaWithoutFormatHeaderFailsClearly) {
  ScratchDir dir("recov_meta");
  {
    ASSERT_OK_AND_ASSIGN(auto db, OpenDb(dir.path()));
    ASSERT_OK(db->InsertInto(kMasterBranch, MakeRecord(db->schema(), 1, 1)));
    ASSERT_OK(db->CommitBranch(kMasterBranch).status());
  }
  // Clobber the meta's magic: a headerless (pre-versioning) meta must be
  // rejected with a clear InvalidArgument, not a misleading mid-decode
  // Corruption.
  ASSERT_OK_AND_ASSIGN(wal::ManifestData m,
                       wal::ReadCurrentManifest(dir.path()));
  const std::string meta_path =
      JoinPath(JoinPath(dir.path(), EngineTypeName(GetParam())),
               "engine.meta." + m.checkpoint_tag);
  FlipByte(meta_path, 0);
  const Status s = ReopenDb(dir.path()).status();
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_NE(s.ToString().find("format header"), std::string::npos)
      << s.ToString();
}

TEST_P(RecoveryTest, MissingWalSegmentIsCorruption) {
  ScratchDir dir("recov_gap");
  ScratchDir crash("recov_gap_copy");
  {
    DecibelOptions options = DurableOptions(dir.path(), GetParam());
    options.wal_segment_bytes = 128;  // roll constantly
    ASSERT_OK_AND_ASSIGN(auto db,
                         Decibel::Open(dir.path(), TestSchema(), options));
    for (int i = 0; i < 30; ++i) {
      ASSERT_OK(db->InsertInto(kMasterBranch, MakeRecord(db->schema(), i, i)));
    }
    ASSERT_OK(db->CommitBranch(kMasterBranch).status());
    ASSERT_OK(CopyDirRecursive(dir.path(), crash.path()));
  }
  std::vector<std::string> segments = WalSegments(crash.path());
  ASSERT_GE(segments.size(), 3u);
  ASSERT_OK(RemoveFile(segments[segments.size() / 2]));
  EXPECT_TRUE(ReopenDb(crash.path()).status().IsCorruption());
}

TEST_P(RecoveryTest, CorruptManifestFallsBackToPreviousGeneration) {
  ScratchDir dir("recov_manifest");
  ScratchDir crash("recov_manifest_copy");
  uint64_t generation = 0;
  {
    ASSERT_OK_AND_ASSIGN(auto db, OpenDb(dir.path()));
    for (int i = 0; i < 10; ++i) {
      ASSERT_OK(db->InsertInto(kMasterBranch, MakeRecord(db->schema(), i, i)));
    }
    ASSERT_OK(db->CommitBranch(kMasterBranch).status());
    ASSERT_OK(db->CheckpointNow());  // publishes a new manifest generation
    generation = db->checkpoint_generation();
    // More acknowledged work after the checkpoint: it lives only in the
    // WAL suffix, which the fallback generation must also replay.
    ASSERT_OK(db->InsertInto(kMasterBranch, MakeRecord(db->schema(), 77, 7)));
    ASSERT_OK(db->CommitBranch(kMasterBranch).status());
    ASSERT_OK(CopyDirRecursive(dir.path(), crash.path()));
  }
  ASSERT_GE(generation, 2u);
  // Corrupt the newest manifest in the snapshot; recovery must fall back
  // to the previous generation and still replay up to the last commit.
  FlipByte(wal::ManifestFilePath(crash.path(), generation), 12);
  ASSERT_OK_AND_ASSIGN(auto db, ReopenDb(crash.path()));
  auto master = CollectBranch(db.get(), kMasterBranch);
  EXPECT_EQ(master.size(), 11u);
  EXPECT_EQ(master[77], 7);
}

TEST_P(RecoveryTest, BackgroundCheckpointsTruncateTheWal) {
  ScratchDir dir("recov_trunc");
  DecibelOptions options =
      DurableOptions(dir.path(), GetParam(), wal::SyncMode::kNone);
  options.checkpoint_interval_bytes = 512;  // checkpoint eagerly
  uint64_t generation = 0;
  int rows = 0;
  {
    ASSERT_OK_AND_ASSIGN(auto db,
                         Decibel::Open(dir.path(), TestSchema(), options));
    // Feed the WAL until the background checkpointer has run at least
    // twice past Open's own checkpoint (generation 1). The scheduler
    // coalesces any backlog of pending bytes into one run, so a fixed
    // write count can legitimately be covered by a single background
    // checkpoint; writing until the generation moves makes the test
    // independent of how the scheduler thread interleaves with us.
    while (rows < 200 ||
           (db->checkpoint_generation() < 3 && rows < 100000)) {
      ASSERT_OK(
          db->InsertInto(kMasterBranch, MakeRecord(db->schema(), rows, rows)));
      if (++rows % 50 == 0) ASSERT_OK(db->CommitBranch(kMasterBranch).status());
    }
    for (int spin = 0; spin < 100 && db->checkpoint_generation() < 3; ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    generation = db->checkpoint_generation();
  }
  EXPECT_GE(generation, 3u) << "background checkpointer never ran";
  // Old generations are garbage-collected: at most two manifests and a
  // short WAL suffix remain.
  int manifests = 0;
  ASSERT_OK_AND_ASSIGN(std::vector<std::string> names, ListDir(dir.path()));
  for (const auto& name : names) {
    if (name.rfind("MANIFEST-", 0) == 0) ++manifests;
  }
  EXPECT_LE(manifests, 2);
  ASSERT_OK_AND_ASSIGN(auto db, ReopenDb(dir.path()));
  EXPECT_EQ(CollectBranch(db.get(), kMasterBranch).size(),
            static_cast<size_t>(rows));
}

/// The acceptance crash test: a forked child loads records under kFsync,
/// recording each acknowledged commit in a side file, then dies with
/// _exit — no destructors, no flushes, exactly like kill -9. The parent
/// reopens the directory and verifies every acknowledged commit survived.
TEST_P(RecoveryTest, KilledChildLosesNoAcknowledgedCommit) {
  ScratchDir dir("recov_kill");
  // Lives outside the db directory so recovery never sees it.
  const std::string progress = dir.path() + "_progress";
  RemoveFile(progress).ok();

  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: no gtest machinery, no return — only _exit.
    DecibelOptions options =
        DurableOptions(dir.path(), GetParam(), wal::SyncMode::kFsync);
    auto db = Decibel::Open(dir.path(), TestSchema(), options);
    if (!db.ok()) _exit(3);
    auto side = (*db)->BranchAt("side", (*db)->graph().Head(kMasterBranch));
    if (!side.ok()) _exit(4);
    int acked = -1;
    for (int i = 0; i < 60; ++i) {
      const BranchId target = (i % 2 == 0) ? kMasterBranch : *side;
      if (!(*db)->InsertInto(target, MakeRecord((*db)->schema(), i, i)).ok()) {
        _exit(5);
      }
      if (i % 5 == 4) {
        auto c = (*db)->CommitBranch(kMasterBranch);
        auto c2 = (*db)->CommitBranch(*side);
        if (!c.ok() || !c2.ok()) _exit(6);
        // The commits are acknowledged: record that durably, then keep
        // loading so the crash lands with acknowledged state at risk.
        acked = i;
        std::string note = std::to_string(acked) + "," +
                           std::to_string(*c) + "," + std::to_string(*c2);
        if (!AtomicWriteFile(progress, note, /*sync=*/true).ok()) _exit(7);
      }
      if (i == 42) _exit(42);  // crash mid-load, uncommitted tail pending
    }
    _exit(8);  // unreachable: the crash above fires first
  }

  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), 42) << "child failed before the crash point";

  ASSERT_OK_AND_ASSIGN(std::string note, ReadFileToString(progress));
  const int acked = std::stoi(note.substr(0, note.find(',')));
  std::string rest = note.substr(note.find(',') + 1);
  const CommitId master_commit = std::stoull(rest.substr(0, rest.find(',')));
  const CommitId side_commit = std::stoull(rest.substr(rest.find(',') + 1));
  ASSERT_GE(acked, 39);  // the i==39 round committed before the i==42 crash

  ASSERT_OK_AND_ASSIGN(
      auto db, ReopenDb(dir.path(), wal::SyncMode::kFsync));
  ASSERT_OK_AND_ASSIGN(BranchId side, db->graph().FindBranchByName("side"));
  // Every record up to the acknowledged commit is present on its branch.
  for (int i = 0; i <= acked; ++i) {
    const BranchId target = (i % 2 == 0) ? kMasterBranch : side;
    ASSERT_OK_AND_ASSIGN(Record rec, db->Get(target, i));
    EXPECT_EQ(rec.ref().GetInt32(1), i) << "pk " << i;
  }
  // The acknowledged commit ids themselves survive in the graph, at the
  // heads of their branches or among their ancestors.
  EXPECT_TRUE(db->graph().HasCommit(master_commit));
  EXPECT_TRUE(db->graph().HasCommit(side_commit));
  EXPECT_TRUE(db->graph().IsAncestor(master_commit,
                                     db->graph().Head(kMasterBranch)) ||
              db->graph().Head(kMasterBranch) == master_commit);
  RemoveFile(progress).ok();
}

/// Zone-map statistics and the version-first pk index must come back
/// after a kill-style crash: the child loads multi-page, pk-sorted data
/// under compression, commits, and dies with _exit; the parent reopens
/// and proves that predicate scans still skip pages, that the scanned
/// rows are exact, and that point lookups resolve.
TEST_P(RecoveryTest, StatsAndPkIndexSurviveCrashRecovery) {
  ScratchDir dir("recov_stats");
  constexpr int64_t kRows = 8000;  // ~3 pages at 64 KiB / 21 B records

  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    DecibelOptions options =
        DurableOptions(dir.path(), GetParam(), wal::SyncMode::kFsync);
    options.compress_pages = true;
    auto db = Decibel::Open(dir.path(), TestSchema(), options);
    if (!db.ok()) _exit(3);
    auto txn = (*db)->Begin(kMasterBranch);
    if (!txn.ok()) _exit(4);
    for (int64_t pk = 0; pk < kRows; ++pk) {
      // pk-correlated c1 keeps page zones selective; c2 is a small
      // domain so sealed pages actually compress.
      Record rec(&(*db)->schema());
      rec.SetPk(pk);
      rec.SetInt32(1, static_cast<int32_t>(pk));
      rec.SetInt32(2, static_cast<int32_t>(pk % 8));
      rec.SetInt32(3, 1);
      if (!txn->Insert(rec).ok()) _exit(5);
    }
    if (!txn->Commit().ok()) _exit(6);
    // Delete near the tail: the tombstone's key stays inside the tail
    // page's pk range, so earlier pages remain pk-disjoint (the
    // version-first page-skip precondition).
    if (!(*db)->DeleteFrom(kMasterBranch, kRows - 10).ok()) _exit(7);
    if (!(*db)->CommitBranch(kMasterBranch).ok()) _exit(8);
    _exit(42);  // kill -9 semantics: no destructors, no final checkpoint
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), 42) << "child failed before the crash";

  DecibelOptions options =
      DurableOptions(dir.path(), GetParam(), wal::SyncMode::kFsync);
  options.compress_pages = true;
  ASSERT_OK_AND_ASSIGN(auto db, Decibel::Open(dir.path(), options));

  // Pushdown scan: exact rows, and the recovered zone maps skip pages.
  auto pred =
      Predicate::Compare(db->schema(), "c1", CompareOp::kGe,
                         static_cast<int64_t>(kRows - 50));
  ASSERT_OK(pred.status());
  ASSERT_OK_AND_ASSIGN(
      auto cursor,
      db->NewScan(ScanSpec::Branch(kMasterBranch).Where(*pred)));
  std::map<int64_t, int32_t> rows;
  ScanRow row;
  while (cursor->Next(&row)) rows[row.record.pk()] = row.record.GetInt32(1);
  ASSERT_OK(cursor->status());
  EXPECT_EQ(rows.size(), 49u);  // 50-row range minus the deleted key
  EXPECT_EQ(rows.begin()->first, kRows - 50);
  EXPECT_EQ(rows.count(kRows - 10), 0u);
  EXPECT_GT(cursor->stats().pages_skipped, 0u)
      << "zone maps did not survive recovery";
  EXPECT_GT(cursor->stats().bytes_read, 0u);

  // Point lookups resolve after recovery (for version-first this is the
  // rebuilt pk index, not an ancestry walk), and the delete held.
  ASSERT_OK_AND_ASSIGN(Record rec, db->Get(kMasterBranch, kRows / 2));
  EXPECT_EQ(rec.ref().GetInt32(1), static_cast<int32_t>(kRows / 2));
  EXPECT_TRUE(db->Get(kMasterBranch, kRows - 10).status().IsNotFound());
  EXPECT_TRUE(db->Get(kMasterBranch, kRows + 5).status().IsNotFound());

  // The recovered store keeps accepting writes and stays consistent.
  ASSERT_OK(db->InsertInto(kMasterBranch,
                           MakeRecord(db->schema(), kRows + 100, 7)));
  ASSERT_OK_AND_ASSIGN(rec, db->Get(kMasterBranch, kRows + 100));
  EXPECT_EQ(rec.ref().GetInt32(1), 7);
}

/// Same guarantee through the checkpoint path: a clean close persists
/// the v3 engine meta (per-segment zone-map blobs); reopen must load
/// them rather than rescanning, and skipping must work immediately.
TEST_P(RecoveryTest, ZoneMapsSurviveCleanReopen) {
  ScratchDir dir("recov_stats_clean");
  constexpr int64_t kRows = 8000;
  {
    DecibelOptions options = DurableOptions(dir.path(), GetParam());
    options.compress_pages = true;
    ASSERT_OK_AND_ASSIGN(auto db,
                         Decibel::Open(dir.path(), TestSchema(), options));
    ASSERT_OK_AND_ASSIGN(Transaction txn, db->Begin(kMasterBranch));
    for (int64_t pk = 0; pk < kRows; ++pk) {
      Record rec(&db->schema());
      rec.SetPk(pk);
      rec.SetInt32(1, static_cast<int32_t>(pk));
      ASSERT_OK(txn.Insert(rec));
    }
    ASSERT_OK(txn.Commit());
    ASSERT_OK(db->CommitBranch(kMasterBranch).status());
  }  // destructor checkpoints: stats travel via the engine meta

  DecibelOptions options = DurableOptions(dir.path(), GetParam());
  options.compress_pages = true;
  ASSERT_OK_AND_ASSIGN(auto db, Decibel::Open(dir.path(), options));
  auto pred = Predicate::Compare(db->schema(), "c1", CompareOp::kLt, 30);
  ASSERT_OK(pred.status());
  ASSERT_OK_AND_ASSIGN(
      auto cursor,
      db->NewScan(ScanSpec::Branch(kMasterBranch).Where(*pred)));
  std::map<int64_t, int32_t> rows;
  ScanRow row;
  while (cursor->Next(&row)) rows[row.record.pk()] = row.record.GetInt32(1);
  ASSERT_OK(cursor->status());
  EXPECT_EQ(rows.size(), 30u);
  EXPECT_GT(cursor->stats().pages_skipped, 0u);
  ASSERT_OK_AND_ASSIGN(Record rec, db->Get(kMasterBranch, 4321));
  EXPECT_EQ(rec.ref().GetInt32(1), 4321);
}

TEST_P(RecoveryTest, ConcurrentWritersSurviveBackgroundCheckpoints) {
  ScratchDir dir("recov_conc");
  DecibelOptions options = DurableOptions(dir.path(), GetParam());
  options.checkpoint_interval_bytes = 2048;
  constexpr int kThreads = 4;
  constexpr int kTxns = 15;
  constexpr int kRowsPerTxn = 4;
  std::vector<BranchId> branches;
  {
    ASSERT_OK_AND_ASSIGN(auto db,
                         Decibel::Open(dir.path(), TestSchema(), options));
    for (int t = 0; t < kThreads; ++t) {
      ASSERT_OK_AND_ASSIGN(
          BranchId b, db->BranchAt("writer-" + std::to_string(t),
                                   db->graph().Head(kMasterBranch)));
      branches.push_back(b);
    }
    std::atomic<bool> failed{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kTxns && !failed.load(); ++i) {
          auto txn = db->Begin(branches[t]);
          if (!txn.ok()) { failed = true; return; }
          for (int r = 0; r < kRowsPerTxn; ++r) {
            const int64_t pk = t * 100000 + i * kRowsPerTxn + r;
            if (!txn->Insert(MakeRecord(db->schema(), pk, t)).ok()) {
              failed = true;
              return;
            }
          }
          Status s = txn->Commit();
          while (s.IsAborted()) s = txn->Commit();  // lock-timeout retry
          if (!s.ok()) { failed = true; return; }
          if (!db->CommitBranch(branches[t]).ok()) { failed = true; return; }
        }
      });
    }
    // Foreground checkpoints racing the writers and the background thread.
    for (int i = 0; i < 3; ++i) {
      ASSERT_OK(db->CheckpointNow());
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    for (auto& th : threads) th.join();
    ASSERT_FALSE(failed.load());
    for (int t = 0; t < kThreads; ++t) {
      EXPECT_EQ(CollectBranch(db.get(), branches[t]).size(),
                size_t(kTxns * kRowsPerTxn));
    }
  }
  ASSERT_OK_AND_ASSIGN(auto db, ReopenDb(dir.path()));
  for (int t = 0; t < kThreads; ++t) {
    auto rows = CollectBranch(db.get(), branches[t]);
    ASSERT_EQ(rows.size(), size_t(kTxns * kRowsPerTxn)) << "branch " << t;
    for (const auto& [pk, val] : rows) {
      EXPECT_EQ(val, t) << "pk " << pk;
    }
    EXPECT_FALSE(db->IsDirty(branches[t]));
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, RecoveryTest,
                         ::testing::Values(EngineType::kTupleFirst,
                                           EngineType::kVersionFirst,
                                           EngineType::kHybrid),
                         [](const auto& info) {
                           switch (info.param) {
                             case EngineType::kTupleFirst:
                               return "TupleFirst";
                             case EngineType::kVersionFirst:
                               return "VersionFirst";
                             default:
                               return "Hybrid";
                           }
                         });

}  // namespace
}  // namespace decibel
