/// Tests for the transaction-centric public API: Decibel::Begin,
/// Transaction/WriteBatch staging, atomic commit under the branch lock,
/// abort semantics, the retryable lock-timeout Status::Aborted, and
/// serialization of concurrent transactions on one branch (§2.2.3's
/// branch-granularity two-phase locking).

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "test_util.h"
#include "txn/lock_guard.h"
#include "txn/write_batch.h"

namespace decibel {
namespace {

using testing_util::CollectBranch;
using testing_util::MakeRecord;
using testing_util::ScratchDir;
using testing_util::TestSchema;

// Shared semantics across all three engines.
class TxnApiTest : public ::testing::TestWithParam<EngineType> {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<ScratchDir>("txn_api");
    schema_ = TestSchema(2);
    DecibelOptions options;
    options.engine = GetParam();
    ASSERT_OK_AND_ASSIGN(
        db_, Decibel::Open(dir_->path(), schema_, options));
  }

  std::unique_ptr<ScratchDir> dir_;
  Schema schema_ = TestSchema(2);
  std::unique_ptr<Decibel> db_;
};

TEST_P(TxnApiTest, StagedOpsInvisibleUntilCommit) {
  Session s = db_->NewSession();
  ASSERT_OK_AND_ASSIGN(Transaction txn, db_->Begin(&s));
  ASSERT_OK(txn.Insert(MakeRecord(schema_, 1, 10)));
  ASSERT_OK(txn.Insert(MakeRecord(schema_, 2, 20)));
  EXPECT_EQ(txn.staged(), 2u);

  // Nothing is visible (or dirty) before Commit.
  EXPECT_TRUE(CollectBranch(db_.get(), kMasterBranch).empty());
  EXPECT_FALSE(db_->IsDirty(kMasterBranch));

  ASSERT_OK(txn.Commit());
  EXPECT_FALSE(txn.active());
  EXPECT_TRUE(db_->IsDirty(kMasterBranch));
  auto rows = CollectBranch(db_.get(), kMasterBranch);
  EXPECT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], 10);
  EXPECT_EQ(rows[2], 20);
}

TEST_P(TxnApiTest, MixedBatchAppliesInOrder) {
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 1, 1)));

  ASSERT_OK_AND_ASSIGN(Transaction txn, db_->Begin(kMasterBranch));
  ASSERT_OK(txn.Update(MakeRecord(schema_, 1, 99)));   // update existing
  ASSERT_OK(txn.Insert(MakeRecord(schema_, 2, 2)));    // new key
  ASSERT_OK(txn.Insert(MakeRecord(schema_, 3, 3)));    // inserted...
  ASSERT_OK(txn.Delete(3));                            // ...then deleted
  ASSERT_OK(txn.Update(MakeRecord(schema_, 2, 22)));   // update staged key
  ASSERT_OK(txn.Commit());

  auto rows = CollectBranch(db_.get(), kMasterBranch);
  EXPECT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], 99);
  EXPECT_EQ(rows[2], 22);
}

TEST_P(TxnApiTest, AbortDiscardsStagedOps) {
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 1, 1)));
  ASSERT_OK_AND_ASSIGN(CommitId c1, db_->CommitBranch(kMasterBranch));
  (void)c1;

  ASSERT_OK_AND_ASSIGN(Transaction txn, db_->Begin(kMasterBranch));
  ASSERT_OK(txn.Insert(MakeRecord(schema_, 2, 2)));
  ASSERT_OK(txn.Delete(1));
  ASSERT_OK(txn.Abort());
  EXPECT_FALSE(txn.active());
  EXPECT_EQ(txn.staged(), 0u);
  // Staging or committing after the end of the transaction is an error.
  EXPECT_FALSE(txn.Insert(MakeRecord(schema_, 3, 3)).ok());
  EXPECT_FALSE(txn.Commit().ok());

  auto rows = CollectBranch(db_.get(), kMasterBranch);
  EXPECT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[1], 1);
  EXPECT_FALSE(db_->IsDirty(kMasterBranch));
}

TEST_P(TxnApiTest, DestructorAborts) {
  {
    ASSERT_OK_AND_ASSIGN(Transaction txn, db_->Begin(kMasterBranch));
    ASSERT_OK(txn.Insert(MakeRecord(schema_, 7, 7)));
    // Dropped without Commit: staged ops must vanish.
  }
  EXPECT_TRUE(CollectBranch(db_.get(), kMasterBranch).empty());
  EXPECT_FALSE(db_->IsDirty(kMasterBranch));
}

TEST_P(TxnApiTest, BeginRejectsHistoricalCheckout) {
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 1, 1)));
  ASSERT_OK_AND_ASSIGN(CommitId c1, db_->CommitBranch(kMasterBranch));
  Session s = db_->NewSession();
  ASSERT_OK(db_->Checkout(&s, c1));
  EXPECT_FALSE(db_->Begin(&s).ok());
}

TEST_P(TxnApiTest, PerOpWrappersAreOneOpTransactions) {
  Session s = db_->NewSession();
  ASSERT_OK(db_->Insert(&s, MakeRecord(schema_, 1, 1)));
  ASSERT_OK(db_->Update(&s, MakeRecord(schema_, 1, 2)));
  EXPECT_TRUE(db_->IsDirty(kMasterBranch));
  ASSERT_OK(db_->Delete(&s, 1));
  EXPECT_TRUE(CollectBranch(db_.get(), kMasterBranch).empty());
  // The branch lock is fully released between one-op transactions.
  EXPECT_FALSE(db_->lock_manager()->IsLocked(kMasterBranch));
}

TEST_P(TxnApiTest, LockTimeoutIsRetryable) {
  ScratchDir dir("txn_api_timeout");
  DecibelOptions options;
  options.engine = GetParam();
  options.lock_timeout_ms = 50;
  ASSERT_OK_AND_ASSIGN(auto db, Decibel::Open(dir.path(), schema_, options));

  ASSERT_OK_AND_ASSIGN(Transaction txn, db->Begin(kMasterBranch));
  ASSERT_OK(txn.Insert(MakeRecord(schema_, 1, 1)));

  // A competing holder keeps the branch exclusively locked past the
  // deadlock timeout: Commit fails with the retryable Aborted status and
  // the staged batch survives.
  ASSERT_OK(
      db->lock_manager()->Acquire(9999, kMasterBranch, LockMode::kExclusive));
  const Status blocked = txn.Commit();
  EXPECT_TRUE(blocked.IsAborted()) << blocked.ToString();
  EXPECT_TRUE(txn.active());
  EXPECT_EQ(txn.staged(), 1u);
  EXPECT_TRUE(CollectBranch(db.get(), kMasterBranch).empty());

  // Retry discipline: once the blocker releases, the same Commit call
  // succeeds with the retained batch.
  db->lock_manager()->Release(9999, kMasterBranch);
  ASSERT_OK(txn.Commit());
  EXPECT_EQ(CollectBranch(db.get(), kMasterBranch).size(), 1u);
}

TEST_P(TxnApiTest, DeleteOfAbsentKeyIsAllOrNothing) {
  if (GetParam() == EngineType::kVersionFirst) {
    // Version-first deletes are blind tombstone appends (§3.3): there is
    // no pk index to validate against, so nothing to test here.
    GTEST_SKIP();
  }
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 1, 1)));

  ASSERT_OK_AND_ASSIGN(Transaction txn, db_->Begin(kMasterBranch));
  ASSERT_OK(txn.Insert(MakeRecord(schema_, 2, 2)));
  ASSERT_OK(txn.Delete(42));  // never existed
  const Status failed = txn.Commit();
  EXPECT_TRUE(failed.IsNotFound()) << failed.ToString();

  // The batch was rejected up front: the staged insert did not leak.
  auto rows = CollectBranch(db_.get(), kMasterBranch);
  EXPECT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows.count(2), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, TxnApiTest,
                         ::testing::Values(EngineType::kTupleFirst,
                                           EngineType::kVersionFirst,
                                           EngineType::kHybrid),
                         [](const auto& info) {
                           switch (info.param) {
                             case EngineType::kTupleFirst:
                               return "TupleFirst";
                             case EngineType::kVersionFirst:
                               return "VersionFirst";
                             default:
                               return "Hybrid";
                           }
                         });

// ------------------------------------------------- concurrent transactions

// Two threads transact on the same branch: each transaction upserts every
// key in [0, K) with a value unique to that transaction. Because commits
// apply atomically under the branch's exclusive lock, a scan after the
// dust settles must observe exactly one transaction's values on all keys
// — interleaving would leave a mix. (This test is the TSan CI target for
// the transaction commit path.)
TEST(TxnConcurrencyTest, CommitsOnOneBranchDoNotInterleave) {
  ScratchDir dir("txn_api_conc");
  const Schema schema = TestSchema(2);
  DecibelOptions options;
  options.engine = EngineType::kHybrid;
  options.lock_timeout_ms = 5000;
  auto db = Decibel::Open(dir.path(), schema, options).MoveValueUnsafe();

  constexpr int kKeys = 64;
  constexpr int kTxnsPerThread = 10;
  constexpr int kThreads = 2;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kTxnsPerThread; ++round) {
        auto txn = db->Begin(kMasterBranch);
        ASSERT_TRUE(txn.ok());
        const int32_t marker = t * 1000 + round;
        for (int64_t pk = 0; pk < kKeys; ++pk) {
          ASSERT_OK(txn->Insert(MakeRecord(schema, pk, marker)));
        }
        Status s = txn->Commit();
        while (s.IsAborted()) s = txn->Commit();  // retry discipline
        ASSERT_OK(s);
      }
    });
  }
  for (auto& t : threads) t.join();

  auto rows = CollectBranch(db.get(), kMasterBranch);
  ASSERT_EQ(rows.size(), static_cast<size_t>(kKeys));
  const int32_t winner = rows[0];
  for (const auto& [pk, value] : rows) {
    EXPECT_EQ(value, winner) << "interleaved commit at pk " << pk;
  }
}

// Writers on distinct branches need no caller-side coordination:
// transactions on different branches proceed in parallel (the hybrid
// engine appends to independent head segments; tuple-first serializes
// its shared heap internally).
class TxnConcurrencyBranchesTest
    : public ::testing::TestWithParam<EngineType> {};

TEST_P(TxnConcurrencyBranchesTest, ParallelTransactionsOnDistinctBranches) {
  ScratchDir dir("txn_api_par");
  const Schema schema = TestSchema(2);
  DecibelOptions options;
  options.engine = GetParam();
  auto db = Decibel::Open(dir.path(), schema, options).MoveValueUnsafe();

  // Both branches inherit pks [0, 100) from master, so the threads'
  // updates and deletes of inherited records hit state shared between
  // the branches (tuple-first's one heap/bitmap universe; hybrid's
  // frozen ancestor-segment bitmaps; version-first's shared segment
  // registry) — the engines must order them.
  for (int64_t pk = 0; pk < 100; ++pk) {
    ASSERT_OK(db->InsertInto(kMasterBranch, MakeRecord(schema, pk, 0)));
  }
  Session s = db->NewSession();
  auto b1 = db->Branch("w1", &s);
  ASSERT_TRUE(b1.ok());
  ASSERT_OK(db->Use(&s, kMasterBranch));
  auto b2 = db->Branch("w2", &s);
  ASSERT_TRUE(b2.ok());

  auto writer = [&](BranchId branch, int64_t base) {
    for (int round = 0; round < 5; ++round) {
      auto txn = db->Begin(branch);
      ASSERT_TRUE(txn.ok());
      for (int64_t i = 0; i < 50; ++i) {
        ASSERT_OK(txn->Insert(
            MakeRecord(schema, base + round * 50 + i, round)));
      }
      for (int64_t pk = round * 20; pk < round * 20 + 20; ++pk) {
        ASSERT_OK(txn->Update(MakeRecord(schema, pk, round + 1)));
      }
      ASSERT_OK(txn->Delete(base % 7 + round));  // inherited key
      ASSERT_OK(txn->Insert(MakeRecord(schema, base % 7 + round, 9)));
      ASSERT_OK(txn->Commit());
    }
  };
  std::thread t1(writer, *b1, 1000);
  std::thread t2(writer, *b2, 2000);
  t1.join();
  t2.join();
  EXPECT_EQ(CollectBranch(db.get(), *b1).size(), 350u);
  EXPECT_EQ(CollectBranch(db.get(), *b2).size(), 350u);
  // Master is untouched by the branch-local edits.
  EXPECT_EQ(CollectBranch(db.get(), kMasterBranch).size(), 100u);
}

INSTANTIATE_TEST_SUITE_P(TxnConcurrency, TxnConcurrencyBranchesTest,
                         ::testing::Values(EngineType::kTupleFirst,
                                           EngineType::kVersionFirst,
                                           EngineType::kHybrid),
                         [](const auto& info) {
                           switch (info.param) {
                             case EngineType::kTupleFirst:
                               return "TupleFirst";
                             case EngineType::kVersionFirst:
                               return "VersionFirst";
                             default:
                               return "Hybrid";
                           }
                         });

// --------------------------------------------------------------- WriteBatch

TEST(WriteBatchTest, StagesAndClears) {
  const Schema schema = TestSchema(2);
  WriteBatch batch(&schema);
  EXPECT_TRUE(batch.empty());
  batch.Insert(MakeRecord(schema, 1, 10));
  batch.Update(MakeRecord(schema, 2, 20));
  batch.Delete(3);
  EXPECT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch.num_appends(), 2u);
  EXPECT_EQ(batch.arena_bytes(), 2 * schema.record_size());

  EXPECT_EQ(batch.ops()[0].kind, WriteBatch::OpKind::kInsert);
  EXPECT_EQ(batch.RecordAt(batch.ops()[0]).pk(), 1);
  EXPECT_EQ(batch.RecordAt(batch.ops()[1]).GetInt32(1), 20);
  EXPECT_EQ(batch.ops()[2].kind, WriteBatch::OpKind::kDelete);
  EXPECT_EQ(batch.ops()[2].pk, 3);

  batch.Clear();
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.num_appends(), 0u);
}

// --------------------------------------------------------------- LockGuard

TEST(LockGuardTest, ReleasesOnDestruction) {
  LockManager locks;
  {
    auto guard = LockGuard::Acquire(&locks, 1, 0, LockMode::kExclusive);
    ASSERT_TRUE(guard.ok());
    EXPECT_TRUE(guard->held());
    EXPECT_TRUE(locks.IsLocked(0));
  }
  EXPECT_FALSE(locks.IsLocked(0));
}

TEST(LockGuardTest, MoveTransfersOwnership) {
  LockManager locks;
  auto guard = LockGuard::Acquire(&locks, 1, 0, LockMode::kShared);
  ASSERT_TRUE(guard.ok());
  LockGuard moved = std::move(*guard);
  EXPECT_TRUE(moved.held());
  EXPECT_FALSE(guard->held());
  moved.Release();
  EXPECT_FALSE(locks.IsLocked(0));
  moved.Release();  // idempotent
}

TEST(LockGuardTest, AcquireFailureHoldsNothing) {
  LockManager locks(std::chrono::milliseconds(20));
  auto first = LockGuard::Acquire(&locks, 1, 0, LockMode::kExclusive);
  ASSERT_TRUE(first.ok());
  auto second = LockGuard::Acquire(&locks, 2, 0, LockMode::kExclusive);
  EXPECT_TRUE(second.status().IsAborted());
}

TEST(LockScopeTest, ReleasesEverythingAtOnce) {
  LockManager locks;
  {
    LockScope scope(&locks, 7);
    ASSERT_OK(scope.Lock(0, LockMode::kExclusive));
    ASSERT_OK(scope.Lock(1, LockMode::kShared));
    EXPECT_TRUE(locks.IsLocked(0));
    EXPECT_TRUE(locks.IsLocked(1));
  }
  EXPECT_FALSE(locks.IsLocked(0));
  EXPECT_FALSE(locks.IsLocked(1));
}

}  // namespace
}  // namespace decibel
