/// Tests for the git-like baseline: SHA-1 vectors, delta encoding, the
/// content-addressed object store (including repack round-trips) and the
/// repo layer in all four layout/format modes.

#include <gtest/gtest.h>

#include "common/random.h"
#include "gitlike/delta.h"
#include "gitlike/object_store.h"
#include "gitlike/repo.h"
#include "gitlike/sha1.h"
#include "test_util.h"

namespace decibel {
namespace gitlike {
namespace {

using testing_util::ScratchDir;

// -------------------------------------------------------------------- SHA1

TEST(Sha1Test, KnownVectors) {
  // FIPS 180-1 test vectors.
  EXPECT_EQ(Sha1Hex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(Sha1Hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(Sha1Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
  // One block-boundary case (55/56/64-byte paddings differ).
  EXPECT_EQ(Sha1Hex(std::string(64, 'a')),
            "0098ba824b5c16427bd7a1122a5a442a25ec644d");
}

TEST(Sha1Test, GitObjectIdConvention) {
  // git hash-object of an empty blob: frame "blob 0\0".
  const std::string frame = std::string("blob 0") + '\0';
  EXPECT_EQ(Sha1Hex(frame), "e69de29bb2d1d6434b8b29ae775ad8c2e48c5391");
}

// ------------------------------------------------------------------- Delta

TEST(DeltaTest, RoundTripSimilarBuffers) {
  Random rng(3);
  std::string base;
  for (int i = 0; i < 5000; ++i) {
    base.push_back(static_cast<char>(rng.Uniform(64)));
  }
  std::string target = base;
  target.insert(1000, "INSERTED CHUNK");
  target.erase(3000, 100);
  target += "tail data";

  const std::string delta = ComputeDelta(base, target);
  EXPECT_LT(delta.size(), target.size() / 4) << "similar data deltas well";
  auto restored = ApplyDelta(base, delta);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, target);
}

TEST(DeltaTest, UnrelatedDataFallsBackToInsert) {
  const std::string base(1000, 'a');
  std::string target;
  Random rng(5);
  for (int i = 0; i < 1000; ++i) {
    target.push_back(static_cast<char>(rng.Next()));
  }
  const std::string delta = ComputeDelta(base, target);
  auto restored = ApplyDelta(base, delta);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, target);
}

TEST(DeltaTest, EmptyCases) {
  auto restored = ApplyDelta("base", ComputeDelta("base", ""));
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->empty());
  restored = ApplyDelta("", ComputeDelta("", "target"));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, "target");
}

TEST(DeltaTest, RejectsCorruptDeltas) {
  EXPECT_FALSE(ApplyDelta("short", "\x01\xff\xff\x7f").ok());
  EXPECT_FALSE(ApplyDelta("base", "\x07").ok());
}

// ------------------------------------------------------------- ObjectStore

TEST(ObjectStoreTest, PutGetRoundTrip) {
  ScratchDir dir("objstore");
  auto store = ObjectStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  auto id = store->Put(ObjectType::kBlob, "hello objects");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id->size(), 40u);
  EXPECT_TRUE(store->Contains(*id));
  auto content = store->Get(ObjectType::kBlob, *id);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "hello objects");
  // Wrong type is an error; wrong id is NotFound.
  EXPECT_TRUE(store->Get(ObjectType::kTree, *id).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(store->Get(ObjectType::kBlob, std::string(40, '0')).status()
                  .IsNotFound());
}

TEST(ObjectStoreTest, ContentAddressingDeduplicates) {
  ScratchDir dir("objstore");
  auto store = ObjectStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  auto id1 = store->Put(ObjectType::kBlob, "same bytes");
  auto id2 = store->Put(ObjectType::kBlob, "same bytes");
  ASSERT_TRUE(id1.ok() && id2.ok());
  EXPECT_EQ(*id1, *id2);
  EXPECT_EQ(store->num_objects(), 1u);
}

TEST(ObjectStoreTest, RepackPreservesEveryObject) {
  ScratchDir dir("objstore");
  auto store = ObjectStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  Random rng(11);
  std::vector<std::pair<std::string, std::string>> objects;
  std::string content;
  for (int i = 0; i < 50; ++i) {
    // Evolving content so deltas kick in.
    for (int j = 0; j < 20; ++j) {
      content += "row_" + std::to_string(rng.Uniform(1000)) + "\n";
    }
    auto id = store->Put(ObjectType::kBlob, content);
    ASSERT_TRUE(id.ok());
    objects.emplace_back(*id, content);
  }
  const uint64_t loose_size = store->SizeBytes();
  auto seconds = store->Repack();
  ASSERT_TRUE(seconds.ok()) << seconds.status().ToString();
  EXPECT_LT(store->SizeBytes(), loose_size) << "packing should shrink";
  for (const auto& [id, want] : objects) {
    auto got = store->Get(ObjectType::kBlob, id);
    ASSERT_TRUE(got.ok()) << id;
    EXPECT_EQ(*got, want);
  }
}

TEST(ObjectStoreTest, ReopenSeesLooseAndPacked) {
  ScratchDir dir("objstore");
  std::string id_loose, id_packed;
  {
    auto store = ObjectStore::Open(dir.path());
    ASSERT_TRUE(store.ok());
    id_packed = *store->Put(ObjectType::kBlob, "will be packed");
    ASSERT_TRUE(store->Repack().ok());
    id_loose = *store->Put(ObjectType::kBlob, "still loose");
  }
  auto store = ObjectStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  auto packed = store->Get(ObjectType::kBlob, id_packed);
  auto loose = store->Get(ObjectType::kBlob, id_loose);
  ASSERT_TRUE(packed.ok());
  ASSERT_TRUE(loose.ok());
  EXPECT_EQ(*packed, "will be packed");
  EXPECT_EQ(*loose, "still loose");
}

// -------------------------------------------------------------------- Repo

class GitRepoTest
    : public ::testing::TestWithParam<std::pair<Layout, Format>> {};

TEST_P(GitRepoTest, CommitCheckoutRoundTrip) {
  ScratchDir dir("gitrepo");
  const Schema schema = Schema::MakeBenchmark(3);
  auto repo = GitRepo::Open(dir.path(), schema, GetParam().first,
                            GetParam().second);
  ASSERT_TRUE(repo.ok());

  for (int64_t pk = 0; pk < 20; ++pk) {
    Record rec(&schema);
    rec.SetPk(pk);
    rec.SetInt32(1, static_cast<int32_t>(pk * 10));
    ASSERT_OK((*repo)->Insert(kMasterBranch, rec));
  }
  auto c1 = (*repo)->Commit(kMasterBranch);
  ASSERT_TRUE(c1.ok());

  // Branch, update, delete, commit again.
  ASSERT_OK((*repo)->CreateBranch(1, kMasterBranch));
  Record updated(&schema);
  updated.SetPk(3);
  updated.SetInt32(1, 999);
  ASSERT_OK((*repo)->Update(1, updated));
  ASSERT_OK((*repo)->Delete(1, 7));
  auto c2 = (*repo)->Commit(1);
  ASSERT_TRUE(c2.ok());
  EXPECT_NE(*c1, *c2);

  auto n1 = (*repo)->Checkout(*c1);
  ASSERT_TRUE(n1.ok());
  EXPECT_EQ(*n1, 20u);
  auto n2 = (*repo)->Checkout(*c2);
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(*n2, 19u);  // one delete

  // Repack keeps both commits checkout-able.
  ASSERT_TRUE((*repo)->Repack().ok());
  auto n1_again = (*repo)->Checkout(*c1);
  ASSERT_TRUE(n1_again.ok());
  EXPECT_EQ(*n1_again, 20u);
}

TEST_P(GitRepoTest, UnchangedCommitIsStable) {
  ScratchDir dir("gitrepo");
  const Schema schema = Schema::MakeBenchmark(2);
  auto repo = GitRepo::Open(dir.path(), schema, GetParam().first,
                            GetParam().second);
  ASSERT_TRUE(repo.ok());
  Record rec(&schema);
  rec.SetPk(1);
  ASSERT_OK((*repo)->Insert(kMasterBranch, rec));
  auto c1 = (*repo)->Commit(kMasterBranch);
  auto c2 = (*repo)->Commit(kMasterBranch);
  ASSERT_TRUE(c1.ok() && c2.ok());
  // Same tree, but the second commit has a parent -> different id. The
  // blob count must not grow though (content addressing).
  const uint64_t objects_before = (*repo)->num_objects();
  auto c3 = (*repo)->Commit(kMasterBranch);
  ASSERT_TRUE(c3.ok());
  EXPECT_LE((*repo)->num_objects(), objects_before + 1);  // new commit only
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, GitRepoTest,
    ::testing::Values(std::make_pair(Layout::kOneFile, Format::kBinary),
                      std::make_pair(Layout::kOneFile, Format::kCsv),
                      std::make_pair(Layout::kFilePerTuple, Format::kBinary),
                      std::make_pair(Layout::kFilePerTuple, Format::kCsv)),
    [](const auto& info) {
      std::string name = info.param.first == Layout::kOneFile ? "OneFile"
                                                              : "FilePerTuple";
      name += info.param.second == Format::kBinary ? "Bin" : "Csv";
      return name;
    });

}  // namespace
}  // namespace gitlike
}  // namespace decibel
