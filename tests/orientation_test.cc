/// The tuple-first engine with a *tuple-oriented* bitmap (§3.1's second
/// layout — one bit-row per tuple in a single doubling matrix). The paper
/// evaluates branch-oriented by default; this suite proves the other
/// orientation is behaviourally identical, so the ablation benchmark
/// compares performance of equivalent implementations.

#include <gtest/gtest.h>

#include "core/decibel.h"
#include "test_util.h"

namespace decibel {
namespace {

using testing_util::CollectBranch;
using testing_util::MakeRecord;
using testing_util::ScratchDir;
using testing_util::TestSchema;

class TupleOrientedEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<ScratchDir>("orient");
    schema_ = TestSchema(3);
    DecibelOptions options;
    options.engine = EngineType::kTupleFirst;
    options.orientation = BitmapOrientation::kTupleOriented;
    options.page_size = 4096;
    auto db = Decibel::Open(dir_->path(), schema_, options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).MoveValueUnsafe();
  }

  std::unique_ptr<ScratchDir> dir_;
  Schema schema_ = TestSchema(3);
  std::unique_ptr<Decibel> db_;
};

TEST_F(TupleOrientedEngineTest, CrudAndScan) {
  for (int64_t pk = 0; pk < 200; ++pk) {
    ASSERT_OK(db_->InsertInto(kMasterBranch,
                              MakeRecord(schema_, pk, static_cast<int>(pk))));
  }
  for (int64_t pk = 0; pk < 200; pk += 4) {
    ASSERT_OK(db_->UpdateIn(kMasterBranch, MakeRecord(schema_, pk, -1)));
  }
  ASSERT_OK(db_->DeleteFrom(kMasterBranch, 7));
  auto rows = CollectBranch(db_.get(), kMasterBranch);
  EXPECT_EQ(rows.size(), 199u);
  EXPECT_EQ(rows[4], -1);
  EXPECT_EQ(rows[5], 5);
}

TEST_F(TupleOrientedEngineTest, BranchesPastRowWidthBoundary) {
  // More than 64 branches forces the matrix to double its row width.
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 1, 1)));
  Session s = db_->NewSession();
  std::vector<BranchId> children;
  for (int c = 0; c < 70; ++c) {
    ASSERT_OK(db_->Use(&s, kMasterBranch));
    ASSERT_OK_AND_ASSIGN(BranchId child,
                         db_->Branch("b" + std::to_string(c), &s));
    ASSERT_OK(db_->InsertInto(child, MakeRecord(schema_, 100 + c, c)));
    children.push_back(child);
  }
  for (int c = 0; c < 70; ++c) {
    auto rows = CollectBranch(db_.get(), children[c]);
    EXPECT_EQ(rows.size(), 2u) << "child " << c;
    EXPECT_EQ(rows[100 + c], c);
  }
}

TEST_F(TupleOrientedEngineTest, CommitCheckoutAndMerge) {
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 1, 1)));
  ASSERT_OK_AND_ASSIGN(CommitId c1, db_->CommitBranch(kMasterBranch));
  Session s = db_->NewSession();
  ASSERT_OK_AND_ASSIGN(BranchId dev, db_->Branch("dev", &s));
  ASSERT_OK(db_->UpdateIn(dev, MakeRecord(schema_, 1, 2)));
  ASSERT_OK(db_->InsertInto(dev, MakeRecord(schema_, 2, 2)));
  ASSERT_OK_AND_ASSIGN(MergeInfo info,
                       db_->Merge(kMasterBranch, dev,
                                  MergePolicy::kThreeWayLeft));
  (void)info;
  auto rows = CollectBranch(db_.get(), kMasterBranch);
  EXPECT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], 2);

  ASSERT_OK_AND_ASSIGN(auto it, db_->NewScan(ScanSpec::Commit(c1)));
  auto old_rows = testing_util::Collect(it.get());
  EXPECT_EQ(old_rows.size(), 1u);
  EXPECT_EQ(old_rows[1], 1);
}

TEST_F(TupleOrientedEngineTest, SurvivesReopen) {
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 1, 1)));
  ASSERT_OK(db_->Flush());
  db_.reset();
  DecibelOptions options;
  options.engine = EngineType::kTupleFirst;
  options.orientation = BitmapOrientation::kTupleOriented;
  auto db = Decibel::Open(dir_->path(), schema_, options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  db_ = std::move(db).MoveValueUnsafe();
  EXPECT_EQ(CollectBranch(db_.get(), kMasterBranch).size(), 1u);
}

}  // namespace
}  // namespace decibel
