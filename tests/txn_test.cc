/// Tests for the concurrency layer: the two-phase-locking lock manager
/// (§2.2.3), the thread pool, session isolation semantics, and the hybrid
/// engine's parallel segment scanning.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/thread_pool.h"
#include "test_util.h"
#include "txn/lock_manager.h"

namespace decibel {
namespace {

using testing_util::MakeRecord;
using testing_util::ScratchDir;
using testing_util::TestSchema;

// ------------------------------------------------------------ LockManager

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager locks;
  ASSERT_OK(locks.Acquire(1, 0, LockMode::kShared));
  ASSERT_OK(locks.Acquire(2, 0, LockMode::kShared));
  EXPECT_TRUE(locks.IsLocked(0));
  locks.Release(1, 0);
  locks.Release(2, 0);
  EXPECT_FALSE(locks.IsLocked(0));
}

TEST(LockManagerTest, ExclusiveExcludes) {
  LockManager locks(std::chrono::milliseconds(50));
  ASSERT_OK(locks.Acquire(1, 0, LockMode::kExclusive));
  EXPECT_TRUE(locks.Acquire(2, 0, LockMode::kShared).IsAborted());
  EXPECT_TRUE(locks.Acquire(2, 0, LockMode::kExclusive).IsAborted());
  // Other branches are unaffected.
  ASSERT_OK(locks.Acquire(2, 1, LockMode::kExclusive));
  locks.ReleaseAll(1);
  ASSERT_OK(locks.Acquire(2, 0, LockMode::kExclusive));
}

TEST(LockManagerTest, ReentrantAndUpgrade) {
  LockManager locks;
  ASSERT_OK(locks.Acquire(1, 0, LockMode::kShared));
  ASSERT_OK(locks.Acquire(1, 0, LockMode::kShared));     // re-acquire
  ASSERT_OK(locks.Acquire(1, 0, LockMode::kExclusive));  // sole upgrade
  ASSERT_OK(locks.Acquire(1, 0, LockMode::kShared));     // X covers S
  locks.ReleaseAll(1);
  EXPECT_FALSE(locks.IsLocked(0));
}

TEST(LockManagerTest, UpgradeBlockedByOtherReader) {
  LockManager locks(std::chrono::milliseconds(50));
  ASSERT_OK(locks.Acquire(1, 0, LockMode::kShared));
  ASSERT_OK(locks.Acquire(2, 0, LockMode::kShared));
  EXPECT_TRUE(locks.Acquire(1, 0, LockMode::kExclusive).IsAborted());
}

TEST(LockManagerTest, BlockedWriterWakesOnRelease) {
  LockManager locks(std::chrono::milliseconds(2000));
  ASSERT_OK(locks.Acquire(1, 0, LockMode::kExclusive));
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    Status s = locks.Acquire(2, 0, LockMode::kExclusive);
    acquired = s.ok();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  locks.Release(1, 0);
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(LockManagerTest, ManyConcurrentWriters) {
  LockManager locks(std::chrono::milliseconds(5000));
  int counter = 0;  // protected by branch-0 lock
  std::vector<std::thread> threads;
  for (int t = 1; t <= 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        ASSERT_OK(locks.Acquire(static_cast<uint64_t>(t), 0,
                                LockMode::kExclusive));
        ++counter;
        locks.Release(static_cast<uint64_t>(t), 0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 8 * 200);
}

// ------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) {
    pool.Submit([&sum, i] { sum += i; });
  }
  pool.Wait();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&] { ++count; });
  pool.Submit([&] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 3);
}

// ----------------------------------------------------- session semantics

TEST(SessionTest, ConcurrentReadersDifferentSessions) {
  ScratchDir dir("txn");
  const Schema schema = TestSchema(2);
  auto db = Decibel::Open(dir.path(), schema, DecibelOptions{})
                .MoveValueUnsafe();
  for (int64_t pk = 0; pk < 100; ++pk) {
    ASSERT_OK(db->InsertInto(kMasterBranch, MakeRecord(schema, pk, 1)));
  }
  ASSERT_OK_AND_ASSIGN(CommitId c1, db->CommitBranch(kMasterBranch));
  ASSERT_OK(db->UpdateIn(kMasterBranch, MakeRecord(schema, 0, 2)));

  // "any other user could check out Version A and thereby revert the
  // state of the dataset back to that state within their own session"
  // (§2.2.3) — while another session reads the head.
  Session historical = db->NewSession();
  ASSERT_OK(db->Checkout(&historical, c1));
  Session head = db->NewSession();
  ASSERT_OK(db->Use(&head, kMasterBranch));

  auto hist_rows = testing_util::Collect(
      db->NewScan(historical).MoveValueUnsafe().get());
  auto head_rows =
      testing_util::Collect(db->NewScan(head).MoveValueUnsafe().get());
  EXPECT_EQ(hist_rows[0], 1);
  EXPECT_EQ(head_rows[0], 2);
}

TEST(SessionTest, ParallelWritersOnDistinctBranches) {
  ScratchDir dir("txn");
  const Schema schema = TestSchema(2);
  auto db = Decibel::Open(dir.path(), schema, DecibelOptions{})
                .MoveValueUnsafe();
  ASSERT_OK(db->InsertInto(kMasterBranch, MakeRecord(schema, 0, 0)));
  Session s = db->NewSession();
  ASSERT_OK_AND_ASSIGN(BranchId b1, db->Branch("w1", &s));
  ASSERT_OK(db->Use(&s, kMasterBranch));
  ASSERT_OK_AND_ASSIGN(BranchId b2, db->Branch("w2", &s));

  std::thread t1([&] {
    for (int64_t i = 0; i < 200; ++i) {
      ASSERT_OK(db->InsertInto(b1, MakeRecord(schema, 1000 + i, 1)));
    }
  });
  std::thread t2([&] {
    for (int64_t i = 0; i < 200; ++i) {
      ASSERT_OK(db->InsertInto(b2, MakeRecord(schema, 2000 + i, 2)));
    }
  });
  t1.join();
  t2.join();
  EXPECT_EQ(testing_util::CollectBranch(db.get(), b1).size(), 201u);
  EXPECT_EQ(testing_util::CollectBranch(db.get(), b2).size(), 201u);
}

// ------------------------------------------- hybrid parallel segment scan

TEST(ParallelScanTest, MatchesSequentialResults) {
  ScratchDir dir_seq("pscan_seq");
  ScratchDir dir_par("pscan_par");
  const Schema schema = TestSchema(2);

  auto load = [&](const std::string& path, int threads) {
    DecibelOptions options;
    options.engine = EngineType::kHybrid;
    options.scan_threads = threads;
    auto db = Decibel::Open(path, schema, options).MoveValueUnsafe();
    Session s = db->NewSession();
    BranchId current = kMasterBranch;
    for (int level = 0; level < 6; ++level) {
      for (int64_t i = 0; i < 200; ++i) {
        EXPECT_OK(db->InsertInto(
            current, MakeRecord(schema, level * 1000 + i, level)));
      }
      EXPECT_OK(db->Use(&s, current));
      auto child = db->Branch("b" + std::to_string(level), &s);
      EXPECT_TRUE(child.ok());
      current = *child;
    }
    return db;
  };

  auto db_seq = load(dir_seq.path(), 0);
  auto db_par = load(dir_par.path(), 8);

  auto collect = [](Decibel* db) {
    std::map<int64_t, std::set<uint32_t>> out;
    auto it = db->NewScan(ScanSpec::Heads());
    EXPECT_TRUE(it.ok()) << it.status().ToString();
    ScanRow row;
    while ((*it)->Next(&row)) {
      for (uint32_t b : *row.branches) out[row.record.pk()].insert(b);
    }
    EXPECT_OK((*it)->status());
    return out;
  };
  EXPECT_EQ(collect(db_seq.get()), collect(db_par.get()));
}

}  // namespace
}  // namespace decibel
