/// Unit tests for the columnar statistics & compression subsystem: zone
/// map maintenance, merging, encoding and MayMatch pruning semantics;
/// the adaptive page codec (raw / columnar / lz) round-trips and
/// corruption rejection; predicate evaluation on compressed strips
/// against the decode-then-filter reference; and the SIMD filter kernels
/// against the scalar fallback.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "columnar/page_codec.h"
#include "columnar/simd_filter.h"
#include "columnar/zone_map.h"
#include "common/random.h"
#include "engine/scan_spec.h"
#include "query/predicate.h"
#include "storage/record.h"
#include "storage/schema.h"
#include "test_util.h"

namespace decibel {
namespace {

using columnar::CountMatchesCompressed;
using columnar::DecodePage;
using columnar::EncodePage;
using columnar::FilterStridedF64;
using columnar::FilterStridedI32;
using columnar::FilterStridedI64;
using columnar::PageFormat;
using columnar::ZoneMap;

/// pk + int32 c1 + int64 c2 + double c3 + string c4.
Schema MixedSchema() {
  auto schema = Schema::Make({{"key", FieldType::kInt64, 8},
                              {"c1", FieldType::kInt32, 4},
                              {"c2", FieldType::kInt64, 8},
                              {"c3", FieldType::kDouble, 8},
                              {"c4", FieldType::kString, 8}});
  EXPECT_TRUE(schema.ok());
  return *schema;
}

Record MixedRecord(const Schema& schema, int64_t pk, int32_t c1, int64_t c2,
                   double c3, const std::string& c4) {
  Record r(&schema);
  r.SetPk(pk);
  r.SetInt32(1, c1);
  r.SetInt64(2, c2);
  r.SetDouble(3, c3);
  r.SetString(4, c4);
  return r;
}

Record Tombstone(const Schema& schema, int64_t pk) {
  Record r(&schema);
  r.SetPk(pk);
  r.SetTombstone(true);
  return r;
}

// ---------------------------------------------------------------- ZoneMap

TEST(ZoneMapTest, EmptyZoneMatchesNothing) {
  const Schema schema = MixedSchema();
  ZoneMap zone(schema.num_columns());
  EXPECT_EQ(zone.rows(), 0u);
  EXPECT_FALSE(zone.has_live_rows());
  // Nothing can be emitted from an empty zone, whatever the predicate.
  EXPECT_FALSE(zone.MayMatch(1, FieldType::kInt32, CompareOp::kEq, 0, 0));
  EXPECT_FALSE(zone.MayMatch(0, FieldType::kInt64, CompareOp::kGe, -100, 0));
}

TEST(ZoneMapTest, UpdateTracksRangesAndMayMatchPrunes) {
  const Schema schema = MixedSchema();
  ZoneMap zone(schema.num_columns());
  for (int64_t pk = 10; pk <= 20; ++pk) {
    Record r = MixedRecord(schema, pk, static_cast<int32_t>(pk * 2),
                           -pk, pk * 0.5, "s");
    zone.Update(schema, r.data().data());
  }
  EXPECT_EQ(zone.rows(), 11u);
  EXPECT_EQ(zone.tombstones(), 0u);
  EXPECT_EQ(zone.min_pk(), 10);
  EXPECT_EQ(zone.max_pk(), 20);

  // c1 in [20, 40].
  EXPECT_TRUE(zone.MayMatch(1, FieldType::kInt32, CompareOp::kEq, 30, 0));
  EXPECT_FALSE(zone.MayMatch(1, FieldType::kInt32, CompareOp::kEq, 41, 0));
  EXPECT_FALSE(zone.MayMatch(1, FieldType::kInt32, CompareOp::kGt, 40, 0));
  EXPECT_TRUE(zone.MayMatch(1, FieldType::kInt32, CompareOp::kGe, 40, 0));
  EXPECT_FALSE(zone.MayMatch(1, FieldType::kInt32, CompareOp::kLt, 20, 0));
  EXPECT_TRUE(zone.MayMatch(1, FieldType::kInt32, CompareOp::kLe, 20, 0));
  // kNe only prunes a constant zone; this one spans several values.
  EXPECT_TRUE(zone.MayMatch(1, FieldType::kInt32, CompareOp::kNe, 30, 0));
  // c2 in [-20, -10]; c3 in [5.0, 10.0].
  EXPECT_FALSE(zone.MayMatch(2, FieldType::kInt64, CompareOp::kGt, 0, 0));
  EXPECT_TRUE(zone.MayMatch(3, FieldType::kDouble, CompareOp::kGe, 0, 7.25));
  EXPECT_FALSE(zone.MayMatch(3, FieldType::kDouble, CompareOp::kGt, 0, 10.5));
  // Strings are not summarized: always a conservative yes.
  EXPECT_TRUE(zone.MayMatch(4, FieldType::kString, CompareOp::kEq, 0, 0));
}

TEST(ZoneMapTest, NeOpPrunesConstantZones) {
  const Schema schema = MixedSchema();
  ZoneMap zone(schema.num_columns());
  for (int64_t pk = 0; pk < 4; ++pk) {
    Record r = MixedRecord(schema, pk, 7, 7, 7.0, "x");
    zone.Update(schema, r.data().data());
  }
  EXPECT_FALSE(zone.MayMatch(1, FieldType::kInt32, CompareOp::kNe, 7, 0));
  EXPECT_TRUE(zone.MayMatch(1, FieldType::kInt32, CompareOp::kNe, 8, 0));
}

TEST(ZoneMapTest, TombstonesWidenPkRangeButNotColumnStats) {
  const Schema schema = MixedSchema();
  ZoneMap zone(schema.num_columns());
  Record live = MixedRecord(schema, 5, 100, 100, 100.0, "v");
  zone.Update(schema, live.data().data());
  Record dead = Tombstone(schema, 900);
  zone.Update(schema, dead.data().data());

  EXPECT_EQ(zone.rows(), 2u);
  EXPECT_EQ(zone.tombstones(), 1u);
  EXPECT_TRUE(zone.has_live_rows());
  // The tombstone's key still shadows older versions...
  EXPECT_EQ(zone.max_pk(), 900);
  // ...but its zeroed payload must not widen the value ranges.
  EXPECT_FALSE(zone.MayMatch(1, FieldType::kInt32, CompareOp::kEq, 0, 0));
  EXPECT_TRUE(zone.MayMatch(1, FieldType::kInt32, CompareOp::kEq, 100, 0));

  // An all-tombstone zone has nothing to emit.
  ZoneMap only_dead(schema.num_columns());
  only_dead.Update(schema, dead.data().data());
  EXPECT_FALSE(only_dead.has_live_rows());
  EXPECT_FALSE(
      only_dead.MayMatch(0, FieldType::kInt64, CompareOp::kEq, 900, 0));
}

TEST(ZoneMapTest, MergeAndBatchWiden) {
  const Schema schema = MixedSchema();
  ZoneMap a(schema.num_columns());
  ZoneMap b(schema.num_columns());
  std::string packed;
  for (int64_t pk = 0; pk < 3; ++pk) {
    Record r = MixedRecord(schema, pk, 1, 1, 1.0, "a");
    packed.append(r.data().data(), r.data().size());
  }
  a.UpdateBatch(schema, packed.data(), 3);
  Record far = MixedRecord(schema, 50, 9, 9, 9.0, "b");
  b.Update(schema, far.data().data());

  a.Merge(b);
  EXPECT_EQ(a.rows(), 4u);
  EXPECT_EQ(a.min_pk(), 0);
  EXPECT_EQ(a.max_pk(), 50);
  // The merged range is [1, 9]: a min/max zone answers "maybe" for any
  // value inside it, and prunes only outside.
  EXPECT_TRUE(a.MayMatch(1, FieldType::kInt32, CompareOp::kEq, 9, 0));
  EXPECT_TRUE(a.MayMatch(1, FieldType::kInt32, CompareOp::kEq, 5, 0));
  EXPECT_FALSE(a.MayMatch(1, FieldType::kInt32, CompareOp::kEq, 10, 0));
  EXPECT_FALSE(a.MayMatch(1, FieldType::kInt32, CompareOp::kLt, 1, 0));
}

TEST(ZoneMapTest, PkRangeOverlaps) {
  const Schema schema = MixedSchema();
  ZoneMap a(schema.num_columns());
  ZoneMap b(schema.num_columns());
  ZoneMap empty(schema.num_columns());
  Record r1 = MixedRecord(schema, 10, 0, 0, 0, "");
  Record r2 = MixedRecord(schema, 20, 0, 0, 0, "");
  a.Update(schema, r1.data().data());
  a.Update(schema, r2.data().data());
  Record r3 = MixedRecord(schema, 21, 0, 0, 0, "");
  b.Update(schema, r3.data().data());
  EXPECT_FALSE(a.PkRangeOverlaps(b));
  EXPECT_FALSE(a.PkRangeOverlaps(empty));
  Record r4 = MixedRecord(schema, 15, 0, 0, 0, "");
  b.Update(schema, r4.data().data());
  EXPECT_TRUE(a.PkRangeOverlaps(b));
}

TEST(ZoneMapTest, EncodeDecodeRoundTrip) {
  const Schema schema = MixedSchema();
  ZoneMap zone(schema.num_columns());
  for (int64_t pk = -3; pk <= 3; ++pk) {
    Record r = MixedRecord(schema, pk, static_cast<int32_t>(pk), pk * 1000,
                           pk * 0.25, "z");
    zone.Update(schema, r.data().data());
  }
  zone.Update(schema, Tombstone(schema, 77).data().data());

  std::string blob;
  zone.EncodeTo(&blob);
  Slice input(blob);
  auto decoded = ZoneMap::DecodeFrom(&input);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(input.empty());
  EXPECT_EQ(decoded->rows(), zone.rows());
  EXPECT_EQ(decoded->tombstones(), zone.tombstones());
  EXPECT_EQ(decoded->min_pk(), zone.min_pk());
  EXPECT_EQ(decoded->max_pk(), zone.max_pk());
  ASSERT_EQ(decoded->num_columns(), zone.num_columns());
  for (size_t c = 0; c < zone.num_columns(); ++c) {
    EXPECT_EQ(decoded->column(c).has_values, zone.column(c).has_values);
    EXPECT_EQ(decoded->column(c).min_i64, zone.column(c).min_i64);
    EXPECT_EQ(decoded->column(c).max_i64, zone.column(c).max_i64);
  }

  // Truncated blobs are rejected, not misread.
  for (size_t cut = 0; cut < blob.size(); cut += 3) {
    std::string trunc = blob.substr(0, cut);
    Slice in(trunc);
    EXPECT_FALSE(ZoneMap::DecodeFrom(&in).ok()) << "cut=" << cut;
  }
}

TEST(ZoneMapTest, PreparedPredicateMayMatchAgreesWithRowMatches) {
  const Schema schema = MixedSchema();
  ZoneMap zone(schema.num_columns());
  std::vector<Record> rows;
  for (int64_t pk = 100; pk < 140; ++pk) {
    rows.push_back(MixedRecord(schema, pk, static_cast<int32_t>(pk % 7),
                               pk * 3, pk * 0.1, "s"));
    zone.Update(schema, rows.back().data().data());
  }
  const struct {
    const char* column;
    CompareOp op;
    int64_t value;
  } cases[] = {
      {"c1", CompareOp::kEq, 3},   {"c1", CompareOp::kGt, 6},
      {"c2", CompareOp::kLt, 300}, {"c2", CompareOp::kGe, 500},
      {"key", CompareOp::kEq, 99}, {"key", CompareOp::kLe, 100},
  };
  for (const auto& c : cases) {
    auto pred = Predicate::Compare(schema, c.column, c.op, c.value);
    ASSERT_TRUE(pred.ok());
    const PreparedPredicate prepared(*pred, schema);
    bool any = false;
    for (const Record& r : rows) any |= prepared.Matches(r.data().data());
    // MayMatch must never prune a zone holding a matching row.
    if (any) {
      EXPECT_TRUE(prepared.MayMatch(zone));
    }
  }
  // And it does prune what provably cannot match.
  auto none = Predicate::Compare(schema, "c1", CompareOp::kGt, 100);
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(PreparedPredicate(*none, schema).MayMatch(zone));
}

// -------------------------------------------------------------- PageCodec

/// Packs \p rows into the row-major payload a sealed page stores.
std::string Pack(const std::vector<Record>& rows) {
  std::string payload;
  for (const Record& r : rows) {
    payload.append(r.data().data(), r.data().size());
  }
  return payload;
}

/// Decode must reproduce the payload byte-for-byte.
void ExpectRoundTrip(const Schema& schema, const std::string& payload,
                     uint32_t count) {
  std::string encoded;
  const PageFormat format = EncodePage(schema, payload.data(), count,
                                       &encoded);
  if (format == PageFormat::kRaw) {
    EXPECT_TRUE(encoded.empty());
    return;  // stored verbatim; nothing to decode
  }
  std::string decoded;
  ASSERT_OK(DecodePage(schema, format, Slice(encoded), count, &decoded));
  ASSERT_EQ(decoded.size(), payload.size());
  EXPECT_EQ(decoded, payload);
}

TEST(PageCodecTest, RepetitivePagesCompressAndRoundTrip) {
  const Schema schema = MixedSchema();
  std::vector<Record> rows;
  for (int64_t pk = 0; pk < 256; ++pk) {
    // Sequential keys, tiny dictionary c1, constant c2/c3, two strings.
    rows.push_back(MixedRecord(schema, pk, static_cast<int32_t>(pk % 3),
                               42, 1.5, pk % 2 ? "left" : "right"));
  }
  const std::string payload = Pack(rows);
  std::string encoded;
  const PageFormat format =
      EncodePage(schema, payload.data(), rows.size(), &encoded);
  EXPECT_NE(format, PageFormat::kRaw);
  EXPECT_LT(encoded.size(), payload.size());
  ExpectRoundTrip(schema, payload, rows.size());
}

TEST(PageCodecTest, IncompressiblePagesNeverExpand) {
  // High-entropy records: every value column is random. The codec may
  // still find the constant header-flags strip worth transposing, but
  // whatever it picks must be no larger than raw and round-trip exactly.
  const Schema schema = MixedSchema();
  Random rng(7);
  std::vector<Record> rows;
  for (int64_t pk = 0; pk < 128; ++pk) {
    std::string junk(8, '\0');
    for (char& ch : junk) ch = static_cast<char>(rng.Uniform(256));
    rows.push_back(MixedRecord(
        schema, static_cast<int64_t>(rng.Next()),
        static_cast<int32_t>(rng.Next()), static_cast<int64_t>(rng.Next()),
        rng.NextDouble() * 1e9, junk));
  }
  const std::string payload = Pack(rows);
  std::string encoded;
  const PageFormat format =
      EncodePage(schema, payload.data(), rows.size(), &encoded);
  if (format != PageFormat::kRaw) {
    EXPECT_LT(encoded.size(), payload.size());
  } else {
    EXPECT_TRUE(encoded.empty());
  }
  ExpectRoundTrip(schema, payload, rows.size());
}

TEST(PageCodecTest, SingleRecordAndTombstonePages) {
  const Schema schema = MixedSchema();
  ExpectRoundTrip(schema, Pack({MixedRecord(schema, 1, 2, 3, 4.0, "five")}),
                  1);
  std::vector<Record> rows;
  for (int64_t pk = 0; pk < 64; ++pk) rows.push_back(Tombstone(schema, pk));
  ExpectRoundTrip(schema, Pack(rows), rows.size());
}

TEST(PageCodecTest, MixedLiveAndTombstoneRoundTrip) {
  const Schema schema = MixedSchema();
  std::vector<Record> rows;
  for (int64_t pk = 0; pk < 200; ++pk) {
    if (pk % 5 == 0) {
      rows.push_back(Tombstone(schema, pk));
    } else {
      rows.push_back(MixedRecord(schema, pk, 9, 9, 9.0, "v"));
    }
  }
  ExpectRoundTrip(schema, Pack(rows), rows.size());
}

TEST(PageCodecTest, DecodeRejectsTruncation) {
  const Schema schema = MixedSchema();
  std::vector<Record> rows;
  for (int64_t pk = 0; pk < 256; ++pk) {
    rows.push_back(MixedRecord(schema, pk, static_cast<int32_t>(pk % 3), 42,
                               1.5, "s"));
  }
  const std::string payload = Pack(rows);
  std::string encoded;
  const PageFormat format =
      EncodePage(schema, payload.data(), rows.size(), &encoded);
  ASSERT_NE(format, PageFormat::kRaw);
  for (size_t keep : {size_t{0}, size_t{1}, encoded.size() / 2,
                      encoded.size() - 1}) {
    std::string trunc = encoded.substr(0, keep);
    std::string decoded;
    EXPECT_FALSE(
        DecodePage(schema, format, Slice(trunc), rows.size(), &decoded).ok())
        << "keep=" << keep;
  }
  // A corrupt page must never silently decode to different bytes.
  Random rng(3);
  for (int trial = 0; trial < 32; ++trial) {
    std::string bad = encoded;
    bad[rng.Uniform(bad.size())] ^= static_cast<char>(1 + rng.Uniform(255));
    std::string decoded;
    const Status s =
        DecodePage(schema, format, Slice(bad), rows.size(), &decoded);
    if (s.ok()) {
      EXPECT_EQ(decoded.size(), payload.size());
    }
  }
}

TEST(PageCodecTest, CountMatchesCompressedAgreesWithDecodeThenFilter) {
  const Schema schema = MixedSchema();
  std::vector<Record> rows;
  for (int64_t pk = 0; pk < 300; ++pk) {
    if (pk % 11 == 0) {
      rows.push_back(Tombstone(schema, pk));
    } else {
      rows.push_back(MixedRecord(schema, pk, static_cast<int32_t>(pk % 10),
                                 pk / 3, (pk % 4) * 0.5, "s"));
    }
  }
  const std::string payload = Pack(rows);
  std::string encoded;
  const PageFormat format =
      EncodePage(schema, payload.data(), rows.size(), &encoded);
  ASSERT_EQ(format, PageFormat::kColumnar);

  std::vector<Predicate> preds;
  for (auto [op, v] : std::vector<std::pair<CompareOp, int64_t>>{
           {CompareOp::kEq, 3},
           {CompareOp::kNe, 3},
           {CompareOp::kLt, 5},
           {CompareOp::kGe, 10},  // matches nothing: c1 in [0, 9]
       }) {
    preds.push_back(*Predicate::Compare(schema, "c1", op, v));
  }
  preds.push_back(*Predicate::Compare(schema, "key", CompareOp::kGt, 250));
  // Conjunction across two columns.
  preds.push_back(Predicate(*Predicate::Compare(schema, "c1", CompareOp::kLe,
                                                4))
                      .And(Predicate::Compare(schema, "c2", CompareOp::kGe,
                                              50)
                               ->comparisons()[0]));

  for (const Predicate& pred : preds) {
    const PreparedPredicate prepared(pred, schema);
    uint64_t expected = 0;
    for (const Record& r : rows) {
      if (!r.tombstone() && prepared.Matches(r.data().data())) ++expected;
    }
    bool exact = false;
    const uint64_t got =
        CountMatchesCompressed(schema, format, Slice(encoded), rows.size(),
                               pred.comparisons(), &exact);
    ASSERT_TRUE(exact);
    EXPECT_EQ(got, expected);
  }

  // Raw and lz formats cannot evaluate without decoding.
  bool exact = true;
  EXPECT_EQ(CountMatchesCompressed(schema, PageFormat::kRaw, Slice(payload),
                                   rows.size(), preds[0].comparisons(),
                                   &exact),
            0u);
  EXPECT_FALSE(exact);
}

// ------------------------------------------------------------ SIMD filter

template <typename T>
std::vector<T> RandomValues(Random* rng, size_t n) {
  std::vector<T> out(n);
  for (T& v : out) {
    // Small domain so comparisons land on both sides of the pivot.
    v = static_cast<T>(static_cast<int64_t>(rng->Uniform(64)) - 32);
  }
  return out;
}

TEST(SimdFilterTest, ScalarAndVectorPathsAgree) {
  constexpr CompareOp kOps[] = {CompareOp::kEq, CompareOp::kNe,
                                CompareOp::kLt, CompareOp::kLe,
                                CompareOp::kGt, CompareOp::kGe};
  Random rng(21);
  for (uint32_t n : {0u, 1u, 7u, 64u, 100u, 257u}) {
    const auto i32 = RandomValues<int32_t>(&rng, n);
    const auto i64 = RandomValues<int64_t>(&rng, n);
    auto f64 = RandomValues<double>(&rng, n);
    if (n > 4) f64[3] = std::numeric_limits<double>::quiet_NaN();
    for (CompareOp op : kOps) {
      std::vector<uint8_t> scalar(n, 1), simd(n, 1);
      columnar::ForceScalarForTest(true);
      FilterStridedI32(reinterpret_cast<const char*>(i32.data()), 4, n, op, 5,
                       scalar.data());
      FilterStridedI64(reinterpret_cast<const char*>(i64.data()), 8, n, op,
                       -3, scalar.data());
      FilterStridedF64(reinterpret_cast<const char*>(f64.data()), 8, n, op,
                       0.5, scalar.data());
      columnar::ForceScalarForTest(false);
      FilterStridedI32(reinterpret_cast<const char*>(i32.data()), 4, n, op, 5,
                       simd.data());
      FilterStridedI64(reinterpret_cast<const char*>(i64.data()), 8, n, op,
                       -3, simd.data());
      FilterStridedF64(reinterpret_cast<const char*>(f64.data()), 8, n, op,
                       0.5, simd.data());
      EXPECT_EQ(scalar, simd) << "op " << CompareOpName(op) << " n " << n;
    }
  }
  columnar::ForceScalarForTest(false);
}

TEST(SimdFilterTest, StridedAccessReadsTheRightColumn) {
  // Values embedded in fat records: stride != width exercises the gather.
  constexpr uint32_t kStride = 24;
  constexpr uint32_t kN = 33;
  std::string buf(kStride * kN, '\xee');
  for (uint32_t i = 0; i < kN; ++i) {
    const int32_t v = static_cast<int32_t>(i);
    memcpy(&buf[i * kStride + 8], &v, sizeof(v));
  }
  std::vector<uint8_t> mask(kN, 1);
  FilterStridedI32(buf.data() + 8, kStride, kN, CompareOp::kGe, 20,
                   mask.data());
  for (uint32_t i = 0; i < kN; ++i) {
    EXPECT_EQ(mask[i], i >= 20 ? 1 : 0) << i;
  }
}

TEST(SimdFilterTest, MatchBatchEqualsPerRowMatches) {
  const Schema schema = MixedSchema();
  Random rng(17);
  std::vector<Record> rows;
  for (int64_t pk = 0; pk < 500; ++pk) {
    rows.push_back(MixedRecord(
        schema, pk, static_cast<int32_t>(rng.Uniform(16)),
        static_cast<int64_t>(rng.Uniform(100)) - 50,
        rng.NextDouble() * 4 - 2, rng.OneIn(2) ? "yes" : "no"));
  }
  const std::string payload = Pack(rows);

  std::vector<Predicate> preds;
  preds.push_back(*Predicate::Compare(schema, "c1", CompareOp::kLt, 8));
  preds.push_back(*Predicate::Compare(schema, "c2", CompareOp::kGe, 0));
  preds.push_back(*Predicate::CompareDouble(schema, "c3", CompareOp::kGt,
                                            0.0));
  preds.push_back(*Predicate::CompareString(schema, "c4", CompareOp::kEq,
                                            "yes"));
  preds.push_back(Predicate(preds[0]).And(preds[1].comparisons()[0]));

  for (bool force_scalar : {false, true}) {
    columnar::ForceScalarForTest(force_scalar);
    for (const Predicate& pred : preds) {
      const PreparedPredicate prepared(pred, schema);
      std::vector<uint8_t> mask(rows.size(), 1);
      prepared.MatchBatch(payload.data(), rows.size(), schema.record_size(),
                          mask.data());
      for (size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(mask[i] != 0, prepared.Matches(rows[i].data().data()))
            << "row " << i;
      }
    }
  }
  columnar::ForceScalarForTest(false);
}

}  // namespace
}  // namespace decibel
