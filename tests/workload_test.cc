/// Integration tests for the versioning benchmark machinery (§4): each
/// branching strategy is loaded at tiny scale through the full driver
/// against every engine, and the resulting structures are sanity-checked.
/// Determinism across engines (§5.6: the seeded generator must make every
/// engine perform "the same set of operations in the same order") is the
/// key property: after an identical load, all engines must expose the
/// identical logical dataset.

#include <gtest/gtest.h>

#include <map>

#include "benchlib/workload.h"
#include "test_util.h"

namespace decibel {
namespace bench {
namespace {

using testing_util::ScratchDir;

WorkloadConfig TinyConfig(Strategy strategy) {
  WorkloadConfig config;
  config.strategy = strategy;
  config.num_branches = 6;
  config.ops_per_branch = 120;
  config.commit_every = 40;
  config.seed = 99;
  return config;
}

std::unique_ptr<Decibel> OpenDb(const std::string& path, EngineType engine) {
  DecibelOptions options;
  options.engine = engine;
  options.page_size = 4096;
  auto db = Decibel::Open(path, Schema::MakeBenchmark(3), options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).MoveValueUnsafe();
}

class WorkloadTest
    : public ::testing::TestWithParam<std::tuple<EngineType, Strategy>> {};

TEST_P(WorkloadTest, LoadsAndQueriesSucceed) {
  const auto [engine, strategy] = GetParam();
  ScratchDir dir("workload");
  auto db = OpenDb(dir.path(), engine);
  auto loaded = LoadWorkload(db.get(), TinyConfig(strategy));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const LoadedWorkload& w = *loaded;

  EXPECT_EQ(db->graph().num_branches(),
            static_cast<size_t>(w.config.num_branches));
  EXPECT_GT(w.stats.inserts, 0u);
  EXPECT_GT(w.stats.updates, 0u);
  EXPECT_GT(w.stats.commits, 0u);
  if (strategy == Strategy::kCuration) {
    EXPECT_GT(w.stats.merges, 0u);
    EXPECT_GT(w.stats.merge_diff_bytes, 0u);
  }

  // Every query family must run cleanly on the loaded shape.
  Random rng(1);
  auto q1 = TimedQ1(db.get(), SelectQ1Target(w, &rng));
  ASSERT_TRUE(q1.ok()) << q1.status().ToString();
  EXPECT_GT(q1->stats.rows_scanned, 0u);

  const auto [a, b] = SelectQ2Pair(w, &rng);
  ASSERT_TRUE(TimedQ2(db.get(), a, b).ok());
  ASSERT_TRUE(TimedQ3(db.get(), a, b).ok());
  auto q4 = TimedQ4(db.get());
  ASSERT_TRUE(q4.ok());
  EXPECT_GT(q4->stats.rows_scanned, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    EnginesAndStrategies, WorkloadTest,
    ::testing::Combine(::testing::Values(EngineType::kTupleFirst,
                                         EngineType::kVersionFirst,
                                         EngineType::kHybrid),
                       ::testing::Values(Strategy::kDeep, Strategy::kFlat,
                                         Strategy::kScience,
                                         Strategy::kCuration)),
    [](const auto& info) {
      std::string engine;
      switch (std::get<0>(info.param)) {
        case EngineType::kTupleFirst:
          engine = "TupleFirst";
          break;
        case EngineType::kVersionFirst:
          engine = "VersionFirst";
          break;
        default:
          engine = "Hybrid";
      }
      return engine + "_" + StrategyName(std::get<1>(info.param));
    });

class StrategyEquivalenceTest : public ::testing::TestWithParam<Strategy> {};

TEST_P(StrategyEquivalenceTest, AllEnginesLoadIdenticalData) {
  // The master invariant of §5.6: the same seed must produce the same
  // logical contents in every engine.
  const Strategy strategy = GetParam();
  std::map<EngineType, std::map<BranchId, std::map<int64_t, int32_t>>>
      contents;
  std::vector<BranchId> branches;
  for (EngineType engine :
       {EngineType::kTupleFirst, EngineType::kVersionFirst,
        EngineType::kHybrid}) {
    ScratchDir dir("equiv");
    auto db = OpenDb(dir.path(), engine);
    auto loaded = LoadWorkload(db.get(), TinyConfig(strategy));
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    branches.clear();
    for (const auto& b : db->graph().branches()) branches.push_back(b.id);
    for (BranchId b : branches) {
      contents[engine][b] = testing_util::CollectBranch(db.get(), b);
    }
  }
  for (BranchId b : branches) {
    EXPECT_EQ(contents[EngineType::kTupleFirst][b],
              contents[EngineType::kVersionFirst][b])
        << "TF vs VF diverged on branch " << b;
    EXPECT_EQ(contents[EngineType::kTupleFirst][b],
              contents[EngineType::kHybrid][b])
        << "TF vs HY diverged on branch " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyEquivalenceTest,
                         ::testing::Values(Strategy::kDeep, Strategy::kFlat,
                                           Strategy::kScience,
                                           Strategy::kCuration),
                         [](const auto& info) {
                           return std::string(StrategyName(info.param)) ==
                                          "sci"
                                      ? "Science"
                                  : StrategyName(info.param) ==
                                          std::string("cur")
                                      ? "Curation"
                                  : StrategyName(info.param) ==
                                          std::string("deep")
                                      ? "Deep"
                                      : "Flat";
                         });

TEST(TableWiseUpdateTest, TouchesEveryRecordOnce) {
  ScratchDir dir("tablewise");
  auto db = OpenDb(dir.path(), EngineType::kHybrid);
  const Schema& schema = db->schema();
  for (int64_t pk = 0; pk < 50; ++pk) {
    Record rec(&schema);
    rec.SetPk(pk);
    rec.SetInt32(1, 10);
    ASSERT_OK(db->InsertInto(kMasterBranch, rec));
  }
  auto stats = TableWiseUpdate(db.get(), kMasterBranch);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->updates, 50u);
  auto rows = testing_util::CollectBranch(db.get(), kMasterBranch);
  ASSERT_EQ(rows.size(), 50u);
  for (const auto& [pk, c1] : rows) {
    EXPECT_EQ(c1, 11) << pk;  // every record bumped exactly once
  }
}

}  // namespace
}  // namespace bench
}  // namespace decibel
