/// Property-based testing: a randomized stream of versioning operations is
/// applied simultaneously to a Decibel engine and to a naive in-memory
/// oracle (one std::map per branch, snapshots per commit). After every
/// burst the engine's scans, commit scans and diffs must agree with the
/// oracle exactly. Parameterized over engine type x seed.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.h"
#include "core/decibel.h"
#include "test_util.h"

namespace decibel {
namespace {

using testing_util::MakeRecord;
using testing_util::ScratchDir;
using testing_util::TestSchema;

struct Oracle {
  using Table = std::map<int64_t, int32_t>;  // pk -> c1 (c2/c3 mirror c1)
  std::map<BranchId, Table> branches;
  std::map<CommitId, Table> commits;
};

class ModelTest
    : public ::testing::TestWithParam<std::tuple<EngineType, uint64_t>> {};

TEST_P(ModelTest, RandomOperationStreamMatchesOracle) {
  const EngineType engine_type = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());

  ScratchDir dir("model");
  const Schema schema = TestSchema(3);
  DecibelOptions options;
  options.engine = engine_type;
  options.page_size = 4096;
  auto db_result = Decibel::Open(dir.path(), schema, options);
  ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
  auto db = std::move(db_result).MoveValueUnsafe();

  Random rng(seed);
  Oracle oracle;
  oracle.branches[kMasterBranch] = {};
  oracle.commits[db->graph().Head(kMasterBranch)] = {};
  std::vector<BranchId> branches{kMasterBranch};
  int64_t next_pk = 0;
  int32_t next_val = 1000;

  auto check_branch = [&](BranchId b) {
    auto it = db->NewScan(ScanSpec::Branch(b));
    ASSERT_TRUE(it.ok()) << it.status().ToString();
    auto rows = testing_util::Collect(it.value().get());
    EXPECT_EQ(rows, oracle.branches[b]) << "branch " << b << " diverged";
  };

  for (int round = 0; round < 40; ++round) {
    // A burst of data operations on random branches.
    const int burst = 10 + static_cast<int>(rng.Uniform(30));
    for (int op = 0; op < burst; ++op) {
      const BranchId b = branches[rng.Uniform(branches.size())];
      Oracle::Table& table = oracle.branches[b];
      const uint64_t kind = rng.Uniform(10);
      if (kind < 6 || table.empty()) {
        const int64_t pk = next_pk++;
        const int32_t val = next_val++;
        ASSERT_OK(db->InsertInto(b, MakeRecord(schema, pk, val)));
        table[pk] = val;
      } else if (kind < 9) {
        // Update a random existing key.
        auto it = table.begin();
        std::advance(it, rng.Uniform(table.size()));
        const int32_t val = next_val++;
        ASSERT_OK(db->UpdateIn(b, MakeRecord(schema, it->first, val)));
        it->second = val;
      } else {
        auto it = table.begin();
        std::advance(it, rng.Uniform(table.size()));
        ASSERT_OK(db->DeleteFrom(b, it->first));
        table.erase(it);
      }
    }

    // Occasionally commit, branch or merge.
    const uint64_t action = rng.Uniform(10);
    if (action < 4) {
      const BranchId b = branches[rng.Uniform(branches.size())];
      auto commit = db->CommitBranch(b);
      ASSERT_TRUE(commit.ok()) << commit.status().ToString();
      oracle.commits[*commit] = oracle.branches[b];
    } else if (action < 7 && branches.size() < 8) {
      const BranchId parent = branches[rng.Uniform(branches.size())];
      Session s = db->NewSession();
      ASSERT_OK(db->Use(&s, parent));
      auto child = db->Branch("b" + std::to_string(round), &s);
      ASSERT_TRUE(child.ok()) << child.status().ToString();
      branches.push_back(*child);
      oracle.branches[*child] = oracle.branches[parent];
      // The implicit commit created by branching snapshots the parent.
      oracle.commits[db->graph().Head(parent)] = oracle.branches[parent];
    } else if (action < 8 && branches.size() >= 2) {
      // Merge one branch into another (no self-merges). Use two-way
      // precedence so the oracle stays simple: compute the merged table
      // from lca/two sides at key granularity.
      const BranchId into = branches[rng.Uniform(branches.size())];
      BranchId from = branches[rng.Uniform(branches.size())];
      if (from != into) {
        // The facade auto-commits both heads before merging; snapshot both
        // sides so those commits land in the oracle too.
        const Oracle::Table pre_into = oracle.branches[into];
        const Oracle::Table pre_from = oracle.branches[from];
        auto merged = db->Merge(into, from, MergePolicy::kTwoWayLeft);
        ASSERT_TRUE(merged.ok()) << merged.status().ToString();
        {
          auto commit = db->graph().GetCommit(merged->commit);
          ASSERT_TRUE(commit.ok());
          oracle.commits[commit->parents[0]] = pre_into;
          oracle.commits[commit->parents[1]] = pre_from;
        }
        // Recompute the oracle merge from the lca snapshot.
        const CommitId lca_commit = [&] {
          auto commit = db->graph().GetCommit(merged->commit);
          EXPECT_TRUE(commit.ok());
          auto lca = db->graph().Lca(commit->parents[0], commit->parents[1]);
          EXPECT_TRUE(lca.ok());
          return *lca;
        }();
        ASSERT_TRUE(oracle.commits.count(lca_commit))
            << "oracle missing lca " << lca_commit;
        const Oracle::Table& base = oracle.commits[lca_commit];
        const Oracle::Table& left = oracle.branches[into];
        const Oracle::Table& right = oracle.branches[from];
        Oracle::Table result = left;
        std::set<int64_t> keys;
        for (const auto& [k, v] : base) keys.insert(k);
        for (const auto& [k, v] : right) keys.insert(k);
        for (int64_t k : keys) {
          const bool in_base = base.count(k) != 0;
          const bool in_left = left.count(k) != 0;
          const bool in_right = right.count(k) != 0;
          const bool left_changed =
              in_base != in_left || (in_base && left.at(k) != base.at(k));
          const bool right_changed =
              in_base != in_right || (in_base && right.at(k) != base.at(k));
          if (right_changed && !left_changed) {
            if (in_right) {
              result[k] = right.at(k);
            } else {
              result.erase(k);
            }
          }
          // left-changed or both-changed: left wins (kTwoWayLeft).
        }
        oracle.branches[into] = result;
        oracle.commits[merged->commit] = result;
      }
    }

    // Verify a couple of random branches each round.
    check_branch(branches[rng.Uniform(branches.size())]);
    check_branch(branches[rng.Uniform(branches.size())]);
  }

  // Final: every branch, every remembered commit, and pairwise diffs.
  for (BranchId b : branches) check_branch(b);
  for (const auto& [commit, table] : oracle.commits) {
    auto it = db->NewScan(ScanSpec::Commit(commit));
    ASSERT_TRUE(it.ok()) << it.status().ToString();
    auto rows = testing_util::Collect(it.value().get());
    EXPECT_EQ(rows, table) << "commit " << commit << " diverged";
  }
  for (size_t i = 0; i + 1 < branches.size(); ++i) {
    const BranchId a = branches[i];
    const BranchId b = branches[i + 1];
    std::set<int64_t> pos, neg;
    ASSERT_OK(db->Diff(
        a, b, DiffMode::kByKey,
        [&](const RecordRef& r) { pos.insert(r.pk()); },
        [&](const RecordRef& r) { neg.insert(r.pk()); }));
    std::set<int64_t> expected_pos, expected_neg;
    for (const auto& [k, v] : oracle.branches[a]) {
      if (oracle.branches[b].count(k) == 0) expected_pos.insert(k);
    }
    for (const auto& [k, v] : oracle.branches[b]) {
      if (oracle.branches[a].count(k) == 0) expected_neg.insert(k);
    }
    EXPECT_EQ(pos, expected_pos) << "diff(" << a << "," << b << ") pos";
    EXPECT_EQ(neg, expected_neg) << "diff(" << a << "," << b << ") neg";
  }

  // Multi-branch scan annotations must match per-branch membership.
  std::map<int64_t, std::map<uint32_t, int32_t>> seen;
  {
    auto it = db->NewScan(ScanSpec::Multi(branches));
    ASSERT_TRUE(it.ok()) << it.status().ToString();
    ScanRow row;
    while ((*it)->Next(&row)) {
      for (uint32_t p : *row.branches) {
        seen[row.record.pk()][p] = row.record.GetInt32(1);
      }
    }
    ASSERT_OK((*it)->status());
  }
  for (size_t p = 0; p < branches.size(); ++p) {
    for (const auto& [pk, val] : oracle.branches[branches[p]]) {
      ASSERT_TRUE(seen.count(pk) && seen[pk].count(static_cast<uint32_t>(p)))
          << "multi-scan missing pk " << pk << " of branch " << branches[p];
      EXPECT_EQ(seen[pk][static_cast<uint32_t>(p)], val);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    EnginesAndSeeds, ModelTest,
    ::testing::Combine(::testing::Values(EngineType::kTupleFirst,
                                         EngineType::kVersionFirst,
                                         EngineType::kHybrid),
                       ::testing::Values(1u, 7u, 42u, 1234u)),
    [](const auto& info) {
      const char* name = EngineTypeName(std::get<0>(info.param));
      std::string engine =
          std::string(name) == "tuple-first"    ? "TupleFirst"
          : std::string(name) == "version-first" ? "VersionFirst"
                                                  : "Hybrid";
      return engine + "_seed" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace decibel
