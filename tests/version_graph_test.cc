/// Unit tests for the version graph: branches, commits, merge edges,
/// lowest-common-ancestor computation and persistence.

#include <gtest/gtest.h>

#include "test_util.h"
#include "version/version_graph.h"

namespace decibel {
namespace {

TEST(VersionGraphTest, InitCreatesMaster) {
  VersionGraph g;
  auto init = g.Init();
  ASSERT_TRUE(init.ok());
  EXPECT_EQ(g.num_branches(), 1u);
  EXPECT_EQ(g.Head(kMasterBranch), *init);
  EXPECT_TRUE(g.IsHead(*init));
  EXPECT_TRUE(g.Init().status().IsInvalidArgument());  // double init
}

TEST(VersionGraphTest, CommitsAdvanceHead) {
  VersionGraph g;
  ASSERT_TRUE(g.Init().ok());
  auto c1 = g.AddCommit(kMasterBranch);
  auto c2 = g.AddCommit(kMasterBranch);
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_LT(*c1, *c2);
  EXPECT_EQ(g.Head(kMasterBranch), *c2);
  EXPECT_FALSE(g.IsHead(*c1));
  auto info = g.GetCommit(*c2);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->parents, std::vector<CommitId>{*c1});
}

TEST(VersionGraphTest, BranchFromAnyCommit) {
  VersionGraph g;
  auto init = g.Init();
  ASSERT_TRUE(init.ok());
  auto c1 = g.AddCommit(kMasterBranch);
  ASSERT_TRUE(c1.ok());
  auto dev = g.CreateBranch("dev", *init);  // historical commit
  ASSERT_TRUE(dev.ok());
  auto info = g.GetBranch(*dev);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->base_commit, *init);
  EXPECT_EQ(info->parent_branch, kMasterBranch);
  EXPECT_EQ(g.Head(*dev), *init);
  // Duplicate names rejected; unknown commits rejected.
  EXPECT_TRUE(g.CreateBranch("dev", *c1).status().IsAlreadyExists());
  EXPECT_TRUE(g.CreateBranch("x", 999).status().IsNotFound());
  auto found = g.FindBranchByName("dev");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, *dev);
}

TEST(VersionGraphTest, LcaLinearChain) {
  VersionGraph g;
  auto init = g.Init();
  ASSERT_TRUE(init.ok());
  auto c1 = g.AddCommit(kMasterBranch);
  auto dev = g.CreateBranch("dev", *c1);
  ASSERT_TRUE(dev.ok());
  auto c2 = g.AddCommit(kMasterBranch);
  auto d1 = g.AddCommit(*dev);
  ASSERT_TRUE(c2.ok() && d1.ok());
  auto lca = g.Lca(*c2, *d1);
  ASSERT_TRUE(lca.ok());
  EXPECT_EQ(*lca, *c1);
  // lca(x, ancestor(x)) == ancestor.
  auto lca2 = g.Lca(*c2, *c1);
  ASSERT_TRUE(lca2.ok());
  EXPECT_EQ(*lca2, *c1);
  auto lca_self = g.Lca(*d1, *d1);
  ASSERT_TRUE(lca_self.ok());
  EXPECT_EQ(*lca_self, *d1);
}

TEST(VersionGraphTest, LcaAfterMergePrefersLatestCommonAncestor) {
  VersionGraph g;
  ASSERT_TRUE(g.Init().ok());
  auto c1 = g.AddCommit(kMasterBranch);
  auto dev = g.CreateBranch("dev", *c1);
  ASSERT_TRUE(dev.ok());
  auto d1 = g.AddCommit(*dev);
  ASSERT_TRUE(d1.ok());
  auto m = g.AddMergeCommit(kMasterBranch, *dev);  // master absorbs dev
  ASSERT_TRUE(m.ok());
  auto d2 = g.AddCommit(*dev);
  ASSERT_TRUE(d2.ok());
  // After the merge, the lca of the two heads is dev's merged head d1,
  // not the old branch point c1.
  auto lca = g.Lca(g.Head(kMasterBranch), g.Head(*dev));
  ASSERT_TRUE(lca.ok());
  EXPECT_EQ(*lca, *d1);
}

TEST(VersionGraphTest, AncestorsAndIsAncestor) {
  VersionGraph g;
  auto init = g.Init();
  ASSERT_TRUE(init.ok());
  auto c1 = g.AddCommit(kMasterBranch);
  auto dev = g.CreateBranch("dev", *c1);
  ASSERT_TRUE(dev.ok());
  auto d1 = g.AddCommit(*dev);
  ASSERT_TRUE(d1.ok());
  EXPECT_TRUE(g.IsAncestor(*init, *d1));
  EXPECT_TRUE(g.IsAncestor(*c1, *d1));
  EXPECT_FALSE(g.IsAncestor(*d1, *c1));
  auto ancestors = g.Ancestors(*d1);
  EXPECT_EQ(ancestors.size(), 3u);  // d1, c1, init
}

TEST(VersionGraphTest, ActiveBranchTracking) {
  VersionGraph g;
  ASSERT_TRUE(g.Init().ok());
  auto c1 = g.AddCommit(kMasterBranch);
  auto dev = g.CreateBranch("dev", *c1);
  ASSERT_TRUE(dev.ok());
  EXPECT_EQ(g.ActiveBranches().size(), 2u);
  g.SetActive(*dev, false);  // the science pattern retires branches (§4.1)
  EXPECT_EQ(g.ActiveBranches().size(), 1u);
  EXPECT_EQ(g.AllBranches().size(), 2u);
}

TEST(VersionGraphTest, SerializationRoundTrip) {
  VersionGraph g;
  ASSERT_TRUE(g.Init().ok());
  auto c1 = g.AddCommit(kMasterBranch);
  auto dev = g.CreateBranch("dev", *c1);
  ASSERT_TRUE(dev.ok());
  ASSERT_TRUE(g.AddCommit(*dev).ok());
  ASSERT_TRUE(g.AddMergeCommit(kMasterBranch, *dev).ok());
  g.SetActive(*dev, false);

  std::string blob;
  g.EncodeTo(&blob);
  auto restored = VersionGraph::DecodeFrom(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_branches(), g.num_branches());
  EXPECT_EQ(restored->num_commits(), g.num_commits());
  EXPECT_EQ(restored->Head(kMasterBranch), g.Head(kMasterBranch));
  EXPECT_EQ(restored->ActiveBranches(), g.ActiveBranches());
  // New commits continue from the right id.
  auto next_old = g.AddCommit(kMasterBranch);
  auto next_new = restored->AddCommit(kMasterBranch);
  ASSERT_TRUE(next_old.ok() && next_new.ok());
  EXPECT_EQ(*next_old, *next_new);
}

TEST(VersionGraphTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(VersionGraph::DecodeFrom("nonsense").ok());
  EXPECT_FALSE(VersionGraph::DecodeFrom("").ok());
}

}  // namespace
}  // namespace decibel
