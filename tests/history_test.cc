/// Property tests for time travel: random operation streams where new
/// branches fork from *random historical commits* (not just heads), so the
/// commit-restore paths (bitmap checkout + pk-index rebuild in TF/HY,
/// (segment, offset) roots in VF) get exercised under load, including
/// after reopen.

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "core/decibel.h"
#include "test_util.h"

namespace decibel {
namespace {

using testing_util::MakeRecord;
using testing_util::ScratchDir;
using testing_util::TestSchema;

class HistoryTest
    : public ::testing::TestWithParam<std::tuple<EngineType, uint64_t>> {};

TEST_P(HistoryTest, BranchesFromRandomCommitsMatchSnapshots) {
  const auto [engine, seed] = GetParam();
  ScratchDir dir("history");
  const Schema schema = TestSchema(2);
  DecibelOptions options;
  options.engine = engine;
  options.page_size = 4096;
  options.composite_every = 4;  // exercise the composite-delta layer
  auto db = Decibel::Open(dir.path(), schema, options).MoveValueUnsafe();

  Random rng(seed);
  std::map<BranchId, std::map<int64_t, int32_t>> oracle;
  std::map<CommitId, std::map<int64_t, int32_t>> snapshots;
  std::vector<BranchId> branches{kMasterBranch};
  std::vector<CommitId> commits;
  oracle[kMasterBranch] = {};
  int64_t next_pk = 0;
  int32_t next_val = 0;
  int branch_counter = 0;

  for (int round = 0; round < 60; ++round) {
    // Mutate a random branch.
    const BranchId b = branches[rng.Uniform(branches.size())];
    auto& table = oracle[b];
    for (int op = 0; op < 15; ++op) {
      const uint64_t kind = rng.Uniform(10);
      if (kind < 6 || table.empty()) {
        const int32_t v = ++next_val;
        ASSERT_OK(db->InsertInto(b, MakeRecord(schema, next_pk, v)));
        table[next_pk++] = v;
      } else if (kind < 9) {
        auto it = table.begin();
        std::advance(it, rng.Uniform(table.size()));
        it->second = ++next_val;
        ASSERT_OK(db->UpdateIn(b, MakeRecord(schema, it->first, it->second)));
      } else {
        auto it = table.begin();
        std::advance(it, rng.Uniform(table.size()));
        ASSERT_OK(db->DeleteFrom(b, it->first));
        table.erase(it);
      }
    }
    // Commit and remember the snapshot.
    auto commit = db->CommitBranch(b);
    ASSERT_TRUE(commit.ok()) << commit.status().ToString();
    snapshots[*commit] = table;
    commits.push_back(*commit);

    // Sometimes revive a random historical commit as a new branch.
    if (rng.OneIn(3) && branches.size() < 10) {
      const CommitId base = commits[rng.Uniform(commits.size())];
      auto child =
          db->BranchAt("hist_" + std::to_string(branch_counter++), base);
      ASSERT_TRUE(child.ok()) << child.status().ToString();
      branches.push_back(*child);
      oracle[*child] = snapshots[base];
      // The revived branch must equal the snapshot immediately.
      auto rows = testing_util::CollectBranch(db.get(), *child);
      ASSERT_EQ(rows, snapshots[base])
          << "revival of commit " << base << " diverged";
    }
  }

  // Every branch matches its oracle; every commit still replays.
  for (BranchId b : branches) {
    EXPECT_EQ(testing_util::CollectBranch(db.get(), b), oracle[b])
        << "branch " << b;
  }
  for (const CommitId c : commits) {
    auto it = db->NewScan(ScanSpec::Commit(c));
    ASSERT_TRUE(it.ok()) << it.status().ToString();
    EXPECT_EQ(testing_util::Collect(it->get()), snapshots[c])
        << "commit " << c;
  }

  // Checkout sessions see snapshots too.
  Session s = db->NewSession();
  const CommitId probe = commits[commits.size() / 2];
  ASSERT_OK(db->Checkout(&s, probe));
  EXPECT_EQ(testing_util::Collect(db->NewScan(s).MoveValueUnsafe().get()),
            snapshots[probe]);

  // And everything survives a flush + reopen.
  ASSERT_OK(db->Flush());
  db.reset();
  db = Decibel::Open(dir.path(), schema, options).MoveValueUnsafe();
  for (BranchId b : branches) {
    EXPECT_EQ(testing_util::CollectBranch(db.get(), b), oracle[b])
        << "branch " << b << " after reopen";
  }
  const CommitId last = commits.back();
  auto it = db->NewScan(ScanSpec::Commit(last));
  ASSERT_TRUE(it.ok());
  EXPECT_EQ(testing_util::Collect(it->get()), snapshots[last]);
}

INSTANTIATE_TEST_SUITE_P(
    EnginesAndSeeds, HistoryTest,
    ::testing::Combine(::testing::Values(EngineType::kTupleFirst,
                                         EngineType::kVersionFirst,
                                         EngineType::kHybrid),
                       ::testing::Values(3u, 11u, 77u)),
    [](const auto& info) {
      std::string engine;
      switch (std::get<0>(info.param)) {
        case EngineType::kTupleFirst:
          engine = "TupleFirst";
          break;
        case EngineType::kVersionFirst:
          engine = "VersionFirst";
          break;
        default:
          engine = "Hybrid";
      }
      return engine + "_seed" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace decibel
