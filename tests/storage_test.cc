/// Unit tests for the relational storage substrate: schemas, records,
/// heap files and the buffer pool.

#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "storage/record.h"
#include "storage/schema.h"
#include "test_util.h"

namespace decibel {
namespace {

using testing_util::ScratchDir;

// ------------------------------------------------------------------ Schema

TEST(SchemaTest, BenchmarkSchemaLayout) {
  // The paper's benchmark records: 250 x 4-byte columns + 8-byte key and
  // a 1-byte header = 1009 bytes (~1 KB records, §4.2).
  const Schema schema = Schema::MakeBenchmark(250, 4);
  EXPECT_EQ(schema.num_columns(), 251u);
  EXPECT_EQ(schema.record_size(), 1u + 8u + 250u * 4u);
  EXPECT_EQ(schema.column(0).name, "pk");
  EXPECT_EQ(schema.column(0).type, FieldType::kInt64);
}

TEST(SchemaTest, RejectsBadSchemas) {
  EXPECT_FALSE(Schema::Make({}).ok());
  EXPECT_FALSE(
      Schema::Make({{"pk", FieldType::kInt32, 0}}).ok());  // key not int64
  EXPECT_FALSE(Schema::Make({{"pk", FieldType::kInt64, 0},
                             {"pk", FieldType::kInt32, 0}})
                   .ok());  // duplicate name
  EXPECT_FALSE(Schema::Make({{"pk", FieldType::kInt64, 0},
                             {"s", FieldType::kString, 0}})
                   .ok());  // string without width
}

TEST(SchemaTest, MixedTypesAndOffsets) {
  auto schema = Schema::Make({{"pk", FieldType::kInt64, 0},
                              {"a", FieldType::kInt32, 0},
                              {"b", FieldType::kDouble, 0},
                              {"name", FieldType::kString, 16}});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->record_size(), 1u + 8u + 4u + 8u + 16u);
  EXPECT_EQ(schema->offset(0), 1u);
  EXPECT_EQ(schema->offset(1), 9u);
  EXPECT_EQ(schema->offset(2), 13u);
  EXPECT_EQ(schema->offset(3), 21u);
  EXPECT_EQ(schema->FindColumn("name"), 3);
  EXPECT_EQ(schema->FindColumn("nope"), -1);
}

TEST(SchemaTest, SerializationRoundTrip) {
  auto schema = Schema::Make({{"pk", FieldType::kInt64, 0},
                              {"a", FieldType::kInt32, 0},
                              {"s", FieldType::kString, 12}});
  ASSERT_TRUE(schema.ok());
  std::string blob;
  schema->EncodeTo(&blob);
  Slice in(blob);
  auto restored = Schema::DecodeFrom(&in);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(*restored == *schema);
}

// ------------------------------------------------------------------ Record

TEST(RecordTest, FieldAccess) {
  auto schema = Schema::Make({{"pk", FieldType::kInt64, 0},
                              {"a", FieldType::kInt32, 0},
                              {"b", FieldType::kDouble, 0},
                              {"name", FieldType::kString, 8}});
  ASSERT_TRUE(schema.ok());
  Record r(&*schema);
  r.SetPk(12345678901LL);
  r.SetInt32(1, -42);
  r.SetDouble(2, 2.5);
  r.SetString(3, "abc");

  const RecordRef ref = r.ref();
  EXPECT_EQ(ref.pk(), 12345678901LL);
  EXPECT_EQ(ref.GetInt32(1), -42);
  EXPECT_EQ(ref.GetDouble(2), 2.5);
  EXPECT_EQ(ref.GetString(3), "abc");
  EXPECT_FALSE(ref.tombstone());
}

TEST(RecordTest, StringTruncationAndPadding) {
  auto schema = Schema::Make(
      {{"pk", FieldType::kInt64, 0}, {"s", FieldType::kString, 4}});
  ASSERT_TRUE(schema.ok());
  Record r(&*schema);
  r.SetString(1, "toolongvalue");
  EXPECT_EQ(r.ref().GetString(1), "tool");
  r.SetString(1, "x");
  EXPECT_EQ(r.ref().GetString(1), "x");
}

TEST(RecordTest, Tombstone) {
  const Schema schema = Schema::MakeBenchmark(2);
  const Record t = MakeTombstone(&schema, 99);
  EXPECT_TRUE(t.tombstone());
  EXPECT_EQ(t.pk(), 99);
  Record r(&schema);
  r.SetTombstone(true);
  r.SetTombstone(false);
  EXPECT_FALSE(r.tombstone());
}

TEST(RecordTest, ColumnCopyForMerges) {
  const Schema schema = Schema::MakeBenchmark(3);
  Record a(&schema), b(&schema);
  a.SetPk(1);
  a.SetInt32(1, 10);
  b.SetPk(1);
  b.SetInt32(1, 99);
  a.CopyColumnFrom(1, b.ref());
  EXPECT_EQ(a.ref().GetInt32(1), 99);
}

// ---------------------------------------------------------------- HeapFile

class HeapFileTest : public ::testing::Test {
 protected:
  HeapFileTest() : dir_("heap"), pool_(1 << 20) {}

  std::string MakeRecordBytes(uint32_t record_size, int64_t pk, char fill) {
    std::string r(record_size, fill);
    r[0] = 0;  // flags
    memcpy(r.data() + 1, &pk, sizeof(pk));
    return r;
  }

  ScratchDir dir_;
  BufferPool pool_;
};

TEST_F(HeapFileTest, AppendAndGet) {
  HeapFile::Options opts;
  opts.page_size = 256;  // tiny pages: lots of boundaries
  auto file = HeapFile::Create(JoinPath(dir_.path(), "t.dbhf"), 32, opts,
                               &pool_);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  for (int64_t i = 0; i < 100; ++i) {
    auto idx = (*file)->Append(MakeRecordBytes(32, i, 'a' + i % 26));
    ASSERT_TRUE(idx.ok());
    EXPECT_EQ(*idx, static_cast<uint64_t>(i));
  }
  EXPECT_EQ((*file)->num_records(), 100u);
  std::string buf;
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_OK((*file)->Get(static_cast<uint64_t>(i), &buf));
    EXPECT_EQ(buf, MakeRecordBytes(32, i, 'a' + i % 26)) << i;
  }
  EXPECT_TRUE((*file)->Get(100, &buf).IsOutOfRange());
}

TEST_F(HeapFileTest, RejectsWrongRecordSize) {
  HeapFile::Options opts;
  opts.page_size = 256;
  auto file = HeapFile::Create(JoinPath(dir_.path(), "t.dbhf"), 32, opts,
                               &pool_);
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE((*file)->Append(std::string(31, 'x')).status()
                  .IsInvalidArgument());
  EXPECT_FALSE(
      HeapFile::Create(JoinPath(dir_.path(), "t2.dbhf"), 0, opts, &pool_)
          .ok());
  EXPECT_FALSE(
      HeapFile::Create(JoinPath(dir_.path(), "t3.dbhf"), 300, opts, &pool_)
          .ok());  // record larger than page
}

TEST_F(HeapFileTest, ScannerSeesAllRecordsIncludingTail) {
  HeapFile::Options opts;
  opts.page_size = 256;
  auto file = HeapFile::Create(JoinPath(dir_.path(), "t.dbhf"), 32, opts,
                               &pool_);
  ASSERT_TRUE(file.ok());
  for (int64_t i = 0; i < 57; ++i) {  // ends mid-page
    ASSERT_TRUE((*file)->Append(MakeRecordBytes(32, i, 'z')).ok());
  }
  auto scanner = (*file)->NewScanner();
  Slice rec;
  uint64_t idx;
  uint64_t count = 0;
  while (scanner.Next(&rec, &idx)) {
    int64_t pk;
    memcpy(&pk, rec.data() + 1, sizeof(pk));
    EXPECT_EQ(pk, static_cast<int64_t>(idx));
    ++count;
  }
  ASSERT_OK(scanner.status());
  EXPECT_EQ(count, 57u);
}

TEST_F(HeapFileTest, ReopenRestoresAppendPosition) {
  HeapFile::Options opts;
  opts.page_size = 256;
  const std::string path = JoinPath(dir_.path(), "t.dbhf");
  {
    auto file = HeapFile::Create(path, 32, opts, &pool_);
    ASSERT_TRUE(file.ok());
    for (int64_t i = 0; i < 19; ++i) {
      ASSERT_TRUE((*file)->Append(MakeRecordBytes(32, i, 'p')).ok());
    }
    ASSERT_OK((*file)->Flush());
  }
  {
    auto file = HeapFile::Open(path, opts, &pool_);
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    EXPECT_EQ((*file)->num_records(), 19u);
    for (int64_t i = 19; i < 40; ++i) {
      ASSERT_TRUE((*file)->Append(MakeRecordBytes(32, i, 'p')).ok());
    }
    std::string buf;
    for (int64_t i = 0; i < 40; ++i) {
      ASSERT_OK((*file)->Get(static_cast<uint64_t>(i), &buf));
      EXPECT_EQ(buf, MakeRecordBytes(32, i, 'p')) << i;
    }
  }
}

TEST_F(HeapFileTest, SealForbidsAppends) {
  HeapFile::Options opts;
  opts.page_size = 256;
  auto file = HeapFile::Create(JoinPath(dir_.path(), "t.dbhf"), 32, opts,
                               &pool_);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(MakeRecordBytes(32, 1, 'a')).ok());
  ASSERT_OK((*file)->Seal());
  EXPECT_TRUE((*file)->sealed());
  EXPECT_TRUE((*file)->Append(MakeRecordBytes(32, 2, 'b')).status()
                  .IsInvalidArgument());
}

TEST_F(HeapFileTest, CorruptPageDetected) {
  HeapFile::Options opts;
  opts.page_size = 256;
  const std::string path = JoinPath(dir_.path(), "t.dbhf");
  {
    auto file = HeapFile::Create(path, 32, opts, &pool_);
    ASSERT_TRUE(file.ok());
    for (int64_t i = 0; i < 30; ++i) {
      ASSERT_TRUE((*file)->Append(MakeRecordBytes(32, i, 'c')).ok());
    }
    ASSERT_OK((*file)->Flush());
  }
  // Corrupt a byte in the middle of the first data page.
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  std::string mutated = *contents;
  mutated[64 + 100] ^= 0x7f;
  ASSERT_OK(WriteStringToFile(path, mutated));

  auto file = HeapFile::Open(path, opts, &pool_);
  if (file.ok()) {
    // Tail page was fine; reading the corrupt sealed page must fail.
    std::string buf;
    Status s = (*file)->Get(0, &buf);
    EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  } else {
    EXPECT_TRUE(file.status().IsCorruption());
  }
}

// -------------------------------------------------------------- BufferPool

TEST(BufferPoolTest, HitAndMissAccounting) {
  ScratchDir dir("pool");
  BufferPool pool(1 << 20);
  HeapFile::Options opts;
  opts.page_size = 256;
  auto file = HeapFile::Create(JoinPath(dir.path(), "t.dbhf"), 32, opts,
                               &pool);
  ASSERT_TRUE(file.ok());
  std::string rec(32, 'r');
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE((*file)->Append(rec).ok());
  }
  std::string buf;
  ASSERT_OK((*file)->Get(0, &buf));
  const uint64_t misses_after_first = pool.misses();
  ASSERT_OK((*file)->Get(1, &buf));  // same page -> hit
  EXPECT_EQ(pool.misses(), misses_after_first);
  EXPECT_GE(pool.hits(), 1u);
}

TEST(BufferPoolTest, EvictionBoundsMemory) {
  ScratchDir dir("pool");
  BufferPool pool(1024);  // 4 tiny pages
  HeapFile::Options opts;
  opts.page_size = 256;
  auto file = HeapFile::Create(JoinPath(dir.path(), "t.dbhf"), 32, opts,
                               &pool);
  ASSERT_TRUE(file.ok());
  std::string rec(32, 'e');
  for (int i = 0; i < 7 * 64; ++i) {
    ASSERT_TRUE((*file)->Append(rec).ok());
  }
  std::string buf;
  for (uint64_t i = 0; i < (*file)->num_records(); i += 7) {
    ASSERT_OK((*file)->Get(i, &buf));
  }
  EXPECT_LE(pool.resident_bytes(), 1024u);
  pool.EvictAll();
  EXPECT_EQ(pool.resident_bytes(), 0u);
}

TEST(BufferPoolTest, EvictedPagesStayValidForHolders) {
  ScratchDir dir("pool");
  BufferPool pool(300);  // roughly one page
  HeapFile::Options opts;
  opts.page_size = 256;
  auto file = HeapFile::Create(JoinPath(dir.path(), "t.dbhf"), 32, opts,
                               &pool);
  ASSERT_TRUE(file.ok());
  std::string rec(32, 'v');
  for (int i = 0; i < 3 * 64; ++i) {
    ASSERT_TRUE((*file)->Append(rec).ok());
  }
  auto pinned = (*file)->PinPage(0);
  ASSERT_TRUE(pinned.ok());
  // Force eviction of page 0 by touching others.
  std::string buf;
  ASSERT_OK((*file)->Get(64, &buf));
  ASSERT_OK((*file)->Get(128, &buf));
  // The pinned view is still readable (shared ownership).
  EXPECT_EQ(pinned->payload[0], 'v');
}

}  // namespace
}  // namespace decibel
