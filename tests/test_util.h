#ifndef DECIBEL_TESTS_TEST_UTIL_H_
#define DECIBEL_TESTS_TEST_UTIL_H_

/// Shared helpers for Decibel tests: scratch directories, record
/// construction, and scan materialization.

#include <gtest/gtest.h>
#include <unistd.h>

#include <map>
#include <string>
#include <vector>

#include "common/io.h"
#include "core/decibel.h"
#include "storage/record.h"
#include "storage/schema.h"

namespace decibel {
namespace testing_util {

/// A unique scratch directory removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    static int counter = 0;
    path_ = "/tmp/decibel_test_" + std::to_string(::getpid()) + "_" + tag +
            "_" + std::to_string(counter++);
    EXPECT_TRUE(RemoveDirRecursive(path_).ok());
    EXPECT_TRUE(CreateDir(path_).ok());
  }
  ~ScratchDir() { RemoveDirRecursive(path_).ok(); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Test schema: pk + N int32 columns.
inline Schema TestSchema(int cols = 3) { return Schema::MakeBenchmark(cols); }

/// Builds a record with pk and all int columns set to \p value.
inline Record MakeRecord(const Schema& schema, int64_t pk, int32_t value) {
  Record r(&schema);
  r.SetPk(pk);
  for (size_t c = 1; c < schema.num_columns(); ++c) {
    r.SetInt32(c, value);
  }
  return r;
}

/// Builds a record with explicit per-column values.
inline Record MakeRecordVals(const Schema& schema, int64_t pk,
                             const std::vector<int32_t>& vals) {
  Record r(&schema);
  r.SetPk(pk);
  for (size_t c = 1; c < schema.num_columns() && c - 1 < vals.size(); ++c) {
    r.SetInt32(c, vals[c - 1]);
  }
  return r;
}

/// Materializes a cursor into pk -> first int column.
inline std::map<int64_t, int32_t> Collect(ScanCursor* cursor) {
  std::map<int64_t, int32_t> out;
  ScanRow row;
  while (cursor->Next(&row)) {
    out[row.record.pk()] = row.record.GetInt32(1);
  }
  EXPECT_TRUE(cursor->status().ok()) << cursor->status().ToString();
  return out;
}

/// Materializes a cursor into pk -> all column values.
inline std::map<int64_t, std::vector<int32_t>> CollectAll(ScanCursor* cursor) {
  std::map<int64_t, std::vector<int32_t>> out;
  ScanRow row;
  while (cursor->Next(&row)) {
    std::vector<int32_t> vals;
    for (size_t c = 1; c < row.record.schema()->num_columns(); ++c) {
      vals.push_back(row.record.GetInt32(c));
    }
    out[row.record.pk()] = vals;
  }
  EXPECT_TRUE(cursor->status().ok()) << cursor->status().ToString();
  return out;
}

inline std::map<int64_t, int32_t> CollectBranch(Decibel* db, BranchId b) {
  auto cursor = db->NewScan(ScanSpec::Branch(b));
  EXPECT_TRUE(cursor.ok()) << cursor.status().ToString();
  return Collect(cursor.value().get());
}

inline std::map<int64_t, std::vector<int32_t>> CollectBranchAll(Decibel* db,
                                                                BranchId b) {
  auto cursor = db->NewScan(ScanSpec::Branch(b));
  EXPECT_TRUE(cursor.ok()) << cursor.status().ToString();
  return CollectAll(cursor.value().get());
}

#define ASSERT_OK(expr)                                          \
  do {                                                           \
    const ::decibel::Status _s = (expr);                         \
    ASSERT_TRUE(_s.ok()) << _s.ToString();                       \
  } while (0)

#define EXPECT_OK(expr)                                          \
  do {                                                           \
    const ::decibel::Status _s = (expr);                         \
    EXPECT_TRUE(_s.ok()) << _s.ToString();                       \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)                         \
  ASSERT_OK_AND_ASSIGN_IMPL(                                     \
      DECIBEL_ASSIGN_OR_RETURN_NAME(_tmp_, __COUNTER__), lhs, rexpr)

#define ASSERT_OK_AND_ASSIGN_IMPL(tmp, lhs, rexpr)               \
  auto tmp = (rexpr);                                            \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();              \
  lhs = std::move(tmp).MoveValueUnsafe();

}  // namespace testing_util
}  // namespace decibel

#endif  // DECIBEL_TESTS_TEST_UTIL_H_
