/// Failure injection: corruption and misuse must surface as Status errors,
/// never as crashes or silent wrong answers. Covers corrupted engine
/// metadata, version-graph files, commit histories, and API misuse at the
/// facade boundary.

#include <gtest/gtest.h>

#include "common/io.h"
#include "core/decibel.h"
#include "test_util.h"

namespace decibel {
namespace {

using testing_util::MakeRecord;
using testing_util::ScratchDir;
using testing_util::TestSchema;

class FailureTest : public ::testing::TestWithParam<EngineType> {
 protected:
  DecibelOptions Options() const {
    DecibelOptions options;
    options.engine = GetParam();
    options.page_size = 4096;
    return options;
  }

  /// Builds a small flushed database and returns its path.
  std::string BuildDb(ScratchDir* dir) {
    auto db = Decibel::Open(dir->path(), schema_, Options());
    EXPECT_TRUE(db.ok());
    for (int64_t pk = 0; pk < 100; ++pk) {
      EXPECT_OK((*db)->InsertInto(kMasterBranch,
                                  MakeRecord(schema_, pk, 1)));
    }
    EXPECT_TRUE((*db)->CommitBranch(kMasterBranch).ok());
    EXPECT_OK((*db)->Flush());
    return dir->path();
  }

  /// Flips a byte in the middle of the named file.
  void CorruptFile(const std::string& path, size_t offset_from_middle = 0) {
    auto contents = ReadFileToString(path);
    ASSERT_TRUE(contents.ok()) << path;
    ASSERT_FALSE(contents->empty());
    std::string mutated = *contents;
    mutated[mutated.size() / 2 + offset_from_middle] ^= 0x5a;
    ASSERT_OK(WriteStringToFile(path, mutated));
  }

  /// Finds a file under \p root whose name contains \p needle.
  std::string FindFile(const std::string& root, const std::string& needle) {
    auto names = ListDir(root);
    if (!names.ok()) return "";
    for (const std::string& name : *names) {
      const std::string child = JoinPath(root, name);
      if (name.find(needle) != std::string::npos) return child;
      auto sub = FindFile(child, needle);
      if (!sub.empty()) return sub;
    }
    return "";
  }

  Schema schema_ = TestSchema(2);
};

TEST_P(FailureTest, CorruptVersionGraphIsDetected) {
  ScratchDir dir("fail");
  const std::string path = BuildDb(&dir);
  CorruptFile(JoinPath(path, "graph.bin"));
  auto reopened = Decibel::Open(path, schema_, Options());
  EXPECT_FALSE(reopened.ok());
}

TEST_P(FailureTest, CorruptEngineMetaIsDetected) {
  ScratchDir dir("fail");
  const std::string path = BuildDb(&dir);
  const std::string meta = FindFile(path, "engine.meta");
  ASSERT_FALSE(meta.empty());
  CorruptFile(meta);
  auto reopened = Decibel::Open(path, schema_, Options());
  // Either the open fails outright, or (if the flipped byte happened to
  // land in recoverable padding) subsequent reads must still be sane;
  // what must never happen is a crash.
  if (reopened.ok()) {
    auto rows = (*reopened)->NewScan(ScanSpec::Branch(kMasterBranch));
    if (rows.ok()) {
      ScanRow row;
      while ((*rows)->Next(&row)) {
      }
    }
  } else {
    SUCCEED();
  }
}

TEST_P(FailureTest, CorruptDataFileIsDetectedOnRead) {
  ScratchDir dir("fail");
  const std::string path = BuildDb(&dir);
  const std::string data = FindFile(path, ".dbhf");
  ASSERT_FALSE(data.empty());
  CorruptFile(data);
  auto reopened = Decibel::Open(path, schema_, Options());
  if (!reopened.ok()) {
    SUCCEED();  // header/tail corruption caught at open
    return;
  }
  auto it = (*reopened)->NewScan(ScanSpec::Branch(kMasterBranch));
  if (!it.ok()) {
    EXPECT_TRUE(it.status().IsCorruption()) << it.status().ToString();
    return;
  }
  ScanRow row;
  while ((*it)->Next(&row)) {
  }
  // A checksum failure in a sealed page surfaces through the iterator.
  if (!(*it)->status().ok()) {
    EXPECT_TRUE((*it)->status().IsCorruption());
  }
}

TEST_P(FailureTest, SchemaMismatchOnReopenIsRejectedByBitmapEngines) {
  ScratchDir dir("fail");
  const std::string path = BuildDb(&dir);
  const Schema other = TestSchema(5);  // different record width
  auto reopened = Decibel::Open(path, other, Options());
  // Engines persist their schema/record size; a mismatched reopen must
  // not silently reinterpret bytes.
  EXPECT_FALSE(reopened.ok());
}

TEST_P(FailureTest, ApiMisuseIsStatusNotCrash) {
  ScratchDir dir("fail");
  auto db = Decibel::Open(dir.path(), schema_, Options()).MoveValueUnsafe();
  // Unknown branches and commits.
  EXPECT_FALSE(db->NewScan(ScanSpec::Branch(999)).ok());
  EXPECT_FALSE(db->NewScan(ScanSpec::Commit(999)).ok());
  EXPECT_FALSE(db->engine()->Checkout(999).ok());
  Session s = db->NewSession();
  EXPECT_FALSE(db->Use(&s, 999).ok());
  EXPECT_FALSE(db->Use(&s, "no-such-branch").ok());
  EXPECT_FALSE(db->Checkout(&s, 999).ok());
  EXPECT_FALSE(db->BranchAt("x", 999).ok());
  // Duplicate branch names.
  ASSERT_OK(db->InsertInto(kMasterBranch, MakeRecord(schema_, 1, 1)));
  ASSERT_TRUE(db->Branch("dev", &s).ok());
  ASSERT_OK(db->Use(&s, kMasterBranch));
  EXPECT_FALSE(db->Branch("dev", &s).ok());
  // Deleting a key that does not exist: the bitmap engines detect it via
  // their pk indexes; version-first appends a tombstone unconditionally
  // (its physical design has no cheap liveness check — §3.3). Either way,
  // a subsequent scan must be unaffected.
  const Status missing_delete = db->DeleteFrom(kMasterBranch, 424242);
  if (GetParam() == EngineType::kVersionFirst) {
    EXPECT_OK(missing_delete);
  } else {
    EXPECT_TRUE(missing_delete.IsNotFound());
  }
  auto rows = testing_util::CollectBranch(db.get(), kMasterBranch);
  EXPECT_EQ(rows.count(424242), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, FailureTest,
                         ::testing::Values(EngineType::kTupleFirst,
                                           EngineType::kVersionFirst,
                                           EngineType::kHybrid),
                         [](const auto& info) {
                           switch (info.param) {
                             case EngineType::kTupleFirst:
                               return "TupleFirst";
                             case EngineType::kVersionFirst:
                               return "VersionFirst";
                             default:
                               return "Hybrid";
                           }
                         });

}  // namespace
}  // namespace decibel
