/// Engine conformance suite: every test runs against all three storage
/// engines (tuple-first, version-first, hybrid) through the Decibel
/// facade and asserts identical logical behaviour — the master invariant
/// of the paper's design space exploration: the physical representations
/// differ, the versioning semantics must not.

#include <dirent.h>
#include <gtest/gtest.h>

#include <set>

#include "core/decibel.h"
#include "test_util.h"

namespace decibel {
namespace {

using testing_util::Collect;
using testing_util::CollectBranch;
using testing_util::CollectBranchAll;
using testing_util::MakeRecord;
using testing_util::MakeRecordVals;
using testing_util::ScratchDir;
using testing_util::TestSchema;

class EngineTest : public ::testing::TestWithParam<EngineType> {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<ScratchDir>("engine");
    schema_ = TestSchema(3);
    Reopen();
  }

  void Reopen() {
    db_.reset();
    DecibelOptions options;
    options.engine = GetParam();
    options.page_size = 4096;  // small pages exercise page boundaries
    auto db = Decibel::Open(dir_->path(), schema_, options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).MoveValueUnsafe();
  }

  std::unique_ptr<ScratchDir> dir_;
  Schema schema_ = TestSchema(3);
  std::unique_ptr<Decibel> db_;
};

TEST_P(EngineTest, EmptyMasterScan) {
  EXPECT_TRUE(CollectBranch(db_.get(), kMasterBranch).empty());
}

TEST_P(EngineTest, InsertAndScan) {
  for (int64_t pk = 0; pk < 100; ++pk) {
    ASSERT_OK(db_->InsertInto(kMasterBranch,
                              MakeRecord(schema_, pk, static_cast<int>(pk))));
  }
  auto rows = CollectBranch(db_.get(), kMasterBranch);
  ASSERT_EQ(rows.size(), 100u);
  EXPECT_EQ(rows[0], 0);
  EXPECT_EQ(rows[99], 99);
}

TEST_P(EngineTest, UpdateReplacesValue) {
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 7, 1)));
  ASSERT_OK(db_->UpdateIn(kMasterBranch, MakeRecord(schema_, 7, 2)));
  auto rows = CollectBranch(db_.get(), kMasterBranch);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[7], 2);
}

TEST_P(EngineTest, DeleteHidesKey) {
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 1, 10)));
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 2, 20)));
  ASSERT_OK(db_->DeleteFrom(kMasterBranch, 1));
  auto rows = CollectBranch(db_.get(), kMasterBranch);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows.count(1), 0u);
  EXPECT_EQ(rows[2], 20);
}

TEST_P(EngineTest, BranchSeesParentData) {
  for (int64_t pk = 0; pk < 50; ++pk) {
    ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, pk, 1)));
  }
  Session s = db_->NewSession();
  ASSERT_OK_AND_ASSIGN(BranchId dev, db_->Branch("dev", &s));
  auto rows = CollectBranch(db_.get(), dev);
  EXPECT_EQ(rows.size(), 50u);
}

TEST_P(EngineTest, BranchIsolationBothDirections) {
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 1, 1)));
  Session s = db_->NewSession();
  ASSERT_OK_AND_ASSIGN(BranchId dev, db_->Branch("dev", &s));

  // Child-side modifications invisible to the parent.
  ASSERT_OK(db_->InsertInto(dev, MakeRecord(schema_, 2, 2)));
  ASSERT_OK(db_->UpdateIn(dev, MakeRecord(schema_, 1, 42)));
  // Parent-side modifications after the branch point invisible to child.
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 3, 3)));

  auto master = CollectBranch(db_.get(), kMasterBranch);
  auto child = CollectBranch(db_.get(), dev);
  EXPECT_EQ(master.size(), 2u);
  EXPECT_EQ(master[1], 1);
  EXPECT_EQ(master[3], 3);
  EXPECT_EQ(child.size(), 2u);
  EXPECT_EQ(child[1], 42);
  EXPECT_EQ(child[2], 2);
}

TEST_P(EngineTest, DeleteInChildInvisibleToParent) {
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 1, 1)));
  Session s = db_->NewSession();
  ASSERT_OK_AND_ASSIGN(BranchId dev, db_->Branch("dev", &s));
  ASSERT_OK(db_->DeleteFrom(dev, 1));
  EXPECT_EQ(CollectBranch(db_.get(), kMasterBranch).size(), 1u);
  EXPECT_EQ(CollectBranch(db_.get(), dev).size(), 0u);
}

TEST_P(EngineTest, ScanCommitSeesSnapshot) {
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 1, 1)));
  ASSERT_OK_AND_ASSIGN(CommitId c1, db_->CommitBranch(kMasterBranch));
  ASSERT_OK(db_->UpdateIn(kMasterBranch, MakeRecord(schema_, 1, 2)));
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 2, 2)));
  ASSERT_OK_AND_ASSIGN(CommitId c2, db_->CommitBranch(kMasterBranch));

  ASSERT_OK_AND_ASSIGN(auto it1, db_->NewScan(ScanSpec::Commit(c1)));
  auto rows1 = Collect(it1.get());
  EXPECT_EQ(rows1.size(), 1u);
  EXPECT_EQ(rows1[1], 1);

  ASSERT_OK_AND_ASSIGN(auto it2, db_->NewScan(ScanSpec::Commit(c2)));
  auto rows2 = Collect(it2.get());
  EXPECT_EQ(rows2.size(), 2u);
  EXPECT_EQ(rows2[1], 2);
}

TEST_P(EngineTest, CheckoutSessionReadsHistoricalVersion) {
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 1, 1)));
  ASSERT_OK_AND_ASSIGN(CommitId c1, db_->CommitBranch(kMasterBranch));
  ASSERT_OK(db_->UpdateIn(kMasterBranch, MakeRecord(schema_, 1, 9)));

  Session s = db_->NewSession();
  ASSERT_OK(db_->Checkout(&s, c1));
  ASSERT_OK_AND_ASSIGN(auto it, db_->NewScan(s));
  auto rows = Collect(it.get());
  EXPECT_EQ(rows[1], 1);
  // Writes to a historical checkout are rejected.
  EXPECT_FALSE(db_->Insert(&s, MakeRecord(schema_, 5, 5)).ok());
}

TEST_P(EngineTest, BranchFromHistoricalCommit) {
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 1, 1)));
  ASSERT_OK_AND_ASSIGN(CommitId c1, db_->CommitBranch(kMasterBranch));
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 2, 2)));
  ASSERT_OK(db_->UpdateIn(kMasterBranch, MakeRecord(schema_, 1, 99)));
  ASSERT_OK_AND_ASSIGN(CommitId c2, db_->CommitBranch(kMasterBranch));
  (void)c2;

  ASSERT_OK_AND_ASSIGN(BranchId old, db_->BranchAt("old", c1));
  auto rows = CollectBranch(db_.get(), old);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[1], 1);

  // The revived branch evolves independently.
  ASSERT_OK(db_->InsertInto(old, MakeRecord(schema_, 10, 10)));
  EXPECT_EQ(CollectBranch(db_.get(), old).size(), 2u);
  EXPECT_EQ(CollectBranch(db_.get(), kMasterBranch).size(), 2u);
}

TEST_P(EngineTest, DeepBranchChain) {
  // The "deep" shape of §4.1: a linear chain, inserts always at the tail.
  Session s = db_->NewSession();
  BranchId current = kMasterBranch;
  for (int level = 0; level < 8; ++level) {
    for (int64_t i = 0; i < 10; ++i) {
      ASSERT_OK(db_->InsertInto(
          current, MakeRecord(schema_, level * 100 + i, level)));
    }
    ASSERT_OK(db_->Use(&s, current));
    ASSERT_OK_AND_ASSIGN(current,
                         db_->Branch("level" + std::to_string(level), &s));
  }
  auto rows = CollectBranch(db_.get(), current);
  EXPECT_EQ(rows.size(), 80u);
  EXPECT_EQ(rows[0], 0);
  EXPECT_EQ(rows[705], 7);
  // The root still only sees its own level.
  EXPECT_EQ(CollectBranch(db_.get(), kMasterBranch).size(), 10u);
}

TEST_P(EngineTest, FlatManyChildren) {
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, i, 0)));
  }
  Session s = db_->NewSession();
  std::vector<BranchId> children;
  for (int c = 0; c < 6; ++c) {
    ASSERT_OK(db_->Use(&s, kMasterBranch));
    ASSERT_OK_AND_ASSIGN(BranchId child,
                         db_->Branch("child" + std::to_string(c), &s));
    children.push_back(child);
    ASSERT_OK(db_->InsertInto(child, MakeRecord(schema_, 1000 + c, c + 1)));
  }
  for (int c = 0; c < 6; ++c) {
    auto rows = CollectBranch(db_.get(), children[c]);
    EXPECT_EQ(rows.size(), 21u) << "child " << c;
    EXPECT_EQ(rows[1000 + c], c + 1);
    EXPECT_EQ(rows.count(1000 + ((c + 1) % 6)), 0u);  // sibling isolation
  }
}

TEST_P(EngineTest, MultiScanAnnotations) {
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 1, 1)));
  Session s = db_->NewSession();
  ASSERT_OK_AND_ASSIGN(BranchId dev, db_->Branch("dev", &s));
  ASSERT_OK(db_->InsertInto(dev, MakeRecord(schema_, 2, 2)));
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 3, 3)));

  std::map<int64_t, std::set<uint32_t>> membership;
  ASSERT_OK_AND_ASSIGN(auto it,
                       db_->NewScan(ScanSpec::Multi({kMasterBranch, dev})));
  ScanRow row;
  while (it->Next(&row)) {
    for (uint32_t p : *row.branches) membership[row.record.pk()].insert(p);
  }
  ASSERT_OK(it->status());
  ASSERT_EQ(membership.size(), 3u);
  EXPECT_EQ(membership[1], (std::set<uint32_t>{0, 1}));  // shared
  EXPECT_EQ(membership[2], (std::set<uint32_t>{1}));     // dev only
  EXPECT_EQ(membership[3], (std::set<uint32_t>{0}));     // master only
}

TEST_P(EngineTest, MultiScanEmitsEachRecordOnce) {
  for (int64_t i = 0; i < 30; ++i) {
    ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, i, 1)));
  }
  Session s = db_->NewSession();
  ASSERT_OK_AND_ASSIGN(BranchId dev, db_->Branch("dev", &s));
  (void)dev;
  int emitted = 0;
  ASSERT_OK_AND_ASSIGN(auto it,
                       db_->NewScan(ScanSpec::Multi({kMasterBranch, dev})));
  ScanRow row;
  while (it->Next(&row)) {
    ++emitted;
    EXPECT_EQ(row.branches->size(), 2u);  // identical content in both
  }
  ASSERT_OK(it->status());
  EXPECT_EQ(emitted, 30);
}

TEST_P(EngineTest, DiffByKey) {
  // Q2 semantics: keys in A not in B.
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 1, 1)));
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 2, 2)));
  Session s = db_->NewSession();
  ASSERT_OK_AND_ASSIGN(BranchId dev, db_->Branch("dev", &s));
  ASSERT_OK(db_->InsertInto(dev, MakeRecord(schema_, 3, 3)));      // dev only
  ASSERT_OK(db_->UpdateIn(dev, MakeRecord(schema_, 1, 99)));       // updated
  ASSERT_OK(db_->DeleteFrom(dev, 2));                              // deleted
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 4, 4)));

  std::set<int64_t> pos, neg;
  ASSERT_OK(db_->Diff(
      kMasterBranch, dev, DiffMode::kByKey,
      [&](const RecordRef& r) { pos.insert(r.pk()); },
      [&](const RecordRef& r) { neg.insert(r.pk()); }));
  // In master, not in dev: pk 2 (deleted in dev) and pk 4 (new in master).
  EXPECT_EQ(pos, (std::set<int64_t>{2, 4}));
  // In dev, not in master: pk 3.
  EXPECT_EQ(neg, (std::set<int64_t>{3}));
}

TEST_P(EngineTest, DiffByContent) {
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 1, 1)));
  Session s = db_->NewSession();
  ASSERT_OK_AND_ASSIGN(BranchId dev, db_->Branch("dev", &s));
  ASSERT_OK(db_->UpdateIn(dev, MakeRecord(schema_, 1, 2)));

  std::map<int64_t, int32_t> pos, neg;
  ASSERT_OK(db_->Diff(
      kMasterBranch, dev, DiffMode::kByContent,
      [&](const RecordRef& r) { pos[r.pk()] = r.GetInt32(1); },
      [&](const RecordRef& r) { neg[r.pk()] = r.GetInt32(1); }));
  // Master's version of pk 1 is not in dev (which carries the update).
  ASSERT_EQ(pos.size(), 1u);
  EXPECT_EQ(pos[1], 1);
  ASSERT_EQ(neg.size(), 1u);
  EXPECT_EQ(neg[1], 2);
}

TEST_P(EngineTest, DiffIdenticalBranchesIsEmpty) {
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, i, 1)));
  }
  Session s = db_->NewSession();
  ASSERT_OK_AND_ASSIGN(BranchId dev, db_->Branch("dev", &s));
  int count = 0;
  auto counter = [&](const RecordRef&) { ++count; };
  ASSERT_OK(db_->Diff(kMasterBranch, dev, DiffMode::kByContent, counter,
                      counter));
  EXPECT_EQ(count, 0);
  ASSERT_OK(db_->Diff(kMasterBranch, dev, DiffMode::kByKey, counter,
                      counter));
  EXPECT_EQ(count, 0);
}

TEST_P(EngineTest, MergeUnionOfNonConflictingChanges) {
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 1, 1)));
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 2, 2)));
  Session s = db_->NewSession();
  ASSERT_OK_AND_ASSIGN(BranchId dev, db_->Branch("dev", &s));

  ASSERT_OK(db_->InsertInto(dev, MakeRecord(schema_, 3, 3)));   // add in dev
  ASSERT_OK(db_->UpdateIn(dev, MakeRecord(schema_, 2, 22)));    // update dev
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 4, 4)));

  ASSERT_OK_AND_ASSIGN(
      MergeInfo info,
      db_->Merge(kMasterBranch, dev, MergePolicy::kThreeWayLeft));
  EXPECT_EQ(info.result.conflicts, 0u);

  auto rows = CollectBranch(db_.get(), kMasterBranch);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[1], 1);
  EXPECT_EQ(rows[2], 22);  // dev's non-conflicting update adopted
  EXPECT_EQ(rows[3], 3);
  EXPECT_EQ(rows[4], 4);
}

TEST_P(EngineTest, MergeTwoWayPrecedence) {
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 1, 1)));
  Session s = db_->NewSession();
  ASSERT_OK_AND_ASSIGN(BranchId dev, db_->Branch("dev", &s));
  ASSERT_OK(db_->UpdateIn(kMasterBranch, MakeRecord(schema_, 1, 100)));
  ASSERT_OK(db_->UpdateIn(dev, MakeRecord(schema_, 1, 200)));

  {
    ASSERT_OK_AND_ASSIGN(
        MergeInfo info,
        db_->Merge(kMasterBranch, dev, MergePolicy::kTwoWayLeft));
    EXPECT_GE(info.result.conflicts, 1u);
    auto rows = CollectBranch(db_.get(), kMasterBranch);
    EXPECT_EQ(rows[1], 100);  // left (into) wins
  }
}

TEST_P(EngineTest, MergeTwoWayRightPrecedence) {
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 1, 1)));
  Session s = db_->NewSession();
  ASSERT_OK_AND_ASSIGN(BranchId dev, db_->Branch("dev", &s));
  ASSERT_OK(db_->UpdateIn(kMasterBranch, MakeRecord(schema_, 1, 100)));
  ASSERT_OK(db_->UpdateIn(dev, MakeRecord(schema_, 1, 200)));
  ASSERT_OK_AND_ASSIGN(
      MergeInfo info,
      db_->Merge(kMasterBranch, dev, MergePolicy::kTwoWayRight));
  EXPECT_GE(info.result.conflicts, 1u);
  auto rows = CollectBranch(db_.get(), kMasterBranch);
  EXPECT_EQ(rows[1], 200);  // right (from) wins
}

TEST_P(EngineTest, MergeThreeWayAutoMergesDisjointFields) {
  // §2.2.3: "non-overlapping field updates are auto-merged".
  ASSERT_OK(db_->InsertInto(kMasterBranch,
                            MakeRecordVals(schema_, 1, {10, 20, 30})));
  Session s = db_->NewSession();
  ASSERT_OK_AND_ASSIGN(BranchId dev, db_->Branch("dev", &s));
  ASSERT_OK(
      db_->UpdateIn(kMasterBranch, MakeRecordVals(schema_, 1, {11, 20, 30})));
  ASSERT_OK(db_->UpdateIn(dev, MakeRecordVals(schema_, 1, {10, 20, 33})));

  ASSERT_OK_AND_ASSIGN(
      MergeInfo info,
      db_->Merge(kMasterBranch, dev, MergePolicy::kThreeWayLeft));
  EXPECT_EQ(info.result.conflicts, 0u);
  EXPECT_EQ(info.result.field_merges, 1u);

  auto rows = CollectBranchAll(db_.get(), kMasterBranch);
  EXPECT_EQ(rows[1], (std::vector<int32_t>{11, 20, 33}));
}

TEST_P(EngineTest, MergeThreeWayOverlappingFieldPrecedence) {
  ASSERT_OK(db_->InsertInto(kMasterBranch,
                            MakeRecordVals(schema_, 1, {10, 20, 30})));
  Session s = db_->NewSession();
  ASSERT_OK_AND_ASSIGN(BranchId dev, db_->Branch("dev", &s));
  ASSERT_OK(
      db_->UpdateIn(kMasterBranch, MakeRecordVals(schema_, 1, {11, 20, 30})));
  ASSERT_OK(db_->UpdateIn(dev, MakeRecordVals(schema_, 1, {12, 20, 33})));

  ASSERT_OK_AND_ASSIGN(
      MergeInfo info,
      db_->Merge(kMasterBranch, dev, MergePolicy::kThreeWayLeft));
  EXPECT_EQ(info.result.conflicts, 1u);

  auto rows = CollectBranchAll(db_.get(), kMasterBranch);
  // Field 0 conflicts -> left's 11; field 2 is dev-only -> 33.
  EXPECT_EQ(rows[1], (std::vector<int32_t>{11, 20, 33}));
}

TEST_P(EngineTest, MergeDeleteVsModifyConflict) {
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 1, 1)));
  Session s = db_->NewSession();
  ASSERT_OK_AND_ASSIGN(BranchId dev, db_->Branch("dev", &s));
  ASSERT_OK(db_->DeleteFrom(kMasterBranch, 1));
  ASSERT_OK(db_->UpdateIn(dev, MakeRecord(schema_, 1, 5)));

  ASSERT_OK_AND_ASSIGN(
      MergeInfo info,
      db_->Merge(kMasterBranch, dev, MergePolicy::kThreeWayLeft));
  EXPECT_GE(info.result.conflicts, 1u);
  // Left wins: the delete stands.
  EXPECT_EQ(CollectBranch(db_.get(), kMasterBranch).count(1), 0u);
}

TEST_P(EngineTest, MergeDeletePropagatesWhenUncontested) {
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 1, 1)));
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 2, 2)));
  Session s = db_->NewSession();
  ASSERT_OK_AND_ASSIGN(BranchId dev, db_->Branch("dev", &s));
  ASSERT_OK(db_->DeleteFrom(dev, 1));

  ASSERT_OK_AND_ASSIGN(
      MergeInfo info,
      db_->Merge(kMasterBranch, dev, MergePolicy::kThreeWayLeft));
  EXPECT_EQ(info.result.conflicts, 0u);
  auto rows = CollectBranch(db_.get(), kMasterBranch);
  EXPECT_EQ(rows.count(1), 0u);
  EXPECT_EQ(rows[2], 2);
}

TEST_P(EngineTest, BranchContinuesAfterMerge) {
  // Curation shape (§4.1): dev merges into mainline, work continues.
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 1, 1)));
  Session s = db_->NewSession();
  ASSERT_OK_AND_ASSIGN(BranchId dev, db_->Branch("dev", &s));
  ASSERT_OK(db_->InsertInto(dev, MakeRecord(schema_, 2, 2)));
  ASSERT_OK_AND_ASSIGN(
      MergeInfo m1, db_->Merge(kMasterBranch, dev, MergePolicy::kThreeWayLeft));
  (void)m1;

  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 3, 3)));
  ASSERT_OK(db_->UpdateIn(kMasterBranch, MakeRecord(schema_, 2, 22)));
  auto rows = CollectBranch(db_.get(), kMasterBranch);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[2], 22);

  // A second development round.
  ASSERT_OK(db_->Use(&s, kMasterBranch));
  ASSERT_OK_AND_ASSIGN(BranchId dev2, db_->Branch("dev2", &s));
  ASSERT_OK(db_->UpdateIn(dev2, MakeRecord(schema_, 3, 33)));
  ASSERT_OK_AND_ASSIGN(
      MergeInfo m2,
      db_->Merge(kMasterBranch, dev2, MergePolicy::kThreeWayLeft));
  (void)m2;
  rows = CollectBranch(db_.get(), kMasterBranch);
  EXPECT_EQ(rows[3], 33);
  EXPECT_EQ(rows[2], 22);
}

TEST_P(EngineTest, ScanHeadsCoversActiveBranches) {
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 1, 1)));
  Session s = db_->NewSession();
  ASSERT_OK_AND_ASSIGN(BranchId dev, db_->Branch("dev", &s));
  ASSERT_OK(db_->InsertInto(dev, MakeRecord(schema_, 2, 2)));

  std::set<int64_t> pks;
  ASSERT_OK_AND_ASSIGN(auto it, db_->NewScan(ScanSpec::Heads()));
  ScanRow row;
  while (it->Next(&row)) {
    pks.insert(row.record.pk());
  }
  ASSERT_OK(it->status());
  EXPECT_EQ(it->branches().size(), 2u);
  EXPECT_EQ(pks, (std::set<int64_t>{1, 2}));
}

TEST_P(EngineTest, ManyRecordsAcrossPages) {
  // More data than one 4 KB page holds, to cross page boundaries.
  for (int64_t i = 0; i < 2000; ++i) {
    ASSERT_OK(db_->InsertInto(kMasterBranch,
                              MakeRecord(schema_, i, static_cast<int>(i))));
  }
  for (int64_t i = 0; i < 2000; i += 3) {
    ASSERT_OK(db_->UpdateIn(kMasterBranch,
                            MakeRecord(schema_, i, static_cast<int>(-i))));
  }
  auto rows = CollectBranch(db_.get(), kMasterBranch);
  ASSERT_EQ(rows.size(), 2000u);
  EXPECT_EQ(rows[3], -3);
  EXPECT_EQ(rows[4], 4);
}

TEST_P(EngineTest, ReopenPreservesEverything) {
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 1, 1)));
  Session s = db_->NewSession();
  ASSERT_OK_AND_ASSIGN(BranchId dev, db_->Branch("dev", &s));
  ASSERT_OK(db_->InsertInto(dev, MakeRecord(schema_, 2, 2)));
  ASSERT_OK_AND_ASSIGN(CommitId c, db_->CommitBranch(dev));
  ASSERT_OK(db_->UpdateIn(dev, MakeRecord(schema_, 2, 22)));
  ASSERT_OK(db_->Flush());

  Reopen();
  EXPECT_EQ(CollectBranch(db_.get(), kMasterBranch).size(), 1u);
  auto dev_rows = CollectBranch(db_.get(), dev);
  ASSERT_EQ(dev_rows.size(), 2u);
  EXPECT_EQ(dev_rows[2], 22);
  ASSERT_OK_AND_ASSIGN(auto it, db_->NewScan(ScanSpec::Commit(c)));
  auto commit_rows = Collect(it.get());
  EXPECT_EQ(commit_rows[2], 2);
  // Branch names survive too.
  ASSERT_OK(db_->Use(&s, "dev"));
  EXPECT_EQ(s.branch(), dev);
}

TEST_P(EngineTest, UpdatesOnReopenedDatabase) {
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 1, 1)));
  ASSERT_OK(db_->Flush());
  Reopen();
  ASSERT_OK(db_->UpdateIn(kMasterBranch, MakeRecord(schema_, 1, 2)));
  ASSERT_OK(db_->InsertInto(kMasterBranch, MakeRecord(schema_, 2, 2)));
  auto rows = CollectBranch(db_.get(), kMasterBranch);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], 2);
}

/// Open descriptors of this process, via /proc (Linux-only; the suite
/// skips elsewhere).
int CountOpenFds() {
  DIR* d = ::opendir("/proc/self/fd");
  if (d == nullptr) return -1;
  int n = 0;
  while (::readdir(d) != nullptr) ++n;
  ::closedir(d);
  return n;
}

TEST_P(EngineTest, RetiredBranchesDoNotPinFileDescriptors) {
  // The agentic lifecycle: branches are born, carry one unit of work, and
  // die by the hundreds. Retiring a branch must release every descriptor
  // it pinned (head segments, commit histories) or the process crawls to
  // EMFILE under churn.
  const int before = CountOpenFds();
  if (before < 0) GTEST_SKIP() << "/proc/self/fd not available";
  constexpr int kCycles = 40;
  Session s = db_->NewSession();
  for (int c = 0; c < kCycles; ++c) {
    ASSERT_OK(db_->Use(&s, kMasterBranch));
    ASSERT_OK_AND_ASSIGN(BranchId b,
                         db_->Branch("agent_c" + std::to_string(c), &s));
    for (int i = 0; i < 4; ++i) {
      ASSERT_OK(db_->InsertInto(b, MakeRecord(schema_, c * 4 + i, c)));
    }
    ASSERT_OK_AND_ASSIGN(CommitId cid, db_->CommitBranch(b));
    (void)cid;
    if (c % 4 != 0) {
      ASSERT_OK_AND_ASSIGN(
          MergeInfo m, db_->Merge(kMasterBranch, b, MergePolicy::kThreeWayLeft));
      (void)m;
    }
    ASSERT_OK(db_->RetireBranch(b));
  }
  const int after = CountOpenFds();
  // Master's own working set (its open head, lazily-opened readers, the
  // engine meta) may cost a few descriptors; 40 retired branches must not
  // add ~2-4 fds each the way held handles would.
  EXPECT_LT(after - before, 16)
      << "branch churn leaked fds: " << before << " -> " << after;
  // And the data all landed.
  EXPECT_EQ(CollectBranch(db_.get(), kMasterBranch).size(), 120u);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineTest,
                         ::testing::Values(EngineType::kTupleFirst,
                                           EngineType::kVersionFirst,
                                           EngineType::kHybrid),
                         [](const auto& info) {
                           return std::string(EngineTypeName(info.param)) ==
                                          "tuple-first"
                                      ? "TupleFirst"
                                  : EngineTypeName(info.param) ==
                                          std::string("version-first")
                                      ? "VersionFirst"
                                      : "Hybrid";
                         });

}  // namespace
}  // namespace decibel
