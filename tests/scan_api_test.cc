/// Tests for the unified read-path API: ScanSpec cursors (view selection,
/// predicate/projection pushdown, limits, multi-branch annotation, diff
/// view), point lookups (Get / GetAt), session routing through historical
/// checkouts, and the engine-reported scan counters — parameterized
/// across all three engines.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "engine/scan_spec.h"
#include "query/predicate.h"
#include "test_util.h"

namespace decibel {
namespace {

using testing_util::MakeRecord;
using testing_util::CollectBranch;
using testing_util::ScratchDir;
using testing_util::TestSchema;

class ScanApiTest : public ::testing::TestWithParam<EngineType> {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<ScratchDir>("scan_api");
    schema_ = TestSchema(2);
    DecibelOptions options;
    options.engine = GetParam();
    options.page_size = 4096;
    auto db = Decibel::Open(dir_->path(), schema_, options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).MoveValueUnsafe();
    // master: pks 0..49 with c1 = pk, c2 = 2*pk; dev adds 100..104
    // (c1 = 1000) and updates evens to c1 = -1.
    ASSERT_OK_AND_ASSIGN(Transaction txn, db_->Begin(kMasterBranch));
    for (int64_t pk = 0; pk < 50; ++pk) {
      Record rec(&schema_);
      rec.SetPk(pk);
      rec.SetInt32(1, static_cast<int32_t>(pk));
      rec.SetInt32(2, static_cast<int32_t>(2 * pk));
      ASSERT_OK(txn.Insert(rec));
    }
    ASSERT_OK(txn.Commit());
    Session s = db_->NewSession();
    ASSERT_OK_AND_ASSIGN(dev_, db_->Branch("dev", &s));
    for (int64_t pk = 100; pk < 105; ++pk) {
      ASSERT_OK(db_->InsertInto(dev_, MakeRecord(schema_, pk, 1000)));
    }
    for (int64_t pk = 0; pk < 50; pk += 2) {
      ASSERT_OK(db_->UpdateIn(dev_, MakeRecord(schema_, pk, -1)));
    }
  }

  Predicate C1(CompareOp op, int64_t value) {
    auto pred = Predicate::Compare(schema_, "c1", op, value);
    EXPECT_TRUE(pred.ok());
    return *pred;
  }

  /// Drains a cursor into pk -> c1.
  std::map<int64_t, int32_t> Drain(ScanCursor* cursor) {
    std::map<int64_t, int32_t> out;
    ScanRow row;
    while (cursor->Next(&row)) {
      out[row.record.pk()] = row.record.GetInt32(1);
    }
    EXPECT_TRUE(cursor->status().ok()) << cursor->status().ToString();
    return out;
  }

  std::unique_ptr<ScratchDir> dir_;
  Schema schema_ = TestSchema(2);
  std::unique_ptr<Decibel> db_;
  BranchId dev_ = kInvalidBranch;
};

TEST_P(ScanApiTest, BranchViewMatchesLegacyScan) {
  ASSERT_OK_AND_ASSIGN(auto cursor, db_->NewScan(ScanSpec::Branch(dev_)));
  const auto rows = Drain(cursor.get());
  EXPECT_EQ(rows, CollectBranch(db_.get(), dev_));
  EXPECT_EQ(rows.size(), 55u);
  EXPECT_EQ(cursor->stats().rows_scanned, 55u);
  EXPECT_EQ(cursor->stats().rows_emitted, 55u);
}

TEST_P(ScanApiTest, PredicatePushdownFiltersInsideTheEngine) {
  ASSERT_OK_AND_ASSIGN(
      auto cursor, db_->NewScan(ScanSpec::Branch(kMasterBranch)
                                    .Where(C1(CompareOp::kGe, 40))));
  const auto rows = Drain(cursor.get());
  EXPECT_EQ(rows.size(), 10u);  // c1 = 40..49
  EXPECT_TRUE(rows.count(40));
  EXPECT_EQ(cursor->stats().rows_scanned, 50u);
  EXPECT_EQ(cursor->stats().rows_emitted, 10u);
  EXPECT_EQ(cursor->stats().bytes_scanned, 50u * schema_.record_size());
}

TEST_P(ScanApiTest, ProjectionNarrowsByteAccounting) {
  const size_t c1 = 1;
  ASSERT_OK_AND_ASSIGN(
      auto cursor,
      db_->NewScan(ScanSpec::Branch(kMasterBranch).Project({c1})));
  std::map<int64_t, int32_t> rows = Drain(cursor.get());
  EXPECT_EQ(rows.size(), 50u);
  EXPECT_EQ(rows[7], 7);  // projected column still readable
  // header byte + the projected column's width, per scanned row.
  const uint64_t row_bytes = 1 + schema_.column(c1).width;
  EXPECT_EQ(cursor->stats().bytes_scanned, 50u * row_bytes);
}

TEST_P(ScanApiTest, LimitStopsTheCursor) {
  ASSERT_OK_AND_ASSIGN(
      auto cursor, db_->NewScan(ScanSpec::Branch(kMasterBranch).WithLimit(7)));
  ScanRow row;
  int rows = 0;
  while (cursor->Next(&row)) ++rows;
  EXPECT_OK(cursor->status());
  EXPECT_EQ(rows, 7);
  EXPECT_EQ(cursor->stats().rows_emitted, 7u);
}

TEST_P(ScanApiTest, MultiBranchAnnotatesAfterPredicate) {
  ASSERT_OK_AND_ASSIGN(
      auto cursor, db_->NewScan(ScanSpec::Multi({kMasterBranch, dev_})
                                    .Where(C1(CompareOp::kEq, 1000))));
  ASSERT_EQ(cursor->branches().size(), 2u);
  EXPECT_EQ(cursor->branches()[1], dev_);
  std::set<int64_t> pks;
  ScanRow row;
  while (cursor->Next(&row)) {
    ASSERT_NE(row.branches, nullptr);
    EXPECT_EQ(*row.branches, (std::vector<uint32_t>{1}));  // dev only
    pks.insert(row.record.pk());
  }
  EXPECT_OK(cursor->status());
  EXPECT_EQ(pks, (std::set<int64_t>{100, 101, 102, 103, 104}));
}

TEST_P(ScanApiTest, HeadsViewResolvesActiveBranches) {
  ASSERT_OK_AND_ASSIGN(auto cursor, db_->NewScan(ScanSpec::Heads()));
  EXPECT_EQ(cursor->branches().size(), 2u);  // master + dev
  uint64_t rows = 0;
  ScanRow row;
  while (cursor->Next(&row)) {
    ASSERT_NE(row.branches, nullptr);
    ++rows;
  }
  EXPECT_OK(cursor->status());
  // 50 shared records (some in two versions) + 5 dev inserts: the union
  // of live record versions across both heads.
  EXPECT_EQ(rows, cursor->stats().rows_emitted);
  EXPECT_GE(rows, 55u);
  // Engines cannot resolve kHeads themselves — the facade must.
  EXPECT_FALSE(db_->engine()->NewScan(ScanSpec::Heads()).ok());
}

TEST_P(ScanApiTest, CommitViewServesHistoricalState) {
  ASSERT_OK_AND_ASSIGN(CommitId commit, db_->CommitBranch(dev_));
  ASSERT_OK(db_->DeleteFrom(dev_, 100));
  ASSERT_OK_AND_ASSIGN(auto cursor, db_->NewScan(ScanSpec::Commit(commit)));
  EXPECT_EQ(Drain(cursor.get()).size(), 55u);  // pre-delete state
  ASSERT_OK_AND_ASSIGN(auto head, db_->NewScan(ScanSpec::Branch(dev_)));
  EXPECT_EQ(Drain(head.get()).size(), 54u);
}

TEST_P(ScanApiTest, DiffViewIsQ2WithPushdown) {
  ASSERT_OK_AND_ASSIGN(auto cursor,
                       db_->NewScan(ScanSpec::Diff(dev_, kMasterBranch)));
  const auto rows = Drain(cursor.get());
  std::set<int64_t> pks;
  for (const auto& [pk, c1] : rows) pks.insert(pk);
  EXPECT_EQ(pks, (std::set<int64_t>{100, 101, 102, 103, 104}));

  auto by_pk = Predicate::Compare(schema_, "pk", CompareOp::kGe, 102);
  ASSERT_TRUE(by_pk.ok());
  ASSERT_OK_AND_ASSIGN(
      auto filtered,
      db_->NewScan(ScanSpec::Diff(dev_, kMasterBranch).Where(*by_pk)));
  EXPECT_EQ(Drain(filtered.get()).size(), 3u);
  EXPECT_EQ(filtered->stats().rows_scanned, 5u);
  EXPECT_EQ(filtered->stats().rows_emitted, 3u);
}

TEST_P(ScanApiTest, GetIsAPointLookup) {
  ASSERT_OK_AND_ASSIGN(Record rec, db_->Get(kMasterBranch, 7));
  EXPECT_EQ(rec.pk(), 7);
  EXPECT_EQ(rec.ref().GetInt32(1), 7);
  // dev sees its own updates and inserts.
  ASSERT_OK_AND_ASSIGN(rec, db_->Get(dev_, 0));
  EXPECT_EQ(rec.ref().GetInt32(1), -1);
  ASSERT_OK_AND_ASSIGN(rec, db_->Get(dev_, 104));
  EXPECT_EQ(rec.ref().GetInt32(1), 1000);
  // master does not see dev's branch-local state.
  EXPECT_TRUE(db_->Get(kMasterBranch, 104).status().IsNotFound());
  ASSERT_OK_AND_ASSIGN(rec, db_->Get(kMasterBranch, 0));
  EXPECT_EQ(rec.ref().GetInt32(1), 0);
  // Absent and deleted keys are NotFound.
  EXPECT_TRUE(db_->Get(kMasterBranch, 9999).status().IsNotFound());
  ASSERT_OK(db_->DeleteFrom(dev_, 104));
  EXPECT_TRUE(db_->Get(dev_, 104).status().IsNotFound());
  // Unknown branch is NotFound, not a crash.
  EXPECT_FALSE(db_->Get(static_cast<BranchId>(999), 1).ok());
}

TEST_P(ScanApiTest, GetAtServesHistoricalCommits) {
  ASSERT_OK_AND_ASSIGN(CommitId commit, db_->CommitBranch(dev_));
  ASSERT_OK(db_->UpdateIn(dev_, MakeRecord(schema_, 100, 77)));
  ASSERT_OK_AND_ASSIGN(Record rec, db_->GetAt(commit, 100));
  EXPECT_EQ(rec.ref().GetInt32(1), 1000);  // pre-update version
  ASSERT_OK_AND_ASSIGN(rec, db_->Get(dev_, 100));
  EXPECT_EQ(rec.ref().GetInt32(1), 77);
  EXPECT_TRUE(db_->GetAt(commit, 9999).status().IsNotFound());
}

TEST_P(ScanApiTest, CheckedOutSessionRoutesReadsAndRejectsWrites) {
  ASSERT_OK_AND_ASSIGN(CommitId commit, db_->CommitBranch(dev_));
  ASSERT_OK(db_->DeleteFrom(dev_, 100));
  ASSERT_OK(db_->UpdateIn(dev_, MakeRecord(schema_, 101, 55)));

  Session session = db_->NewSession();
  ASSERT_OK(db_->Checkout(&session, commit));
  ASSERT_FALSE(session.at_head());

  // NewScan(session) serves the commit view, not the branch head.
  ASSERT_OK_AND_ASSIGN(auto cursor, db_->NewScan(session));
  const auto rows = Drain(cursor.get());
  EXPECT_EQ(rows.size(), 55u);
  EXPECT_EQ(rows.at(100), 1000);
  EXPECT_EQ(rows.at(101), 1000);

  // ...including with pushdown on top.
  ASSERT_OK_AND_ASSIGN(
      cursor, db_->NewScan(session, ScanSpec().Where(C1(CompareOp::kEq, 55))));
  EXPECT_EQ(Drain(cursor.get()).size(), 0u);  // 55 exists only at head

  // Get(session) resolves through the checkout too.
  ASSERT_OK_AND_ASSIGN(Record rec, db_->Get(session, 101));
  EXPECT_EQ(rec.ref().GetInt32(1), 1000);
  ASSERT_OK_AND_ASSIGN(rec, db_->Get(session, 100));
  EXPECT_EQ(rec.ref().GetInt32(1), 1000);

  // Writes through a historical checkout stay rejected.
  EXPECT_FALSE(db_->Begin(&session).ok());
  EXPECT_FALSE(db_->Insert(&session, MakeRecord(schema_, 500, 1)).ok());
  EXPECT_FALSE(db_->Update(&session, MakeRecord(schema_, 101, 9)).ok());
  EXPECT_FALSE(db_->Delete(&session, 101).ok());

  // Back at the head, reads see the branch again and writes work.
  ASSERT_OK(db_->Use(&session, dev_));
  ASSERT_OK_AND_ASSIGN(cursor, db_->NewScan(session));
  EXPECT_EQ(Drain(cursor.get()).at(101), 55);
  ASSERT_OK_AND_ASSIGN(rec, db_->Get(session, 101));
  EXPECT_EQ(rec.ref().GetInt32(1), 55);
  EXPECT_TRUE(db_->Get(session, 100).status().IsNotFound());
  ASSERT_OK(db_->Insert(&session, MakeRecord(schema_, 500, 1)));
}

TEST_P(ScanApiTest, ZoneMapsSkipPagesAndReduceBytesRead) {
  // Grow master well past one page (record 21 B, page 4 KiB => ~195
  // records/page) with pk-correlated values so page zone maps are
  // selective and pk-disjoint (the version-first skip precondition).
  {
    ASSERT_OK_AND_ASSIGN(Transaction txn, db_->Begin(kMasterBranch));
    for (int64_t pk = 1000; pk < 5000; ++pk) {
      Record rec(&schema_);
      rec.SetPk(pk);
      rec.SetInt32(1, static_cast<int32_t>(pk));
      rec.SetInt32(2, 7);
      ASSERT_OK(txn.Insert(rec));
    }
    ASSERT_OK(txn.Commit());
  }

  std::map<int64_t, int32_t> all;
  uint64_t full_read = 0;
  {
    ASSERT_OK_AND_ASSIGN(
        auto unfiltered, db_->NewScan(ScanSpec::Branch(kMasterBranch)));
    all = Drain(unfiltered.get());
    ASSERT_EQ(all.size(), 4050u);
    full_read = unfiltered->stats().bytes_read;
    EXPECT_GT(full_read, 0u);
    EXPECT_EQ(unfiltered->stats().pages_skipped, 0u);
  }

  // The pushed-down scan returns exactly the filter-on-top rows...
  {
    ASSERT_OK_AND_ASSIGN(
        auto cursor, db_->NewScan(ScanSpec::Branch(kMasterBranch)
                                      .Where(C1(CompareOp::kGe, 4900))));
    const auto rows = Drain(cursor.get());
    std::map<int64_t, int32_t> expected;
    for (const auto& [pk, c1] : all) {
      if (c1 >= 4900) expected[pk] = c1;
    }
    EXPECT_EQ(rows, expected);
    EXPECT_EQ(rows.size(), 100u);
    // ...while zone maps keep most pages untouched: skipping must show
    // up in the counters and in the bytes actually fetched.
    EXPECT_GT(cursor->stats().pages_skipped, 0u);
    EXPECT_LT(cursor->stats().bytes_read, full_read);
  }  // counters flush into the engine when the cursors die

  const EngineStats stats = db_->engine()->Stats();
  EXPECT_GT(stats.pages_skipped + stats.segments_skipped, 0u);
  EXPECT_GT(stats.bytes_read, 0u);
}

TEST_P(ScanApiTest, CompressedScansAreByteIdenticalToUncompressed) {
  // Two fresh databases — page compression off and on — loaded with the
  // exact same content: every read path must return identical rows.
  testing_util::ScratchDir dir1("scan_api_plain");
  testing_util::ScratchDir dir2("scan_api_compressed");
  DecibelOptions options;
  options.engine = GetParam();
  options.page_size = 4096;
  ASSERT_OK_AND_ASSIGN(auto db1,
                       Decibel::Open(dir1.path(), schema_, options));
  options.compress_pages = true;
  ASSERT_OK_AND_ASSIGN(auto db2,
                       Decibel::Open(dir2.path(), schema_, options));

  auto load = [&](Decibel* db) {
    // Compressible batch: repetitive c1 domain, constant c2.
    {
      ASSERT_OK_AND_ASSIGN(Transaction txn, db->Begin(kMasterBranch));
      for (int64_t pk = 1000; pk < 3000; ++pk) {
        Record rec(&schema_);
        rec.SetPk(pk);
        rec.SetInt32(1, static_cast<int32_t>(pk % 16));
        rec.SetInt32(2, 42);
        ASSERT_OK(txn.Insert(rec));
      }
      ASSERT_OK(txn.Commit());
    }
    // Updates and deletes target keys near the end of the insert range:
    // their new versions/tombstones append to the segment's last page,
    // whose pk range already covers them, so the earlier pages stay
    // pk-disjoint (the version-first page-skip precondition).
    for (int64_t pk = 2980; pk < 2985; ++pk) {
      ASSERT_OK(db->UpdateIn(kMasterBranch, MakeRecord(schema_, pk, -5)));
    }
    for (int64_t pk = 2990; pk < 2995; ++pk) {
      ASSERT_OK(db->DeleteFrom(kMasterBranch, pk));
    }
    ASSERT_OK(db->engine()->Flush());  // seal + reload through the codec
  };
  load(db1.get());
  load(db2.get());

  // Full scans, pushdown scans, and point reads all agree byte-for-byte.
  EXPECT_EQ(testing_util::CollectBranchAll(db1.get(), kMasterBranch),
            testing_util::CollectBranchAll(db2.get(), kMasterBranch));
  for (auto op : {CompareOp::kEq, CompareOp::kGe, CompareOp::kLt}) {
    ASSERT_OK_AND_ASSIGN(
        auto a,
        db1->NewScan(ScanSpec::Branch(kMasterBranch).Where(C1(op, 7))));
    ASSERT_OK_AND_ASSIGN(
        auto b,
        db2->NewScan(ScanSpec::Branch(kMasterBranch).Where(C1(op, 7))));
    EXPECT_EQ(Drain(a.get()), Drain(b.get()));
  }
  ASSERT_OK_AND_ASSIGN(Record r1, db1->Get(kMasterBranch, 2345));
  ASSERT_OK_AND_ASSIGN(Record r2, db2->Get(kMasterBranch, 2345));
  EXPECT_EQ(r1.data().ToString(), r2.data().ToString());
  EXPECT_TRUE(db2->Get(kMasterBranch, 2992).status().IsNotFound());

  // A predicate outside the stored c1 domain proves pages match-free
  // from the compressed strips (or zone maps) without decoding.
  ASSERT_OK_AND_ASSIGN(
      auto none, db2->NewScan(ScanSpec::Branch(kMasterBranch)
                                  .Where(C1(CompareOp::kGe, 1000))));
  EXPECT_EQ(Drain(none.get()).size(), 0u);
  EXPECT_GT(none->stats().pages_skipped + none->stats().segments_skipped,
            0u);
}

TEST_P(ScanApiTest, EngineReportsScanCounters) {
  const uint64_t rows_before = db_->engine()->Stats().rows_scanned;
  {
    ASSERT_OK_AND_ASSIGN(auto cursor,
                         db_->NewScan(ScanSpec::Branch(kMasterBranch)));
    Drain(cursor.get());
  }  // counters flush when the cursor dies
  const EngineStats stats = db_->engine()->Stats();
  EXPECT_EQ(stats.rows_scanned, rows_before + 50);
  EXPECT_GE(stats.bytes_scanned, 50u * schema_.record_size());
}

TEST_P(ScanApiTest, ParallelismHintPreservesResults) {
  ASSERT_OK_AND_ASSIGN(
      auto sequential, db_->NewScan(ScanSpec::Multi({kMasterBranch, dev_})
                                        .Where(C1(CompareOp::kGe, 0))));
  ASSERT_OK_AND_ASSIGN(
      auto parallel, db_->NewScan(ScanSpec::Multi({kMasterBranch, dev_})
                                      .Where(C1(CompareOp::kGe, 0))
                                      .Parallel(4)));
  EXPECT_EQ(Drain(sequential.get()), Drain(parallel.get()));
  EXPECT_EQ(sequential->stats().rows_emitted, parallel->stats().rows_emitted);
}

TEST_P(ScanApiTest, InvalidSpecsAreRejected) {
  EXPECT_FALSE(db_->NewScan(ScanSpec::Multi({})).ok());
  EXPECT_FALSE(
      db_->NewScan(ScanSpec::Branch(kMasterBranch).Project({99})).ok());
  EXPECT_FALSE(db_->NewScan(ScanSpec::Branch(static_cast<BranchId>(77))).ok());
  EXPECT_FALSE(db_->NewScan(ScanSpec::Commit(static_cast<CommitId>(77))).ok());
  Comparison bad;
  bad.column = 99;
  EXPECT_FALSE(db_->NewScan(ScanSpec::Branch(kMasterBranch)
                                .Where(Predicate().And(bad)))
                   .ok());
}

TEST_P(ScanApiTest, ResolveProjectionMapsNames) {
  ASSERT_OK_AND_ASSIGN(std::vector<size_t> cols,
                       ResolveProjection(schema_, {"c2", "pk"}));
  EXPECT_EQ(cols, (std::vector<size_t>{2, 0}));
  EXPECT_FALSE(ResolveProjection(schema_, {"nope"}).ok());
}

INSTANTIATE_TEST_SUITE_P(AllEngines, ScanApiTest,
                         ::testing::Values(EngineType::kTupleFirst,
                                           EngineType::kVersionFirst,
                                           EngineType::kHybrid),
                         [](const auto& info) {
                           switch (info.param) {
                             case EngineType::kTupleFirst:
                               return "TupleFirst";
                             case EngineType::kVersionFirst:
                               return "VersionFirst";
                             default:
                               return "Hybrid";
                           }
                         });

}  // namespace
}  // namespace decibel
