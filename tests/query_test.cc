/// Tests for the query layer: predicates, the four benchmark query
/// families (Table 1), and the VQuel mini-language — parameterized across
/// all three engines where the query plans touch engine code.

#include <gtest/gtest.h>

#include <set>

#include "query/predicate.h"
#include "query/queries.h"
#include "query/vquel.h"
#include "test_util.h"

namespace decibel {
namespace {

using testing_util::MakeRecord;
using testing_util::MakeRecordVals;
using testing_util::ScratchDir;
using testing_util::TestSchema;

// --------------------------------------------------------------- Predicate

TEST(PredicateTest, EmptyMatchesEverything) {
  const Schema schema = TestSchema(2);
  const Record rec = MakeRecord(schema, 1, 5);
  EXPECT_TRUE(Predicate().Matches(rec.ref()));
}

TEST(PredicateTest, IntComparisons) {
  const Schema schema = TestSchema(2);
  const Record rec = MakeRecord(schema, 1, 5);
  struct {
    CompareOp op;
    int64_t value;
    bool want;
  } cases[] = {
      {CompareOp::kEq, 5, true},  {CompareOp::kEq, 6, false},
      {CompareOp::kNe, 6, true},  {CompareOp::kLt, 6, true},
      {CompareOp::kLt, 5, false}, {CompareOp::kLe, 5, true},
      {CompareOp::kGt, 4, true},  {CompareOp::kGe, 5, true},
      {CompareOp::kGe, 6, false},
  };
  for (const auto& c : cases) {
    auto pred = Predicate::Compare(schema, "c1", c.op, c.value);
    ASSERT_TRUE(pred.ok());
    EXPECT_EQ(pred->Matches(rec.ref()), c.want)
        << CompareOpName(c.op) << " " << c.value;
  }
}

TEST(PredicateTest, ConjunctionAndPkColumn) {
  const Schema schema = TestSchema(2);
  auto pred = Predicate::Compare(schema, "pk", CompareOp::kGe, 10);
  ASSERT_TRUE(pred.ok());
  Comparison second;
  second.column = 1;
  second.op = CompareOp::kLt;
  second.int_value = 100;
  pred->And(second);
  EXPECT_TRUE(pred->Matches(MakeRecord(schema, 15, 50).ref()));
  EXPECT_FALSE(pred->Matches(MakeRecord(schema, 5, 50).ref()));
  EXPECT_FALSE(pred->Matches(MakeRecord(schema, 15, 150).ref()));
}

TEST(PredicateTest, RejectsUnknownColumn) {
  const Schema schema = TestSchema(2);
  EXPECT_FALSE(Predicate::Compare(schema, "nope", CompareOp::kEq, 1).ok());
}

TEST(PredicateTest, DoubleComparisons) {
  auto schema = Schema::Make({{"pk", FieldType::kInt64, 0},
                              {"score", FieldType::kDouble, 0}});
  ASSERT_TRUE(schema.ok());
  Record rec(&*schema);
  rec.SetPk(1);
  rec.SetDouble(1, 2.5);
  struct {
    CompareOp op;
    double value;
    bool want;
  } cases[] = {
      {CompareOp::kEq, 2.5, true},  {CompareOp::kEq, 2.4, false},
      {CompareOp::kNe, 2.4, true},  {CompareOp::kLt, 3.0, true},
      {CompareOp::kLt, 2.5, false}, {CompareOp::kLe, 2.5, true},
      {CompareOp::kGt, 2.0, true},  {CompareOp::kGe, 2.5, true},
      {CompareOp::kGe, 2.6, false},
  };
  for (const auto& c : cases) {
    auto pred = Predicate::CompareDouble(*schema, "score", c.op, c.value);
    ASSERT_TRUE(pred.ok());
    EXPECT_EQ(pred->Matches(rec.ref()), c.want)
        << CompareOpName(c.op) << " " << c.value;
  }
  // Unknown columns and type mismatches are rejected.
  EXPECT_FALSE(
      Predicate::CompareDouble(*schema, "nope", CompareOp::kEq, 1).ok());
  EXPECT_FALSE(
      Predicate::CompareDouble(*schema, "pk", CompareOp::kEq, 1).ok());
}

TEST(PredicateTest, DoublePushdownThroughScan) {
  ScratchDir dir("pred_double");
  auto schema = Schema::Make({{"pk", FieldType::kInt64, 0},
                              {"score", FieldType::kDouble, 0}});
  ASSERT_TRUE(schema.ok());
  auto db = Decibel::Open(dir.path(), *schema, DecibelOptions{});
  ASSERT_TRUE(db.ok());
  for (int64_t pk = 0; pk < 10; ++pk) {
    Record rec(&*schema);
    rec.SetPk(pk);
    rec.SetDouble(1, 0.5 * static_cast<double>(pk));
    ASSERT_OK((*db)->InsertInto(kMasterBranch, rec));
  }
  auto pred =
      Predicate::CompareDouble(*schema, "score", CompareOp::kGt, 3.0);
  ASSERT_TRUE(pred.ok());
  ASSERT_OK_AND_ASSIGN(
      query::QueryStats stats,
      query::ScanVersion(db->get(), kMasterBranch, *pred, nullptr));
  EXPECT_EQ(stats.rows_scanned, 10u);
  EXPECT_EQ(stats.rows_emitted, 3u);  // scores 3.5, 4.0, 4.5
}

// ------------------------------------------------------------- Query plans

class QueryTest : public ::testing::TestWithParam<EngineType> {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<ScratchDir>("query");
    schema_ = TestSchema(2);
    DecibelOptions options;
    options.engine = GetParam();
    options.page_size = 4096;
    auto db = Decibel::Open(dir_->path(), schema_, options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).MoveValueUnsafe();
    // master: pks 0..49 with c1 = pk; dev adds 100..104, updates evens.
    for (int64_t pk = 0; pk < 50; ++pk) {
      ASSERT_OK(db_->InsertInto(
          kMasterBranch, MakeRecord(schema_, pk, static_cast<int>(pk))));
    }
    Session s = db_->NewSession();
    ASSERT_OK_AND_ASSIGN(dev_, db_->Branch("dev", &s));
    for (int64_t pk = 100; pk < 105; ++pk) {
      ASSERT_OK(db_->InsertInto(dev_, MakeRecord(schema_, pk, 1000)));
    }
    for (int64_t pk = 0; pk < 50; pk += 2) {
      ASSERT_OK(db_->UpdateIn(dev_, MakeRecord(schema_, pk, -1)));
    }
  }

  std::unique_ptr<ScratchDir> dir_;
  Schema schema_ = TestSchema(2);
  std::unique_ptr<Decibel> db_;
  BranchId dev_ = kInvalidBranch;
};

TEST_P(QueryTest, Q1ScanWithPredicate) {
  auto pred = Predicate::Compare(schema_, "c1", CompareOp::kGe, 40);
  ASSERT_TRUE(pred.ok());
  std::set<int64_t> pks;
  ASSERT_OK_AND_ASSIGN(
      query::QueryStats stats,
      query::ScanVersion(db_.get(), kMasterBranch, *pred,
                         [&](const RecordRef& rec) { pks.insert(rec.pk()); }));
  EXPECT_EQ(stats.rows_scanned, 50u);
  EXPECT_EQ(stats.rows_emitted, 10u);  // c1 = 40..49
  EXPECT_EQ(pks.size(), 10u);
  EXPECT_TRUE(pks.count(40));
}

TEST_P(QueryTest, Q2PositiveDiff) {
  std::set<int64_t> pks;
  ASSERT_OK_AND_ASSIGN(
      query::QueryStats stats,
      query::PositiveDiff(db_.get(), dev_, kMasterBranch,
                          [&](const RecordRef& rec) { pks.insert(rec.pk()); }));
  // Keys in dev not in master: the five inserts (updates don't count in
  // by-key semantics).
  EXPECT_EQ(stats.rows_emitted, 5u);
  EXPECT_EQ(pks, (std::set<int64_t>{100, 101, 102, 103, 104}));
}

TEST_P(QueryTest, Q3JoinRespectsPredicateAndPairsVersions) {
  auto pred = Predicate::Compare(schema_, "c1", CompareOp::kLt, 10);
  ASSERT_TRUE(pred.ok());
  int pairs = 0;
  int changed = 0;
  ASSERT_OK_AND_ASSIGN(
      query::QueryStats stats,
      query::JoinVersions(db_.get(), kMasterBranch, dev_, *pred,
                          [&](const RecordRef& left, const RecordRef& right) {
                            EXPECT_EQ(left.pk(), right.pk());
                            ++pairs;
                            if (left.GetInt32(1) != right.GetInt32(1)) {
                              ++changed;
                            }
                          }));
  // Build side: master rows with c1 < 10 (pks 0..9); all exist in dev.
  EXPECT_EQ(stats.rows_emitted, 10u);
  EXPECT_EQ(pairs, 10);
  EXPECT_EQ(changed, 5);  // evens were updated in dev
}

TEST_P(QueryTest, Q4HeadsAnnotated) {
  auto pred = Predicate::Compare(schema_, "c1", CompareOp::kEq, 1000);
  ASSERT_TRUE(pred.ok());
  int rows = 0;
  ASSERT_OK_AND_ASSIGN(
      query::QueryStats stats,
      query::ScanHeads(db_.get(), *pred,
                       [&](const RecordRef& rec,
                           const std::vector<uint32_t>& branches) {
                         EXPECT_GE(rec.pk(), 100);
                         EXPECT_EQ(branches.size(), 1u);  // dev only
                         ++rows;
                       }));
  EXPECT_EQ(stats.rows_emitted, 5u);
  EXPECT_EQ(rows, 5);
}

TEST_P(QueryTest, AggregateSingleBranch) {
  auto agg = query::AggregateColumn(db_.get(), kMasterBranch, "c1",
                                    Predicate());
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();
  EXPECT_EQ(agg->count, 50u);
  EXPECT_EQ(agg->sum, 49 * 50 / 2);  // c1 = 0..49
  EXPECT_EQ(agg->min, 0);
  EXPECT_EQ(agg->max, 49);
  EXPECT_DOUBLE_EQ(agg->avg, 24.5);
  // Unknown / non-numeric columns rejected.
  EXPECT_FALSE(
      query::AggregateColumn(db_.get(), kMasterBranch, "zzz", Predicate())
          .ok());
}

TEST_P(QueryTest, AggregatePerBranchSinglePass) {
  auto aggs = query::AggregatePerBranch(db_.get(), {kMasterBranch, dev_},
                                        "c1", Predicate());
  ASSERT_TRUE(aggs.ok()) << aggs.status().ToString();
  ASSERT_EQ(aggs->size(), 2u);
  // Master: c1 = 0..49.
  EXPECT_EQ((*aggs)[0].count, 50u);
  EXPECT_EQ((*aggs)[0].sum, 1225);
  // Dev: evens set to -1 (25 records), odds keep pk value, plus 5x 1000.
  EXPECT_EQ((*aggs)[1].count, 55u);
  int64_t dev_sum = 5 * 1000 - 25;
  for (int i = 1; i < 50; i += 2) dev_sum += i;
  EXPECT_EQ((*aggs)[1].sum, dev_sum);
  EXPECT_EQ((*aggs)[1].min, -1);
  EXPECT_EQ((*aggs)[1].max, 1000);
}

TEST_P(QueryTest, StringPredicate) {
  // A separate tiny table with a string column.
  ScratchDir dir("query_str");
  auto schema = Schema::Make({{"pk", FieldType::kInt64, 0},
                              {"name", FieldType::kString, 8}});
  ASSERT_TRUE(schema.ok());
  DecibelOptions options;
  options.engine = GetParam();
  auto db = Decibel::Open(dir.path(), *schema, options);
  ASSERT_TRUE(db.ok());
  for (int64_t pk = 0; pk < 10; ++pk) {
    Record rec(&*schema);
    rec.SetPk(pk);
    rec.SetString(1, pk % 3 == 0 ? "Sam" : "Alex");
    ASSERT_OK((*db)->InsertInto(kMasterBranch, rec));
  }
  auto pred = Predicate::CompareString(*schema, "name", CompareOp::kEq,
                                       "Sam");
  ASSERT_TRUE(pred.ok());
  ASSERT_OK_AND_ASSIGN(
      query::QueryStats stats,
      query::ScanVersion(db->get(), kMasterBranch, *pred, nullptr));
  EXPECT_EQ(stats.rows_emitted, 4u);  // pks 0,3,6,9
  // Type mismatch rejected.
  EXPECT_FALSE(
      Predicate::CompareString(*schema, "pk", CompareOp::kEq, "x").ok());
}

TEST_P(QueryTest, ScanVersionAtHistoricalCommit) {
  ASSERT_OK_AND_ASSIGN(CommitId commit, db_->CommitBranch(dev_));
  ASSERT_OK(db_->DeleteFrom(dev_, 100));
  ASSERT_OK_AND_ASSIGN(
      query::QueryStats stats,
      query::ScanVersionAt(db_.get(), commit, Predicate(), nullptr));
  EXPECT_EQ(stats.rows_scanned, 55u);  // pre-delete state
}

INSTANTIATE_TEST_SUITE_P(AllEngines, QueryTest,
                         ::testing::Values(EngineType::kTupleFirst,
                                           EngineType::kVersionFirst,
                                           EngineType::kHybrid),
                         [](const auto& info) {
                           switch (info.param) {
                             case EngineType::kTupleFirst:
                               return "TupleFirst";
                             case EngineType::kVersionFirst:
                               return "VersionFirst";
                             default:
                               return "Hybrid";
                           }
                         });

// ------------------------------------------------------------------ VQuel

class VquelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<ScratchDir>("vquel");
    auto db = Decibel::Open(dir_->path(), TestSchema(2), DecibelOptions{});
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).MoveValueUnsafe();
  }

  std::string Exec(const std::string& statement) {
    auto result = vquel::Execute(db_.get(), statement);
    EXPECT_TRUE(result.ok()) << statement << ": "
                             << result.status().ToString();
    return result.ok() ? result->output : "";
  }

  std::unique_ptr<ScratchDir> dir_;
  std::unique_ptr<Decibel> db_;
};

TEST_F(VquelTest, InsertScanRoundTrip) {
  Exec("INSERT master 1 10 20");
  Exec("INSERT master 2 30 40");
  const std::string out = Exec("SCAN master");
  EXPECT_NE(out.find("1 | 10 | 20"), std::string::npos);
  EXPECT_NE(out.find("(2 rows)"), std::string::npos);
}

TEST_F(VquelTest, WhereClause) {
  Exec("INSERT master 1 10 20");
  Exec("INSERT master 2 30 40");
  const std::string out = Exec("SCAN master WHERE c1 > 15");
  EXPECT_EQ(out.find("1 | 10"), std::string::npos);
  EXPECT_NE(out.find("2 | 30"), std::string::npos);
}

TEST_F(VquelTest, SelectProjectionWhereAndLimit) {
  Exec("INSERT master 1 10 20");
  Exec("INSERT master 2 30 40");
  Exec("INSERT master 3 50 60");
  // Column list + WHERE push down through the ScanSpec cursor.
  const std::string out = Exec("SELECT c2, pk FROM master WHERE c1 > 15");
  EXPECT_NE(out.find("40 | 2"), std::string::npos);
  EXPECT_NE(out.find("60 | 3"), std::string::npos);
  EXPECT_EQ(out.find("10"), std::string::npos);  // c1 not in the list
  EXPECT_NE(out.find("(2 rows)"), std::string::npos);
  // SELECT * keeps the full row.
  const std::string star = Exec("SELECT * FROM master WHERE pk = 1");
  EXPECT_NE(star.find("1 | 10 | 20"), std::string::npos);
  // LIMIT caps the cursor.
  EXPECT_NE(Exec("SELECT * FROM master LIMIT 2").find("(2 rows)"),
            std::string::npos);
}

TEST_F(VquelTest, SelectFromCommit) {
  Exec("INSERT master 1 10 20");
  const std::string commit = Exec("COMMIT master");
  const CommitId id = std::stoull(commit.substr(commit.rfind(' ') + 1));
  Exec("UPDATE master 1 99 20");
  std::string stmt = "SELECT c1 FROM COMMIT " + std::to_string(id);
  const std::string out = Exec(stmt);
  EXPECT_NE(out.find("10"), std::string::npos);  // pre-update value
  EXPECT_EQ(out.find("99"), std::string::npos);
}

TEST_F(VquelTest, SelectErrors) {
  EXPECT_FALSE(vquel::Execute(db_.get(), "SELECT").ok());
  EXPECT_FALSE(vquel::Execute(db_.get(), "SELECT * FROM").ok());
  EXPECT_FALSE(vquel::Execute(db_.get(), "SELECT nope FROM master").ok());
  EXPECT_FALSE(
      vquel::Execute(db_.get(), "SELECT * FROM master WHERE c1").ok());
  EXPECT_FALSE(
      vquel::Execute(db_.get(), "SELECT * FROM master LIMIT x").ok());
  // LIMIT 0 would collide with ScanSpec's "unlimited" sentinel.
  EXPECT_FALSE(
      vquel::Execute(db_.get(), "SELECT * FROM master LIMIT 0").ok());
  EXPECT_FALSE(
      vquel::Execute(db_.get(), "SELECT * FROM master extra junk").ok());
}

TEST_F(VquelTest, BranchDiffMergeFlow) {
  Exec("INSERT master 1 10 20");
  Exec("COMMIT master");
  Exec("BRANCH dev FROM master");
  Exec("INSERT dev 2 50 60");
  const std::string diff = Exec("DIFF dev master");
  EXPECT_NE(diff.find("2 | 50 | 60"), std::string::npos);
  const std::string merge = Exec("MERGE master dev THREEWAY LEFT");
  EXPECT_NE(merge.find("merge commit"), std::string::npos);
  const std::string out = Exec("SCAN master");
  EXPECT_NE(out.find("(2 rows)"), std::string::npos);
}

TEST_F(VquelTest, MergePreviewAndResolutions) {
  Exec("INSERT master 1 10 20");
  Exec("INSERT master 2 11 21");
  Exec("COMMIT master");
  Exec("BRANCH dev FROM master");
  Exec("UPDATE master 1 100 20");
  Exec("UPDATE dev 1 500 20");  // conflicting update
  Exec("INSERT dev 3 50 60");   // clean right-side add

  // PREVIEW streams per-key outcomes and commits nothing.
  const std::string preview = Exec("MERGE master dev PREVIEW");
  EXPECT_NE(preview.find("[conflict"), std::string::npos);
  EXPECT_NE(preview.find("+ 3"), std::string::npos);
  EXPECT_NE(preview.find("1 conflicts)"), std::string::npos);
  EXPECT_NE(Exec("SCAN master").find("(2 rows)"), std::string::npos);

  // THEIRS resolves the conflict to the from-side.
  Exec("MERGE master dev THEIRS");
  const std::string merged = Exec("SCAN master");
  EXPECT_NE(merged.find("1 | 500 | 20"), std::string::npos);
  EXPECT_NE(merged.find("3 | 50 | 60"), std::string::npos);
  EXPECT_NE(merged.find("(3 rows)"), std::string::npos);
}

TEST_F(VquelTest, DiffCommitClassifiesKeys) {
  Exec("INSERT master 1 10 20");
  Exec("INSERT master 2 11 21");
  const std::string base = Exec("COMMIT master");
  Exec("BRANCH dev FROM master");
  Exec("UPDATE dev 1 99 20");
  Exec("DELETE dev 2");
  Exec("INSERT dev 3 50 60");
  const std::string a = Exec("COMMIT master");
  const std::string b = Exec("COMMIT dev");
  const CommitId ca = std::stoull(a.substr(a.rfind(' ') + 1));
  const CommitId cb = std::stoull(b.substr(b.rfind(' ') + 1));
  const std::string out = Exec("DIFF COMMIT " + std::to_string(ca) + " " +
                               std::to_string(cb));
  EXPECT_NE(out.find("~ 1"), std::string::npos);
  EXPECT_NE(out.find("- 2"), std::string::npos);  // live left, gone right
  EXPECT_NE(out.find("+ 3"), std::string::npos);
  EXPECT_NE(out.find("(3 differing keys)"), std::string::npos);
  EXPECT_FALSE(vquel::Execute(db_.get(), "DIFF COMMIT 1").ok());
  EXPECT_FALSE(vquel::Execute(db_.get(), "DIFF COMMIT x y").ok());
}

TEST_F(VquelTest, HeadsAndMetadata) {
  Exec("INSERT master 1 1 1");
  Exec("BRANCH dev FROM master");
  const std::string heads = Exec("HEADS");
  EXPECT_NE(heads.find("[in 0 1]"), std::string::npos);
  const std::string branches = Exec("BRANCHES");
  EXPECT_NE(branches.find("dev"), std::string::npos);
  Exec("COMMIT dev");
  const std::string log = Exec("LOG dev");
  EXPECT_NE(log.find("commit"), std::string::npos);
}

TEST_F(VquelTest, ErrorsAreStatuses) {
  EXPECT_FALSE(vquel::Execute(db_.get(), "").ok());
  EXPECT_FALSE(vquel::Execute(db_.get(), "FROBNICATE x").ok());
  EXPECT_FALSE(vquel::Execute(db_.get(), "SCAN nonexistent").ok());
  EXPECT_FALSE(vquel::Execute(db_.get(), "SCAN master WHERE").ok());
  EXPECT_FALSE(vquel::Execute(db_.get(), "INSERT master notanint").ok());
  EXPECT_FALSE(vquel::Execute(db_.get(), "MERGE master").ok());
}

TEST_F(VquelTest, TransactionCommitIsAtomic) {
  vquel::Interpreter interp(db_.get());
  auto exec = [&](const std::string& stmt) {
    auto result = interp.Execute(stmt);
    EXPECT_TRUE(result.ok()) << stmt << ": " << result.status().ToString();
    return result.ok() ? result->output : "";
  };
  exec("BEGIN master");
  EXPECT_TRUE(interp.in_transaction());
  exec("INSERT master 1 10 20");
  exec("INSERT master 2 30 40");
  // Staged ops are invisible to scans until COMMIT TX.
  EXPECT_NE(exec("SCAN master").find("(0 rows)"), std::string::npos);
  EXPECT_NE(exec("COMMIT TX").find("2 ops applied"), std::string::npos);
  EXPECT_FALSE(interp.in_transaction());
  EXPECT_NE(exec("SCAN master").find("(2 rows)"), std::string::npos);
}

TEST_F(VquelTest, TransactionAbortDiscards) {
  vquel::Interpreter interp(db_.get());
  auto exec = [&](const std::string& stmt) {
    auto result = interp.Execute(stmt);
    EXPECT_TRUE(result.ok()) << stmt << ": " << result.status().ToString();
    return result.ok() ? result->output : "";
  };
  exec("INSERT master 1 10 20");
  exec("BEGIN master");
  exec("DELETE master 1");
  exec("INSERT master 2 30 40");
  exec("ABORT");
  EXPECT_FALSE(interp.in_transaction());
  const std::string out = exec("SCAN master");
  EXPECT_NE(out.find("(1 rows)"), std::string::npos);
  EXPECT_NE(out.find("1 | 10 | 20"), std::string::npos);
}

TEST_F(VquelTest, MalformedStatementsReturnInvalidArgument) {
  // Statements with broken grammar must come back as InvalidArgument —
  // never a crash, a hang, or a partial mutation.
  const char* malformed[] = {
      // MERGE: arity, unknown flags, flag soup.
      "MERGE",
      "MERGE master",
      "MERGE master dev SIDEWAYS",
      "MERGE master dev THREEWAY LEFT EXTRA",
      "MERGE master dev PREVIEW OURS",
      // DIFF: arity and bad commit ids.
      "DIFF",
      "DIFF dev",
      "DIFF COMMIT",
      "DIFF COMMIT 1",
      "DIFF COMMIT one two",
      // SELECT: dangling clauses, bad columns, bad literals.
      "SELECT ,, FROM master",
      "SELECT pk FROM master WHERE",
      "SELECT pk FROM master WHERE c1 >",
      "SELECT pk FROM master WHERE c1 >> 5",
      "SELECT pk FROM master WHERE c1 > abc",
      "SELECT pk FROM master LIMIT -3",
      // SCAN / writes: bad arity and bad values.
      "SCAN",
      "SCAN master WHERE c1",
      "INSERT",
      "INSERT master",
      "INSERT master 1 2 3 4 5 6",
      "UPDATE master x 1 1",
      "DELETE master",
      "DELETE master notanint",
      // Branch / metadata verbs.
      "BRANCH",
      "BRANCH dev FROM",
      "BRANCH dev OF master",
      "RETIRE",
      "RETIRE master extra",
      "INFO extra",
      "LOG",
      // SUBSCRIBE needs a live server session, never the library path.
      "SUBSCRIBE",
      "SUBSCRIBE master",
      "UNSUBSCRIBE master",
      // Junk.
      "\t  ",
      "; DROP TABLE",
      "MERGE MERGE MERGE MERGE",
  };
  for (const char* statement : malformed) {
    auto result = vquel::Execute(db_.get(), statement);
    ASSERT_FALSE(result.ok()) << statement;
    EXPECT_TRUE(result.status().IsInvalidArgument() ||
                result.status().IsNotFound())
        << statement << " -> " << result.status().ToString();
  }
  // The database is untouched by the whole battery.
  EXPECT_NE(Exec("SCAN master").find("(0 rows)"), std::string::npos);
}

TEST_F(VquelTest, RetireBranchLifecycle) {
  Exec("INSERT master 1 1 1");
  Exec("COMMIT master");
  Exec("BRANCH dev FROM master");
  EXPECT_NE(Exec("BRANCHES").find("dev"), std::string::npos);
  EXPECT_NE(Exec("RETIRE dev").find("retired"), std::string::npos);
  // Inactive branches are flagged in BRANCHES and cannot be retired again.
  EXPECT_NE(Exec("BRANCHES").find("(retired)"), std::string::npos);
  EXPECT_FALSE(vquel::Execute(db_.get(), "RETIRE dev").ok());
  EXPECT_FALSE(vquel::Execute(db_.get(), "RETIRE master").ok());
  EXPECT_FALSE(vquel::Execute(db_.get(), "RETIRE no_such_branch").ok());
}

TEST_F(VquelTest, InfoReportsEngineAndGraphCounters) {
  Exec("INSERT master 1 1 1");
  Exec("COMMIT master");
  Exec("BRANCH dev FROM master");
  const std::string info = Exec("INFO");
  EXPECT_NE(info.find("branches: 2"), std::string::npos) << info;
  EXPECT_NE(info.find("active_branches: 2"), std::string::npos) << info;
  EXPECT_NE(info.find("durable: false"), std::string::npos) << info;
  EXPECT_NE(info.find("engine.num_records:"), std::string::npos) << info;
}

TEST_F(VquelTest, TransactionGuardsAndErrors) {
  vquel::Interpreter interp(db_.get());
  // No open transaction: COMMIT TX / ABORT are errors.
  EXPECT_FALSE(interp.Execute("COMMIT TX").ok());
  EXPECT_FALSE(interp.Execute("ABORT").ok());
  ASSERT_TRUE(interp.Execute("BRANCH dev FROM master").ok());
  ASSERT_TRUE(interp.Execute("BEGIN master").ok());
  // Nested BEGIN and writes to another branch are rejected.
  EXPECT_FALSE(interp.Execute("BEGIN master").ok());
  EXPECT_FALSE(interp.Execute("INSERT dev 1 1 1").ok());
  ASSERT_TRUE(interp.Execute("ABORT").ok());
  // The one-shot Execute helper still works statement-at-a-time.
  EXPECT_TRUE(vquel::Execute(db_.get(), "INSERT master 5 5 5").ok());
}

TEST_F(VquelTest, FailedCommitTxDropsTheTransaction) {
  vquel::Interpreter interp(db_.get());
  ASSERT_TRUE(interp.Execute("BEGIN master").ok());
  ASSERT_TRUE(interp.Execute("DELETE master 999").ok());  // absent pk
  // The commit fails (NotFound from delete validation) — non-retryable,
  // so the interpreter must not trap the user in a dead transaction.
  EXPECT_FALSE(interp.Execute("COMMIT TX").ok());
  EXPECT_FALSE(interp.in_transaction());
  EXPECT_TRUE(interp.Execute("INSERT master 1 1 1").ok());
  EXPECT_NE(interp.Execute("SCAN master")->output.find("(1 rows)"),
            std::string::npos);
}

}  // namespace
}  // namespace decibel
