/// Concurrency suite for the striped write path: transactions on disjoint
/// branches commit in parallel on all three engines, readers ride
/// batch-boundary snapshots while writers append, and cross-branch
/// operations (merge) acquire their stripes in a global order. These are
/// the TSan CI targets for the sharded-registry refactor; the LockManager
/// tests at the bottom pin the FIFO wakeup discipline (a late stream of
/// shared acquirers cannot starve a queued exclusive waiter).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/decibel.h"
#include "test_util.h"
#include "txn/lock_manager.h"

namespace decibel {
namespace {

using testing_util::CollectBranch;
using testing_util::MakeRecord;
using testing_util::ScratchDir;
using testing_util::TestSchema;

class ConcurrentEngineTest : public ::testing::TestWithParam<EngineType> {
 protected:
  DecibelOptions Options() const {
    DecibelOptions options;
    options.engine = GetParam();
    options.lock_timeout_ms = 10000;
    return options;
  }
};

// One writer thread per branch, every branch on its own stripe: all
// threads push transactions concurrently and each branch must end up with
// exactly its own writes (plus the inherited base) — nothing lost,
// nothing leaked across branches.
TEST_P(ConcurrentEngineTest, DisjointBranchCommitsInParallel) {
  ScratchDir dir("conc_disjoint");
  const Schema schema = TestSchema(2);
  auto db = Decibel::Open(dir.path(), schema, Options()).MoveValueUnsafe();

  constexpr int kBranches = 8;
  constexpr int kTxns = 6;
  constexpr int kRowsPerTxn = 40;

  for (int64_t pk = 0; pk < 10; ++pk) {
    ASSERT_OK(db->InsertInto(kMasterBranch, MakeRecord(schema, pk, 0)));
  }
  std::vector<BranchId> branches;
  Session s = db->NewSession();
  for (int b = 0; b < kBranches; ++b) {
    ASSERT_OK(db->Use(&s, kMasterBranch));
    ASSERT_OK_AND_ASSIGN(BranchId child,
                         db->Branch("writer" + std::to_string(b), &s));
    branches.push_back(child);
  }

  std::vector<std::thread> threads;
  threads.reserve(kBranches);
  for (int b = 0; b < kBranches; ++b) {
    threads.emplace_back([&, b] {
      const int64_t base = 1000 * (b + 1);
      for (int round = 0; round < kTxns; ++round) {
        auto txn = db->Begin(branches[b]);
        ASSERT_TRUE(txn.ok()) << txn.status().ToString();
        for (int64_t i = 0; i < kRowsPerTxn; ++i) {
          ASSERT_OK(txn->Insert(
              MakeRecord(schema, base + round * kRowsPerTxn + i, b + 1)));
        }
        Status committed = txn->Commit();
        while (committed.IsAborted()) committed = txn->Commit();
        ASSERT_OK(committed);
        // Interleave version-control commits with the data traffic so the
        // striped commit path runs concurrently across branches too.
        auto c = db->CommitBranch(branches[b]);
        ASSERT_TRUE(c.ok()) << c.status().ToString();
      }
    });
  }
  for (auto& t : threads) t.join();

  for (int b = 0; b < kBranches; ++b) {
    auto rows = CollectBranch(db.get(), branches[b]);
    ASSERT_EQ(rows.size(), 10u + kTxns * kRowsPerTxn) << "branch " << b;
    for (const auto& [pk, value] : rows) {
      if (pk < 10) {
        EXPECT_EQ(value, 0) << "inherited row clobbered, pk " << pk;
      } else {
        EXPECT_EQ(value, b + 1) << "cross-branch leak at pk " << pk;
      }
    }
  }
  EXPECT_EQ(CollectBranch(db.get(), kMasterBranch).size(), 10u);
}

// Writers apply batches of exactly kBatch rows; concurrent readers open
// snapshot scans in a loop. A scan that ever observes a row count that is
// not a multiple of kBatch has seen a half-applied batch.
TEST_P(ConcurrentEngineTest, ReadersNeverObserveHalfAppliedBatches) {
  ScratchDir dir("conc_snapshot");
  const Schema schema = TestSchema(2);
  auto db = Decibel::Open(dir.path(), schema, Options()).MoveValueUnsafe();

  constexpr int kBatch = 25;
  constexpr int kTxns = 30;

  Session s = db->NewSession();
  ASSERT_OK_AND_ASSIGN(BranchId hot, db->Branch("hot", &s));

  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int round = 0; round < kTxns; ++round) {
      auto txn = db->Begin(hot);
      ASSERT_TRUE(txn.ok()) << txn.status().ToString();
      for (int64_t i = 0; i < kBatch; ++i) {
        ASSERT_OK(txn->Insert(MakeRecord(schema, round * kBatch + i, round)));
      }
      Status committed = txn->Commit();
      while (committed.IsAborted()) committed = txn->Commit();
      ASSERT_OK(committed);
    }
    done.store(true);
  });

  std::thread reader([&] {
    size_t last = 0;
    while (!done.load()) {
      auto cursor = db->NewScan(ScanSpec::Branch(hot));
      ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
      ScanRow row;
      size_t count = 0;
      while ((*cursor)->Next(&row)) ++count;
      ASSERT_OK((*cursor)->status());
      EXPECT_EQ(count % kBatch, 0u) << "scan saw a half-applied batch";
      EXPECT_GE(count, last) << "scan went backwards in time";
      last = count;
    }
  });

  writer.join();
  reader.join();
  EXPECT_EQ(CollectBranch(db.get(), hot).size(),
            static_cast<size_t>(kTxns * kBatch));
}

// A cursor snapshots at open: rows applied to the branch afterwards do
// not appear mid-iteration.
TEST_P(ConcurrentEngineTest, CursorSnapshotsAtOpen) {
  ScratchDir dir("conc_openSnap");
  const Schema schema = TestSchema(2);
  auto db = Decibel::Open(dir.path(), schema, Options()).MoveValueUnsafe();

  for (int64_t pk = 0; pk < 50; ++pk) {
    ASSERT_OK(db->InsertInto(kMasterBranch, MakeRecord(schema, pk, 1)));
  }
  ASSERT_OK_AND_ASSIGN(auto cursor,
                       db->NewScan(ScanSpec::Branch(kMasterBranch)));
  for (int64_t pk = 50; pk < 150; ++pk) {
    ASSERT_OK(db->InsertInto(kMasterBranch, MakeRecord(schema, pk, 2)));
  }
  ScanRow row;
  size_t count = 0;
  while (cursor->Next(&row)) {
    EXPECT_LT(row.record.pk(), 50) << "cursor leaked a post-open row";
    ++count;
  }
  ASSERT_OK(cursor->status());
  EXPECT_EQ(count, 50u);
  EXPECT_EQ(CollectBranch(db.get(), kMasterBranch).size(), 150u);
}

// Merges (multi-stripe, registry-exclusive) race writers on unrelated
// branches and each other. The ordered stripe acquisition must keep the
// whole mix deadlock-free and every merge must land its source rows.
TEST_P(ConcurrentEngineTest, ConcurrentMergesAndWritersDoNotDeadlock) {
  ScratchDir dir("conc_merge");
  const Schema schema = TestSchema(2);
  auto db = Decibel::Open(dir.path(), schema, Options()).MoveValueUnsafe();

  for (int64_t pk = 0; pk < 20; ++pk) {
    ASSERT_OK(db->InsertInto(kMasterBranch, MakeRecord(schema, pk, 0)));
  }
  // Two merge pairs plus two independent writer branches.
  Session s = db->NewSession();
  std::vector<BranchId> b(6);
  for (int i = 0; i < 6; ++i) {
    ASSERT_OK(db->Use(&s, kMasterBranch));
    ASSERT_OK_AND_ASSIGN(b[i], db->Branch("m" + std::to_string(i), &s));
  }
  ASSERT_OK(db->InsertInto(b[1], MakeRecord(schema, 101, 11)));
  ASSERT_OK(db->InsertInto(b[3], MakeRecord(schema, 103, 13)));

  auto merge = [&](int into, int from) {
    auto m = db->Merge(b[into], b[from], MergePolicy::kThreeWayLeft);
    ASSERT_TRUE(m.ok()) << m.status().ToString();
  };
  auto write = [&](int w) {
    for (int64_t i = 0; i < 100; ++i) {
      ASSERT_OK(db->InsertInto(b[w], MakeRecord(schema, 1000 * w + i, w)));
    }
  };
  std::thread m1(merge, 0, 1);
  std::thread m2(merge, 2, 3);
  std::thread w1(write, 4);
  std::thread w2(write, 5);
  m1.join();
  m2.join();
  w1.join();
  w2.join();

  EXPECT_EQ(CollectBranch(db.get(), b[0]).count(101), 1u);
  EXPECT_EQ(CollectBranch(db.get(), b[2]).count(103), 1u);
  EXPECT_EQ(CollectBranch(db.get(), b[4]).size(), 120u);
  EXPECT_EQ(CollectBranch(db.get(), b[5]).size(), 120u);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, ConcurrentEngineTest,
                         ::testing::Values(EngineType::kTupleFirst,
                                           EngineType::kVersionFirst,
                                           EngineType::kHybrid),
                         [](const auto& info) {
                           switch (info.param) {
                             case EngineType::kTupleFirst:
                               return "TupleFirst";
                             case EngineType::kVersionFirst:
                               return "VersionFirst";
                             default:
                               return "Hybrid";
                           }
                         });

// ------------------------------------------------- LockManager FIFO order

/// Spins until \p locks reports \p n waiters on \p branch (bounded).
void WaitForWaiters(const LockManager& locks, BranchId branch, size_t n) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (locks.WaitingCount(branch) < n &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  ASSERT_EQ(locks.WaitingCount(branch), n);
}

// A queued exclusive waiter is granted before shared requests that arrive
// after it: late readers park behind the writer instead of slipping past
// while the lock is still share-held.
TEST(LockManagerFifoTest, LateReadersDoNotStarveQueuedWriter) {
  LockManager locks(std::chrono::milliseconds(10000));
  constexpr BranchId kBranch = 7;
  ASSERT_OK(locks.Acquire(1, kBranch, LockMode::kShared));

  std::atomic<int> order{0};
  std::atomic<int> writer_turn{-1};
  std::atomic<int> reader_turn{-1};

  std::thread writer([&] {
    ASSERT_OK(locks.Acquire(2, kBranch, LockMode::kExclusive));
    writer_turn = order.fetch_add(1);
    locks.Release(2, kBranch);
  });
  WaitForWaiters(locks, kBranch, 1);

  // The lock is only share-held, so this shared request is compatible
  // with the current holders — but the FIFO queue makes it wait its turn
  // behind the exclusive waiter.
  std::thread reader([&] {
    ASSERT_OK(locks.Acquire(3, kBranch, LockMode::kShared));
    reader_turn = order.fetch_add(1);
    locks.Release(3, kBranch);
  });
  WaitForWaiters(locks, kBranch, 2);

  locks.Release(1, kBranch);
  writer.join();
  reader.join();
  EXPECT_LT(writer_turn.load(), reader_turn.load());
  EXPECT_FALSE(locks.IsLocked(kBranch));
}

// A release grants a maximal run of shared waiters at once, and an
// exclusive waiter behind them waits for the whole run to drain.
TEST(LockManagerFifoTest, ReleaseGrantsSharedRunThenExclusive) {
  LockManager locks(std::chrono::milliseconds(10000));
  constexpr BranchId kBranch = 9;
  ASSERT_OK(locks.Acquire(1, kBranch, LockMode::kExclusive));

  std::atomic<int> readers_in{0};
  std::atomic<bool> writer_in{false};
  std::mutex gate;  // holds the granted readers inside their section
  gate.lock();

  std::vector<std::thread> readers;
  readers.reserve(3);
  for (uint64_t owner = 2; owner <= 4; ++owner) {
    readers.emplace_back([&, owner] {
      ASSERT_OK(locks.Acquire(owner, kBranch, LockMode::kShared));
      readers_in.fetch_add(1);
      gate.lock();
      gate.unlock();
      locks.Release(owner, kBranch);
    });
    WaitForWaiters(locks, kBranch, owner - 1);
  }
  std::thread writer([&] {
    ASSERT_OK(locks.Acquire(5, kBranch, LockMode::kExclusive));
    writer_in = true;
    locks.Release(5, kBranch);
  });
  WaitForWaiters(locks, kBranch, 4);

  locks.Release(1, kBranch);  // one release wakes the whole shared run
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (readers_in.load() < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(readers_in.load(), 3);
  EXPECT_FALSE(writer_in.load());  // still parked behind the run
  gate.unlock();
  for (auto& t : readers) t.join();
  writer.join();
  EXPECT_TRUE(writer_in.load());
  EXPECT_FALSE(locks.IsLocked(kBranch));
}

// A waiter that times out removes itself without wedging the queue: the
// waiters behind it still get granted.
TEST(LockManagerFifoTest, TimedOutWaiterUnblocksQueueBehindIt) {
  LockManager locks(std::chrono::milliseconds(500));
  constexpr BranchId kBranch = 11;
  ASSERT_OK(locks.Acquire(1, kBranch, LockMode::kShared));
  ASSERT_OK(locks.Acquire(2, kBranch, LockMode::kShared));

  // Owner 3 wants exclusive: blocked by two holders, it will time out.
  std::thread upgrader([&] {
    Status s = locks.Acquire(3, kBranch, LockMode::kExclusive);
    EXPECT_TRUE(s.IsAborted()) << s.ToString();
  });
  WaitForWaiters(locks, kBranch, 1);

  // Owner 4 queues a shared request behind the doomed writer. Its own
  // deadline lands well after owner 3's (both use the manager-wide
  // timeout, so the stagger below keeps the grant-on-departure path — not
  // a second timeout — the thing under test).
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  std::thread reader([&] {
    ASSERT_OK(locks.Acquire(4, kBranch, LockMode::kShared));
    locks.Release(4, kBranch);
  });
  WaitForWaiters(locks, kBranch, 2);

  upgrader.join();  // times out, departs, and re-grants the queue
  reader.join();    // granted despite never seeing a release
  locks.Release(1, kBranch);
  locks.Release(2, kBranch);
  EXPECT_FALSE(locks.IsLocked(kBranch));
}

}  // namespace
}  // namespace decibel
