/// Network layer tests: wire protocol framing and message round-trips,
/// the commit publisher's delivery model, and the session server driven
/// through real TCP connections — concurrent sessions, per-session
/// transaction state, subscriptions, garbage-frame rejection, and
/// shutdown with live sessions.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/coding.h"
#include "common/socket.h"
#include "core/decibel.h"
#include "core/publisher.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "test_util.h"

namespace decibel {
namespace {

using net::Client;
using net::MessageType;
using net::Notification;
using net::Server;
using net::ServerOptions;
using net::TryDecodeFrame;
using net::WireResult;
using net::WrapFrame;
using testing_util::ScratchDir;

// ------------------------------------------------------------- protocol

TEST(ProtocolTest, FrameRoundTrip) {
  std::string payload;
  net::EncodeExecute(&payload, "SCAN master");
  std::string frame;
  WrapFrame(&frame, payload);
  ASSERT_EQ(frame.size(), net::kFrameHeaderBytes + payload.size());

  std::string decoded;
  auto consumed = TryDecodeFrame(Slice(frame), net::kDefaultMaxFrameBytes,
                                 &decoded);
  ASSERT_TRUE(consumed.ok());
  EXPECT_EQ(*consumed, frame.size());
  EXPECT_EQ(decoded, payload);

  std::string statement;
  ASSERT_OK(net::DecodeExecute(decoded, &statement));
  EXPECT_EQ(statement, "SCAN master");
}

TEST(ProtocolTest, IncompleteFrameNeedsMoreBytes) {
  std::string payload;
  net::EncodePing(&payload);
  std::string frame;
  WrapFrame(&frame, payload);
  // Every strict prefix decodes to "0 bytes consumed, keep reading".
  for (size_t n = 0; n < frame.size(); ++n) {
    std::string decoded;
    auto consumed = TryDecodeFrame(Slice(frame.data(), n),
                                   net::kDefaultMaxFrameBytes, &decoded);
    ASSERT_TRUE(consumed.ok()) << n;
    EXPECT_EQ(*consumed, 0u) << n;
  }
}

TEST(ProtocolTest, OversizedFrameRejectedBeforeBuffering) {
  // A hostile length prefix larger than the cap must fail immediately,
  // even though the "body" never arrives.
  std::string frame;
  PutFixed32(&frame, 100 << 20);
  PutFixed32(&frame, 0xdeadbeef);
  std::string decoded;
  auto consumed = TryDecodeFrame(Slice(frame), net::kDefaultMaxFrameBytes,
                                 &decoded);
  ASSERT_FALSE(consumed.ok());
  EXPECT_TRUE(consumed.status().IsCorruption());
}

TEST(ProtocolTest, CorruptCrcRejected) {
  std::string payload;
  net::EncodePing(&payload);
  std::string frame;
  WrapFrame(&frame, payload);
  frame[net::kFrameHeaderBytes] ^= 0x40;  // flip a payload bit
  std::string decoded;
  auto consumed = TryDecodeFrame(Slice(frame), net::kDefaultMaxFrameBytes,
                                 &decoded);
  ASSERT_FALSE(consumed.ok());
  EXPECT_TRUE(consumed.status().IsCorruption());
}

TEST(ProtocolTest, ResultRoundTripWithTypedRows) {
  WireResult in;
  in.code = StatusCode::kOk;
  in.output = "2 rows";
  in.rows = 2;
  in.columns.push_back(Column{"pk", FieldType::kInt64, 8});
  in.columns.push_back(Column{"c1", FieldType::kInt32, 4});
  in.columns.push_back(Column{"name", FieldType::kString, 16});
  net::ResultCell pk1, c1a, s1, pk2, c1b, s2;
  pk1.i = 1;
  c1a.i = -42;
  s1.s = "alpha";
  pk2.i = 9007199254740993ll;
  c1b.i = 7;
  s2.s = "";
  in.typed_rows.push_back({pk1, c1a, s1});
  in.typed_rows.push_back({pk2, c1b, s2});

  std::string payload;
  net::EncodeResult(&payload, in);
  WireResult out;
  ASSERT_OK(net::DecodeResult(payload, &out));
  EXPECT_TRUE(out.ok());
  EXPECT_EQ(out.output, "2 rows");
  EXPECT_EQ(out.rows, 2u);
  ASSERT_EQ(out.columns.size(), 3u);
  EXPECT_EQ(out.columns[2].name, "name");
  EXPECT_EQ(out.columns[2].type, FieldType::kString);
  ASSERT_EQ(out.typed_rows.size(), 2u);
  EXPECT_EQ(out.typed_rows[0][0].i, 1);
  EXPECT_EQ(out.typed_rows[0][1].i, -42);
  EXPECT_EQ(out.typed_rows[0][2].s, "alpha");
  EXPECT_EQ(out.typed_rows[1][0].i, 9007199254740993ll);
}

TEST(ProtocolTest, ErrorResultCarriesStatus) {
  WireResult in;
  in.code = StatusCode::kInvalidArgument;
  in.message = "vquel: unknown verb 'FROB'";
  std::string payload;
  net::EncodeResult(&payload, in);
  WireResult out;
  ASSERT_OK(net::DecodeResult(payload, &out));
  EXPECT_FALSE(out.ok());
  const Status status = out.ToStatus();
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_EQ(status.message(), "vquel: unknown verb 'FROB'");
}

TEST(ProtocolTest, NotifyRoundTrip) {
  Notification in;
  in.branch = 3;
  in.branch_name = "dev";
  in.commit = 41;
  in.records = 1000;
  in.merge = true;
  std::string payload;
  net::EncodeNotify(&payload, in);
  Notification out;
  ASSERT_OK(net::DecodeNotify(payload, &out));
  EXPECT_EQ(out.branch, 3u);
  EXPECT_EQ(out.branch_name, "dev");
  EXPECT_EQ(out.commit, 41u);
  EXPECT_EQ(out.records, 1000u);
  EXPECT_TRUE(out.merge);
}

TEST(ProtocolTest, TruncatedPayloadsRejected) {
  std::string payload;
  net::EncodeExecute(&payload, "SCAN master");
  std::string statement;
  EXPECT_FALSE(
      net::DecodeExecute(Slice(payload.data(), payload.size() - 3),
                         &statement)
          .ok());

  Notification note;
  note.branch_name = "dev";
  std::string notify;
  net::EncodeNotify(&notify, note);
  Notification out;
  EXPECT_FALSE(
      net::DecodeNotify(Slice(notify.data(), notify.size() - 1), &out).ok());

  // Unknown / empty message types.
  EXPECT_FALSE(net::PayloadType(Slice("")).ok());
  const char junk[] = {42};
  EXPECT_FALSE(net::PayloadType(Slice(junk, 1)).ok());
}

// ------------------------------------------------------------ publisher

TEST(PublisherTest, DeliversInOrderToSubscriber) {
  CommitPublisher pub;
  std::mutex mu;
  std::vector<CommitId> seen;
  pub.Subscribe(1, [&](const CommitEvent& e) {
    std::lock_guard<std::mutex> lock(mu);
    seen.push_back(e.commit);
  });
  for (CommitId c = 1; c <= 100; ++c) {
    CommitEvent e;
    e.branch = 1;
    e.commit = c;
    pub.Publish(e);
  }
  pub.Drain();
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(seen.size(), 100u);
  for (CommitId c = 1; c <= 100; ++c) EXPECT_EQ(seen[c - 1], c);
}

TEST(PublisherTest, DropsEventsWithNoSubscriber) {
  CommitPublisher pub;
  CommitEvent e;
  e.branch = 7;
  pub.Publish(e);
  EXPECT_EQ(pub.events_published(), 0u);  // dropped at enqueue

  std::atomic<int> other_branch{0};
  pub.Subscribe(1, [&](const CommitEvent&) { other_branch++; });
  pub.Publish(e);  // branch 7 still has no subscriber
  pub.Drain();
  EXPECT_EQ(other_branch.load(), 0);
}

TEST(PublisherTest, UnsubscribeStopsDelivery) {
  CommitPublisher pub;
  std::atomic<int> count{0};
  const uint64_t token =
      pub.Subscribe(1, [&](const CommitEvent&) { count++; });
  CommitEvent e;
  e.branch = 1;
  pub.Publish(e);
  pub.Drain();
  EXPECT_EQ(count.load(), 1);
  pub.Unsubscribe(token);
  pub.Publish(e);
  pub.Drain();
  EXPECT_EQ(count.load(), 1);
  EXPECT_EQ(pub.num_subscriptions(), 0u);
}

// --------------------------------------------------------------- server

class NetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<ScratchDir>("net");
    auto db = Decibel::Open(dir_->path() + "/db", Schema::MakeBenchmark(2),
                            DecibelOptions{});
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).MoveValueUnsafe();
    ServerOptions opts;
    opts.worker_threads = 4;
    auto server = Server::Start(db_.get(), opts);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(server).MoveValueUnsafe();
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  Client MustConnect() {
    auto client = Client::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).MoveValueUnsafe();
  }

  /// Executes a statement that must succeed server-side.
  WireResult MustExecute(Client* client, const std::string& statement) {
    auto wr = client->Execute(statement);
    EXPECT_TRUE(wr.ok()) << wr.status().ToString();
    EXPECT_TRUE(wr->ok()) << statement << " -> " << wr->message;
    return std::move(wr).MoveValueUnsafe();
  }

  std::unique_ptr<ScratchDir> dir_;
  std::unique_ptr<Decibel> db_;
  std::unique_ptr<Server> server_;
};

TEST_F(NetTest, ExecuteRoundTripWithTypedResults) {
  Client client = MustConnect();
  MustExecute(&client, "INSERT master 1 10 100");
  MustExecute(&client, "INSERT master 2 20 200");
  const WireResult select = MustExecute(&client, "SELECT pk, c1 FROM master");
  EXPECT_EQ(select.rows, 2u);
  ASSERT_EQ(select.columns.size(), 2u);
  EXPECT_EQ(select.columns[0].name, "pk");
  EXPECT_EQ(select.columns[0].type, FieldType::kInt64);
  EXPECT_EQ(select.columns[1].name, "c1");
  EXPECT_EQ(select.columns[1].type, FieldType::kInt32);
  ASSERT_EQ(select.typed_rows.size(), 2u);
  EXPECT_EQ(select.typed_rows[0][0].i, 1);
  EXPECT_EQ(select.typed_rows[0][1].i, 10);
  EXPECT_EQ(select.typed_rows[1][0].i, 2);
  EXPECT_EQ(select.typed_rows[1][1].i, 20);
}

TEST_F(NetTest, PingPong) {
  Client client = MustConnect();
  ASSERT_OK(client.Ping());
  ASSERT_OK(client.Ping());
}

TEST_F(NetTest, StatementErrorsComeBackAsStatusNotDisconnect) {
  Client client = MustConnect();
  const char* bad[] = {
      "FROB everything",
      "SELECT FROM",
      "SELECT pk FROM no_such_branch",
      "MERGE master",
      "MERGE master master SIDEWAYS",
      "DIFF onlyone",
      "INSERT master not_a_pk 1 2",
      "SELECT pk FROM master LIMIT 0",
      "SUBSCRIBE",
      "RETIRE master",
  };
  for (const char* statement : bad) {
    auto wr = client.Execute(statement);
    ASSERT_TRUE(wr.ok()) << statement;  // the connection survives
    EXPECT_FALSE(wr->ok()) << statement;
  }
  // And the session still works afterwards.
  MustExecute(&client, "INSERT master 1 10 100");
}

TEST_F(NetTest, ConcurrentSessionsOnDisjointBranches) {
  // Each thread owns a connection and a branch: fork, write, commit,
  // merge back. The facade's locking is the only synchronization.
  constexpr int kAgents = 8;
  Client setup = MustConnect();
  MustExecute(&setup, "INSERT master 1 10 100");
  MustExecute(&setup, "COMMIT master");
  std::atomic<int> failures{0};
  std::vector<std::thread> agents;
  agents.reserve(kAgents);
  for (int a = 0; a < kAgents; ++a) {
    agents.emplace_back([&, a] {
      auto client = Client::Connect("127.0.0.1", server_->port());
      if (!client.ok()) {
        failures++;
        return;
      }
      const std::string branch = "agent" + std::to_string(a);
      const std::string pk = std::to_string(100 + a);
      const char* steps[4] = {nullptr};
      const std::string s0 = "BRANCH " + branch + " FROM master";
      const std::string s1 = "INSERT " + branch + " " + pk + " 1 1";
      const std::string s2 = "COMMIT " + branch;
      const std::string s3 = "MERGE master " + branch + " THREEWAY LEFT";
      steps[0] = s0.c_str();
      steps[1] = s1.c_str();
      steps[2] = s2.c_str();
      steps[3] = s3.c_str();
      for (const char* statement : steps) {
        auto wr = client->Execute(statement);
        if (!wr.ok() || !wr->ok()) {
          failures++;
          return;
        }
      }
    });
  }
  for (std::thread& t : agents) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Every agent's row made it to master.
  const WireResult scan = MustExecute(&setup, "SCAN master");
  EXPECT_EQ(scan.rows, 1u + kAgents);
}

TEST_F(NetTest, PerSessionTransactionIsolation) {
  Client writer = MustConnect();
  Client reader = MustConnect();
  MustExecute(&writer, "INSERT master 1 10 100");
  MustExecute(&writer, "BEGIN master");
  MustExecute(&writer, "INSERT master 2 20 200");  // staged, not applied
  // The reader's session must not see the writer's staged ops — and must
  // not be able to COMMIT the writer's transaction.
  const WireResult scan = MustExecute(&reader, "SCAN master");
  EXPECT_EQ(scan.rows, 1u);
  auto foreign_commit = reader.Execute("COMMIT TX");
  ASSERT_TRUE(foreign_commit.ok());
  EXPECT_FALSE(foreign_commit->ok());  // no transaction on *this* session
  MustExecute(&writer, "COMMIT TX");
  const WireResult after = MustExecute(&reader, "SCAN master");
  EXPECT_EQ(after.rows, 2u);
}

TEST_F(NetTest, DisconnectAbortsOpenTransaction) {
  {
    Client writer = MustConnect();
    MustExecute(&writer, "BEGIN master");
    MustExecute(&writer, "INSERT master 7 7 7");
    writer.Close();  // vanish mid-transaction
  }
  // The staged op must never surface.
  Client reader = MustConnect();
  for (int i = 0; i < 50; ++i) {
    const WireResult scan = MustExecute(&reader, "SCAN master");
    ASSERT_EQ(scan.rows, 0u);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

TEST_F(NetTest, SubscriptionDeliversCommit) {
  Client watcher = MustConnect();
  Client writer = MustConnect();
  MustExecute(&writer, "BRANCH dev FROM master");
  ASSERT_OK(watcher.Subscribe("dev"));
  MustExecute(&writer, "INSERT dev 1 10 100");
  MustExecute(&writer, "INSERT dev 2 20 200");
  MustExecute(&writer, "COMMIT dev");
  auto note = watcher.WaitNotification(5000);
  ASSERT_TRUE(note.ok()) << note.status().ToString();
  EXPECT_EQ(note->branch_name, "dev");
  EXPECT_EQ(note->records, 2u);
  EXPECT_FALSE(note->merge);
}

TEST_F(NetTest, SubscriptionDeliversMerge) {
  Client watcher = MustConnect();
  Client writer = MustConnect();
  MustExecute(&writer, "COMMIT master");
  MustExecute(&writer, "BRANCH dev FROM master");
  ASSERT_OK(watcher.Subscribe("master"));
  MustExecute(&writer, "INSERT dev 1 10 100");
  MustExecute(&writer, "MERGE master dev THREEWAY LEFT");
  // The merge may be preceded by nothing else on master; the first
  // notification is the merge commit itself.
  auto note = watcher.WaitNotification(5000);
  ASSERT_TRUE(note.ok()) << note.status().ToString();
  EXPECT_EQ(note->branch_name, "master");
  EXPECT_TRUE(note->merge);
  EXPECT_EQ(note->records, 1u);
}

TEST_F(NetTest, NotificationsArriveInCommitOrder) {
  Client watcher = MustConnect();
  Client writer = MustConnect();
  ASSERT_OK(watcher.Subscribe("master"));
  for (int i = 0; i < 5; ++i) {
    MustExecute(&writer,
                "INSERT master " + std::to_string(i + 1) + " 1 1");
    MustExecute(&writer, "COMMIT master");
  }
  uint64_t last = 0;
  for (int i = 0; i < 5; ++i) {
    auto note = watcher.WaitNotification(5000);
    ASSERT_TRUE(note.ok()) << note.status().ToString();
    EXPECT_GT(note->commit, last);
    last = note->commit;
  }
}

TEST_F(NetTest, UnsubscribeStopsNotifications) {
  Client watcher = MustConnect();
  Client writer = MustConnect();
  ASSERT_OK(watcher.Subscribe("master"));
  MustExecute(&writer, "INSERT master 1 1 1");
  MustExecute(&writer, "COMMIT master");
  ASSERT_TRUE(watcher.WaitNotification(5000).ok());
  ASSERT_OK(watcher.Unsubscribe("master"));
  MustExecute(&writer, "INSERT master 2 2 2");
  MustExecute(&writer, "COMMIT master");
  auto note = watcher.WaitNotification(300);
  EXPECT_FALSE(note.ok());  // nothing may arrive after UNSUBSCRIBE's ack
}

TEST_F(NetTest, SubscribeValidation) {
  Client client = MustConnect();
  EXPECT_FALSE(client.Subscribe("no_such_branch").ok());
  EXPECT_FALSE(client.Unsubscribe("master").ok());  // never subscribed
  ASSERT_OK(client.Subscribe("master"));
  ASSERT_OK(client.Subscribe("master"));  // idempotent
  ASSERT_OK(client.Unsubscribe("master"));
}

TEST_F(NetTest, OversizedFrameDropsConnectionCleanly) {
  ASSERT_OK_AND_ASSIGN(Socket raw,
                       Socket::Connect("127.0.0.1", server_->port()));
  // Length prefix far past the 32 MiB cap; the body never follows.
  std::string header;
  PutFixed32(&header, 1u << 30);
  PutFixed32(&header, 0);
  ASSERT_OK(raw.SendAll(header));
  ASSERT_OK(raw.SetRecvTimeout(5000));
  char buf[16];
  ASSERT_OK_AND_ASSIGN(size_t got, raw.Recv(buf, sizeof(buf)));
  EXPECT_EQ(got, 0u);  // server closed without crashing or ballooning
  // The server is still healthy for other sessions.
  Client client = MustConnect();
  MustExecute(&client, "INSERT master 1 1 1");
}

TEST_F(NetTest, GarbageFrameDropsConnectionCleanly) {
  ASSERT_OK_AND_ASSIGN(Socket raw,
                       Socket::Connect("127.0.0.1", server_->port()));
  // Plausible length, wrong CRC.
  std::string frame;
  PutFixed32(&frame, 12);
  PutFixed32(&frame, 0xabad1dea);
  frame.append(12, '\x5a');
  ASSERT_OK(raw.SendAll(frame));
  ASSERT_OK(raw.SetRecvTimeout(5000));
  char buf[16];
  ASSERT_OK_AND_ASSIGN(size_t got, raw.Recv(buf, sizeof(buf)));
  EXPECT_EQ(got, 0u);
  Client client = MustConnect();
  MustExecute(&client, "SCAN master");
}

TEST_F(NetTest, TornFrameThenDisconnectIsHarmless) {
  {
    ASSERT_OK_AND_ASSIGN(Socket raw,
                         Socket::Connect("127.0.0.1", server_->port()));
    std::string payload;
    net::EncodeExecute(&payload, "INSERT master 999 9 9");
    std::string frame;
    WrapFrame(&frame, payload);
    // Half a frame, then vanish.
    ASSERT_OK(raw.SendAll(Slice(frame.data(), frame.size() / 2)));
  }
  Client client = MustConnect();
  const WireResult scan = MustExecute(&client, "SCAN master");
  EXPECT_EQ(scan.rows, 0u);  // the torn INSERT never executed
}

TEST_F(NetTest, SessionCountTracksConnections) {
  EXPECT_EQ(server_->num_sessions(), 0u);
  Client a = MustConnect();
  Client b = MustConnect();
  ASSERT_OK(a.Ping());  // forces accept to have happened
  ASSERT_OK(b.Ping());
  EXPECT_EQ(server_->num_sessions(), 2u);
  b.Close();
  // The event loop reaps closed peers asynchronously.
  for (int i = 0; i < 100 && server_->num_sessions() != 1u; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server_->num_sessions(), 1u);
}

TEST_F(NetTest, ShutdownWithLiveSessions) {
  Client a = MustConnect();
  Client b = MustConnect();
  ASSERT_OK(a.Subscribe("master"));
  MustExecute(&b, "INSERT master 1 1 1");
  server_->Stop();
  EXPECT_EQ(server_->num_sessions(), 0u);
  // Clients see a clean connection-level error, not a hang.
  auto after = b.Execute("SCAN master");
  EXPECT_FALSE(after.ok());
  EXPECT_TRUE(after.status().IsIOError()) << after.status().ToString();
  server_->Stop();  // idempotent
}

TEST_F(NetTest, PipelinedRequestsKeepOrder) {
  // Raw socket: fire N execute frames back-to-back without reading, then
  // collect N responses — they must come back in order (one in-flight
  // statement per session, queued FIFO).
  ASSERT_OK_AND_ASSIGN(Socket raw,
                       Socket::Connect("127.0.0.1", server_->port()));
  constexpr int kN = 20;
  std::string burst;
  for (int i = 0; i < kN; ++i) {
    std::string payload;
    net::EncodeExecute(&payload,
                       "INSERT master " + std::to_string(i + 1) + " 1 1");
    WrapFrame(&burst, payload);
  }
  ASSERT_OK(raw.SendAll(burst));
  ASSERT_OK(raw.SetRecvTimeout(10000));
  std::string rbuf;
  int seen = 0;
  char buf[4096];
  while (seen < kN) {
    ASSERT_OK_AND_ASSIGN(size_t got, raw.Recv(buf, sizeof(buf)));
    ASSERT_GT(got, 0u);
    rbuf.append(buf, got);
    for (;;) {
      std::string payload;
      ASSERT_OK_AND_ASSIGN(
          size_t n,
          TryDecodeFrame(Slice(rbuf), net::kDefaultMaxFrameBytes, &payload));
      if (n == 0) break;
      rbuf.erase(0, n);
      WireResult wr;
      ASSERT_OK(net::DecodeResult(payload, &wr));
      EXPECT_TRUE(wr.ok()) << wr.message;
      ++seen;
    }
  }
  // All N inserts landed.
  Client client = MustConnect();
  const WireResult scan = MustExecute(&client, "SCAN master");
  EXPECT_EQ(scan.rows, static_cast<uint64_t>(kN));
}

TEST_F(NetTest, InfoAndRetireOverTheWire) {
  Client client = MustConnect();
  MustExecute(&client, "COMMIT master");
  MustExecute(&client, "BRANCH dev FROM master");
  const WireResult info = MustExecute(&client, "INFO");
  EXPECT_NE(info.output.find("active_branches: 2"), std::string::npos)
      << info.output;
  MustExecute(&client, "RETIRE dev");
  const WireResult after = MustExecute(&client, "INFO");
  EXPECT_NE(after.output.find("active_branches: 1"), std::string::npos)
      << after.output;
  // Retiring twice is an error, carried over the wire.
  auto again = client.Execute("RETIRE dev");
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->ok());
}

TEST_F(NetTest, StatsCountSubscriptions) {
  Client watcher = MustConnect();
  ASSERT_OK(watcher.Subscribe("master"));
  EXPECT_EQ(db_->Stats().subscriptions, 1u);
  watcher.Close();
  for (int i = 0; i < 100 && db_->Stats().subscriptions != 0u; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(db_->Stats().subscriptions, 0u);  // close dropped the sub
}

}  // namespace
}  // namespace decibel
