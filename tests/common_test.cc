/// Unit tests for the common substrate: Status/Result, coding, checksums,
/// hashing, RLE, LZ, PRNG and file I/O.

#include <gtest/gtest.h>

#include "common/coding.h"
#include "common/crc32.h"
#include "common/hash.h"
#include "common/io.h"
#include "common/lz.h"
#include "common/random.h"
#include "common/result.h"
#include "common/rle.h"
#include "common/status.h"
#include "test_util.h"

namespace decibel {
namespace {

using testing_util::ScratchDir;

// ------------------------------------------------------------------ Status

TEST(StatusTest, OkIsDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, CopyAndMove) {
  Status s = Status::Conflict("merge clash");
  Status copy = s;
  EXPECT_TRUE(copy.IsConflict());
  EXPECT_EQ(copy, s);
  Status moved = std::move(copy);
  EXPECT_TRUE(moved.IsConflict());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 10; ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::IOError("disk gone");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  auto p = std::move(r).MoveValueUnsafe();
  EXPECT_EQ(*p, 7);
}

// ------------------------------------------------------------------ coding

TEST(CodingTest, FixedRoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xdeadbeef);
  PutFixed64(&buf, 0x0123456789abcdefULL);
  Slice in(buf);
  uint32_t v32;
  uint64_t v64;
  ASSERT_TRUE(GetFixed32(&in, &v32));
  ASSERT_TRUE(GetFixed64(&in, &v64));
  EXPECT_EQ(v32, 0xdeadbeefu);
  EXPECT_EQ(v64, 0x0123456789abcdefULL);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, VarintRoundTripBoundaries) {
  const uint64_t cases[] = {0,       1,          127,        128,
                            16383,   16384,      UINT32_MAX, 1ull << 40,
                            UINT64_MAX};
  for (uint64_t v : cases) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(static_cast<int>(buf.size()), VarintLength(v));
    Slice in(buf);
    uint64_t out;
    ASSERT_TRUE(GetVarint64(&in, &out)) << v;
    EXPECT_EQ(out, v);
  }
}

TEST(CodingTest, Varint32RejectsOverflow) {
  std::string buf;
  PutVarint64(&buf, static_cast<uint64_t>(UINT32_MAX) + 1);
  Slice in(buf);
  uint32_t out;
  EXPECT_FALSE(GetVarint32(&in, &out));
}

TEST(CodingTest, TruncatedVarintFails) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  buf.resize(buf.size() - 1);
  Slice in(buf);
  uint64_t out;
  EXPECT_FALSE(GetVarint64(&in, &out));
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  Slice in(buf);
  Slice a, b, c;
  ASSERT_TRUE(GetLengthPrefixed(&in, &a));
  ASSERT_TRUE(GetLengthPrefixed(&in, &b));
  ASSERT_TRUE(GetLengthPrefixed(&in, &c));
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(c.size(), 1000u);
}

TEST(CodingTest, ZigZag) {
  const int64_t cases[] = {0, -1, 1, -2, INT64_MAX, INT64_MIN, -123456789};
  for (int64_t v : cases) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
}

// ------------------------------------------------------------- crc & hash

TEST(Crc32Test, KnownVector) {
  // CRC-32 of "123456789" is 0xCBF43926 (IEEE).
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
}

TEST(Crc32Test, MaskRoundTrip) {
  const uint32_t crc = Crc32("some data");
  EXPECT_EQ(UnmaskCrc(MaskCrc(crc)), crc);
  EXPECT_NE(MaskCrc(crc), crc);
}

TEST(Crc32Test, DetectsCorruption) {
  std::string data = "the quick brown fox";
  const uint32_t crc = Crc32(data);
  data[3] ^= 1;
  EXPECT_NE(Crc32(data), crc);
}

TEST(HashTest, Deterministic) {
  EXPECT_EQ(Fnv1a64("abc"), Fnv1a64("abc"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
  EXPECT_NE(Mix64(1), Mix64(2));
}

// --------------------------------------------------------------------- rle

TEST(RleTest, RoundTripSparseBitmapDelta) {
  std::string data(10000, '\0');
  data[17] = 0x40;
  data[9031] = 0x01;
  std::string enc;
  rle::Encode(data, &enc);
  EXPECT_LT(enc.size(), 64u);  // long zero runs collapse
  auto dec = rle::Decode(enc);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(*dec, data);
}

TEST(RleTest, RoundTripRandomData) {
  Random rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    std::string data;
    const size_t n = rng.Uniform(2000);
    for (size_t i = 0; i < n; ++i) {
      if (rng.OneIn(3)) {
        data.push_back(static_cast<char>(rng.Uniform(256)));
      } else {
        data.append(rng.Uniform(30), rng.OneIn(2) ? '\0' : 'a');
      }
    }
    std::string enc;
    rle::Encode(data, &enc);
    auto dec = rle::Decode(enc);
    ASSERT_TRUE(dec.ok());
    EXPECT_EQ(*dec, data) << "trial " << trial;
  }
}

TEST(RleTest, DecodeXorIntoAppliesDelta) {
  std::string before(100, '\0');
  before[5] = 0x10;
  std::string after = before;
  after[5] = 0x30;
  after.resize(200, '\0');
  after[150] = 0x01;
  // delta = before XOR after
  std::string delta(200, '\0');
  for (size_t i = 0; i < 200; ++i) {
    delta[i] = (i < before.size() ? before[i] : 0) ^ after[i];
  }
  std::string enc;
  rle::Encode(delta, &enc);
  std::string state = before;
  ASSERT_OK(rle::DecodeXorInto(enc, &state));
  state.resize(200, '\0');  // zero-extension is implicit
  EXPECT_EQ(state, after);
}

TEST(RleTest, EmptyAndSingleInputs) {
  // Empty input.
  std::string enc;
  rle::Encode("", &enc);
  auto dec = rle::Decode(enc);
  ASSERT_TRUE(dec.ok());
  EXPECT_TRUE(dec->empty());
  // Single byte.
  enc.clear();
  rle::Encode("x", &enc);
  dec = rle::Decode(enc);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(*dec, "x");
  // One long run of a single value.
  const std::string run(100000, '\7');
  enc.clear();
  rle::Encode(run, &enc);
  EXPECT_LT(enc.size(), 64u);
  dec = rle::Decode(enc);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(*dec, run);
}

TEST(RleTest, WorstCaseIncompressibleRoundTrips) {
  // No byte repeats: every position breaks the run, the encoder must
  // fall back to literals with bounded expansion and still round-trip.
  std::string data;
  for (int i = 0; i < 4096; ++i) {
    data.push_back(static_cast<char>(i * 37 + (i >> 3)));
  }
  std::string enc;
  rle::Encode(data, &enc);
  EXPECT_LE(enc.size(), 2 * data.size() + 16);  // bounded worst case
  auto dec = rle::Decode(enc);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(*dec, data);
}

TEST(RleTest, DecodeRejectsCorruption) {
  std::string enc;
  rle::Encode(std::string(100, 'z'), &enc);
  enc.resize(enc.size() / 2);
  EXPECT_FALSE(rle::Decode(enc).ok());
  std::string bad = "\x07";  // invalid tag
  EXPECT_FALSE(rle::Decode(bad).ok());
}

// ---------------------------------------------------------------------- lz

TEST(LzTest, RoundTripText) {
  std::string data;
  for (int i = 0; i < 200; ++i) {
    data += "the quick brown fox jumps over the lazy dog ";
  }
  std::string enc;
  lz::Compress(data, &enc);
  EXPECT_LT(enc.size(), data.size() / 4);  // repetitive text compresses
  auto dec = lz::Decompress(enc);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(*dec, data);
}

TEST(LzTest, RoundTripRandomBinary) {
  Random rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::string data;
    const size_t n = rng.Uniform(5000);
    for (size_t i = 0; i < n; ++i) {
      data.push_back(static_cast<char>(rng.Uniform(trial % 2 ? 256 : 4)));
    }
    std::string enc;
    lz::Compress(data, &enc);
    auto dec = lz::Decompress(enc);
    ASSERT_TRUE(dec.ok());
    EXPECT_EQ(*dec, data) << "trial " << trial;
  }
}

TEST(LzTest, EmptyAndTiny) {
  for (const std::string& data : {std::string(), std::string("a"),
                                  std::string("abc")}) {
    std::string enc;
    lz::Compress(data, &enc);
    auto dec = lz::Decompress(enc);
    ASSERT_TRUE(dec.ok());
    EXPECT_EQ(*dec, data);
  }
}

TEST(LzTest, OverlappingCopies) {
  // RLE-style self-referencing copies.
  std::string data(4096, 'q');
  std::string enc;
  lz::Compress(data, &enc);
  EXPECT_LT(enc.size(), 64u);
  auto dec = lz::Decompress(enc);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(*dec, data);
}

TEST(LzTest, RejectsCorruptStreams) {
  EXPECT_FALSE(lz::Decompress("\x01\x05\x05").ok());  // copy before start
  EXPECT_FALSE(lz::Decompress("\x09").ok());          // bad tag
}

TEST(LzTest, WorstCaseIncompressibleRoundTrips) {
  // High-entropy input: no usable matches, only literal runs. The stream
  // may expand slightly but must stay bounded and decode exactly.
  Random rng(123);
  std::string data;
  for (int i = 0; i < 8192; ++i) {
    data.push_back(static_cast<char>(rng.Uniform(256)));
  }
  std::string enc;
  lz::Compress(data, &enc);
  EXPECT_LE(enc.size(), data.size() + data.size() / 8 + 64);
  auto dec = lz::Decompress(enc);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(*dec, data);
}

TEST(LzTest, RejectsTruncatedStreams) {
  std::string data;
  for (int i = 0; i < 100; ++i) data += "repetition breeds copies ";
  std::string enc;
  lz::Compress(data, &enc);
  for (size_t keep = 1; keep < enc.size(); keep += 7) {
    const auto dec = lz::Decompress(enc.substr(0, keep));
    // A truncated stream either fails outright or yields a strict prefix
    // — it must never fabricate bytes past what was stored.
    if (dec.ok()) {
      EXPECT_LT(dec->size(), data.size()) << "keep=" << keep;
    }
  }
}

// ------------------------------------------------------------------ random

TEST(RandomTest, DeterministicPerSeed) {
  Random a(99), b(99), c(100);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool differs = false;
  Random a2(99);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RandomTest, UniformInRange) {
  Random rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    const int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// ---------------------------------------------------------------------- io

TEST(IoTest, WriteReadRoundTrip) {
  ScratchDir dir("io");
  const std::string path = JoinPath(dir.path(), "f.bin");
  ASSERT_OK(WriteStringToFile(path, "hello world"));
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "hello world");
  auto size = FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 11u);
}

TEST(IoTest, AppendAcrossReopen) {
  ScratchDir dir("io");
  const std::string path = JoinPath(dir.path(), "log");
  {
    auto f = WritableFile::Open(path);
    ASSERT_TRUE(f.ok());
    ASSERT_OK(f->Append("abc"));
    ASSERT_OK(f->Close());
  }
  {
    auto f = WritableFile::Open(path);
    ASSERT_TRUE(f.ok());
    EXPECT_EQ(f->Size(), 3u);
    ASSERT_OK(f->Append("def"));
    ASSERT_OK(f->Close());
  }
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "abcdef");
}

TEST(IoTest, RandomAccessShortReadIsError) {
  ScratchDir dir("io");
  const std::string path = JoinPath(dir.path(), "f");
  ASSERT_OK(WriteStringToFile(path, "0123456789"));
  auto f = RandomAccessFile::Open(path);
  ASSERT_TRUE(f.ok());
  std::string buf;
  ASSERT_OK(f->Read(5, 5, &buf));
  EXPECT_EQ(buf, "56789");
  EXPECT_TRUE(f->Read(8, 5, &buf).IsIOError());  // past EOF
}

TEST(IoTest, RandomWriteFilePatchesInPlace) {
  ScratchDir dir("io");
  const std::string path = JoinPath(dir.path(), "f");
  ASSERT_OK(WriteStringToFile(path, "xxxxxxxxxx"));
  auto f = RandomWriteFile::Open(path);
  ASSERT_TRUE(f.ok());
  ASSERT_OK(f->WriteAt(3, "ABC"));
  ASSERT_OK(f->Close());
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "xxxABCxxxx");
}

TEST(IoTest, ListAndRemoveDir) {
  ScratchDir dir("io");
  ASSERT_OK(CreateDir(JoinPath(dir.path(), "a/b/c")));
  ASSERT_OK(WriteStringToFile(JoinPath(dir.path(), "a/f1"), "1"));
  ASSERT_OK(WriteStringToFile(JoinPath(dir.path(), "a/b/f2"), "22"));
  auto names = ListDir(JoinPath(dir.path(), "a"));
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 2u);
  EXPECT_EQ(DirSizeBytes(JoinPath(dir.path(), "a")), 3u);
  ASSERT_OK(RemoveDirRecursive(JoinPath(dir.path(), "a")));
  EXPECT_FALSE(FileExists(JoinPath(dir.path(), "a")));
}

}  // namespace
}  // namespace decibel
