#!/usr/bin/env bash
# End-to-end smoke of the network service layer against a real server
# process: a client session over TCP, a commit subscription that must
# deliver, then SIGKILL mid-write — the client must fail loudly (nonzero
# exit, not a hang) and a reopen of the data dir must recover every
# acknowledged commit from the WAL tail.
#
# usage: scripts/ci_server_smoke.sh [build-dir]      (default: build)
set -euo pipefail

BUILD=${1:-build}
SERVER="$BUILD/examples/decibel_server"
SHELL_BIN="$BUILD/examples/vquel_shell"
DIR=$(mktemp -d /tmp/decibel_server_smoke.XXXXXX)
SERVER_PID=""
cleanup() {
  # Kill by PID only — a pkill by name would also match this script's
  # own command line (and anything else on a shared CI runner).
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

fail() { echo "ci_server_smoke: $*" >&2; exit 1; }

# --- 1. durable server on an ephemeral port --------------------------------
"$SERVER" --data-dir "$DIR/db" --sync fsync --port 0 \
    > "$DIR/server.out" 2>&1 &
SERVER_PID=$!
ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's/^decibel_server listening on //p' "$DIR/server.out")
  [ -n "$ADDR" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || fail "server died during startup: $(cat "$DIR/server.out")"
  sleep 0.1
done
[ -n "$ADDR" ] || fail "server never announced its port"
echo "server up at $ADDR (pid $SERVER_PID)"

# --- 2. a full client session over the wire --------------------------------
"$SHELL_BIN" --connect "$ADDR" > "$DIR/session.out" <<'EOF'
INSERT master 1 10 100
INSERT master 2 20 200
COMMIT master
BRANCH dev FROM master
INSERT dev 3 30 300
COMMIT dev
MERGE master dev THREEWAY LEFT
SCAN master
RETIRE dev
INFO
EOF
grep -q "3 | 30 | 300" "$DIR/session.out" || fail "merged row missing from SCAN: $(cat "$DIR/session.out")"
grep -q "active_branches: 1" "$DIR/session.out" || fail "RETIRE did not retire: $(cat "$DIR/session.out")"

# --- 3. commit subscription delivers across connections --------------------
"$SHELL_BIN" --connect "$ADDR" > "$DIR/sub.out" <<'EOF' &
SUBSCRIBE master
\wait-notify 10000
EOF
SUB_PID=$!
sleep 0.5
"$SHELL_BIN" --connect "$ADDR" > /dev/null <<'EOF'
INSERT master 50 5 5
COMMIT master
EOF
wait "$SUB_PID" || fail "subscriber exited nonzero: $(cat "$DIR/sub.out")"
grep -q "notify: commit on branch master" "$DIR/sub.out" \
    || fail "subscription never delivered: $(cat "$DIR/sub.out")"

# --- 4. SIGKILL mid-write: client errors out, nothing hangs ----------------
(
  for i in $(seq 100 10000); do
    printf 'INSERT master %d 1 1\nCOMMIT master\n' "$i"
  done
) | "$SHELL_BIN" --connect "$ADDR" > "$DIR/kill.out" 2>&1 &
CLIENT_PID=$!
sleep 1
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
if wait "$CLIENT_PID"; then
  fail "client exited 0 although the server was SIGKILLed mid-stream"
fi
SERVER_PID=""
grep -q "error:" "$DIR/kill.out" || fail "client reported no error after server kill"

# --- 5. recovery: acknowledged commits survive the kill --------------------
"$SHELL_BIN" --data-dir "$DIR/db" > "$DIR/recovered.out" <<'EOF'
SCAN master
INSERT master 999999 7 7
COMMIT master
SELECT pk FROM master WHERE pk = 999999
EOF
for pk in 1 2 3 50; do
  grep -q "^${pk} | " "$DIR/recovered.out" \
      || fail "pk $pk lost across SIGKILL + recovery"
done
grep -q "^999999$" "$DIR/recovered.out" || fail "recovered store rejected new writes"

echo "ci_server_smoke: OK"
