#!/usr/bin/env bash
# Runs the paper-reproduction benchmarks and emits one BENCH_<name>.json
# per program, so successive PRs can track the performance trajectory.
#
# Usage:
#   scripts/run_bench.sh [-b BUILD_DIR] [-o OUT_DIR] [-a] [bench ...]
#
#   -b BUILD_DIR   cmake build directory holding bench/ binaries (default: build)
#   -o OUT_DIR     where BENCH_*.json land (default: bench_results)
#   -a             also run the ablation benchmarks
#   bench ...      explicit subset (names like fig6_scaling table2_commits)
#
# Honors DECIBEL_SCALE / DECIBEL_BRANCHES (see bench/bench_common.h).
# micro_primitives (Google Benchmark) emits its native JSON when present.

set -u

BUILD_DIR=build
OUT_DIR=bench_results
RUN_ABLATIONS=0

while getopts "b:o:ah" opt; do
  case "$opt" in
    b) BUILD_DIR=$OPTARG ;;
    o) OUT_DIR=$OPTARG ;;
    a) RUN_ABLATIONS=1 ;;
    h) sed -n '2,15p' "$0"; exit 0 ;;
    *) exit 2 ;;
  esac
done
shift $((OPTIND - 1))

FIGURE_TABLE_BENCHES=(
  fig6_scaling fig7_q1 fig8_q2 fig9_q3 fig10_q4 fig11_tablewise
  table2_commits table3_merge table5_load table6_git table7_git_updates
  load_paths scan_pushdown concurrent_txn wal_overhead merge_diff
  agentic_branches
)
ABLATION_BENCHES=(ablation_orientation ablation_parallel_scan)

EXPLICIT=0
if [ "$#" -gt 0 ]; then
  BENCHES=("$@")
  EXPLICIT=1
else
  BENCHES=("${FIGURE_TABLE_BENCHES[@]}")
  if [ "$RUN_ABLATIONS" -eq 1 ]; then
    BENCHES+=("${ABLATION_BENCHES[@]}")
  fi
fi

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: $BUILD_DIR/bench not found; build first:" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

mkdir -p "$OUT_DIR"
SCALE=${DECIBEL_SCALE:-1}
STAMP=$(date -u +%Y-%m-%dT%H:%M:%SZ)
FAILURES=0

# Escapes stdin into a JSON string array, one element per line. Control
# characters other than tab/newline (e.g. \r progress counters) are dropped
# — RFC 8259 forbids them unescaped inside strings.
json_lines() {
  tr -d '\000-\010\013-\037' |
  sed -e 's/\\/\\\\/g' -e 's/"/\\"/g' -e 's/\t/\\t/g' \
      -e 's/^/    "/' -e 's/$/",/' | sed -e '$ s/,$//'
}

for bench in "${BENCHES[@]}"; do
  bin="$BUILD_DIR/bench/$bench"
  out_json="$OUT_DIR/BENCH_${bench}.json"
  if [ ! -x "$bin" ]; then
    if [ "$EXPLICIT" -eq 1 ]; then
      echo "error: no such bench binary: $bin" >&2
      FAILURES=$((FAILURES + 1))
    else
      echo "-- skip $bench (binary not built)"
    fi
    continue
  fi
  echo "-- running $bench"
  raw=$(mktemp)
  start_ns=$(date +%s%N)
  "$bin" > "$raw" 2>&1
  code=$?
  end_ns=$(date +%s%N)
  wall=$(awk -v a="$start_ns" -v b="$end_ns" 'BEGIN { printf "%.3f", (b - a) / 1e9 }')
  status=ok
  if [ "$code" -ne 0 ]; then
    status=failed
    FAILURES=$((FAILURES + 1))
    echo "   FAILED (exit $code), output kept in $out_json" >&2
  fi
  {
    printf '{\n'
    printf '  "bench": "%s",\n' "$bench"
    printf '  "status": "%s",\n' "$status"
    printf '  "exit_code": %d,\n' "$code"
    printf '  "wall_seconds": %s,\n' "$wall"
    printf '  "scale": %s,\n' "$SCALE"
    printf '  "timestamp": "%s",\n' "$STAMP"
    printf '  "output": [\n'
    json_lines < "$raw"
    printf '\n  ]\n}\n'
  } > "$out_json"
  rm -f "$raw"
done

# Google Benchmark speaks JSON natively; use it directly when built. Only
# part of the default sweep — an explicit subset runs exactly what it names.
micro="$BUILD_DIR/bench/micro_primitives"
if [ "$EXPLICIT" -eq 1 ]; then
  :
elif [ -x "$micro" ]; then
  echo "-- running micro_primitives"
  if ! "$micro" --benchmark_format=json \
      --benchmark_out="$OUT_DIR/BENCH_micro_primitives.json" \
      --benchmark_out_format=json > /dev/null 2>&1; then
    FAILURES=$((FAILURES + 1))
    echo "   FAILED micro_primitives" >&2
  fi
else
  echo "-- skip micro_primitives (Google Benchmark not available at build time)"
fi

echo
echo "Results in $OUT_DIR/ ($(ls "$OUT_DIR"/BENCH_*.json 2>/dev/null | wc -l) files, $FAILURES failures)"
exit "$([ "$FAILURES" -eq 0 ] && echo 0 || echo 1)"
