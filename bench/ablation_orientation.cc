/// Ablation: branch-oriented vs tuple-oriented bitmaps in the tuple-first
/// engine (§3.1 describes both layouts; §5 picks branch-oriented "due to
/// its suitability for our commit procedure", and the conclusion notes
/// both row- and column-oriented layouts were evaluated).
///
/// Expected shape: tuple-oriented single-branch scans pay for walking the
/// whole matrix to materialize one column; multi-branch scans are closer
/// (both gather per-tuple membership); branching is cheaper for
/// branch-oriented (memcpy of one column vs a bit-per-row pass).

#include "common/stopwatch.h"

#include "bench_common.h"

namespace decibel {
namespace bench {
namespace {

Result<ScopedDb> FreshOriented(BitmapOrientation orientation,
                               const std::string& tag) {
  static int counter = 0;
  ScopedDb scoped;
  scoped.path = "/tmp/decibel_orient_" + std::to_string(::getpid()) + "_" +
                tag + "_" + std::to_string(counter++);
  DECIBEL_RETURN_NOT_OK(RemoveDirRecursive(scoped.path));
  DecibelOptions options;
  options.engine = EngineType::kTupleFirst;
  options.orientation = orientation;
  options.page_size = 64 << 10;
  DECIBEL_ASSIGN_OR_RETURN(scoped.db,
                           Decibel::Open(scoped.path, BenchSchema(), options));
  return scoped;
}

void Run() {
  const int num_branches = EnvInt("DECIBEL_BRANCHES", 10);

  printf("=== Ablation: tuple-first bitmap orientation (flat, %d branches) "
         "===\n",
         num_branches);
  printf("%-18s %16s %16s %16s\n", "orientation", "Q1 (ms)", "Q4 (ms)",
         "branch op (ms)");

  for (BitmapOrientation orientation :
       {BitmapOrientation::kBranchOriented,
        BitmapOrientation::kTupleOriented}) {
    BENCH_ASSIGN_OR_DIE(ScopedDb scoped,
                        FreshOriented(orientation, "ab_orient"));
    WorkloadConfig config = BaseConfig(Strategy::kFlat, num_branches);
    BENCH_ASSIGN_OR_DIE(LoadedWorkload w,
                        LoadWorkload(scoped.db.get(), config));
    Random rng(7);
    BENCH_ASSIGN_OR_DIE(TimedQuery q1,
                        TimedQ1(scoped.db.get(), SelectQ1Target(w, &rng)));
    BENCH_ASSIGN_OR_DIE(TimedQuery q4, TimedQ4(scoped.db.get()));

    // Branch-operation cost: clone the full mainline bitmap (§3.2).
    Session s = scoped.db->NewSession();
    BENCH_CHECK_OK(scoped.db->Use(&s, kMasterBranch));
    Stopwatch timer;
    const int branch_trials = 10;
    for (int t = 0; t < branch_trials; ++t) {
      BENCH_CHECK_OK(scoped.db->Use(&s, kMasterBranch));
      BENCH_CHECK_OK(
          scoped.db->Branch("ab_" + std::to_string(t), &s).status());
    }
    const double branch_ms = timer.ElapsedMillis() / branch_trials;

    printf("%-18s %16.2f %16.2f %16.3f\n",
           orientation == BitmapOrientation::kBranchOriented
               ? "branch-oriented"
               : "tuple-oriented",
           q1.seconds * 1e3, q4.seconds * 1e3, branch_ms);
  }
}

}  // namespace
}  // namespace bench
}  // namespace decibel

int main() {
  decibel::bench::Run();
  return 0;
}
