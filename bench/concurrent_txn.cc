/// Concurrent transaction throughput on disjoint branches.
///
/// The striped write path promises that transactions on branches mapping
/// to different stripes never contend: each writer thread owns one
/// pre-created branch and pushes transactions of fresh inserts through
/// Begin/Insert/Commit while the sweep raises the thread count
/// 1 -> 2 -> 4 -> 8 -> 16 -> 32. With the old engine-wide write mutex the
/// aggregate txns/sec stayed flat (every ApplyBatch serialized); with
/// per-stripe locking it should scale with the host's cores until the
/// memory system saturates.
///
/// Each result line is machine-readable (one JSON object per line) so the
/// run_bench.sh wrapper's output array doubles as structured data:
///
///   {"engine": "TF", "threads": 16, "txns": 320, "rows": 16000,
///    "seconds": 0.42, "txns_per_sec": 761.9, "speedup_vs_1": 6.8}
///
/// host_cores reports std::thread::hardware_concurrency(): on a 1-core
/// container the sweep still proves correctness under contention (and the
/// absence of deadlock), but real parallel speedup needs real cores —
/// interpret speedup_vs_1 against that number, not in isolation.
///
/// DECIBEL_SCALE multiplies the transactions per thread (default 20 txns
/// of 50 rows each).

#include <cinttypes>

#include <thread>
#include <vector>

#include "bench_common.h"

namespace decibel {
namespace bench {
namespace {

struct SweepPoint {
  int threads = 0;
  uint64_t txns = 0;
  uint64_t rows = 0;
  double seconds = 0;
  double TxnsPerSec() const {
    return seconds > 0 ? static_cast<double>(txns) / seconds : 0;
  }
};

/// One measured run: \p threads writers, each on its own branch, each
/// committing \p txns_per_thread transactions of \p rows_per_txn inserts.
Result<SweepPoint> RunPoint(EngineType engine, int threads,
                            uint64_t txns_per_thread, uint64_t rows_per_txn) {
  DECIBEL_ASSIGN_OR_RETURN(ScopedDb scoped, FreshDb(engine, "conc_txn"));
  Decibel* db = scoped.db.get();

  // A little shared ancestry so the branches are real branches, not
  // independent tables.
  Record rec(&db->schema());
  for (int64_t pk = 0; pk < 100; ++pk) {
    rec.SetPk(pk);
    rec.SetInt32(1, 0);
    DECIBEL_RETURN_NOT_OK(db->InsertInto(kMasterBranch, rec));
  }
  std::vector<BranchId> branches;
  Session s = db->NewSession();
  for (int t = 0; t < threads; ++t) {
    DECIBEL_RETURN_NOT_OK(db->Use(&s, kMasterBranch));
    DECIBEL_ASSIGN_OR_RETURN(BranchId b,
                             db->Branch("w" + std::to_string(t), &s));
    branches.push_back(b);
  }

  std::vector<Status> failures(threads, Status::OK());
  std::vector<std::thread> workers;
  workers.reserve(threads);
  Stopwatch timer;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Record row(&db->schema());
      const int64_t base = 1000 + static_cast<int64_t>(t) * 1000000;
      for (uint64_t round = 0; round < txns_per_thread; ++round) {
        auto txn = db->Begin(branches[t]);
        if (!txn.ok()) {
          failures[t] = txn.status();
          return;
        }
        txn->batch()->Reserve(rows_per_txn);
        for (uint64_t i = 0; i < rows_per_txn; ++i) {
          row.SetPk(base + static_cast<int64_t>(round * rows_per_txn + i));
          row.SetInt32(1, static_cast<int32_t>(round));
          Status st = txn->Insert(row);
          if (!st.ok()) {
            failures[t] = st;
            return;
          }
        }
        Status committed = txn->Commit();
        while (committed.IsAborted()) committed = txn->Commit();
        if (!committed.ok()) {
          failures[t] = committed;
          return;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  SweepPoint point;
  point.seconds = timer.ElapsedSeconds();
  for (const Status& st : failures) DECIBEL_RETURN_NOT_OK(st);

  point.threads = threads;
  point.txns = txns_per_thread * static_cast<uint64_t>(threads);
  point.rows = point.txns * rows_per_txn;

  // Correctness gate: every branch holds exactly its own writes.
  for (int t = 0; t < threads; ++t) {
    DECIBEL_ASSIGN_OR_RETURN(auto cursor,
                             db->NewScan(ScanSpec::Branch(branches[t])));
    ScanRow row_ref;
    uint64_t count = 0;
    while (cursor->Next(&row_ref)) ++count;
    DECIBEL_RETURN_NOT_OK(cursor->status());
    if (count != 100 + txns_per_thread * rows_per_txn) {
      return Status::Corruption("branch " + std::to_string(branches[t]) +
                                " lost rows: " + std::to_string(count));
    }
  }
  return point;
}

void Run() {
  const uint64_t txns_per_thread =
      20 * static_cast<uint64_t>(ScaleFactor());
  const uint64_t rows_per_txn = 50;
  const int sweep[] = {1, 2, 4, 8, 16, 32};
  const unsigned host_cores = std::thread::hardware_concurrency();

  printf("=== concurrent disjoint-branch transactions "
         "(%" PRIu64 " txns x %" PRIu64 " rows per thread, host_cores=%u) "
         "===\n",
         txns_per_thread, rows_per_txn, host_cores);
  printf("{\"host_cores\": %u, \"txns_per_thread\": %" PRIu64
         ", \"rows_per_txn\": %" PRIu64 "}\n",
         host_cores, txns_per_thread, rows_per_txn);

  for (EngineType engine : AllEngines()) {
    double base_txns_per_sec = 0;
    for (int threads : sweep) {
      // Best of three: each point is a fresh database and a full sweep of
      // its threads, so the minimum wall time is the least-noise run.
      SweepPoint best;
      for (int rep = 0; rep < 3; ++rep) {
        BENCH_ASSIGN_OR_DIE(
            SweepPoint p,
            RunPoint(engine, threads, txns_per_thread, rows_per_txn));
        if (rep == 0 || p.seconds < best.seconds) best = p;
      }
      if (threads == 1) base_txns_per_sec = best.TxnsPerSec();
      const double speedup = base_txns_per_sec > 0
                                 ? best.TxnsPerSec() / base_txns_per_sec
                                 : 0.0;
      printf("{\"engine\": \"%s\", \"threads\": %d, \"txns\": %" PRIu64
             ", \"rows\": %" PRIu64
             ", \"seconds\": %.4f, \"txns_per_sec\": %.1f, "
             "\"speedup_vs_1\": %.2f}\n",
             ShortName(engine), threads, best.txns, best.rows, best.seconds,
             best.TxnsPerSec(), speedup);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace decibel

int main() {
  decibel::bench::Run();
  return 0;
}
