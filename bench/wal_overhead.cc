/// WAL overhead: durability-mode sweep + recovery time per WAL MB.
///
/// Part 1 loads the same batched workload under each durability level —
/// no WAL at all (the in-memory baseline), then SyncMode kNone / kFlush /
/// kFsync — and reports throughput, the WAL bytes written, and the
/// slowdown against the baseline. This prices the write-ahead log: kNone
/// is the pure framing/copy cost, kFlush adds a page-cache push per
/// commit, kFsync adds the group-committed fdatasync that makes
/// acknowledged commits survive power loss.
///
/// Part 2 measures cold-start recovery: a crash-consistent snapshot of a
/// live database (taken without closing it, so the WAL tail is intact) is
/// reopened, and the replay cost is reported as seconds per WAL MB across
/// growing log sizes.
///
/// DECIBEL_SCALE multiplies the record counts (default 20k / mode).

#include <sys/stat.h>

#include "bench_common.h"

namespace decibel {
namespace bench {
namespace {

Status CopyDirRecursive(const std::string& src, const std::string& dst) {
  DECIBEL_RETURN_NOT_OK(CreateDir(dst));
  DECIBEL_ASSIGN_OR_RETURN(std::vector<std::string> names, ListDir(src));
  for (const std::string& name : names) {
    const std::string from = JoinPath(src, name);
    const std::string to = JoinPath(dst, name);
    struct ::stat st;
    if (::stat(from.c_str(), &st) != 0) {
      return Status::IOError("stat " + from);
    }
    if (S_ISDIR(st.st_mode)) {
      DECIBEL_RETURN_NOT_OK(CopyDirRecursive(from, to));
    } else {
      DECIBEL_ASSIGN_OR_RETURN(std::string data, ReadFileToString(from));
      DECIBEL_RETURN_NOT_OK(WriteStringToFile(to, data));
    }
  }
  return Status::OK();
}

struct Mode {
  const char* name;
  bool durable;
  wal::SyncMode sync;
};

Result<ScopedDb> FreshDurableDb(const Mode& mode, const std::string& tag) {
  static int counter = 0;
  ScopedDb scoped;
  scoped.path = "/tmp/decibel_bench_" + std::to_string(::getpid()) + "_" +
                tag + "_" + std::to_string(counter++);
  DECIBEL_RETURN_NOT_OK(RemoveDirRecursive(scoped.path));
  DecibelOptions options;
  options.engine = EngineType::kHybrid;
  options.page_size = 64 << 10;
  options.buffer_pool_bytes = 64 << 20;
  if (mode.durable) {
    options.data_dir = scoped.path;
    options.sync_mode = mode.sync;
  }
  DECIBEL_ASSIGN_OR_RETURN(scoped.db,
                           Decibel::Open(scoped.path, BenchSchema(), options));
  return scoped;
}

/// Batched load into master: transactions of \p batch records, a version
/// commit per transaction. Returns elapsed seconds.
Result<double> Load(Decibel* db, uint64_t records, uint64_t batch) {
  Stopwatch watch;
  uint64_t pk = 0;
  while (pk < records) {
    DECIBEL_ASSIGN_OR_RETURN(Transaction txn, db->Begin(kMasterBranch));
    for (uint64_t i = 0; i < batch && pk < records; ++i, ++pk) {
      Record rec(&db->schema());
      rec.SetPk(static_cast<int64_t>(pk));
      rec.SetInt32(1, static_cast<int32_t>(pk));
      DECIBEL_RETURN_NOT_OK(txn.Insert(rec));
    }
    DECIBEL_RETURN_NOT_OK(txn.Commit());
    DECIBEL_RETURN_NOT_OK(db->CommitBranch(kMasterBranch).status());
  }
  return watch.ElapsedSeconds();
}

void RunSyncModeSweep(uint64_t records) {
  const Mode kModes[] = {
      {"off", false, wal::SyncMode::kNone},
      {"none", true, wal::SyncMode::kNone},
      {"flush", true, wal::SyncMode::kFlush},
      {"fsync", true, wal::SyncMode::kFsync},
  };
  printf("=== WAL overhead: sync-mode sweep (%llu records, hybrid) ===\n",
         static_cast<unsigned long long>(records));
  printf("%-6s %10s %12s %9s %9s\n", "mode", "seconds", "records/s",
         "wal_mb", "vs_off");
  double baseline = 0;
  for (const Mode& mode : kModes) {
    BENCH_ASSIGN_OR_DIE(ScopedDb scoped, FreshDurableDb(mode, "wal_sweep"));
    BENCH_ASSIGN_OR_DIE(double seconds,
                        Load(scoped.db.get(), records, /*batch=*/500));
    const double wal_mb = Mb(DirSizeBytes(JoinPath(scoped.path, "wal")));
    if (!mode.durable) baseline = seconds;
    printf("%-6s %10.3f %12.0f %9.2f %8.2fx\n", mode.name, seconds,
           records / seconds, wal_mb,
           baseline > 0 ? seconds / baseline : 1.0);
  }
}

void RunRecoverySweep(uint64_t base_records) {
  printf("\n=== recovery time per WAL MB (crash-consistent reopen) ===\n");
  printf("%10s %9s %12s %10s\n", "records", "wal_mb", "open_sec", "mb/s");
  for (int mult : {1, 4, 16}) {
    const uint64_t records = base_records * static_cast<uint64_t>(mult);
    const Mode mode = {"flush", true, wal::SyncMode::kFlush};
    BENCH_ASSIGN_OR_DIE(ScopedDb live, FreshDurableDb(mode, "wal_recov"));
    BENCH_ASSIGN_OR_DIE(double unused,
                        Load(live.db.get(), records, /*batch=*/500));
    (void)unused;
    // Snapshot while the database is open: the WAL tail has not been
    // folded into a checkpoint, so reopening must replay all of it.
    ScopedDb crash;
    crash.path = live.path + "_crash";
    RemoveDirRecursive(crash.path).ok();
    BENCH_CHECK_OK(CopyDirRecursive(live.path, crash.path));
    const double wal_mb = Mb(DirSizeBytes(JoinPath(crash.path, "wal")));

    DecibelOptions options;
    options.engine = EngineType::kHybrid;
    options.page_size = 64 << 10;
    options.buffer_pool_bytes = 64 << 20;
    options.data_dir = crash.path;
    options.sync_mode = wal::SyncMode::kFlush;
    Stopwatch watch;
    BENCH_ASSIGN_OR_DIE(crash.db, Decibel::Open(crash.path, options));
    const double open_sec = watch.ElapsedSeconds();
    printf("%10llu %9.2f %12.3f %10.1f\n",
           static_cast<unsigned long long>(records), wal_mb, open_sec,
           open_sec > 0 ? wal_mb / open_sec : 0.0);
  }
}

void Run() {
  const uint64_t records = 20000 * static_cast<uint64_t>(ScaleFactor());
  RunSyncModeSweep(records);
  RunRecoverySweep(records / 4);
}

}  // namespace
}  // namespace bench
}  // namespace decibel

int main() {
  decibel::bench::Run();
  return 0;
}
