/// Figure 10: Query 4 (scan all branch heads with a non-selective
/// predicate, branch-annotated output) across the four strategies.
///
/// Expected shape (§5.2): tuple-first and hybrid are comparable and best
/// (one pass with bitmap annotations); version-first is worst, especially
/// under curation where merges force its two-pass winner machinery; on
/// flat, hybrid edges out tuple-first thanks to its smaller per-segment
/// indexes.

#include "bench_common.h"

namespace decibel {
namespace bench {
namespace {

void Run() {
  const int num_branches = EnvInt("DECIBEL_BRANCHES", 10);
  const std::vector<std::pair<const char*, Strategy>> cases = {
      {"deep", Strategy::kDeep},
      {"flat", Strategy::kFlat},
      {"sci", Strategy::kScience},
      {"cur", Strategy::kCuration},
  };

  printf("=== Figure 10: Query 4 (all-heads scan) latency (%d branches) "
         "===\n",
         num_branches);
  printf("%-8s %12s %12s %12s\n", "case", "VF (ms)", "TF (ms)", "HY (ms)");

  for (const auto& [label, strategy] : cases) {
    double ms[3];
    for (size_t e = 0; e < AllEngines().size(); ++e) {
      BENCH_ASSIGN_OR_DIE(ScopedDb scoped,
                          FreshDb(AllEngines()[e], "fig10"));
      WorkloadConfig config = BaseConfig(strategy, num_branches);
      BENCH_ASSIGN_OR_DIE(LoadedWorkload w,
                          LoadWorkload(scoped.db.get(), config));
      (void)w;
      BENCH_ASSIGN_OR_DIE(TimedQuery q4, TimedQ4(scoped.db.get()));
      ms[e] = q4.seconds * 1e3;
    }
    printf("%-8s %12.2f %12.2f %12.2f\n", label, ms[0], ms[1], ms[2]);
  }
}

}  // namespace
}  // namespace bench
}  // namespace decibel

int main() {
  decibel::bench::Run();
  return 0;
}
