/// MergeSpec/diff-engine benchmark: per-engine latency of the three
/// commit-addressed merge-walk consumers — dry-run PreviewMerge, executed
/// Merge (WriteBatch-routed, WAL-framed when durable), and the structured
/// DiffCommits cursor — over a deep-history branch pair where the two
/// sides touch only a small fraction of a large base table.
///
/// This is the shape that exposed the version-first engine's old ~9x gap:
/// its naive walk re-read every segment of both branch chains plus the
/// whole lca chain, while the bitmap engines restricted work with bitmap
/// algebra. The ancestry-aware walk (base-coverage skipping + per-side
/// suffix scans + one early-exiting base pass) is expected to keep VF
/// within ~2x of TF here; the acceptance gate reads the printed ratio.

#include "bench_common.h"
#include "common/stopwatch.h"
#include "engine/merge_spec.h"

namespace decibel {
namespace bench {
namespace {

struct Prepared {
  ScopedDb scoped;
  BranchId dev = kInvalidBranch;
  CommitId head_master = kInvalidCommit;
  CommitId head_dev = kInvalidCommit;
};

/// Builds the measured history: \p base_records on master committed in
/// pages, a dev branch at the head, then \p touched scattered updates on
/// each side (disjoint pk ranges except an overlapping conflict window)
/// plus a commit per side so diffs address real commits.
Result<Prepared> Prepare(EngineType engine, uint64_t base_records,
                         uint64_t touched) {
  Prepared p;
  DECIBEL_ASSIGN_OR_RETURN(p.scoped, FreshDb(engine, "merge_diff"));
  Decibel* db = p.scoped.db.get();
  const Schema& schema = db->schema();

  Record rec(&schema);
  {
    WriteBatch batch(&schema);
    for (uint64_t i = 0; i < base_records; ++i) {
      rec.SetPk(static_cast<int64_t>(i));
      rec.SetInt32(1, static_cast<int32_t>(i));
      batch.Insert(rec);
      if (batch.size() == 1000 || i + 1 == base_records) {
        DECIBEL_RETURN_NOT_OK(db->ApplyBatch(kMasterBranch, batch));
        batch.Clear();
      }
    }
  }
  DECIBEL_ASSIGN_OR_RETURN(CommitId base, db->CommitBranch(kMasterBranch));
  DECIBEL_ASSIGN_OR_RETURN(p.dev, db->BranchAt("dev", base));

  // Scatter the touched keys across the whole pk range so tuple-first
  // pays interleaved pages and version-first pays suffix locality.
  const uint64_t stride = std::max<uint64_t>(1, base_records / touched);
  const uint64_t overlap = touched / 8;  // conflicting window
  for (uint64_t i = 0; i < touched; ++i) {
    const int64_t pk = static_cast<int64_t>((i * stride) % base_records);
    rec.SetPk(pk);
    rec.SetInt32(1, static_cast<int32_t>(1000000 + i));
    DECIBEL_RETURN_NOT_OK(db->UpdateIn(kMasterBranch, rec));
    if (i < overlap) {
      rec.SetInt32(1, static_cast<int32_t>(2000000 + i));
      DECIBEL_RETURN_NOT_OK(db->UpdateIn(p.dev, rec));
    } else {
      // Disjoint dev-side edits on the neighbouring key.
      rec.SetPk((pk + 1) % static_cast<int64_t>(base_records));
      rec.SetInt32(1, static_cast<int32_t>(3000000 + i));
      DECIBEL_RETURN_NOT_OK(db->UpdateIn(p.dev, rec));
    }
  }
  DECIBEL_ASSIGN_OR_RETURN(p.head_master, db->CommitBranch(kMasterBranch));
  DECIBEL_ASSIGN_OR_RETURN(p.head_dev, db->CommitBranch(p.dev));
  return p;
}

struct Timings {
  double preview_ms = 0;
  double diff_ms = 0;
  double merge_ms = 0;
  uint64_t rows = 0;
  uint64_t conflicts = 0;
};

Result<Timings> Measure(EngineType engine, uint64_t base_records,
                        uint64_t touched, int reps) {
  Timings best;
  for (int rep = 0; rep < reps; ++rep) {
    DECIBEL_ASSIGN_OR_RETURN(Prepared p,
                             Prepare(engine, base_records, touched));
    Decibel* db = p.scoped.db.get();
    MergeSpec spec = MergeSpec::Branches(kMasterBranch, p.dev)
                         .WithPolicy(MergePolicy::kThreeWayLeft);

    Stopwatch timer;
    DECIBEL_ASSIGN_OR_RETURN(auto preview, db->PreviewMerge(spec));
    uint64_t rows = 0;
    while (preview->Next() != nullptr) ++rows;
    DECIBEL_RETURN_NOT_OK(preview->status());
    const double preview_ms = timer.ElapsedMillis();

    timer.Restart();
    DECIBEL_ASSIGN_OR_RETURN(auto diff,
                             db->DiffCommits(p.head_master, p.head_dev));
    while (diff->Next() != nullptr) {
    }
    DECIBEL_RETURN_NOT_OK(diff->status());
    const double diff_ms = timer.ElapsedMillis();

    timer.Restart();
    DECIBEL_ASSIGN_OR_RETURN(MergeInfo merged, db->Merge(spec));
    const double merge_ms = timer.ElapsedMillis();

    if (rep == 0 || merge_ms < best.merge_ms) {
      best.preview_ms = preview_ms;
      best.diff_ms = diff_ms;
      best.merge_ms = merge_ms;
      best.rows = rows;
      best.conflicts = merged.result.conflicts;
    }
  }
  return best;
}

void Run() {
  const uint64_t base_records =
      static_cast<uint64_t>(20000) * ScaleFactor();
  const uint64_t touched = base_records / 20;  // 5% of the table changed
  const int reps = 3;

  printf("=== MergeSpec engine: preview / diff / merge latency "
         "(%llu-record base, %llu touched keys per side, best of %d) ===\n",
         static_cast<unsigned long long>(base_records),
         static_cast<unsigned long long>(touched), reps);
  printf("%-4s %14s %14s %14s %10s %10s\n", "eng", "preview (ms)",
         "diff (ms)", "merge (ms)", "rows", "conflicts");

  double merge_ms[3] = {0, 0, 0};
  int idx = 0;
  for (EngineType engine : AllEngines()) {
    BENCH_ASSIGN_OR_DIE(Timings t,
                        Measure(engine, base_records, touched, reps));
    printf("%-4s %14.2f %14.2f %14.2f %10llu %10llu\n", ShortName(engine),
           t.preview_ms, t.diff_ms, t.merge_ms,
           static_cast<unsigned long long>(t.rows),
           static_cast<unsigned long long>(t.conflicts));
    merge_ms[idx++] = t.merge_ms;
  }
  // AllEngines() order is VF, TF, HY.
  if (merge_ms[1] > 0) {
    printf("\nVF/TF merge ratio: %.2fx (ancestry-aware walk; was ~9x "
           "before segment skipping)\n",
           merge_ms[0] / merge_ms[1]);
  }
}

}  // namespace
}  // namespace bench
}  // namespace decibel

int main() {
  decibel::bench::Run();
  return 0;
}
