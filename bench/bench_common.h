#ifndef DECIBEL_BENCH_BENCH_COMMON_H_
#define DECIBEL_BENCH_BENCH_COMMON_H_

/// Shared infrastructure for the paper-reproduction benchmarks. Every
/// binary in bench/ regenerates one table or figure from §5 of the paper
/// at laptop scale: the paper ran 100 GB datasets with 1 KB records on a
/// server; these default to a few thousand ~110-byte records per branch so
/// the whole suite finishes in minutes. Scale up with
///
///   DECIBEL_SCALE=N      multiplies operations per branch (default 1)
///   DECIBEL_BRANCHES=N   overrides the branch counts where meaningful
///
/// Absolute numbers will differ from the paper; the *shape* (which engine
/// wins, where, by roughly how much) is what EXPERIMENTS.md compares.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "benchlib/workload.h"
#include "common/io.h"
#include "common/stopwatch.h"
#include "core/decibel.h"

namespace decibel {
namespace bench {

inline int EnvInt(const char* name, int fallback) {
  const char* v = getenv(name);
  return v != nullptr ? atoi(v) : fallback;
}

inline int ScaleFactor() { return std::max(1, EnvInt("DECIBEL_SCALE", 1)); }

/// Benchmark schema: 25 x 4-byte integer columns (scaled down from the
/// paper's 250), ~110-byte records.
inline Schema BenchSchema() { return Schema::MakeBenchmark(25, 4); }

/// Base operations per branch before scaling.
inline uint64_t BaseOps() { return 2000; }

struct ScopedDb {
  std::string path;
  std::unique_ptr<Decibel> db;

  ScopedDb() = default;
  ScopedDb(ScopedDb&& other) noexcept
      : path(std::move(other.path)), db(std::move(other.db)) {
    other.path.clear();
  }
  ScopedDb& operator=(ScopedDb&& other) noexcept {
    path = std::move(other.path);
    db = std::move(other.db);
    other.path.clear();
    return *this;
  }
  ScopedDb(const ScopedDb&) = delete;
  ScopedDb& operator=(const ScopedDb&) = delete;

  ~ScopedDb() {
    db.reset();
    if (!path.empty()) RemoveDirRecursive(path).ok();
  }
};

/// Opens a fresh database for \p engine under /tmp. \p compress_pages
/// routes sealed pages through the columnar page codec.
inline Result<ScopedDb> FreshDb(EngineType engine, const std::string& tag,
                                int scan_threads = 0,
                                bool compress_pages = false) {
  static int counter = 0;
  ScopedDb scoped;
  scoped.path = "/tmp/decibel_bench_" + std::to_string(::getpid()) + "_" +
                tag + "_" + std::to_string(counter++);
  DECIBEL_RETURN_NOT_OK(RemoveDirRecursive(scoped.path));
  DecibelOptions options;
  options.engine = engine;
  options.page_size = 64 << 10;  // 64 KiB pages at this record scale
  options.buffer_pool_bytes = 64 << 20;
  options.scan_threads = scan_threads;
  options.compress_pages = compress_pages;
  DECIBEL_ASSIGN_OR_RETURN(scoped.db,
                           Decibel::Open(scoped.path, BenchSchema(), options));
  return scoped;
}

inline WorkloadConfig BaseConfig(Strategy strategy, int num_branches) {
  WorkloadConfig config;
  config.strategy = strategy;
  config.num_branches = num_branches;
  config.ops_per_branch = BaseOps() * static_cast<uint64_t>(ScaleFactor());
  config.commit_every = 500;
  config.seed = 42;
  return config;
}

inline const std::vector<EngineType>& AllEngines() {
  static const std::vector<EngineType> kEngines = {
      EngineType::kVersionFirst, EngineType::kTupleFirst,
      EngineType::kHybrid};
  return kEngines;
}

inline const char* ShortName(EngineType engine) {
  switch (engine) {
    case EngineType::kVersionFirst:
      return "VF";
    case EngineType::kTupleFirst:
      return "TF";
    case EngineType::kHybrid:
      return "HY";
  }
  return "?";
}

inline double Mb(uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

// ---------------------------------------------------- load-path measurement

/// One row of a batched-vs-per-op load comparison (bench/load_paths.cc).
struct LoadPathResult {
  double seconds = 0;
  uint64_t records = 0;
  double RecordsPerSec() const {
    return seconds > 0 ? static_cast<double>(records) / seconds : 0;
  }
};

/// Loads \p num_records fresh records into master one record at a time —
/// each insert is a one-op transaction paying its own lock round-trip and
/// engine dispatch.
inline Result<LoadPathResult> LoadMasterPerOp(Decibel* db,
                                              uint64_t num_records) {
  LoadPathResult out;
  out.records = num_records;
  Record rec(&db->schema());
  Stopwatch timer;
  for (uint64_t i = 0; i < num_records; ++i) {
    rec.SetPk(static_cast<int64_t>(i));
    rec.SetInt32(1, static_cast<int32_t>(i));
    DECIBEL_RETURN_NOT_OK(db->InsertInto(kMasterBranch, rec));
  }
  out.seconds = timer.ElapsedSeconds();
  return out;
}

/// Loads \p num_records fresh records into master through WriteBatch
/// transactions of \p batch_size ops: one lock acquisition and one
/// engine ApplyBatch pass per transaction.
inline Result<LoadPathResult> LoadMasterBatched(Decibel* db,
                                                uint64_t num_records,
                                                uint64_t batch_size) {
  LoadPathResult out;
  out.records = num_records;
  Record rec(&db->schema());
  Stopwatch timer;
  for (uint64_t start = 0; start < num_records; start += batch_size) {
    const uint64_t end = std::min(num_records, start + batch_size);
    DECIBEL_ASSIGN_OR_RETURN(Transaction txn, db->Begin(kMasterBranch));
    txn.batch()->Reserve(end - start);
    for (uint64_t i = start; i < end; ++i) {
      rec.SetPk(static_cast<int64_t>(i));
      rec.SetInt32(1, static_cast<int32_t>(i));
      DECIBEL_RETURN_NOT_OK(txn.Insert(rec));
    }
    DECIBEL_RETURN_NOT_OK(txn.Commit());
  }
  out.seconds = timer.ElapsedSeconds();
  return out;
}

/// Dies with a message on error — benchmarks have no one to report to.
#define BENCH_CHECK_OK(expr)                                          \
  do {                                                                \
    auto _s = (expr);                                                 \
    if (!_s.ok()) {                                                   \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__,   \
                   _s.ToString().c_str());                            \
      std::exit(1);                                                   \
    }                                                                 \
  } while (0)

#define BENCH_ASSIGN_OR_DIE(lhs, rexpr)                               \
  BENCH_ASSIGN_OR_DIE_IMPL(                                           \
      DECIBEL_ASSIGN_OR_RETURN_NAME(_bench_tmp_, __COUNTER__), lhs, rexpr)

#define BENCH_ASSIGN_OR_DIE_IMPL(tmp, lhs, rexpr)                     \
  auto tmp = (rexpr);                                                 \
  if (!tmp.ok()) {                                                    \
    std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__,     \
                 tmp.status().ToString().c_str());                    \
    std::exit(1);                                                     \
  }                                                                   \
  lhs = std::move(tmp).MoveValueUnsafe();

}  // namespace bench
}  // namespace decibel

#endif  // DECIBEL_BENCH_BENCH_COMMON_H_
