/// Figure 7: Query 1 (single-branch scan) across branching strategies and
/// scanned branches. The bars of the paper: deep/tail, flat/child (plus a
/// clustered-load tuple-first variant), science young/old active branch,
/// curation feature/dev/mainline.
///
/// Expected shape (§5.2): tuple-first pays for interleaving on flat and
/// science; version-first and hybrid degrade as merge complexity grows in
/// curation (feature < dev < mainline); hybrid is best-or-tied everywhere.

#include "bench_common.h"

namespace decibel {
namespace bench {
namespace {

struct Case {
  const char* label;
  Strategy strategy;
  int which;  // strategy-specific target selector
};

BranchId PickTarget(const LoadedWorkload& w, int which, Random* rng) {
  switch (w.config.strategy) {
    case Strategy::kDeep:
      return w.tail;
    case Strategy::kFlat:
      return w.children.empty()
                 ? w.mainline
                 : w.children[rng->Uniform(w.children.size())];
    case Strategy::kScience:
      if (w.active.empty()) return w.mainline;
      return which == 0 ? w.active.back() : w.active.front();
    case Strategy::kCuration:
      switch (which) {
        case 0:  // random feature branch
          return w.feature_branches.empty()
                     ? w.mainline
                     : w.feature_branches[rng->Uniform(
                           w.feature_branches.size())];
        case 1:  // random dev branch
          return w.dev_branches.empty()
                     ? w.mainline
                     : w.dev_branches[rng->Uniform(w.dev_branches.size())];
        default:
          return w.mainline;
      }
  }
  return w.mainline;
}

void Run() {
  const int num_branches = EnvInt("DECIBEL_BRANCHES", 10);
  const std::vector<Case> cases = {
      {"deep/tail", Strategy::kDeep, 0},
      {"flat/child", Strategy::kFlat, 0},
      {"sci/young", Strategy::kScience, 0},
      {"sci/old", Strategy::kScience, 1},
      {"cur/feature", Strategy::kCuration, 0},
      {"cur/dev", Strategy::kCuration, 1},
      {"cur/mainline", Strategy::kCuration, 2},
  };

  printf("=== Figure 7: Query 1 latency by strategy/branch (%d branches) "
         "===\n",
         num_branches);
  printf("%-14s %10s %10s %10s %12s\n", "case", "VF (ms)", "TF (ms)",
         "HY (ms)", "TF-clust(ms)");

  for (const Case& c : cases) {
    double ms[3] = {0, 0, 0};
    double clustered_ms = -1;
    for (size_t e = 0; e < AllEngines().size(); ++e) {
      BENCH_ASSIGN_OR_DIE(ScopedDb scoped,
                          FreshDb(AllEngines()[e], "fig7"));
      WorkloadConfig config = BaseConfig(c.strategy, num_branches);
      BENCH_ASSIGN_OR_DIE(LoadedWorkload w,
                          LoadWorkload(scoped.db.get(), config));
      Random rng(7);
      BENCH_ASSIGN_OR_DIE(
          TimedQuery q1,
          TimedQ1(scoped.db.get(), PickTarget(w, c.which, &rng)));
      ms[e] = q1.seconds * 1e3;
    }
    // The clustered-load variant of tuple-first (flat only: the other
    // strategies define their own operation order).
    if (c.strategy == Strategy::kFlat) {
      BENCH_ASSIGN_OR_DIE(ScopedDb scoped,
                          FreshDb(EngineType::kTupleFirst, "fig7c"));
      WorkloadConfig config = BaseConfig(c.strategy, num_branches);
      config.clustered_load = true;
      BENCH_ASSIGN_OR_DIE(LoadedWorkload w,
                          LoadWorkload(scoped.db.get(), config));
      Random rng(7);
      BENCH_ASSIGN_OR_DIE(
          TimedQuery q1,
          TimedQ1(scoped.db.get(), PickTarget(w, c.which, &rng)));
      clustered_ms = q1.seconds * 1e3;
    }
    if (clustered_ms >= 0) {
      printf("%-14s %10.2f %10.2f %10.2f %12.2f\n", c.label, ms[0], ms[1],
             ms[2], clustered_ms);
    } else {
      printf("%-14s %10.2f %10.2f %10.2f %12s\n", c.label, ms[0], ms[1],
             ms[2], "-");
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace decibel

int main() {
  decibel::bench::Run();
  return 0;
}
