/// Scan pushdown, segment/page skipping, and point lookups: what the
/// unified read path plus the columnar statistics subsystem buy.
///
/// Three comparisons per engine over a pre-loaded master branch:
///
///  1. Point lookup — the seed-era way (full branch scan iteration until
///     the key turns up) vs Decibel::Get. All three engines now answer
///     Get through a pk index (version-first gained one with the
///     columnar subsystem); the summary line reports the VF/TF ratio the
///     release gate watches.
///
///  2. Filtered scan, selectivity sweep — "filter on top" (pull every
///     row through the cursor boundary, test in the client) vs the same
///     predicate pushed into the engine. Pushdown now consults zone maps
///     before touching pages, so at high selectivity most pages are
///     skipped without decoding; the per-row counters report how many
///     segments/pages were skipped and the bytes actually read.
///
///  3. Compressed-scan equivalence — the same content loaded with
///     compress_pages on and off must scan byte-identically; the
///     greppable "compressed scan matches uncompressed" verdict per
///     engine feeds the release gate.
///
/// Caches are warmed before the measured runs (one throwaway full scan):
/// both paths read the same pages through the same buffer pool, and the
/// contrast under test is the CPU read path plus skipping, not disk.
///
/// DECIBEL_SCALE multiplies the record count (default 1M records).

#include <cinttypes>

#include <map>

#include "bench_common.h"
#include "query/predicate.h"

namespace decibel {
namespace bench {
namespace {

/// c1 = record index at load time, so "c1 < k" selects exactly k rows
/// and page zone maps over c1 are perfectly selective. c2 cycles through
/// a small domain so sealed pages compress under the columnar codec.
Result<uint64_t> LoadSequential(Decibel* db, uint64_t num_records) {
  Record rec(&db->schema());
  constexpr uint64_t kBatch = 10000;
  for (uint64_t start = 0; start < num_records; start += kBatch) {
    const uint64_t end = std::min(num_records, start + kBatch);
    DECIBEL_ASSIGN_OR_RETURN(Transaction txn, db->Begin(kMasterBranch));
    txn.batch()->Reserve(end - start);
    for (uint64_t i = start; i < end; ++i) {
      rec.SetPk(static_cast<int64_t>(i));
      rec.SetInt32(1, static_cast<int32_t>(i));
      rec.SetInt32(2, static_cast<int32_t>(i % 97));
      DECIBEL_RETURN_NOT_OK(txn.Insert(rec));
    }
    DECIBEL_RETURN_NOT_OK(txn.Commit());
  }
  DECIBEL_RETURN_NOT_OK(db->CommitBranch(kMasterBranch).status());
  return num_records;
}

/// Seed-era point lookup: scan the branch until the key shows up.
Result<double> TimeFullScanLookup(Decibel* db, const std::vector<int64_t>& pks) {
  Stopwatch timer;
  for (int64_t pk : pks) {
    DECIBEL_ASSIGN_OR_RETURN(auto it,
                             db->NewScan(ScanSpec::Branch(kMasterBranch)));
    ScanRow row;
    bool found = false;
    while (it->Next(&row)) {
      if (row.record.pk() == pk) {
        found = true;
        break;
      }
    }
    DECIBEL_RETURN_NOT_OK(it->status());
    if (!found) return Status::NotFound("lookup lost pk");
  }
  return timer.ElapsedSeconds() / static_cast<double>(pks.size());
}

Result<double> TimeGetLookup(Decibel* db, const std::vector<int64_t>& pks) {
  Stopwatch timer;
  for (int64_t pk : pks) {
    DECIBEL_ASSIGN_OR_RETURN(Record rec, db->Get(kMasterBranch, pk));
    (void)rec;
  }
  return timer.ElapsedSeconds() / static_cast<double>(pks.size());
}

/// Filter on top: an unfiltered cursor pulls every row; the client
/// evaluates the predicate.
Result<std::pair<double, uint64_t>> TimeFilterOnTop(Decibel* db,
                                                    const Predicate& pred) {
  Stopwatch timer;
  DECIBEL_ASSIGN_OR_RETURN(auto it,
                           db->NewScan(ScanSpec::Branch(kMasterBranch)));
  uint64_t matches = 0;
  ScanRow row;
  while (it->Next(&row)) {
    if (pred.Matches(row.record)) ++matches;
  }
  DECIBEL_RETURN_NOT_OK(it->status());
  return std::make_pair(timer.ElapsedSeconds(), matches);
}

struct PushdownResult {
  double seconds = 0;
  uint64_t matches = 0;
  ScanStats stats;
};

Result<PushdownResult> TimePushdown(Decibel* db, const Predicate& pred) {
  PushdownResult out;
  Stopwatch timer;
  DECIBEL_ASSIGN_OR_RETURN(
      auto cursor, db->NewScan(ScanSpec::Branch(kMasterBranch).Where(pred)));
  ScanRow row;
  while (cursor->Next(&row)) ++out.matches;
  DECIBEL_RETURN_NOT_OK(cursor->status());
  out.seconds = timer.ElapsedSeconds();
  out.stats = cursor->stats();
  return out;
}

/// Materializes every row of master as raw record bytes, keyed by pk.
Result<std::map<int64_t, std::string>> Snapshot(Decibel* db) {
  std::map<int64_t, std::string> rows;
  DECIBEL_ASSIGN_OR_RETURN(auto it,
                           db->NewScan(ScanSpec::Branch(kMasterBranch)));
  ScanRow row;
  while (it->Next(&row)) {
    rows[row.record.pk()] = row.record.data().ToString();
  }
  DECIBEL_RETURN_NOT_OK(it->status());
  return rows;
}

/// Loads the same content compressed and uncompressed and compares the
/// full-scan and pushdown-scan results byte for byte.
Result<bool> CompressedScansMatch(EngineType engine, uint64_t records) {
  DECIBEL_ASSIGN_OR_RETURN(ScopedDb plain, FreshDb(engine, "cmp_plain"));
  DECIBEL_ASSIGN_OR_RETURN(
      ScopedDb packed,
      FreshDb(engine, "cmp_packed", /*scan_threads=*/0,
              /*compress_pages=*/true));
  DECIBEL_RETURN_NOT_OK(LoadSequential(plain.db.get(), records).status());
  DECIBEL_RETURN_NOT_OK(LoadSequential(packed.db.get(), records).status());
  // A handful of updates and deletes so tombstones and rewritten tails
  // are part of the comparison.
  for (Decibel* db : {plain.db.get(), packed.db.get()}) {
    Record rec(&db->schema());
    for (int64_t pk = 100; pk < 130; ++pk) {
      rec.SetPk(pk);
      rec.SetInt32(1, -7);
      DECIBEL_RETURN_NOT_OK(db->UpdateIn(kMasterBranch, rec));
    }
    for (int64_t pk = 500; pk < 510; ++pk) {
      DECIBEL_RETURN_NOT_OK(db->DeleteFrom(kMasterBranch, pk));
    }
    DECIBEL_RETURN_NOT_OK(db->engine()->Flush());
  }
  DECIBEL_ASSIGN_OR_RETURN(auto a, Snapshot(plain.db.get()));
  DECIBEL_ASSIGN_OR_RETURN(auto b, Snapshot(packed.db.get()));
  if (a != b) return false;
  DECIBEL_ASSIGN_OR_RETURN(
      Predicate pred, Predicate::Compare(plain.db->schema(), "c1",
                                         CompareOp::kLt,
                                         static_cast<int64_t>(records) / 10));
  DECIBEL_ASSIGN_OR_RETURN(auto pa, TimePushdown(plain.db.get(), pred));
  DECIBEL_ASSIGN_OR_RETURN(auto pb, TimePushdown(packed.db.get(), pred));
  return pa.matches == pb.matches;
}

void Run() {
  const uint64_t records = 1000000 * static_cast<uint64_t>(ScaleFactor());
  const double selectivities[] = {0.001, 0.01, 0.10, 0.50};
  constexpr int kReps = 3;

  printf("=== scan pushdown + point lookups (%" PRIu64 " records) ===\n",
         records);

  double vf_get_us = 0, tf_get_us = 0, vf_best_speedup = 0;
  for (EngineType engine : AllEngines()) {
    BENCH_ASSIGN_OR_DIE(ScopedDb scoped, FreshDb(engine, "pushdown"));
    Decibel* db = scoped.db.get();
    BENCH_CHECK_OK(LoadSequential(db, records).status());

    // Warm the buffer pool so both sides measure the CPU path.
    BENCH_CHECK_OK(TimeFilterOnTop(db, Predicate()).status());

    // --- point lookups -------------------------------------------------
    std::vector<int64_t> scan_pks, get_pks;
    Random rng(7);
    for (int i = 0; i < 3; ++i) {
      scan_pks.push_back(static_cast<int64_t>(rng.Uniform(records)));
    }
    for (int i = 0; i < 2000; ++i) {
      get_pks.push_back(static_cast<int64_t>(rng.Uniform(records)));
    }
    double full_scan_s = 0, get_s = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      BENCH_ASSIGN_OR_DIE(double f, TimeFullScanLookup(db, scan_pks));
      BENCH_ASSIGN_OR_DIE(double g, TimeGetLookup(db, get_pks));
      if (rep == 0 || f < full_scan_s) full_scan_s = f;
      if (rep == 0 || g < get_s) get_s = g;
    }
    printf("%-4s lookup  full-scan %10.1f us   Get %8.2f us   speedup %8.1fx\n",
           ShortName(engine), full_scan_s * 1e6, get_s * 1e6,
           get_s > 0 ? full_scan_s / get_s : 0.0);
    if (engine == EngineType::kVersionFirst) vf_get_us = get_s * 1e6;
    if (engine == EngineType::kTupleFirst) tf_get_us = get_s * 1e6;

    // --- filtered scans ------------------------------------------------
    for (double sel : selectivities) {
      const int64_t threshold =
          static_cast<int64_t>(sel * static_cast<double>(records));
      BENCH_ASSIGN_OR_DIE(
          Predicate pred,
          Predicate::Compare(db->schema(), "c1", CompareOp::kLt, threshold));
      double top_s = 0, push_s = 0;
      uint64_t top_rows = 0;
      PushdownResult push;
      for (int rep = 0; rep < kReps; ++rep) {
        BENCH_ASSIGN_OR_DIE(auto top, TimeFilterOnTop(db, pred));
        BENCH_ASSIGN_OR_DIE(PushdownResult p, TimePushdown(db, pred));
        if (rep == 0 || top.first < top_s) top_s = top.first;
        if (rep == 0 || p.seconds < push_s) push_s = p.seconds;
        top_rows = top.second;
        push = p;
      }
      if (top_rows != push.matches) {
        fprintf(stderr, "FATAL: row mismatch (%" PRIu64 " vs %" PRIu64 ")\n",
                top_rows, push.matches);
        exit(1);
      }
      const double speedup = push_s > 0 ? top_s / push_s : 0.0;
      if (engine == EngineType::kVersionFirst && speedup > vf_best_speedup) {
        vf_best_speedup = speedup;
      }
      printf("%-4s scan sel=%5.1f%%  filter-on-top %8.2f ms   pushdown "
             "%8.2f ms   speedup %6.2fx   (%" PRIu64 " rows, %" PRIu64
             " segs + %" PRIu64 " pages skipped, %.1f MB read)\n",
             ShortName(engine), sel * 100, top_s * 1e3, push_s * 1e3,
             speedup, push.matches, push.stats.segments_skipped,
             push.stats.pages_skipped, Mb(push.stats.bytes_read));
    }
  }

  // --- compressed-scan equivalence (release-gated) ---------------------
  const uint64_t cmp_records = std::min<uint64_t>(records, 200000);
  for (EngineType engine : AllEngines()) {
    BENCH_ASSIGN_OR_DIE(bool match, CompressedScansMatch(engine, cmp_records));
    printf("%s compressed scan matches uncompressed: %s\n",
           ShortName(engine), match ? "yes" : "NO");
  }

  // Greppable summary lines for the release gate.
  printf("VF pushdown speedup: %.2fx\n", vf_best_speedup);
  printf("VF/TF Get ratio: %.2fx\n",
         tf_get_us > 0 ? vf_get_us / tf_get_us : 0.0);
}

}  // namespace
}  // namespace bench
}  // namespace decibel

int main() {
  decibel::bench::Run();
  return 0;
}
