/// Scan pushdown and point lookups: what the unified read path buys.
///
/// Two comparisons per engine over a pre-loaded master branch:
///
///  1. Point lookup — the seed-era way (full branch scan iteration until
///     the key turns up) vs Decibel::Get. Tuple-first and hybrid answer
///     Get through their pk indexes in O(1); version-first walks its
///     segment ancestry newest-to-oldest with early exit.
///
///  2. Filtered scan, selectivity sweep — "filter on top" (the seed-era
///     pattern: pull every row through the cursor boundary and test the
///     predicate in the client) vs the same predicate pushed into the
///     engine with NewScan. Pushdown evaluates
///     the comparison on the in-page record bytes inside the engine scan
///     loop, so non-matching rows never cross the cursor boundary.
///
/// Caches are warmed before the measured runs (one throwaway full scan):
/// both paths read the same pages through the same buffer pool, and the
/// contrast under test is the CPU read path, not disk.
///
/// DECIBEL_SCALE multiplies the record count (default 200k records).

#include <cinttypes>

#include "bench_common.h"
#include "query/predicate.h"

namespace decibel {
namespace bench {
namespace {

/// c1 = record index at load time, so "c1 < k" selects exactly k rows.
Result<uint64_t> LoadSequential(Decibel* db, uint64_t num_records) {
  Record rec(&db->schema());
  constexpr uint64_t kBatch = 10000;
  for (uint64_t start = 0; start < num_records; start += kBatch) {
    const uint64_t end = std::min(num_records, start + kBatch);
    DECIBEL_ASSIGN_OR_RETURN(Transaction txn, db->Begin(kMasterBranch));
    txn.batch()->Reserve(end - start);
    for (uint64_t i = start; i < end; ++i) {
      rec.SetPk(static_cast<int64_t>(i));
      rec.SetInt32(1, static_cast<int32_t>(i));
      DECIBEL_RETURN_NOT_OK(txn.Insert(rec));
    }
    DECIBEL_RETURN_NOT_OK(txn.Commit());
  }
  DECIBEL_RETURN_NOT_OK(db->CommitBranch(kMasterBranch).status());
  return num_records;
}

/// Seed-era point lookup: scan the branch until the key shows up.
Result<double> TimeFullScanLookup(Decibel* db, const std::vector<int64_t>& pks) {
  Stopwatch timer;
  for (int64_t pk : pks) {
    DECIBEL_ASSIGN_OR_RETURN(auto it,
                             db->NewScan(ScanSpec::Branch(kMasterBranch)));
    ScanRow row;
    bool found = false;
    while (it->Next(&row)) {
      if (row.record.pk() == pk) {
        found = true;
        break;
      }
    }
    DECIBEL_RETURN_NOT_OK(it->status());
    if (!found) return Status::NotFound("lookup lost pk");
  }
  return timer.ElapsedSeconds() / static_cast<double>(pks.size());
}

Result<double> TimeGetLookup(Decibel* db, const std::vector<int64_t>& pks) {
  Stopwatch timer;
  for (int64_t pk : pks) {
    DECIBEL_ASSIGN_OR_RETURN(Record rec, db->Get(kMasterBranch, pk));
    (void)rec;
  }
  return timer.ElapsedSeconds() / static_cast<double>(pks.size());
}

/// Filter on top: an unfiltered cursor pulls every row; the client
/// evaluates the predicate.
Result<std::pair<double, uint64_t>> TimeFilterOnTop(Decibel* db,
                                                    const Predicate& pred) {
  Stopwatch timer;
  DECIBEL_ASSIGN_OR_RETURN(auto it,
                           db->NewScan(ScanSpec::Branch(kMasterBranch)));
  uint64_t matches = 0;
  ScanRow row;
  while (it->Next(&row)) {
    if (pred.Matches(row.record)) ++matches;
  }
  DECIBEL_RETURN_NOT_OK(it->status());
  return std::make_pair(timer.ElapsedSeconds(), matches);
}

Result<std::pair<double, uint64_t>> TimePushdown(Decibel* db,
                                                 const Predicate& pred) {
  Stopwatch timer;
  DECIBEL_ASSIGN_OR_RETURN(
      auto cursor, db->NewScan(ScanSpec::Branch(kMasterBranch).Where(pred)));
  uint64_t matches = 0;
  ScanRow row;
  while (cursor->Next(&row)) ++matches;
  DECIBEL_RETURN_NOT_OK(cursor->status());
  return std::make_pair(timer.ElapsedSeconds(), matches);
}

void Run() {
  const uint64_t records = 200000 * static_cast<uint64_t>(ScaleFactor());
  const double selectivities[] = {0.01, 0.10, 0.50};
  constexpr int kReps = 7;

  printf("=== scan pushdown + point lookups (%" PRIu64 " records) ===\n",
         records);

  for (EngineType engine : AllEngines()) {
    BENCH_ASSIGN_OR_DIE(ScopedDb scoped, FreshDb(engine, "pushdown"));
    Decibel* db = scoped.db.get();
    BENCH_CHECK_OK(LoadSequential(db, records).status());

    // Warm the buffer pool so both sides measure the CPU path.
    BENCH_CHECK_OK(TimeFilterOnTop(db, Predicate()).status());

    // --- point lookups -------------------------------------------------
    std::vector<int64_t> scan_pks, get_pks;
    Random rng(7);
    for (int i = 0; i < 5; ++i) {
      scan_pks.push_back(static_cast<int64_t>(rng.Uniform(records)));
    }
    for (int i = 0; i < 2000; ++i) {
      get_pks.push_back(static_cast<int64_t>(rng.Uniform(records)));
    }
    double full_scan_s = 0, get_s = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      BENCH_ASSIGN_OR_DIE(double f, TimeFullScanLookup(db, scan_pks));
      BENCH_ASSIGN_OR_DIE(double g, TimeGetLookup(db, get_pks));
      if (rep == 0 || f < full_scan_s) full_scan_s = f;
      if (rep == 0 || g < get_s) get_s = g;
    }
    printf("%-4s lookup  full-scan %10.1f us   Get %8.2f us   speedup %8.1fx\n",
           ShortName(engine), full_scan_s * 1e6, get_s * 1e6,
           get_s > 0 ? full_scan_s / get_s : 0.0);

    // --- filtered scans ------------------------------------------------
    for (double sel : selectivities) {
      const int64_t threshold =
          static_cast<int64_t>(sel * static_cast<double>(records));
      BENCH_ASSIGN_OR_DIE(
          Predicate pred,
          Predicate::Compare(db->schema(), "c1", CompareOp::kLt, threshold));
      double top_s = 0, push_s = 0;
      uint64_t top_rows = 0, push_rows = 0;
      for (int rep = 0; rep < kReps; ++rep) {
        BENCH_ASSIGN_OR_DIE(auto top, TimeFilterOnTop(db, pred));
        BENCH_ASSIGN_OR_DIE(auto push, TimePushdown(db, pred));
        if (rep == 0 || top.first < top_s) top_s = top.first;
        if (rep == 0 || push.first < push_s) push_s = push.first;
        top_rows = top.second;
        push_rows = push.second;
      }
      if (top_rows != push_rows) {
        fprintf(stderr, "FATAL: row mismatch (%" PRIu64 " vs %" PRIu64 ")\n",
                top_rows, push_rows);
        exit(1);
      }
      printf("%-4s scan sel=%4.0f%%  filter-on-top %8.2f ms   pushdown "
             "%8.2f ms   speedup %6.2fx   (%" PRIu64 " rows)\n",
             ShortName(engine), sel * 100, top_s * 1e3, push_s * 1e3,
             push_s > 0 ? top_s / push_s : 0.0, push_rows);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace decibel

int main() {
  decibel::bench::Run();
  return 0;
}
