#ifndef DECIBEL_BENCH_GIT_BENCH_COMMON_H_
#define DECIBEL_BENCH_GIT_BENCH_COMMON_H_

/// Shared harness for Tables 6 and 7: the git-storage-manager baseline of
/// §5.7 versus Decibel (hybrid) on the deep structure — N branches, many
/// evenly spaced commits. Reports data size, repository size, repack time,
/// and commit/checkout latency mean +/- stddev, exactly the columns of the
/// paper's tables.

#include <cmath>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "gitlike/repo.h"

namespace decibel {
namespace bench {

struct GitBenchResult {
  std::string system;
  double data_mb = 0;
  double repo_mb = 0;
  double repack_seconds = -1;  // n/a for Decibel
  double commit_mean_ms = 0;
  double commit_stddev_ms = 0;
  double checkout_mean_ms = 0;
  double checkout_stddev_ms = 0;
};

struct MeanStddev {
  double mean = 0;
  double stddev = 0;
};

inline MeanStddev Summarize(const std::vector<double>& xs) {
  MeanStddev out;
  if (xs.empty()) return out;
  for (double x : xs) out.mean += x;
  out.mean /= xs.size();
  double var = 0;
  for (double x : xs) var += (x - out.mean) * (x - out.mean);
  out.stddev = std::sqrt(var / xs.size());
  return out;
}

struct GitBenchConfig {
  int num_branches = 10;
  uint64_t total_ops = 3000;
  int num_commits = 60;
  double update_fraction = 0.0;  // Table 6: inserts only; Table 7: 50%
  int checkout_trials = 30;
  uint64_t seed = 42;
};

/// Runs the workload against one git-layout/format combination.
inline GitBenchResult RunGitMode(const GitBenchConfig& config,
                                 gitlike::Layout layout,
                                 gitlike::Format format) {
  static int counter = 0;
  const std::string dir = "/tmp/decibel_gitbench_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(counter++);
  RemoveDirRecursive(dir).ok();
  const Schema schema = BenchSchema();
  BENCH_ASSIGN_OR_DIE(auto repo,
                      gitlike::GitRepo::Open(dir, schema, layout, format));

  Random rng(config.seed);
  const uint64_t ops_per_branch = config.total_ops / config.num_branches;
  const uint64_t commit_every =
      std::max<uint64_t>(1, config.total_ops / config.num_commits);
  std::vector<double> commit_ms;
  std::vector<std::string> commits;
  std::vector<int64_t> pks;
  int64_t next_pk = 0;
  uint64_t since_commit = 0;

  BranchId branch = kMasterBranch;
  for (int b = 0; b < config.num_branches; ++b) {
    if (b > 0) {
      BENCH_CHECK_OK(repo->CreateBranch(static_cast<BranchId>(b), branch));
      branch = static_cast<BranchId>(b);
    }
    for (uint64_t i = 0; i < ops_per_branch; ++i) {
      Record rec(&schema);
      const bool update =
          !pks.empty() && rng.NextDouble() < config.update_fraction;
      rec.SetPk(update ? pks[rng.Uniform(pks.size())] : next_pk);
      if (!update) pks.push_back(next_pk++);
      for (size_t c = 1; c < schema.num_columns(); ++c) {
        rec.SetInt32(c, static_cast<int32_t>(rng.Next()));
      }
      BENCH_CHECK_OK(repo->Insert(branch, rec));
      if (++since_commit >= commit_every) {
        since_commit = 0;
        Stopwatch timer;
        BENCH_ASSIGN_OR_DIE(std::string commit, repo->Commit(branch));
        commit_ms.push_back(timer.ElapsedMillis());
        commits.push_back(commit);
      }
    }
  }

  GitBenchResult result;
  result.system = std::string("git ") + gitlike::LayoutName(layout) + " (" +
                  gitlike::FormatName(format) + ")";
  result.data_mb = Mb(repo->DataSizeBytes());
  BENCH_ASSIGN_OR_DIE(double repack_s, repo->Repack());
  result.repack_seconds = repack_s;
  result.repo_mb = Mb(repo->RepoSizeBytes());

  std::vector<double> checkout_ms;
  for (int t = 0; t < config.checkout_trials; ++t) {
    const std::string& commit = commits[rng.Uniform(commits.size())];
    Stopwatch timer;
    BENCH_ASSIGN_OR_DIE(uint64_t n, repo->Checkout(commit));
    (void)n;
    checkout_ms.push_back(timer.ElapsedMillis());
  }
  const MeanStddev cm = Summarize(commit_ms);
  const MeanStddev xm = Summarize(checkout_ms);
  result.commit_mean_ms = cm.mean;
  result.commit_stddev_ms = cm.stddev;
  result.checkout_mean_ms = xm.mean;
  result.checkout_stddev_ms = xm.stddev;
  RemoveDirRecursive(dir).ok();
  return result;
}

/// Runs the same workload against Decibel's hybrid engine.
inline GitBenchResult RunDecibelMode(const GitBenchConfig& config) {
  BENCH_ASSIGN_OR_DIE(ScopedDb scoped,
                      FreshDb(EngineType::kHybrid, "gitbench"));
  Decibel* db = scoped.db.get();
  const Schema& schema = db->schema();

  Random rng(config.seed);
  const uint64_t ops_per_branch = config.total_ops / config.num_branches;
  const uint64_t commit_every =
      std::max<uint64_t>(1, config.total_ops / config.num_commits);
  std::vector<double> commit_ms;
  std::vector<CommitId> commits;
  std::vector<int64_t> pks;
  int64_t next_pk = 0;
  uint64_t since_commit = 0;

  BranchId branch = kMasterBranch;
  for (int b = 0; b < config.num_branches; ++b) {
    if (b > 0) {
      Session s = db->NewSession();
      BENCH_CHECK_OK(db->Use(&s, branch));
      BENCH_ASSIGN_OR_DIE(branch,
                          db->Branch("deep_" + std::to_string(b), &s));
    }
    for (uint64_t i = 0; i < ops_per_branch; ++i) {
      Record rec(&schema);
      const bool update =
          !pks.empty() && rng.NextDouble() < config.update_fraction;
      rec.SetPk(update ? pks[rng.Uniform(pks.size())] : next_pk);
      if (!update) pks.push_back(next_pk++);
      for (size_t c = 1; c < schema.num_columns(); ++c) {
        rec.SetInt32(c, static_cast<int32_t>(rng.Next()));
      }
      BENCH_CHECK_OK(update ? db->UpdateIn(branch, rec)
                            : db->InsertInto(branch, rec));
      if (++since_commit >= commit_every) {
        since_commit = 0;
        Stopwatch timer;
        BENCH_ASSIGN_OR_DIE(CommitId commit, db->CommitBranch(branch));
        commit_ms.push_back(timer.ElapsedMillis());
        commits.push_back(commit);
      }
    }
  }

  GitBenchResult result;
  result.system = "Decibel (hybrid)";
  const EngineStats stats = db->engine()->Stats();
  result.data_mb = Mb(stats.data_bytes);
  result.repo_mb = Mb(stats.data_bytes + stats.commit_store_bytes);

  std::vector<double> checkout_ms;
  for (int t = 0; t < config.checkout_trials; ++t) {
    const CommitId commit = commits[rng.Uniform(commits.size())];
    Stopwatch timer;
    BENCH_CHECK_OK(db->engine()->Checkout(commit));
    checkout_ms.push_back(timer.ElapsedMillis());
  }
  const MeanStddev cm = Summarize(commit_ms);
  const MeanStddev xm = Summarize(checkout_ms);
  result.commit_mean_ms = cm.mean;
  result.commit_stddev_ms = cm.stddev;
  result.checkout_mean_ms = xm.mean;
  result.checkout_stddev_ms = xm.stddev;
  return result;
}

inline void PrintGitBench(const std::vector<GitBenchResult>& rows) {
  printf("%-22s %10s %10s %12s %18s %18s\n", "system", "data MB", "repo MB",
         "repack (s)", "commit ms (u+-s)", "checkout ms (u+-s)");
  for (const GitBenchResult& r : rows) {
    char repack[32];
    if (r.repack_seconds < 0) {
      snprintf(repack, sizeof(repack), "%s", "N/A");
    } else {
      snprintf(repack, sizeof(repack), "%.2f", r.repack_seconds);
    }
    printf("%-22s %10.2f %10.2f %12s %9.2f +- %5.2f %9.2f +- %5.2f\n",
           r.system.c_str(), r.data_mb, r.repo_mb, repack, r.commit_mean_ms,
           r.commit_stddev_ms, r.checkout_mean_ms, r.checkout_stddev_ms);
  }
}

}  // namespace bench
}  // namespace decibel

#endif  // DECIBEL_BENCH_GIT_BENCH_COMMON_H_
