/// Table 6: git as a Decibel storage manager vs Decibel (hybrid) on the
/// deep structure, 100% inserts, 10 branches, evenly spaced commits.
///
/// Expected shape (§5.7): Decibel's commits and checkouts are orders of
/// magnitude faster than any git mode; the one-file modes pay per-commit
/// whole-table hashing; the file-per-tuple modes pay slow checkouts; repack
/// shrinks the repo but takes a long time; CSV inflates everything.

#include "git_bench_common.h"

namespace decibel {
namespace bench {
namespace {

void Run() {
  GitBenchConfig config;
  config.num_branches = EnvInt("DECIBEL_BRANCHES", 10);
  config.total_ops = 3000 * static_cast<uint64_t>(ScaleFactor());
  config.num_commits = 60;
  config.update_fraction = 0.0;

  printf("=== Table 6: git vs Decibel, deep structure, 100%% inserts, "
         "%d branches, %d commits ===\n",
         config.num_branches, config.num_commits);

  std::vector<GitBenchResult> rows;
  rows.push_back(RunGitMode(config, gitlike::Layout::kOneFile,
                            gitlike::Format::kBinary));
  rows.push_back(RunGitMode(config, gitlike::Layout::kOneFile,
                            gitlike::Format::kCsv));
  rows.push_back(RunGitMode(config, gitlike::Layout::kFilePerTuple,
                            gitlike::Format::kBinary));
  rows.push_back(RunGitMode(config, gitlike::Layout::kFilePerTuple,
                            gitlike::Format::kCsv));
  rows.push_back(RunDecibelMode(config));
  PrintGitBench(rows);
}

}  // namespace
}  // namespace bench
}  // namespace decibel

int main() {
  decibel::bench::Run();
  return 0;
}
