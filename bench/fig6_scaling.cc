/// Figure 6: "The Impact of Scaling Branches" — Q1 (single-branch scan)
/// and Q4 (all-branches scan) latency as the branch count grows under the
/// flat strategy, with the total dataset size held fixed (the paper scales
/// 10/50/100 branches over 100 GB; we scale branch counts over a fixed
/// operation budget).
///
/// Expected shape (§5.1): tuple-first Q1 degrades with more branches (its
/// single heap file interleaves everything); version-first and hybrid Q1
/// *improve* (fixed total size => less data per branch); version-first Q4
/// is uniformly worst; tuple-first and hybrid Q4 are comparable.

#include "bench_common.h"

namespace decibel {
namespace bench {
namespace {

void Run() {
  const std::vector<int> branch_counts = {5, 10, 20};
  // Fixed total budget across branch counts, like the paper's fixed 100GB.
  const uint64_t total_ops =
      BaseOps() * 20 * static_cast<uint64_t>(ScaleFactor());

  struct Row {
    int branches;
    double q1[3];
    double q4[3];
  };
  std::vector<Row> rows;

  for (int num_branches : branch_counts) {
    Row row;
    row.branches = num_branches;
    for (size_t e = 0; e < AllEngines().size(); ++e) {
      const EngineType engine = AllEngines()[e];
      BENCH_ASSIGN_OR_DIE(ScopedDb scoped, FreshDb(engine, "fig6"));
      WorkloadConfig config = BaseConfig(Strategy::kFlat, num_branches);
      config.ops_per_branch = total_ops / num_branches;
      BENCH_ASSIGN_OR_DIE(LoadedWorkload w,
                          LoadWorkload(scoped.db.get(), config));
      Random rng(7);
      BENCH_ASSIGN_OR_DIE(
          TimedQuery q1,
          TimedQ1(scoped.db.get(), SelectQ1Target(w, &rng)));
      BENCH_ASSIGN_OR_DIE(TimedQuery q4, TimedQ4(scoped.db.get()));
      row.q1[e] = q1.seconds * 1e3;
      row.q4[e] = q4.seconds * 1e3;
    }
    rows.push_back(row);
  }

  printf("=== Figure 6a: Query 1 latency vs #branches (flat, fixed total "
         "size) ===\n");
  printf("%-10s %12s %12s %12s\n", "branches", "VF (ms)", "TF (ms)",
         "HY (ms)");
  for (const Row& row : rows) {
    printf("%-10d %12.2f %12.2f %12.2f\n", row.branches, row.q1[0],
           row.q1[1], row.q1[2]);
  }
  printf("\n=== Figure 6b: Query 4 latency vs #branches (flat, fixed total "
         "size) ===\n");
  printf("%-10s %12s %12s %12s\n", "branches", "VF (ms)", "TF (ms)",
         "HY (ms)");
  for (const Row& row : rows) {
    printf("%-10d %12.2f %12.2f %12.2f\n", row.branches, row.q4[0],
           row.q4[1], row.q4[2]);
  }
}

}  // namespace
}  // namespace bench
}  // namespace decibel

int main() {
  decibel::bench::Run();
  return 0;
}
