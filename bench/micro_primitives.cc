/// Micro-benchmarks (google-benchmark) for the primitives whose costs
/// explain the macro results: bitmap algebra, RLE/LZ codecs, CRC/SHA-1
/// hashing, heap-file append/scan, and commit-history checkout.

#include <benchmark/benchmark.h>

#include "bitmap/bitmap.h"
#include "bitmap/commit_history.h"
#include "common/crc32.h"
#include "common/io.h"
#include "common/lz.h"
#include "common/random.h"
#include "common/rle.h"
#include "gitlike/sha1.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"

namespace decibel {
namespace {

void BM_BitmapOr(benchmark::State& state) {
  const uint64_t nbits = static_cast<uint64_t>(state.range(0));
  Random rng(1);
  Bitmap a(nbits), b(nbits);
  for (uint64_t i = 0; i < nbits / 16; ++i) {
    a.Set(rng.Uniform(nbits));
    b.Set(rng.Uniform(nbits));
  }
  for (auto _ : state) {
    Bitmap c = Bitmap::Or(a, b);
    benchmark::DoNotOptimize(c.Count());
  }
  state.SetBytesProcessed(state.iterations() * (nbits / 8) * 2);
}
BENCHMARK(BM_BitmapOr)->Arg(1 << 16)->Arg(1 << 20);

void BM_BitmapIterate(benchmark::State& state) {
  const uint64_t nbits = static_cast<uint64_t>(state.range(0));
  Random rng(2);
  Bitmap a(nbits);
  for (uint64_t i = 0; i < nbits / 16; ++i) a.Set(rng.Uniform(nbits));
  for (auto _ : state) {
    uint64_t sum = 0;
    a.ForEachSet([&](uint64_t i) { sum += i; });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_BitmapIterate)->Arg(1 << 16)->Arg(1 << 20);

void BM_RleEncodeSparseDelta(benchmark::State& state) {
  // The shape of a commit delta: almost all zeros.
  std::string data(static_cast<size_t>(state.range(0)), '\0');
  Random rng(3);
  for (int i = 0; i < 32; ++i) {
    data[rng.Uniform(data.size())] = static_cast<char>(1 + rng.Uniform(255));
  }
  for (auto _ : state) {
    std::string out;
    rle::Encode(data, &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RleEncodeSparseDelta)->Arg(1 << 16)->Arg(1 << 20);

void BM_LzCompress(benchmark::State& state) {
  Random rng(4);
  std::string data;
  for (int i = 0; i < state.range(0) / 16; ++i) {
    // Semi-repetitive, like serialized tuples.
    data += "tuple_" + std::to_string(rng.Uniform(64)) + ",value,";
  }
  for (auto _ : state) {
    std::string out;
    lz::Compress(data, &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_LzCompress)->Arg(1 << 14)->Arg(1 << 18);

void BM_Crc32(benchmark::State& state) {
  std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(1 << 16);

void BM_Sha1(benchmark::State& state) {
  std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(gitlike::Sha1Hex(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(1 << 16);

void BM_HeapFileAppend(benchmark::State& state) {
  const std::string dir = "/tmp/decibel_micro_" + std::to_string(getpid());
  RemoveDirRecursive(dir).ok();
  CreateDir(dir).ok();
  BufferPool pool(8 << 20);
  HeapFile::Options opts;
  opts.page_size = 64 << 10;
  std::string record(128, 'r');
  int file_no = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto file = HeapFile::Create(
        dir + "/f" + std::to_string(file_no++), 128, opts, &pool);
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      benchmark::DoNotOptimize((*file)->Append(record).ok());
    }
  }
  state.SetBytesProcessed(state.iterations() * 1000 * 128);
  RemoveDirRecursive(dir).ok();
}
BENCHMARK(BM_HeapFileAppend);

void BM_CommitHistoryCheckout(benchmark::State& state) {
  const std::string dir = "/tmp/decibel_micro_ch_" + std::to_string(getpid());
  RemoveDirRecursive(dir).ok();
  CreateDir(dir).ok();
  auto history = CommitHistory::Create(dir + "/h.hist",
                                       {.composite_every = 16});
  Random rng(9);
  Bitmap bits(1 << 18);
  const int num_commits = static_cast<int>(state.range(0));
  for (int c = 1; c <= num_commits; ++c) {
    for (int i = 0; i < 64; ++i) bits.Set(rng.Uniform(1 << 18));
    (*history)->AppendCommit(static_cast<uint64_t>(c), bits).ok();
  }
  for (auto _ : state) {
    const uint64_t seq = 1 + rng.Uniform(num_commits);
    auto restored = (*history)->Checkout(seq);
    benchmark::DoNotOptimize(restored.ok());
  }
  RemoveDirRecursive(dir).ok();
}
BENCHMARK(BM_CommitHistoryCheckout)->Arg(64)->Arg(256);

}  // namespace
}  // namespace decibel

BENCHMARK_MAIN();
