/// Figure 9: Query 3 (primary-key join of two versions with a predicate)
/// across the four branching strategies.
///
/// Expected shape (§5.2): trends mirror Q2; version-first is competitive
/// without merges (hash join over two streaming scans) but needs extra
/// passes under curation's merge-heavy ancestry.

#include "bench_common.h"

namespace decibel {
namespace bench {
namespace {

void Run() {
  const int num_branches = EnvInt("DECIBEL_BRANCHES", 10);
  const std::vector<std::pair<const char*, Strategy>> cases = {
      {"deep", Strategy::kDeep},
      {"flat", Strategy::kFlat},
      {"sci", Strategy::kScience},
      {"cur", Strategy::kCuration},
  };

  printf("=== Figure 9: Query 3 (pk join) latency (%d branches) ===\n",
         num_branches);
  printf("%-8s %12s %12s %12s\n", "case", "VF (ms)", "TF (ms)", "HY (ms)");

  for (const auto& [label, strategy] : cases) {
    double ms[3];
    for (size_t e = 0; e < AllEngines().size(); ++e) {
      BENCH_ASSIGN_OR_DIE(ScopedDb scoped,
                          FreshDb(AllEngines()[e], "fig9"));
      WorkloadConfig config = BaseConfig(strategy, num_branches);
      BENCH_ASSIGN_OR_DIE(LoadedWorkload w,
                          LoadWorkload(scoped.db.get(), config));
      Random rng(7);
      const auto [a, b] = SelectQ2Pair(w, &rng);
      BENCH_ASSIGN_OR_DIE(TimedQuery q3, TimedQ3(scoped.db.get(), a, b));
      ms[e] = q3.seconds * 1e3;
    }
    printf("%-8s %12.2f %12.2f %12.2f\n", label, ms[0], ms[1], ms[2]);
  }
}

}  // namespace
}  // namespace bench
}  // namespace decibel

int main() {
  decibel::bench::Run();
  return 0;
}
