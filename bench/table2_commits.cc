/// Table 2: "Bitmap Commit Data" — for the two bitmap engines
/// (tuple-first, hybrid) and each strategy: the aggregate compressed size
/// of the commit-history files, the average commit creation time, and the
/// average checkout (bitmap reconstruction) time over random commits.
///
/// Expected shape (§5.3): hybrid's per-(branch,segment) histories compress
/// better (less bit dispersion) and check out faster than tuple-first's
/// monolithic per-branch bitmaps; storage overhead stays ~1% of data size.

#include "common/stopwatch.h"

#include "bench_common.h"

namespace decibel {
namespace bench {
namespace {

void Run() {
  const int num_branches = EnvInt("DECIBEL_BRANCHES", 10);
  const std::vector<std::pair<const char*, Strategy>> cases = {
      {"deep", Strategy::kDeep},
      {"flat", Strategy::kFlat},
      {"sci", Strategy::kScience},
      {"cur", Strategy::kCuration},
  };
  const std::vector<EngineType> engines = {EngineType::kTupleFirst,
                                           EngineType::kHybrid};

  printf("=== Table 2: Bitmap commit data (%d branches) ===\n",
         num_branches);
  printf("%-8s %-4s %18s %18s %20s\n", "case", "eng", "pack size (KB)",
         "avg commit (ms)", "avg checkout (ms)");

  for (const auto& [label, strategy] : cases) {
    for (EngineType engine : engines) {
      BENCH_ASSIGN_OR_DIE(ScopedDb scoped, FreshDb(engine, "table2"));
      WorkloadConfig config = BaseConfig(strategy, num_branches);
      BENCH_ASSIGN_OR_DIE(LoadedWorkload w,
                          LoadWorkload(scoped.db.get(), config));
      (void)w;

      // Commit time: a few extra ops then a timed commit, repeated.
      Random rng(13);
      const Schema& schema = scoped.db->schema();
      double commit_ms = 0;
      const int commit_trials = 20;
      for (int t = 0; t < commit_trials; ++t) {
        for (int i = 0; i < 50; ++i) {
          Record rec(&schema);
          rec.SetPk(static_cast<int64_t>(1e15) + t * 1000 + i);
          rec.SetInt32(1, static_cast<int32_t>(rng.Next()));
          BENCH_CHECK_OK(scoped.db->InsertInto(kMasterBranch, rec));
        }
        Stopwatch timer;
        BENCH_CHECK_OK(scoped.db->CommitBranch(kMasterBranch).status());
        commit_ms += timer.ElapsedMillis();
      }
      commit_ms /= commit_trials;

      // Checkout time over random commits "agnostic to any branch or
      // location" (§5.3).
      std::vector<CommitId> commits;
      for (const auto& b : scoped.db->graph().branches()) {
        CommitId cur = scoped.db->graph().Head(b.id);
        while (cur != kInvalidCommit) {
          auto info = scoped.db->graph().GetCommit(cur);
          if (!info.ok()) break;
          commits.push_back(cur);
          cur = info->parents.empty() ? kInvalidCommit : info->parents[0];
        }
      }
      double checkout_ms = 0;
      const int checkout_trials = 50;
      for (int t = 0; t < checkout_trials; ++t) {
        const CommitId commit = commits[rng.Uniform(commits.size())];
        Stopwatch timer;
        BENCH_CHECK_OK(scoped.db->engine()->Checkout(commit));
        checkout_ms += timer.ElapsedMillis();
      }
      checkout_ms /= checkout_trials;

      const EngineStats stats = scoped.db->engine()->Stats();
      printf("%-8s %-4s %18.1f %18.3f %20.3f\n", label, ShortName(engine),
             stats.commit_store_bytes / 1024.0, commit_ms, checkout_ms);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace decibel

int main() {
  decibel::bench::Run();
  return 0;
}
