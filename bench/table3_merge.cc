/// Table 3: merge throughput (MB/s relative to the size of the two-sided
/// diff) for two-way and three-way merges, per engine, aggregated across
/// the merge operations performed during the curation build phase — the
/// paper's own methodology ("Numbers are in aggregate across the (approx.
/// 30) merge operations performed during the build phase", §5.4).
///
/// Expected shape: version-first slowest (full winner-table scans, and the
/// lca scanned in its entirety for three-way); the bitmap engines restrict
/// the lca work with bitmap algebra. Hybrid's clustering keeps its scans
/// local to the affected segments, tuple-first reads interleaved pages.

#include "bench_common.h"

namespace decibel {
namespace bench {
namespace {

void Run() {
  const int num_branches = EnvInt("DECIBEL_BRANCHES", 16);

  printf("=== Table 3: merge throughput during curation build (%d "
         "branches) ===\n",
         num_branches);
  printf("%-4s %18s %18s %12s\n", "eng", "two-way (MB/s)",
         "three-way (MB/s)", "merges");

  for (EngineType engine : AllEngines()) {
    double throughput[2] = {0, 0};
    uint64_t merges = 0;
    for (int mode = 0; mode < 2; ++mode) {
      BENCH_ASSIGN_OR_DIE(ScopedDb scoped, FreshDb(engine, "table3"));
      WorkloadConfig config = BaseConfig(Strategy::kCuration, num_branches);
      config.merge_policy = mode == 0 ? MergePolicy::kTwoWayLeft
                                      : MergePolicy::kThreeWayLeft;
      BENCH_ASSIGN_OR_DIE(LoadedWorkload w,
                          LoadWorkload(scoped.db.get(), config));
      throughput[mode] = w.stats.merge_seconds > 0
                             ? Mb(w.stats.merge_diff_bytes) /
                                   w.stats.merge_seconds
                             : 0;
      merges = w.stats.merges;
    }
    printf("%-4s %18.1f %18.1f %12llu\n", ShortName(engine), throughput[0],
           throughput[1], static_cast<unsigned long long>(merges));
  }
}

}  // namespace
}  // namespace bench
}  // namespace decibel

int main() {
  decibel::bench::Run();
  return 0;
}
