/// Ablation: the hybrid engine's parallel segment scanning (§3.4: the
/// branch-segment bitmap "enables a scanner to skip segments with no
/// active records and allows for parallelization of segment scanning").
///
/// Runs Q4 over a many-branch science workload with increasing worker
/// counts. Expected shape: wall-clock drops until per-segment work is too
/// small to amortize coordination.

#include "bench_common.h"

namespace decibel {
namespace bench {
namespace {

void Run() {
  const int num_branches = EnvInt("DECIBEL_BRANCHES", 16);
  const std::vector<int> thread_counts = {0, 2, 4, 8};

  printf("=== Ablation: hybrid parallel segment scan (science, %d branches) "
         "===\n",
         num_branches);
  printf("%-10s %16s %16s\n", "threads", "Q4 (ms)", "rows");

  for (int threads : thread_counts) {
    BENCH_ASSIGN_OR_DIE(ScopedDb scoped,
                        FreshDb(EngineType::kHybrid, "ab_par", threads));
    WorkloadConfig config = BaseConfig(Strategy::kScience, num_branches);
    BENCH_ASSIGN_OR_DIE(LoadedWorkload w,
                        LoadWorkload(scoped.db.get(), config));
    (void)w;
    // Two runs, report the second (first warms file handles).
    BENCH_ASSIGN_OR_DIE(TimedQuery warmup, TimedQ4(scoped.db.get()));
    (void)warmup;
    BENCH_ASSIGN_OR_DIE(TimedQuery q4, TimedQ4(scoped.db.get()));
    printf("%-10d %16.2f %16llu\n", threads, q4.seconds * 1e3,
           static_cast<unsigned long long>(q4.stats.rows_scanned));
  }
}

}  // namespace
}  // namespace bench
}  // namespace decibel

int main() {
  decibel::bench::Run();
  return 0;
}
