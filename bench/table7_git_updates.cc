/// Table 7: the update-heavy variant of the git comparison — deep
/// structure, 50% updates, 10 branches. The paper reports the CSV modes
/// plus Decibel; we run the same trio.
///
/// Expected shape (§5.7): updates make the one-file mode re-hash the whole
/// table for every commit while file-per-tuple touches only changed tuple
/// files; Decibel stays orders of magnitude faster on both commit and
/// checkout.

#include "git_bench_common.h"

namespace decibel {
namespace bench {
namespace {

void Run() {
  GitBenchConfig config;
  config.num_branches = EnvInt("DECIBEL_BRANCHES", 10);
  config.total_ops = 3000 * static_cast<uint64_t>(ScaleFactor());
  config.num_commits = 60;
  config.update_fraction = 0.5;

  printf("=== Table 7: git vs Decibel, deep structure, 50%% updates, "
         "%d branches, %d commits ===\n",
         config.num_branches, config.num_commits);

  std::vector<GitBenchResult> rows;
  rows.push_back(RunGitMode(config, gitlike::Layout::kOneFile,
                            gitlike::Format::kCsv));
  rows.push_back(RunGitMode(config, gitlike::Layout::kFilePerTuple,
                            gitlike::Format::kCsv));
  rows.push_back(RunDecibelMode(config));
  PrintGitBench(rows);
}

}  // namespace
}  // namespace bench
}  // namespace decibel

int main() {
  decibel::bench::Run();
  return 0;
}
