/// Load paths: per-op vs WriteBatch bulk load, per engine.
///
/// The transaction-centric API gives every mutation path the same
/// discipline — stage into a WriteBatch, apply under the branch's
/// exclusive lock — so a per-record insert is a one-op transaction
/// (lock round-trip + engine dispatch per record) while a batched load
/// pays both once per transaction and lets the engine update its heap
/// file, pk index and bitmaps in one pass. This bench quantifies the
/// spread on a bulk load of fresh records into master.
///
/// DECIBEL_SCALE multiplies the record count (default 100k records).

#include "bench_common.h"

namespace decibel {
namespace bench {
namespace {

void Run() {
  const uint64_t records =
      100000 * static_cast<uint64_t>(ScaleFactor());
  const uint64_t batch_size = 10000;

  printf("=== load paths: per-op vs WriteBatch (%llu records) ===\n",
         static_cast<unsigned long long>(records));
  printf("%-4s %-10s %12s %14s %10s\n", "eng", "path", "seconds",
         "records/s", "speedup");

  // Best of three fresh-database runs per path: each run is a single
  // measurement, so the minimum is the least-noise estimate.
  constexpr int kReps = 3;
  for (EngineType engine : AllEngines()) {
    LoadPathResult per_op;
    LoadPathResult batched;
    for (int rep = 0; rep < kReps; ++rep) {
      LoadPathResult r;
      {
        BENCH_ASSIGN_OR_DIE(ScopedDb scoped, FreshDb(engine, "lp_perop"));
        BENCH_ASSIGN_OR_DIE(r, LoadMasterPerOp(scoped.db.get(), records));
        if (rep == 0 || r.seconds < per_op.seconds) per_op = r;
      }
      {
        BENCH_ASSIGN_OR_DIE(ScopedDb scoped, FreshDb(engine, "lp_batch"));
        BENCH_ASSIGN_OR_DIE(
            r, LoadMasterBatched(scoped.db.get(), records, batch_size));
        if (rep == 0 || r.seconds < batched.seconds) batched = r;
      }
    }
    printf("%-4s %-10s %12.3f %14.0f %10s\n", ShortName(engine), "per-op",
           per_op.seconds, per_op.RecordsPerSec(), "");
    printf("%-4s %-10s %12.3f %14.0f %9.2fx\n", ShortName(engine),
           "batched", batched.seconds, batched.RecordsPerSec(),
           batched.seconds > 0 ? per_op.seconds / batched.seconds : 0.0);
  }
}

}  // namespace
}  // namespace bench
}  // namespace decibel

int main() {
  decibel::bench::Run();
  return 0;
}
