/// The agentic many-branch workload (§1's motivating use case, stressed):
/// N agents loop fork -> write K records -> merge-or-abandon -> retire,
/// so branches are born, serve one unit of work, and die by the hundreds.
/// This is the lifecycle pattern of machine-driven curation — every agent
/// works on a private branch and either lands it on master or walks away.
///
/// Two transports run the *same* VQuel statement stream:
///   inproc  each agent owns a vquel::Interpreter on the shared facade
///   tcp     each agent owns a net::Client against an in-process
///           decibel::net::Server (real sockets, real framing)
///
/// Each result line is one JSON object:
///
///   {"mode": "tcp", "agents": 8, "cycles": 1120, "records_per_cycle": 8,
///    "merged": 840, "abandoned": 280, "seconds": 4.2,
///    "cycles_per_sec": 266.7, "p50_ms": 27.1, "p99_ms": 63.9}
///
/// The bench is also a leak check and fails hard (exit 1) unless:
///   - at least 1000 full cycles completed per mode, and
///   - the active branch count returns to 1 (master) afterwards, and
///   - the TCP server reaps every session once the clients disconnect.
///
/// DECIBEL_AGENTS overrides the agent count (default 8); DECIBEL_SCALE
/// multiplies the cycles per agent.

#include <cinttypes>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "net/client.h"
#include "net/server.h"
#include "query/vquel.h"

namespace decibel {
namespace bench {
namespace {

constexpr uint64_t kRecordsPerCycle = 8;

struct ModeResult {
  uint64_t cycles = 0;
  uint64_t merged = 0;
  uint64_t abandoned = 0;
  double seconds = 0;
  std::vector<double> cycle_ms;

  double CyclesPerSec() const {
    return seconds > 0 ? static_cast<double>(cycles) / seconds : 0;
  }
  double Percentile(double p) {
    if (cycle_ms.empty()) return 0;
    std::sort(cycle_ms.begin(), cycle_ms.end());
    const size_t idx = static_cast<size_t>(
        p * static_cast<double>(cycle_ms.size() - 1) / 100.0 + 0.5);
    return cycle_ms[std::min(idx, cycle_ms.size() - 1)];
  }
};

/// One agent's statement transport: in-process interpreter or TCP client.
struct AgentLink {
  vquel::Interpreter* interp = nullptr;
  net::Client* client = nullptr;

  Status ExecOnce(const std::string& statement) {
    if (client != nullptr) {
      DECIBEL_ASSIGN_OR_RETURN(net::WireResult wr,
                               client->Execute(statement));
      return wr.ToStatus();
    }
    return interp->Execute(statement).status();
  }

  /// Lock timeouts surface as the retryable Status::Aborted (§2.2.3's 2PL
  /// discipline: nothing was applied — back off and reissue). With every
  /// agent merging into master, queueing behind its lock is the expected
  /// steady state, not an error.
  Status Exec(const std::string& statement) {
    Status st;
    for (int attempt = 0; attempt < 100; ++attempt) {
      st = ExecOnce(statement);
      if (!st.IsAborted()) return st;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(1 << std::min(attempt, 5)));
    }
    return st;
  }
};

/// Runs one agent's share of the workload; latencies land in *out_ms.
Status RunAgent(AgentLink link, int agent, uint64_t cycles,
                uint64_t* merged, uint64_t* abandoned,
                std::vector<double>* out_ms) {
  for (uint64_t c = 0; c < cycles; ++c) {
    const std::string branch =
        "agent" + std::to_string(agent) + "_c" + std::to_string(c);
    // Globally unique pk range per (agent, cycle) so merges never conflict.
    const int64_t base =
        (static_cast<int64_t>(agent) * 1000000 + static_cast<int64_t>(c)) *
        static_cast<int64_t>(kRecordsPerCycle);
    Stopwatch timer;
    DECIBEL_RETURN_NOT_OK(link.Exec("BRANCH " + branch + " FROM master"));
    for (uint64_t i = 0; i < kRecordsPerCycle; ++i) {
      DECIBEL_RETURN_NOT_OK(link.Exec(
          "INSERT " + branch + " " + std::to_string(base + (int64_t)i) +
          " " + std::to_string(agent) + " " + std::to_string(c)));
    }
    DECIBEL_RETURN_NOT_OK(link.Exec("COMMIT " + branch));
    // Three of four agents land their work; the fourth walks away.
    if ((static_cast<uint64_t>(agent) + c) % 4 != 0) {
      DECIBEL_RETURN_NOT_OK(
          link.Exec("MERGE master " + branch + " THREEWAY LEFT"));
      ++*merged;
    } else {
      ++*abandoned;
    }
    DECIBEL_RETURN_NOT_OK(link.Exec("RETIRE " + branch));
    out_ms->push_back(timer.ElapsedSeconds() * 1000.0);
  }
  return Status::OK();
}

Result<ModeResult> RunMode(const std::string& mode, Decibel* db,
                           net::Server* server, int agents,
                           uint64_t cycles_per_agent) {
  std::vector<Status> failures(agents, Status::OK());
  std::vector<uint64_t> merged(agents, 0);
  std::vector<uint64_t> abandoned(agents, 0);
  std::vector<std::vector<double>> latencies(agents);

  std::vector<std::thread> workers;
  workers.reserve(agents);
  Stopwatch timer;
  for (int t = 0; t < agents; ++t) {
    workers.emplace_back([&, t] {
      if (server != nullptr) {
        auto client = net::Client::Connect("127.0.0.1", server->port());
        if (!client.ok()) {
          failures[t] = client.status();
          return;
        }
        AgentLink link;
        link.client = &*client;
        failures[t] = RunAgent(link, t, cycles_per_agent, &merged[t],
                               &abandoned[t], &latencies[t]);
      } else {
        vquel::Interpreter interp(db);
        AgentLink link;
        link.interp = &interp;
        failures[t] = RunAgent(link, t, cycles_per_agent, &merged[t],
                               &abandoned[t], &latencies[t]);
      }
    });
  }
  for (auto& w : workers) w.join();
  ModeResult result;
  result.seconds = timer.ElapsedSeconds();
  for (const Status& st : failures) DECIBEL_RETURN_NOT_OK(st);

  for (int t = 0; t < agents; ++t) {
    result.cycles += latencies[t].size();
    result.merged += merged[t];
    result.abandoned += abandoned[t];
    result.cycle_ms.insert(result.cycle_ms.end(), latencies[t].begin(),
                           latencies[t].end());
  }

  // Leak gates: the workload retired everything it forked...
  const DecibelStats stats = db->Stats();
  if (stats.active_branches != 1) {
    return Status::Corruption(
        mode + ": leaked branches: " + std::to_string(stats.active_branches) +
        " still active (want 1)");
  }
  // ...and the server reaps every session once the clients hang up.
  if (server != nullptr) {
    for (int i = 0; i < 500 && server->num_sessions() != 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (server->num_sessions() != 0) {
      return Status::Corruption(
          mode + ": leaked sessions: " +
          std::to_string(server->num_sessions()) + " still open (want 0)");
    }
  }
  return result;
}

Result<ScopedDb> FreshAgentDb(const std::string& tag) {
  static int counter = 0;
  ScopedDb scoped;
  scoped.path = "/tmp/decibel_bench_" + std::to_string(::getpid()) + "_" +
                tag + "_" + std::to_string(counter++);
  DECIBEL_RETURN_NOT_OK(RemoveDirRecursive(scoped.path));
  // The server-facing schema (pk, c1, c2) — same as decibel_server.
  DECIBEL_ASSIGN_OR_RETURN(
      scoped.db,
      Decibel::Open(scoped.path, Schema::MakeBenchmark(2), DecibelOptions{}));
  return scoped;
}

void Emit(const std::string& mode, int agents, ModeResult result) {
  printf("{\"mode\": \"%s\", \"agents\": %d, \"cycles\": %" PRIu64
         ", \"records_per_cycle\": %" PRIu64 ", \"merged\": %" PRIu64
         ", \"abandoned\": %" PRIu64
         ", \"seconds\": %.4f, \"cycles_per_sec\": %.1f, "
         "\"p50_ms\": %.2f, \"p99_ms\": %.2f}\n",
         mode.c_str(), agents, result.cycles, kRecordsPerCycle,
         result.merged, result.abandoned, result.seconds,
         result.CyclesPerSec(), result.Percentile(50),
         result.Percentile(99));
}

void Run() {
  const int agents = std::max(1, EnvInt("DECIBEL_AGENTS", 8));
  // >= 1000 total cycles per mode at the default agent count.
  const uint64_t cycles_per_agent =
      (1000 / static_cast<uint64_t>(agents) + 1) *
      static_cast<uint64_t>(ScaleFactor());
  const uint64_t want = static_cast<uint64_t>(agents) * cycles_per_agent;

  printf("=== agentic branch lifecycle (%d agents x %" PRIu64
         " fork/write/merge/retire cycles, %" PRIu64 " records each) ===\n",
         agents, cycles_per_agent, kRecordsPerCycle);

  // --- in-process facade ---
  {
    BENCH_ASSIGN_OR_DIE(ScopedDb scoped, FreshAgentDb("agentic_inproc"));
    BENCH_ASSIGN_OR_DIE(
        ModeResult result,
        RunMode("inproc", scoped.db.get(), nullptr, agents,
                cycles_per_agent));
    if (result.cycles < 1000 || result.cycles != want) {
      std::fprintf(stderr, "FATAL: inproc completed %" PRIu64
                   " cycles, want %" PRIu64 " (>= 1000)\n",
                   result.cycles, want);
      std::exit(1);
    }
    Emit("inproc", agents, std::move(result));
  }

  // --- over TCP ---
  {
    BENCH_ASSIGN_OR_DIE(ScopedDb scoped, FreshAgentDb("agentic_tcp"));
    net::ServerOptions opts;
    opts.worker_threads = static_cast<size_t>(agents);
    BENCH_ASSIGN_OR_DIE(auto server,
                        net::Server::Start(scoped.db.get(), opts));
    BENCH_ASSIGN_OR_DIE(
        ModeResult result,
        RunMode("tcp", scoped.db.get(), server.get(), agents,
                cycles_per_agent));
    if (result.cycles < 1000 || result.cycles != want) {
      std::fprintf(stderr, "FATAL: tcp completed %" PRIu64
                   " cycles, want %" PRIu64 " (>= 1000)\n",
                   result.cycles, want);
      std::exit(1);
    }
    server->Stop();
    Emit("tcp", agents, std::move(result));
  }
}

}  // namespace
}  // namespace bench
}  // namespace decibel

int main() {
  decibel::bench::Run();
  return 0;
}
