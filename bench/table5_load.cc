/// Table 5: build (load) times — the full benchmark build phase (inserts,
/// updates, branch creation, merges, commits) per strategy, branch count
/// and engine, with the resulting dataset sizes.
///
/// Expected shape (§5.6): version-first loads fastest (no bitmap
/// maintenance) except under curation's complex branching; hybrid loads
/// faster than tuple-first thanks to its smaller per-segment indexes.

#include "bench_common.h"

namespace decibel {
namespace bench {
namespace {

void Run() {
  const std::vector<int> branch_counts = {10, 25};
  const std::vector<std::pair<const char*, Strategy>> cases = {
      {"deep", Strategy::kDeep},
      {"flat", Strategy::kFlat},
      {"sci", Strategy::kScience},
      {"cur", Strategy::kCuration},
  };

  printf("=== Table 5: build times ===\n");
  printf("%-8s %-10s %-4s %14s %14s\n", "case", "branches", "eng",
         "load (s)", "data (MB)");

  for (const auto& [label, strategy] : cases) {
    for (int num_branches : branch_counts) {
      for (EngineType engine : AllEngines()) {
        BENCH_ASSIGN_OR_DIE(ScopedDb scoped, FreshDb(engine, "table5"));
        WorkloadConfig config = BaseConfig(strategy, num_branches);
        BENCH_ASSIGN_OR_DIE(LoadedWorkload w,
                            LoadWorkload(scoped.db.get(), config));
        const EngineStats stats = scoped.db->engine()->Stats();
        printf("%-8s %-10d %-4s %14.2f %14.2f\n", label, num_branches,
               ShortName(engine), w.stats.seconds, Mb(stats.data_bytes));
      }
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace decibel

int main() {
  decibel::bench::Run();
  return 0;
}
