/// Figure 11 + Table 4: table-wise updates. For each strategy (10
/// branches, as the paper does for clarity), measure Q1 before and after
/// an update touching every record of the scanned branch, plus the
/// dataset-size growth the copies cause (Table 4).
///
/// Expected shape (§5.5): version-first degrades in proportion to the new
/// data; the bitmap engines do not — and tuple-first actually *improves*
/// because the rewrite re-clusters the branch at the end of its heap file.

#include "bench_common.h"

namespace decibel {
namespace bench {
namespace {

void Run() {
  const int num_branches = 10;
  const std::vector<std::pair<const char*, Strategy>> cases = {
      {"deep", Strategy::kDeep},
      {"flat", Strategy::kFlat},
      {"sci", Strategy::kScience},
      {"cur", Strategy::kCuration},
  };

  printf("=== Figure 11: Query 1 before/after a table-wise update "
         "(10 branches) ===\n");
  printf("%-8s %-6s %14s %14s %14s %14s\n", "case", "eng", "before (ms)",
         "after (ms)", "pre-size (MB)", "post-size (MB)");

  for (const auto& [label, strategy] : cases) {
    for (EngineType engine : AllEngines()) {
      BENCH_ASSIGN_OR_DIE(ScopedDb scoped, FreshDb(engine, "fig11"));
      WorkloadConfig config = BaseConfig(strategy, num_branches);
      BENCH_ASSIGN_OR_DIE(LoadedWorkload w,
                          LoadWorkload(scoped.db.get(), config));
      Random rng(7);
      const BranchId target = SelectQ1Target(w, &rng);

      BENCH_ASSIGN_OR_DIE(TimedQuery before,
                          TimedQ1(scoped.db.get(), target));
      const uint64_t pre_bytes =
          scoped.db->engine()->Stats().data_bytes;

      BENCH_ASSIGN_OR_DIE(LoadStats update,
                          TableWiseUpdate(scoped.db.get(), target));
      (void)update;
      BENCH_ASSIGN_OR_DIE(TimedQuery after,
                          TimedQ1(scoped.db.get(), target));
      const uint64_t post_bytes =
          scoped.db->engine()->Stats().data_bytes;

      printf("%-8s %-6s %14.2f %14.2f %14.2f %14.2f\n", label,
             ShortName(engine), before.seconds * 1e3, after.seconds * 1e3,
             Mb(pre_bytes), Mb(post_bytes));
    }
  }
  printf("\n(Table 4 is the pre-size/post-size column pair.)\n");
}

}  // namespace
}  // namespace bench
}  // namespace decibel

int main() {
  decibel::bench::Run();
  return 0;
}
