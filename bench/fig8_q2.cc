/// Figure 8: Query 2 (multi-version positive diff) across the four
/// branching strategies — deep tail vs parent, flat child vs parent,
/// science oldest-active vs mainline, curation mainline vs dev.
///
/// Expected shape (§5.2): version-first uniformly worst (it rebuilds
/// winner tables over both ancestries); tuple-first and hybrid answer from
/// bitmaps; hybrid edges out tuple-first as interleaving grows because its
/// segment skipping touches fewer records.

#include "bench_common.h"

namespace decibel {
namespace bench {
namespace {

void Run() {
  const int num_branches = EnvInt("DECIBEL_BRANCHES", 10);
  const std::vector<std::pair<const char*, Strategy>> cases = {
      {"deep", Strategy::kDeep},
      {"flat", Strategy::kFlat},
      {"sci", Strategy::kScience},
      {"cur", Strategy::kCuration},
  };

  printf("=== Figure 8: Query 2 (positive diff) latency (%d branches) ===\n",
         num_branches);
  printf("%-8s %12s %12s %12s\n", "case", "VF (ms)", "TF (ms)", "HY (ms)");

  for (const auto& [label, strategy] : cases) {
    double ms[3];
    for (size_t e = 0; e < AllEngines().size(); ++e) {
      BENCH_ASSIGN_OR_DIE(ScopedDb scoped,
                          FreshDb(AllEngines()[e], "fig8"));
      WorkloadConfig config = BaseConfig(strategy, num_branches);
      BENCH_ASSIGN_OR_DIE(LoadedWorkload w,
                          LoadWorkload(scoped.db.get(), config));
      Random rng(7);
      const auto [a, b] = SelectQ2Pair(w, &rng);
      BENCH_ASSIGN_OR_DIE(TimedQuery q2, TimedQ2(scoped.db.get(), a, b));
      ms[e] = q2.seconds * 1e3;
    }
    printf("%-8s %12.2f %12.2f %12.2f\n", label, ms[0], ms[1], ms[2]);
  }
}

}  // namespace
}  // namespace bench
}  // namespace decibel

int main() {
  decibel::bench::Run();
  return 0;
}
