#ifndef DECIBEL_WAL_WAL_WRITER_H_
#define DECIBEL_WAL_WAL_WRITER_H_

/// \file wal_writer.h
/// The write-ahead-log writer: thread-safe appends of framed records
/// (wal_format.h) into numbered segment files, with a configurable
/// durability level and leader/follower group commit.
///
/// Sync modes:
///  - kNone:  records sit in the writer's userspace buffer; fastest, a
///            crash (even a plain process kill) can lose recent records.
///  - kFlush: every Sync() pushes the buffer into the OS page cache; a
///            process kill loses nothing, an OS crash / power loss can.
///  - kFsync: Sync() fdatasyncs; acknowledged records survive power loss.
///            Concurrent committers group-commit: the first waiter
///            becomes the leader and fdatasyncs once for every record
///            written so far, while followers (and fresh appenders —
///            the append lock is not held across the fdatasync) proceed.
///
/// Segments roll at segment_bytes; rolling fsyncs the directory entry so
/// the new file survives a crash (sync mode permitting). Checkpoints call
/// Roll() explicitly so WAL truncation is whole-segment deletion.

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/io.h"
#include "common/result.h"
#include "wal/wal_format.h"

namespace decibel {
namespace wal {

enum class SyncMode : uint8_t { kNone = 0, kFlush = 1, kFsync = 2 };

class Writer {
 public:
  struct Options {
    SyncMode sync_mode = SyncMode::kFlush;
    uint64_t segment_bytes = 16ull << 20;
  };

  /// Opens a writer in \p dir (created if needed) that starts a fresh
  /// segment \p segment_seq and assigns lsns from \p next_lsn. Recovery
  /// never appends to an existing segment — a torn tail stays truncated
  /// and sealed, and the writer continues in a new file.
  static Result<std::unique_ptr<Writer>> Open(const std::string& dir,
                                              const Options& options,
                                              uint64_t next_lsn,
                                              uint64_t segment_seq);

  /// Appends one framed record and returns its lsn. Thread-safe; the
  /// record is buffered (durability comes from Sync).
  Result<uint64_t> Append(RecordType type, Slice body);

  /// Makes every record up to \p lsn as durable as the sync mode asks.
  Status Sync(uint64_t lsn);

  /// Seals the current segment (flush + fdatasync in kFsync) and starts
  /// the next one. Callers must have quiesced Append/Sync (the
  /// checkpointer's barrier does). Returns the new segment's seq.
  Result<uint64_t> Roll();

  /// Last assigned lsn (0 if none); the checkpoint boundary.
  uint64_t last_lsn() const;
  /// Next lsn to be assigned.
  uint64_t next_lsn() const;
  /// Current segment sequence number.
  uint64_t segment_seq() const;
  /// Frame bytes appended over this writer's lifetime.
  uint64_t bytes_appended() const;

  Status Close();

  /// Path of segment \p seq under \p dir ("<dir>/<seq 6-digit>.wal").
  static std::string SegmentPath(const std::string& dir, uint64_t seq);

 private:
  Writer(std::string dir, const Options& options, uint64_t next_lsn,
         uint64_t segment_seq)
      : dir_(std::move(dir)),
        options_(options),
        next_lsn_(next_lsn),
        segment_seq_(segment_seq) {}

  /// Opens segment segment_seq_; fsyncs the directory entry in kFsync.
  Status OpenSegment();
  /// Caller holds mu_. Rolls if the active segment is over budget.
  Status MaybeRollLocked();
  /// Caller holds mu_. Seals the active segment (flush, + fdatasync in
  /// kFsync) WITHOUT Close() — a group-commit leader may still be
  /// fdatasyncing it off-lock — and opens the next one. The old fd is
  /// closed by the last shared_ptr holder's destructor.
  Status RollLocked();

  const std::string dir_;
  const Options options_;

  /// Append state: the active file, lsn counter, rollover. Never held
  /// across an fdatasync.
  mutable std::mutex mu_;
  /// shared_ptr so the group-commit leader can fdatasync a stable handle
  /// after releasing mu_ even if a rollover swaps the active segment.
  std::shared_ptr<WritableFile> file_;
  uint64_t next_lsn_ = 1;
  uint64_t segment_seq_ = 1;
  uint64_t flushed_lsn_ = 0;  ///< highest lsn pushed to the OS
  uint64_t bytes_appended_ = 0;
  std::string frame_;  ///< reused encode scratch

  /// Group-commit state. Lock order: sync_mu_ then mu_ (the leader takes
  /// mu_ briefly to flush; Append never takes sync_mu_).
  mutable std::mutex sync_mu_;
  std::condition_variable sync_cv_;
  uint64_t synced_lsn_ = 0;  ///< highest lsn fdatasynced
  bool sync_active_ = false;
};

}  // namespace wal
}  // namespace decibel

#endif  // DECIBEL_WAL_WAL_WRITER_H_
