#ifndef DECIBEL_WAL_MANIFEST_H_
#define DECIBEL_WAL_MANIFEST_H_

/// \file manifest.h
/// The versioned manifest: one small CRC-protected file per checkpoint
/// (MANIFEST-<version>) plus a CURRENT pointer, both replaced atomically
/// (write-temp-then-rename, common/io.h). A manifest pins everything a
/// cold Open needs:
///
///  - the engine checkpoint tag (engine metas + heap manifests written by
///    StorageEngine::Checkpoint) the data files roll back to,
///  - the WAL position of that checkpoint (checkpoint_lsn — replay
///    everything after it) and the first live WAL segment,
///  - the schema and engine type, so Decibel::Open(data_dir, options)
///    can reopen a database it has never seen.
///
/// Two generations are retained: if the manifest CURRENT points at is
/// unreadable (crash while replacing it, bit rot caught by the CRC),
/// ReadCurrentManifest falls back to the highest readable MANIFEST-* and
/// recovery replays the — still retained — longer WAL suffix instead.

#include <cstdint>
#include <string>

#include "common/result.h"
#include "engine/engine.h"

namespace decibel {
namespace wal {

struct ManifestData {
  /// Monotonic manifest/checkpoint generation; names both the file
  /// (MANIFEST-<version>) and the engine checkpoint tag.
  uint64_t version = 0;
  /// Engine checkpoint tag the data files restore to ("ckpt-<version>").
  std::string checkpoint_tag;
  /// WAL records with lsn > checkpoint_lsn are not in the checkpoint and
  /// must be replayed.
  uint64_t checkpoint_lsn = 0;
  /// First unassigned lsn when the manifest was written.
  uint64_t next_lsn = 1;
  /// First WAL segment holding records past checkpoint_lsn; recovery
  /// replays every on-disk segment >= this, in order.
  uint64_t wal_start_seq = 1;
  /// The database schema (Schema::EncodeTo bytes).
  std::string schema;
  EngineType engine = EngineType::kHybrid;
};

/// "ckpt-<version>", the engine checkpoint tag of manifest \p version.
std::string CheckpointTag(uint64_t version);
/// "<dir>/MANIFEST-<version 6-digit>".
std::string ManifestFilePath(const std::string& dir, uint64_t version);
/// "<dir>/CURRENT".
std::string CurrentFilePath(const std::string& dir);

/// Writes MANIFEST-<data.version> and repoints CURRENT at it, each via an
/// atomic replace (fsynced when \p sync).
Status WriteManifest(const std::string& dir, const ManifestData& data,
                     bool sync);

/// Loads the manifest CURRENT names; when CURRENT is missing or that
/// manifest is unreadable/corrupt, falls back to the highest readable
/// MANIFEST-* in \p dir. NotFound when no readable manifest exists.
Result<ManifestData> ReadCurrentManifest(const std::string& dir);

/// Decodes one manifest file (exposed for tests).
Result<ManifestData> ReadManifestFile(const std::string& path);

}  // namespace wal
}  // namespace decibel

#endif  // DECIBEL_WAL_MANIFEST_H_
