#include "wal/manifest.h"

#include <cstdio>

#include "common/coding.h"
#include "common/crc32.h"
#include "common/io.h"

namespace decibel {
namespace wal {

namespace {

constexpr uint32_t kManifestMagic = 0x46'4d'42'44;  // "DBMF"
constexpr uint32_t kManifestFormatVersion = 1;

}  // namespace

std::string CheckpointTag(uint64_t version) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt-%06llu",
                static_cast<unsigned long long>(version));
  return buf;
}

std::string ManifestFilePath(const std::string& dir, uint64_t version) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "MANIFEST-%06llu",
                static_cast<unsigned long long>(version));
  return JoinPath(dir, buf);
}

std::string CurrentFilePath(const std::string& dir) {
  return JoinPath(dir, "CURRENT");
}

Status WriteManifest(const std::string& dir, const ManifestData& data,
                     bool sync) {
  std::string blob;
  PutFixed32(&blob, kManifestMagic);
  PutFixed32(&blob, kManifestFormatVersion);
  PutVarint64(&blob, data.version);
  PutLengthPrefixed(&blob, Slice(data.checkpoint_tag));
  PutVarint64(&blob, data.checkpoint_lsn);
  PutVarint64(&blob, data.next_lsn);
  PutVarint64(&blob, data.wal_start_seq);
  PutLengthPrefixed(&blob, Slice(data.schema));
  blob.push_back(static_cast<char>(data.engine));
  PutFixed32(&blob, MaskCrc(Crc32(blob)));

  const std::string path = ManifestFilePath(dir, data.version);
  DECIBEL_RETURN_NOT_OK(AtomicWriteFile(path, blob, sync));
  // CURRENT is the commit point of a checkpoint: until the rename lands,
  // recovery keeps using the previous generation.
  std::string current = "MANIFEST-";
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%06llu\n",
                static_cast<unsigned long long>(data.version));
  current += buf;
  return AtomicWriteFile(CurrentFilePath(dir), current, sync);
}

Result<ManifestData> ReadManifestFile(const std::string& path) {
  DECIBEL_ASSIGN_OR_RETURN(std::string blob, ReadFileToString(path));
  if (blob.size() < 13) {
    return Status::Corruption("manifest truncated: " + path);
  }
  const uint32_t stored =
      UnmaskCrc(DecodeFixed32(blob.data() + blob.size() - 4));
  const Slice checked(blob.data(), blob.size() - 4);
  if (Crc32(checked) != stored) {
    return Status::Corruption("manifest checksum mismatch: " + path);
  }
  Slice in = checked;
  uint32_t magic = 0, format = 0;
  if (!GetFixed32(&in, &magic) || magic != kManifestMagic ||
      !GetFixed32(&in, &format) || format != kManifestFormatVersion) {
    return Status::Corruption("manifest bad magic/version: " + path);
  }
  ManifestData out;
  Slice tag, schema;
  if (!GetVarint64(&in, &out.version) || !GetLengthPrefixed(&in, &tag) ||
      !GetVarint64(&in, &out.checkpoint_lsn) ||
      !GetVarint64(&in, &out.next_lsn) ||
      !GetVarint64(&in, &out.wal_start_seq) ||
      !GetLengthPrefixed(&in, &schema) || in.size() != 1) {
    return Status::Corruption("manifest malformed: " + path);
  }
  out.checkpoint_tag = tag.ToString();
  out.schema = schema.ToString();
  out.engine = static_cast<EngineType>(in[0]);
  return out;
}

Result<ManifestData> ReadCurrentManifest(const std::string& dir) {
  // First choice: the generation CURRENT names.
  if (FileExists(CurrentFilePath(dir))) {
    auto current = ReadFileToString(CurrentFilePath(dir));
    if (current.ok()) {
      std::string name = *current;
      while (!name.empty() && (name.back() == '\n' || name.back() == '\r')) {
        name.pop_back();
      }
      if (!name.empty()) {
        auto m = ReadManifestFile(JoinPath(dir, name));
        if (m.ok()) return m;
      }
    }
  }
  // Fallback: the highest readable MANIFEST-* (the previous generation is
  // retained exactly for this; its longer WAL suffix is too).
  auto listing = ListDir(dir);
  if (!listing.ok()) return listing.status();
  std::string best_path;
  uint64_t best_version = 0;
  for (const std::string& name : *listing) {
    if (name.rfind("MANIFEST-", 0) != 0) continue;
    const uint64_t v = std::strtoull(name.c_str() + 9, nullptr, 10);
    if (v < best_version) continue;
    auto m = ReadManifestFile(JoinPath(dir, name));
    if (!m.ok()) continue;
    best_version = v;
    best_path = JoinPath(dir, name);
  }
  if (best_path.empty()) {
    return Status::NotFound("no readable manifest in " + dir);
  }
  return ReadManifestFile(best_path);
}

}  // namespace wal
}  // namespace decibel
