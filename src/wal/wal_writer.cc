#include "wal/wal_writer.h"

#include <cstdio>

namespace decibel {
namespace wal {

std::string Writer::SegmentPath(const std::string& dir, uint64_t seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "%06llu.wal",
                static_cast<unsigned long long>(seq));
  return JoinPath(dir, name);
}

Result<std::unique_ptr<Writer>> Writer::Open(const std::string& dir,
                                             const Options& options,
                                             uint64_t next_lsn,
                                             uint64_t segment_seq) {
  DECIBEL_RETURN_NOT_OK(CreateDir(dir));
  std::unique_ptr<Writer> w(new Writer(dir, options, next_lsn, segment_seq));
  DECIBEL_RETURN_NOT_OK(w->OpenSegment());
  return w;
}

Status Writer::OpenSegment() {
  // Truncate: recovery never resumes a segment, so any file already at
  // this seq is leftover garbage from a discarded torn tail.
  DECIBEL_ASSIGN_OR_RETURN(
      WritableFile f, WritableFile::Open(SegmentPath(dir_, segment_seq_),
                                         /*truncate=*/true));
  file_ = std::make_shared<WritableFile>(std::move(f));
  if (options_.sync_mode == SyncMode::kFsync) {
    // The file's own fsync does not persist its directory entry.
    DECIBEL_RETURN_NOT_OK(SyncDir(dir_));
  }
  return Status::OK();
}

Status Writer::MaybeRollLocked() {
  if (file_->Size() < options_.segment_bytes) return Status::OK();
  return RollLocked();
}

Status Writer::RollLocked() {
  // Seal without Close(): a group-commit leader may hold a shared_ptr to
  // this file and be fdatasyncing it concurrently (Close() sets fd_ = -1
  // and is not safe against that). Flush — plus fdatasync under kFsync —
  // makes the segment's contents final; the fd is closed by the last
  // holder's destructor, after any in-flight sync has finished with it.
  if (options_.sync_mode == SyncMode::kFsync) {
    DECIBEL_RETURN_NOT_OK(file_->Sync());
  } else {
    DECIBEL_RETURN_NOT_OK(file_->Flush());
  }
  file_.reset();
  ++segment_seq_;
  DECIBEL_RETURN_NOT_OK(OpenSegment());
  // Everything appended so far lives in sealed (flushed, and in kFsync
  // fdatasynced) segments.
  flushed_lsn_ = next_lsn_ - 1;
  return Status::OK();
}

Result<uint64_t> Writer::Append(RecordType type, Slice body) {
  std::lock_guard<std::mutex> lock(mu_);
  DECIBEL_RETURN_NOT_OK(MaybeRollLocked());
  const uint64_t lsn = next_lsn_++;
  frame_.clear();
  EncodeFrame(&frame_, lsn, type, body);
  DECIBEL_RETURN_NOT_OK(file_->Append(frame_));
  bytes_appended_ += frame_.size();
  return lsn;
}

Status Writer::Sync(uint64_t lsn) {
  switch (options_.sync_mode) {
    case SyncMode::kNone:
      return Status::OK();
    case SyncMode::kFlush: {
      std::lock_guard<std::mutex> lock(mu_);
      if (flushed_lsn_ >= lsn) return Status::OK();
      DECIBEL_RETURN_NOT_OK(file_->Flush());
      flushed_lsn_ = next_lsn_ - 1;
      return Status::OK();
    }
    case SyncMode::kFsync:
      break;
  }

  // Group commit: the first waiter past this gate becomes the leader and
  // fdatasyncs every record flushed so far; later committers wait on the
  // cv and are covered by the leader's one fdatasync. A follower whose
  // lsn is still not covered when the leader finishes becomes the next
  // leader.
  std::unique_lock<std::mutex> sl(sync_mu_);
  for (;;) {
    if (synced_lsn_ >= lsn) return Status::OK();
    if (!sync_active_) break;
    sync_cv_.wait(sl);
  }
  sync_active_ = true;
  sl.unlock();

  std::shared_ptr<WritableFile> f;
  uint64_t target = 0;
  Status s;
  {
    // Push the buffer into the OS under the append lock (cheap), then
    // fdatasync off it so appenders keep running during the disk wait.
    std::lock_guard<std::mutex> al(mu_);
    s = file_->Flush();
    if (s.ok()) flushed_lsn_ = next_lsn_ - 1;
    target = flushed_lsn_;
    f = file_;
  }
  if (s.ok()) s = f->SyncData();

  sl.lock();
  if (s.ok() && target > synced_lsn_) synced_lsn_ = target;
  sync_active_ = false;
  sync_cv_.notify_all();
  return s;
}

Result<uint64_t> Writer::Roll() {
  std::lock_guard<std::mutex> lock(mu_);
  DECIBEL_RETURN_NOT_OK(RollLocked());
  return segment_seq_;
}

uint64_t Writer::last_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_ - 1;
}

uint64_t Writer::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

uint64_t Writer::segment_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segment_seq_;
}

uint64_t Writer::bytes_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_appended_;
}

Status Writer::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::OK();
  Status s = options_.sync_mode == SyncMode::kFsync ? file_->Sync()
                                                    : Status::OK();
  Status c = file_->Close();
  file_.reset();
  return s.ok() ? c : s;
}

}  // namespace wal
}  // namespace decibel
