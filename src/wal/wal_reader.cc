#include "wal/wal_reader.h"

#include "common/coding.h"
#include "common/crc32.h"
#include "common/io.h"

namespace decibel {
namespace wal {

Result<std::unique_ptr<Reader>> Reader::Open(const std::string& path) {
  DECIBEL_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  return std::unique_ptr<Reader>(new Reader(std::move(data)));
}

bool Reader::Next(FrameView* frame) {
  if (done_) return false;
  const uint64_t remaining = data_.size() - pos_;
  if (remaining < kFrameHeaderSize) {
    // A clean segment ends exactly at a frame boundary; anything shorter
    // is the start of a frame whose write never completed.
    torn_tail_ = remaining != 0;
    valid_end_ = pos_;
    done_ = true;
    return false;
  }
  const uint32_t len = DecodeFixed32(data_.data() + pos_);
  const uint32_t stored_crc = UnmaskCrc(DecodeFixed32(data_.data() + pos_ + 4));
  if (len == 0 || len > kMaxPayloadSize ||
      len > remaining - kFrameHeaderSize) {
    torn_tail_ = true;
    valid_end_ = pos_;
    done_ = true;
    return false;
  }
  const Slice payload(data_.data() + pos_ + kFrameHeaderSize, len);
  if (Crc32(payload) != stored_crc) {
    torn_tail_ = true;
    valid_end_ = pos_;
    done_ = true;
    return false;
  }
  Slice p = payload;
  uint64_t lsn = 0;
  if (!GetVarint64(&p, &lsn) || p.empty()) {
    torn_tail_ = true;
    valid_end_ = pos_;
    done_ = true;
    return false;
  }
  frame->lsn = lsn;
  frame->type = static_cast<RecordType>(p[0]);
  p.RemovePrefix(1);
  frame->body = p;
  pos_ += kFrameHeaderSize + len;
  valid_end_ = pos_;
  return true;
}

}  // namespace wal
}  // namespace decibel
