#ifndef DECIBEL_WAL_CHECKPOINT_H_
#define DECIBEL_WAL_CHECKPOINT_H_

/// \file checkpoint.h
/// The background checkpoint scheduler: a single worker thread that runs
/// the owner's checkpoint function whenever enough WAL bytes have
/// accumulated (or on demand), so the log is truncated and recovery time
/// stays bounded while writers keep committing. Modeled on the background
/// "dropper" threads of LSM/time-series stores: producers only bump a
/// byte counter and poke a condition variable; all heavy work happens on
/// the worker.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "common/status.h"

namespace decibel {
namespace wal {

class CheckpointScheduler {
 public:
  /// \p fn runs on the worker thread with no scheduler lock held; it is
  /// expected to take its own barrier (the facade's checkpoint_mu_).
  CheckpointScheduler(std::function<Status()> fn, uint64_t interval_bytes);
  ~CheckpointScheduler();

  CheckpointScheduler(const CheckpointScheduler&) = delete;
  CheckpointScheduler& operator=(const CheckpointScheduler&) = delete;

  void Start();
  /// Wakes the worker, waits for any in-flight checkpoint to finish, and
  /// joins the thread. Idempotent.
  void Stop();

  /// Credits \p n WAL bytes toward the next checkpoint; wakes the worker
  /// once the interval is reached. Cheap enough for every commit.
  void NotifyBytes(uint64_t n);

  /// Asks the worker to checkpoint now regardless of the byte counter.
  void TriggerNow();

  /// Status of the most recent background checkpoint (OK before any ran).
  Status last_status() const;

 private:
  void Run();

  const std::function<Status()> fn_;
  const uint64_t interval_bytes_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t pending_bytes_ = 0;
  bool trigger_ = false;
  bool stop_ = false;
  bool started_ = false;
  Status last_status_;
  std::thread thread_;
};

}  // namespace wal
}  // namespace decibel

#endif  // DECIBEL_WAL_CHECKPOINT_H_
