#include "wal/wal_format.h"

#include "common/coding.h"
#include "common/crc32.h"

namespace decibel {
namespace wal {

void EncodeFrame(std::string* dst, uint64_t lsn, RecordType type, Slice body) {
  std::string payload;
  payload.reserve(body.size() + 11);
  PutVarint64(&payload, lsn);
  payload.push_back(static_cast<char>(type));
  payload.append(body.data(), body.size());
  PutFixed32(dst, static_cast<uint32_t>(payload.size()));
  PutFixed32(dst, MaskCrc(Crc32(payload)));
  dst->append(payload);
}

// ----------------------------------------------------------------- batch

void EncodeBatchBody(std::string* dst, BranchId branch,
                     const WriteBatch& batch) {
  PutVarint32(dst, branch);
  const uint32_t record_size =
      static_cast<uint32_t>(batch.schema()->record_size());
  PutVarint32(dst, record_size);
  PutVarint64(dst, batch.size());
  for (const WriteBatch::Op& op : batch.ops()) {
    dst->push_back(static_cast<char>(op.kind));
    if (op.kind == WriteBatch::OpKind::kDelete) {
      PutVarint64(dst, ZigZagEncode(op.pk));
    } else {
      const Slice rec = batch.RecordAt(op).data();
      dst->append(rec.data(), rec.size());
    }
  }
}

Status DecodeBatchBody(Slice body, BranchId* branch, WriteBatch* batch) {
  batch->Clear();
  uint32_t b = 0, record_size = 0;
  uint64_t nops = 0;
  if (!GetVarint32(&body, &b) || !GetVarint32(&body, &record_size) ||
      !GetVarint64(&body, &nops)) {
    return Status::Corruption("WAL batch record: truncated header");
  }
  if (record_size != batch->schema()->record_size()) {
    return Status::Corruption("WAL batch record: record size mismatch");
  }
  *branch = b;
  batch->Reserve(nops);
  for (uint64_t i = 0; i < nops; ++i) {
    if (body.empty()) {
      return Status::Corruption("WAL batch record: truncated op list");
    }
    const uint8_t kind = static_cast<uint8_t>(body[0]);
    body.RemovePrefix(1);
    switch (static_cast<WriteBatch::OpKind>(kind)) {
      case WriteBatch::OpKind::kDelete: {
        uint64_t zz = 0;
        if (!GetVarint64(&body, &zz)) {
          return Status::Corruption("WAL batch record: truncated delete pk");
        }
        batch->Delete(ZigZagDecode(zz));
        break;
      }
      case WriteBatch::OpKind::kInsert:
      case WriteBatch::OpKind::kUpdate: {
        if (body.size() < record_size) {
          return Status::Corruption("WAL batch record: truncated payload");
        }
        Record rec(batch->schema(), Slice(body.data(), record_size));
        if (kind == static_cast<uint8_t>(WriteBatch::OpKind::kInsert)) {
          batch->Insert(rec);
        } else {
          batch->Update(rec);
        }
        body.RemovePrefix(record_size);
        break;
      }
      default:
        return Status::Corruption("WAL batch record: unknown op kind " +
                                  std::to_string(kind));
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------- commit

void EncodeCommitBody(std::string* dst, const CommitBody& b) {
  PutVarint32(dst, b.branch);
  PutVarint64(dst, b.commit);
  PutVarint32(dst, static_cast<uint32_t>(b.parents.size()));
  for (CommitId p : b.parents) PutVarint64(dst, p);
}

Status DecodeCommitBody(Slice body, CommitBody* out) {
  uint32_t nparents = 0;
  if (!GetVarint32(&body, &out->branch) || !GetVarint64(&body, &out->commit) ||
      !GetVarint32(&body, &nparents) || nparents > 2) {
    return Status::Corruption("WAL commit record: malformed");
  }
  out->parents.resize(nparents);
  for (uint32_t i = 0; i < nparents; ++i) {
    if (!GetVarint64(&body, &out->parents[i])) {
      return Status::Corruption("WAL commit record: truncated parents");
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------- branch

void EncodeBranchBody(std::string* dst, const BranchBody& b) {
  PutVarint32(dst, b.child);
  PutLengthPrefixed(dst, Slice(b.name));
  PutVarint64(dst, b.base);
  PutVarint32(dst, b.parent_branch);
  dst->push_back(b.at_head ? 1 : 0);
  PutVarint64(dst, b.head);
}

Status DecodeBranchBody(Slice body, BranchBody* out) {
  Slice name;
  if (!GetVarint32(&body, &out->child) || !GetLengthPrefixed(&body, &name) ||
      !GetVarint64(&body, &out->base) ||
      !GetVarint32(&body, &out->parent_branch) || body.empty()) {
    return Status::Corruption("WAL branch record: malformed");
  }
  out->name.assign(name.data(), name.size());
  out->at_head = body[0] != 0;
  body.RemovePrefix(1);
  if (!GetVarint64(&body, &out->head)) {
    return Status::Corruption("WAL branch record: truncated head");
  }
  return Status::OK();
}

// ----------------------------------------------------------------- merge

void EncodeMergeBody(std::string* dst, const MergeBody& b) {
  PutVarint32(dst, b.into);
  PutVarint32(dst, b.from);
  PutVarint64(dst, b.lca);
  PutVarint64(dst, b.commit);
  dst->push_back(static_cast<char>(b.policy));
  PutVarint32(dst, static_cast<uint32_t>(b.parents.size()));
  for (CommitId p : b.parents) PutVarint64(dst, p);
  dst->append(b.batch_body);  // trailing bytes: the staged batch
}

Status DecodeMergeBody(Slice body, MergeBody* out) {
  if (!GetVarint32(&body, &out->into) || !GetVarint32(&body, &out->from) ||
      !GetVarint64(&body, &out->lca) || !GetVarint64(&body, &out->commit) ||
      body.empty()) {
    return Status::Corruption("WAL merge record: malformed");
  }
  out->policy = static_cast<MergePolicy>(body[0]);
  body.RemovePrefix(1);
  uint32_t nparents = 0;
  if (!GetVarint32(&body, &nparents) || nparents > 2) {
    return Status::Corruption("WAL merge record: malformed parents");
  }
  out->parents.resize(nparents);
  for (uint32_t i = 0; i < nparents; ++i) {
    if (!GetVarint64(&body, &out->parents[i])) {
      return Status::Corruption("WAL merge record: truncated parents");
    }
  }
  // Whatever follows the parents is the staged batch (absent in records
  // written before merges carried their batch; DecodeBatchBody rejects
  // an empty body, which replay treats as a malformed record).
  out->batch_body.assign(body.data(), body.size());
  return Status::OK();
}

// ---------------------------------------------------------------- retire

void EncodeRetireBody(std::string* dst, BranchId branch) {
  PutVarint32(dst, branch);
}

Status DecodeRetireBody(Slice body, BranchId* out) {
  if (!GetVarint32(&body, out) || !body.empty()) {
    return Status::Corruption("WAL retire record: malformed");
  }
  return Status::OK();
}

}  // namespace wal
}  // namespace decibel
