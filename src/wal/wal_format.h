#ifndef DECIBEL_WAL_WAL_FORMAT_H_
#define DECIBEL_WAL_WAL_FORMAT_H_

/// \file wal_format.h
/// On-disk format of the write-ahead log.
///
/// A WAL segment (wal/<seq>.wal) is a sequence of framed records:
///
///   len u32 | masked_crc u32 | payload (len bytes)
///
/// where the CRC-32 covers the payload and is masked (common/crc32.h) so
/// payloads that themselves contain CRCs stay checkable. The payload is
///
///   lsn varint64 | type u8 | body
///
/// Log sequence numbers increase by one per record across segment
/// boundaries; recovery replays every record with lsn greater than the
/// manifest's checkpoint_lsn and stops cleanly at the first frame that is
/// truncated or fails its CRC (a torn tail — everything after it was
/// never acknowledged under fsync durability).
///
/// One record type exists per facade mutation that must survive a crash:
/// kBatch (ApplyBatch), kCommit (Commit/EnsureCommitted), kBranch
/// (Branch/BranchAt) and kMerge. Bodies carry exactly the identifiers the
/// original operation was assigned, so replay is deterministic: the
/// version graph re-applies ids idempotently (VersionGraph::ReplayCommit/
/// ReplayBranch) and the engines — rolled back to the checkpoint — see
/// each post-checkpoint operation exactly once.

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "engine/engine.h"
#include "txn/write_batch.h"
#include "version/types.h"

namespace decibel {
namespace wal {

/// Frame header: len u32 + masked_crc u32.
inline constexpr size_t kFrameHeaderSize = 8;
/// Sanity bound on one record's payload (a batch body is bounded by the
/// batch arena, itself bounded by memory; 1 GiB rejects garbage lengths
/// long before allocation).
inline constexpr uint32_t kMaxPayloadSize = 1u << 30;

enum class RecordType : uint8_t {
  kBatch = 1,
  kCommit = 2,
  kBranch = 3,
  kMerge = 4,
  kRetire = 5,
};

/// Appends the frame (header + payload) for \p body to \p dst.
void EncodeFrame(std::string* dst, uint64_t lsn, RecordType type, Slice body);

/// A decoded frame: the payload's lsn/type plus its body bytes (a view
/// into the reader's buffer).
struct FrameView {
  uint64_t lsn = 0;
  RecordType type = RecordType::kBatch;
  Slice body;
};

// ---------------------------------------------------------------- bodies

/// kBatch body: branch | record_size | nops | per-op (kind u8, then a
/// zigzag pk for deletes or record_size raw bytes for inserts/updates).
void EncodeBatchBody(std::string* dst, BranchId branch,
                     const WriteBatch& batch);
/// Decodes into \p batch (cleared first). \p record_size is validated
/// against the batch's schema.
Status DecodeBatchBody(Slice body, BranchId* branch, WriteBatch* batch);

/// kCommit body: branch | commit | parents.
struct CommitBody {
  BranchId branch = kInvalidBranch;
  CommitId commit = kInvalidCommit;
  std::vector<CommitId> parents;
};
void EncodeCommitBody(std::string* dst, const CommitBody& b);
Status DecodeCommitBody(Slice body, CommitBody* out);

/// kBranch body: everything CreateBranch needs on both the graph and the
/// engine side.
struct BranchBody {
  BranchId child = kInvalidBranch;
  std::string name;
  CommitId base = kInvalidCommit;
  BranchId parent_branch = kInvalidBranch;
  bool at_head = true;
  CommitId head = kInvalidCommit;
};
void EncodeBranchBody(std::string* dst, const BranchBody& b);
Status DecodeBranchBody(Slice body, BranchBody* out);

/// kMerge body: the merge inputs, the graph parents of the merge commit,
/// and the *resolved* write batch the merge staged (a kBatch body for
/// the 'into' branch as trailing bytes). Replay re-registers the commit
/// and applies the carried batch — no merge re-execution, so recovery is
/// deterministic even for callback-resolved merges.
struct MergeBody {
  BranchId into = kInvalidBranch;
  BranchId from = kInvalidBranch;
  CommitId lca = kInvalidCommit;
  CommitId commit = kInvalidCommit;
  MergePolicy policy = MergePolicy::kTwoWayLeft;
  std::vector<CommitId> parents;
  /// The staged ops, encoded with EncodeBatchBody (decode with
  /// DecodeBatchBody against the database schema).
  std::string batch_body;
};
void EncodeMergeBody(std::string* dst, const MergeBody& b);
Status DecodeMergeBody(Slice body, MergeBody* out);

/// kRetire body: the branch soft-retired by Decibel::RetireBranch (its
/// active flag lives only in the graph, which durable recovery rebuilds
/// from the checkpointed graph + WAL — so the retire itself must log).
void EncodeRetireBody(std::string* dst, BranchId branch);
Status DecodeRetireBody(Slice body, BranchId* out);

}  // namespace wal
}  // namespace decibel

#endif  // DECIBEL_WAL_WAL_FORMAT_H_
