#include "wal/checkpoint.h"

namespace decibel {
namespace wal {

CheckpointScheduler::CheckpointScheduler(std::function<Status()> fn,
                                         uint64_t interval_bytes)
    : fn_(std::move(fn)), interval_bytes_(interval_bytes) {}

CheckpointScheduler::~CheckpointScheduler() { Stop(); }

void CheckpointScheduler::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  stop_ = false;
  thread_ = std::thread(&CheckpointScheduler::Run, this);
}

void CheckpointScheduler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stop_ = true;
    cv_.notify_all();
  }
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
}

void CheckpointScheduler::NotifyBytes(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_bytes_ += n;
  if (pending_bytes_ >= interval_bytes_) cv_.notify_all();
}

void CheckpointScheduler::TriggerNow() {
  std::lock_guard<std::mutex> lock(mu_);
  trigger_ = true;
  cv_.notify_all();
}

Status CheckpointScheduler::last_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_status_;
}

void CheckpointScheduler::Run() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] {
      return stop_ || trigger_ || pending_bytes_ >= interval_bytes_;
    });
    if (stop_) return;
    pending_bytes_ = 0;
    trigger_ = false;
    lock.unlock();
    Status s = fn_();
    lock.lock();
    last_status_ = s;
  }
}

}  // namespace wal
}  // namespace decibel
