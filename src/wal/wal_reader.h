#ifndef DECIBEL_WAL_WAL_READER_H_
#define DECIBEL_WAL_WAL_READER_H_

/// \file wal_reader.h
/// Sequential reader over one WAL segment. Stops cleanly at the first
/// frame that is incomplete, oversized, or fails its CRC — the torn tail
/// a crash mid-append leaves behind — and reports the byte offset where
/// the valid prefix ends so recovery can truncate the garbage away.

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "wal/wal_format.h"

namespace decibel {
namespace wal {

class Reader {
 public:
  /// Reads the whole segment into memory (segments are bounded by the
  /// writer's rollover threshold).
  static Result<std::unique_ptr<Reader>> Open(const std::string& path);

  /// Advances to the next valid record. Returns false at the end of the
  /// valid prefix — either a clean end-of-file or a torn/corrupt frame
  /// (distinguish with torn_tail()). The FrameView's body points into the
  /// reader's buffer and stays valid until the reader is destroyed.
  bool Next(FrameView* frame);

  /// Byte offset one past the last valid record (== file size iff the
  /// segment ends cleanly). Meaningful once Next returned false.
  uint64_t valid_end() const { return valid_end_; }
  /// True if the segment ends in a torn or corrupt frame rather than at
  /// a record boundary.
  bool torn_tail() const { return torn_tail_; }
  uint64_t file_size() const { return data_.size(); }

 private:
  explicit Reader(std::string data) : data_(std::move(data)) {}

  const std::string data_;
  uint64_t pos_ = 0;
  uint64_t valid_end_ = 0;
  bool torn_tail_ = false;
  bool done_ = false;
};

}  // namespace wal
}  // namespace decibel

#endif  // DECIBEL_WAL_WAL_READER_H_
