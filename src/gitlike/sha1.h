#ifndef DECIBEL_GITLIKE_SHA1_H_
#define DECIBEL_GITLIKE_SHA1_H_

/// \file sha1.h
/// SHA-1, as used by git for content addressing. Part of the git-baseline
/// comparison of §5.7: git "compute[s] SHA-1 hashes for each commit
/// (proportional to data set size)" — reproducing that cost requires
/// actually hashing.

#include <array>
#include <cstdint>
#include <string>

#include "common/slice.h"

namespace decibel {
namespace gitlike {

/// Computes the SHA-1 digest of \p data (20 raw bytes).
std::array<uint8_t, 20> Sha1(Slice data);

/// Computes the SHA-1 digest as a 40-char lowercase hex string (the object
/// id format git uses everywhere).
std::string Sha1Hex(Slice data);

/// Hex-encodes a raw digest.
std::string ToHex(const std::array<uint8_t, 20>& digest);

}  // namespace gitlike
}  // namespace decibel

#endif  // DECIBEL_GITLIKE_SHA1_H_
