#ifndef DECIBEL_GITLIKE_DELTA_H_
#define DECIBEL_GITLIKE_DELTA_H_

/// \file delta.h
/// Binary delta encoding against a base object, in the spirit of git's
/// packfile deltas: a target is expressed as copy-from-base and insert
/// tokens. Used by ObjectStore::Repack, which — like git repack — spends
/// its time exhaustively comparing candidate bases (§5.7: "git
/// exhaustively compares objects to find the best delta encoding").
///
/// Format: tokens
///   0x00 <varint n> <n bytes>             -- insert literal bytes
///   0x01 <varint off> <varint len>        -- copy [off, off+len) from base

#include <string>

#include "common/result.h"
#include "common/slice.h"

namespace decibel {
namespace gitlike {

/// Computes a delta turning \p base into \p target. Always succeeds (falls
/// back to a single insert when nothing matches).
std::string ComputeDelta(Slice base, Slice target);

/// Reconstructs the target from \p base and \p delta.
Result<std::string> ApplyDelta(Slice base, Slice delta);

}  // namespace gitlike
}  // namespace decibel

#endif  // DECIBEL_GITLIKE_DELTA_H_
