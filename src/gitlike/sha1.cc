#include "gitlike/sha1.h"

#include <cstring>

namespace decibel {
namespace gitlike {

namespace {

inline uint32_t Rotl(uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }

struct Sha1State {
  uint32_t h[5] = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u,
                   0xC3D2E1F0u};

  void ProcessBlock(const uint8_t* block) {
    uint32_t w[80];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<uint32_t>(block[i * 4]) << 24) |
             (static_cast<uint32_t>(block[i * 4 + 1]) << 16) |
             (static_cast<uint32_t>(block[i * 4 + 2]) << 8) |
             static_cast<uint32_t>(block[i * 4 + 3]);
    }
    for (int i = 16; i < 80; ++i) {
      w[i] = Rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
    }
    uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];
    for (int i = 0; i < 80; ++i) {
      uint32_t f, k;
      if (i < 20) {
        f = (b & c) | ((~b) & d);
        k = 0x5A827999u;
      } else if (i < 40) {
        f = b ^ c ^ d;
        k = 0x6ED9EBA1u;
      } else if (i < 60) {
        f = (b & c) | (b & d) | (c & d);
        k = 0x8F1BBCDCu;
      } else {
        f = b ^ c ^ d;
        k = 0xCA62C1D6u;
      }
      const uint32_t tmp = Rotl(a, 5) + f + e + k + w[i];
      e = d;
      d = c;
      c = Rotl(b, 30);
      b = a;
      a = tmp;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
  }
};

}  // namespace

std::array<uint8_t, 20> Sha1(Slice data) {
  Sha1State state;
  const uint8_t* p = data.udata();
  size_t remaining = data.size();
  while (remaining >= 64) {
    state.ProcessBlock(p);
    p += 64;
    remaining -= 64;
  }
  // Padding: 0x80, zeros, 64-bit big-endian bit length.
  uint8_t block[128] = {0};
  memcpy(block, p, remaining);
  block[remaining] = 0x80;
  const size_t total = remaining < 56 ? 64 : 128;
  const uint64_t bits = static_cast<uint64_t>(data.size()) * 8;
  for (int i = 0; i < 8; ++i) {
    block[total - 1 - i] = static_cast<uint8_t>(bits >> (8 * i));
  }
  state.ProcessBlock(block);
  if (total == 128) state.ProcessBlock(block + 64);

  std::array<uint8_t, 20> digest;
  for (int i = 0; i < 5; ++i) {
    digest[i * 4] = static_cast<uint8_t>(state.h[i] >> 24);
    digest[i * 4 + 1] = static_cast<uint8_t>(state.h[i] >> 16);
    digest[i * 4 + 2] = static_cast<uint8_t>(state.h[i] >> 8);
    digest[i * 4 + 3] = static_cast<uint8_t>(state.h[i]);
  }
  return digest;
}

std::string ToHex(const std::array<uint8_t, 20>& digest) {
  static const char kHex[] = "0123456789abcdef";
  std::string out(40, '0');
  for (int i = 0; i < 20; ++i) {
    out[i * 2] = kHex[digest[i] >> 4];
    out[i * 2 + 1] = kHex[digest[i] & 0xf];
  }
  return out;
}

std::string Sha1Hex(Slice data) { return ToHex(Sha1(data)); }

}  // namespace gitlike
}  // namespace decibel
