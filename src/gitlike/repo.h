#ifndef DECIBEL_GITLIKE_REPO_H_
#define DECIBEL_GITLIKE_REPO_H_

/// \file repo.h
/// The git-based Decibel baseline of §5.7: "we implemented the Decibel API
/// using git as a storage manager", in the paper's two layouts and two
/// formats:
///
///   * kOneFile      — the whole relation is one working-tree file, so
///                     every commit re-serializes and re-hashes the full
///                     table ("git 1 file");
///   * kFilePerTuple — one file per record, so commits hash only touched
///                     tuples but trees get huge and checkouts have to
///                     materialize every tuple file ("git file/tup");
///
///   * kBinary       — records serialized as their fixed-width bytes;
///   * kCsv          — records rendered as CSV text (larger raw size,
///                     §5.7).
///
/// Commits snapshot the working state into the object store (blobs + a
/// tree + a commit object); checkout materializes a commit's tree back
/// into memory; Repack delegates to the object store.

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "gitlike/object_store.h"
#include "storage/record.h"
#include "storage/schema.h"
#include "version/types.h"

namespace decibel {
namespace gitlike {

enum class Layout { kOneFile, kFilePerTuple };
enum class Format { kBinary, kCsv };

const char* LayoutName(Layout layout);
const char* FormatName(Format format);

class GitRepo {
 public:
  static Result<std::unique_ptr<GitRepo>> Open(const std::string& directory,
                                               const Schema& schema,
                                               Layout layout, Format format);

  /// Versioning API mirroring Decibel's (§5.7: "call git commands (e.g.
  /// branch) in place of Decibel API calls").
  Status Insert(BranchId branch, const Record& record);
  Status Update(BranchId branch, const Record& record);
  Status Delete(BranchId branch, int64_t pk);

  /// Commits \p branch's working state; returns the commit object id.
  Result<std::string> Commit(BranchId branch);

  /// Creates \p child from \p parent's current state (git branch).
  Status CreateBranch(BranchId child, BranchId parent);

  /// Materializes the state at \p commit_id (git checkout): loads the
  /// commit, its tree, and every blob. Returns the number of records.
  Result<uint64_t> Checkout(const std::string& commit_id);

  /// git repack: returns seconds spent.
  Result<double> Repack(int window = 10) { return store_->Repack(window); }

  /// Bytes under .git (the repository size column of Table 6).
  uint64_t RepoSizeBytes() const { return store_->SizeBytes(); }

  /// Logical bytes of live data across branch working states.
  uint64_t DataSizeBytes() const;

  uint64_t num_objects() const { return store_->num_objects(); }

 private:
  GitRepo(const Schema& schema, Layout layout, Format format)
      : schema_(schema), layout_(layout), format_(format) {}

  std::string EncodeRecord(const RecordRef& rec) const;
  Result<Record> DecodeRecord(Slice data) const;
  /// Serializes one branch's working state into (file name -> content).
  void SerializeWorkingState(BranchId branch,
                             std::map<std::string, std::string>* files) const;

  Schema schema_;
  Layout layout_;
  Format format_;
  std::unique_ptr<ObjectStore> store_;

  /// Working states: branch -> pk -> record bytes.
  std::unordered_map<BranchId, std::map<int64_t, std::string>> working_;
  /// file/tup mode: pks touched since the last commit (git's index lets it
  /// skip re-hashing unchanged files).
  std::unordered_map<BranchId, std::unordered_set<int64_t>> dirty_;
  /// Cached tree entries from the previous commit per branch, so unchanged
  /// blobs are not re-hashed in file/tup mode.
  std::unordered_map<BranchId, std::map<std::string, std::string>>
      last_tree_;
  std::unordered_map<BranchId, std::string> heads_;  // branch -> commit id
};

}  // namespace gitlike
}  // namespace decibel

#endif  // DECIBEL_GITLIKE_REPO_H_
