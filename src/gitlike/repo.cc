#include "gitlike/repo.h"

#include <sstream>

#include "common/coding.h"
#include "common/io.h"

namespace decibel {
namespace gitlike {

const char* LayoutName(Layout layout) {
  return layout == Layout::kOneFile ? "1 file" : "file/tup";
}

const char* FormatName(Format format) {
  return format == Format::kBinary ? "bin" : "csv";
}

Result<std::unique_ptr<GitRepo>> GitRepo::Open(const std::string& directory,
                                               const Schema& schema,
                                               Layout layout, Format format) {
  std::unique_ptr<GitRepo> repo(new GitRepo(schema, layout, format));
  DECIBEL_ASSIGN_OR_RETURN(ObjectStore store, ObjectStore::Open(directory));
  repo->store_ = std::make_unique<ObjectStore>(std::move(store));
  repo->working_.try_emplace(kMasterBranch);
  return repo;
}

std::string GitRepo::EncodeRecord(const RecordRef& rec) const {
  if (format_ == Format::kBinary) {
    return rec.data().ToString();
  }
  // CSV: string encoding inflates the raw size (§5.7).
  std::ostringstream out;
  out << rec.pk();
  for (size_t c = 1; c < schema_.num_columns(); ++c) {
    out << ',';
    switch (schema_.column(c).type) {
      case FieldType::kInt32:
        out << rec.GetInt32(c);
        break;
      case FieldType::kInt64:
        out << rec.GetInt64(c);
        break;
      case FieldType::kDouble:
        out << rec.GetDouble(c);
        break;
      case FieldType::kString:
        out << rec.GetString(c);
        break;
    }
  }
  out << '\n';
  return out.str();
}

Result<Record> GitRepo::DecodeRecord(Slice data) const {
  if (format_ == Format::kBinary) {
    if (data.size() != schema_.record_size()) {
      return Status::Corruption("gitlike: bad binary record size");
    }
    return Record(&schema_, data);
  }
  Record rec(&schema_);
  std::string text = data.ToString();
  std::istringstream in(text);
  std::string field;
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    if (!std::getline(in, field, c + 1 == schema_.num_columns() ? '\n' : ',')) {
      return Status::Corruption("gitlike: truncated csv record");
    }
    switch (schema_.column(c).type) {
      case FieldType::kInt32:
        rec.SetInt32(c, static_cast<int32_t>(atoll(field.c_str())));
        break;
      case FieldType::kInt64:
        rec.SetInt64(c, atoll(field.c_str()));
        break;
      case FieldType::kDouble:
        rec.SetDouble(c, atof(field.c_str()));
        break;
      case FieldType::kString:
        rec.SetString(c, field);
        break;
    }
  }
  return rec;
}

Status GitRepo::Insert(BranchId branch, const Record& record) {
  auto it = working_.find(branch);
  if (it == working_.end()) {
    return Status::NotFound("gitlike: no branch " + std::to_string(branch));
  }
  it->second[record.pk()] = EncodeRecord(record.ref());
  dirty_[branch].insert(record.pk());
  return Status::OK();
}

Status GitRepo::Update(BranchId branch, const Record& record) {
  return Insert(branch, record);
}

Status GitRepo::Delete(BranchId branch, int64_t pk) {
  auto it = working_.find(branch);
  if (it == working_.end()) {
    return Status::NotFound("gitlike: no branch " + std::to_string(branch));
  }
  it->second.erase(pk);
  dirty_[branch].insert(pk);
  return Status::OK();
}

void GitRepo::SerializeWorkingState(
    BranchId branch, std::map<std::string, std::string>* files) const {
  const auto& state = working_.at(branch);
  if (layout_ == Layout::kOneFile) {
    std::string all;
    for (const auto& [pk, bytes] : state) {
      all += bytes;
    }
    (*files)["table"] = std::move(all);
  } else {
    for (const auto& [pk, bytes] : state) {
      (*files)["t" + std::to_string(pk)] = bytes;
    }
  }
}

Result<std::string> GitRepo::Commit(BranchId branch) {
  auto it = working_.find(branch);
  if (it == working_.end()) {
    return Status::NotFound("gitlike: no branch " + std::to_string(branch));
  }
  std::map<std::string, std::string>& tree = last_tree_[branch];

  if (layout_ == Layout::kOneFile) {
    // git add of the single file: serialize + hash the whole table.
    std::map<std::string, std::string> files;
    SerializeWorkingState(branch, &files);
    DECIBEL_ASSIGN_OR_RETURN(std::string blob,
                             store_->Put(ObjectType::kBlob, files["table"]));
    tree.clear();
    tree["table"] = blob;
  } else {
    // file/tup: only re-hash files touched since the last commit (git's
    // stat cache gives it the same shortcut).
    auto dirty_it = dirty_.find(branch);
    if (dirty_it != dirty_.end()) {
      for (int64_t pk : dirty_it->second) {
        const std::string name = "t" + std::to_string(pk);
        auto rec = it->second.find(pk);
        if (rec == it->second.end()) {
          tree.erase(name);  // deleted tuple
        } else {
          DECIBEL_ASSIGN_OR_RETURN(
              std::string blob, store_->Put(ObjectType::kBlob, rec->second));
          tree[name] = blob;
        }
      }
      dirty_it->second.clear();
    }
  }

  // Tree object: "<name> <blob-id>\n" per entry, sorted (std::map).
  std::string tree_payload;
  for (const auto& [name, blob] : tree) {
    tree_payload += name;
    tree_payload += ' ';
    tree_payload += blob;
    tree_payload += '\n';
  }
  DECIBEL_ASSIGN_OR_RETURN(std::string tree_id,
                           store_->Put(ObjectType::kTree, tree_payload));

  std::string commit_payload = "tree " + tree_id + "\n";
  auto head = heads_.find(branch);
  if (head != heads_.end()) {
    commit_payload += "parent " + head->second + "\n";
  }
  commit_payload += "branch " + std::to_string(branch) + "\n";
  DECIBEL_ASSIGN_OR_RETURN(std::string commit_id,
                           store_->Put(ObjectType::kCommit, commit_payload));
  heads_[branch] = commit_id;
  return commit_id;
}

Status GitRepo::CreateBranch(BranchId child, BranchId parent) {
  auto it = working_.find(parent);
  if (it == working_.end()) {
    return Status::NotFound("gitlike: no branch " + std::to_string(parent));
  }
  working_[child] = it->second;  // working-copy clone
  last_tree_[child] = last_tree_[parent];
  auto head = heads_.find(parent);
  if (head != heads_.end()) heads_[child] = head->second;
  return Status::OK();
}

Result<uint64_t> GitRepo::Checkout(const std::string& commit_id) {
  DECIBEL_ASSIGN_OR_RETURN(std::string commit,
                           store_->Get(ObjectType::kCommit, commit_id));
  const size_t tree_pos = commit.find("tree ");
  if (tree_pos != 0) {
    return Status::Corruption("gitlike: malformed commit object");
  }
  const std::string tree_id = commit.substr(5, 40);
  DECIBEL_ASSIGN_OR_RETURN(std::string tree,
                           store_->Get(ObjectType::kTree, tree_id));

  // Materialize every blob — the full working-copy restore git performs.
  uint64_t records = 0;
  std::istringstream lines(tree);
  std::string line;
  while (std::getline(lines, line)) {
    const size_t space = line.find(' ');
    if (space == std::string::npos) {
      return Status::Corruption("gitlike: malformed tree entry");
    }
    const std::string blob_id = line.substr(space + 1);
    DECIBEL_ASSIGN_OR_RETURN(std::string blob,
                             store_->Get(ObjectType::kBlob, blob_id));
    if (layout_ == Layout::kOneFile) {
      if (format_ == Format::kBinary) {
        records += blob.size() / schema_.record_size();
      } else {
        for (char c : blob) {
          if (c == '\n') ++records;
        }
      }
    } else {
      DECIBEL_ASSIGN_OR_RETURN(Record rec, DecodeRecord(blob));
      (void)rec;
      ++records;
    }
  }
  return records;
}

uint64_t GitRepo::DataSizeBytes() const {
  uint64_t total = 0;
  for (const auto& [branch, state] : working_) {
    for (const auto& [pk, bytes] : state) {
      total += bytes.size();
    }
  }
  return total;
}

}  // namespace gitlike
}  // namespace decibel
