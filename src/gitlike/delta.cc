#include "gitlike/delta.h"

#include <cstring>
#include <vector>

#include "common/coding.h"

namespace decibel {
namespace gitlike {

namespace {

constexpr char kInsertTag = 0x00;
constexpr char kCopyTag = 0x01;
constexpr size_t kMinMatch = 8;
constexpr int kHashBits = 18;
constexpr int kMaxChain = 16;

inline uint32_t HashAt(const char* p) {
  uint64_t v;
  memcpy(&v, p, sizeof(v));
  return static_cast<uint32_t>((v * 0x9E3779B97F4A7C15ULL) >>
                               (64 - kHashBits));
}

void FlushInsert(Slice target, size_t start, size_t end, std::string* out) {
  if (end <= start) return;
  out->push_back(kInsertTag);
  PutVarint64(out, end - start);
  out->append(target.data() + start, end - start);
}

}  // namespace

std::string ComputeDelta(Slice base, Slice target) {
  std::string out;
  if (base.size() < kMinMatch || target.size() < kMinMatch) {
    FlushInsert(target, 0, target.size(), &out);
    return out;
  }
  // Index base positions by an 8-byte rolling hash with bounded chains.
  std::vector<int64_t> head(size_t{1} << kHashBits, -1);
  std::vector<int64_t> prev(base.size(), -1);
  for (size_t i = 0; i + kMinMatch <= base.size(); ++i) {
    const uint32_t h = HashAt(base.data() + i);
    prev[i] = head[h];
    head[h] = static_cast<int64_t>(i);
  }

  size_t insert_start = 0;
  size_t i = 0;
  while (i + kMinMatch <= target.size()) {
    const uint32_t h = HashAt(target.data() + i);
    size_t best_len = 0;
    size_t best_off = 0;
    int64_t cand = head[h];
    int chain = 0;
    while (cand >= 0 && chain++ < kMaxChain) {
      const size_t off = static_cast<size_t>(cand);
      size_t len = 0;
      const size_t max_len = std::min(base.size() - off, target.size() - i);
      const char* a = base.data() + off;
      const char* b = target.data() + i;
      while (len < max_len && a[len] == b[len]) ++len;
      if (len > best_len) {
        best_len = len;
        best_off = off;
      }
      cand = prev[off];
    }
    if (best_len >= kMinMatch) {
      // Extend the match backward over the pending literal region.
      while (best_off > 0 && i > insert_start &&
             base[best_off - 1] == target[i - 1]) {
        --best_off;
        --i;
        ++best_len;
      }
      FlushInsert(target, insert_start, i, &out);
      out.push_back(kCopyTag);
      PutVarint64(&out, best_off);
      PutVarint64(&out, best_len);
      i += best_len;
      insert_start = i;
    } else {
      ++i;
    }
  }
  FlushInsert(target, insert_start, target.size(), &out);
  return out;
}

Result<std::string> ApplyDelta(Slice base, Slice delta) {
  std::string out;
  while (!delta.empty()) {
    const char tag = delta[0];
    delta.RemovePrefix(1);
    if (tag == kInsertTag) {
      uint64_t len;
      if (!GetVarint64(&delta, &len) || len > delta.size()) {
        return Status::Corruption("delta: truncated insert");
      }
      out.append(delta.data(), static_cast<size_t>(len));
      delta.RemovePrefix(static_cast<size_t>(len));
    } else if (tag == kCopyTag) {
      uint64_t off, len;
      if (!GetVarint64(&delta, &off) || !GetVarint64(&delta, &len)) {
        return Status::Corruption("delta: truncated copy");
      }
      if (off + len > base.size()) {
        return Status::Corruption("delta: copy out of base range");
      }
      out.append(base.data() + off, static_cast<size_t>(len));
    } else {
      return Status::Corruption("delta: bad tag");
    }
  }
  return out;
}

}  // namespace gitlike
}  // namespace decibel
