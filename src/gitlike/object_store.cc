#include "gitlike/object_store.h"

#include <algorithm>

#include "common/coding.h"
#include "common/io.h"
#include "common/lz.h"
#include "common/stopwatch.h"
#include "gitlike/delta.h"
#include "gitlike/sha1.h"

namespace decibel {
namespace gitlike {

namespace {

const char* TypeName(ObjectType type) {
  switch (type) {
    case ObjectType::kBlob:
      return "blob";
    case ObjectType::kTree:
      return "tree";
    case ObjectType::kCommit:
      return "commit";
  }
  return "unknown";
}

/// git frames every object as "<type> <size>\0<payload>" before hashing
/// and compression.
std::string Frame(ObjectType type, Slice payload) {
  std::string frame = TypeName(type);
  frame += ' ';
  frame += std::to_string(payload.size());
  frame += '\0';
  frame.append(payload.data(), payload.size());
  return frame;
}

Result<std::pair<ObjectType, std::string>> ParseFrame(Slice frame) {
  const char* nul =
      static_cast<const char*>(memchr(frame.data(), '\0', frame.size()));
  if (nul == nullptr) {
    return Status::Corruption("gitlike: frame missing header");
  }
  const std::string header(frame.data(), nul - frame.data());
  const size_t space = header.find(' ');
  if (space == std::string::npos) {
    return Status::Corruption("gitlike: malformed frame header");
  }
  const std::string type_name = header.substr(0, space);
  ObjectType type;
  if (type_name == "blob") {
    type = ObjectType::kBlob;
  } else if (type_name == "tree") {
    type = ObjectType::kTree;
  } else if (type_name == "commit") {
    type = ObjectType::kCommit;
  } else {
    return Status::Corruption("gitlike: unknown object type " + type_name);
  }
  const size_t payload_offset = (nul - frame.data()) + 1;
  return std::make_pair(
      type, std::string(frame.data() + payload_offset,
                        frame.size() - payload_offset));
}

}  // namespace

Result<ObjectStore> ObjectStore::Open(const std::string& directory) {
  ObjectStore store(directory);
  DECIBEL_RETURN_NOT_OK(CreateDir(JoinPath(directory, "objects")));
  // Index loose objects.
  auto fans = ListDir(JoinPath(directory, "objects"));
  if (fans.ok()) {
    for (const std::string& fan : *fans) {
      if (fan.size() != 2) continue;
      auto files = ListDir(JoinPath(JoinPath(directory, "objects"), fan));
      if (!files.ok()) continue;
      for (const std::string& rest : *files) {
        Entry entry;
        entry.packed = false;
        store.index_[fan + rest] = entry;
      }
    }
  }
  // Index the packfile, if any.
  const std::string idx_path = JoinPath(directory, "pack.idx");
  if (FileExists(idx_path)) {
    DECIBEL_ASSIGN_OR_RETURN(std::string idx, ReadFileToString(idx_path));
    Slice input(idx);
    uint64_t count;
    if (!GetVarint64(&input, &count)) {
      return Status::Corruption("gitlike: bad pack index");
    }
    for (uint64_t i = 0; i < count; ++i) {
      Slice id, base;
      uint64_t offset, length;
      if (!GetLengthPrefixed(&input, &id) || !GetVarint64(&input, &offset) ||
          !GetVarint64(&input, &length) ||
          !GetLengthPrefixed(&input, &base)) {
        return Status::Corruption("gitlike: truncated pack index");
      }
      Entry entry;
      entry.packed = true;
      entry.offset = offset;
      entry.length = static_cast<uint32_t>(length);
      entry.delta_base = base.ToString();
      store.index_[id.ToString()] = entry;
    }
  }
  return store;
}

std::string ObjectStore::LoosePath(const std::string& id) const {
  return JoinPath(JoinPath(JoinPath(directory_, "objects"), id.substr(0, 2)),
                  id.substr(2));
}

std::string ObjectStore::PackPath() const {
  return JoinPath(directory_, "pack.data");
}

Result<std::string> ObjectStore::Put(ObjectType type, Slice payload) {
  const std::string frame = Frame(type, payload);
  const std::string id = Sha1Hex(frame);  // hashing cost on every write
  if (index_.count(id) != 0) return id;   // dedup: unchanged content free
  std::string compressed;
  lz::Compress(frame, &compressed);       // compression cost, like zlib
  DECIBEL_RETURN_NOT_OK(
      CreateDir(JoinPath(JoinPath(directory_, "objects"), id.substr(0, 2))));
  DECIBEL_RETURN_NOT_OK(WriteStringToFile(LoosePath(id), compressed));
  Entry entry;
  entry.packed = false;
  index_[id] = entry;
  return id;
}

Result<std::string> ObjectStore::Load(const std::string& id) const {
  auto it = index_.find(id);
  if (it == index_.end()) {
    return Status::NotFound("gitlike: no object " + id);
  }
  if (!it->second.packed) {
    DECIBEL_ASSIGN_OR_RETURN(std::string compressed,
                             ReadFileToString(LoosePath(id)));
    return lz::Decompress(compressed);
  }
  DECIBEL_ASSIGN_OR_RETURN(RandomAccessFile pack,
                           RandomAccessFile::Open(PackPath()));
  std::string compressed;
  DECIBEL_RETURN_NOT_OK(
      pack.Read(it->second.offset, it->second.length, &compressed));
  DECIBEL_ASSIGN_OR_RETURN(std::string data, lz::Decompress(compressed));
  if (!it->second.delta_base.empty()) {
    DECIBEL_ASSIGN_OR_RETURN(std::string base, Load(it->second.delta_base));
    return ApplyDelta(base, data);
  }
  return data;
}

Result<std::string> ObjectStore::Get(ObjectType type, const std::string& id) {
  DECIBEL_ASSIGN_OR_RETURN(std::string frame, Load(id));
  DECIBEL_ASSIGN_OR_RETURN(auto parsed, ParseFrame(frame));
  if (parsed.first != type) {
    return Status::InvalidArgument("gitlike: object " + id + " is a " +
                                   TypeName(parsed.first) + ", wanted " +
                                   TypeName(type));
  }
  return std::move(parsed.second);
}

bool ObjectStore::Contains(const std::string& id) const {
  return index_.count(id) != 0;
}

Result<double> ObjectStore::Repack(int window) {
  Stopwatch timer;
  // Load every object (loose and previously packed) into memory, largest
  // first — git sorts its delta window similarly.
  std::vector<std::pair<std::string, std::string>> objects;  // id -> frame
  objects.reserve(index_.size());
  for (const auto& [id, entry] : index_) {
    DECIBEL_ASSIGN_OR_RETURN(std::string frame, Load(id));
    objects.emplace_back(id, std::move(frame));
  }
  std::sort(objects.begin(), objects.end(), [](const auto& a, const auto& b) {
    return a.second.size() != b.second.size()
               ? a.second.size() > b.second.size()
               : a.first < b.first;
  });

  DECIBEL_ASSIGN_OR_RETURN(WritableFile pack,
                           WritableFile::Open(PackPath(), /*truncate=*/true));
  std::unordered_map<std::string, Entry> new_index;
  std::vector<size_t> recent;  // indexes into `objects` of the delta window

  for (size_t i = 0; i < objects.size(); ++i) {
    const auto& [id, frame] = objects[i];
    // Exhaustive delta search over the window (the slow part, §5.7).
    std::string best_payload;
    lz::Compress(frame, &best_payload);
    std::string best_base;
    for (size_t r : recent) {
      const std::string delta = ComputeDelta(objects[r].second, frame);
      std::string compressed;
      lz::Compress(delta, &compressed);
      if (compressed.size() < best_payload.size()) {
        best_payload = std::move(compressed);
        best_base = objects[r].first;
      }
    }
    Entry entry;
    entry.packed = true;
    entry.offset = pack.Size();
    entry.length = static_cast<uint32_t>(best_payload.size());
    entry.delta_base = best_base;
    DECIBEL_RETURN_NOT_OK(pack.Append(best_payload));
    new_index[id] = entry;

    // Only whole objects join the window (depth-1 delta chains keep reads
    // simple; git bounds depth too).
    if (best_base.empty()) {
      recent.push_back(i);
      if (recent.size() > static_cast<size_t>(window)) {
        recent.erase(recent.begin());
      }
    }
  }
  DECIBEL_RETURN_NOT_OK(pack.Close());

  // Persist the index.
  std::string idx;
  PutVarint64(&idx, new_index.size());
  for (const auto& [id, entry] : new_index) {
    PutLengthPrefixed(&idx, id);
    PutVarint64(&idx, entry.offset);
    PutVarint64(&idx, entry.length);
    PutLengthPrefixed(&idx, entry.delta_base);
  }
  DECIBEL_RETURN_NOT_OK(WriteStringToFile(JoinPath(directory_, "pack.idx"),
                                          idx));

  // Drop the loose objects the pack replaces.
  for (const auto& [id, entry] : index_) {
    if (!entry.packed) {
      DECIBEL_RETURN_NOT_OK(RemoveFile(LoosePath(id)));
    }
  }
  index_ = std::move(new_index);
  return timer.ElapsedSeconds();
}

uint64_t ObjectStore::SizeBytes() const { return DirSizeBytes(directory_); }

}  // namespace gitlike
}  // namespace decibel
