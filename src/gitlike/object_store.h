#ifndef DECIBEL_GITLIKE_OBJECT_STORE_H_
#define DECIBEL_GITLIKE_OBJECT_STORE_H_

/// \file object_store.h
/// A content-addressed object store in git's image: objects are addressed
/// by the SHA-1 of "<type> <size>\0<payload>", stored compressed as loose
/// files under objects/xx/yyyy..., and periodically *repacked* into a
/// packfile where each entry may be delta-encoded against a similar
/// object. The repack cost (exhaustive delta search + recompression) and
/// the loose-object write cost (hash + compress per commit) are the two
/// ends of the trade-off §5.7 measures against Decibel.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/slice.h"

namespace decibel {
namespace gitlike {

enum class ObjectType : uint8_t { kBlob = 1, kTree = 2, kCommit = 3 };

class ObjectStore {
 public:
  /// Opens (or creates) an object store rooted at \p directory.
  static Result<ObjectStore> Open(const std::string& directory);

  /// Stores an object; returns its id (40-hex SHA-1). Writing an object
  /// that already exists is a cheap no-op after hashing — exactly git's
  /// behaviour, which makes unchanged file-per-tuple blobs free.
  Result<std::string> Put(ObjectType type, Slice payload);

  /// Fetches an object's payload; checks the type.
  Result<std::string> Get(ObjectType type, const std::string& id);

  bool Contains(const std::string& id) const;

  /// Rewrites all loose objects into a single packfile, delta-encoding
  /// entries against a sliding window of previously packed objects (window
  /// size \p window, like git's --window). Returns seconds spent.
  Result<double> Repack(int window = 10);

  /// Total bytes on disk (loose objects + packfiles + refs live above).
  uint64_t SizeBytes() const;

  uint64_t num_objects() const { return index_.size(); }

 private:
  explicit ObjectStore(std::string directory)
      : directory_(std::move(directory)) {}

  struct Entry {
    ObjectType type;
    bool packed = false;
    // Loose: file path suffix. Packed: offset/length within the packfile.
    uint64_t offset = 0;
    uint32_t length = 0;
    /// Non-empty when the packed entry is a delta against another object.
    std::string delta_base;
  };

  std::string LoosePath(const std::string& id) const;
  std::string PackPath() const;
  Result<std::string> Load(const std::string& id) const;

  std::string directory_;
  std::unordered_map<std::string, Entry> index_;
};

}  // namespace gitlike
}  // namespace decibel

#endif  // DECIBEL_GITLIKE_OBJECT_STORE_H_
