#ifndef DECIBEL_NET_CLIENT_H_
#define DECIBEL_NET_CLIENT_H_

/// \file client.h
/// A blocking Decibel client: one TCP connection, one statement in
/// flight. Not thread-safe — one Client per thread (the agentic bench
/// gives each agent its own).
///
/// Asynchronous kNotify frames can arrive between a request and its
/// response; Execute() queues them, and PollNotification() /
/// WaitNotification() hand them out in arrival order.

#include <cstdint>
#include <deque>
#include <string>

#include "common/result.h"
#include "common/socket.h"
#include "common/status.h"
#include "net/protocol.h"

namespace decibel {
namespace net {

class Client {
 public:
  /// Connects (blocking) to a decibel_server.
  static Result<Client> Connect(const std::string& host, uint16_t port,
                                uint32_t max_frame_bytes =
                                    kDefaultMaxFrameBytes);

  /// Executes one VQuel statement and blocks for its result. A non-OK
  /// *return* means the connection failed (send/framing); a server-side
  /// statement error comes back as an OK Result whose WireResult carries
  /// the error code + message (wr.ToStatus()).
  Result<WireResult> Execute(const std::string& statement);

  /// SUBSCRIBE <branch> as a convenience: the server's acknowledgement
  /// collapsed to its Status.
  Status Subscribe(const std::string& branch);
  Status Unsubscribe(const std::string& branch);

  /// Round-trip liveness probe.
  Status Ping();

  /// Pops an already-received notification; false if none queued.
  bool PollNotification(Notification* note);

  /// Blocks up to \p timeout_ms for a notification (reads the socket if
  /// none is queued). IOError "recv timed out" when time runs out.
  Result<Notification> WaitNotification(int timeout_ms);

  void Close() { sock_.Close(); }
  bool connected() const { return sock_.valid(); }

 private:
  explicit Client(Socket sock, uint32_t max_frame_bytes)
      : sock_(std::move(sock)), max_frame_bytes_(max_frame_bytes) {}

  /// Reads whole frames until one of type \p want arrives, queueing any
  /// notifications encountered on the way.
  Result<std::string> ReadUntil(MessageType want);

  /// Back to the default 60 s receive safety net after a
  /// WaitNotification override.
  void RestoreTimeout();

  Socket sock_;
  uint32_t max_frame_bytes_;
  std::string rbuf_;
  std::deque<Notification> notes_;
};

}  // namespace net
}  // namespace decibel

#endif  // DECIBEL_NET_CLIENT_H_
