#include "net/protocol.h"

#include "common/coding.h"
#include "common/crc32.h"

namespace decibel {
namespace net {

namespace {

Status Truncated(const char* what) {
  return Status::Corruption(std::string("net: truncated ") + what +
                            " payload");
}

bool GetCell(Slice* input, FieldType type, ResultCell* cell) {
  switch (type) {
    case FieldType::kInt32:
    case FieldType::kInt64: {
      uint64_t zz;
      if (!GetVarint64(input, &zz)) return false;
      cell->i = ZigZagDecode(zz);
      return true;
    }
    case FieldType::kDouble: {
      uint64_t bits;
      if (!GetFixed64(input, &bits)) return false;
      memcpy(&cell->d, &bits, sizeof(cell->d));
      return true;
    }
    case FieldType::kString: {
      Slice s;
      if (!GetLengthPrefixed(input, &s)) return false;
      cell->s = s.ToString();
      return true;
    }
  }
  return false;
}

void PutCell(std::string* dst, FieldType type, const ResultCell& cell) {
  switch (type) {
    case FieldType::kInt32:
    case FieldType::kInt64:
      PutVarint64(dst, ZigZagEncode(cell.i));
      return;
    case FieldType::kDouble: {
      uint64_t bits;
      memcpy(&bits, &cell.d, sizeof(bits));
      PutFixed64(dst, bits);
      return;
    }
    case FieldType::kString:
      PutLengthPrefixed(dst, Slice(cell.s));
      return;
  }
}

}  // namespace

// --------------------------------------------------------------- framing

void WrapFrame(std::string* out, Slice payload) {
  PutFixed32(out, static_cast<uint32_t>(payload.size()));
  PutFixed32(out, MaskCrc(Crc32(payload)));
  out->append(payload.data(), payload.size());
}

Result<size_t> TryDecodeFrame(Slice buffer, uint32_t max_frame_bytes,
                              std::string* payload) {
  if (buffer.size() < kFrameHeaderBytes) return static_cast<size_t>(0);
  const uint32_t len = DecodeFixed32(buffer.data());
  if (len > max_frame_bytes) {
    return Status::Corruption("net: frame of " + std::to_string(len) +
                              " bytes exceeds the " +
                              std::to_string(max_frame_bytes) +
                              "-byte frame cap");
  }
  if (buffer.size() < kFrameHeaderBytes + len) return static_cast<size_t>(0);
  const uint32_t stored = UnmaskCrc(DecodeFixed32(buffer.data() + 4));
  const Slice body(buffer.data() + kFrameHeaderBytes, len);
  if (stored != Crc32(body)) {
    return Status::Corruption("net: frame checksum mismatch");
  }
  payload->assign(body.data(), body.size());
  return kFrameHeaderBytes + len;
}

Result<MessageType> PayloadType(Slice payload) {
  if (payload.empty()) {
    return Status::InvalidArgument("net: empty frame payload");
  }
  const uint8_t t = static_cast<uint8_t>(payload[0]);
  if (t < static_cast<uint8_t>(MessageType::kExecute) ||
      t > static_cast<uint8_t>(MessageType::kPong)) {
    return Status::InvalidArgument("net: unknown message type " +
                                   std::to_string(t));
  }
  return static_cast<MessageType>(t);
}

// -------------------------------------------------------------- messages

void EncodeExecute(std::string* payload, Slice statement) {
  payload->push_back(static_cast<char>(MessageType::kExecute));
  PutLengthPrefixed(payload, statement);
}

Status DecodeExecute(Slice payload, std::string* statement) {
  payload.RemovePrefix(1);
  Slice body;
  if (!GetLengthPrefixed(&payload, &body) || !payload.empty()) {
    return Truncated("execute");
  }
  statement->assign(body.data(), body.size());
  return Status::OK();
}

void EncodeResult(std::string* payload, const WireResult& result) {
  payload->push_back(static_cast<char>(MessageType::kResult));
  payload->push_back(static_cast<char>(result.code));
  PutLengthPrefixed(payload, Slice(result.message));
  PutLengthPrefixed(payload, Slice(result.output));
  PutVarint64(payload, result.rows);
  PutVarint32(payload, static_cast<uint32_t>(result.columns.size()));
  for (const ResultColumn& col : result.columns) {
    PutLengthPrefixed(payload, Slice(col.name));
    payload->push_back(static_cast<char>(col.type));
    PutVarint32(payload, col.width);
  }
  PutVarint64(payload, result.typed_rows.size());
  for (const std::vector<ResultCell>& row : result.typed_rows) {
    for (size_t c = 0; c < result.columns.size(); ++c) {
      PutCell(payload, result.columns[c].type, row[c]);
    }
  }
}

Status DecodeResult(Slice payload, WireResult* result) {
  payload.RemovePrefix(1);
  if (payload.empty()) return Truncated("result");
  result->code = static_cast<StatusCode>(payload[0]);
  payload.RemovePrefix(1);
  Slice message, output;
  if (!GetLengthPrefixed(&payload, &message) ||
      !GetLengthPrefixed(&payload, &output) ||
      !GetVarint64(&payload, &result->rows)) {
    return Truncated("result");
  }
  result->message = message.ToString();
  result->output = output.ToString();
  uint32_t ncols;
  if (!GetVarint32(&payload, &ncols)) return Truncated("result");
  result->columns.clear();
  result->columns.reserve(ncols);
  for (uint32_t c = 0; c < ncols; ++c) {
    ResultColumn col;
    Slice name;
    if (!GetLengthPrefixed(&payload, &name) || payload.empty()) {
      return Truncated("result column");
    }
    col.name = name.ToString();
    const uint8_t type = static_cast<uint8_t>(payload[0]);
    payload.RemovePrefix(1);
    if (type > static_cast<uint8_t>(FieldType::kString)) {
      return Status::Corruption("net: bad column type " +
                                std::to_string(type));
    }
    col.type = static_cast<FieldType>(type);
    if (!GetVarint32(&payload, &col.width)) return Truncated("result column");
    result->columns.push_back(std::move(col));
  }
  uint64_t nrows;
  if (!GetVarint64(&payload, &nrows)) return Truncated("result");
  result->typed_rows.clear();
  for (uint64_t r = 0; r < nrows; ++r) {
    std::vector<ResultCell> row(result->columns.size());
    for (uint32_t c = 0; c < ncols; ++c) {
      if (!GetCell(&payload, result->columns[c].type, &row[c])) {
        return Truncated("result row");
      }
    }
    result->typed_rows.push_back(std::move(row));
  }
  if (!payload.empty()) {
    return Status::Corruption("net: trailing bytes after result payload");
  }
  return Status::OK();
}

void EncodeNotify(std::string* payload, const Notification& note) {
  payload->push_back(static_cast<char>(MessageType::kNotify));
  PutVarint32(payload, note.branch);
  PutLengthPrefixed(payload, Slice(note.branch_name));
  PutVarint64(payload, note.commit);
  PutVarint64(payload, note.records);
  payload->push_back(note.merge ? 1 : 0);
}

Status DecodeNotify(Slice payload, Notification* note) {
  payload.RemovePrefix(1);
  Slice name;
  if (!GetVarint32(&payload, &note->branch) ||
      !GetLengthPrefixed(&payload, &name) ||
      !GetVarint64(&payload, &note->commit) ||
      !GetVarint64(&payload, &note->records) || payload.size() != 1) {
    return Truncated("notify");
  }
  note->branch_name = name.ToString();
  note->merge = payload[0] != 0;
  return Status::OK();
}

void EncodePing(std::string* payload) {
  payload->push_back(static_cast<char>(MessageType::kPing));
}

void EncodePong(std::string* payload) {
  payload->push_back(static_cast<char>(MessageType::kPong));
}

}  // namespace net
}  // namespace decibel
