#include "net/server.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cctype>
#include <cstring>
#include <utility>
#include <vector>

namespace decibel {
namespace net {

namespace {

/// First whitespace-delimited token, uppercased, and the remainder.
void SplitVerb(const std::string& statement, std::string* verb,
               std::string* rest) {
  size_t b = 0;
  while (b < statement.size() &&
         std::isspace(static_cast<unsigned char>(statement[b]))) {
    ++b;
  }
  size_t e = b;
  while (e < statement.size() &&
         !std::isspace(static_cast<unsigned char>(statement[e]))) {
    ++e;
  }
  verb->clear();
  for (size_t i = b; i < e; ++i) {
    verb->push_back(static_cast<char>(
        std::toupper(static_cast<unsigned char>(statement[i]))));
  }
  size_t r = e;
  while (r < statement.size() &&
         std::isspace(static_cast<unsigned char>(statement[r]))) {
    ++r;
  }
  size_t end = statement.size();
  while (end > r &&
         std::isspace(static_cast<unsigned char>(statement[end - 1]))) {
    --end;
  }
  *rest = statement.substr(r, end - r);
}

/// Branch by name or numeric id (the vquel convention).
Result<BranchId> ResolveBranch(Decibel* db, const std::string& name) {
  if (!name.empty() &&
      name.find_first_not_of("0123456789") == std::string::npos) {
    const unsigned long id = strtoul(name.c_str(), nullptr, 10);
    if (db->HasBranch(static_cast<BranchId>(id))) {
      return static_cast<BranchId>(id);
    }
  }
  return db->FindBranchByName(name);
}

WireResult ErrorResult(const Status& status) {
  WireResult wr;
  wr.code = status.code();
  wr.message = std::string(status.message());
  return wr;
}

WireResult OkResult(std::string output, uint64_t rows = 0) {
  WireResult wr;
  wr.output = std::move(output);
  wr.rows = rows;
  return wr;
}

}  // namespace

Result<std::unique_ptr<Server>> Server::Start(Decibel* db,
                                              ServerOptions options) {
  std::unique_ptr<Server> server(new Server(db, std::move(options)));
  DECIBEL_ASSIGN_OR_RETURN(
      server->listener_,
      Socket::Listen(server->options_.host, server->options_.port));
  DECIBEL_ASSIGN_OR_RETURN(server->port_, server->listener_.local_port());
  DECIBEL_RETURN_NOT_OK(server->listener_.SetNonBlocking(true));
  if (::pipe(server->wake_pipe_) != 0) {
    return Status::IOError("pipe: " + std::string(strerror(errno)));
  }
  // The loop drains the pipe until empty; the read end must not block.
  for (int fd : server->wake_pipe_) {
    fcntl(fd, F_SETFL, fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  }
  server->loop_ = std::thread([s = server.get()] { s->EventLoop(); });
  return server;
}

Server::~Server() { Stop(); }

void Server::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopping_ = true;
  }
  // Wake the loop; it closes every session on the way out.
  const char byte = 'x';
  [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  if (loop_.joinable()) loop_.join();
  // Let in-flight statements finish (their responses go nowhere — the
  // sockets are closed — but the facade work completes cleanly).
  pool_.Wait();
  // Subscriptions are already unsubscribed (CloseSession), but one
  // delivery may still be on the publisher's dispatcher thread with our
  // callback on its stack; wait it out so the callback cannot outlive
  // the server.
  db_->publisher()->Drain();
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
  std::lock_guard<std::mutex> lock(mu_);
  stopped_ = true;
}

uint64_t Server::num_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

void Server::EventLoop() {
  for (;;) {
    std::vector<pollfd> pfds;
    std::vector<SessionPtr> polled;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) break;
      pfds.reserve(sessions_.size() + 2);
      pfds.push_back({wake_pipe_[0], POLLIN, 0});
      pfds.push_back({listener_.fd(), POLLIN, 0});
      polled.reserve(sessions_.size());
      for (const auto& [fd, session] : sessions_) {
        pfds.push_back({fd, POLLIN, 0});
        polled.push_back(session);
      }
    }
    const int r = ::poll(pfds.data(), pfds.size(), -1);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;  // poll itself failing is unrecoverable for the loop
    }
    if (pfds[0].revents != 0) {
      char drain[64];
      while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
    }
    if (pfds[1].revents != 0) {
      for (;;) {
        Result<Socket> accepted = listener_.Accept();
        if (!accepted.ok()) break;  // EAGAIN (or a transient error)
        auto session = std::make_shared<SessionState>(db_);
        session->sock = std::move(accepted.value());
        if (!session->sock.SetNonBlocking(true).ok()) continue;
        std::lock_guard<std::mutex> lock(mu_);
        session->id = next_session_id_++;
        sessions_[session->sock.fd()] = session;
      }
    }
    for (size_t i = 2; i < pfds.size(); ++i) {
      if (pfds[i].revents == 0) continue;
      HandleReadable(polled[i - 2]);
    }
  }
  // Shutdown path: close the listener and every session.
  listener_.Close();
  std::vector<SessionPtr> victims;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [fd, session] : sessions_) victims.push_back(session);
    sessions_.clear();
  }
  for (const SessionPtr& session : victims) CloseSession(session);
}

void Server::HandleReadable(const SessionPtr& session) {
  // Drain the socket into the frame buffer.
  bool peer_gone = false;
  char buf[64 * 1024];
  for (;;) {
    bool would_block = false;
    Result<size_t> got = session->sock.Recv(buf, sizeof(buf), &would_block);
    if (!got.ok()) {
      peer_gone = true;  // reset
      break;
    }
    if (would_block) break;
    if (*got == 0) {
      peer_gone = true;  // clean close
      break;
    }
    session->rbuf.append(buf, *got);
  }
  // Peel off every complete frame.
  size_t consumed = 0;
  bool poisoned = false;
  for (;;) {
    std::string payload;
    Result<size_t> n = TryDecodeFrame(
        Slice(session->rbuf.data() + consumed, session->rbuf.size() - consumed),
        options_.max_frame_bytes, &payload);
    if (!n.ok()) {
      // Oversized or corrupt frame: framing cannot resynchronize, so the
      // only clean rejection is dropping the connection.
      poisoned = true;
      break;
    }
    if (*n == 0) break;  // incomplete
    consumed += *n;
    Result<MessageType> type = PayloadType(payload);
    if (!type.ok()) {
      poisoned = true;
      break;
    }
    switch (*type) {
      case MessageType::kPing: {
        std::string pong;
        EncodePong(&pong);
        SendFrame(session, pong);
        break;
      }
      case MessageType::kExecute:
        EnqueueRequest(session, std::move(payload));
        break;
      default:
        // kResult / kNotify / kPong are server-to-client only.
        poisoned = true;
        break;
    }
    if (poisoned) break;
  }
  session->rbuf.erase(0, consumed);
  if (peer_gone || poisoned) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      sessions_.erase(session->sock.fd());
    }
    CloseSession(session);
  }
}

void Server::EnqueueRequest(const SessionPtr& session, std::string payload) {
  std::lock_guard<std::mutex> lock(session->exec_mu);
  if (session->busy) {
    session->pending.push_back(std::move(payload));
    return;
  }
  session->busy = true;
  pool_.Submit([this, session, p = std::move(payload)]() mutable {
    RunRequest(session, std::move(p));
  });
}

void Server::RunRequest(const SessionPtr& session, std::string payload) {
  std::string statement;
  WireResult wr;
  const Status decoded = DecodeExecute(payload, &statement);
  if (!decoded.ok()) {
    wr = ErrorResult(Status::InvalidArgument("net: malformed execute frame"));
  } else {
    wr = ExecuteStatement(session, statement);
  }
  std::string response;
  EncodeResult(&response, wr);
  SendFrame(session, response);
  // Pull the next queued request back through the pool (round-robin
  // between sessions rather than letting one chatty session pin a
  // worker).
  std::lock_guard<std::mutex> lock(session->exec_mu);
  if (session->pending.empty()) {
    session->busy = false;
    return;
  }
  std::string next = std::move(session->pending.front());
  session->pending.pop_front();
  pool_.Submit([this, session, p = std::move(next)]() mutable {
    RunRequest(session, std::move(p));
  });
}

WireResult Server::ExecuteStatement(const SessionPtr& session,
                                    const std::string& statement) {
  std::string verb, rest;
  SplitVerb(statement, &verb, &rest);
  if (verb == "SUBSCRIBE") return Subscribe(session, rest);
  if (verb == "UNSUBSCRIBE") return Unsubscribe(session, rest);
  Result<vquel::ExecResult> executed = session->interp.Execute(statement);
  if (!executed.ok()) return ErrorResult(executed.status());
  WireResult wr;
  wr.output = std::move(executed->output);
  wr.rows = executed->rows;
  wr.columns = std::move(executed->columns);
  wr.typed_rows.reserve(executed->typed_rows.size());
  for (std::vector<vquel::Value>& row : executed->typed_rows) {
    std::vector<ResultCell> cells;
    cells.reserve(row.size());
    for (vquel::Value& v : row) {
      ResultCell cell;
      cell.i = v.i;
      cell.d = v.d;
      cell.s = std::move(v.s);
      cells.push_back(std::move(cell));
    }
    wr.typed_rows.push_back(std::move(cells));
  }
  return wr;
}

WireResult Server::Subscribe(const SessionPtr& session,
                             const std::string& branch_name) {
  if (branch_name.empty() ||
      branch_name.find_first_of(" \t") != std::string::npos) {
    return ErrorResult(Status::InvalidArgument("net: SUBSCRIBE <branch>"));
  }
  Result<BranchId> branch = ResolveBranch(db_, branch_name);
  if (!branch.ok()) return ErrorResult(branch.status());
  std::lock_guard<std::mutex> lock(session->exec_mu);
  if (session->subs.count(*branch) != 0) {
    return OkResult("already subscribed to branch " + branch_name);
  }
  std::weak_ptr<SessionState> weak = session;
  const uint64_t token = db_->publisher()->Subscribe(
      *branch, [this, weak](const CommitEvent& event) {
        SessionPtr s = weak.lock();
        if (s == nullptr) return;
        Notification note;
        note.branch = event.branch;
        note.branch_name = event.branch_name;
        note.commit = event.commit;
        note.records = event.records;
        note.merge = event.merge;
        std::string payload;
        EncodeNotify(&payload, note);
        SendFrame(s, payload);
      });
  session->subs[*branch] = token;
  return OkResult("subscribed to branch " + branch_name +
                  " (commits after this acknowledgement)");
}

WireResult Server::Unsubscribe(const SessionPtr& session,
                               const std::string& branch_name) {
  if (branch_name.empty()) {
    return ErrorResult(Status::InvalidArgument("net: UNSUBSCRIBE <branch>"));
  }
  Result<BranchId> branch = ResolveBranch(db_, branch_name);
  if (!branch.ok()) return ErrorResult(branch.status());
  std::lock_guard<std::mutex> lock(session->exec_mu);
  auto it = session->subs.find(*branch);
  if (it == session->subs.end()) {
    return ErrorResult(Status::InvalidArgument(
        "net: not subscribed to branch " + branch_name));
  }
  db_->publisher()->Unsubscribe(it->second);
  session->subs.erase(it);
  return OkResult("unsubscribed from branch " + branch_name);
}

void Server::SendFrame(const SessionPtr& session, Slice payload) {
  std::string frame;
  WrapFrame(&frame, payload);
  std::lock_guard<std::mutex> lock(session->write_mu);
  if (session->closed) return;
  // A bounded wait: a peer that stopped reading must not pin a worker
  // (or the publisher's dispatcher) forever. On failure just stop
  // writing; the event loop reaps the session when the peer's half
  // closes.
  if (!session->sock.SendAll(frame, /*timeout_ms=*/30000).ok()) {
    session->closed = true;
  }
}

void Server::CloseSession(const SessionPtr& session) {
  std::map<BranchId, uint64_t> subs;
  {
    std::lock_guard<std::mutex> lock(session->exec_mu);
    subs.swap(session->subs);
  }
  for (const auto& [branch, token] : subs) {
    db_->publisher()->Unsubscribe(token);
  }
  std::lock_guard<std::mutex> lock(session->write_mu);
  session->closed = true;
  session->sock.Close();
}

}  // namespace net
}  // namespace decibel
