#ifndef DECIBEL_NET_SERVER_H_
#define DECIBEL_NET_SERVER_H_

/// \file server.h
/// The Decibel session server: a TCP front end over one Decibel facade.
///
/// Concurrency shape:
///  - One event-loop thread owns every socket read: it accepts
///    connections, assembles frames per session, and closes sessions
///    whose peers vanish or send garbage. poll() plus a self-pipe keeps
///    it wakeable, so thousands of mostly-idle sessions cost one fd each
///    and no threads.
///  - Complete requests run on a shared ThreadPool. A session's
///    vquel::Interpreter is stateful (open transaction), so at most one
///    request per session is in flight; requests arriving meanwhile
///    queue in order behind it. Distinct sessions execute concurrently —
///    the facade's own locking (striped registries, FIFO lock manager)
///    is the isolation boundary, exactly as for in-process callers;
///    the server adds no second write path.
///  - Session writes (responses from workers, notifications from the
///    publisher's dispatcher thread) serialize on a per-session write
///    mutex, so frames never interleave mid-frame.
///
/// SUBSCRIBE <branch> / UNSUBSCRIBE <branch> are intercepted here (the
/// library interpreter rejects them): they register the session with the
/// facade's CommitPublisher, and every later commit or merge on that
/// branch is pushed as a kNotify frame. Delivery is ordered and
/// at-most-once, starting from commits after the SUBSCRIBE's (ok)
/// response; there is no replay of earlier history.

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/result.h"
#include "common/socket.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/decibel.h"
#include "net/protocol.h"
#include "query/vquel.h"

namespace decibel {
namespace net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back with Server::port().
  uint16_t port = 0;
  /// Workers executing statements (sessions multiplex onto these).
  size_t worker_threads = 8;
  /// Per-frame payload cap; oversized frames poison the connection.
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
};

class Server {
 public:
  /// Binds, starts the event loop, and returns a running server.
  static Result<std::unique_ptr<Server>> Start(Decibel* db,
                                               ServerOptions options);

  /// Stops if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Orderly shutdown: stop accepting, drop live sessions (peers see a
  /// clean close), drain in-flight statements, drop subscriptions.
  /// Idempotent.
  void Stop();

  /// The bound listening port.
  uint16_t port() const { return port_; }

  /// Live (accepted, not yet closed) sessions.
  uint64_t num_sessions() const;

 private:
  /// Per-connection state. Owned by the sessions_ map; workers and the
  /// publisher's dispatcher hold shared_ptrs across their callbacks, so
  /// a session the event loop drops dies only after the last in-flight
  /// use of it finishes.
  struct SessionState {
    explicit SessionState(Decibel* db) : interp(db) {}

    Socket sock;
    uint64_t id = 0;

    /// Owned by the event-loop thread only: frame assembly buffer.
    std::string rbuf;

    /// Guards sock writes *and* sock.Close() — a worker mid-send and
    /// the loop closing the fd would otherwise race.
    std::mutex write_mu;
    bool closed = false;  ///< under write_mu

    /// Guards the execution pipeline (one request in flight).
    std::mutex exec_mu;
    bool busy = false;                 ///< a worker owns this session
    std::deque<std::string> pending;   ///< queued request payloads

    /// Statement state; touched only by the single in-flight worker.
    vquel::Interpreter interp;

    /// branch -> publisher token, for UNSUBSCRIBE and close-time
    /// cleanup. Guarded by exec_mu (only the in-flight worker mutates).
    std::map<BranchId, uint64_t> subs;
  };
  using SessionPtr = std::shared_ptr<SessionState>;

  Server(Decibel* db, ServerOptions options)
      : db_(db), options_(std::move(options)), pool_(options_.worker_threads) {}

  void EventLoop();
  void HandleReadable(const SessionPtr& session);
  /// Queues or dispatches one complete request payload.
  void EnqueueRequest(const SessionPtr& session, std::string payload);
  /// Worker-side: execute one payload, send the response, then pull the
  /// next queued request (if any) back onto the pool.
  void RunRequest(const SessionPtr& session, std::string payload);
  WireResult ExecuteStatement(const SessionPtr& session,
                              const std::string& statement);
  WireResult Subscribe(const SessionPtr& session, const std::string& branch);
  WireResult Unsubscribe(const SessionPtr& session,
                         const std::string& branch);
  /// Frames + sends under the session write mutex. Failures mark the
  /// session for the event loop to reap; they are not the caller's
  /// problem (the peer is gone).
  void SendFrame(const SessionPtr& session, Slice payload);
  /// Close the socket (under write_mu) and drop the session's
  /// subscriptions. Safe to call from loop and Stop.
  void CloseSession(const SessionPtr& session);

  Decibel* const db_;
  const ServerOptions options_;
  ThreadPool pool_;

  Socket listener_;
  uint16_t port_ = 0;
  int wake_pipe_[2] = {-1, -1};  ///< self-pipe: [read, write]
  std::thread loop_;

  mutable std::mutex mu_;  ///< guards sessions_, stopping_
  std::unordered_map<int, SessionPtr> sessions_;  ///< by fd
  uint64_t next_session_id_ = 1;
  bool stopping_ = false;
  bool stopped_ = false;  ///< Stop() ran to completion (main thread)
};

}  // namespace net
}  // namespace decibel

#endif  // DECIBEL_NET_SERVER_H_
