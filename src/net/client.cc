#include "net/client.h"

#include <utility>

namespace decibel {
namespace net {

Result<Client> Client::Connect(const std::string& host, uint16_t port,
                               uint32_t max_frame_bytes) {
  DECIBEL_ASSIGN_OR_RETURN(Socket sock, Socket::Connect(host, port));
  // Safety net: a wedged server surfaces as IOError, never a hang.
  DECIBEL_RETURN_NOT_OK(sock.SetRecvTimeout(60 * 1000));
  return Client(std::move(sock), max_frame_bytes);
}

Result<std::string> Client::ReadUntil(MessageType want) {
  for (;;) {
    // Peel complete frames off the buffer first.
    for (;;) {
      std::string payload;
      DECIBEL_ASSIGN_OR_RETURN(
          size_t n, TryDecodeFrame(Slice(rbuf_), max_frame_bytes_, &payload));
      if (n == 0) break;
      rbuf_.erase(0, n);
      DECIBEL_ASSIGN_OR_RETURN(MessageType type, PayloadType(payload));
      if (type == MessageType::kNotify) {
        Notification note;
        DECIBEL_RETURN_NOT_OK(DecodeNotify(payload, &note));
        notes_.push_back(std::move(note));
        continue;
      }
      if (type == want) return payload;
      return Status::IOError("net: unexpected " +
                             std::to_string(static_cast<int>(type)) +
                             " frame from server");
    }
    char buf[64 * 1024];
    DECIBEL_ASSIGN_OR_RETURN(size_t got, sock_.Recv(buf, sizeof(buf)));
    if (got == 0) {
      return Status::IOError("net: connection closed by server");
    }
    rbuf_.append(buf, got);
  }
}

Result<WireResult> Client::Execute(const std::string& statement) {
  std::string payload;
  EncodeExecute(&payload, statement);
  std::string frame;
  WrapFrame(&frame, payload);
  DECIBEL_RETURN_NOT_OK(sock_.SendAll(frame));
  DECIBEL_ASSIGN_OR_RETURN(std::string response,
                           ReadUntil(MessageType::kResult));
  WireResult wr;
  DECIBEL_RETURN_NOT_OK(DecodeResult(response, &wr));
  return wr;
}

Status Client::Subscribe(const std::string& branch) {
  DECIBEL_ASSIGN_OR_RETURN(WireResult wr, Execute("SUBSCRIBE " + branch));
  return wr.ToStatus();
}

Status Client::Unsubscribe(const std::string& branch) {
  DECIBEL_ASSIGN_OR_RETURN(WireResult wr, Execute("UNSUBSCRIBE " + branch));
  return wr.ToStatus();
}

Status Client::Ping() {
  std::string payload;
  EncodePing(&payload);
  std::string frame;
  WrapFrame(&frame, payload);
  DECIBEL_RETURN_NOT_OK(sock_.SendAll(frame));
  return ReadUntil(MessageType::kPong).status();
}

bool Client::PollNotification(Notification* note) {
  if (notes_.empty()) return false;
  *note = std::move(notes_.front());
  notes_.pop_front();
  return true;
}

Result<Notification> Client::WaitNotification(int timeout_ms) {
  Notification note;
  if (PollNotification(&note)) return note;
  // SO_RCVTIMEO treats 0 as "no timeout"; clamp so 0 means "immediately".
  DECIBEL_RETURN_NOT_OK(sock_.SetRecvTimeout(timeout_ms > 0 ? timeout_ms : 1));
  // Read frames until a notification lands in the queue; any result
  // frame here is a protocol violation (no request is outstanding).
  for (;;) {
    for (;;) {
      std::string payload;
      Result<size_t> n = TryDecodeFrame(Slice(rbuf_), max_frame_bytes_,
                                        &payload);
      if (!n.ok()) {
        RestoreTimeout();
        return n.status();
      }
      if (*n == 0) break;
      rbuf_.erase(0, *n);
      Result<MessageType> type = PayloadType(payload);
      if (!type.ok() || *type != MessageType::kNotify) {
        RestoreTimeout();
        return Status::IOError("net: unexpected frame while waiting for "
                               "notification");
      }
      Status decoded = DecodeNotify(payload, &note);
      if (!decoded.ok()) {
        RestoreTimeout();
        return decoded;
      }
      RestoreTimeout();
      return note;
    }
    char buf[64 * 1024];
    Result<size_t> got = sock_.Recv(buf, sizeof(buf));
    if (!got.ok()) {
      RestoreTimeout();
      return got.status();
    }
    if (*got == 0) {
      RestoreTimeout();
      return Status::IOError("net: connection closed by server");
    }
    rbuf_.append(buf, *got);
  }
}

void Client::RestoreTimeout() { (void)sock_.SetRecvTimeout(60 * 1000); }

}  // namespace net
}  // namespace decibel
