#ifndef DECIBEL_NET_PROTOCOL_H_
#define DECIBEL_NET_PROTOCOL_H_

/// \file protocol.h
/// The Decibel wire protocol: length-prefixed, CRC-framed binary messages
/// over a TCP stream. One frame carries one message:
///
///   [payload_len: u32 LE][masked crc32(payload): u32 LE][payload bytes]
///
/// payload[0] is the MessageType; the rest is the type-specific body in
/// the same varint/length-prefixed encoding the WAL uses (common/coding.h).
/// The CRC is masked in the RocksDB style (common/crc32.h) so a frame of
/// zeros never checksums as valid. A receiver rejects frames whose length
/// exceeds its configured cap *before* buffering the body, so a garbage
/// length prefix cannot balloon memory, and rejects CRC mismatches before
/// looking at a single payload byte.
///
/// Requests:
///   kExecute  one VQuel statement (the server adds no second write path:
///             every statement runs through the same vquel::Interpreter /
///             Decibel facade the library exposes).
///   kPing     liveness probe.
/// Responses:
///   kResult   Status (code + message) plus the statement's text output,
///             row count, and — for row-returning statements — column
///             metadata and typed rows.
///   kPong     reply to kPing.
/// Asynchronous server pushes (may arrive between a request and its
/// response; clients must queue them):
///   kNotify   a commit subscription event: branch, commit id, record
///             count, commit-or-merge kind.

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/schema.h"
#include "version/types.h"

namespace decibel {
namespace net {

/// Frame header: payload length + masked CRC, both fixed32 LE.
inline constexpr size_t kFrameHeaderBytes = 8;

/// Default cap on one frame's payload. Large enough for bulk result sets,
/// small enough that a hostile length prefix cannot OOM the server.
inline constexpr uint32_t kDefaultMaxFrameBytes = 32u << 20;

enum class MessageType : uint8_t {
  kExecute = 1,
  kResult = 2,
  kNotify = 3,
  kPing = 4,
  kPong = 5,
};

/// One column of a typed result set (reuses the schema Column: name,
/// field type, byte width).
using ResultColumn = Column;

/// One typed cell; which member is meaningful follows the column type.
struct ResultCell {
  int64_t i = 0;    ///< kInt32 / kInt64
  double d = 0;     ///< kDouble
  std::string s;    ///< kString
};

/// The full response to one executed statement.
struct WireResult {
  StatusCode code = StatusCode::kOk;
  std::string message;       ///< error message when code != kOk
  std::string output;        ///< human-readable text (shell-style)
  uint64_t rows = 0;         ///< rows returned / affected
  std::vector<ResultColumn> columns;
  std::vector<std::vector<ResultCell>> typed_rows;

  bool ok() const { return code == StatusCode::kOk; }
  /// The server-side Status reconstructed on the client.
  Status ToStatus() const {
    return ok() ? Status::OK() : Status(code, message);
  }
};

/// One commit-subscription push.
struct Notification {
  BranchId branch = kInvalidBranch;
  std::string branch_name;
  CommitId commit = kInvalidCommit;
  uint64_t records = 0;
  bool merge = false;
};

// ------------------------------------------------------------- framing

/// Appends a complete frame (header + payload) to \p out.
void WrapFrame(std::string* out, Slice payload);

/// Attempts to decode one frame from the front of \p buffer.
/// - Incomplete frame: returns 0 (consume nothing, read more bytes).
/// - Complete frame: sets *payload, returns header+payload bytes consumed.
/// - Oversized length prefix or CRC mismatch: Corruption (the connection
///   is poisoned — framing can't resynchronize — so callers must close).
Result<size_t> TryDecodeFrame(Slice buffer, uint32_t max_frame_bytes,
                              std::string* payload);

/// The message type of a decoded payload (InvalidArgument on empty or
/// unknown-type payloads).
Result<MessageType> PayloadType(Slice payload);

// ------------------------------------------------------------ messages

void EncodeExecute(std::string* payload, Slice statement);
Status DecodeExecute(Slice payload, std::string* statement);

void EncodeResult(std::string* payload, const WireResult& result);
Status DecodeResult(Slice payload, WireResult* result);

void EncodeNotify(std::string* payload, const Notification& note);
Status DecodeNotify(Slice payload, Notification* note);

void EncodePing(std::string* payload);
void EncodePong(std::string* payload);

}  // namespace net
}  // namespace decibel

#endif  // DECIBEL_NET_PROTOCOL_H_
