#ifndef DECIBEL_QUERY_VQUEL_H_
#define DECIBEL_QUERY_VQUEL_H_

/// \file vquel.h
/// A small interpreter for a VQuel-flavoured versioning query language
/// (§2.3 points at the full language definition in the TaPP paper; this
/// implements the statement shapes the paper's Table 1 exercises, plus the
/// version-control verbs). Used by the vquel_shell example and tests.
///
/// Statements (case-insensitive keywords):
///   SCAN <branch> [WHERE <col> <op> <int>]
///   SCAN COMMIT <id> [WHERE ...]
///   DIFF <a> <b>                      -- positive diff, Q2
///   JOIN <a> <b> [WHERE ...]          -- pk join, Q3
///   HEADS [WHERE ...]                 -- all-heads scan, Q4
///   INSERT <branch> <pk> <v1> [<v2> ...]
///   UPDATE <branch> <pk> <v1> [<v2> ...]
///   DELETE <branch> <pk>
///   BRANCH <name> FROM <branch>
///   COMMIT <branch>
///   MERGE <into> <from> [TWOWAY|THREEWAY] [LEFT|RIGHT]
///   BRANCHES                          -- list branches
///   LOG <branch>                      -- list commits of a branch
///
/// Branches are referenced by name or numeric id.

#include <string>

#include "core/decibel.h"

namespace decibel {
namespace vquel {

struct ExecResult {
  /// Human-readable result (a table of rows, an acknowledgement, ...).
  std::string output;
  uint64_t rows = 0;
};

/// Parses and executes one statement against \p db.
Result<ExecResult> Execute(Decibel* db, const std::string& statement);

}  // namespace vquel
}  // namespace decibel

#endif  // DECIBEL_QUERY_VQUEL_H_
