#ifndef DECIBEL_QUERY_VQUEL_H_
#define DECIBEL_QUERY_VQUEL_H_

/// \file vquel.h
/// A small interpreter for a VQuel-flavoured versioning query language
/// (§2.3 points at the full language definition in the TaPP paper; this
/// implements the statement shapes the paper's Table 1 exercises, plus the
/// version-control and transaction verbs). Used by the vquel_shell example
/// and tests.
///
/// Statements (case-insensitive keywords):
///   SELECT <col[,col...]|*> FROM <branch> [WHERE <col> <op> <int>]
///          [LIMIT <n>]                    -- ScanSpec cursor end-to-end:
///                                            the column list, the WHERE
///                                            clause and the LIMIT are
///                                            pushed into the engine
///   SELECT ... FROM COMMIT <id> [WHERE ...] [LIMIT <n>]
///   SCAN <branch> [WHERE <col> <op> <int>]
///   SCAN COMMIT <id> [WHERE ...]
///   DIFF <a> <b>                      -- positive diff, Q2
///   DIFF COMMIT <a> <b>               -- structured three-way diff: one
///                                        +/-/~ line per differing key,
///                                        classified against the commits'
///                                        common ancestor
///   JOIN <a> <b> [WHERE ...]          -- pk join, Q3
///   HEADS [WHERE ...]                 -- all-heads scan, Q4
///   INSERT <branch> <pk> <v1> [<v2> ...]
///   UPDATE <branch> <pk> <v1> [<v2> ...]
///   DELETE <branch> <pk>
///   BEGIN <branch>                    -- start a transaction
///   COMMIT TX                         -- apply the staged ops atomically
///   ABORT                             -- discard the staged ops
///   BRANCH <name> FROM <branch>
///   COMMIT <branch>                   -- version snapshot of a branch
///   MERGE <into> <from> [TWOWAY|THREEWAY] [LEFT|RIGHT]
///         [OURS|THEIRS|LATEST]        -- conflict resolution override
///         [PREVIEW]                   -- dry run: stream per-key
///                                        outcomes, commit nothing
///   BRANCHES                          -- list branches
///   LOG <branch>                      -- list commits of a branch
///   RETIRE <branch>                   -- soft-retire a branch (drops out
///                                        of HEADS; history stays)
///   INFO                              -- engine / graph / WAL statistics
///                                        (Decibel::Stats) as key: value
///                                        lines
///   SUBSCRIBE <branch>                -- server-only: register for commit
///   UNSUBSCRIBE <branch>              -- notifications. The library
///                                        interpreter rejects these with
///                                        InvalidArgument; the net server
///                                        intercepts them per session.
///
/// Branches are referenced by name or numeric id.
///
/// Transactions: after BEGIN <branch>, INSERT/UPDATE/DELETE statements
/// naming that branch stage into the transaction's WriteBatch (invisible
/// to SCAN and friends) until COMMIT TX applies them atomically under the
/// branch lock, or ABORT discards them. COMMIT TX failing with the
/// retryable Aborted status (lock timeout) leaves the transaction staged
/// — issue COMMIT TX again, or ABORT.

#include <optional>
#include <string>
#include <vector>

#include "core/decibel.h"

namespace decibel {
namespace vquel {

/// One typed result cell; the meaningful member follows the column type.
struct Value {
  int64_t i = 0;    ///< kInt32 / kInt64
  double d = 0;     ///< kDouble
  std::string s;    ///< kString
};

struct ExecResult {
  /// Human-readable result (a table of rows, an acknowledgement, ...).
  std::string output;
  uint64_t rows = 0;
  /// Typed result set, populated by the row-returning verbs (SELECT,
  /// SCAN): column metadata straight from the schema plus one Value per
  /// (row, column). Empty for acknowledgement-style verbs, whose result
  /// is the text output alone. The wire protocol ships these so remote
  /// clients get real types, not re-parsed text.
  std::vector<Column> columns;
  std::vector<std::vector<Value>> typed_rows;
};

/// A stateful statement interpreter: one Decibel handle plus at most one
/// open transaction (the BEGIN/COMMIT TX/ABORT verbs). Destroying the
/// interpreter aborts an open transaction.
class Interpreter {
 public:
  explicit Interpreter(Decibel* db) : db_(db) {}

  /// Parses and executes one statement.
  Result<ExecResult> Execute(const std::string& statement);

  bool in_transaction() const { return txn_.has_value(); }

 private:
  Decibel* db_;
  std::optional<Transaction> txn_;
};

/// Parses and executes one statement against \p db with no cross-statement
/// state: a BEGIN here is useless because the transaction is discarded
/// when the call returns. Use Interpreter for multi-statement scripts.
Result<ExecResult> Execute(Decibel* db, const std::string& statement);

}  // namespace vquel
}  // namespace decibel

#endif  // DECIBEL_QUERY_VQUEL_H_
