#include "query/vquel.h"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <vector>

#include "query/queries.h"

namespace decibel {
namespace vquel {

namespace {

std::vector<std::string> Tokenize(const std::string& input) {
  std::vector<std::string> tokens;
  std::istringstream in(input);
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return tokens;
}

std::string Upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

bool ParseInt(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long long v = strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

Result<BranchId> ResolveBranch(Decibel* db, const std::string& name) {
  int64_t id;
  if (ParseInt(name, &id) && id >= 0 &&
      db->HasBranch(static_cast<BranchId>(id))) {
    return static_cast<BranchId>(id);
  }
  return db->FindBranchByName(name);
}

Result<CompareOp> ParseOp(const std::string& tok) {
  if (tok == "=" || tok == "==") return CompareOp::kEq;
  if (tok == "!=" || tok == "<>") return CompareOp::kNe;
  if (tok == "<") return CompareOp::kLt;
  if (tok == "<=") return CompareOp::kLe;
  if (tok == ">") return CompareOp::kGt;
  if (tok == ">=") return CompareOp::kGe;
  return Status::InvalidArgument("vquel: bad comparison operator '" + tok +
                                 "'");
}

/// Parses an optional trailing "WHERE col op int" clause at position i.
Result<Predicate> ParseWhere(Decibel* db,
                             const std::vector<std::string>& tokens,
                             size_t i) {
  if (i >= tokens.size()) return Predicate();
  if (Upper(tokens[i]) != "WHERE" || i + 3 > tokens.size() + 0) {
    return Status::InvalidArgument("vquel: expected WHERE clause");
  }
  if (i + 4 > tokens.size()) {
    return Status::InvalidArgument("vquel: incomplete WHERE clause");
  }
  DECIBEL_ASSIGN_OR_RETURN(CompareOp op, ParseOp(tokens[i + 2]));
  int64_t value;
  if (!ParseInt(tokens[i + 3], &value)) {
    return Status::InvalidArgument("vquel: bad literal '" + tokens[i + 3] +
                                   "'");
  }
  return Predicate::Compare(db->schema(), tokens[i + 1], op, value);
}

void FormatColumn(std::ostream& out, const RecordRef& rec, size_t c) {
  switch (rec.schema()->column(c).type) {
    case FieldType::kInt32:
      out << rec.GetInt32(c);
      break;
    case FieldType::kInt64:
      out << rec.GetInt64(c);
      break;
    case FieldType::kDouble:
      out << rec.GetDouble(c);
      break;
    case FieldType::kString:
      out << rec.GetString(c);
      break;
  }
}

std::string FormatRecord(const RecordRef& rec) {
  std::ostringstream out;
  const Schema& schema = *rec.schema();
  out << rec.pk();
  for (size_t c = 1; c < schema.num_columns(); ++c) {
    out << " | ";
    FormatColumn(out, rec, c);
  }
  return out.str();
}

/// Formats only the projected columns, in the SELECT list's order.
std::string FormatProjected(const RecordRef& rec,
                            const std::vector<size_t>& projection) {
  if (projection.empty()) return FormatRecord(rec);
  std::ostringstream out;
  for (size_t i = 0; i < projection.size(); ++i) {
    if (i > 0) out << " | ";
    FormatColumn(out, rec, projection[i]);
  }
  return out.str();
}

Value TypedCell(const RecordRef& rec, size_t c) {
  Value v;
  switch (rec.schema()->column(c).type) {
    case FieldType::kInt32:
      v.i = rec.GetInt32(c);
      break;
    case FieldType::kInt64:
      v.i = rec.GetInt64(c);
      break;
    case FieldType::kDouble:
      v.d = rec.GetDouble(c);
      break;
    case FieldType::kString:
      v.s = std::string(rec.GetString(c));
      break;
  }
  return v;
}

/// Fills \p result->columns for \p projection (all schema columns when it
/// is empty) and returns the column indices each typed row extracts.
std::vector<size_t> SetResultColumns(const Schema& schema,
                                     const std::vector<size_t>& projection,
                                     ExecResult* result) {
  std::vector<size_t> indices = projection;
  if (indices.empty()) {
    indices.resize(schema.num_columns());
    for (size_t c = 0; c < indices.size(); ++c) indices[c] = c;
  }
  result->columns.reserve(indices.size());
  for (size_t c : indices) result->columns.push_back(schema.column(c));
  return indices;
}

Result<Record> ParseRecord(Decibel* db,
                           const std::vector<std::string>& tokens,
                           size_t first) {
  const Schema& schema = db->schema();
  if (first >= tokens.size()) {
    return Status::InvalidArgument("vquel: missing primary key");
  }
  if (tokens.size() > first + schema.num_columns()) {
    return Status::InvalidArgument(
        "vquel: too many values (schema has " +
        std::to_string(schema.num_columns()) + " columns)");
  }
  Record rec(&schema);
  int64_t pk;
  if (!ParseInt(tokens[first], &pk)) {
    return Status::InvalidArgument("vquel: bad primary key '" +
                                   tokens[first] + "'");
  }
  rec.SetPk(pk);
  for (size_t c = 1; c < schema.num_columns(); ++c) {
    const size_t ti = first + c;
    if (ti >= tokens.size()) break;  // unspecified columns stay zero
    switch (schema.column(c).type) {
      case FieldType::kInt32: {
        int64_t v;
        if (!ParseInt(tokens[ti], &v)) {
          return Status::InvalidArgument("vquel: bad value '" + tokens[ti] +
                                         "'");
        }
        rec.SetInt32(c, static_cast<int32_t>(v));
        break;
      }
      case FieldType::kInt64: {
        int64_t v;
        if (!ParseInt(tokens[ti], &v)) {
          return Status::InvalidArgument("vquel: bad value '" + tokens[ti] +
                                         "'");
        }
        rec.SetInt64(c, v);
        break;
      }
      case FieldType::kDouble: {
        char* end = nullptr;
        errno = 0;
        const double v = strtod(tokens[ti].c_str(), &end);
        if (errno != 0 || end != tokens[ti].c_str() + tokens[ti].size()) {
          return Status::InvalidArgument("vquel: bad value '" + tokens[ti] +
                                         "'");
        }
        rec.SetDouble(c, v);
        break;
      }
      case FieldType::kString:
        rec.SetString(c, tokens[ti]);
        break;
    }
  }
  return rec;
}

}  // namespace

Result<ExecResult> Execute(Decibel* db, const std::string& statement) {
  Interpreter one_shot(db);
  return one_shot.Execute(statement);
}

Result<ExecResult> Interpreter::Execute(const std::string& statement) {
  Decibel* db = db_;
  const std::vector<std::string> tokens = Tokenize(statement);
  if (tokens.empty()) {
    return Status::InvalidArgument("vquel: empty statement");
  }
  const std::string verb = Upper(tokens[0]);
  ExecResult result;
  std::ostringstream out;

  if (verb == "SELECT") {
    // SELECT <col[,col...]|*> FROM <branch|COMMIT id> [WHERE col op int]
    // [LIMIT n] — the whole statement maps onto one ScanSpec, so the
    // column list, the filter and the limit all push into the engine.
    size_t i = 1;
    std::vector<std::string> names;
    bool star = false;
    for (; i < tokens.size() && Upper(tokens[i]) != "FROM"; ++i) {
      const std::string& tok = tokens[i];
      size_t start = 0;
      while (start <= tok.size()) {
        const size_t comma = tok.find(',', start);
        const std::string piece =
            tok.substr(start, comma == std::string::npos ? std::string::npos
                                                         : comma - start);
        if (piece == "*") {
          star = true;
        } else if (!piece.empty()) {
          names.push_back(piece);
        }
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    }
    if (i >= tokens.size() || (names.empty() && !star)) {
      return Status::InvalidArgument(
          "vquel: SELECT <cols|*> FROM <branch|COMMIT id>");
    }
    ++i;  // past FROM
    if (i >= tokens.size()) {
      return Status::InvalidArgument("vquel: SELECT needs a source");
    }
    ScanSpec spec;
    if (Upper(tokens[i]) == "COMMIT") {
      int64_t commit;
      if (i + 1 >= tokens.size() || !ParseInt(tokens[i + 1], &commit)) {
        return Status::InvalidArgument("vquel: bad commit id");
      }
      spec = ScanSpec::Commit(static_cast<CommitId>(commit));
      i += 2;
    } else {
      DECIBEL_ASSIGN_OR_RETURN(BranchId branch, ResolveBranch(db, tokens[i]));
      spec = ScanSpec::Branch(branch);
      ++i;
    }
    if (i < tokens.size() && Upper(tokens[i]) == "WHERE") {
      if (i + 4 > tokens.size()) {
        return Status::InvalidArgument("vquel: incomplete WHERE clause");
      }
      DECIBEL_ASSIGN_OR_RETURN(CompareOp op, ParseOp(tokens[i + 2]));
      int64_t value;
      if (!ParseInt(tokens[i + 3], &value)) {
        return Status::InvalidArgument("vquel: bad literal '" +
                                       tokens[i + 3] + "'");
      }
      DECIBEL_ASSIGN_OR_RETURN(
          Predicate pred,
          Predicate::Compare(db->schema(), tokens[i + 1], op, value));
      spec.Where(std::move(pred));
      i += 4;
    }
    if (i < tokens.size() && Upper(tokens[i]) == "LIMIT") {
      int64_t n;
      // ScanSpec uses limit 0 as the "unlimited" sentinel, so a literal
      // LIMIT 0 would silently mean the opposite; reject it.
      if (i + 1 >= tokens.size() || !ParseInt(tokens[i + 1], &n) || n <= 0) {
        return Status::InvalidArgument("vquel: LIMIT must be positive");
      }
      spec.WithLimit(static_cast<uint64_t>(n));
      i += 2;
    }
    if (i < tokens.size()) {
      return Status::InvalidArgument("vquel: trailing tokens after '" +
                                     tokens[i - 1] + "'");
    }
    std::vector<size_t> projection;
    if (!star) {
      DECIBEL_ASSIGN_OR_RETURN(projection,
                               ResolveProjection(db->schema(), names));
      spec.Project(projection);
    }
    const std::vector<size_t> cells =
        SetResultColumns(db->schema(), projection, &result);
    DECIBEL_ASSIGN_OR_RETURN(auto cursor, db->NewScan(std::move(spec)));
    ScanRow row;
    while (cursor->Next(&row)) {
      out << FormatProjected(row.record, projection) << "\n";
      std::vector<Value> typed;
      typed.reserve(cells.size());
      for (size_t c : cells) typed.push_back(TypedCell(row.record, c));
      result.typed_rows.push_back(std::move(typed));
      ++result.rows;
    }
    DECIBEL_RETURN_NOT_OK(cursor->status());
    out << "(" << result.rows << " rows)";
  } else if (verb == "SCAN") {
    if (tokens.size() < 2) {
      return Status::InvalidArgument("vquel: SCAN needs a branch");
    }
    Result<query::QueryStats> stats = Status::Unknown("unreached");
    const std::vector<size_t> cells =
        SetResultColumns(db->schema(), {}, &result);
    auto emit = [&](const RecordRef& rec) {
      out << FormatRecord(rec) << "\n";
      std::vector<Value> typed;
      typed.reserve(cells.size());
      for (size_t c : cells) typed.push_back(TypedCell(rec, c));
      result.typed_rows.push_back(std::move(typed));
      ++result.rows;
    };
    if (Upper(tokens[1]) == "COMMIT") {
      if (tokens.size() < 3) {
        return Status::InvalidArgument("vquel: SCAN COMMIT needs an id");
      }
      int64_t commit;
      if (!ParseInt(tokens[2], &commit)) {
        return Status::InvalidArgument("vquel: bad commit id");
      }
      DECIBEL_ASSIGN_OR_RETURN(Predicate pred, ParseWhere(db, tokens, 3));
      stats = query::ScanVersionAt(db, static_cast<CommitId>(commit), pred,
                                   emit);
    } else {
      DECIBEL_ASSIGN_OR_RETURN(BranchId branch,
                               ResolveBranch(db, tokens[1]));
      DECIBEL_ASSIGN_OR_RETURN(Predicate pred, ParseWhere(db, tokens, 2));
      stats = query::ScanVersion(db, branch, pred, emit);
    }
    DECIBEL_RETURN_NOT_OK(stats.status());
    out << "(" << result.rows << " rows)";
  } else if (verb == "DIFF" && tokens.size() >= 2 &&
             Upper(tokens[1]) == "COMMIT") {
    // Structured three-way diff between two commits: one line per key
    // whose state differs, classified against the commits' common
    // ancestor.
    if (tokens.size() < 4) {
      return Status::InvalidArgument("vquel: DIFF COMMIT <a> <b>");
    }
    int64_t a = 0, b = 0;
    if (!ParseInt(tokens[2], &a) || !ParseInt(tokens[3], &b)) {
      return Status::InvalidArgument("vquel: bad commit id");
    }
    DECIBEL_ASSIGN_OR_RETURN(
        auto cursor,
        db->DiffCommits(static_cast<CommitId>(a), static_cast<CommitId>(b)));
    const MergeRow* row;
    while ((row = cursor->Next()) != nullptr) {
      const char* kind = row->change == MergeChangeKind::kAdd      ? "+"
                         : row->change == MergeChangeKind::kDelete ? "-"
                                                                   : "~";
      out << kind << " " << row->pk;
      if (row->conflict) out << "  [both sides changed]";
      out << "\n";
      ++result.rows;
    }
    DECIBEL_RETURN_NOT_OK(cursor->status());
    out << "(" << result.rows << " differing keys)";
  } else if (verb == "DIFF") {
    if (tokens.size() < 3) {
      return Status::InvalidArgument("vquel: DIFF needs two branches");
    }
    DECIBEL_ASSIGN_OR_RETURN(BranchId a, ResolveBranch(db, tokens[1]));
    DECIBEL_ASSIGN_OR_RETURN(BranchId b, ResolveBranch(db, tokens[2]));
    DECIBEL_ASSIGN_OR_RETURN(query::QueryStats stats,
                             query::PositiveDiff(db, a, b,
                                                 [&](const RecordRef& rec) {
                                                   out << FormatRecord(rec)
                                                       << "\n";
                                                   ++result.rows;
                                                 }));
    (void)stats;
    out << "(" << result.rows << " rows in " << tokens[1] << " not in "
        << tokens[2] << ")";
  } else if (verb == "JOIN") {
    if (tokens.size() < 3) {
      return Status::InvalidArgument("vquel: JOIN needs two branches");
    }
    DECIBEL_ASSIGN_OR_RETURN(BranchId a, ResolveBranch(db, tokens[1]));
    DECIBEL_ASSIGN_OR_RETURN(BranchId b, ResolveBranch(db, tokens[2]));
    DECIBEL_ASSIGN_OR_RETURN(Predicate pred, ParseWhere(db, tokens, 3));
    DECIBEL_ASSIGN_OR_RETURN(
        query::QueryStats stats,
        query::JoinVersions(db, a, b, pred,
                            [&](const RecordRef& left,
                                const RecordRef& right) {
                              out << FormatRecord(left) << "  <->  "
                                  << FormatRecord(right) << "\n";
                              ++result.rows;
                            }));
    (void)stats;
    out << "(" << result.rows << " joined rows)";
  } else if (verb == "HEADS") {
    DECIBEL_ASSIGN_OR_RETURN(Predicate pred, ParseWhere(db, tokens, 1));
    DECIBEL_ASSIGN_OR_RETURN(
        query::QueryStats stats,
        query::ScanHeads(db, pred,
                         [&](const RecordRef& rec,
                             const std::vector<uint32_t>& branches) {
                           out << FormatRecord(rec) << "  [in";
                           for (uint32_t b : branches) out << " " << b;
                           out << "]\n";
                           ++result.rows;
                         }));
    (void)stats;
    out << "(" << result.rows << " rows)";
  } else if (verb == "INSERT" || verb == "UPDATE") {
    if (tokens.size() < 3) {
      return Status::InvalidArgument("vquel: " + verb +
                                     " needs branch and values");
    }
    DECIBEL_ASSIGN_OR_RETURN(BranchId branch, ResolveBranch(db, tokens[1]));
    DECIBEL_ASSIGN_OR_RETURN(Record rec, ParseRecord(db, tokens, 2));
    if (txn_.has_value()) {
      if (branch != txn_->branch()) {
        return Status::InvalidArgument(
            "vquel: open transaction is bound to branch " +
            std::to_string(txn_->branch()) +
            "; COMMIT TX or ABORT before writing elsewhere");
      }
      DECIBEL_RETURN_NOT_OK(verb == "INSERT" ? txn_->Insert(rec)
                                             : txn_->Update(rec));
      out << "staged (" << txn_->staged() << " ops)";
    } else {
      DECIBEL_RETURN_NOT_OK(verb == "INSERT" ? db->InsertInto(branch, rec)
                                             : db->UpdateIn(branch, rec));
      out << "ok";
    }
    result.rows = 1;
  } else if (verb == "DELETE") {
    if (tokens.size() < 3) {
      return Status::InvalidArgument("vquel: DELETE needs branch and pk");
    }
    DECIBEL_ASSIGN_OR_RETURN(BranchId branch, ResolveBranch(db, tokens[1]));
    int64_t pk;
    if (!ParseInt(tokens[2], &pk)) {
      return Status::InvalidArgument("vquel: bad primary key");
    }
    if (txn_.has_value()) {
      if (branch != txn_->branch()) {
        return Status::InvalidArgument(
            "vquel: open transaction is bound to branch " +
            std::to_string(txn_->branch()) +
            "; COMMIT TX or ABORT before writing elsewhere");
      }
      DECIBEL_RETURN_NOT_OK(txn_->Delete(pk));
      out << "staged (" << txn_->staged() << " ops)";
    } else {
      DECIBEL_RETURN_NOT_OK(db->DeleteFrom(branch, pk));
      out << "ok";
    }
    result.rows = 1;
  } else if (verb == "BEGIN") {
    if (tokens.size() < 2) {
      return Status::InvalidArgument("vquel: BEGIN needs a branch");
    }
    if (txn_.has_value()) {
      return Status::InvalidArgument(
          "vquel: a transaction is already open on branch " +
          std::to_string(txn_->branch()) + "; COMMIT TX or ABORT first");
    }
    DECIBEL_ASSIGN_OR_RETURN(BranchId branch, ResolveBranch(db, tokens[1]));
    DECIBEL_ASSIGN_OR_RETURN(Transaction txn, db->Begin(branch));
    txn_.emplace(std::move(txn));
    out << "begin transaction " << txn_->id() << " on branch " << branch;
  } else if (verb == "ABORT") {
    if (!txn_.has_value()) {
      return Status::InvalidArgument("vquel: no open transaction");
    }
    const size_t staged = txn_->staged();
    DECIBEL_RETURN_NOT_OK(txn_->Abort());
    txn_.reset();
    out << "transaction aborted, " << staged << " staged ops discarded";
  } else if (verb == "COMMIT" && tokens.size() >= 2 &&
             Upper(tokens[1]) == "TX") {
    if (!txn_.has_value()) {
      return Status::InvalidArgument("vquel: no open transaction");
    }
    const size_t staged = txn_->staged();
    const Status committed = txn_->Commit();
    if (committed.IsAborted()) {
      // Retryable lock timeout: the transaction stays open and staged so
      // the user can COMMIT TX again (or ABORT).
      return committed;
    }
    // Success or a non-retryable failure: either way the transaction is
    // over, so drop it rather than trapping the user in a dead one.
    txn_.reset();
    DECIBEL_RETURN_NOT_OK(committed);
    out << "transaction committed, " << staged << " ops applied";
    result.rows = staged;
  } else if (verb == "BRANCH") {
    if (tokens.size() < 4 || Upper(tokens[2]) != "FROM") {
      return Status::InvalidArgument("vquel: BRANCH <name> FROM <branch>");
    }
    DECIBEL_ASSIGN_OR_RETURN(BranchId parent, ResolveBranch(db, tokens[3]));
    Session s = db->NewSession();
    DECIBEL_RETURN_NOT_OK(db->Use(&s, parent));
    DECIBEL_ASSIGN_OR_RETURN(BranchId child, db->Branch(tokens[1], &s));
    out << "branch " << tokens[1] << " = " << child;
  } else if (verb == "COMMIT") {
    if (tokens.size() < 2) {
      return Status::InvalidArgument("vquel: COMMIT needs a branch");
    }
    DECIBEL_ASSIGN_OR_RETURN(BranchId branch, ResolveBranch(db, tokens[1]));
    DECIBEL_ASSIGN_OR_RETURN(CommitId commit, db->CommitBranch(branch));
    out << "commit " << commit;
  } else if (verb == "MERGE") {
    if (tokens.size() < 3) {
      return Status::InvalidArgument("vquel: MERGE <into> <from>");
    }
    DECIBEL_ASSIGN_OR_RETURN(BranchId into, ResolveBranch(db, tokens[1]));
    DECIBEL_ASSIGN_OR_RETURN(BranchId from, ResolveBranch(db, tokens[2]));
    bool three_way = true;
    bool left = true;
    bool preview = false;
    MergeResolution resolution = MergeResolution::kPolicy;
    for (size_t i = 3; i < tokens.size(); ++i) {
      const std::string flag = Upper(tokens[i]);
      if (flag == "TWOWAY") {
        three_way = false;
      } else if (flag == "THREEWAY") {
        three_way = true;
      } else if (flag == "LEFT") {
        left = true;
      } else if (flag == "RIGHT") {
        left = false;
      } else if (flag == "OURS") {
        resolution = MergeResolution::kOurs;
      } else if (flag == "THEIRS") {
        resolution = MergeResolution::kTheirs;
      } else if (flag == "LATEST") {
        resolution = MergeResolution::kLatestWins;
      } else if (flag == "PREVIEW") {
        preview = true;
      } else {
        // A typo'd flag used to be silently ignored — a MERGE that the
        // user believed was TWOWAY/THEIRS could run with the defaults.
        return Status::InvalidArgument("vquel: unknown MERGE flag '" +
                                       tokens[i] + "'");
      }
    }
    const MergePolicy policy =
        three_way ? (left ? MergePolicy::kThreeWayLeft
                          : MergePolicy::kThreeWayRight)
                  : (left ? MergePolicy::kTwoWayLeft
                          : MergePolicy::kTwoWayRight);
    const MergeSpec spec =
        MergeSpec::Branches(into, from).WithPolicy(policy).Resolve(resolution);
    if (preview) {
      // Dry run: stream the per-key outcomes, commit nothing.
      DECIBEL_ASSIGN_OR_RETURN(auto cursor, db->PreviewMerge(spec));
      const MergeRow* row;
      while ((row = cursor->Next()) != nullptr) {
        const char* kind = row->change == MergeChangeKind::kAdd      ? "+"
                           : row->change == MergeChangeKind::kUpdate ? "~"
                           : row->change == MergeChangeKind::kDelete ? "-"
                                                                     : "=";
        out << kind << " " << row->pk;
        if (row->conflict) {
          out << "  [conflict" << (row->field_merge ? ", field-merged" : "")
              << "]";
        }
        out << "\n";
        ++result.rows;
      }
      DECIBEL_RETURN_NOT_OK(cursor->status());
      out << "(preview: " << cursor->stats().merged_records
          << " records would merge, " << cursor->stats().conflicts
          << " conflicts)";
    } else {
      DECIBEL_ASSIGN_OR_RETURN(MergeInfo info, db->Merge(spec));
      out << "merge commit " << info.commit << ", "
          << info.result.merged_records << " records merged, "
          << info.result.conflicts << " conflicts";
    }
  } else if (verb == "RETIRE") {
    if (tokens.size() != 2) {
      return Status::InvalidArgument("vquel: RETIRE <branch>");
    }
    DECIBEL_ASSIGN_OR_RETURN(BranchId branch, ResolveBranch(db, tokens[1]));
    DECIBEL_RETURN_NOT_OK(db->RetireBranch(branch));
    out << "branch " << tokens[1] << " retired";
  } else if (verb == "INFO") {
    if (tokens.size() != 1) {
      return Status::InvalidArgument("vquel: INFO takes no arguments");
    }
    const DecibelStats s = db->Stats();
    out << "branches: " << s.branches << "\n"
        << "active_branches: " << s.active_branches << "\n"
        << "commits: " << s.commits << "\n"
        << "engine.num_records: " << s.engine.num_records << "\n"
        << "engine.num_segments: " << s.engine.num_segments << "\n"
        << "engine.data_bytes: " << s.engine.data_bytes << "\n"
        << "engine.index_memory_bytes: " << s.engine.index_memory_bytes
        << "\n"
        << "engine.commit_store_bytes: " << s.engine.commit_store_bytes
        << "\n"
        << "engine.rows_scanned: " << s.engine.rows_scanned << "\n"
        << "engine.bytes_scanned: " << s.engine.bytes_scanned << "\n"
        << "durable: " << (s.durable ? "true" : "false") << "\n"
        << "wal.bytes_appended: " << s.wal_bytes_appended << "\n"
        << "wal.segment_seq: " << s.wal_segment_seq << "\n"
        << "wal.last_lsn: " << s.wal_last_lsn << "\n"
        << "checkpoint.generation: " << s.checkpoint_generation << "\n"
        << "subscriptions: " << s.subscriptions << "\n"
        << "events_published: " << s.events_published;
    result.rows = 17;
  } else if (verb == "SUBSCRIBE" || verb == "UNSUBSCRIBE") {
    // Subscriptions need a connection to push notifications down; the
    // net server intercepts these verbs per session before the
    // interpreter ever sees them.
    return Status::InvalidArgument("vquel: " + verb +
                                   " requires a server connection "
                                   "(decibel_server)");
  } else if (verb == "BRANCHES") {
    for (const BranchInfo& b : db->ListBranches()) {
      out << b.id << "  " << b.name << "  head=" << b.head
          << (b.active ? "" : "  (retired)") << "\n";
      ++result.rows;
    }
    out << "(" << result.rows << " branches)";
  } else if (verb == "LOG") {
    if (tokens.size() < 2) {
      return Status::InvalidArgument("vquel: LOG needs a branch");
    }
    DECIBEL_ASSIGN_OR_RETURN(BranchId branch, ResolveBranch(db, tokens[1]));
    // Walk first-parent ancestry from the head.
    CommitId cur = db->Head(branch);
    while (cur != kInvalidCommit) {
      auto info = db->GetCommit(cur);
      if (!info.ok()) break;
      out << "commit " << info->id << " (branch " << info->branch << ")";
      if (info->parents.size() > 1) out << " [merge]";
      out << "\n";
      ++result.rows;
      cur = info->parents.empty() ? kInvalidCommit : info->parents[0];
    }
    out << "(" << result.rows << " commits)";
  } else {
    return Status::InvalidArgument("vquel: unknown verb '" + tokens[0] +
                                   "'");
  }

  result.output = out.str();
  return result;
}

}  // namespace vquel
}  // namespace decibel
