#ifndef DECIBEL_QUERY_QUERIES_H_
#define DECIBEL_QUERY_QUERIES_H_

/// \file queries.h
/// The four versioned query families of the benchmark (§4.3 / Table 1),
/// implemented over the Decibel facade:
///
///   Q1  single-version scan        SELECT * FROM R WHERE Version='v'
///   Q2  multi-version positive diff  ... id NOT IN (SELECT id ... 'v2')
///   Q3  multi-version primary-key join with a predicate
///   Q4  several-version scan over all branch heads (HEAD(Version))
///
/// Each operator streams rows to a callback and returns row/byte counts so
/// the benchmark driver can report work done.

#include <functional>

#include "core/decibel.h"
#include "query/predicate.h"

namespace decibel {
namespace query {

struct QueryStats {
  uint64_t rows_emitted = 0;
  uint64_t rows_scanned = 0;
  uint64_t bytes_scanned = 0;
};

using RowCallback = std::function<void(const RecordRef&)>;
/// Joined rows: the two versions of the same key.
using JoinCallback =
    std::function<void(const RecordRef& left, const RecordRef& right)>;
/// Q4 rows carry their branch annotations.
using AnnotatedRowCallback =
    std::function<void(const RecordRef&, const std::vector<uint32_t>&)>;

/// Q1: scan one branch, emitting records matching \p predicate.
Result<QueryStats> ScanVersion(Decibel* db, BranchId branch,
                               const Predicate& predicate,
                               const RowCallback& callback);

/// Q1 on a historical commit.
Result<QueryStats> ScanVersionAt(Decibel* db, CommitId commit,
                                 const Predicate& predicate,
                                 const RowCallback& callback);

/// Q2: positive diff — records in \p a whose key is absent from \p b
/// (the SQL "NOT IN" form of Table 1).
Result<QueryStats> PositiveDiff(Decibel* db, BranchId a, BranchId b,
                                const RowCallback& callback);

/// Q3: primary-key join of two branches; emits pairs where the \p a side
/// satisfies \p predicate. Implemented as a pipelined hash join: build on
/// the filtered \p a side, probe with \p b.
Result<QueryStats> JoinVersions(Decibel* db, BranchId a, BranchId b,
                                const Predicate& predicate,
                                const JoinCallback& callback);

/// Q4: scan the heads of all active branches, emitting records that match
/// \p predicate annotated with the branches they are live in.
Result<QueryStats> ScanHeads(Decibel* db, const Predicate& predicate,
                             const AnnotatedRowCallback& callback);

/// Simple aggregates over one branch (the "calculating an average of some
/// value per branch" example of §3.2's multi-branch scan discussion).
struct AggregateResult {
  uint64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;
  int64_t max = 0;
  double avg = 0;
};

/// Aggregates an integer column over the records of \p branch matching
/// \p predicate.
Result<AggregateResult> AggregateColumn(Decibel* db, BranchId branch,
                                        const std::string& column,
                                        const Predicate& predicate);

/// Per-branch aggregates for several branches in ONE pass over the data
/// (the shared-computation win of the multi-branch scan, §3.2). Returns
/// one AggregateResult per requested branch.
Result<std::vector<AggregateResult>> AggregatePerBranch(
    Decibel* db, const std::vector<BranchId>& branches,
    const std::string& column, const Predicate& predicate);

}  // namespace query
}  // namespace decibel

#endif  // DECIBEL_QUERY_QUERIES_H_
