#include "query/queries.h"

#include <unordered_map>

namespace decibel {
namespace query {

namespace {

QueryStats ToQueryStats(const ScanStats& stats) {
  QueryStats out;
  out.rows_emitted = stats.rows_emitted;
  out.rows_scanned = stats.rows_scanned;
  out.bytes_scanned = stats.bytes_scanned;
  return out;
}

/// Drains a pushed-down scan, forwarding the matching rows. The work
/// counters come straight from the cursor — the engine reports what it
/// scanned; nothing is re-derived here.
Result<QueryStats> RunScan(Decibel* db, ScanSpec spec,
                           const RowCallback& callback) {
  DECIBEL_ASSIGN_OR_RETURN(auto cursor, db->NewScan(std::move(spec)));
  ScanRow row;
  while (cursor->Next(&row)) {
    if (callback) callback(row.record);
  }
  DECIBEL_RETURN_NOT_OK(cursor->status());
  return ToQueryStats(cursor->stats());
}

}  // namespace

Result<QueryStats> ScanVersion(Decibel* db, BranchId branch,
                               const Predicate& predicate,
                               const RowCallback& callback) {
  return RunScan(db, ScanSpec::Branch(branch).Where(predicate), callback);
}

Result<QueryStats> ScanVersionAt(Decibel* db, CommitId commit,
                                 const Predicate& predicate,
                                 const RowCallback& callback) {
  return RunScan(db, ScanSpec::Commit(commit).Where(predicate), callback);
}

Result<QueryStats> PositiveDiff(Decibel* db, BranchId a, BranchId b,
                                const RowCallback& callback) {
  // Table 1's "id NOT IN" shape is the diff view of the scan API; the
  // engine's bitmap algebra / winner tables run under the cursor.
  return RunScan(db, ScanSpec::Diff(a, b, DiffMode::kByKey), callback);
}

Result<QueryStats> JoinVersions(Decibel* db, BranchId a, BranchId b,
                                const Predicate& predicate,
                                const JoinCallback& callback) {
  QueryStats stats;
  const Schema* schema = &db->schema();

  // Build side: branch a with the predicate pushed into the engine —
  // non-matching rows never cross the cursor boundary.
  std::unordered_map<int64_t, std::string> build;
  DECIBEL_ASSIGN_OR_RETURN(auto build_cursor,
                           db->NewScan(ScanSpec::Branch(a).Where(predicate)));
  ScanRow row;
  while (build_cursor->Next(&row)) {
    build.emplace(row.record.pk(), row.record.data().ToString());
  }
  DECIBEL_RETURN_NOT_OK(build_cursor->status());
  stats.rows_scanned += build_cursor->stats().rows_scanned;
  stats.bytes_scanned += build_cursor->stats().bytes_scanned;

  // Probe side: branch b, pipelined.
  DECIBEL_ASSIGN_OR_RETURN(auto probe_cursor,
                           db->NewScan(ScanSpec::Branch(b)));
  while (probe_cursor->Next(&row)) {
    auto hit = build.find(row.record.pk());
    if (hit != build.end()) {
      ++stats.rows_emitted;
      if (callback) {
        callback(RecordRef(schema, hit->second), row.record);
      }
    }
  }
  DECIBEL_RETURN_NOT_OK(probe_cursor->status());
  stats.rows_scanned += probe_cursor->stats().rows_scanned;
  stats.bytes_scanned += probe_cursor->stats().bytes_scanned;
  return stats;
}

Result<QueryStats> ScanHeads(Decibel* db, const Predicate& predicate,
                             const AnnotatedRowCallback& callback) {
  DECIBEL_ASSIGN_OR_RETURN(auto cursor,
                           db->NewScan(ScanSpec::Heads().Where(predicate)));
  ScanRow row;
  while (cursor->Next(&row)) {
    if (callback) callback(row.record, *row.branches);
  }
  DECIBEL_RETURN_NOT_OK(cursor->status());
  return ToQueryStats(cursor->stats());
}

namespace {

Result<size_t> ResolveNumericColumn(const Schema& schema,
                                    const std::string& column) {
  const int col = schema.FindColumn(column);
  if (col < 0) {
    return Status::InvalidArgument("aggregate: no column '" + column + "'");
  }
  const FieldType type = schema.column(static_cast<size_t>(col)).type;
  if (type != FieldType::kInt32 && type != FieldType::kInt64) {
    return Status::InvalidArgument("aggregate: column '" + column +
                                   "' is not integer");
  }
  return static_cast<size_t>(col);
}

void Accumulate(AggregateResult* agg, int64_t value) {
  if (agg->count == 0) {
    agg->min = value;
    agg->max = value;
  } else {
    agg->min = std::min(agg->min, value);
    agg->max = std::max(agg->max, value);
  }
  agg->sum += value;
  ++agg->count;
}

void Finalize(AggregateResult* agg) {
  agg->avg = agg->count == 0
                 ? 0
                 : static_cast<double>(agg->sum) /
                       static_cast<double>(agg->count);
}

}  // namespace

Result<AggregateResult> AggregateColumn(Decibel* db, BranchId branch,
                                        const std::string& column,
                                        const Predicate& predicate) {
  DECIBEL_ASSIGN_OR_RETURN(size_t col,
                           ResolveNumericColumn(db->schema(), column));
  // Project to the aggregated column so copy-out paths move only the
  // bytes the aggregate reads.
  AggregateResult agg;
  DECIBEL_RETURN_NOT_OK(
      RunScan(db,
              ScanSpec::Branch(branch).Where(predicate).Project({col}),
              [&](const RecordRef& rec) {
                Accumulate(&agg, rec.GetNumeric(col));
              })
          .status());
  Finalize(&agg);
  return agg;
}

Result<std::vector<AggregateResult>> AggregatePerBranch(
    Decibel* db, const std::vector<BranchId>& branches,
    const std::string& column, const Predicate& predicate) {
  DECIBEL_ASSIGN_OR_RETURN(size_t col,
                           ResolveNumericColumn(db->schema(), column));
  std::vector<AggregateResult> aggs(branches.size());
  // "if a query is calculating an average of some value per branch, the
  // query executor makes a single pass on the heap file, emitting each
  // tuple annotated with the branches it is active in" (§3.2).
  DECIBEL_ASSIGN_OR_RETURN(
      auto cursor, db->NewScan(ScanSpec::Multi(branches)
                                   .Where(predicate)
                                   .Project({col})));
  ScanRow row;
  while (cursor->Next(&row)) {
    const int64_t value = row.record.GetNumeric(col);
    for (uint32_t p : *row.branches) {
      Accumulate(&aggs[p], value);
    }
  }
  DECIBEL_RETURN_NOT_OK(cursor->status());
  for (AggregateResult& agg : aggs) Finalize(&agg);
  return aggs;
}

}  // namespace query
}  // namespace decibel
