#include "query/queries.h"

#include <unordered_map>

namespace decibel {
namespace query {

namespace {

Result<QueryStats> ScanIteratorWithPredicate(
    Result<std::unique_ptr<RecordIterator>> iter, uint32_t record_size,
    const Predicate& predicate, const RowCallback& callback) {
  if (!iter.ok()) return iter.status();
  QueryStats stats;
  RecordRef rec;
  while ((*iter)->Next(&rec)) {
    ++stats.rows_scanned;
    stats.bytes_scanned += record_size;
    if (predicate.Matches(rec)) {
      ++stats.rows_emitted;
      if (callback) callback(rec);
    }
  }
  DECIBEL_RETURN_NOT_OK((*iter)->status());
  return stats;
}

}  // namespace

Result<QueryStats> ScanVersion(Decibel* db, BranchId branch,
                               const Predicate& predicate,
                               const RowCallback& callback) {
  return ScanIteratorWithPredicate(db->ScanBranch(branch),
                                   db->schema().record_size(), predicate,
                                   callback);
}

Result<QueryStats> ScanVersionAt(Decibel* db, CommitId commit,
                                 const Predicate& predicate,
                                 const RowCallback& callback) {
  return ScanIteratorWithPredicate(db->ScanCommit(commit),
                                   db->schema().record_size(), predicate,
                                   callback);
}

Result<QueryStats> PositiveDiff(Decibel* db, BranchId a, BranchId b,
                                const RowCallback& callback) {
  QueryStats stats;
  const uint32_t rs = db->schema().record_size();
  DECIBEL_RETURN_NOT_OK(db->Diff(
      a, b, DiffMode::kByKey,
      [&](const RecordRef& rec) {
        ++stats.rows_emitted;
        stats.bytes_scanned += rs;
        if (callback) callback(rec);
      },
      /*neg=*/nullptr));
  return stats;
}

Result<QueryStats> JoinVersions(Decibel* db, BranchId a, BranchId b,
                                const Predicate& predicate,
                                const JoinCallback& callback) {
  QueryStats stats;
  const uint32_t rs = db->schema().record_size();
  const Schema* schema = &db->schema();

  // Build side: branch a filtered by the predicate.
  std::unordered_map<int64_t, std::string> build;
  DECIBEL_ASSIGN_OR_RETURN(auto it_a, db->ScanBranch(a));
  RecordRef rec;
  while (it_a->Next(&rec)) {
    ++stats.rows_scanned;
    stats.bytes_scanned += rs;
    if (predicate.Matches(rec)) {
      build.emplace(rec.pk(), rec.data().ToString());
    }
  }
  DECIBEL_RETURN_NOT_OK(it_a->status());

  // Probe side: branch b, pipelined.
  DECIBEL_ASSIGN_OR_RETURN(auto it_b, db->ScanBranch(b));
  while (it_b->Next(&rec)) {
    ++stats.rows_scanned;
    stats.bytes_scanned += rs;
    auto hit = build.find(rec.pk());
    if (hit != build.end()) {
      ++stats.rows_emitted;
      if (callback) {
        callback(RecordRef(schema, hit->second), rec);
      }
    }
  }
  DECIBEL_RETURN_NOT_OK(it_b->status());
  return stats;
}

Result<QueryStats> ScanHeads(Decibel* db, const Predicate& predicate,
                             const AnnotatedRowCallback& callback) {
  QueryStats stats;
  const uint32_t rs = db->schema().record_size();
  DECIBEL_RETURN_NOT_OK(db->ScanHeads(
      [&](const RecordRef& rec, const std::vector<uint32_t>& branches) {
        ++stats.rows_scanned;
        stats.bytes_scanned += rs;
        if (predicate.Matches(rec)) {
          ++stats.rows_emitted;
          if (callback) callback(rec, branches);
        }
      }));
  return stats;
}

namespace {

Result<size_t> ResolveNumericColumn(const Schema& schema,
                                    const std::string& column) {
  const int col = schema.FindColumn(column);
  if (col < 0) {
    return Status::InvalidArgument("aggregate: no column '" + column + "'");
  }
  const FieldType type = schema.column(static_cast<size_t>(col)).type;
  if (type != FieldType::kInt32 && type != FieldType::kInt64) {
    return Status::InvalidArgument("aggregate: column '" + column +
                                   "' is not integer");
  }
  return static_cast<size_t>(col);
}

void Accumulate(AggregateResult* agg, int64_t value) {
  if (agg->count == 0) {
    agg->min = value;
    agg->max = value;
  } else {
    agg->min = std::min(agg->min, value);
    agg->max = std::max(agg->max, value);
  }
  agg->sum += value;
  ++agg->count;
}

void Finalize(AggregateResult* agg) {
  agg->avg = agg->count == 0
                 ? 0
                 : static_cast<double>(agg->sum) /
                       static_cast<double>(agg->count);
}

}  // namespace

Result<AggregateResult> AggregateColumn(Decibel* db, BranchId branch,
                                        const std::string& column,
                                        const Predicate& predicate) {
  DECIBEL_ASSIGN_OR_RETURN(size_t col,
                           ResolveNumericColumn(db->schema(), column));
  AggregateResult agg;
  DECIBEL_RETURN_NOT_OK(
      ScanVersion(db, branch, predicate, [&](const RecordRef& rec) {
        Accumulate(&agg, rec.GetNumeric(col));
      }).status());
  Finalize(&agg);
  return agg;
}

Result<std::vector<AggregateResult>> AggregatePerBranch(
    Decibel* db, const std::vector<BranchId>& branches,
    const std::string& column, const Predicate& predicate) {
  DECIBEL_ASSIGN_OR_RETURN(size_t col,
                           ResolveNumericColumn(db->schema(), column));
  std::vector<AggregateResult> aggs(branches.size());
  // "if a query is calculating an average of some value per branch, the
  // query executor makes a single pass on the heap file, emitting each
  // tuple annotated with the branches it is active in" (§3.2).
  DECIBEL_RETURN_NOT_OK(db->ScanMulti(
      branches,
      [&](const RecordRef& rec, const std::vector<uint32_t>& present) {
        if (!predicate.Matches(rec)) return;
        const int64_t value = rec.GetNumeric(col);
        for (uint32_t p : present) {
          Accumulate(&aggs[p], value);
        }
      }));
  for (AggregateResult& agg : aggs) Finalize(&agg);
  return aggs;
}

}  // namespace query
}  // namespace decibel
