#ifndef DECIBEL_QUERY_PREDICATE_H_
#define DECIBEL_QUERY_PREDICATE_H_

/// \file predicate.h
/// Row predicates for the versioned query operators: a conjunction of
/// simple column comparisons, enough to express the benchmark's WHERE
/// clauses (Table 1) without dragging in a full expression compiler.

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/record.h"
#include "storage/schema.h"

namespace decibel {

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpName(CompareOp op);

/// Applies \p op to an (lhs, rhs) pair — the one comparison dispatch
/// shared by Predicate::Matches and the engines' PreparedPredicate.
template <typename T>
bool ApplyCompareOp(CompareOp op, const T& lhs, const T& rhs) {
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

/// One comparison: <column> <op> <literal>.
struct Comparison {
  size_t column = 0;
  CompareOp op = CompareOp::kEq;
  /// Literal, interpreted per the column type.
  int64_t int_value = 0;
  double double_value = 0;
  std::string string_value;
};

/// A conjunction of comparisons; empty means "true".
class Predicate {
 public:
  Predicate() = default;

  /// Builds a single-comparison predicate against an integer column.
  static Result<Predicate> Compare(const Schema& schema,
                                   const std::string& column, CompareOp op,
                                   int64_t value);

  /// Builds a single-comparison predicate against a double column.
  static Result<Predicate> CompareDouble(const Schema& schema,
                                         const std::string& column,
                                         CompareOp op, double value);

  /// Builds a single-comparison predicate against a string column (the
  /// "R1.Name = 'Sam'" shape of Table 1's query 3).
  static Result<Predicate> CompareString(const Schema& schema,
                                         const std::string& column,
                                         CompareOp op, std::string value);

  /// Adds another conjunct.
  Predicate& And(Comparison cmp) {
    comparisons_.push_back(std::move(cmp));
    return *this;
  }

  bool Matches(const RecordRef& record) const;

  bool empty() const { return comparisons_.empty(); }
  const std::vector<Comparison>& comparisons() const { return comparisons_; }

 private:
  std::vector<Comparison> comparisons_;
};

}  // namespace decibel

#endif  // DECIBEL_QUERY_PREDICATE_H_
