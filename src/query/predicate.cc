#include "query/predicate.h"

namespace decibel {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

Result<Predicate> Predicate::Compare(const Schema& schema,
                                     const std::string& column, CompareOp op,
                                     int64_t value) {
  const int col = schema.FindColumn(column);
  if (col < 0) {
    return Status::InvalidArgument("predicate: no column '" + column + "'");
  }
  const FieldType type = schema.column(static_cast<size_t>(col)).type;
  if (type != FieldType::kInt32 && type != FieldType::kInt64) {
    return Status::InvalidArgument("predicate: column '" + column +
                                   "' is not integer");
  }
  Predicate p;
  Comparison cmp;
  cmp.column = static_cast<size_t>(col);
  cmp.op = op;
  cmp.int_value = value;
  p.And(std::move(cmp));
  return p;
}

Result<Predicate> Predicate::CompareDouble(const Schema& schema,
                                           const std::string& column,
                                           CompareOp op, double value) {
  const int col = schema.FindColumn(column);
  if (col < 0) {
    return Status::InvalidArgument("predicate: no column '" + column + "'");
  }
  if (schema.column(static_cast<size_t>(col)).type != FieldType::kDouble) {
    return Status::InvalidArgument("predicate: column '" + column +
                                   "' is not a double");
  }
  Predicate p;
  Comparison cmp;
  cmp.column = static_cast<size_t>(col);
  cmp.op = op;
  cmp.double_value = value;
  p.And(std::move(cmp));
  return p;
}

Result<Predicate> Predicate::CompareString(const Schema& schema,
                                           const std::string& column,
                                           CompareOp op, std::string value) {
  const int col = schema.FindColumn(column);
  if (col < 0) {
    return Status::InvalidArgument("predicate: no column '" + column + "'");
  }
  if (schema.column(static_cast<size_t>(col)).type != FieldType::kString) {
    return Status::InvalidArgument("predicate: column '" + column +
                                   "' is not a string");
  }
  Predicate p;
  Comparison cmp;
  cmp.column = static_cast<size_t>(col);
  cmp.op = op;
  cmp.string_value = std::move(value);
  p.And(std::move(cmp));
  return p;
}

bool Predicate::Matches(const RecordRef& record) const {
  const Schema& schema = *record.schema();
  for (const Comparison& cmp : comparisons_) {
    switch (schema.column(cmp.column).type) {
      case FieldType::kInt32:
      case FieldType::kInt64:
        if (!ApplyCompareOp(cmp.op, record.GetNumeric(cmp.column), cmp.int_value)) {
          return false;
        }
        break;
      case FieldType::kDouble:
        if (!ApplyCompareOp(cmp.op, record.GetDouble(cmp.column),
                     cmp.double_value)) {
          return false;
        }
        break;
      case FieldType::kString:
        if (!ApplyCompareOp(cmp.op, std::string(record.GetString(cmp.column)),
                     cmp.string_value)) {
          return false;
        }
        break;
    }
  }
  return true;
}

}  // namespace decibel
