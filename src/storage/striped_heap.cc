#include "storage/striped_heap.h"

#include <algorithm>

#include "common/coding.h"
#include "engine/scan_spec.h"

namespace decibel {

namespace {
constexpr uint32_t kManifestMagic = 0x53485053;  // "SPHS"
// v2 appends per-stripe checkpoint state (record count + tail CRC) so a
// tagged manifest can roll stripe files back to its exact moment. v3
// appends per-stripe zone-map stats blobs (HeapFile::EncodeStats) so a
// reopen can skip pages without rescanning them first.
constexpr uint32_t kManifestVersion = 3;
}  // namespace

StripedHeap::StripedHeap(std::string dir, uint32_t record_size,
                         const Options& options, BufferPool* pool)
    : dir_(std::move(dir)),
      record_size_(record_size),
      options_(options),
      pool_(pool) {}

std::string StripedHeap::StripePath(uint32_t stripe) const {
  return JoinPath(dir_, "heap." + std::to_string(stripe) + ".dbhf");
}

std::string StripedHeap::ManifestPath(const std::string& tag) const {
  const std::string base = JoinPath(dir_, "heap.manifest");
  return tag.empty() ? base : base + "." + tag;
}

Result<std::unique_ptr<StripedHeap>> StripedHeap::Create(
    const std::string& dir, uint32_t record_size, const Options& options,
    BufferPool* pool) {
  std::unique_ptr<StripedHeap> heap(
      new StripedHeap(dir, record_size, options, pool));
  const uint32_t stripes = options.stripes == 0 ? 1 : options.stripes;
  HeapFile::Options hopts;
  hopts.page_size = options.page_size;
  hopts.verify_checksums = options.verify_checksums;
  hopts.schema = options.schema;
  hopts.compress_pages = options.compress_pages;
  heap->stripes_.resize(stripes);
  for (uint32_t s = 0; s < stripes; ++s) {
    DECIBEL_ASSIGN_OR_RETURN(
        heap->stripes_[s].file,
        HeapFile::Create(heap->StripePath(s), record_size, hopts, pool));
  }
  heap->extent_records_ =
      options.extent_records != 0
          ? options.extent_records
          : std::max<uint64_t>(1, heap->stripes_[0].file->records_per_page());
  DECIBEL_RETURN_NOT_OK(heap->WriteManifest());
  return heap;
}

Result<std::unique_ptr<StripedHeap>> StripedHeap::Open(
    const std::string& dir, const Options& options, BufferPool* pool,
    const std::string& checkpoint_tag) {
  std::unique_ptr<StripedHeap> heap(new StripedHeap(dir, 0, options, pool));
  DECIBEL_ASSIGN_OR_RETURN(
      std::string manifest,
      ReadFileToString(heap->ManifestPath(checkpoint_tag)));
  DECIBEL_RETURN_NOT_OK(
      heap->LoadManifest(Slice(manifest), !checkpoint_tag.empty()));
  DECIBEL_RETURN_NOT_OK(heap->EnsureStats());
  return heap;
}

Status StripedHeap::EnsureStats() {
  for (StripeState& st : stripes_) {
    DECIBEL_RETURN_NOT_OK(st.file->EnsureStats());
  }
  return Status::OK();
}

Status StripedHeap::LoadManifest(Slice input, bool recover) {
  uint32_t magic, version, stripes;
  uint64_t record_size, extent_records, extent_count;
  if (!GetVarint32(&input, &magic) || magic != kManifestMagic ||
      !GetVarint32(&input, &version)) {
    return Status::Corruption("striped heap: bad manifest header in " + dir_);
  }
  if (version != kManifestVersion) {
    // A well-formed manifest from another release: say so instead of the
    // misleading generic corruption (v2 added per-extent stripe layout,
    // v3 per-stripe zone-map stats).
    return Status::InvalidArgument(
        "striped heap: unsupported manifest format version " +
        std::to_string(version) + " (expected " +
        std::to_string(kManifestVersion) + ") in " + dir_);
  }
  if (!GetVarint64(&input, &record_size) || !GetVarint32(&input, &stripes) ||
      !GetVarint64(&input, &extent_records) ||
      !GetVarint64(&input, &extent_count)) {
    return Status::Corruption("striped heap: bad manifest header in " + dir_);
  }
  record_size_ = static_cast<uint32_t>(record_size);
  extent_records_ = extent_records;

  stripes_.resize(stripes == 0 ? 1 : stripes);

  uint64_t bound = 0;
  uint64_t total = 0;
  extents_.reserve(extent_count);
  for (uint64_t i = 0; i < extent_count; ++i) {
    Extent e;
    uint32_t stripe;
    if (!GetVarint64(&input, &e.base) || !GetVarint64(&input, &e.capacity) ||
        !GetVarint32(&input, &stripe) || !GetVarint64(&input, &e.local_base)) {
      return Status::Corruption("striped heap: truncated extent in " + dir_);
    }
    e.stripe = stripe;
    if (e.base != bound || stripe >= stripes_.size()) {
      return Status::Corruption("striped heap: inconsistent extent in " + dir_);
    }
    bound = e.base + e.capacity;
    extents_.push_back(e);
  }
  allocated_bound_.store(bound, std::memory_order_release);

  std::vector<HeapFile::CheckpointState> states(stripes_.size());
  for (size_t s = 0; s < stripes_.size(); ++s) {
    uint32_t crc;
    if (!GetVarint64(&input, &states[s].num_records) ||
        !GetVarint32(&input, &crc)) {
      return Status::Corruption("striped heap: truncated stripe state in " +
                                dir_);
    }
    states[s].tail_crc = crc;
  }

  // v3: per-stripe zone-map stats blobs. Parsed before the files open
  // (they follow the stripe states in the encoding), applied after.
  std::vector<Slice> stats_blobs(stripes_.size());
  for (size_t s = 0; s < stripes_.size(); ++s) {
    if (!GetLengthPrefixed(&input, &stats_blobs[s])) {
      return Status::Corruption("striped heap: truncated stats blob in " +
                                dir_);
    }
  }

  HeapFile::Options hopts;
  hopts.verify_checksums = options_.verify_checksums;
  hopts.schema = options_.schema;
  hopts.compress_pages = options_.compress_pages;
  for (uint32_t s = 0; s < stripes_.size(); ++s) {
    if (recover) {
      DECIBEL_ASSIGN_OR_RETURN(
          stripes_[s].file,
          HeapFile::OpenAtCheckpoint(StripePath(s), hopts, pool_, states[s]));
    } else {
      DECIBEL_ASSIGN_OR_RETURN(stripes_[s].file,
                               HeapFile::Open(StripePath(s), hopts, pool_));
    }
    DECIBEL_RETURN_NOT_OK(stripes_[s].file->LoadStats(stats_blobs[s]));
  }

  // The last extent of each stripe may still be open: records appended
  // since its allocation tell us how far it is filled. Records beyond the
  // manifest's coverage (a crash between file flush and manifest rewrite)
  // are orphans — unreferenced, skipped by starting the next extent at
  // the file's current end.
  std::vector<bool> seen(stripes_.size(), false);
  for (auto it = extents_.rbegin(); it != extents_.rend(); ++it) {
    const uint64_t appended =
        stripes_[it->stripe].file->num_records() >= it->local_base
            ? stripes_[it->stripe].file->num_records() - it->local_base
            : 0;
    const uint64_t used = std::min(appended, it->capacity);
    total += used;
    if (!seen[it->stripe]) {
      seen[it->stripe] = true;
      StripeState& st = stripes_[it->stripe];
      st.next_global = it->base + used;
      st.remaining = it->capacity - used;
    }
  }
  num_records_.store(total, std::memory_order_relaxed);
  return Status::OK();
}

std::string StripedHeap::EncodeManifest() {
  std::string out;
  PutVarint32(&out, kManifestMagic);
  PutVarint32(&out, kManifestVersion);
  PutVarint64(&out, record_size_);
  PutVarint32(&out, static_cast<uint32_t>(stripes_.size()));
  PutVarint64(&out, extent_records_);
  {
    std::shared_lock<std::shared_mutex> table(table_mu_);
    PutVarint64(&out, extents_.size());
    for (const Extent& e : extents_) {
      PutVarint64(&out, e.base);
      PutVarint64(&out, e.capacity);
      PutVarint32(&out, e.stripe);
      PutVarint64(&out, e.local_base);
    }
  }
  for (const StripeState& st : stripes_) {
    const HeapFile::CheckpointState cs = st.file->GetCheckpointState();
    PutVarint64(&out, cs.num_records);
    PutVarint32(&out, cs.tail_crc);
  }
  for (const StripeState& st : stripes_) {
    std::string blob;
    st.file->EncodeStats(&blob);
    PutLengthPrefixed(&out, Slice(blob));
  }
  return out;
}

Status StripedHeap::WriteManifest() {
  return WriteStringToFile(ManifestPath(), EncodeManifest());
}

Status StripedHeap::Checkpoint(const std::string& tag, bool sync) {
  for (StripeState& st : stripes_) {
    DECIBEL_RETURN_NOT_OK(sync ? st.file->Sync() : st.file->Flush());
  }
  return AtomicWriteFile(ManifestPath(tag), EncodeManifest(), sync);
}

Status StripedHeap::RemoveCheckpoint(const std::string& tag) {
  return RemoveFile(ManifestPath(tag));
}

Status StripedHeap::AllocateExtent(uint32_t stripe, uint64_t needed) {
  StripeState& st = stripes_[stripe];
  Extent e;
  e.capacity = std::max(extent_records_, needed);
  e.stripe = stripe;
  e.local_base = st.file->num_records();
  {
    std::lock_guard<std::mutex> alloc(alloc_mu_);
    e.base = allocated_bound_.load(std::memory_order_relaxed);
    allocated_bound_.store(e.base + e.capacity, std::memory_order_release);
    std::unique_lock<std::shared_mutex> table(table_mu_);
    extents_.push_back(e);
  }
  st.next_global = e.base;
  st.remaining = e.capacity;
  return Status::OK();
}

Status StripedHeap::AppendBatch(uint32_t stripe, Slice records, uint64_t count,
                                RunList* runs) {
  if (stripe >= stripes_.size()) {
    return Status::InvalidArgument("striped heap: bad stripe");
  }
  if (records.size() != count * record_size_) {
    return Status::InvalidArgument("striped heap: batch size mismatch");
  }
  StripeState& st = stripes_[stripe];
  uint64_t done = 0;
  while (done < count) {
    if (st.remaining == 0) {
      DECIBEL_RETURN_NOT_OK(AllocateExtent(stripe, count - done));
    }
    const uint64_t take = std::min(st.remaining, count - done);
    const Slice chunk(records.data() + done * record_size_,
                      take * record_size_);
    DECIBEL_RETURN_NOT_OK(st.file->AppendBatch(chunk, take).status());
    if (runs != nullptr) runs->Add(st.next_global, take);
    st.next_global += take;
    st.remaining -= take;
    done += take;
  }
  num_records_.fetch_add(count, std::memory_order_relaxed);
  return Status::OK();
}

Result<uint64_t> StripedHeap::Append(uint32_t stripe, Slice record) {
  RunList runs;
  DECIBEL_RETURN_NOT_OK(AppendBatch(stripe, record, 1, &runs));
  return runs[0].base;
}

Status StripedHeap::Get(uint64_t global, std::string* out) {
  HeapFile* file = nullptr;
  uint64_t local = 0;
  {
    std::shared_lock<std::shared_mutex> table(table_mu_);
    auto it = std::upper_bound(
        extents_.begin(), extents_.end(), global,
        [](uint64_t g, const Extent& e) { return g < e.base; });
    if (it == extents_.begin()) {
      return Status::NotFound("striped heap: index out of range");
    }
    --it;
    if (global >= it->base + it->capacity) {
      return Status::NotFound("striped heap: index out of range");
    }
    file = stripes_[it->stripe].file.get();
    local = it->local_base + (global - it->base);
  }
  return file->Get(local, out);
}

uint64_t StripedHeap::SizeBytes() const {
  uint64_t total = 0;
  for (const StripeState& st : stripes_) total += st.file->SizeBytes();
  return total;
}

Status StripedHeap::Flush() {
  for (StripeState& st : stripes_) {
    DECIBEL_RETURN_NOT_OK(st.file->Flush());
  }
  return WriteManifest();
}

StripedHeap::Mapping StripedHeap::SnapshotMapping() const {
  Mapping m;
  m.files_.reserve(stripes_.size());
  for (const StripeState& st : stripes_) m.files_.push_back(st.file.get());
  std::shared_lock<std::shared_mutex> table(table_mu_);
  m.extents_ = extents_;
  return m;
}

bool StripedHeap::Mapping::Resolve(uint64_t global, HeapFile** file,
                                   uint64_t* local) const {
  if (extents_.empty()) return false;
  // Monotonic scans resolve from the hinted extent forward; random probes
  // fall back to binary search.
  size_t i = hint_;
  if (i >= extents_.size() || global < extents_[i].base) {
    auto it = std::upper_bound(
        extents_.begin(), extents_.end(), global,
        [](uint64_t g, const Extent& e) { return g < e.base; });
    if (it == extents_.begin()) return false;
    i = static_cast<size_t>(it - extents_.begin()) - 1;
  } else {
    while (i + 1 < extents_.size() && global >= extents_[i + 1].base) ++i;
  }
  const Extent& e = extents_[i];
  if (global < e.base || global >= e.base + e.capacity) return false;
  hint_ = i;
  *file = files_[e.stripe];
  *local = e.local_base + (global - e.base);
  return true;
}

bool StripedBitmapScanner::Next(RecordRef* out, uint64_t* index) {
  if (!status_.ok()) return false;
  for (;;) {
    const uint64_t next = bits_->NextSet(pos_);
    if (next == UINT64_MAX || next >= mapping_.bound()) return false;
    pos_ = next + 1;
    HeapFile* file = nullptr;
    uint64_t local = 0;
    if (!mapping_.Resolve(next, &file, &local)) {
      // A bit inside the snapshot's bound always has a covering extent.
      status_ = Status::Corruption("striped heap: set bit outside extents");
      return false;
    }
    if (local >= file->num_records()) {
      // Bit set for a record the snapshot's stripe file has not appended —
      // cannot happen for a bitmap materialized before the mapping.
      status_ = Status::Corruption("striped heap: set bit beyond stripe end");
      return false;
    }
    const uint64_t page_no = local / file->records_per_page();
    if (file != pinned_file_ || page_no != pinned_page_no_) {
      // The bitmap already resolved visibility, so a page the zone map
      // (or its compressed strips) rules out can be stepped over — every
      // bit landing on it is remembered as skipped until the scan moves
      // to another page.
      if (file == skip_file_ && page_no == skip_page_no_) continue;
      if (predicate_ != nullptr && !file->PageMayMatch(page_no, *predicate_)) {
        skip_file_ = file;
        skip_page_no_ = page_no;
        if (stats_ != nullptr) ++stats_->pages_skipped;
        continue;
      }
      bool no_matches = false;
      auto page = file->PinPageCounted(page_no, predicate_, &no_matches);
      if (!page.ok()) {
        status_ = page.status();
        return false;
      }
      if (stats_ != nullptr) stats_->bytes_read += page.value().io_bytes;
      if (no_matches) {
        skip_file_ = file;
        skip_page_no_ = page_no;
        if (stats_ != nullptr) ++stats_->pages_skipped;
        continue;
      }
      page_ = std::move(page).MoveValueUnsafe();
      pinned_file_ = file;
      pinned_page_no_ = page_no;
    }
    const uint64_t slot = local % file->records_per_page();
    *out = RecordRef(schema_, Slice(page_.payload + slot * file->record_size(),
                                    file->record_size()));
    if (index != nullptr) *index = next;
    return true;
  }
}

}  // namespace decibel
