#ifndef DECIBEL_STORAGE_SCHEMA_H_
#define DECIBEL_STORAGE_SCHEMA_H_

/// \file schema.h
/// Relational schemas for Decibel tables. Records are fixed-width: integer
/// and double columns have their natural width, strings are CHAR(n)-style
/// fixed-capacity fields. Fixed-width records make the tuple-index <->
/// file-offset mapping trivial, which the bitmap indexes rely on, and match
/// the paper's benchmark data (250 integer columns, 1 KB records, §4.2).
///
/// Every relation has a primary key: column 0, type INT64 (§2.2.1 — the
/// key tracks record identity across versions and branches).

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"

namespace decibel {

enum class FieldType : uint8_t {
  kInt32 = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,  ///< fixed capacity, NUL-padded
};

const char* FieldTypeName(FieldType type);

/// One column of a schema.
struct Column {
  std::string name;
  FieldType type = FieldType::kInt32;
  /// Byte width. Implied for numeric types; required (capacity) for kString.
  uint32_t width = 0;
};

/// An immutable record layout. Column 0 must be the INT64 primary key.
class Schema {
 public:
  /// Validates and builds a schema. Fails with InvalidArgument if column 0
  /// is not an INT64 named key, names repeat, or a string width is zero.
  static Result<Schema> Make(std::vector<Column> columns);

  /// Convenience: the benchmark schema — "pk" followed by \p num_cols
  /// integer columns of \p col_width bytes (4 or 8), named c1..cN.
  static Schema MakeBenchmark(int num_cols, uint32_t col_width = 4);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Byte offset of column \p i within the record payload (after the
  /// 1-byte header).
  uint32_t offset(size_t i) const { return offsets_[i]; }

  /// Total serialized record size including the 1-byte header.
  uint32_t record_size() const { return record_size_; }

  /// Index of the named column, or -1.
  int FindColumn(const std::string& name) const;

  /// Two schemas are equal if their column lists match exactly.
  bool operator==(const Schema& other) const;

  /// Serialization for catalog persistence.
  void EncodeTo(std::string* dst) const;
  static Result<Schema> DecodeFrom(Slice* input);

 private:
  std::vector<Column> columns_;
  std::vector<uint32_t> offsets_;
  uint32_t record_size_ = 0;
};

/// Width in bytes of a value of \p type (string width comes from the column).
uint32_t FieldTypeWidth(FieldType type);

}  // namespace decibel

#endif  // DECIBEL_STORAGE_SCHEMA_H_
