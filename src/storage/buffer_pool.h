#ifndef DECIBEL_STORAGE_BUFFER_POOL_H_
#define DECIBEL_STORAGE_BUFFER_POOL_H_

/// \file buffer_pool.h
/// A read cache of immutable heap-file pages with LRU eviction (the paper
/// runs a "fairly conventional buffer pool architecture (with 4 MB pages)",
/// §2.1). Decibel's storage is no-overwrite: sealed pages never change, so
/// the pool never needs dirty-page writeback — mutation happens only in a
/// heap file's in-memory tail page, which is served by the file itself.
///
/// Pages are handed out as shared_ptr<const string>; a reader holding a
/// page keeps it alive even if the pool evicts it concurrently.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "common/status.h"

namespace decibel {

using PageRef = std::shared_ptr<const std::string>;

/// Callback interface the pool uses to load a page on miss.
class PageSource {
 public:
  virtual ~PageSource() = default;
  /// Reads page \p page_no into \p out (exactly page-size bytes).
  virtual Status ReadPageFromDisk(uint64_t page_no, std::string* out) = 0;
};

class BufferPool {
 public:
  /// \p capacity_bytes caps resident page bytes (at least one page is
  /// always admitted).
  explicit BufferPool(uint64_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns page \p page_no of file \p file_id, loading it via \p source
  /// on miss.
  Result<PageRef> GetPage(uint64_t file_id, uint64_t page_no,
                          PageSource* source);

  /// Returns the cached page, or null on miss — never loads. Lets a
  /// caller that can serve itself from compressed stored bytes check for
  /// an already-decoded copy first.
  PageRef Peek(uint64_t file_id, uint64_t page_no);

  /// Caches an already-materialized page (e.g. one the caller decoded
  /// from compressed stored bytes). A page already cached under the key
  /// is kept — both copies are equally valid, immutable decodings.
  void Insert(uint64_t file_id, uint64_t page_no, PageRef page);

  /// Drops every cached page. Benchmarks call this between measured
  /// queries to approximate the paper's cold-cache methodology (§5).
  void EvictAll();

  /// Drops cached pages belonging to \p file_id (called when a file is
  /// destroyed so ids can be recycled safely).
  void EvictFile(uint64_t file_id);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t resident_bytes() const { return resident_bytes_; }

 private:
  struct Key {
    uint64_t file_id;
    uint64_t page_no;
    bool operator==(const Key& o) const {
      return file_id == o.file_id && page_no == o.page_no;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return static_cast<size_t>(k.file_id * 0x9e3779b97f4a7c15ULL ^
                                 k.page_no);
    }
  };
  struct Entry {
    PageRef page;
    std::list<Key>::iterator lru_pos;
  };

  void TouchLocked(Entry& e, const Key& k);
  void EvictIfNeededLocked();

  const uint64_t capacity_bytes_;
  std::mutex mu_;
  std::unordered_map<Key, Entry, KeyHash> pages_;
  std::list<Key> lru_;  // front = most recent
  uint64_t resident_bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace decibel

#endif  // DECIBEL_STORAGE_BUFFER_POOL_H_
