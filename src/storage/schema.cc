#include "storage/schema.h"

#include <unordered_set>

#include "common/coding.h"

namespace decibel {

const char* FieldTypeName(FieldType type) {
  switch (type) {
    case FieldType::kInt32:
      return "INT32";
    case FieldType::kInt64:
      return "INT64";
    case FieldType::kDouble:
      return "DOUBLE";
    case FieldType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

uint32_t FieldTypeWidth(FieldType type) {
  switch (type) {
    case FieldType::kInt32:
      return 4;
    case FieldType::kInt64:
      return 8;
    case FieldType::kDouble:
      return 8;
    case FieldType::kString:
      return 0;  // column-specified
  }
  return 0;
}

Result<Schema> Schema::Make(std::vector<Column> columns) {
  if (columns.empty()) {
    return Status::InvalidArgument("schema: needs at least the key column");
  }
  if (columns[0].type != FieldType::kInt64) {
    return Status::InvalidArgument(
        "schema: column 0 must be the INT64 primary key");
  }
  std::unordered_set<std::string> names;
  Schema s;
  uint32_t off = 1;  // 1-byte record header (flags)
  for (auto& col : columns) {
    if (col.name.empty()) {
      return Status::InvalidArgument("schema: empty column name");
    }
    if (!names.insert(col.name).second) {
      return Status::InvalidArgument("schema: duplicate column " + col.name);
    }
    if (col.type == FieldType::kString) {
      if (col.width == 0) {
        return Status::InvalidArgument("schema: string column " + col.name +
                                       " needs a width");
      }
    } else {
      col.width = FieldTypeWidth(col.type);
    }
    s.offsets_.push_back(off);
    off += col.width;
  }
  s.columns_ = std::move(columns);
  s.record_size_ = off;
  return s;
}

Schema Schema::MakeBenchmark(int num_cols, uint32_t col_width) {
  std::vector<Column> cols;
  cols.push_back({"pk", FieldType::kInt64, 8});
  for (int i = 1; i <= num_cols; ++i) {
    cols.push_back({"c" + std::to_string(i),
                    col_width == 8 ? FieldType::kInt64 : FieldType::kInt32,
                    col_width});
  }
  auto result = Make(std::move(cols));
  // The constructed column list is valid by construction.
  return result.MoveValueUnsafe();
}

int Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != other.columns_[i].name ||
        columns_[i].type != other.columns_[i].type ||
        columns_[i].width != other.columns_[i].width) {
      return false;
    }
  }
  return true;
}

void Schema::EncodeTo(std::string* dst) const {
  PutVarint64(dst, columns_.size());
  for (const auto& col : columns_) {
    PutLengthPrefixed(dst, col.name);
    dst->push_back(static_cast<char>(col.type));
    PutVarint32(dst, col.width);
  }
}

Result<Schema> Schema::DecodeFrom(Slice* input) {
  uint64_t n;
  if (!GetVarint64(input, &n)) {
    return Status::Corruption("schema: truncated column count");
  }
  std::vector<Column> cols;
  cols.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Slice name;
    if (!GetLengthPrefixed(input, &name) || input->empty()) {
      return Status::Corruption("schema: truncated column");
    }
    Column col;
    col.name = name.ToString();
    col.type = static_cast<FieldType>((*input)[0]);
    input->RemovePrefix(1);
    if (!GetVarint32(input, &col.width)) {
      return Status::Corruption("schema: truncated width");
    }
    cols.push_back(std::move(col));
  }
  return Make(std::move(cols));
}

}  // namespace decibel
