#ifndef DECIBEL_STORAGE_HEAP_FILE_H_
#define DECIBEL_STORAGE_HEAP_FILE_H_

/// \file heap_file.h
/// Append-only record file, the unit of physical storage for all three
/// Decibel engines: the tuple-first engine keeps one big heap file, the
/// version-first and hybrid engines keep one per segment (§3).
///
/// Records are fixed-width (see schema.h), packed into fixed-size pages:
///
///   file   := header page | page*
///   header := magic u32 | version u32 | page_size u64 | record_size u32 |
///             reserved | crc u32                          (64 bytes)
///   page   := count u32 | masked_crc u32 | record*count | zero padding
///
/// Appends accumulate in an in-memory tail page; a page is written to disk
/// when it fills (or on Flush, which rewrites the partial tail in place).
/// Sealed (full) pages are immutable and cached by the BufferPool. Record
/// index <-> page/slot mapping is arithmetic.

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "common/io.h"
#include "common/result.h"
#include "storage/buffer_pool.h"

namespace decibel {

class HeapFile : public PageSource {
 public:
  struct Options {
    uint64_t page_size = 1 << 20;  ///< paper uses 4 MB; tests use smaller
    bool verify_checksums = true;
  };

  /// Creates a new heap file at \p path. A pre-existing file there is
  /// removed first: Create is only reached when the engine's metadata
  /// says no such file exists, so anything on disk is stale debris from
  /// a crash after the last checkpoint (WAL replay recreates the file).
  static Result<std::unique_ptr<HeapFile>> Create(const std::string& path,
                                                  uint32_t record_size,
                                                  const Options& options,
                                                  BufferPool* pool);

  /// Opens an existing heap file, restoring append position.
  static Result<std::unique_ptr<HeapFile>> Open(const std::string& path,
                                                const Options& options,
                                                BufferPool* pool);

  /// What a checkpoint records about this file: how many records were
  /// durable at checkpoint time and the CRC of the partial tail page's
  /// payload at that moment. Enough to (a) discard records appended
  /// after the checkpoint on recovery and (b) detect a tail page torn by
  /// a crash mid-rewrite.
  struct CheckpointState {
    uint64_t num_records = 0;
    uint32_t tail_crc = 0;  ///< CRC32 of the tail payload (0 if tail empty)
  };

  /// Snapshot of the current checkpoint state. Call after Flush/Sync with
  /// writers quiesced — the state describes what is on disk.
  CheckpointState GetCheckpointState() const;

  /// Opens an existing heap file and rolls it back to \p state: records
  /// appended after the checkpoint are truncated away and the tail page
  /// is rewritten with a valid header. Fails with Corruption if the first
  /// state.num_records records do not verify (a genuinely torn write
  /// inside checkpointed data). This is the crash-recovery entry point —
  /// after it succeeds the file is byte-identical (up to zero padding) to
  /// the checkpoint.
  static Result<std::unique_ptr<HeapFile>> OpenAtCheckpoint(
      const std::string& path, const Options& options, BufferPool* pool,
      const CheckpointState& state);

  ~HeapFile() override;
  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;

  /// Appends one record (must be exactly record_size bytes); returns its
  /// index. Fails on sealed files.
  Result<uint64_t> Append(Slice record);

  /// Appends \p count records packed contiguously in \p records (exactly
  /// count * record_size bytes); returns the index of the first. The
  /// records receive consecutive indices. One tail-lock round and
  /// page-sized copies per page instead of count individual Appends —
  /// the engines' ApplyBatch path.
  ///
  /// Unlike single-record Append, concurrent writers of the SAME file
  /// must be serialized by the caller (readers stay safe). The engines
  /// satisfy this: all three serialize their mutating entry points
  /// engine-wide behind a write mutex (they share segment registries or
  /// bitmap state across branches anyway).
  Result<uint64_t> AppendBatch(Slice records, uint64_t count);

  /// Writes the partial tail page to disk.
  Status Flush();

  /// Flushes, then fdatasyncs the file so every record survives a power
  /// loss (not just a process crash).
  Status Sync();

  /// Flushes and forbids further appends (hybrid freezes head segments on
  /// branch, §3.4). Also releases the write descriptor — a sealed file
  /// never appends again, and under branch churn one held fd per sealed
  /// segment adds up to descriptor exhaustion. Sync() reopens transiently.
  Status Seal();
  bool sealed() const { return sealed_; }

  /// Seals (if not already sealed) and closes every file descriptor this
  /// heap file holds. The file stays fully readable: the reader reopens
  /// lazily on the next page miss. Used when a branch is retired so its
  /// segments stop pinning fds.
  Status ReleaseFileHandles();

  /// Copies record \p index into \p out.
  Status Get(uint64_t index, std::string* out);

  uint64_t num_records() const { return num_records_; }
  uint32_t record_size() const { return record_size_; }
  uint64_t page_size() const { return options_.page_size; }
  uint64_t records_per_page() const { return records_per_page_; }
  uint64_t file_id() const { return file_id_; }
  const std::string& path() const { return path_; }

  /// Bytes this file occupies on disk (header + written pages).
  uint64_t SizeBytes() const;

  /// PageSource: reads a sealed page from disk, verifying its checksum.
  Status ReadPageFromDisk(uint64_t page_no, std::string* out) override;

  /// A pinned view of one page's record payload. Keeps the underlying
  /// buffer alive; \p payload points at the first record.
  struct PinnedPage {
    PageRef pin;          // sealed page (null for tail)
    std::string tail;     // tail snapshot (empty for sealed pages)
    const char* payload = nullptr;
    uint32_t count = 0;   // records in this page
  };

  /// Pins page \p page_no (snapshotting the in-memory tail if that is the
  /// requested page). Used by the version-first engine's newest-to-oldest
  /// segment scans.
  Result<PinnedPage> PinPage(uint64_t page_no);

  /// Sequential scanner over record indexes [begin, end). Pins one page at
  /// a time through the buffer pool.
  class Scanner {
   public:
    Scanner(HeapFile* file, uint64_t begin, uint64_t end);
    /// Advances to the next record; returns false at end or error (check
    /// status()). \p record points into pinned page memory and is valid
    /// until the next call.
    bool Next(Slice* record, uint64_t* index);
    const Status& status() const { return status_; }

   private:
    HeapFile* file_;
    uint64_t next_;
    uint64_t end_;
    PageRef pinned_;          // current sealed page
    std::string tail_copy_;   // stable snapshot of the tail page
    uint64_t pinned_page_no_ = UINT64_MAX;
    Status status_;
  };

  Scanner NewScanner() { return Scanner(this, 0, num_records()); }
  Scanner NewScanner(uint64_t begin, uint64_t end) {
    return Scanner(this, begin, end);
  }

 private:
  HeapFile(std::string path, uint32_t record_size, const Options& options,
           BufferPool* pool);

  Status WriteHeader();
  Status WriteTailPage();
  /// Writes the full tail page to disk and resets the tail for the next
  /// page — the seal step shared by Append and AppendBatch.
  Status SealTailPage();
  uint64_t PageOffset(uint64_t page_no) const;
  /// If \p page_no is (still) the tail page, copies the tail payload into
  /// \p out and returns true; returns false if that page has been sealed
  /// to disk. Decision and snapshot are atomic, so readers racing a
  /// writer that seals the page never read a stale (empty) tail.
  bool SnapshotTailIfCurrent(uint64_t page_no, std::string* out,
                             uint32_t* count) const;

  static std::atomic<uint64_t> next_file_id_;

  const std::string path_;
  const uint32_t record_size_;
  const Options options_;
  BufferPool* const pool_;
  const uint64_t file_id_;
  uint64_t records_per_page_ = 0;

  std::optional<RandomWriteFile> writer_;
  mutable std::optional<RandomAccessFile> reader_;
  mutable std::mutex reader_mu_;

  uint64_t sealed_pages_ = 0;          // number of full pages on disk
  std::atomic<uint64_t> num_records_{0};
  bool sealed_ = false;
  bool tail_dirty_ = false;

  mutable std::mutex tail_mu_;
  std::string tail_;        // payload bytes of the partial page
  uint32_t tail_count_ = 0;

  friend class Scanner;
};

}  // namespace decibel

#endif  // DECIBEL_STORAGE_HEAP_FILE_H_
