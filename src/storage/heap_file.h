#ifndef DECIBEL_STORAGE_HEAP_FILE_H_
#define DECIBEL_STORAGE_HEAP_FILE_H_

/// \file heap_file.h
/// Append-only record file, the unit of physical storage for all three
/// Decibel engines: the tuple-first engine keeps one big heap file, the
/// version-first and hybrid engines keep one per segment (§3).
///
/// Records are fixed-width (see schema.h), packed into fixed-size pages
/// (format v2):
///
///   file   := header page | page*
///   header := magic u32 | version u32 | page_size u64 | record_size u32 |
///             reserved | crc u32                          (64 bytes)
///   page   := count u32 | masked_crc u32 | format u8 | pad u8*3 |
///             stored_len u32 | stored bytes | zero padding
///
/// `format` is a columnar::PageFormat tag; `stored_len` counts the stored
/// bytes, and the CRC covers exactly those bytes. A kRaw page stores the
/// `count` records verbatim (stored_len == count * record_size); compressed
/// formats store the page_codec encoding and are decoded on read, with the
/// BufferPool caching the *decoded* page. Pages occupy fixed page_size
/// slots on disk either way — compression buys read I/O and pre-decode
/// predicate evaluation, not disk footprint.
///
/// Appends accumulate in an in-memory tail page; a page is written to disk
/// when it fills (or on Flush, which rewrites the partial tail in place).
/// The tail and pages sealed *from* the tail are always kRaw: the tail
/// slot is rewritten in place, and crash recovery relies on a reseal
/// preserving the already-checkpointed byte prefix — recompressing it
/// would not. Only AppendBatch's full-page fast path (which writes a page
/// slot no checkpoint has referenced) compresses. Sealed (full) pages are
/// immutable and cached by the BufferPool. Record index <-> page/slot
/// mapping is arithmetic.
///
/// When Options::schema is set, the file also maintains columnar zone
/// maps — per sealed page, for the tail, and for the whole file — kept
/// strictly ahead of num_records_ so any record a reader can see is
/// already folded into the stats. Engines persist them via EncodeStats /
/// LoadStats and consult them through PageMayMatch / FileMayMatch to skip
/// pages and files without touching bytes.

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "columnar/page_codec.h"
#include "columnar/zone_map.h"
#include "common/io.h"
#include "common/result.h"
#include "storage/buffer_pool.h"

namespace decibel {

class PreparedPredicate;

class HeapFile : public PageSource {
 public:
  struct Options {
    uint64_t page_size = 1 << 20;  ///< paper uses 4 MB; tests use smaller
    bool verify_checksums = true;
    /// Record layout, enabling zone-map maintenance and (with
    /// compress_pages) adaptive page encoding. Must outlive the file;
    /// null disables statistics (degraded mode for raw-file tests).
    const Schema* schema = nullptr;
    /// Encode full-batch pages with the page codec when it wins.
    bool compress_pages = false;
  };

  /// Creates a new heap file at \p path. A pre-existing file there is
  /// removed first: Create is only reached when the engine's metadata
  /// says no such file exists, so anything on disk is stale debris from
  /// a crash after the last checkpoint (WAL replay recreates the file).
  static Result<std::unique_ptr<HeapFile>> Create(const std::string& path,
                                                  uint32_t record_size,
                                                  const Options& options,
                                                  BufferPool* pool);

  /// Opens an existing heap file, restoring append position.
  static Result<std::unique_ptr<HeapFile>> Open(const std::string& path,
                                                const Options& options,
                                                BufferPool* pool);

  /// What a checkpoint records about this file: how many records were
  /// durable at checkpoint time and the CRC of the partial tail page's
  /// payload at that moment. Enough to (a) discard records appended
  /// after the checkpoint on recovery and (b) detect a tail page torn by
  /// a crash mid-rewrite.
  struct CheckpointState {
    uint64_t num_records = 0;
    uint32_t tail_crc = 0;  ///< CRC32 of the tail payload (0 if tail empty)
  };

  /// Snapshot of the current checkpoint state. Call after Flush/Sync with
  /// writers quiesced — the state describes what is on disk.
  CheckpointState GetCheckpointState() const;

  /// Opens an existing heap file and rolls it back to \p state: records
  /// appended after the checkpoint are truncated away and the tail page
  /// is rewritten with a valid header. Fails with Corruption if the first
  /// state.num_records records do not verify (a genuinely torn write
  /// inside checkpointed data). This is the crash-recovery entry point —
  /// after it succeeds the file is byte-identical (up to zero padding) to
  /// the checkpoint.
  static Result<std::unique_ptr<HeapFile>> OpenAtCheckpoint(
      const std::string& path, const Options& options, BufferPool* pool,
      const CheckpointState& state);

  ~HeapFile() override;
  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;

  /// Appends one record (must be exactly record_size bytes); returns its
  /// index. Fails on sealed files.
  Result<uint64_t> Append(Slice record);

  /// Appends \p count records packed contiguously in \p records (exactly
  /// count * record_size bytes); returns the index of the first. The
  /// records receive consecutive indices. One tail-lock round and
  /// page-sized copies per page instead of count individual Appends —
  /// the engines' ApplyBatch path.
  ///
  /// Unlike single-record Append, concurrent writers of the SAME file
  /// must be serialized by the caller (readers stay safe). The engines
  /// satisfy this: all three serialize their mutating entry points
  /// engine-wide behind a write mutex (they share segment registries or
  /// bitmap state across branches anyway).
  Result<uint64_t> AppendBatch(Slice records, uint64_t count);

  /// Writes the partial tail page to disk.
  Status Flush();

  /// Flushes, then fdatasyncs the file so every record survives a power
  /// loss (not just a process crash).
  Status Sync();

  /// Flushes and forbids further appends (hybrid freezes head segments on
  /// branch, §3.4). Also releases the write descriptor — a sealed file
  /// never appends again, and under branch churn one held fd per sealed
  /// segment adds up to descriptor exhaustion. Sync() reopens transiently.
  Status Seal();
  bool sealed() const { return sealed_; }

  /// Seals (if not already sealed) and closes every file descriptor this
  /// heap file holds. The file stays fully readable: the reader reopens
  /// lazily on the next page miss. Used when a branch is retired so its
  /// segments stop pinning fds.
  Status ReleaseFileHandles();

  /// Copies record \p index into \p out.
  Status Get(uint64_t index, std::string* out);

  uint64_t num_records() const { return num_records_; }
  uint32_t record_size() const { return record_size_; }
  uint64_t page_size() const { return options_.page_size; }
  uint64_t records_per_page() const { return records_per_page_; }
  uint64_t file_id() const { return file_id_; }
  const std::string& path() const { return path_; }

  /// Bytes this file occupies on disk (header + written pages).
  uint64_t SizeBytes() const;

  /// PageSource: reads a sealed page from disk, verifying its checksum.
  Status ReadPageFromDisk(uint64_t page_no, std::string* out) override;

  /// A pinned view of one page's record payload. Keeps the underlying
  /// buffer alive; \p payload points at the first record.
  struct PinnedPage {
    PageRef pin;          // sealed page (null for tail)
    std::string tail;     // tail snapshot (empty for sealed pages)
    const char* payload = nullptr;
    uint32_t count = 0;   // records in this page
    /// Stored bytes behind this pin (page header + stored_len for sealed
    /// pages, tail bytes for the tail) — what ScanStats::bytes_read
    /// charges. Compressed pages charge their compressed size.
    uint64_t io_bytes = 0;
  };

  /// Pins page \p page_no (snapshotting the in-memory tail if that is the
  /// requested page). Used by the version-first engine's newest-to-oldest
  /// segment scans.
  Result<PinnedPage> PinPage(uint64_t page_no);

  /// PinPage variant that may prove the page irrelevant without decoding:
  /// if the page is stored columnar-compressed and not yet cached, the
  /// predicate is evaluated on the compressed strips first; zero matches
  /// sets *no_matches and returns an empty (payload-less) pin whose
  /// io_bytes still charges the stored bytes inspected. Only callers
  /// whose version resolution is external (bitmap engines) may treat
  /// *no_matches as permission to skip — the page's records still exist.
  Result<PinnedPage> PinPageCounted(uint64_t page_no,
                                    const PreparedPredicate* predicate,
                                    bool* no_matches);

  // ------------------------------------------------------- zone maps

  /// Per-sealed-page statistics (zone map + storage format).
  struct PageStats {
    columnar::ZoneMap zone;
    columnar::PageFormat format = columnar::PageFormat::kRaw;
    uint32_t stored_bytes = 0;  ///< stored_len of the page on disk
  };

  bool stats_enabled() const { return options_.schema != nullptr; }

  /// Could any live record of page \p page_no match? Pages beyond the
  /// sealed range test the tail zone. Always true with stats disabled.
  bool PageMayMatch(uint64_t page_no, const PreparedPredicate& predicate) const;

  /// Could any live record of the whole file match? False lets a scan
  /// drop the file without opening a cursor on it.
  bool FileMayMatch(const PreparedPredicate& predicate) const;

  /// Copies the per-page stats and the tail zone, consistent with each
  /// other. Cursors snapshot once at open and plan skipping against the
  /// snapshot (concurrent appends only add pages the caller's record
  /// bound excludes anyway).
  void SnapshotPageStats(std::vector<PageStats>* pages,
                         columnar::ZoneMap* tail_zone) const;

  /// Zone covering every record in the file (sealed pages + tail).
  columnar::ZoneMap FileZone() const;

  /// Serializes the per-page stats for engine metadata persistence. Call
  /// with writers quiesced (checkpoint time).
  void EncodeStats(std::string* dst) const;

  /// Restores stats persisted by EncodeStats. Entries beyond the current
  /// sealed-page count (metadata newer than a rolled-back file) are
  /// dropped; missing entries are rebuilt by EnsureStats.
  Status LoadStats(Slice input);

  /// Computes stats for any sealed page lacking them (reading the page)
  /// and rebuilds the tail and file zones. No-op with stats disabled.
  /// Engines call this after open so skipping never depends on how fresh
  /// the persisted blob was.
  Status EnsureStats();

  /// Sequential scanner over record indexes [begin, end). Pins one page at
  /// a time through the buffer pool.
  class Scanner {
   public:
    Scanner(HeapFile* file, uint64_t begin, uint64_t end);
    /// Advances to the next record; returns false at end or error (check
    /// status()). \p record points into pinned page memory and is valid
    /// until the next call.
    bool Next(Slice* record, uint64_t* index);
    const Status& status() const { return status_; }

   private:
    HeapFile* file_;
    uint64_t next_;
    uint64_t end_;
    PageRef pinned_;          // current sealed page
    std::string tail_copy_;   // stable snapshot of the tail page
    uint64_t pinned_page_no_ = UINT64_MAX;
    Status status_;
  };

  Scanner NewScanner() { return Scanner(this, 0, num_records()); }
  Scanner NewScanner(uint64_t begin, uint64_t end) {
    return Scanner(this, begin, end);
  }

 private:
  HeapFile(std::string path, uint32_t record_size, const Options& options,
           BufferPool* pool);

  /// Parsed v2 page header.
  struct PageHeader {
    uint32_t count = 0;
    columnar::PageFormat format = columnar::PageFormat::kRaw;
    uint32_t stored_len = 0;
  };

  Status WriteHeader();
  Status WriteTailPage();
  /// Reads and validates a sealed page's stored bytes (header + exactly
  /// stored_len payload bytes — compressed pages read less than a full
  /// page slot).
  Status ReadStoredPage(uint64_t page_no, std::string* stored,
                        PageHeader* header) const;
  /// Folds one staged record into the tail/file zones (call before
  /// publishing num_records_).
  void FoldTailRecords(const char* records, uint64_t count);
  /// Writes the full tail page to disk and resets the tail for the next
  /// page — the seal step shared by Append and AppendBatch.
  Status SealTailPage();
  uint64_t PageOffset(uint64_t page_no) const;
  /// If \p page_no is (still) the tail page, copies the tail payload into
  /// \p out and returns true; returns false if that page has been sealed
  /// to disk. Decision and snapshot are atomic, so readers racing a
  /// writer that seals the page never read a stale (empty) tail.
  bool SnapshotTailIfCurrent(uint64_t page_no, std::string* out,
                             uint32_t* count) const;

  static std::atomic<uint64_t> next_file_id_;

  const std::string path_;
  const uint32_t record_size_;
  const Options options_;
  BufferPool* const pool_;
  const uint64_t file_id_;
  uint64_t records_per_page_ = 0;

  std::optional<RandomWriteFile> writer_;
  mutable std::optional<RandomAccessFile> reader_;
  mutable std::mutex reader_mu_;

  uint64_t sealed_pages_ = 0;          // number of full pages on disk
  std::atomic<uint64_t> num_records_{0};
  bool sealed_ = false;
  bool tail_dirty_ = false;

  mutable std::mutex tail_mu_;
  std::string tail_;        // payload bytes of the partial page
  uint32_t tail_count_ = 0;

  /// Leaf lock guarding the zone-map state; never held across I/O or
  /// pool calls. Ordering: stats entries for a page are published before
  /// sealed_pages_ counts it, and tail/file zones fold a record before
  /// num_records_ publishes it — a reader that can see a record can see
  /// its stats.
  mutable std::mutex stats_mu_;
  std::vector<PageStats> page_stats_;  // one entry per sealed page
  columnar::ZoneMap tail_zone_;        // records currently staged in tail_
  columnar::ZoneMap file_zone_;        // every record ever appended

  friend class Scanner;
};

}  // namespace decibel

#endif  // DECIBEL_STORAGE_HEAP_FILE_H_
