#ifndef DECIBEL_STORAGE_STRIPED_HEAP_H_
#define DECIBEL_STORAGE_STRIPED_HEAP_H_

/// \file striped_heap.h
/// The tuple-first engine's shared heap, sharded into one append-only
/// HeapFile per write stripe so branches on different stripes never
/// contend on the same tail page. One *global* record-index space is
/// preserved — the bitmap index and pk indexes keep addressing tuples by
/// a single uint64_t — by handing each stripe contiguous *extents* of
/// the global space on demand:
///
///   extent := {global base, capacity, stripe, stripe-local base}
///
/// A stripe fills its open extent record by record; when a batch
/// outgrows it, a fresh extent of max(extent_records, what's left of the
/// batch) indices is carved off the global counter, so one batch spans at
/// most two extents and AppendBatch reports the assigned indices as a
/// short list of contiguous runs. The unfilled tail of an open extent is
/// simply never handed out — bitmaps keep zeros there and scans skip it.
///
/// Concurrency contract: writers to the SAME stripe must be serialized by
/// the caller (the engine's stripe locks do this); writers to different
/// stripes proceed in parallel, coordinating only on the global counter
/// and the extent table. Readers never block: Mapping is an immutable
/// snapshot of the extent table taken at cursor-open time, and the
/// underlying HeapFiles are append-only with snapshot-safe tail reads.
///
/// Persistence: `manifest` (extent table + geometry) is rewritten on
/// Flush, after the stripe files — the same recover-to-last-flush
/// contract as the engine meta it sits next to.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "bitmap/bitmap.h"
#include "common/result.h"
#include "storage/heap_file.h"
#include "storage/record.h"

namespace decibel {

class StripedHeap {
 public:
  struct Options {
    uint64_t page_size = 1 << 20;
    bool verify_checksums = true;
    uint32_t stripes = 8;
    /// Minimum global indices carved per extent; 0 derives one page's
    /// worth of records (keeps the extent table small without letting
    /// open-extent holes outgrow a page per stripe).
    uint64_t extent_records = 0;
    /// Record layout forwarded to every stripe file — enables zone maps
    /// (and, with compress_pages, adaptive page encoding). Must outlive
    /// the heap; null disables statistics.
    const Schema* schema = nullptr;
    /// Forwarded to every stripe file's HeapFile::Options.
    bool compress_pages = false;
  };

  /// A contiguous range of global indices assigned by one AppendBatch.
  struct Run {
    uint64_t base = 0;
    uint64_t count = 0;
  };

  /// The runs one AppendBatch assigned. A batch spans at most two extents
  /// (the refill extent always covers the whole remainder), so storage is
  /// inline — the per-transaction write path never allocates here.
  /// Adjacent runs coalesce on Add.
  class RunList {
   public:
    void Add(uint64_t base, uint64_t count) {
      if (size_ > 0 && runs_[size_ - 1].base + runs_[size_ - 1].count == base) {
        runs_[size_ - 1].count += count;
        return;
      }
      runs_[size_++] = Run{base, count};
    }
    const Run& operator[](size_t i) const { return runs_[i]; }
    size_t size() const { return size_; }

   private:
    Run runs_[2];
    size_t size_ = 0;
  };

  struct Extent {
    uint64_t base = 0;        ///< first global index
    uint64_t capacity = 0;    ///< global indices reserved
    uint32_t stripe = 0;      ///< owning stripe
    uint64_t local_base = 0;  ///< first record index in the stripe file
  };

  /// Creates a fresh striped heap in \p dir (one `heap.<i>.dbhf` per
  /// stripe plus a `manifest`).
  static Result<std::unique_ptr<StripedHeap>> Create(const std::string& dir,
                                                     uint32_t record_size,
                                                     const Options& options,
                                                     BufferPool* pool);

  /// Reopens a striped heap from its manifest; the stripe count persisted
  /// there wins over options.stripes. A non-empty \p checkpoint_tag loads
  /// the tagged manifest written by Checkpoint(tag) instead and rolls
  /// every stripe file back to that checkpoint's record counts (crash
  /// recovery).
  static Result<std::unique_ptr<StripedHeap>> Open(
      const std::string& dir, const Options& options, BufferPool* pool,
      const std::string& checkpoint_tag = "");

  /// Appends \p count records (packed, count * record_size bytes) to
  /// \p stripe and reports the assigned global indices as contiguous
  /// runs appended to \p runs (at most two). Caller must serialize
  /// writers per stripe.
  Status AppendBatch(uint32_t stripe, Slice records, uint64_t count,
                     RunList* runs);

  /// Single-record append; returns the assigned global index.
  Result<uint64_t> Append(uint32_t stripe, Slice record);

  /// Copies the record at global index \p global into \p out.
  Status Get(uint64_t global, std::string* out);

  /// One past the highest global index any extent covers — the bound the
  /// bitmap index must be able to address.
  uint64_t allocated_bound() const {
    return allocated_bound_.load(std::memory_order_acquire);
  }
  /// Total records appended (excludes open-extent holes).
  uint64_t num_records() const {
    return num_records_.load(std::memory_order_relaxed);
  }

  uint32_t record_size() const { return record_size_; }
  uint32_t stripe_count() const {
    return static_cast<uint32_t>(stripes_.size());
  }
  uint64_t SizeBytes() const;

  /// Flushes every stripe file, then rewrites the manifest.
  Status Flush();

  /// Checkpoints the heap under \p tag: flushes (and, if \p sync, fsyncs)
  /// every stripe file, then atomically writes `heap.manifest.<tag>`
  /// recording the extent table plus each stripe's durable record count
  /// and tail CRC. Open(dir, ..., tag) restores exactly this state.
  /// Writers must be quiesced by the caller.
  Status Checkpoint(const std::string& tag, bool sync);

  /// Deletes the tagged manifest written by Checkpoint(tag).
  Status RemoveCheckpoint(const std::string& tag);

  /// Rebuilds any missing per-page zone maps on every stripe file (see
  /// HeapFile::EnsureStats). Open() calls this after loading the
  /// manifest's persisted stats so skipping never depends on how fresh
  /// the persisted blobs were. No-op with stats disabled.
  Status EnsureStats();

  /// An immutable snapshot of the global->(file, local) translation.
  /// Cheap to copy around; resolves monotonically-increasing lookups in
  /// amortized O(1) via a cursor hint. Taken AFTER materializing the
  /// bitmap a scan will follow, it is guaranteed to cover every set bit
  /// (indices are carved from the counter before records are appended,
  /// before bits are set).
  class Mapping {
   public:
    Mapping() = default;

    /// Translates \p global; false if it falls outside every extent in
    /// the snapshot.
    bool Resolve(uint64_t global, HeapFile** file, uint64_t* local) const;

    /// One past the last global index this snapshot covers.
    uint64_t bound() const {
      return extents_.empty() ? 0
                              : extents_.back().base + extents_.back().capacity;
    }

   private:
    friend class StripedHeap;
    std::vector<Extent> extents_;         // sorted by base, gap-free
    std::vector<HeapFile*> files_;        // per stripe, stable pointers
    mutable size_t hint_ = 0;             // last resolved extent
  };

  Mapping SnapshotMapping() const;

 private:
  struct StripeState {
    std::unique_ptr<HeapFile> file;
    uint64_t next_global = 0;  ///< next index of the open extent
    uint64_t remaining = 0;    ///< indices left in the open extent
  };

  StripedHeap(std::string dir, uint32_t record_size, const Options& options,
              BufferPool* pool);

  std::string StripePath(uint32_t stripe) const;
  std::string ManifestPath(const std::string& tag = "") const;
  Status WriteManifest();
  std::string EncodeManifest();
  /// Parses \p input and opens the stripe files. With \p recover, each
  /// file is rolled back to the manifest's per-stripe checkpoint state.
  Status LoadManifest(Slice input, bool recover);
  /// Carves a fresh extent of max(extent_records_, needed) global indices
  /// for \p stripe.
  Status AllocateExtent(uint32_t stripe, uint64_t needed);

  const std::string dir_;
  uint32_t record_size_;
  const Options options_;
  BufferPool* const pool_;
  uint64_t extent_records_ = 0;

  std::vector<StripeState> stripes_;  // fixed size after construction

  /// Guards extent allocation (the global counter handoff).
  std::mutex alloc_mu_;
  /// Guards the extent table's shape; writers append under unique,
  /// Get/SnapshotMapping read under shared.
  mutable std::shared_mutex table_mu_;
  std::vector<Extent> extents_;  // sorted by base

  std::atomic<uint64_t> allocated_bound_{0};
  std::atomic<uint64_t> num_records_{0};
};

struct ScanStats;

/// Iterates heap records selected by a bitmap through a Mapping snapshot —
/// the striped counterpart of BitmapScanner. Lock-free: the bitmap is the
/// caller's materialized copy and the mapping never changes.
class StripedBitmapScanner {
 public:
  /// \p bits must outlive the scanner.
  StripedBitmapScanner(StripedHeap::Mapping mapping, const Schema* schema,
                       const Bitmap* bits)
      : mapping_(std::move(mapping)), schema_(schema), bits_(bits) {}

  /// Turns on zone-map page skipping: pages whose zone maps rule out
  /// \p predicate (or whose compressed strips prove zero matches) are
  /// stepped over without pinning. Sound here because the bitmap already
  /// resolved version visibility — a skipped page's records were only
  /// ever going to be filtered out. \p stats (optional) receives
  /// pages_skipped and bytes_read; both pointers must outlive the scanner.
  void EnablePruning(const PreparedPredicate* predicate, ScanStats* stats) {
    predicate_ = predicate;
    stats_ = stats;
  }

  bool Next(RecordRef* out, uint64_t* index);
  const Status& status() const { return status_; }

 private:
  StripedHeap::Mapping mapping_;
  const Schema* schema_;
  const Bitmap* bits_;
  const PreparedPredicate* predicate_ = nullptr;
  ScanStats* stats_ = nullptr;
  uint64_t pos_ = 0;
  HeapFile* pinned_file_ = nullptr;
  uint64_t pinned_page_no_ = UINT64_MAX;
  HeapFile::PinnedPage page_;
  HeapFile* skip_file_ = nullptr;
  uint64_t skip_page_no_ = UINT64_MAX;
  Status status_;
};

}  // namespace decibel

#endif  // DECIBEL_STORAGE_STRIPED_HEAP_H_
