#include "storage/buffer_pool.h"

namespace decibel {

Result<PageRef> BufferPool::GetPage(uint64_t file_id, uint64_t page_no,
                                    PageSource* source) {
  const Key key{file_id, page_no};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pages_.find(key);
    if (it != pages_.end()) {
      ++hits_;
      TouchLocked(it->second, key);
      return it->second.page;
    }
    ++misses_;
  }
  // Load outside the lock; concurrent loads of the same page are rare and
  // benign (last insert wins, both readers get valid pages).
  auto page = std::make_shared<std::string>();
  DECIBEL_RETURN_NOT_OK(source->ReadPageFromDisk(page_no, page.get()));
  PageRef ref = std::move(page);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = pages_.try_emplace(key);
    if (inserted) {
      lru_.push_front(key);
      it->second.page = ref;
      it->second.lru_pos = lru_.begin();
      resident_bytes_ += ref->size();
      EvictIfNeededLocked();
    }
  }
  return ref;
}

PageRef BufferPool::Peek(uint64_t file_id, uint64_t page_no) {
  const Key key{file_id, page_no};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pages_.find(key);
  if (it == pages_.end()) return nullptr;
  ++hits_;
  TouchLocked(it->second, key);
  return it->second.page;
}

void BufferPool::Insert(uint64_t file_id, uint64_t page_no, PageRef page) {
  const Key key{file_id, page_no};
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = pages_.try_emplace(key);
  if (!inserted) return;
  lru_.push_front(key);
  it->second.page = std::move(page);
  it->second.lru_pos = lru_.begin();
  resident_bytes_ += it->second.page->size();
  EvictIfNeededLocked();
}

void BufferPool::TouchLocked(Entry& e, const Key& k) {
  lru_.erase(e.lru_pos);
  lru_.push_front(k);
  e.lru_pos = lru_.begin();
}

void BufferPool::EvictIfNeededLocked() {
  while (resident_bytes_ > capacity_bytes_ && lru_.size() > 1) {
    const Key victim = lru_.back();
    lru_.pop_back();
    auto it = pages_.find(victim);
    resident_bytes_ -= it->second.page->size();
    pages_.erase(it);
  }
}

void BufferPool::EvictAll() {
  std::lock_guard<std::mutex> lock(mu_);
  pages_.clear();
  lru_.clear();
  resident_bytes_ = 0;
}

void BufferPool::EvictFile(uint64_t file_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->file_id == file_id) {
      auto map_it = pages_.find(*it);
      resident_bytes_ -= map_it->second.page->size();
      pages_.erase(map_it);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace decibel
