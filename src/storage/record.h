#ifndef DECIBEL_STORAGE_RECORD_H_
#define DECIBEL_STORAGE_RECORD_H_

/// \file record.h
/// Record access over the packed fixed-width layout defined by a Schema.
///
/// Layout: [flags: u8][column 0 = pk: i64][column 1]...[column n-1]
/// flags bit 0: tombstone (version-first deletes insert a tombstone record
/// carrying only the key, §3.3).
///
/// RecordRef is a non-owning read view (used when scanning pages);
/// Record owns its buffer (used when building inserts/updates).

#include <cstdint>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "common/slice.h"
#include "storage/schema.h"

namespace decibel {

/// Bit 0 of the record header byte.
inline constexpr uint8_t kTombstoneFlag = 0x01;

/// Read-only view over a serialized record. The schema and the byte range
/// must outlive the view.
class RecordRef {
 public:
  RecordRef() : schema_(nullptr) {}
  RecordRef(const Schema* schema, Slice data)
      : schema_(schema), data_(data) {
    DECIBEL_DCHECK(data.size() == schema->record_size());
  }

  bool valid() const { return schema_ != nullptr; }
  const Schema* schema() const { return schema_; }
  Slice data() const { return data_; }

  bool tombstone() const {
    return (static_cast<uint8_t>(data_[0]) & kTombstoneFlag) != 0;
  }

  int64_t pk() const { return GetInt64(0); }

  int32_t GetInt32(size_t col) const {
    DECIBEL_DCHECK(schema_->column(col).type == FieldType::kInt32);
    int32_t v;
    memcpy(&v, data_.data() + schema_->offset(col), sizeof(v));
    return v;
  }
  int64_t GetInt64(size_t col) const {
    DECIBEL_DCHECK(schema_->column(col).type == FieldType::kInt64);
    int64_t v;
    memcpy(&v, data_.data() + schema_->offset(col), sizeof(v));
    return v;
  }
  double GetDouble(size_t col) const {
    DECIBEL_DCHECK(schema_->column(col).type == FieldType::kDouble);
    double v;
    memcpy(&v, data_.data() + schema_->offset(col), sizeof(v));
    return v;
  }
  /// Returns the string value with trailing NUL padding stripped.
  std::string_view GetString(size_t col) const {
    DECIBEL_DCHECK(schema_->column(col).type == FieldType::kString);
    const char* p = data_.data() + schema_->offset(col);
    size_t w = schema_->column(col).width;
    while (w > 0 && p[w - 1] == '\0') --w;
    return std::string_view(p, w);
  }

  /// Generic numeric read as int64 (int32/int64 columns); used by
  /// predicates and the field-level merge.
  int64_t GetNumeric(size_t col) const {
    switch (schema_->column(col).type) {
      case FieldType::kInt32:
        return GetInt32(col);
      case FieldType::kInt64:
        return GetInt64(col);
      default:
        DECIBEL_DCHECK(false);
        return 0;
    }
  }

  /// Raw bytes of one column (for field-level comparisons in merges).
  Slice ColumnBytes(size_t col) const {
    return Slice(data_.data() + schema_->offset(col),
                 schema_->column(col).width);
  }

 private:
  const Schema* schema_;
  Slice data_;
};

/// A mutable, owning record buffer.
class Record {
 public:
  explicit Record(const Schema* schema)
      : schema_(schema), data_(schema->record_size(), '\0') {}
  Record(const Schema* schema, Slice data)
      : schema_(schema), data_(data.ToString()) {
    DECIBEL_DCHECK(data.size() == schema->record_size());
  }

  const Schema* schema() const { return schema_; }
  Slice data() const { return Slice(data_); }
  RecordRef ref() const { return RecordRef(schema_, Slice(data_)); }

  void SetTombstone(bool on) {
    auto flags = static_cast<uint8_t>(data_[0]);
    data_[0] = static_cast<char>(on ? (flags | kTombstoneFlag)
                                    : (flags & ~kTombstoneFlag));
  }
  bool tombstone() const { return ref().tombstone(); }

  int64_t pk() const { return ref().pk(); }
  void SetPk(int64_t v) { SetInt64(0, v); }

  void SetInt32(size_t col, int32_t v) {
    DECIBEL_DCHECK(schema_->column(col).type == FieldType::kInt32);
    memcpy(data_.data() + schema_->offset(col), &v, sizeof(v));
  }
  void SetInt64(size_t col, int64_t v) {
    DECIBEL_DCHECK(schema_->column(col).type == FieldType::kInt64);
    memcpy(data_.data() + schema_->offset(col), &v, sizeof(v));
  }
  void SetDouble(size_t col, double v) {
    DECIBEL_DCHECK(schema_->column(col).type == FieldType::kDouble);
    memcpy(data_.data() + schema_->offset(col), &v, sizeof(v));
  }
  /// Truncates to the column capacity; pads with NULs.
  void SetString(size_t col, std::string_view v) {
    DECIBEL_DCHECK(schema_->column(col).type == FieldType::kString);
    const uint32_t w = schema_->column(col).width;
    char* p = data_.data() + schema_->offset(col);
    const size_t n = v.size() < w ? v.size() : w;
    memcpy(p, v.data(), n);
    memset(p + n, 0, w - n);
  }

  /// Overwrites one column from another record's bytes (merge machinery).
  void CopyColumnFrom(size_t col, const RecordRef& src) {
    memcpy(data_.data() + schema_->offset(col),
           src.data().data() + schema_->offset(col),
           schema_->column(col).width);
  }

 private:
  const Schema* schema_;
  std::string data_;
};

/// Builds a tombstone record carrying only \p pk.
inline Record MakeTombstone(const Schema* schema, int64_t pk) {
  Record r(schema);
  r.SetPk(pk);
  r.SetTombstone(true);
  return r;
}

}  // namespace decibel

#endif  // DECIBEL_STORAGE_RECORD_H_
