#include "storage/heap_file.h"

#include <algorithm>

#include "common/coding.h"
#include "common/crc32.h"
#include "common/logging.h"

namespace decibel {

namespace {

constexpr uint32_t kMagic = 0x44424846;  // "DBHF"
constexpr uint32_t kFormatVersion = 1;
constexpr uint64_t kFileHeaderSize = 64;
constexpr uint64_t kPageHeaderSize = 8;  // count u32 + masked crc u32

Status ParseHeader(const RandomAccessFile& r, const std::string& path,
                   uint64_t* page_size, uint32_t* record_size) {
  if (r.Size() < kFileHeaderSize) {
    return Status::Corruption("heapfile: missing header in " + path);
  }
  std::string header;
  DECIBEL_RETURN_NOT_OK(r.Read(0, kFileHeaderSize, &header));
  if (DecodeFixed32(header.data()) != kMagic) {
    return Status::Corruption("heapfile: bad magic in " + path);
  }
  if (DecodeFixed32(header.data() + 4) != kFormatVersion) {
    return Status::Corruption("heapfile: unsupported version in " + path);
  }
  *page_size = DecodeFixed64(header.data() + 8);
  *record_size = DecodeFixed32(header.data() + 16);
  const uint32_t stored_crc = UnmaskCrc(DecodeFixed32(header.data() + 60));
  if (stored_crc != Crc32(Slice(header.data(), 60))) {
    return Status::Corruption("heapfile: header checksum mismatch in " + path);
  }
  return Status::OK();
}

}  // namespace

std::atomic<uint64_t> HeapFile::next_file_id_{1};

HeapFile::HeapFile(std::string path, uint32_t record_size,
                   const Options& options, BufferPool* pool)
    : path_(std::move(path)),
      record_size_(record_size),
      options_(options),
      pool_(pool),
      file_id_(next_file_id_.fetch_add(1)) {
  records_per_page_ = (options_.page_size - kPageHeaderSize) / record_size_;
  DECIBEL_CHECK(records_per_page_ > 0);
}

HeapFile::~HeapFile() {
  if (writer_.has_value() && tail_dirty_) {
    WriteTailPage().ok();  // best effort
  }
  if (pool_ != nullptr) pool_->EvictFile(file_id_);
}

Result<std::unique_ptr<HeapFile>> HeapFile::Create(const std::string& path,
                                                   uint32_t record_size,
                                                   const Options& options,
                                                   BufferPool* pool) {
  if (record_size == 0 ||
      record_size > options.page_size - kPageHeaderSize) {
    return Status::InvalidArgument("heapfile: record size " +
                                   std::to_string(record_size) +
                                   " does not fit a page");
  }
  if (FileExists(path)) {
    // Stale leftover from a crash after the last checkpoint: the caller's
    // metadata has no record of this file, so its contents were never
    // acknowledged. Remove it and start fresh (WAL replay refills it).
    DECIBEL_RETURN_NOT_OK(RemoveFile(path));
  }
  std::unique_ptr<HeapFile> file(
      new HeapFile(path, record_size, options, pool));
  DECIBEL_ASSIGN_OR_RETURN(RandomWriteFile w, RandomWriteFile::Open(path));
  file->writer_.emplace(std::move(w));
  DECIBEL_RETURN_NOT_OK(file->WriteHeader());
  return file;
}

Result<std::unique_ptr<HeapFile>> HeapFile::Open(const std::string& path,
                                                 const Options& options,
                                                 BufferPool* pool) {
  DECIBEL_ASSIGN_OR_RETURN(RandomAccessFile r, RandomAccessFile::Open(path));
  uint64_t page_size = 0;
  uint32_t record_size = 0;
  DECIBEL_RETURN_NOT_OK(ParseHeader(r, path, &page_size, &record_size));

  Options opts = options;
  opts.page_size = page_size;
  std::unique_ptr<HeapFile> file(
      new HeapFile(path, record_size, opts, pool));

  const uint64_t data_bytes = r.Size() - kFileHeaderSize;
  if (data_bytes % page_size != 0) {
    return Status::Corruption("heapfile: truncated page in " + path);
  }
  const uint64_t num_pages = data_bytes / page_size;

  if (num_pages > 0) {
    // Inspect the last page: partial -> becomes the in-memory tail.
    std::string last;
    DECIBEL_RETURN_NOT_OK(
        r.Read(kFileHeaderSize + (num_pages - 1) * page_size, page_size,
               &last));
    const uint32_t count = DecodeFixed32(last.data());
    if (count > file->records_per_page_) {
      return Status::Corruption("heapfile: bad page count in " + path);
    }
    const uint32_t crc = UnmaskCrc(DecodeFixed32(last.data() + 4));
    if (crc != Crc32(Slice(last.data() + kPageHeaderSize,
                           count * record_size))) {
      return Status::Corruption("heapfile: tail page checksum in " + path);
    }
    if (count < file->records_per_page_) {
      file->sealed_pages_ = num_pages - 1;
      file->tail_.assign(last.data() + kPageHeaderSize,
                         count * record_size);
      file->tail_count_ = count;
    } else {
      file->sealed_pages_ = num_pages;
    }
    file->num_records_ =
        file->sealed_pages_ * file->records_per_page_ + file->tail_count_;
  }

  {
    std::lock_guard<std::mutex> lock(file->reader_mu_);
    file->reader_.emplace(std::move(r));
  }
  DECIBEL_ASSIGN_OR_RETURN(RandomWriteFile w, RandomWriteFile::Open(path));
  file->writer_.emplace(std::move(w));
  return file;
}

Result<std::unique_ptr<HeapFile>> HeapFile::OpenAtCheckpoint(
    const std::string& path, const Options& options, BufferPool* pool,
    const CheckpointState& state) {
  uint64_t page_size = 0;
  uint32_t record_size = 0;
  {
    DECIBEL_ASSIGN_OR_RETURN(RandomAccessFile r, RandomAccessFile::Open(path));
    DECIBEL_RETURN_NOT_OK(ParseHeader(r, path, &page_size, &record_size));

    const uint64_t records_per_page =
        (page_size - kPageHeaderSize) / record_size;
    const uint64_t sealed = state.num_records / records_per_page;
    const uint32_t tail_count =
        static_cast<uint32_t>(state.num_records % records_per_page);
    const uint64_t pages = sealed + (tail_count > 0 ? 1 : 0);
    const uint64_t need = kFileHeaderSize + pages * page_size;
    if (r.Size() < need) {
      // Every checkpointed page was written and synced before the
      // checkpoint acknowledged it; a shorter file means the checkpoint
      // metadata does not belong to this file.
      return Status::Corruption("heapfile: " + path + " shorter than its " +
                                "checkpoint (" + std::to_string(r.Size()) +
                                " < " + std::to_string(need) + " bytes)");
    }
    std::string tail;
    if (tail_count > 0) {
      // The tail page may have been rewritten in place (and torn) after
      // the checkpoint. Ignore its on-disk count/CRC; the checkpoint's
      // own CRC over the first tail_count records is the authority.
      DECIBEL_RETURN_NOT_OK(
          r.Read(kFileHeaderSize + sealed * page_size, page_size, &tail));
      const Slice prefix(tail.data() + kPageHeaderSize,
                         static_cast<uint64_t>(tail_count) * record_size);
      if (Crc32(prefix) != state.tail_crc) {
        return Status::Corruption("heapfile: tail page torn past recovery in " +
                                  path);
      }
    }

    // Roll the file back to the checkpoint: drop post-checkpoint pages and
    // rewrite the tail page with a header matching the surviving prefix.
    DECIBEL_ASSIGN_OR_RETURN(RandomWriteFile w, RandomWriteFile::Open(path));
    DECIBEL_RETURN_NOT_OK(w.Truncate(need));
    if (tail_count > 0) {
      std::string page(kPageHeaderSize, '\0');
      const Slice prefix(tail.data() + kPageHeaderSize,
                         static_cast<uint64_t>(tail_count) * record_size);
      EncodeFixed32(page.data(), tail_count);
      EncodeFixed32(page.data() + 4, MaskCrc(Crc32(prefix)));
      page.append(prefix.data(), prefix.size());
      page.resize(page_size, '\0');
      DECIBEL_RETURN_NOT_OK(w.WriteAt(kFileHeaderSize + sealed * page_size,
                                      page));
    }
    DECIBEL_RETURN_NOT_OK(w.Sync());
    DECIBEL_RETURN_NOT_OK(w.Close());
  }
  // The file now satisfies the ordinary Open invariants.
  DECIBEL_ASSIGN_OR_RETURN(std::unique_ptr<HeapFile> file,
                           Open(path, options, pool));
  if (file->num_records() != state.num_records) {
    return Status::Corruption("heapfile: " + path + " recovered " +
                              std::to_string(file->num_records()) +
                              " records, checkpoint expects " +
                              std::to_string(state.num_records));
  }
  return file;
}

Status HeapFile::WriteHeader() {
  std::string header(kFileHeaderSize, '\0');
  EncodeFixed32(header.data(), kMagic);
  EncodeFixed32(header.data() + 4, kFormatVersion);
  EncodeFixed64(header.data() + 8, options_.page_size);
  EncodeFixed32(header.data() + 16, record_size_);
  EncodeFixed32(header.data() + 60, MaskCrc(Crc32(Slice(header.data(), 60))));
  return writer_->WriteAt(0, header);
}

uint64_t HeapFile::PageOffset(uint64_t page_no) const {
  return kFileHeaderSize + page_no * options_.page_size;
}

Result<uint64_t> HeapFile::Append(Slice record) {
  if (sealed_) {
    return Status::InvalidArgument("heapfile: append to sealed file " + path_);
  }
  if (record.size() != record_size_) {
    return Status::InvalidArgument("heapfile: record size mismatch");
  }
  uint64_t index;
  bool page_full = false;
  {
    std::lock_guard<std::mutex> lock(tail_mu_);
    index = num_records_.load();
    tail_.append(record.data(), record.size());
    ++tail_count_;
    tail_dirty_ = true;
    page_full = tail_count_ == records_per_page_;
  }
  num_records_.fetch_add(1);
  if (page_full) {
    DECIBEL_RETURN_NOT_OK(SealTailPage());
  }
  return index;
}

Status HeapFile::SealTailPage() {
  DECIBEL_RETURN_NOT_OK(WriteTailPage());
  std::lock_guard<std::mutex> lock(tail_mu_);
  tail_.clear();
  tail_count_ = 0;
  tail_dirty_ = false;
  ++sealed_pages_;
  return Status::OK();
}

Result<uint64_t> HeapFile::AppendBatch(Slice records, uint64_t count) {
  if (sealed_) {
    return Status::InvalidArgument("heapfile: append to sealed file " + path_);
  }
  if (records.size() != count * static_cast<uint64_t>(record_size_)) {
    return Status::InvalidArgument("heapfile: batch size mismatch");
  }
  const uint64_t first = num_records_.load();
  uint64_t offset = 0;
  uint64_t remaining = count;
  std::string page;  // reused across every full page this batch seals
  while (remaining > 0) {
    // Full pages are built straight from the caller's buffer — no staging
    // through tail_, one page buffer for the whole batch. The page is on
    // disk before sealed_pages_ advances (under tail_mu_, like
    // SealTailPage) and num_records_ advances last, so a concurrent
    // reader never resolves these records to the (empty) tail.
    if (tail_count_ == 0 && remaining >= records_per_page_) {
      const uint64_t payload_bytes = records_per_page_ * record_size_;
      page.resize(kPageHeaderSize);
      EncodeFixed32(page.data(), static_cast<uint32_t>(records_per_page_));
      EncodeFixed32(
          page.data() + 4,
          MaskCrc(Crc32(Slice(records.data() + offset, payload_bytes))));
      page.append(records.data() + offset, payload_bytes);
      page.resize(options_.page_size, '\0');
      DECIBEL_RETURN_NOT_OK(
          writer_->WriteAt(PageOffset(sealed_pages_), page));
      {
        std::lock_guard<std::mutex> lock(tail_mu_);
        ++sealed_pages_;
      }
      num_records_.fetch_add(records_per_page_);
      offset += payload_bytes;
      remaining -= records_per_page_;
      continue;
    }
    uint64_t take;
    bool page_full;
    {
      std::lock_guard<std::mutex> lock(tail_mu_);
      const uint64_t space = records_per_page_ - tail_count_;
      take = std::min(space, remaining);
      tail_.append(records.data() + offset, take * record_size_);
      tail_count_ += static_cast<uint32_t>(take);
      tail_dirty_ = true;
      page_full = tail_count_ == records_per_page_;
    }
    num_records_.fetch_add(take);
    offset += take * record_size_;
    remaining -= take;
    if (page_full) {
      DECIBEL_RETURN_NOT_OK(SealTailPage());
    }
  }
  return first;
}

Status HeapFile::WriteTailPage() {
  std::string page;
  page.reserve(options_.page_size);
  {
    std::lock_guard<std::mutex> lock(tail_mu_);
    page.resize(kPageHeaderSize);
    EncodeFixed32(page.data(), tail_count_);
    EncodeFixed32(page.data() + 4, MaskCrc(Crc32(Slice(tail_))));
    page.append(tail_);
  }
  page.resize(options_.page_size, '\0');
  return writer_->WriteAt(PageOffset(sealed_pages_), page);
}

Status HeapFile::Flush() {
  if (tail_dirty_) {
    DECIBEL_RETURN_NOT_OK(WriteTailPage());
    tail_dirty_ = false;
  }
  return Status::OK();
}

Status HeapFile::Sync() {
  DECIBEL_RETURN_NOT_OK(Flush());
  if (writer_.has_value()) return writer_->Sync();
  // Sealed file whose write handle was released: everything is on disk,
  // so a transient descriptor is enough to make it durable.
  DECIBEL_ASSIGN_OR_RETURN(RandomWriteFile f, RandomWriteFile::Open(path_));
  return f.Sync();
}

HeapFile::CheckpointState HeapFile::GetCheckpointState() const {
  std::lock_guard<std::mutex> lock(tail_mu_);
  CheckpointState s;
  s.num_records = sealed_pages_ * records_per_page_ + tail_count_;
  s.tail_crc = tail_count_ > 0 ? Crc32(Slice(tail_)) : 0;
  return s;
}

Status HeapFile::Seal() {
  DECIBEL_RETURN_NOT_OK(Flush());
  sealed_ = true;
  // Sealed files never append again; holding the write descriptor open
  // would leak one fd per segment under branch churn (the agentic
  // workload forks and retires branches by the thousands). Sync() reopens
  // transiently when a checkpoint needs to make the file durable.
  writer_.reset();
  return Status::OK();
}

Status HeapFile::ReleaseFileHandles() {
  DECIBEL_RETURN_NOT_OK(Seal());
  std::lock_guard<std::mutex> lock(reader_mu_);
  reader_.reset();
  return Status::OK();
}

bool HeapFile::SnapshotTailIfCurrent(uint64_t page_no, std::string* out,
                                     uint32_t* count) const {
  std::lock_guard<std::mutex> lock(tail_mu_);
  if (page_no < sealed_pages_) return false;
  *out = tail_;
  *count = tail_count_;
  return true;
}

Status HeapFile::ReadPageFromDisk(uint64_t page_no, std::string* out) {
  {
    std::lock_guard<std::mutex> lock(reader_mu_);
    if (!reader_.has_value()) {
      // The writer buffers only the tail; sealed pages are on disk already.
      DECIBEL_ASSIGN_OR_RETURN(RandomAccessFile r,
                               RandomAccessFile::Open(path_));
      reader_.emplace(std::move(r));
    }
  }
  DECIBEL_RETURN_NOT_OK(
      reader_->Read(PageOffset(page_no), options_.page_size, out));
  const uint32_t count = DecodeFixed32(out->data());
  if (count > records_per_page_) {
    return Status::Corruption("heapfile: bad page count in " + path_);
  }
  if (options_.verify_checksums) {
    const uint32_t crc = UnmaskCrc(DecodeFixed32(out->data() + 4));
    if (crc != Crc32(Slice(out->data() + kPageHeaderSize,
                           count * record_size_))) {
      return Status::Corruption("heapfile: page " + std::to_string(page_no) +
                                " checksum mismatch in " + path_);
    }
  }
  return Status::OK();
}

Status HeapFile::Get(uint64_t index, std::string* out) {
  if (index >= num_records_.load()) {
    return Status::OutOfRange("heapfile: record " + std::to_string(index) +
                              " out of range in " + path_);
  }
  const uint64_t page_no = index / records_per_page_;
  const uint64_t slot = index % records_per_page_;
  {
    // Decide tail-vs-sealed and read under one lock: a racing writer may
    // seal this very page, and records written through AppendBatch's
    // full-page path never pass through tail_ at all.
    std::lock_guard<std::mutex> lock(tail_mu_);
    if (page_no >= sealed_pages_) {
      if (slot >= tail_count_) {
        return Status::OutOfRange("heapfile: record " +
                                  std::to_string(index) +
                                  " beyond tail in " + path_);
      }
      out->assign(tail_.data() + slot * record_size_, record_size_);
      return Status::OK();
    }
  }
  DECIBEL_ASSIGN_OR_RETURN(PageRef page,
                           pool_->GetPage(file_id_, page_no, this));
  out->assign(page->data() + kPageHeaderSize + slot * record_size_,
              record_size_);
  return Status::OK();
}

Result<HeapFile::PinnedPage> HeapFile::PinPage(uint64_t page_no) {
  PinnedPage out;
  uint32_t count;
  if (SnapshotTailIfCurrent(page_no, &out.tail, &count)) {
    out.payload = out.tail.data();
    out.count = count;
    return out;
  }
  DECIBEL_ASSIGN_OR_RETURN(out.pin,
                           pool_->GetPage(file_id_, page_no, this));
  out.payload = out.pin->data() + kPageHeaderSize;
  out.count = DecodeFixed32(out.pin->data());
  return out;
}

uint64_t HeapFile::SizeBytes() const {
  std::lock_guard<std::mutex> lock(tail_mu_);
  const uint64_t pages = sealed_pages_ + (tail_count_ > 0 ? 1 : 0);
  return kFileHeaderSize + pages * options_.page_size;
}

// ------------------------------------------------------------------ Scanner

HeapFile::Scanner::Scanner(HeapFile* file, uint64_t begin, uint64_t end)
    : file_(file), next_(begin), end_(std::min(end, file->num_records())) {}

bool HeapFile::Scanner::Next(Slice* record, uint64_t* index) {
  if (!status_.ok() || next_ >= end_) return false;
  const uint64_t page_no = next_ / file_->records_per_page_;
  const uint64_t slot = next_ % file_->records_per_page_;

  if (pinned_page_no_ != page_no) {
    // The tail-vs-sealed decision and the tail snapshot happen atomically
    // (a racing writer may seal this very page under us); a tail snapshot
    // stays stable against further concurrent appends.
    uint32_t count;
    if (file_->SnapshotTailIfCurrent(page_no, &tail_copy_, &count)) {
      pinned_.reset();
    } else {
      auto page = file_->pool_->GetPage(file_->file_id_, page_no, file_);
      if (!page.ok()) {
        status_ = page.status();
        return false;
      }
      pinned_ = std::move(page).MoveValueUnsafe();
    }
    pinned_page_no_ = page_no;
  }
  const char* base =
      pinned_ != nullptr
          ? pinned_->data() + kPageHeaderSize + slot * file_->record_size_
          : tail_copy_.data() + slot * file_->record_size_;
  *record = Slice(base, file_->record_size_);
  if (index != nullptr) *index = next_;
  ++next_;
  return true;
}

}  // namespace decibel
