#include "storage/heap_file.h"

#include <algorithm>

#include "common/coding.h"
#include "common/crc32.h"
#include "common/logging.h"
#include "engine/scan_spec.h"

namespace decibel {

namespace {

constexpr uint32_t kMagic = 0x44424846;  // "DBHF"
constexpr uint32_t kFormatVersion = 2;
constexpr uint64_t kFileHeaderSize = 64;
// count u32 | masked crc u32 | format u8 | pad u8*3 | stored_len u32
constexpr uint64_t kPageHeaderSize = 16;
constexpr uint32_t kStatsBlobVersion = 1;

void EncodePageHeader(char* dst, uint32_t count, uint32_t masked_crc,
                      columnar::PageFormat format, uint32_t stored_len) {
  EncodeFixed32(dst, count);
  EncodeFixed32(dst + 4, masked_crc);
  dst[8] = static_cast<char>(format);
  dst[9] = dst[10] = dst[11] = '\0';
  EncodeFixed32(dst + 12, stored_len);
}

Status ParseHeader(const RandomAccessFile& r, const std::string& path,
                   uint64_t* page_size, uint32_t* record_size) {
  if (r.Size() < kFileHeaderSize) {
    return Status::Corruption("heapfile: missing header in " + path);
  }
  std::string header;
  DECIBEL_RETURN_NOT_OK(r.Read(0, kFileHeaderSize, &header));
  if (DecodeFixed32(header.data()) != kMagic) {
    return Status::Corruption("heapfile: bad magic in " + path);
  }
  if (DecodeFixed32(header.data() + 4) != kFormatVersion) {
    return Status::Corruption("heapfile: unsupported version in " + path);
  }
  *page_size = DecodeFixed64(header.data() + 8);
  *record_size = DecodeFixed32(header.data() + 16);
  const uint32_t stored_crc = UnmaskCrc(DecodeFixed32(header.data() + 60));
  if (stored_crc != Crc32(Slice(header.data(), 60))) {
    return Status::Corruption("heapfile: header checksum mismatch in " + path);
  }
  return Status::OK();
}

}  // namespace

std::atomic<uint64_t> HeapFile::next_file_id_{1};

HeapFile::HeapFile(std::string path, uint32_t record_size,
                   const Options& options, BufferPool* pool)
    : path_(std::move(path)),
      record_size_(record_size),
      options_(options),
      pool_(pool),
      file_id_(next_file_id_.fetch_add(1)) {
  records_per_page_ = (options_.page_size - kPageHeaderSize) / record_size_;
  DECIBEL_CHECK(records_per_page_ > 0);
}

HeapFile::~HeapFile() {
  if (writer_.has_value() && tail_dirty_) {
    WriteTailPage().ok();  // best effort
  }
  if (pool_ != nullptr) pool_->EvictFile(file_id_);
}

Result<std::unique_ptr<HeapFile>> HeapFile::Create(const std::string& path,
                                                   uint32_t record_size,
                                                   const Options& options,
                                                   BufferPool* pool) {
  if (record_size == 0 ||
      record_size > options.page_size - kPageHeaderSize) {
    return Status::InvalidArgument("heapfile: record size " +
                                   std::to_string(record_size) +
                                   " does not fit a page");
  }
  if (FileExists(path)) {
    // Stale leftover from a crash after the last checkpoint: the caller's
    // metadata has no record of this file, so its contents were never
    // acknowledged. Remove it and start fresh (WAL replay refills it).
    DECIBEL_RETURN_NOT_OK(RemoveFile(path));
  }
  std::unique_ptr<HeapFile> file(
      new HeapFile(path, record_size, options, pool));
  DECIBEL_ASSIGN_OR_RETURN(RandomWriteFile w, RandomWriteFile::Open(path));
  file->writer_.emplace(std::move(w));
  DECIBEL_RETURN_NOT_OK(file->WriteHeader());
  return file;
}

Result<std::unique_ptr<HeapFile>> HeapFile::Open(const std::string& path,
                                                 const Options& options,
                                                 BufferPool* pool) {
  DECIBEL_ASSIGN_OR_RETURN(RandomAccessFile r, RandomAccessFile::Open(path));
  uint64_t page_size = 0;
  uint32_t record_size = 0;
  DECIBEL_RETURN_NOT_OK(ParseHeader(r, path, &page_size, &record_size));
  // Stats walk records with the schema's offsets; a caller schema whose
  // record width disagrees with the file's would misread every page.
  if (options.schema != nullptr &&
      options.schema->record_size() != record_size) {
    return Status::InvalidArgument(
        "heapfile: schema record size " +
        std::to_string(options.schema->record_size()) +
        " does not match file record size " + std::to_string(record_size) +
        " in " + path);
  }

  Options opts = options;
  opts.page_size = page_size;
  std::unique_ptr<HeapFile> file(
      new HeapFile(path, record_size, opts, pool));

  const uint64_t data_bytes = r.Size() - kFileHeaderSize;
  if (data_bytes % page_size != 0) {
    return Status::Corruption("heapfile: truncated page in " + path);
  }
  const uint64_t num_pages = data_bytes / page_size;

  if (num_pages > 0) {
    // Inspect the last page: partial -> becomes the in-memory tail.
    std::string last;
    DECIBEL_RETURN_NOT_OK(
        r.Read(kFileHeaderSize + (num_pages - 1) * page_size, page_size,
               &last));
    const uint32_t count = DecodeFixed32(last.data());
    if (count > file->records_per_page_) {
      return Status::Corruption("heapfile: bad page count in " + path);
    }
    const auto format_byte = static_cast<uint8_t>(last[8]);
    if (format_byte > static_cast<uint8_t>(columnar::PageFormat::kLz)) {
      return Status::Corruption("heapfile: bad page format in " + path);
    }
    const auto format = static_cast<columnar::PageFormat>(format_byte);
    const uint32_t stored_len = DecodeFixed32(last.data() + 12);
    if (stored_len > page_size - kPageHeaderSize ||
        (format == columnar::PageFormat::kRaw &&
         stored_len != count * record_size)) {
      return Status::Corruption("heapfile: bad page length in " + path);
    }
    const uint32_t crc = UnmaskCrc(DecodeFixed32(last.data() + 4));
    if (crc != Crc32(Slice(last.data() + kPageHeaderSize, stored_len))) {
      return Status::Corruption("heapfile: tail page checksum in " + path);
    }
    if (count < file->records_per_page_) {
      if (format != columnar::PageFormat::kRaw) {
        // Partial pages are the rewritten-in-place tail; only full-batch
        // sealed pages compress. A compressed partial page is corruption.
        return Status::Corruption("heapfile: compressed partial page in " +
                                  path);
      }
      file->sealed_pages_ = num_pages - 1;
      file->tail_.assign(last.data() + kPageHeaderSize,
                         count * record_size);
      file->tail_count_ = count;
    } else {
      file->sealed_pages_ = num_pages;
    }
    file->num_records_ =
        file->sealed_pages_ * file->records_per_page_ + file->tail_count_;
  }

  {
    std::lock_guard<std::mutex> lock(file->reader_mu_);
    file->reader_.emplace(std::move(r));
  }
  DECIBEL_ASSIGN_OR_RETURN(RandomWriteFile w, RandomWriteFile::Open(path));
  file->writer_.emplace(std::move(w));
  return file;
}

Result<std::unique_ptr<HeapFile>> HeapFile::OpenAtCheckpoint(
    const std::string& path, const Options& options, BufferPool* pool,
    const CheckpointState& state) {
  uint64_t page_size = 0;
  uint32_t record_size = 0;
  {
    DECIBEL_ASSIGN_OR_RETURN(RandomAccessFile r, RandomAccessFile::Open(path));
    DECIBEL_RETURN_NOT_OK(ParseHeader(r, path, &page_size, &record_size));

    const uint64_t records_per_page =
        (page_size - kPageHeaderSize) / record_size;
    const uint64_t sealed = state.num_records / records_per_page;
    const uint32_t tail_count =
        static_cast<uint32_t>(state.num_records % records_per_page);
    const uint64_t pages = sealed + (tail_count > 0 ? 1 : 0);
    const uint64_t need = kFileHeaderSize + pages * page_size;
    if (r.Size() < need) {
      // Every checkpointed page was written and synced before the
      // checkpoint acknowledged it; a shorter file means the checkpoint
      // metadata does not belong to this file.
      return Status::Corruption("heapfile: " + path + " shorter than its " +
                                "checkpoint (" + std::to_string(r.Size()) +
                                " < " + std::to_string(need) + " bytes)");
    }
    std::string tail;
    if (tail_count > 0) {
      // The tail page may have been rewritten in place (and torn) after
      // the checkpoint. Ignore its on-disk count/CRC; the checkpoint's
      // own CRC over the first tail_count records is the authority.
      DECIBEL_RETURN_NOT_OK(
          r.Read(kFileHeaderSize + sealed * page_size, page_size, &tail));
      const Slice prefix(tail.data() + kPageHeaderSize,
                         static_cast<uint64_t>(tail_count) * record_size);
      if (Crc32(prefix) != state.tail_crc) {
        return Status::Corruption("heapfile: tail page torn past recovery in " +
                                  path);
      }
    }

    // Roll the file back to the checkpoint: drop post-checkpoint pages and
    // rewrite the tail page with a header matching the surviving prefix.
    DECIBEL_ASSIGN_OR_RETURN(RandomWriteFile w, RandomWriteFile::Open(path));
    DECIBEL_RETURN_NOT_OK(w.Truncate(need));
    if (tail_count > 0) {
      std::string page(kPageHeaderSize, '\0');
      const Slice prefix(tail.data() + kPageHeaderSize,
                         static_cast<uint64_t>(tail_count) * record_size);
      EncodePageHeader(page.data(), tail_count, MaskCrc(Crc32(prefix)),
                       columnar::PageFormat::kRaw,
                       static_cast<uint32_t>(prefix.size()));
      page.append(prefix.data(), prefix.size());
      page.resize(page_size, '\0');
      DECIBEL_RETURN_NOT_OK(w.WriteAt(kFileHeaderSize + sealed * page_size,
                                      page));
    }
    DECIBEL_RETURN_NOT_OK(w.Sync());
    DECIBEL_RETURN_NOT_OK(w.Close());
  }
  // The file now satisfies the ordinary Open invariants.
  DECIBEL_ASSIGN_OR_RETURN(std::unique_ptr<HeapFile> file,
                           Open(path, options, pool));
  if (file->num_records() != state.num_records) {
    return Status::Corruption("heapfile: " + path + " recovered " +
                              std::to_string(file->num_records()) +
                              " records, checkpoint expects " +
                              std::to_string(state.num_records));
  }
  return file;
}

Status HeapFile::WriteHeader() {
  std::string header(kFileHeaderSize, '\0');
  EncodeFixed32(header.data(), kMagic);
  EncodeFixed32(header.data() + 4, kFormatVersion);
  EncodeFixed64(header.data() + 8, options_.page_size);
  EncodeFixed32(header.data() + 16, record_size_);
  EncodeFixed32(header.data() + 60, MaskCrc(Crc32(Slice(header.data(), 60))));
  return writer_->WriteAt(0, header);
}

uint64_t HeapFile::PageOffset(uint64_t page_no) const {
  return kFileHeaderSize + page_no * options_.page_size;
}

Result<uint64_t> HeapFile::Append(Slice record) {
  if (sealed_) {
    return Status::InvalidArgument("heapfile: append to sealed file " + path_);
  }
  if (record.size() != record_size_) {
    return Status::InvalidArgument("heapfile: record size mismatch");
  }
  uint64_t index;
  bool page_full = false;
  {
    std::lock_guard<std::mutex> lock(tail_mu_);
    index = num_records_.load();
    tail_.append(record.data(), record.size());
    ++tail_count_;
    tail_dirty_ = true;
    page_full = tail_count_ == records_per_page_;
  }
  FoldTailRecords(record.data(), 1);
  num_records_.fetch_add(1);
  if (page_full) {
    DECIBEL_RETURN_NOT_OK(SealTailPage());
  }
  return index;
}

void HeapFile::FoldTailRecords(const char* records, uint64_t count) {
  if (!stats_enabled()) return;
  std::lock_guard<std::mutex> lock(stats_mu_);
  tail_zone_.UpdateBatch(*options_.schema, records, count);
  file_zone_.UpdateBatch(*options_.schema, records, count);
}

Status HeapFile::SealTailPage() {
  // Pages sealed from the tail stay kRaw: the write below must preserve
  // the byte prefix a checkpoint may have CRC'd (see OpenAtCheckpoint).
  DECIBEL_RETURN_NOT_OK(WriteTailPage());
  if (stats_enabled()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    PageStats ps;
    ps.zone = std::move(tail_zone_);
    ps.format = columnar::PageFormat::kRaw;
    ps.stored_bytes =
        static_cast<uint32_t>(records_per_page_ * record_size_);
    page_stats_.push_back(std::move(ps));
    tail_zone_ = columnar::ZoneMap(options_.schema->num_columns());
  }
  std::lock_guard<std::mutex> lock(tail_mu_);
  tail_.clear();
  tail_count_ = 0;
  tail_dirty_ = false;
  ++sealed_pages_;
  return Status::OK();
}

Result<uint64_t> HeapFile::AppendBatch(Slice records, uint64_t count) {
  if (sealed_) {
    return Status::InvalidArgument("heapfile: append to sealed file " + path_);
  }
  if (records.size() != count * static_cast<uint64_t>(record_size_)) {
    return Status::InvalidArgument("heapfile: batch size mismatch");
  }
  const uint64_t first = num_records_.load();
  uint64_t offset = 0;
  uint64_t remaining = count;
  std::string page;  // reused across every full page this batch seals
  while (remaining > 0) {
    // Full pages are built straight from the caller's buffer — no staging
    // through tail_, one page buffer for the whole batch. The page is on
    // disk before sealed_pages_ advances (under tail_mu_, like
    // SealTailPage) and num_records_ advances last, so a concurrent
    // reader never resolves these records to the (empty) tail. This is
    // also the only path that compresses: the slot it writes is past
    // every record any checkpoint has referenced, so rewriting semantics
    // never apply to it.
    if (tail_count_ == 0 && remaining >= records_per_page_) {
      const uint64_t payload_bytes = records_per_page_ * record_size_;
      const char* payload = records.data() + offset;

      columnar::ZoneMap page_zone;
      if (stats_enabled()) {
        page_zone = columnar::ZoneMap(options_.schema->num_columns());
        page_zone.UpdateBatch(*options_.schema, payload, records_per_page_);
      }
      auto format = columnar::PageFormat::kRaw;
      std::string encoded;
      if (options_.compress_pages && stats_enabled()) {
        format = columnar::EncodePage(
            *options_.schema, payload,
            static_cast<uint32_t>(records_per_page_), &encoded);
        if (format != columnar::PageFormat::kRaw &&
            encoded.size() > options_.page_size - kPageHeaderSize) {
          format = columnar::PageFormat::kRaw;  // never outgrow the slot
        }
      }
      const Slice stored = format == columnar::PageFormat::kRaw
                               ? Slice(payload, payload_bytes)
                               : Slice(encoded);
      page.resize(kPageHeaderSize);
      EncodePageHeader(page.data(), static_cast<uint32_t>(records_per_page_),
                       MaskCrc(Crc32(stored)), format,
                       static_cast<uint32_t>(stored.size()));
      page.append(stored.data(), stored.size());
      page.resize(options_.page_size, '\0');
      DECIBEL_RETURN_NOT_OK(
          writer_->WriteAt(PageOffset(sealed_pages_), page));
      if (stats_enabled()) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        PageStats ps;
        ps.zone = std::move(page_zone);
        ps.format = format;
        ps.stored_bytes = static_cast<uint32_t>(stored.size());
        file_zone_.Merge(ps.zone);
        page_stats_.push_back(std::move(ps));
      }
      {
        std::lock_guard<std::mutex> lock(tail_mu_);
        ++sealed_pages_;
      }
      num_records_.fetch_add(records_per_page_);
      offset += payload_bytes;
      remaining -= records_per_page_;
      continue;
    }
    uint64_t take;
    bool page_full;
    {
      std::lock_guard<std::mutex> lock(tail_mu_);
      const uint64_t space = records_per_page_ - tail_count_;
      take = std::min(space, remaining);
      tail_.append(records.data() + offset, take * record_size_);
      tail_count_ += static_cast<uint32_t>(take);
      tail_dirty_ = true;
      page_full = tail_count_ == records_per_page_;
    }
    FoldTailRecords(records.data() + offset, take);
    num_records_.fetch_add(take);
    offset += take * record_size_;
    remaining -= take;
    if (page_full) {
      DECIBEL_RETURN_NOT_OK(SealTailPage());
    }
  }
  return first;
}

Status HeapFile::WriteTailPage() {
  std::string page;
  page.reserve(options_.page_size);
  {
    std::lock_guard<std::mutex> lock(tail_mu_);
    page.resize(kPageHeaderSize);
    EncodePageHeader(page.data(), tail_count_, MaskCrc(Crc32(Slice(tail_))),
                     columnar::PageFormat::kRaw,
                     static_cast<uint32_t>(tail_.size()));
    page.append(tail_);
  }
  page.resize(options_.page_size, '\0');
  return writer_->WriteAt(PageOffset(sealed_pages_), page);
}

Status HeapFile::Flush() {
  if (tail_dirty_) {
    DECIBEL_RETURN_NOT_OK(WriteTailPage());
    tail_dirty_ = false;
  }
  return Status::OK();
}

Status HeapFile::Sync() {
  DECIBEL_RETURN_NOT_OK(Flush());
  if (writer_.has_value()) return writer_->Sync();
  // Sealed file whose write handle was released: everything is on disk,
  // so a transient descriptor is enough to make it durable.
  DECIBEL_ASSIGN_OR_RETURN(RandomWriteFile f, RandomWriteFile::Open(path_));
  return f.Sync();
}

HeapFile::CheckpointState HeapFile::GetCheckpointState() const {
  std::lock_guard<std::mutex> lock(tail_mu_);
  CheckpointState s;
  s.num_records = sealed_pages_ * records_per_page_ + tail_count_;
  s.tail_crc = tail_count_ > 0 ? Crc32(Slice(tail_)) : 0;
  return s;
}

Status HeapFile::Seal() {
  DECIBEL_RETURN_NOT_OK(Flush());
  sealed_ = true;
  // Sealed files never append again; holding the write descriptor open
  // would leak one fd per segment under branch churn (the agentic
  // workload forks and retires branches by the thousands). Sync() reopens
  // transiently when a checkpoint needs to make the file durable.
  writer_.reset();
  return Status::OK();
}

Status HeapFile::ReleaseFileHandles() {
  DECIBEL_RETURN_NOT_OK(Seal());
  std::lock_guard<std::mutex> lock(reader_mu_);
  reader_.reset();
  return Status::OK();
}

bool HeapFile::SnapshotTailIfCurrent(uint64_t page_no, std::string* out,
                                     uint32_t* count) const {
  std::lock_guard<std::mutex> lock(tail_mu_);
  if (page_no < sealed_pages_) return false;
  *out = tail_;
  *count = tail_count_;
  return true;
}

Status HeapFile::ReadStoredPage(uint64_t page_no, std::string* stored,
                                PageHeader* header) const {
  {
    std::lock_guard<std::mutex> lock(reader_mu_);
    if (!reader_.has_value()) {
      // The writer buffers only the tail; sealed pages are on disk already.
      DECIBEL_ASSIGN_OR_RETURN(RandomAccessFile r,
                               RandomAccessFile::Open(path_));
      reader_.emplace(std::move(r));
    }
  }
  std::string head;
  DECIBEL_RETURN_NOT_OK(
      reader_->Read(PageOffset(page_no), kPageHeaderSize, &head));
  header->count = DecodeFixed32(head.data());
  if (header->count > records_per_page_) {
    return Status::Corruption("heapfile: bad page count in " + path_);
  }
  const auto format_byte = static_cast<uint8_t>(head[8]);
  if (format_byte > static_cast<uint8_t>(columnar::PageFormat::kLz)) {
    return Status::Corruption("heapfile: bad page format in " + path_);
  }
  header->format = static_cast<columnar::PageFormat>(format_byte);
  header->stored_len = DecodeFixed32(head.data() + 12);
  if (header->stored_len > options_.page_size - kPageHeaderSize ||
      (header->format == columnar::PageFormat::kRaw &&
       header->stored_len != header->count * record_size_)) {
    return Status::Corruption("heapfile: bad page length in " + path_);
  }
  // Read only the stored bytes — a compressed page costs its compressed
  // size in I/O, not a full page slot.
  DECIBEL_RETURN_NOT_OK(reader_->Read(PageOffset(page_no) + kPageHeaderSize,
                                      header->stored_len, stored));
  if (options_.verify_checksums) {
    const uint32_t crc = UnmaskCrc(DecodeFixed32(head.data() + 4));
    if (crc != Crc32(Slice(*stored))) {
      return Status::Corruption("heapfile: page " + std::to_string(page_no) +
                                " checksum mismatch in " + path_);
    }
  }
  return Status::OK();
}

Status HeapFile::ReadPageFromDisk(uint64_t page_no, std::string* out) {
  PageHeader header;
  std::string stored;
  DECIBEL_RETURN_NOT_OK(ReadStoredPage(page_no, &stored, &header));
  // Normalize to a decoded page: the v2 header (format and stored_len
  // kept for I/O accounting) followed by the raw row-major payload at
  // the usual offset, padded to the page size. Cached pages are always
  // in this shape, so every consumer's payload arithmetic is unchanged.
  out->clear();
  out->reserve(options_.page_size);
  out->resize(kPageHeaderSize, '\0');
  EncodePageHeader(out->data(), header.count, 0, header.format,
                   header.stored_len);
  if (header.format == columnar::PageFormat::kRaw) {
    out->append(stored);
  } else {
    if (!stats_enabled()) {
      return Status::Corruption(
          "heapfile: compressed page without schema in " + path_);
    }
    DECIBEL_RETURN_NOT_OK(columnar::DecodePage(*options_.schema,
                                               header.format, Slice(stored),
                                               header.count, out));
  }
  out->resize(options_.page_size, '\0');
  return Status::OK();
}

Status HeapFile::Get(uint64_t index, std::string* out) {
  if (index >= num_records_.load()) {
    return Status::OutOfRange("heapfile: record " + std::to_string(index) +
                              " out of range in " + path_);
  }
  const uint64_t page_no = index / records_per_page_;
  const uint64_t slot = index % records_per_page_;
  {
    // Decide tail-vs-sealed and read under one lock: a racing writer may
    // seal this very page, and records written through AppendBatch's
    // full-page path never pass through tail_ at all.
    std::lock_guard<std::mutex> lock(tail_mu_);
    if (page_no >= sealed_pages_) {
      if (slot >= tail_count_) {
        return Status::OutOfRange("heapfile: record " +
                                  std::to_string(index) +
                                  " beyond tail in " + path_);
      }
      out->assign(tail_.data() + slot * record_size_, record_size_);
      return Status::OK();
    }
  }
  DECIBEL_ASSIGN_OR_RETURN(PageRef page,
                           pool_->GetPage(file_id_, page_no, this));
  out->assign(page->data() + kPageHeaderSize + slot * record_size_,
              record_size_);
  return Status::OK();
}

Result<HeapFile::PinnedPage> HeapFile::PinPage(uint64_t page_no) {
  PinnedPage out;
  uint32_t count;
  if (SnapshotTailIfCurrent(page_no, &out.tail, &count)) {
    out.payload = out.tail.data();
    out.count = count;
    out.io_bytes = out.tail.size();
    return out;
  }
  DECIBEL_ASSIGN_OR_RETURN(out.pin,
                           pool_->GetPage(file_id_, page_no, this));
  out.payload = out.pin->data() + kPageHeaderSize;
  out.count = DecodeFixed32(out.pin->data());
  out.io_bytes = kPageHeaderSize + DecodeFixed32(out.pin->data() + 12);
  return out;
}

Result<HeapFile::PinnedPage> HeapFile::PinPageCounted(
    uint64_t page_no, const PreparedPredicate* predicate, bool* no_matches) {
  *no_matches = false;
  PinnedPage out;
  uint32_t count;
  if (SnapshotTailIfCurrent(page_no, &out.tail, &count)) {
    out.payload = out.tail.data();
    out.count = count;
    out.io_bytes = out.tail.size();
    return out;
  }
  if (PageRef cached = pool_->Peek(file_id_, page_no)) {
    out.pin = std::move(cached);
    out.payload = out.pin->data() + kPageHeaderSize;
    out.count = DecodeFixed32(out.pin->data());
    out.io_bytes = kPageHeaderSize + DecodeFixed32(out.pin->data() + 12);
    return out;
  }
  PageHeader header;
  std::string stored;
  DECIBEL_RETURN_NOT_OK(ReadStoredPage(page_no, &stored, &header));
  out.io_bytes = kPageHeaderSize + header.stored_len;
  if (predicate != nullptr && stats_enabled() &&
      header.format == columnar::PageFormat::kColumnar &&
      !predicate->raw_comparisons().empty()) {
    // Try to prove the page empty of matches from the compressed strips:
    // one comparison per RLE run / dictionary code, no decode, and the
    // buffer pool stays unpolluted by a page nobody will read.
    bool exact = false;
    const uint64_t matches = columnar::CountMatchesCompressed(
        *options_.schema, header.format, Slice(stored), header.count,
        predicate->raw_comparisons(), &exact);
    if (exact && matches == 0) {
      *no_matches = true;
      out.count = header.count;
      return out;  // payload-less: caller must skip, not read
    }
  }
  auto page = std::make_shared<std::string>();
  page->reserve(options_.page_size);
  page->resize(kPageHeaderSize, '\0');
  EncodePageHeader(page->data(), header.count, 0, header.format,
                   header.stored_len);
  if (header.format == columnar::PageFormat::kRaw) {
    page->append(stored);
  } else {
    if (!stats_enabled()) {
      return Status::Corruption(
          "heapfile: compressed page without schema in " + path_);
    }
    DECIBEL_RETURN_NOT_OK(columnar::DecodePage(*options_.schema,
                                               header.format, Slice(stored),
                                               header.count, page.get()));
  }
  page->resize(options_.page_size, '\0');
  PageRef ref = std::move(page);
  pool_->Insert(file_id_, page_no, ref);
  out.pin = std::move(ref);
  out.payload = out.pin->data() + kPageHeaderSize;
  out.count = header.count;
  return out;
}

uint64_t HeapFile::SizeBytes() const {
  std::lock_guard<std::mutex> lock(tail_mu_);
  const uint64_t pages = sealed_pages_ + (tail_count_ > 0 ? 1 : 0);
  return kFileHeaderSize + pages * options_.page_size;
}

// ---------------------------------------------------------------- zone maps

bool HeapFile::PageMayMatch(uint64_t page_no,
                            const PreparedPredicate& predicate) const {
  if (!stats_enabled()) return true;
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (page_no < page_stats_.size()) {
    return predicate.MayMatch(page_stats_[page_no].zone);
  }
  return predicate.MayMatch(tail_zone_);
}

bool HeapFile::FileMayMatch(const PreparedPredicate& predicate) const {
  if (!stats_enabled()) return true;
  std::lock_guard<std::mutex> lock(stats_mu_);
  return predicate.MayMatch(file_zone_);
}

void HeapFile::SnapshotPageStats(std::vector<PageStats>* pages,
                                 columnar::ZoneMap* tail_zone) const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  *pages = page_stats_;
  *tail_zone = tail_zone_;
}

columnar::ZoneMap HeapFile::FileZone() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return file_zone_;
}

void HeapFile::EncodeStats(std::string* dst) const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  PutVarint32(dst, kStatsBlobVersion);
  PutVarint64(dst, page_stats_.size());
  for (const PageStats& ps : page_stats_) {
    dst->push_back(static_cast<char>(ps.format));
    PutVarint32(dst, ps.stored_bytes);
    ps.zone.EncodeTo(dst);
  }
}

Status HeapFile::LoadStats(Slice input) {
  uint32_t version;
  if (!GetVarint32(&input, &version) || version != kStatsBlobVersion) {
    return Status::Corruption("heapfile: bad stats blob in " + path_);
  }
  uint64_t n;
  if (!GetVarint64(&input, &n)) {
    return Status::Corruption("heapfile: bad stats blob in " + path_);
  }
  uint64_t sealed;
  {
    std::lock_guard<std::mutex> lock(tail_mu_);
    sealed = sealed_pages_;
  }
  std::vector<PageStats> loaded;
  loaded.reserve(std::min(n, sealed));
  for (uint64_t i = 0; i < n; ++i) {
    if (input.empty()) {
      return Status::Corruption("heapfile: truncated stats blob in " + path_);
    }
    const auto format_byte = static_cast<uint8_t>(input[0]);
    if (format_byte > static_cast<uint8_t>(columnar::PageFormat::kLz)) {
      return Status::Corruption("heapfile: bad stats format in " + path_);
    }
    input.RemovePrefix(1);
    PageStats ps;
    ps.format = static_cast<columnar::PageFormat>(format_byte);
    if (!GetVarint32(&input, &ps.stored_bytes)) {
      return Status::Corruption("heapfile: truncated stats blob in " + path_);
    }
    DECIBEL_ASSIGN_OR_RETURN(ps.zone, columnar::ZoneMap::DecodeFrom(&input));
    // Entries past the current sealed range describe pages a recovery
    // rolled back; EnsureStats would recompute them from thin air, so
    // drop them here.
    if (i < sealed) loaded.push_back(std::move(ps));
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  page_stats_ = std::move(loaded);
  return Status::OK();
}

Status HeapFile::EnsureStats() {
  if (!stats_enabled()) return Status::OK();
  const Schema& schema = *options_.schema;
  uint64_t sealed;
  {
    std::lock_guard<std::mutex> lock(tail_mu_);
    sealed = sealed_pages_;
  }
  uint64_t have;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    have = page_stats_.size();
  }
  // Rebuild stats for sealed pages the persisted blob didn't cover (an
  // un-checkpointed suffix, or a file opened without any blob at all).
  for (uint64_t page_no = have; page_no < sealed; ++page_no) {
    DECIBEL_ASSIGN_OR_RETURN(PinnedPage page, PinPage(page_no));
    // A page claiming more records than fit under this schema is either
    // a file written with a different record width or a corrupt header;
    // walking it would read past the payload.
    if (page.count > records_per_page_) {
      return Status::Corruption(
          "heapfile: page record count exceeds schema capacity in " + path_);
    }
    PageStats ps;
    ps.zone = columnar::ZoneMap(schema.num_columns());
    ps.zone.UpdateBatch(schema, page.payload, page.count);
    // Normalized pages carry the on-disk format/stored_len through their
    // header even after decoding.
    ps.format = static_cast<columnar::PageFormat>(
        static_cast<uint8_t>((*page.pin)[8]));
    ps.stored_bytes = DecodeFixed32(page.pin->data() + 12);
    std::lock_guard<std::mutex> lock(stats_mu_);
    page_stats_.push_back(std::move(ps));
  }
  // The tail zone always rebuilds from the live tail; the file zone is
  // the union of everything.
  std::lock_guard<std::mutex> tail_lock(tail_mu_);
  std::lock_guard<std::mutex> lock(stats_mu_);
  tail_zone_ = columnar::ZoneMap(schema.num_columns());
  tail_zone_.UpdateBatch(schema, tail_.data(), tail_count_);
  file_zone_ = columnar::ZoneMap(schema.num_columns());
  for (const PageStats& ps : page_stats_) file_zone_.Merge(ps.zone);
  file_zone_.Merge(tail_zone_);
  return Status::OK();
}

// ------------------------------------------------------------------ Scanner

HeapFile::Scanner::Scanner(HeapFile* file, uint64_t begin, uint64_t end)
    : file_(file), next_(begin), end_(std::min(end, file->num_records())) {}

bool HeapFile::Scanner::Next(Slice* record, uint64_t* index) {
  if (!status_.ok() || next_ >= end_) return false;
  const uint64_t page_no = next_ / file_->records_per_page_;
  const uint64_t slot = next_ % file_->records_per_page_;

  if (pinned_page_no_ != page_no) {
    // The tail-vs-sealed decision and the tail snapshot happen atomically
    // (a racing writer may seal this very page under us); a tail snapshot
    // stays stable against further concurrent appends.
    uint32_t count;
    if (file_->SnapshotTailIfCurrent(page_no, &tail_copy_, &count)) {
      pinned_.reset();
    } else {
      auto page = file_->pool_->GetPage(file_->file_id_, page_no, file_);
      if (!page.ok()) {
        status_ = page.status();
        return false;
      }
      pinned_ = std::move(page).MoveValueUnsafe();
    }
    pinned_page_no_ = page_no;
  }
  const char* base =
      pinned_ != nullptr
          ? pinned_->data() + kPageHeaderSize + slot * file_->record_size_
          : tail_copy_.data() + slot * file_->record_size_;
  *record = Slice(base, file_->record_size_);
  if (index != nullptr) *index = next_;
  ++next_;
  return true;
}

}  // namespace decibel
