#include "common/hash.h"

namespace decibel {

uint64_t Fnv1a64(Slice data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < data.size(); ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace decibel
