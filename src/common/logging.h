#ifndef DECIBEL_COMMON_LOGGING_H_
#define DECIBEL_COMMON_LOGGING_H_

/// \file logging.h
/// Internal-invariant checking. DCHECKs document programmer contracts and
/// compile out of release builds; user-facing errors always travel through
/// Status, never through aborts.

#include <cstdio>
#include <cstdlib>

#define DECIBEL_CHECK(cond)                                            \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                   \
      std::abort();                                                    \
    }                                                                  \
  } while (0)

#ifndef NDEBUG
#define DECIBEL_DCHECK(cond) DECIBEL_CHECK(cond)
#else
#define DECIBEL_DCHECK(cond) \
  do {                       \
  } while (0)
#endif

#endif  // DECIBEL_COMMON_LOGGING_H_
