#ifndef DECIBEL_COMMON_IO_H_
#define DECIBEL_COMMON_IO_H_

/// \file io.h
/// Thin Status-returning wrappers over POSIX file I/O, plus directory
/// helpers. All Decibel on-disk structures (heap files, segment files,
/// commit histories, the git-like object store) go through this layer so
/// I/O failures surface uniformly.

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace decibel {

/// An append-only file handle with buffered writes.
class WritableFile {
 public:
  ~WritableFile();
  WritableFile(const WritableFile&) = delete;
  WritableFile& operator=(const WritableFile&) = delete;
  WritableFile(WritableFile&& other) noexcept;

  /// Opens \p path for appending, creating it if needed. If \p truncate,
  /// existing contents are discarded.
  static Result<WritableFile> Open(const std::string& path,
                                   bool truncate = false);

  Status Append(Slice data);
  Status Flush();
  Status Sync();
  /// fdatasyncs the descriptor without touching the write buffer. Callers
  /// that Flush() under a lock can persist the flushed bytes off the lock
  /// (the WAL's group-commit leader); any bytes still buffered when this
  /// runs are NOT covered.
  Status SyncData();
  Status Close();

  /// Size including unflushed buffered bytes.
  uint64_t Size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  WritableFile(int fd, std::string path, uint64_t size)
      : fd_(fd), path_(std::move(path)), size_(size) {}
  int fd_ = -1;
  std::string path_;
  uint64_t size_ = 0;
  std::string buffer_;
};

/// A positional-read file handle (pread; safe for concurrent readers).
class RandomAccessFile {
 public:
  ~RandomAccessFile();
  RandomAccessFile(const RandomAccessFile&) = delete;
  RandomAccessFile& operator=(const RandomAccessFile&) = delete;
  RandomAccessFile(RandomAccessFile&& other) noexcept;

  static Result<RandomAccessFile> Open(const std::string& path);

  /// Reads exactly \p n bytes at \p offset into \p scratch. Fails with
  /// IOError on short reads (reading past EOF is a caller bug surfaced as
  /// an error, not silently truncated data).
  Status Read(uint64_t offset, size_t n, std::string* scratch) const;

  uint64_t Size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  RandomAccessFile(int fd, std::string path, uint64_t size)
      : fd_(fd), path_(std::move(path)), size_(size) {}
  int fd_ = -1;
  std::string path_;
  uint64_t size_ = 0;
};

/// A positional-write file handle (pwrite). Heap files use this to rewrite
/// their partial tail page in place while sealed pages stay immutable.
class RandomWriteFile {
 public:
  ~RandomWriteFile();
  RandomWriteFile(const RandomWriteFile&) = delete;
  RandomWriteFile& operator=(const RandomWriteFile&) = delete;
  RandomWriteFile(RandomWriteFile&& other) noexcept;

  /// Opens \p path for positional writes, creating it if needed.
  static Result<RandomWriteFile> Open(const std::string& path);

  /// Writes all of \p data at \p offset.
  Status WriteAt(uint64_t offset, Slice data);
  /// Truncates the file to exactly \p size bytes (grow or shrink).
  Status Truncate(uint64_t size);
  Status Sync();
  Status Close();

  const std::string& path() const { return path_; }

 private:
  RandomWriteFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  int fd_ = -1;
  std::string path_;
};

/// Filesystem helpers. Paths are ordinary POSIX paths.
Status CreateDir(const std::string& path);        ///< mkdir -p semantics.
Status RemoveDirRecursive(const std::string& path);
Status RemoveFile(const std::string& path);
bool FileExists(const std::string& path);
Result<uint64_t> FileSize(const std::string& path);
Result<std::vector<std::string>> ListDir(const std::string& path);
/// Total bytes under \p path (recursive). Missing path -> 0.
uint64_t DirSizeBytes(const std::string& path);

Status WriteStringToFile(const std::string& path, Slice data);
Result<std::string> ReadFileToString(const std::string& path);

/// fsyncs the directory at \p path so entries created or renamed inside
/// it survive a power loss. A file's own fsync does not persist its
/// directory entry; every crash-safe create/rename must be followed by a
/// SyncDir of the parent.
Status SyncDir(const std::string& path);

/// Truncates the file at \p path to exactly \p size bytes.
Status TruncateFile(const std::string& path, uint64_t size);

/// Renames \p from to \p to. If \p sync, fsyncs the destination's parent
/// directory afterwards so the rename is durable.
Status RenameFile(const std::string& from, const std::string& to,
                  bool sync = false);

/// Atomically replaces the contents of \p path: writes \p data to a
/// temporary sibling, then renames it over \p path. Readers see either
/// the old contents or the new, never a torn mix. If \p sync, the data
/// is fsynced before the rename and the parent directory after it, so
/// the replacement also survives power loss.
Status AtomicWriteFile(const std::string& path, Slice data, bool sync = false);

/// Joins two path components with exactly one separator.
std::string JoinPath(const std::string& a, const std::string& b);

/// Everything before the final separator ("." when there is none).
std::string ParentDir(const std::string& path);

}  // namespace decibel

#endif  // DECIBEL_COMMON_IO_H_
