#include "common/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace decibel {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + strerror(errno));
}

Status MakeAddr(const std::string& host, uint16_t port, sockaddr_in* addr) {
  memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 address '" + host + "'");
  }
  return Status::OK();
}

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> Socket::Listen(const std::string& host, uint16_t port,
                              int backlog) {
  sockaddr_in addr;
  DECIBEL_RETURN_NOT_OK(MakeAddr(host, port, &addr));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd, backlog) != 0) return Errno("listen");
  return sock;
}

Result<Socket> Socket::Connect(const std::string& host, uint16_t port) {
  sockaddr_in addr;
  DECIBEL_RETURN_NOT_OK(MakeAddr(host, port, &addr));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("connect " + host + ":" + std::to_string(port));
  }
  SetNoDelay(fd);
  return sock;
}

Result<Socket> Socket::Accept() {
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Aborted("no pending connection");
    }
    return Errno("accept");
  }
  Socket sock(fd);
  SetNoDelay(fd);
  return sock;
}

Status Socket::SendAll(Slice data, int timeout_ms) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Non-blocking socket with a full send buffer: wait for writability
      // rather than spinning, but never forever unless asked to.
      pollfd pfd;
      pfd.fd = fd_;
      pfd.events = POLLOUT;
      pfd.revents = 0;
      const int r = ::poll(&pfd, 1, timeout_ms);
      if (r < 0 && errno != EINTR) return Errno("poll(POLLOUT)");
      if (r == 0) return Status::IOError("send timed out (slow peer)");
      continue;
    }
    return Errno("send");
  }
  return Status::OK();
}

Result<size_t> Socket::Recv(char* buf, size_t n, bool* would_block) {
  if (would_block != nullptr) *would_block = false;
  for (;;) {
    const ssize_t r = ::recv(fd_, buf, n, 0);
    if (r >= 0) return static_cast<size_t>(r);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (would_block != nullptr) {
        *would_block = true;
        return static_cast<size_t>(0);
      }
      return Status::IOError("recv timed out");
    }
    return Errno("recv");
  }
}

Status Socket::SetNonBlocking(bool on) {
  const int flags = fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (fcntl(fd_, F_SETFL, want) != 0) return Errno("fcntl(F_SETFL)");
  return Status::OK();
}

Status Socket::SetRecvTimeout(int timeout_ms) {
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_RCVTIMEO)");
  }
  return Status::OK();
}

Result<uint16_t> Socket::local_port() const {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

}  // namespace decibel
