#include "common/status.h"

namespace decibel {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kConflict:
      return "Conflict";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnknown:
      return "Unknown";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code());
  result += ": ";
  result += state_->msg;
  return result;
}

}  // namespace decibel
