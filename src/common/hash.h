#ifndef DECIBEL_COMMON_HASH_H_
#define DECIBEL_COMMON_HASH_H_

/// \file hash.h
/// Non-cryptographic hashing used by hash joins, primary-key indexes and
/// the git-like object store's delta index.

#include <cstdint>

#include "common/slice.h"

namespace decibel {

/// 64-bit FNV-1a over a byte range. Stable across platforms/runs, so safe
/// to persist.
uint64_t Fnv1a64(Slice data);

/// xxHash64-style avalanche mix of a single 64-bit value. Used for integer
/// keys (primary keys) where byte-stream hashing is overkill.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Combines two hashes (boost::hash_combine flavoured, 64-bit).
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

}  // namespace decibel

#endif  // DECIBEL_COMMON_HASH_H_
