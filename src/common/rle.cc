#include "common/rle.h"

#include "common/coding.h"

namespace decibel {
namespace rle {

namespace {
constexpr char kZeroRun = 0x00;
constexpr char kByteRun = 0x01;
constexpr char kLiteral = 0x02;

void FlushLiteral(Slice input, size_t lit_start, size_t lit_end,
                  std::string* output) {
  if (lit_end <= lit_start) return;
  output->push_back(kLiteral);
  PutVarint64(output, lit_end - lit_start);
  output->append(input.data() + lit_start, lit_end - lit_start);
}
}  // namespace

void Encode(Slice input, std::string* output) {
  size_t i = 0;
  size_t lit_start = 0;
  const size_t n = input.size();
  while (i < n) {
    // Measure the run starting at i.
    size_t j = i + 1;
    while (j < n && input[j] == input[i]) ++j;
    const size_t run = j - i;
    if (run >= kMinRun) {
      FlushLiteral(input, lit_start, i, output);
      output->push_back(input[i] == 0 ? kZeroRun : kByteRun);
      PutVarint64(output, run);
      if (input[i] != 0) output->push_back(input[i]);
      i = j;
      lit_start = i;
    } else {
      i = j;
    }
  }
  FlushLiteral(input, lit_start, n, output);
}

namespace {

/// Shared decode loop; Emit(pos, ptr_or_null, byte, len) writes output.
template <typename EmitRun, typename EmitLiteral>
Status DecodeLoop(Slice input, EmitRun&& emit_run,
                  EmitLiteral&& emit_literal) {
  while (!input.empty()) {
    const char tag = input[0];
    input.RemovePrefix(1);
    uint64_t len = 0;
    if (!GetVarint64(&input, &len)) {
      return Status::Corruption("rle: truncated run length");
    }
    switch (tag) {
      case kZeroRun:
        emit_run(static_cast<char>(0), len);
        break;
      case kByteRun: {
        if (input.empty()) return Status::Corruption("rle: truncated run");
        const char b = input[0];
        input.RemovePrefix(1);
        emit_run(b, len);
        break;
      }
      case kLiteral: {
        if (len > input.size()) {
          return Status::Corruption("rle: truncated literal");
        }
        emit_literal(Slice(input.data(), static_cast<size_t>(len)));
        input.RemovePrefix(static_cast<size_t>(len));
        break;
      }
      default:
        return Status::Corruption("rle: bad token tag");
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::string> Decode(Slice input) {
  std::string out;
  Status s = DecodeLoop(
      input, [&](char b, uint64_t len) { out.append(len, b); },
      [&](Slice lit) { out.append(lit.data(), lit.size()); });
  if (!s.ok()) return s;
  return out;
}

Status DecodeXorInto(Slice input, std::string* target) {
  size_t pos = 0;
  Status s = DecodeLoop(
      input,
      [&](char b, uint64_t len) {
        if (b != 0) {
          if (pos + len > target->size()) target->resize(pos + len, '\0');
          for (uint64_t k = 0; k < len; ++k) (*target)[pos + k] ^= b;
        }
        pos += len;
      },
      [&](Slice lit) {
        if (pos + lit.size() > target->size()) {
          target->resize(pos + lit.size(), '\0');
        }
        for (size_t k = 0; k < lit.size(); ++k) (*target)[pos + k] ^= lit[k];
        pos += lit.size();
      });
  return s;
}

}  // namespace rle
}  // namespace decibel
