#ifndef DECIBEL_COMMON_CODING_H_
#define DECIBEL_COMMON_CODING_H_

/// \file coding.h
/// Fixed-width and variable-width integer encoding, little-endian, used by
/// all on-disk formats in Decibel.

#include <cstdint>
#include <cstring>
#include <string>

#include "common/slice.h"

namespace decibel {

inline void EncodeFixed16(char* dst, uint16_t value) {
  memcpy(dst, &value, sizeof(value));
}
inline void EncodeFixed32(char* dst, uint32_t value) {
  memcpy(dst, &value, sizeof(value));
}
inline void EncodeFixed64(char* dst, uint64_t value) {
  memcpy(dst, &value, sizeof(value));
}

inline uint16_t DecodeFixed16(const char* src) {
  uint16_t v;
  memcpy(&v, src, sizeof(v));
  return v;
}
inline uint32_t DecodeFixed32(const char* src) {
  uint32_t v;
  memcpy(&v, src, sizeof(v));
  return v;
}
inline uint64_t DecodeFixed64(const char* src) {
  uint64_t v;
  memcpy(&v, src, sizeof(v));
  return v;
}

inline void PutFixed16(std::string* dst, uint16_t value) {
  char buf[sizeof(value)];
  EncodeFixed16(buf, value);
  dst->append(buf, sizeof(buf));
}
inline void PutFixed32(std::string* dst, uint32_t value) {
  char buf[sizeof(value)];
  EncodeFixed32(buf, value);
  dst->append(buf, sizeof(buf));
}
inline void PutFixed64(std::string* dst, uint64_t value) {
  char buf[sizeof(value)];
  EncodeFixed64(buf, value);
  dst->append(buf, sizeof(buf));
}

/// Appends \p value varint-encoded (LEB128) to \p dst.
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);

/// Appends a varint length prefix followed by the bytes of \p value.
void PutLengthPrefixed(std::string* dst, Slice value);

/// Parses a varint from the front of \p input, advancing it. Returns false
/// on malformed/truncated input.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);

/// Parses a length-prefixed blob from the front of \p input, advancing it.
bool GetLengthPrefixed(Slice* input, Slice* result);

/// Reads a fixed32/64 from the front of \p input, advancing it.
bool GetFixed32(Slice* input, uint32_t* value);
bool GetFixed64(Slice* input, uint64_t* value);

/// ZigZag maps signed to unsigned so small magnitudes varint-encode small.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// Number of bytes PutVarint64 would emit for \p value.
int VarintLength(uint64_t value);

}  // namespace decibel

#endif  // DECIBEL_COMMON_CODING_H_
