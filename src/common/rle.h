#ifndef DECIBEL_COMMON_RLE_H_
#define DECIBEL_COMMON_RLE_H_

/// \file rle.h
/// Byte-oriented run-length encoding tuned for bitmap XOR deltas (§3.2 of
/// the paper): a delta between two bitmap snapshots is overwhelmingly zero
/// bytes with sparse set bits, so long zero runs dominate.
///
/// Format: a sequence of tokens.
///   0x00 <varint n>            -- a run of n zero bytes
///   0x01 <varint n> <byte b>   -- a run of n copies of byte b (b != 0)
///   0x02 <varint n> <n bytes>  -- n literal bytes
/// A run token is only emitted for runs >= kMinRun; shorter stretches are
/// folded into literals to avoid token overhead on noisy data.

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/slice.h"

namespace decibel {
namespace rle {

/// Minimum repeat length encoded as a run instead of a literal.
inline constexpr size_t kMinRun = 4;

/// Appends the RLE encoding of \p input to \p output.
void Encode(Slice input, std::string* output);

/// Decodes a full RLE stream. Fails with Corruption on malformed input.
Result<std::string> Decode(Slice input);

/// Decodes and XORs the decoded bytes into \p target, growing it with
/// zeros if the decoded output is longer (bitmaps grow between commits, and
/// bytes past the end of the shorter snapshot are implicitly zero). Used to
/// replay bitmap commit deltas without materializing the intermediate
/// plain buffer.
Status DecodeXorInto(Slice input, std::string* target);

}  // namespace rle
}  // namespace decibel

#endif  // DECIBEL_COMMON_RLE_H_
