#include "common/io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace decibel {

namespace {

constexpr size_t kWriteBufferSize = 1 << 20;  // 1 MiB

Status ErrnoStatus(const std::string& context) {
  return Status::IOError(context + ": " + std::strerror(errno));
}

}  // namespace

// ---------------------------------------------------------------- Writable

WritableFile::~WritableFile() {
  if (fd_ >= 0) {
    Close().ok();  // best effort on destruction
  }
}

WritableFile::WritableFile(WritableFile&& other) noexcept
    : fd_(other.fd_),
      path_(std::move(other.path_)),
      size_(other.size_),
      buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

Result<WritableFile> WritableFile::Open(const std::string& path,
                                        bool truncate) {
  int flags = O_WRONLY | O_CREAT | (truncate ? O_TRUNC : O_APPEND);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return ErrnoStatus("open " + path);
  uint64_t size = 0;
  if (!truncate) {
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return ErrnoStatus("fstat " + path);
    }
    size = static_cast<uint64_t>(st.st_size);
  }
  WritableFile f(fd, path, size);
  f.buffer_.reserve(kWriteBufferSize);
  return f;
}

Status WritableFile::Append(Slice data) {
  size_ += data.size();
  if (buffer_.size() + data.size() <= kWriteBufferSize) {
    buffer_.append(data.data(), data.size());
    return Status::OK();
  }
  DECIBEL_RETURN_NOT_OK(Flush());
  if (data.size() >= kWriteBufferSize) {
    // Large write: bypass the buffer.
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write " + path_);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }
  buffer_.append(data.data(), data.size());
  return Status::OK();
}

Status WritableFile::Flush() {
  const char* p = buffer_.data();
  size_t left = buffer_.size();
  while (left > 0) {
    ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write " + path_);
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  buffer_.clear();
  return Status::OK();
}

Status WritableFile::Sync() {
  DECIBEL_RETURN_NOT_OK(Flush());
  return SyncData();
}

Status WritableFile::SyncData() {
  if (::fdatasync(fd_) != 0) return ErrnoStatus("fdatasync " + path_);
  return Status::OK();
}

Status WritableFile::Close() {
  if (fd_ < 0) return Status::OK();
  Status s = Flush();
  if (::close(fd_) != 0 && s.ok()) s = ErrnoStatus("close " + path_);
  fd_ = -1;
  return s;
}

// ------------------------------------------------------------ RandomAccess

RandomAccessFile::~RandomAccessFile() {
  if (fd_ >= 0) ::close(fd_);
}

RandomAccessFile::RandomAccessFile(RandomAccessFile&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)), size_(other.size_) {
  other.fd_ = -1;
}

Result<RandomAccessFile> RandomAccessFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return ErrnoStatus("fstat " + path);
  }
  return RandomAccessFile(fd, path, static_cast<uint64_t>(st.st_size));
}

Status RandomAccessFile::Read(uint64_t offset, size_t n,
                              std::string* scratch) const {
  scratch->resize(n);
  char* p = scratch->data();
  size_t left = n;
  uint64_t off = offset;
  while (left > 0) {
    ssize_t r = ::pread(fd_, p, left, static_cast<off_t>(off));
    if (r < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pread " + path_);
    }
    if (r == 0) {
      return Status::IOError("short read at offset " + std::to_string(offset) +
                             " in " + path_);
    }
    p += r;
    left -= static_cast<size_t>(r);
    off += static_cast<uint64_t>(r);
  }
  return Status::OK();
}

// ------------------------------------------------------------ RandomWrite

RandomWriteFile::~RandomWriteFile() {
  if (fd_ >= 0) ::close(fd_);
}

RandomWriteFile::RandomWriteFile(RandomWriteFile&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
}

Result<RandomWriteFile> RandomWriteFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) return ErrnoStatus("open " + path);
  return RandomWriteFile(fd, path);
}

Status RandomWriteFile::WriteAt(uint64_t offset, Slice data) {
  const char* p = data.data();
  size_t left = data.size();
  uint64_t off = offset;
  while (left > 0) {
    ssize_t n = ::pwrite(fd_, p, left, static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pwrite " + path_);
    }
    p += n;
    left -= static_cast<size_t>(n);
    off += static_cast<uint64_t>(n);
  }
  return Status::OK();
}

Status RandomWriteFile::Truncate(uint64_t size) {
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return ErrnoStatus("ftruncate " + path_);
  }
  return Status::OK();
}

Status RandomWriteFile::Sync() {
  if (::fdatasync(fd_) != 0) return ErrnoStatus("fdatasync " + path_);
  return Status::OK();
}

Status RandomWriteFile::Close() {
  if (fd_ < 0) return Status::OK();
  Status s = Status::OK();
  if (::close(fd_) != 0) s = ErrnoStatus("close " + path_);
  fd_ = -1;
  return s;
}

// ------------------------------------------------------------- filesystem

Status CreateDir(const std::string& path) {
  std::string partial;
  size_t pos = 0;
  while (pos < path.size()) {
    size_t next = path.find('/', pos + 1);
    partial = path.substr(0, next == std::string::npos ? path.size() : next);
    if (!partial.empty() && ::mkdir(partial.c_str(), 0755) != 0 &&
        errno != EEXIST) {
      return ErrnoStatus("mkdir " + partial);
    }
    if (next == std::string::npos) break;
    pos = next;
  }
  return Status::OK();
}

Status RemoveDirRecursive(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) {
    if (errno == ENOENT) return Status::OK();
    return ErrnoStatus("opendir " + path);
  }
  Status result = Status::OK();
  struct dirent* entry;
  while ((entry = ::readdir(dir)) != nullptr) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    const std::string child = JoinPath(path, name);
    struct stat st;
    if (::lstat(child.c_str(), &st) != 0) {
      result = ErrnoStatus("lstat " + child);
      break;
    }
    Status s = S_ISDIR(st.st_mode) ? RemoveDirRecursive(child)
                                   : RemoveFile(child);
    if (!s.ok()) {
      result = s;
      break;
    }
  }
  ::closedir(dir);
  DECIBEL_RETURN_NOT_OK(result);
  if (::rmdir(path.c_str()) != 0 && errno != ENOENT) {
    return ErrnoStatus("rmdir " + path);
  }
  return Status::OK();
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return ErrnoStatus("unlink " + path);
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Result<uint64_t> FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return ErrnoStatus("stat " + path);
  return static_cast<uint64_t>(st.st_size);
}

Result<std::vector<std::string>> ListDir(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return ErrnoStatus("opendir " + path);
  std::vector<std::string> names;
  struct dirent* entry;
  while ((entry = ::readdir(dir)) != nullptr) {
    const std::string name = entry->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(dir);
  return names;
}

uint64_t DirSizeBytes(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return 0;
  uint64_t total = 0;
  struct dirent* entry;
  while ((entry = ::readdir(dir)) != nullptr) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    const std::string child = JoinPath(path, name);
    struct stat st;
    if (::lstat(child.c_str(), &st) != 0) continue;
    if (S_ISDIR(st.st_mode)) {
      total += DirSizeBytes(child);
    } else {
      total += static_cast<uint64_t>(st.st_size);
    }
  }
  ::closedir(dir);
  return total;
}

Status WriteStringToFile(const std::string& path, Slice data) {
  DECIBEL_ASSIGN_OR_RETURN(WritableFile f, WritableFile::Open(path, true));
  DECIBEL_RETURN_NOT_OK(f.Append(data));
  return f.Close();
}

Result<std::string> ReadFileToString(const std::string& path) {
  DECIBEL_ASSIGN_OR_RETURN(RandomAccessFile f, RandomAccessFile::Open(path));
  std::string out;
  if (f.Size() > 0) {
    DECIBEL_RETURN_NOT_OK(f.Read(0, f.Size(), &out));
  }
  return out;
}

Status SyncDir(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoStatus("open dir " + path);
  Status s = Status::OK();
  if (::fsync(fd) != 0) s = ErrnoStatus("fsync dir " + path);
  ::close(fd);
  return s;
}

Status TruncateFile(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return ErrnoStatus("truncate " + path);
  }
  return Status::OK();
}

Status RenameFile(const std::string& from, const std::string& to, bool sync) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return ErrnoStatus("rename " + from + " -> " + to);
  }
  if (sync) return SyncDir(ParentDir(to));
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, Slice data, bool sync) {
  const std::string tmp = path + ".tmp";
  {
    DECIBEL_ASSIGN_OR_RETURN(WritableFile f, WritableFile::Open(tmp, true));
    DECIBEL_RETURN_NOT_OK(f.Append(data));
    if (sync) DECIBEL_RETURN_NOT_OK(f.Sync());
    DECIBEL_RETURN_NOT_OK(f.Close());
  }
  return RenameFile(tmp, path, sync);
}

std::string JoinPath(const std::string& a, const std::string& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  if (a.back() == '/') return a + b;
  return a + "/" + b;
}

std::string ParentDir(const std::string& path) {
  const size_t pos = path.find_last_of('/');
  if (pos == std::string::npos) return ".";
  if (pos == 0) return "/";
  return path.substr(0, pos);
}

}  // namespace decibel
