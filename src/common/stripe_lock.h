#ifndef DECIBEL_COMMON_STRIPE_LOCK_H_
#define DECIBEL_COMMON_STRIPE_LOCK_H_

/// \file stripe_lock.h
/// A fixed array of mutexes indexed by branch id — the lock striping that
/// lets transactions on disjoint branches mutate engine state
/// concurrently. Two branches contend only if they hash to the same
/// stripe; cross-branch operations (merge, branch-from-parent) take the
/// stripes of every branch they touch in ascending index order, so any
/// set of MultiGuard/AllGuard holders is deadlock-free by construction.
///
/// Each engine orders its locks registry -> stripes -> leaf mutexes;
/// StripeLocks only covers the middle tier and never blocks on anything
/// itself.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <vector>

namespace decibel {

class StripeLocks {
 public:
  explicit StripeLocks(size_t stripes)
      : locks_(std::make_unique<std::mutex[]>(stripes == 0 ? 1 : stripes)),
        count_(stripes == 0 ? 1 : stripes) {}

  size_t count() const { return count_; }
  size_t IndexOf(uint32_t branch) const { return branch % count_; }
  std::mutex& At(size_t stripe) { return locks_[stripe]; }
  std::mutex& ForBranch(uint32_t branch) { return locks_[IndexOf(branch)]; }

  /// Holds the stripes of a set of branches, acquired in ascending stripe
  /// order with duplicates collapsed (two branches on the same stripe need
  /// — and can only take — that stripe once). The common cases — one
  /// branch on the per-transaction write path, two on a merge — stay on
  /// the inline buffer and never allocate.
  class MultiGuard {
   public:
    MultiGuard(StripeLocks& locks, std::initializer_list<uint32_t> branches)
        : locks_(locks) {
      Init(branches.begin(), branches.size());
    }
    MultiGuard(StripeLocks& locks, const std::vector<uint32_t>& branches)
        : locks_(locks) {
      Init(branches.data(), branches.size());
    }
    ~MultiGuard() {
      for (size_t i = count_; i-- > 0;) locks_.At(stripes_[i]).unlock();
    }
    MultiGuard(const MultiGuard&) = delete;
    MultiGuard& operator=(const MultiGuard&) = delete;

   private:
    static constexpr size_t kInline = 8;

    void Init(const uint32_t* branches, size_t n) {
      if (n > kInline) {
        overflow_.resize(n);
        stripes_ = overflow_.data();
      }
      for (size_t i = 0; i < n; ++i) stripes_[i] = locks_.IndexOf(branches[i]);
      std::sort(stripes_, stripes_ + n);
      count_ = static_cast<size_t>(std::unique(stripes_, stripes_ + n) -
                                   stripes_);
      for (size_t i = 0; i < count_; ++i) locks_.At(stripes_[i]).lock();
    }

    StripeLocks& locks_;
    size_t inline_[kInline];
    std::vector<size_t> overflow_;
    size_t* stripes_ = inline_;
    size_t count_ = 0;
  };

  /// Holds every stripe (ascending order): the degenerate mode for state
  /// that is physically shared across branches, e.g. the tuple-oriented
  /// bitmap matrix whose Set() can reallocate every row.
  class AllGuard {
   public:
    explicit AllGuard(StripeLocks& locks) : locks_(locks) {
      for (size_t s = 0; s < locks_.count(); ++s) locks_.At(s).lock();
    }
    ~AllGuard() {
      for (size_t s = locks_.count(); s-- > 0;) locks_.At(s).unlock();
    }
    AllGuard(const AllGuard&) = delete;
    AllGuard& operator=(const AllGuard&) = delete;

   private:
    StripeLocks& locks_;
  };

 private:
  std::unique_ptr<std::mutex[]> locks_;
  size_t count_;
};

}  // namespace decibel

#endif  // DECIBEL_COMMON_STRIPE_LOCK_H_
