#ifndef DECIBEL_COMMON_THREAD_POOL_H_
#define DECIBEL_COMMON_THREAD_POOL_H_

/// \file thread_pool.h
/// A small fixed-size worker pool. The hybrid engine's branch-segment
/// bitmap makes per-segment scans independent (§3.4: "allows for
/// parallelization of segment scanning"), which this pool exploits.

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace decibel {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads) {
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues \p task for execution on some worker.
  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push(std::move(task));
      ++outstanding_;
    }
    cv_.notify_one();
  }

  /// Blocks until every submitted task has completed.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return outstanding_ == 0; });
  }

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
        if (shutdown_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--outstanding_ == 0) idle_cv_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::queue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  size_t outstanding_ = 0;
  bool shutdown_ = false;
};

}  // namespace decibel

#endif  // DECIBEL_COMMON_THREAD_POOL_H_
