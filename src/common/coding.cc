#include "common/coding.h"

namespace decibel {

void PutVarint32(std::string* dst, uint32_t value) {
  unsigned char buf[5];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value) | 0x80;
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutVarint64(std::string* dst, uint64_t value) {
  unsigned char buf[10];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value) | 0x80;
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutLengthPrefixed(std::string* dst, Slice value) {
  PutVarint64(dst, value.size());
  // A default-constructed Slice has data() == nullptr; append(nullptr, 0)
  // violates the [s, s + n) valid-range precondition.
  if (!value.empty()) dst->append(value.data(), value.size());
}

namespace {

bool GetVarintImpl(Slice* input, uint64_t* value, int max_bytes) {
  uint64_t result = 0;
  const uint8_t* p = input->udata();
  const uint8_t* limit = p + input->size();
  for (int shift = 0; shift < max_bytes * 7 && p < limit; shift += 7) {
    uint64_t byte = *p++;
    if (byte & 0x80) {
      result |= (byte & 0x7F) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      input->RemovePrefix(p - input->udata());
      return true;
    }
  }
  return false;  // truncated or overlong
}

}  // namespace

bool GetVarint32(Slice* input, uint32_t* value) {
  uint64_t v;
  if (!GetVarintImpl(input, &v, 5)) return false;
  if (v > UINT32_MAX) return false;
  *value = static_cast<uint32_t>(v);
  return true;
}

bool GetVarint64(Slice* input, uint64_t* value) {
  return GetVarintImpl(input, value, 10);
}

bool GetLengthPrefixed(Slice* input, Slice* result) {
  uint64_t len;
  if (!GetVarint64(input, &len)) return false;
  if (len > input->size()) return false;
  *result = Slice(input->data(), static_cast<size_t>(len));
  input->RemovePrefix(static_cast<size_t>(len));
  return true;
}

bool GetFixed32(Slice* input, uint32_t* value) {
  if (input->size() < sizeof(uint32_t)) return false;
  *value = DecodeFixed32(input->data());
  input->RemovePrefix(sizeof(uint32_t));
  return true;
}

bool GetFixed64(Slice* input, uint64_t* value) {
  if (input->size() < sizeof(uint64_t)) return false;
  *value = DecodeFixed64(input->data());
  input->RemovePrefix(sizeof(uint64_t));
  return true;
}

int VarintLength(uint64_t value) {
  int len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

}  // namespace decibel
