#include "common/lz.h"

#include <vector>

#include "common/coding.h"

namespace decibel {
namespace lz {

namespace {

constexpr char kLiteralTag = 0x00;
constexpr char kCopyTag = 0x01;
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 1 << 15;
constexpr size_t kWindow = 1 << 16;
constexpr int kHashBits = 15;
constexpr int kMaxChain = 16;  // bounded match-finder effort

inline uint32_t HashAt(const char* p) {
  uint32_t v;
  memcpy(&v, p, sizeof(v));
  return (v * 2654435761u) >> (32 - kHashBits);
}

void FlushLiteral(Slice input, size_t start, size_t end, std::string* out) {
  if (end <= start) return;
  out->push_back(kLiteralTag);
  PutVarint64(out, end - start);
  out->append(input.data() + start, end - start);
}

}  // namespace

void Compress(Slice input, std::string* output) {
  const size_t n = input.size();
  const char* data = input.data();
  if (n < kMinMatch) {
    FlushLiteral(input, 0, n, output);
    return;
  }
  // head[h] = most recent position with hash h; prev[i] = previous position
  // in the same chain.
  std::vector<int64_t> head(size_t{1} << kHashBits, -1);
  std::vector<int64_t> prev(n, -1);

  size_t lit_start = 0;
  size_t i = 0;
  while (i + kMinMatch <= n) {
    const uint32_t h = HashAt(data + i);
    size_t best_len = 0;
    size_t best_dist = 0;
    int64_t cand = head[h];
    int chain = 0;
    while (cand >= 0 && i - cand <= kWindow && chain++ < kMaxChain) {
      const size_t dist = i - static_cast<size_t>(cand);
      size_t len = 0;
      const size_t max_len = std::min(kMaxMatch, n - i);
      const char* a = data + cand;
      const char* b = data + i;
      while (len < max_len && a[len] == b[len]) ++len;
      if (len > best_len) {
        best_len = len;
        best_dist = dist;
      }
      cand = prev[cand];
    }
    if (best_len >= kMinMatch) {
      FlushLiteral(input, lit_start, i, output);
      output->push_back(kCopyTag);
      PutVarint64(output, best_dist);
      PutVarint64(output, best_len);
      // Insert the skipped positions into the chains so later matches can
      // reference inside this match (cap the work for long matches).
      const size_t insert_end = std::min(i + best_len, n - kMinMatch + 1);
      for (size_t k = i; k < insert_end; ++k) {
        const uint32_t hk = HashAt(data + k);
        prev[k] = head[hk];
        head[hk] = static_cast<int64_t>(k);
      }
      i += best_len;
      lit_start = i;
    } else {
      prev[i] = head[h];
      head[h] = static_cast<int64_t>(i);
      ++i;
    }
  }
  FlushLiteral(input, lit_start, n, output);
}

Result<std::string> Decompress(Slice input) {
  std::string out;
  while (!input.empty()) {
    const char tag = input[0];
    input.RemovePrefix(1);
    if (tag == kLiteralTag) {
      uint64_t len;
      if (!GetVarint64(&input, &len) || len > input.size()) {
        return Status::Corruption("lz: truncated literal");
      }
      out.append(input.data(), static_cast<size_t>(len));
      input.RemovePrefix(static_cast<size_t>(len));
    } else if (tag == kCopyTag) {
      uint64_t dist, len;
      if (!GetVarint64(&input, &dist) || !GetVarint64(&input, &len)) {
        return Status::Corruption("lz: truncated copy");
      }
      if (dist == 0 || dist > out.size()) {
        return Status::Corruption("lz: copy distance out of range");
      }
      // Byte-at-a-time: copies may overlap their own output (RLE-style).
      size_t src = out.size() - static_cast<size_t>(dist);
      for (uint64_t k = 0; k < len; ++k) {
        out.push_back(out[src + static_cast<size_t>(k)]);
      }
    } else {
      return Status::Corruption("lz: bad token tag");
    }
  }
  return out;
}

}  // namespace lz
}  // namespace decibel
