#ifndef DECIBEL_COMMON_SOCKET_H_
#define DECIBEL_COMMON_SOCKET_H_

/// \file socket.h
/// Status-returning TCP socket wrappers, the network sibling of io.h's
/// file handles. The net/ subsystem (wire protocol, server, client) does
/// all of its I/O through this layer so connection failures surface as
/// ordinary Status values: a peer that vanishes mid-frame is IOError,
/// never a crash or a hang.
///
/// Sockets are IPv4 TCP with TCP_NODELAY set (the wire protocol sends
/// small request/response frames; Nagle would serialize the agentic
/// workload's fork/write/merge round-trips). Sends suppress SIGPIPE so a
/// reset connection is a return value, not a process signal.

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace decibel {

/// An RAII TCP socket (connected stream or listener). Movable, not
/// copyable; the descriptor closes on destruction.
class Socket {
 public:
  Socket() = default;
  ~Socket();
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;

  /// Binds and listens on \p host:\p port. Port 0 binds an ephemeral
  /// port; read it back with local_port(). SO_REUSEADDR is set so CI
  /// restarts do not trip over TIME_WAIT.
  static Result<Socket> Listen(const std::string& host, uint16_t port,
                               int backlog = 128);

  /// Connects to \p host:\p port (blocking).
  static Result<Socket> Connect(const std::string& host, uint16_t port);

  /// Accepts one pending connection on a listener.
  Result<Socket> Accept();

  /// Writes all of \p data. On a non-blocking socket, waits (poll) for
  /// writability between partial writes, up to \p timeout_ms per wait
  /// (-1 = forever). IOError on reset/closed peers and on timeout.
  Status SendAll(Slice data, int timeout_ms = -1);

  /// Reads up to \p n bytes into \p buf. Returns 0 when the peer closed
  /// the connection cleanly; IOError on reset. On a non-blocking socket
  /// with no data ready, sets *would_block and returns 0 bytes (passing
  /// no would_block treats EAGAIN as an IOError).
  Result<size_t> Recv(char* buf, size_t n, bool* would_block = nullptr);

  /// Switches O_NONBLOCK (the server's poll loop reads non-blocking).
  Status SetNonBlocking(bool on);

  /// Sets SO_RCVTIMEO so blocking reads fail with IOError("timed out")
  /// instead of hanging forever (client-side safety net).
  Status SetRecvTimeout(int timeout_ms);

  /// The locally bound port (listener or connected socket).
  Result<uint16_t> local_port() const;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

 private:
  explicit Socket(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace decibel

#endif  // DECIBEL_COMMON_SOCKET_H_
