#ifndef DECIBEL_COMMON_CRC32_H_
#define DECIBEL_COMMON_CRC32_H_

/// \file crc32.h
/// CRC-32 (IEEE 802.3 polynomial) used to checksum pages, commit-history
/// records and git-like objects so corruption surfaces as Status errors
/// instead of silent wrong answers.

#include <cstdint>

#include "common/slice.h"

namespace decibel {

/// Computes the CRC-32 of \p data, continuing from \p seed (0 for a fresh
/// checksum).
uint32_t Crc32(Slice data, uint32_t seed = 0);

/// Masked CRC in the RocksDB style: storing a CRC of data that itself
/// contains CRCs is error-prone, so persisted checksums are masked.
inline uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
inline uint32_t UnmaskCrc(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot << 15) | (rot >> 17);
}

}  // namespace decibel

#endif  // DECIBEL_COMMON_CRC32_H_
