#ifndef DECIBEL_COMMON_LZ_H_
#define DECIBEL_COMMON_LZ_H_

/// \file lz.h
/// "Deflate-lite": a greedy LZ77 compressor with a hash-chain match finder.
/// This stands in for zlib in the git-like baseline (git compresses every
/// loose object and packfile entry). It is deliberately simple — the point
/// is to reproduce git's cost structure (compression on commit, exhaustive
/// delta+compress at repack), not to win compression contests.
///
/// Format: a sequence of tokens.
///   0x00 <varint n> <n bytes>           -- literal run
///   0x01 <varint dist> <varint len>     -- copy len bytes from dist back

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/slice.h"

namespace decibel {
namespace lz {

/// Compresses \p input, appending to \p output.
void Compress(Slice input, std::string* output);

/// Decompresses a full stream produced by Compress.
Result<std::string> Decompress(Slice input);

}  // namespace lz
}  // namespace decibel

#endif  // DECIBEL_COMMON_LZ_H_
