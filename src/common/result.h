#ifndef DECIBEL_COMMON_RESULT_H_
#define DECIBEL_COMMON_RESULT_H_

/// \file result.h
/// Result<T>: a value-or-Status, in the style of arrow::Result /
/// absl::StatusOr. Returned by fallible operations that produce a value.

#include <cassert>
#include <type_traits>
#include <utility>
#include <variant>

#include "common/status.h"

namespace decibel {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent. Accessing the value of an errored Result aborts in
/// debug builds (programmer error).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs an errored Result. \p status must not be OK.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT implicit
    assert(!std::get<Status>(repr_).ok());
  }
  /// Constructs a Result holding \p value.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT implicit

  Result(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(const Result&) = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The status: OK if a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  /// Moves the value out of the Result.
  T MoveValueUnsafe() {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace decibel

/// Evaluates an expression returning Result<T>; on error propagates the
/// Status, otherwise assigns the value to `lhs`.
#define DECIBEL_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).MoveValueUnsafe();

#define DECIBEL_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define DECIBEL_ASSIGN_OR_RETURN_NAME(x, y) \
  DECIBEL_ASSIGN_OR_RETURN_CONCAT(x, y)

#define DECIBEL_ASSIGN_OR_RETURN(lhs, rexpr) \
  DECIBEL_ASSIGN_OR_RETURN_IMPL(             \
      DECIBEL_ASSIGN_OR_RETURN_NAME(_result_tmp_, __COUNTER__), lhs, rexpr)

#endif  // DECIBEL_COMMON_RESULT_H_
