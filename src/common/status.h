#ifndef DECIBEL_COMMON_STATUS_H_
#define DECIBEL_COMMON_STATUS_H_

/// \file status.h
/// Error handling for Decibel. Library code does not throw exceptions;
/// every fallible operation returns a Status (or Result<T>, see result.h)
/// in the style of RocksDB / Apache Arrow.

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace decibel {

/// Machine-readable classification of an error.
enum class StatusCode : unsigned char {
  kOk = 0,
  kNotFound = 1,
  kCorruption = 2,
  kNotSupported = 3,
  kInvalidArgument = 4,
  kIOError = 5,
  kAlreadyExists = 6,
  kConflict = 7,        ///< Versioning conflict (merge / concurrent commit).
  kAborted = 8,         ///< Operation aborted (e.g. lock timeout).
  kOutOfRange = 9,
  kUnknown = 10,
};

/// Returns a human-readable name for \p code ("OK", "NotFound", ...).
const char* StatusCodeToString(StatusCode code);

/// A Status encapsulates the result of an operation: success, or an error
/// code plus message. The OK state carries no allocation.
class Status {
 public:
  /// Creates a success status.
  Status() noexcept = default;

  Status(StatusCode code, std::string msg)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_unique<State>(State{code, std::move(msg)})) {}

  Status(const Status& other)
      : state_(other.state_ ? std::make_unique<State>(*other.state_)
                            : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
    }
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per StatusCode.
  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unknown(std::string msg) {
    return Status(StatusCode::kUnknown, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsConflict() const { return code() == StatusCode::kConflict; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }

  StatusCode code() const {
    return state_ ? state_->code : StatusCode::kOk;
  }

  /// The error message, or empty for OK.
  std::string_view message() const {
    return state_ ? std::string_view(state_->msg) : std::string_view();
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  // nullptr means OK; keeps sizeof(Status) == sizeof(void*).
  std::unique_ptr<State> state_;
};

}  // namespace decibel

/// Propagates a non-OK Status to the caller. Usable in any function that
/// returns Status or Result<T>.
#define DECIBEL_RETURN_NOT_OK(expr)                   \
  do {                                                \
    ::decibel::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                        \
  } while (0)

#endif  // DECIBEL_COMMON_STATUS_H_
