#ifndef DECIBEL_COMMON_SLICE_H_
#define DECIBEL_COMMON_SLICE_H_

/// \file slice.h
/// A non-owning view over a byte range, in the RocksDB tradition. Used at
/// storage-layer boundaries where std::string_view's char orientation is
/// awkward and we want explicit byte semantics.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace decibel {

class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  Slice(const uint8_t* data, size_t size)
      : data_(reinterpret_cast<const char*>(data)), size_(size) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(std::string_view s) : data_(s.data()), size_(s.size()) {}    // NOLINT
  Slice(const char* s) : data_(s), size_(s ? strlen(s) : 0) {}       // NOLINT

  const char* data() const { return data_; }
  const uint8_t* udata() const {
    return reinterpret_cast<const uint8_t*>(data_);
  }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const { return data_[i]; }

  /// Drops the first \p n bytes from the view.
  void RemovePrefix(size_t n) {
    data_ += n;
    size_ -= n;
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view ToView() const { return std::string_view(data_, size_); }

  int Compare(const Slice& other) const {
    const size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = (min_len == 0) ? 0 : memcmp(data_, other.data_, min_len);
    if (r == 0) {
      if (size_ < other.size_) return -1;
      if (size_ > other.size_) return 1;
    }
    return r;
  }

  bool operator==(const Slice& other) const { return Compare(other) == 0; }
  bool operator!=(const Slice& other) const { return !(*this == other); }

 private:
  const char* data_;
  size_t size_;
};

}  // namespace decibel

#endif  // DECIBEL_COMMON_SLICE_H_
