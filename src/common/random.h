#ifndef DECIBEL_COMMON_RANDOM_H_
#define DECIBEL_COMMON_RANDOM_H_

/// \file random.h
/// Deterministic PRNG for the benchmark driver. The paper (§5.6) seeds its
/// generator so every storage engine replays the identical operation
/// stream; we use splitmix64-seeded xoshiro256** for speed and quality.

#include <cstdint>

namespace decibel {

class Random {
 public:
  explicit Random(uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// True with probability num/den.
  bool OneIn(uint64_t den, uint64_t num = 1) { return Uniform(den) < num; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t state_[4];
};

}  // namespace decibel

#endif  // DECIBEL_COMMON_RANDOM_H_
