#include "common/crc32.h"

#include <array>
#include <cstring>

namespace decibel {

namespace {

/// Slice-by-8 lookup tables: t[0] is the classic byte-at-a-time table;
/// t[j][b] is the CRC of byte b followed by j zero bytes, letting the hot
/// loop fold 8 input bytes per iteration instead of 1.
struct Crc32Tables {
  std::array<std::array<uint32_t, 256>, 8> t;
};

Crc32Tables MakeTables() {
  Crc32Tables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    }
    tables.t[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = tables.t[0][i];
    for (int j = 1; j < 8; ++j) {
      c = tables.t[0][c & 0xff] ^ (c >> 8);
      tables.t[j][i] = c;
    }
  }
  return tables;
}

}  // namespace

uint32_t Crc32(Slice data, uint32_t seed) {
  static const Crc32Tables kTables = MakeTables();
  const auto& t = kTables.t;
  uint32_t c = seed ^ 0xffffffffu;
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data.data());
  size_t n = data.size();
#if !defined(__BYTE_ORDER__) || __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  // Fold 8 bytes per iteration (slice-by-8). The word loads fold into the
  // running CRC in little-endian byte order; big-endian targets take the
  // bytewise tail loop below for everything.
  while (n >= 8) {
    uint32_t lo, hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    c ^= lo;
    c = t[7][c & 0xff] ^ t[6][(c >> 8) & 0xff] ^ t[5][(c >> 16) & 0xff] ^
        t[4][c >> 24] ^ t[3][hi & 0xff] ^ t[2][(hi >> 8) & 0xff] ^
        t[1][(hi >> 16) & 0xff] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
#endif
  for (; n > 0; ++p, --n) {
    c = t[0][(c ^ *p) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace decibel
