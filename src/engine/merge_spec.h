#ifndef DECIBEL_ENGINE_MERGE_SPEC_H_
#define DECIBEL_ENGINE_MERGE_SPEC_H_

/// \file merge_spec.h
/// The unified merge/diff contract, mirroring scan_spec.h for the write
/// side of §2.2.3: a MergeSpec describes *what* to merge (an `into` and a
/// `from` branch) and *how conflicts resolve* (a MergePolicy granularity
/// plus a MergeResolution — ours/theirs/latest-wins/policy precedence or
/// a user callback); the facade turns it into either a dry-run preview
/// cursor (stream the reconciled keys without mutating anything) or an
/// executed merge whose changes travel the ordinary WriteBatch/ApplyBatch
/// path — atomic, stripe-lock-ordered and WAL-framed like every other
/// mutation.
///
/// The engine substrate is one commit-addressed primitive,
/// StorageEngine::MergeWalk(left, right, base): stream every primary key
/// whose record state differs between two commits, with the key's state
/// at both commits and at their common ancestor. Everything semantic —
/// what is a conflict, which side wins, what gets written — lives in
/// StageMerge/StageDiff here, shared by all three engines, so the
/// engines can only diverge on *cost*, never on *answers*.
///
/// Conflict semantics (§2.2.3): two records conflict if they share a
/// primary key and both sides changed it since the lowest common
/// ancestor with different outcomes. Both sides deleting a key is
/// agreement, not a conflict; both sides writing identical bytes is
/// agreement; an update on one side against a delete on the other is a
/// conflict the resolution decides. Three-way policies reconcile
/// field-by-field (merge_util.h); two-way policies at whole-record
/// granularity.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "storage/record.h"
#include "storage/schema.h"
#include "txn/write_batch.h"
#include "version/types.h"

namespace decibel {

class StorageEngine;

/// Conflict granularity for merges (§2.2.3 Merge).
enum class MergePolicy {
  kTwoWayLeft,    ///< tuple-level precedence, 'into' branch wins
  kTwoWayRight,   ///< tuple-level precedence, 'from' branch wins
  kThreeWayLeft,  ///< field-level three-way merge, 'into' wins conflicts
  kThreeWayRight, ///< field-level three-way merge, 'from' wins conflicts
};

inline bool IsThreeWay(MergePolicy p) {
  return p == MergePolicy::kThreeWayLeft || p == MergePolicy::kThreeWayRight;
}
inline bool LeftWins(MergePolicy p) {
  return p == MergePolicy::kTwoWayLeft || p == MergePolicy::kThreeWayLeft;
}

/// How conflicting keys resolve, layered on the MergePolicy (which only
/// fixes the granularity and a default precedence direction).
enum class MergeResolution : uint8_t {
  kPolicy,      ///< precedence from the policy (LeftWins)
  kOurs,        ///< every conflict resolves to the 'into' side
  kTheirs,      ///< every conflict resolves to the 'from' side
  /// The side whose head commit is newer wins (commit ids are allocated
  /// monotonically, so the larger head committed later). Coarse — whole
  /// merge-side recency, not per-record timestamps.
  kLatestWins,
  kCallback,    ///< MergeSpec::on_conflict decides each conflicting key
};

struct MergeResult {
  uint64_t conflicts = 0;        ///< records needing precedence resolution
  uint64_t merged_records = 0;   ///< records whose state changed in 'into'
  uint64_t field_merges = 0;     ///< records merged field-by-field (3-way)
  /// Bytes examined to perform the merge; Table 3 reports throughput as
  /// diff bytes / merge seconds. Engine-dependent (this is the cost the
  /// physical layouts compete on).
  uint64_t bytes_processed = 0;
  /// Size of the two-sided content diff against the ancestor: one record
  /// width per changed live version. Engine-independent by construction.
  uint64_t diff_bytes = 0;
};

/// One conflicting key handed to a resolution callback: the record state
/// at the ancestor and on both sides (absent optional = not live there).
struct MergeConflict {
  int64_t pk = 0;
  std::optional<Record> base;
  std::optional<Record> left;   ///< the 'into' side
  std::optional<Record> right;  ///< the 'from' side
  /// Columns both sides changed differently (three-way merges only).
  std::vector<size_t> conflict_columns;
};

/// A callback's verdict for one conflicting key.
struct ConflictResolution {
  enum class Action : uint8_t { kTakeLeft, kTakeRight, kDelete, kCustom };
  Action action = Action::kTakeLeft;
  std::optional<Record> custom;  ///< the merged record for kCustom

  static ConflictResolution TakeLeft() { return {}; }
  static ConflictResolution TakeRight() {
    return {Action::kTakeRight, std::nullopt};
  }
  static ConflictResolution Drop() { return {Action::kDelete, std::nullopt}; }
  static ConflictResolution Custom(Record r) {
    return {Action::kCustom, std::move(r)};
  }
};

/// Decides one conflicting key. Returning an error status aborts the
/// whole merge before anything is mutated (staging is a pure phase).
using ConflictCallback =
    std::function<Result<ConflictResolution>(const MergeConflict&)>;

/// A declarative description of one merge. Build with Branches, then
/// chain WithPolicy/Resolve/OnConflict:
///
///   db->Merge(MergeSpec::Branches(master, dev)
///                 .WithPolicy(MergePolicy::kThreeWayLeft)
///                 .Resolve(MergeResolution::kTheirs));
///
/// The same spec drives Decibel::PreviewMerge (dry run, nothing written)
/// and Decibel::Merge (atomic execution).
struct MergeSpec {
  BranchId into = kMasterBranch;
  BranchId from = kInvalidBranch;
  MergePolicy policy = MergePolicy::kThreeWayLeft;
  MergeResolution resolution = MergeResolution::kPolicy;
  ConflictCallback on_conflict;

  static MergeSpec Branches(BranchId into, BranchId from) {
    MergeSpec spec;
    spec.into = into;
    spec.from = from;
    return spec;
  }

  MergeSpec& WithPolicy(MergePolicy p) {
    policy = p;
    return *this;
  }
  MergeSpec& Resolve(MergeResolution r) {
    resolution = r;
    return *this;
  }
  MergeSpec& OnConflict(ConflictCallback cb) {
    on_conflict = std::move(cb);
    resolution = MergeResolution::kCallback;
    return *this;
  }
};

/// What executing a merge (or, for a diff, moving from the left commit to
/// the right one) does to the key.
enum class MergeChangeKind : uint8_t {
  kNone,    ///< 'into' keeps its state (left side won, or only left changed)
  kAdd,     ///< key becomes live (absent on the left, adopted from right)
  kUpdate,  ///< key's record bytes change
  kDelete,  ///< key stops being live
};

/// One reconciled key of a preview or diff cursor.
struct MergeRow {
  int64_t pk = 0;
  MergeChangeKind change = MergeChangeKind::kNone;
  /// The key needed precedence/callback resolution (for diffs: both
  /// commits changed it since their common ancestor).
  bool conflict = false;
  bool field_merge = false;  ///< reconciled record takes fields from both
  std::optional<Record> base;
  std::optional<Record> left;
  std::optional<Record> right;
  /// The state the key ends in if the merge executes; absent = the key
  /// ends deleted/absent. Unset for pure diffs (nothing executes).
  std::optional<Record> resolved;
  /// Columns both sides changed differently (three-way merges only).
  std::vector<size_t> conflict_columns;
};

/// Pull cursor over reconciled keys, in ascending pk order. Buffered:
/// the walk runs up front (a dry run needs the total conflict counts in
/// stats() anyway), Next() just streams.
class MergeCursor {
 public:
  virtual ~MergeCursor() = default;
  /// The next row, or nullptr at end or error (check status()). The row
  /// stays valid until the next call.
  virtual const MergeRow* Next() = 0;
  virtual const Status& status() const = 0;
  /// Totals over the whole walk (complete from the first call).
  virtual const MergeResult& stats() const = 0;
};

// ------------------------------------------------- engine walk substrate

/// One changed primary key streamed by StorageEngine::MergeWalk: the
/// key's record state at the left commit, the right commit and their
/// common ancestor. A null side means the key is not live at that commit
/// (never inserted, or deleted). Refs are valid only during the callback.
struct MergeWalkItem {
  int64_t pk = 0;
  const RecordRef* left = nullptr;
  const RecordRef* right = nullptr;
  const RecordRef* base = nullptr;
};

struct MergeWalkStats {
  uint64_t bytes_processed = 0;  ///< bytes the engine examined to walk
  uint64_t keys_emitted = 0;
};

/// Returning an error aborts the walk and surfaces the status.
using MergeWalkCallback = std::function<Status(const MergeWalkItem&)>;

// ------------------------------------------------------- shared staging

/// Everything a staged — not yet executed — merge produces: the ops that
/// transform the 'into' head into the merged state, the result counters,
/// and (when asked) the per-key rows a preview cursor streams. Staging is
/// pure: every data-dependent failure (callback error, walk error)
/// happens here, before anything is written anywhere.
struct MergePlan {
  explicit MergePlan(const Schema* schema) : batch(schema) {}

  MergeResult result;
  WriteBatch batch;
  std::vector<MergeRow> rows;
};

struct StageOptions {
  MergePolicy policy = MergePolicy::kThreeWayLeft;
  MergeResolution resolution = MergeResolution::kPolicy;
  const ConflictCallback* on_conflict = nullptr;  ///< for kCallback
  bool collect_rows = false;  ///< populate MergePlan::rows (previews)
  bool stage_ops = true;      ///< stage MergePlan::batch (execution)
};

/// Runs \p engine's MergeWalk over (\p left, \p right, \p base) and
/// reconciles every changed key under \p opts. \p left must be the
/// current committed head state of the branch the plan's batch will
/// apply to, so the staged deletes are valid by construction.
Status StageMerge(StorageEngine* engine, const Schema& schema,
                  CommitId left, CommitId right, CommitId base,
                  const StageOptions& opts, MergePlan* plan);

/// Three-way structured diff between two arbitrary commits: every key
/// whose state differs between \p a (left) and \p b (right), classified
/// added/removed/modified from a's point of view, with conflict marking
/// keys both commits changed since ancestor \p base. Rows only — nothing
/// is staged.
Status StageDiff(StorageEngine* engine, const Schema& schema,
                 CommitId a, CommitId b, CommitId base, MergePlan* plan);

/// Wraps a finished plan's rows into a cursor.
std::unique_ptr<MergeCursor> MakeMergeCursor(std::vector<MergeRow> rows,
                                             MergeResult stats);
/// An immediately-exhausted cursor carrying an error.
std::unique_ptr<MergeCursor> MakeFailedMergeCursor(Status status);

}  // namespace decibel

#endif  // DECIBEL_ENGINE_MERGE_SPEC_H_
