#include "engine/merge_spec.h"

#include <utility>

#include "engine/engine.h"
#include "engine/merge_util.h"

namespace decibel {

namespace {

/// True when the key's state differs between the two sides: present on
/// one and not the other, or present on both with different bytes.
bool StatesDiffer(const Schema& schema, const RecordRef* a,
                  const RecordRef* b) {
  if ((a != nullptr) != (b != nullptr)) return true;
  if (a == nullptr) return false;
  return RecordsDiffer(schema, *a, *b);
}

std::optional<Record> CopyState(const Schema& schema, const RecordRef* ref) {
  if (ref == nullptr) return std::nullopt;
  return Record(&schema, ref->data());
}

/// The write-batch op (if any) that moves the key from \p left to
/// \p final_state, plus the MergeChangeKind the row reports.
MergeChangeKind StageTransition(const Schema& schema, const RecordRef* left,
                                const std::optional<Record>& final_state,
                                int64_t pk, bool stage_ops,
                                WriteBatch* batch) {
  const bool left_present = left != nullptr;
  if (!final_state.has_value()) {
    if (!left_present) return MergeChangeKind::kNone;
    if (stage_ops) batch->Delete(pk);
    return MergeChangeKind::kDelete;
  }
  if (left_present &&
      !RecordsDiffer(schema, final_state->ref(), *left)) {
    return MergeChangeKind::kNone;
  }
  if (stage_ops) {
    if (left_present) {
      batch->Update(*final_state);
    } else {
      batch->Insert(*final_state);
    }
  }
  return left_present ? MergeChangeKind::kUpdate : MergeChangeKind::kAdd;
}

}  // namespace

Status StageMerge(StorageEngine* engine, const Schema& schema,
                  CommitId left, CommitId right, CommitId base,
                  const StageOptions& opts, MergePlan* plan) {
  if (opts.resolution == MergeResolution::kCallback &&
      (opts.on_conflict == nullptr || !*opts.on_conflict)) {
    return Status::InvalidArgument(
        "merge: kCallback resolution needs an on_conflict callback");
  }
  const uint32_t record_size =
      static_cast<uint32_t>(schema.record_size());
  // Precedence for non-callback resolutions; kLatestWins exploits the
  // monotonic commit-id allocation: the larger head committed later.
  bool left_wins = LeftWins(opts.policy);
  switch (opts.resolution) {
    case MergeResolution::kPolicy:
    case MergeResolution::kCallback:
      break;
    case MergeResolution::kOurs:
      left_wins = true;
      break;
    case MergeResolution::kTheirs:
      left_wins = false;
      break;
    case MergeResolution::kLatestWins:
      left_wins = left > right;
      break;
  }

  MergeWalkStats walk_stats;
  auto reconcile = [&](const MergeWalkItem& item) -> Status {
    // Agreement is not a conflict: both sides deleted, or both sides
    // wrote identical bytes (including both inserting the same record).
    if (!StatesDiffer(schema, item.left, item.right)) return Status::OK();

    const bool changed_l = StatesDiffer(schema, item.left, item.base);
    const bool changed_r = StatesDiffer(schema, item.right, item.base);
    plan->result.diff_bytes +=
        (changed_l && item.left != nullptr ? record_size : 0) +
        (changed_r && item.right != nullptr ? record_size : 0);

    MergeRow row;
    row.pk = item.pk;
    std::optional<Record> final_state;

    if (!changed_r) {
      // Only 'into' moved; the merge keeps its state.
      final_state = CopyState(schema, item.left);
    } else if (!changed_l) {
      // Only 'from' moved; adopt it (addition, update or delete).
      final_state = CopyState(schema, item.right);
    } else {
      // Both sides changed the key since the ancestor. Field-level
      // reconciliation needs all three versions; a delete on either side
      // or a double insert (no ancestor) resolves at record granularity.
      const bool field_level = IsThreeWay(opts.policy) &&
                               item.base != nullptr &&
                               item.left != nullptr && item.right != nullptr;
      FieldMergeOutcome outcome;
      if (field_level) {
        outcome = ThreeWayFieldMerge(schema, *item.base, *item.left,
                                     *item.right, left_wins);
        row.conflict_columns = outcome.conflict_columns;
      } else {
        outcome.conflict = true;
      }
      row.conflict = outcome.conflict;
      row.field_merge = outcome.needs_new_record;
      if (outcome.conflict) plan->result.conflicts++;
      if (outcome.needs_new_record) plan->result.field_merges++;

      if (outcome.conflict &&
          opts.resolution == MergeResolution::kCallback) {
        MergeConflict conflict;
        conflict.pk = item.pk;
        conflict.base = CopyState(schema, item.base);
        conflict.left = CopyState(schema, item.left);
        conflict.right = CopyState(schema, item.right);
        conflict.conflict_columns = row.conflict_columns;
        DECIBEL_ASSIGN_OR_RETURN(ConflictResolution verdict,
                                 (*opts.on_conflict)(conflict));
        switch (verdict.action) {
          case ConflictResolution::Action::kTakeLeft:
            final_state = CopyState(schema, item.left);
            break;
          case ConflictResolution::Action::kTakeRight:
            final_state = CopyState(schema, item.right);
            break;
          case ConflictResolution::Action::kDelete:
            final_state = std::nullopt;
            break;
          case ConflictResolution::Action::kCustom:
            if (!verdict.custom.has_value()) {
              return Status::InvalidArgument(
                  "merge: kCustom resolution without a record (pk " +
                  std::to_string(item.pk) + ")");
            }
            if (verdict.custom->ref().pk() != item.pk) {
              return Status::InvalidArgument(
                  "merge: kCustom resolution changes the primary key (pk " +
                  std::to_string(item.pk) + ")");
            }
            final_state = std::move(verdict.custom);
            break;
        }
      } else if (field_level && outcome.needs_new_record) {
        final_state = std::move(outcome.merged);
      } else if (field_level) {
        final_state = CopyState(
            schema, outcome.keep_left ? item.left : item.right);
      } else {
        final_state = CopyState(schema,
                                left_wins ? item.left : item.right);
      }
    }

    row.change = StageTransition(schema, item.left, final_state, item.pk,
                                 opts.stage_ops, &plan->batch);
    if (row.change != MergeChangeKind::kNone) plan->result.merged_records++;
    if (opts.collect_rows) {
      row.base = CopyState(schema, item.base);
      row.left = CopyState(schema, item.left);
      row.right = CopyState(schema, item.right);
      row.resolved = std::move(final_state);
      plan->rows.push_back(std::move(row));
    }
    return Status::OK();
  };

  DECIBEL_RETURN_NOT_OK(
      engine->MergeWalk(left, right, base, reconcile, &walk_stats));
  plan->result.bytes_processed = walk_stats.bytes_processed;
  return Status::OK();
}

Status StageDiff(StorageEngine* engine, const Schema& schema,
                 CommitId a, CommitId b, CommitId base, MergePlan* plan) {
  const uint32_t record_size =
      static_cast<uint32_t>(schema.record_size());
  MergeWalkStats walk_stats;
  auto classify = [&](const MergeWalkItem& item) -> Status {
    if (!StatesDiffer(schema, item.left, item.right)) return Status::OK();
    const bool changed_l = StatesDiffer(schema, item.left, item.base);
    const bool changed_r = StatesDiffer(schema, item.right, item.base);
    plan->result.diff_bytes +=
        (changed_l && item.left != nullptr ? record_size : 0) +
        (changed_r && item.right != nullptr ? record_size : 0);
    MergeRow row;
    row.pk = item.pk;
    row.conflict = changed_l && changed_r;
    if (row.conflict) plan->result.conflicts++;
    if (item.left == nullptr) {
      row.change = MergeChangeKind::kAdd;
    } else if (item.right == nullptr) {
      row.change = MergeChangeKind::kDelete;
    } else {
      row.change = MergeChangeKind::kUpdate;
    }
    plan->result.merged_records++;
    row.base = CopyState(schema, item.base);
    row.left = CopyState(schema, item.left);
    row.right = CopyState(schema, item.right);
    plan->rows.push_back(std::move(row));
    return Status::OK();
  };
  DECIBEL_RETURN_NOT_OK(
      engine->MergeWalk(a, b, base, classify, &walk_stats));
  plan->result.bytes_processed = walk_stats.bytes_processed;
  return Status::OK();
}

namespace {

class BufferedMergeCursor : public MergeCursor {
 public:
  BufferedMergeCursor(std::vector<MergeRow> rows, MergeResult stats,
                      Status status)
      : rows_(std::move(rows)),
        stats_(stats),
        status_(std::move(status)) {}

  const MergeRow* Next() override {
    if (!status_.ok() || pos_ >= rows_.size()) return nullptr;
    return &rows_[pos_++];
  }
  const Status& status() const override { return status_; }
  const MergeResult& stats() const override { return stats_; }

 private:
  std::vector<MergeRow> rows_;
  size_t pos_ = 0;
  MergeResult stats_;
  Status status_;
};

}  // namespace

std::unique_ptr<MergeCursor> MakeMergeCursor(std::vector<MergeRow> rows,
                                             MergeResult stats) {
  return std::make_unique<BufferedMergeCursor>(std::move(rows), stats,
                                               Status::OK());
}

std::unique_ptr<MergeCursor> MakeFailedMergeCursor(Status status) {
  return std::make_unique<BufferedMergeCursor>(std::vector<MergeRow>{},
                                               MergeResult{},
                                               std::move(status));
}

}  // namespace decibel
