#include "engine/engine.h"

#include "engine/hybrid.h"
#include "engine/scan_util.h"
#include "engine/tuple_first.h"
#include "engine/version_first.h"

namespace decibel {

Result<std::unique_ptr<ScanCursor>> MakeDiffScanCursor(
    StorageEngine* engine, const ScanSpec& spec, ScanCounters* counters) {
  const Schema& schema = engine->schema();
  const PreparedPredicate prepared(spec.predicate, schema);
  const uint32_t row_bytes = ProjectedRowBytes(schema, spec.projection);
  auto cursor = std::make_unique<BufferedCursor>(&schema, counters);
  ScanStats* stats = cursor->mutable_stats();
  DECIBEL_RETURN_NOT_OK(engine->Diff(
      spec.branch, spec.diff_base, spec.diff_mode,
      [&](const RecordRef& rec) {
        if (spec.limit != 0 && cursor->buffered() >= spec.limit) return;
        ++stats->rows_scanned;
        stats->bytes_scanned += row_bytes;
        if (!prepared.Matches(rec.data().data())) return;
        cursor->AddRow(rec.data(), spec.projection);
      },
      /*neg=*/nullptr));
  return std::unique_ptr<ScanCursor>(std::move(cursor));
}

const char* EngineTypeName(EngineType type) {
  switch (type) {
    case EngineType::kTupleFirst:
      return "tuple-first";
    case EngineType::kVersionFirst:
      return "version-first";
    case EngineType::kHybrid:
      return "hybrid";
  }
  return "unknown";
}

Result<std::unique_ptr<StorageEngine>> MakeEngine(
    EngineType type, const Schema& schema, const EngineOptions& options) {
  switch (type) {
    case EngineType::kTupleFirst: {
      DECIBEL_ASSIGN_OR_RETURN(auto engine,
                               TupleFirstEngine::Make(schema, options));
      return std::unique_ptr<StorageEngine>(std::move(engine));
    }
    case EngineType::kVersionFirst: {
      DECIBEL_ASSIGN_OR_RETURN(auto engine,
                               VersionFirstEngine::Make(schema, options));
      return std::unique_ptr<StorageEngine>(std::move(engine));
    }
    case EngineType::kHybrid: {
      DECIBEL_ASSIGN_OR_RETURN(auto engine,
                               HybridEngine::Make(schema, options));
      return std::unique_ptr<StorageEngine>(std::move(engine));
    }
  }
  return Status::InvalidArgument("unknown engine type");
}

}  // namespace decibel
