#include "engine/engine.h"

#include "common/coding.h"
#include "engine/hybrid.h"
#include "engine/scan_util.h"
#include "engine/tuple_first.h"
#include "engine/version_first.h"

namespace decibel {

Result<std::unique_ptr<ScanCursor>> MakeDiffScanCursor(
    StorageEngine* engine, const ScanSpec& spec, ScanCounters* counters) {
  const Schema& schema = engine->schema();
  const PreparedPredicate prepared(spec.predicate, schema);
  const uint32_t row_bytes = ProjectedRowBytes(schema, spec.projection);
  auto cursor = std::make_unique<BufferedCursor>(&schema, counters);
  ScanStats* stats = cursor->mutable_stats();
  DECIBEL_RETURN_NOT_OK(engine->Diff(
      spec.branch, spec.diff_base, spec.diff_mode,
      [&](const RecordRef& rec) {
        if (spec.limit != 0 && cursor->buffered() >= spec.limit) return;
        ++stats->rows_scanned;
        stats->bytes_scanned += row_bytes;
        if (!prepared.Matches(rec.data().data())) return;
        cursor->AddRow(rec.data(), spec.projection);
      },
      /*neg=*/nullptr));
  return std::unique_ptr<ScanCursor>(std::move(cursor));
}

void PutEngineMetaHeader(std::string* meta) {
  PutFixed32(meta, kEngineMetaMagic);
  PutVarint32(meta, kEngineMetaVersion);
}

Status CheckEngineMetaHeader(Slice* input, const char* engine_name) {
  const std::string name(engine_name);
  if (input->size() < sizeof(uint32_t) ||
      DecodeFixed32(input->data()) != kEngineMetaMagic) {
    return Status::InvalidArgument(
        name + ": engine.meta has no format header — written by an older "
               "incompatible release; this version cannot open it");
  }
  input->RemovePrefix(sizeof(uint32_t));
  uint32_t version;
  if (!GetVarint32(input, &version)) {
    return Status::Corruption(name + ": truncated engine.meta header");
  }
  if (version != kEngineMetaVersion) {
    return Status::InvalidArgument(
        name + ": unsupported engine.meta format version " +
        std::to_string(version) + " (expected " +
        std::to_string(kEngineMetaVersion) + ")");
  }
  return Status::OK();
}

const char* EngineTypeName(EngineType type) {
  switch (type) {
    case EngineType::kTupleFirst:
      return "tuple-first";
    case EngineType::kVersionFirst:
      return "version-first";
    case EngineType::kHybrid:
      return "hybrid";
  }
  return "unknown";
}

Result<std::unique_ptr<StorageEngine>> MakeEngine(
    EngineType type, const Schema& schema, const EngineOptions& options) {
  switch (type) {
    case EngineType::kTupleFirst: {
      DECIBEL_ASSIGN_OR_RETURN(auto engine,
                               TupleFirstEngine::Make(schema, options));
      return std::unique_ptr<StorageEngine>(std::move(engine));
    }
    case EngineType::kVersionFirst: {
      DECIBEL_ASSIGN_OR_RETURN(auto engine,
                               VersionFirstEngine::Make(schema, options));
      return std::unique_ptr<StorageEngine>(std::move(engine));
    }
    case EngineType::kHybrid: {
      DECIBEL_ASSIGN_OR_RETURN(auto engine,
                               HybridEngine::Make(schema, options));
      return std::unique_ptr<StorageEngine>(std::move(engine));
    }
  }
  return Status::InvalidArgument("unknown engine type");
}

}  // namespace decibel
