#include "engine/engine.h"

#include "engine/hybrid.h"
#include "engine/tuple_first.h"
#include "engine/version_first.h"

namespace decibel {

const char* EngineTypeName(EngineType type) {
  switch (type) {
    case EngineType::kTupleFirst:
      return "tuple-first";
    case EngineType::kVersionFirst:
      return "version-first";
    case EngineType::kHybrid:
      return "hybrid";
  }
  return "unknown";
}

Result<std::unique_ptr<StorageEngine>> MakeEngine(
    EngineType type, const Schema& schema, const EngineOptions& options) {
  switch (type) {
    case EngineType::kTupleFirst: {
      DECIBEL_ASSIGN_OR_RETURN(auto engine,
                               TupleFirstEngine::Make(schema, options));
      return std::unique_ptr<StorageEngine>(std::move(engine));
    }
    case EngineType::kVersionFirst: {
      DECIBEL_ASSIGN_OR_RETURN(auto engine,
                               VersionFirstEngine::Make(schema, options));
      return std::unique_ptr<StorageEngine>(std::move(engine));
    }
    case EngineType::kHybrid: {
      DECIBEL_ASSIGN_OR_RETURN(auto engine,
                               HybridEngine::Make(schema, options));
      return std::unique_ptr<StorageEngine>(std::move(engine));
    }
  }
  return Status::InvalidArgument("unknown engine type");
}

}  // namespace decibel
