#ifndef DECIBEL_ENGINE_TUPLE_FIRST_H_
#define DECIBEL_ENGINE_TUPLE_FIRST_H_

/// \file tuple_first.h
/// The tuple-first storage engine (§3.2): every tuple that has ever
/// existed in any version lives in a single shared heap file; a bitmap
/// index with one bit per (tuple, branch) records liveness. Branching
/// clones a bitmap column; commits snapshot a column into a per-branch
/// XOR-delta commit history; diffs and multi-branch scans are bitmap
/// algebra; single-branch scans pay for the interleaving of branches in
/// the shared file.

#include <memory>
#include <mutex>
#include <unordered_map>

#include "bitmap/commit_history.h"
#include "engine/engine.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"

namespace decibel {

class TupleFirstEngine : public StorageEngine {
 public:
  /// Creates a fresh engine in options.directory, or reopens one that was
  /// previously flushed there.
  static Result<std::unique_ptr<TupleFirstEngine>> Make(
      const Schema& schema, const EngineOptions& options);

  EngineType type() const override { return EngineType::kTupleFirst; }
  const Schema& schema() const override { return schema_; }

  Status CreateBranch(BranchId child, BranchId parent, CommitId base_commit,
                      bool at_head) override;
  Status Commit(BranchId branch, CommitId commit_id) override;
  Status Checkout(CommitId commit) override;

  Status ApplyBatch(BranchId branch, const WriteBatch& batch) override;

  Result<std::unique_ptr<ScanCursor>> NewScan(const ScanSpec& spec) override;
  Result<Record> Get(BranchId branch, int64_t pk) override;
  Status Diff(BranchId a, BranchId b, DiffMode mode, const DiffCallback& pos,
              const DiffCallback& neg) override;
  Result<MergeResult> Merge(BranchId into, BranchId from, CommitId lca,
                            CommitId new_commit, MergePolicy policy) override;

  Status Flush() override;
  void DropCaches() override { pool_.EvictAll(); }
  EngineStats Stats() const override;

  /// Reconstructs the bitmap snapshotted at \p commit (exposed for tests
  /// and the bitmap micro-benchmarks).
  Result<Bitmap> CommitBitmap(CommitId commit);

 private:
  TupleFirstEngine(const Schema& schema, const EngineOptions& options)
      : schema_(schema), options_(options), pool_(options.buffer_pool_bytes) {}

  Status LoadExisting();
  Status InitFresh();
  /// The commit-history file for \p branch, creating it on first use.
  Result<CommitHistory*> HistoryFor(BranchId branch);
  /// Commit body without write_mu_, for callers already holding it.
  Status CommitImpl(BranchId branch, CommitId commit_id);
  /// Rebuilds branch \p b's pk index by scanning its bitmap column.
  Status RebuildPkIndex(BranchId b);
  std::string MetaPath() const;
  std::string HistoryPath(BranchId branch) const;

  using PkIndex = std::unordered_map<int64_t, uint64_t>;  // pk -> record idx

  Schema schema_;
  EngineOptions options_;
  BufferPool pool_;
  /// Lifetime scan-work totals (EngineStats::rows_scanned/bytes_scanned).
  ScanCounters scan_counters_;
  /// Serializes the mutating entry points (ApplyBatch, CreateBranch,
  /// Merge, Commit) across branches: tuple-first shares one heap file and
  /// one bitmap universe between all branches, so the facade's per-branch
  /// locks are not enough to keep concurrent operations on distinct
  /// branches from interleaving their index reservations or racing a
  /// branch clone against a bitmap resize.
  std::mutex write_mu_;
  std::unique_ptr<HeapFile> heap_;
  std::unique_ptr<BitmapIndex> index_;
  std::unordered_map<BranchId, PkIndex> pk_index_;
  std::unordered_map<BranchId, std::unique_ptr<CommitHistory>> histories_;
  std::unordered_map<CommitId, BranchId> commit_branch_;
};

}  // namespace decibel

#endif  // DECIBEL_ENGINE_TUPLE_FIRST_H_
