#ifndef DECIBEL_ENGINE_TUPLE_FIRST_H_
#define DECIBEL_ENGINE_TUPLE_FIRST_H_

/// \file tuple_first.h
/// The tuple-first storage engine (§3.2): every tuple that has ever
/// existed in any version lives in one shared global index space; a
/// bitmap index with one bit per (tuple, branch) records liveness.
/// Branching clones a bitmap column; commits snapshot a column into a
/// per-branch XOR-delta commit history; diffs and multi-branch scans are
/// bitmap algebra; single-branch scans pay for the interleaving of
/// branches in the shared file.
///
/// Concurrency: writers on disjoint branches proceed in parallel. The
/// lock hierarchy is registry_mu_ (shape of the branch registries, taken
/// shared by every operation and unique only by branch creation and
/// flush) -> stripe locks (branch % write_stripes; all per-branch state —
/// the pk index, the branch's bitmap column, its heap-file shard's tail)
/// -> commit_mu_ (the commit registry, a leaf). Cross-branch operations
/// needing several stripes take them in ascending order; MergeWalk works
/// off committed bitmap snapshots and takes no stripe locks. Readers
/// materialize a bitmap snapshot under the stripe lock, snapshot the
/// heap's extent mapping, and then stream without any lock.

#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>

#include "bitmap/commit_history.h"
#include "common/stripe_lock.h"
#include "engine/engine.h"
#include "storage/buffer_pool.h"
#include "storage/striped_heap.h"

namespace decibel {

class TupleFirstEngine : public StorageEngine {
 public:
  /// Creates a fresh engine in options.directory, or reopens one that was
  /// previously flushed there.
  static Result<std::unique_ptr<TupleFirstEngine>> Make(
      const Schema& schema, const EngineOptions& options);

  EngineType type() const override { return EngineType::kTupleFirst; }
  const Schema& schema() const override { return schema_; }

  Status CreateBranch(BranchId child, BranchId parent, CommitId base_commit,
                      bool at_head) override;
  Status Commit(BranchId branch, CommitId commit_id) override;
  Status Checkout(CommitId commit) override;

  Status ApplyBatch(BranchId branch, const WriteBatch& batch) override;

  Result<std::unique_ptr<ScanCursor>> NewScan(const ScanSpec& spec) override;
  Result<Record> Get(BranchId branch, int64_t pk) override;
  Status Diff(BranchId a, BranchId b, DiffMode mode, const DiffCallback& pos,
              const DiffCallback& neg) override;
  Status MergeWalk(CommitId left, CommitId right, CommitId base,
                   const MergeWalkCallback& cb, MergeWalkStats* stats) override;
  Status ReleaseBranch(BranchId branch) override;

  Status Flush() override;
  Status Checkpoint(const std::string& tag, bool sync) override;
  Status RemoveCheckpoint(const std::string& tag) override;
  void DropCaches() override { pool_.EvictAll(); }
  EngineStats Stats() const override;

  /// Reconstructs the bitmap snapshotted at \p commit (exposed for tests
  /// and the bitmap micro-benchmarks).
  Result<Bitmap> CommitBitmap(CommitId commit);

 private:
  /// Holds the write stripes of a set of branches — or every stripe when
  /// the tuple-oriented matrix is in use, because its Set()/EnsureTuples
  /// reallocate storage shared by all branches.
  class StripeGuard {
   public:
    StripeGuard(const TupleFirstEngine* engine,
                std::initializer_list<BranchId> branches) {
      if (engine->options_.orientation == BitmapOrientation::kTupleOriented) {
        all_.emplace(engine->stripes_);
      } else {
        some_.emplace(engine->stripes_, branches);
      }
    }
    StripeGuard(const TupleFirstEngine* engine,
                const std::vector<BranchId>& branches) {
      if (engine->options_.orientation == BitmapOrientation::kTupleOriented) {
        all_.emplace(engine->stripes_);
      } else {
        some_.emplace(engine->stripes_, branches);
      }
    }

   private:
    std::optional<StripeLocks::MultiGuard> some_;
    std::optional<StripeLocks::AllGuard> all_;
  };

  TupleFirstEngine(const Schema& schema, const EngineOptions& options)
      : schema_(schema),
        options_(options),
        pool_(options.buffer_pool_bytes),
        stripes_(options.write_stripes == 0 ? 1 : options.write_stripes) {}

  Status LoadExisting();
  Status InitFresh();
  uint32_t StripeOf(BranchId branch) const {
    return static_cast<uint32_t>(stripes_.IndexOf(branch));
  }
  /// The commit-history file for \p branch, creating it on first use.
  /// Takes commit_mu_ internally.
  Result<CommitHistory*> HistoryFor(BranchId branch);
  /// Commit body; caller holds registry (shared or unique) and the
  /// branch's stripe.
  Status CommitImpl(BranchId branch, CommitId commit_id);
  /// Rebuilds branch \p b's pk index by scanning its bitmap column.
  /// Caller holds the registry unique (load/branch-create paths).
  Status RebuildPkIndex(BranchId b);
  std::string MetaPath(const std::string& tag = "") const;
  std::string HistoryPath(BranchId branch) const;
  /// Serializes the engine meta (schema, bitmap index, commit registry,
  /// branch list, per-branch history byte sizes). Caller holds the
  /// registry unique.
  std::string EncodeMeta();

  using PkIndex = std::unordered_map<int64_t, uint64_t>;  // pk -> record idx

  Schema schema_;
  EngineOptions options_;
  BufferPool pool_;
  /// Lifetime scan-work totals (EngineStats::rows_scanned/bytes_scanned).
  ScanCounters scan_counters_;

  /// Shape of the branch registries (pk_index_ keys, bitmap branch set).
  /// Writers/readers take it shared; CreateBranch and Flush take it
  /// unique. Ordered before the stripe locks.
  mutable std::shared_mutex registry_mu_;
  /// Per-branch write serialization; see file comment for the hierarchy.
  mutable StripeLocks stripes_;
  /// Leaf lock: commit_branch_ and the histories_ map shape. Never
  /// acquire another engine lock while holding it.
  mutable std::mutex commit_mu_;

  std::unique_ptr<StripedHeap> heap_;
  std::unique_ptr<BitmapIndex> index_;
  std::unordered_map<BranchId, PkIndex> pk_index_;
  std::unordered_map<BranchId, std::unique_ptr<CommitHistory>> histories_;
  std::unordered_map<CommitId, BranchId> commit_branch_;
};

}  // namespace decibel

#endif  // DECIBEL_ENGINE_TUPLE_FIRST_H_
