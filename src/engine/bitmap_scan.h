#ifndef DECIBEL_ENGINE_BITMAP_SCAN_H_
#define DECIBEL_ENGINE_BITMAP_SCAN_H_

/// \file bitmap_scan.h
/// Iterating heap-file records selected by a bitmap — the inner loop of
/// the tuple-first and hybrid engines. Pins one page at a time and skips
/// directly between set bits, so sparse branches touch only the pages
/// they occupy (the clustering benefit hybrid gets from small segments).

#include "bitmap/bitmap.h"
#include "common/status.h"
#include "engine/scan_spec.h"
#include "storage/heap_file.h"
#include "storage/record.h"

namespace decibel {

class BitmapScanner {
 public:
  /// \p bits must outlive the scanner.
  BitmapScanner(HeapFile* heap, const Schema* schema, const Bitmap* bits)
      : heap_(heap), schema_(schema), bits_(bits) {}

  /// Turns on zone-map page skipping: pages whose zone maps rule out
  /// \p predicate (or whose compressed strips prove zero matches) are
  /// stepped over without decoding. Sound because the bitmap already
  /// resolved version visibility — skipped records were only ever going
  /// to be filtered out. \p stats (optional) receives pages_skipped and
  /// bytes_read. Both pointers must outlive the scanner.
  void EnablePruning(const PreparedPredicate* predicate, ScanStats* stats) {
    predicate_ = predicate;
    stats_ = stats;
  }

  /// Advances to the next selected record. Returns false at end or error.
  bool Next(RecordRef* out, uint64_t* index) {
    if (!status_.ok()) return false;
    const uint64_t limit = heap_->num_records();
    const uint64_t rpp = heap_->records_per_page();
    for (;;) {
      const uint64_t next = bits_->NextSet(pos_);
      if (next == UINT64_MAX || next >= limit) return false;
      pos_ = next + 1;
      const uint64_t page_no = next / rpp;
      if (page_no != pinned_page_no_) {
        if (page_no == skip_page_no_) continue;
        if (predicate_ != nullptr &&
            !heap_->PageMayMatch(page_no, *predicate_)) {
          skip_page_no_ = page_no;
          if (stats_ != nullptr) ++stats_->pages_skipped;
          continue;
        }
        bool no_matches = false;
        auto page = heap_->PinPageCounted(page_no, predicate_, &no_matches);
        if (!page.ok()) {
          status_ = page.status();
          return false;
        }
        if (stats_ != nullptr) stats_->bytes_read += page.value().io_bytes;
        if (no_matches) {
          skip_page_no_ = page_no;
          if (stats_ != nullptr) ++stats_->pages_skipped;
          continue;
        }
        page_ = std::move(page).MoveValueUnsafe();
        pinned_page_no_ = page_no;
      }
      const uint64_t slot = next % rpp;
      *out = RecordRef(
          schema_,
          Slice(page_.payload + slot * heap_->record_size(),
                heap_->record_size()));
      if (index != nullptr) *index = next;
      return true;
    }
  }

  const Status& status() const { return status_; }

 private:
  HeapFile* heap_;
  const Schema* schema_;
  const Bitmap* bits_;
  const PreparedPredicate* predicate_ = nullptr;
  ScanStats* stats_ = nullptr;
  uint64_t pos_ = 0;
  HeapFile::PinnedPage page_;
  uint64_t pinned_page_no_ = UINT64_MAX;
  uint64_t skip_page_no_ = UINT64_MAX;
  Status status_;
};

}  // namespace decibel

#endif  // DECIBEL_ENGINE_BITMAP_SCAN_H_
