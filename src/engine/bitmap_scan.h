#ifndef DECIBEL_ENGINE_BITMAP_SCAN_H_
#define DECIBEL_ENGINE_BITMAP_SCAN_H_

/// \file bitmap_scan.h
/// Iterating heap-file records selected by a bitmap — the inner loop of
/// the tuple-first and hybrid engines. Pins one page at a time and skips
/// directly between set bits, so sparse branches touch only the pages
/// they occupy (the clustering benefit hybrid gets from small segments).

#include "bitmap/bitmap.h"
#include "common/status.h"
#include "storage/heap_file.h"
#include "storage/record.h"

namespace decibel {

class BitmapScanner {
 public:
  /// \p bits must outlive the scanner.
  BitmapScanner(HeapFile* heap, const Schema* schema, const Bitmap* bits)
      : heap_(heap), schema_(schema), bits_(bits) {}

  /// Advances to the next selected record. Returns false at end or error.
  bool Next(RecordRef* out, uint64_t* index) {
    if (!status_.ok()) return false;
    const uint64_t limit = heap_->num_records();
    uint64_t next = bits_->NextSet(pos_);
    if (next == UINT64_MAX || next >= limit) return false;
    pos_ = next + 1;
    const uint64_t page_no = next / heap_->records_per_page();
    if (page_no != pinned_page_no_) {
      auto page = heap_->PinPage(page_no);
      if (!page.ok()) {
        status_ = page.status();
        return false;
      }
      page_ = std::move(page).MoveValueUnsafe();
      pinned_page_no_ = page_no;
    }
    const uint64_t slot = next % heap_->records_per_page();
    *out = RecordRef(
        schema_,
        Slice(page_.payload + slot * heap_->record_size(),
              heap_->record_size()));
    if (index != nullptr) *index = next;
    return true;
  }

  const Status& status() const { return status_; }

 private:
  HeapFile* heap_;
  const Schema* schema_;
  const Bitmap* bits_;
  uint64_t pos_ = 0;
  HeapFile::PinnedPage page_;
  uint64_t pinned_page_no_ = UINT64_MAX;
  Status status_;
};

}  // namespace decibel

#endif  // DECIBEL_ENGINE_BITMAP_SCAN_H_
