#ifndef DECIBEL_ENGINE_HYBRID_H_
#define DECIBEL_ENGINE_HYBRID_H_

/// \file hybrid.h
/// The hybrid storage engine (§3.4): data lives in version-first style
/// segment heap files (clustering records with common ancestry), while
/// liveness is tracked tuple-first style — one small branch-oriented
/// bitmap index *local to each segment*, plus a global branch x segment
/// bitmap that maps each branch to the segments holding at least one of
/// its live records. Scans consult the global bitmap to skip irrelevant
/// segments entirely (and may scan segments in parallel); diffs and merges
/// run the tuple-first bitmap algorithms per segment.
///
/// Segments are either *head* segments (the working tail of one branch)
/// or *internal* segments (frozen at the first branch taken from them).
///
/// Concurrency: a branch's writes touch only its own head-segment tail,
/// its own pk index, and its own columns of the per-segment local
/// bitmaps (a column is private to its branch even when the segment is
/// shared with siblings), so writers on disjoint branches proceed in
/// parallel. The lock hierarchy is registry_mu_ (the segments_ vector,
/// head_seg_/branch_segments_/pk_index_/dirty_ map shapes, and the local
/// indexes' column sets; writers take it shared, CreateBranch/Flush
/// take it unique) -> stripe locks (branch % write_stripes) ->
/// commit_mu_ (the commit registries, a leaf). Scans materialize bitmap
/// copies under the stripe lock, capture per-segment file pointers, and
/// stream without any lock.

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bitmap/commit_history.h"
#include "common/stripe_lock.h"
#include "engine/engine.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"

namespace decibel {

class HybridEngine : public StorageEngine {
 public:
  static Result<std::unique_ptr<HybridEngine>> Make(
      const Schema& schema, const EngineOptions& options);

  EngineType type() const override { return EngineType::kHybrid; }
  const Schema& schema() const override { return schema_; }

  Status CreateBranch(BranchId child, BranchId parent, CommitId base_commit,
                      bool at_head) override;
  Status Commit(BranchId branch, CommitId commit_id) override;
  Status Checkout(CommitId commit) override;

  Status ApplyBatch(BranchId branch, const WriteBatch& batch) override;

  Result<std::unique_ptr<ScanCursor>> NewScan(const ScanSpec& spec) override;
  Result<Record> Get(BranchId branch, int64_t pk) override;
  Status Diff(BranchId a, BranchId b, DiffMode mode, const DiffCallback& pos,
              const DiffCallback& neg) override;
  Status MergeWalk(CommitId left, CommitId right, CommitId base,
                   const MergeWalkCallback& cb, MergeWalkStats* stats) override;
  Status ReleaseBranch(BranchId branch) override;

  Status Flush() override;
  Status Checkpoint(const std::string& tag, bool sync) override;
  Status RemoveCheckpoint(const std::string& tag) override;
  void DropCaches() override { pool_.EvictAll(); }
  EngineStats Stats() const override;

 private:
  struct Segment {
    uint32_t id = 0;
    /// Branch whose head this is (meaningful while is_head).
    BranchId owner = kInvalidBranch;
    bool is_head = false;
    std::unique_ptr<HeapFile> file;
    /// Local bitmap index: one column per branch with records inherited
    /// from this segment (§3.4).
    BranchOrientedIndex local;
  };

  /// Physical record location.
  struct Loc {
    uint32_t seg = 0;
    uint64_t idx = 0;
  };

  HybridEngine(const Schema& schema, const EngineOptions& options)
      : schema_(schema),
        options_(options),
        pool_(options.buffer_pool_bytes),
        stripes_(options.write_stripes == 0 ? 1 : options.write_stripes) {}

  Status InitFresh();
  Status LoadExisting();
  std::string MetaPath(const std::string& tag = "") const;
  std::string SegmentPath(uint32_t seg) const;
  std::string HistoryPath(BranchId branch, uint32_t seg) const;
  /// Serializes the engine meta (schema, segments with local indexes and
  /// checkpoint state, heads, branch-segment bitmap, commit and history
  /// registries with history byte sizes). Caller holds the registry
  /// unique.
  std::string EncodeMeta();

  /// Caller holds registry_mu_ unique (grows segments_ and the maps).
  Result<uint32_t> NewHeadSegment(BranchId owner);
  /// The (branch, segment) commit history, creating it on first use.
  /// Takes commit_mu_ internally for the registry maps.
  Result<CommitHistory*> HistoryFor(BranchId branch, uint32_t seg);
  /// Commit body; caller holds registry_mu_ (shared or unique) and the
  /// branch's stripe. Takes commit_mu_ internally.
  Status CommitImpl(BranchId branch, CommitId commit_id);
  /// dirty_ entries are pre-created when the branch is created, so this
  /// only mutates the per-branch set — safe under the branch's stripe.
  void MarkDirty(BranchId branch, uint32_t seg) {
    dirty_[branch].insert(seg);
  }
  /// Segments whose bit is set in branch \p b's row of the global bitmap.
  std::vector<uint32_t> SegmentsOf(BranchId b) const;
  /// Restores the per-segment columns of \p branch as of \p commit.
  Status CommitColumns(CommitId commit,
                       std::vector<std::pair<uint32_t, Bitmap>>* out);
  Status RebuildPkIndex(BranchId b);

  Schema schema_;
  EngineOptions options_;
  BufferPool pool_;
  /// Lifetime scan-work totals (EngineStats::rows_scanned/bytes_scanned);
  /// mutable so cursors over a const engine can flush into it.
  mutable ScanCounters scan_counters_;

  /// Shape of segments_, the branch maps, and the local indexes' column
  /// sets: writers take it shared, CreateBranch/Flush take it
  /// unique. Ordered before the stripe locks.
  mutable std::shared_mutex registry_mu_;
  /// Per-branch write serialization; see file comment for the hierarchy.
  mutable StripeLocks stripes_;
  /// Leaf lock: histories_/history_segs_/commit_branch_ shape. Never
  /// acquire another engine lock while holding it.
  mutable std::mutex commit_mu_;

  std::vector<std::unique_ptr<Segment>> segments_;
  std::unordered_map<BranchId, uint32_t> head_seg_;
  /// The global branch-segment bitmap: row per branch, bit per segment.
  std::unordered_map<BranchId, Bitmap> branch_segments_;
  using PkIndex = std::unordered_map<int64_t, Loc>;
  std::unordered_map<BranchId, PkIndex> pk_index_;

  /// Commit storage: one history file per (branch, segment) (§5.3).
  std::unordered_map<uint64_t, std::unique_ptr<CommitHistory>> histories_;
  std::unordered_map<BranchId, std::vector<uint32_t>> history_segs_;
  std::unordered_map<BranchId, std::unordered_set<uint32_t>> dirty_;
  std::unordered_map<CommitId, BranchId> commit_branch_;

  /// One unit of a segmented scan: a segment plus the bitmap(s) selecting
  /// its rows (cols carries per-requested-branch columns for multi views).
  /// The file pointer is captured under the registry lock at open so
  /// cursors stream without re-reading segments_ (Segment objects are
  /// stable; only the vector itself reallocates as branches appear).
  struct ScanPart {
    uint32_t seg = 0;
    HeapFile* file = nullptr;
    Bitmap unioned;
    std::vector<Bitmap> cols;
  };

  /// Builds the scan units for \p spec's view, dropping segments whose
  /// file-level zone map rules out the predicate entirely (each drop adds
  /// one to *\p segments_skipped). Sound because the local bitmaps
  /// resolve visibility — a dropped segment's selected rows could only
  /// ever have failed the predicate.
  Result<std::vector<ScanPart>> BuildScanParts(const ScanSpec& spec,
                                               uint64_t* segments_skipped);
  Result<std::unique_ptr<ScanCursor>> ParallelScan(
      std::vector<ScanPart> parts, uint64_t segments_skipped,
      const ScanSpec& spec, int threads);

  class PartsCursor;
};

}  // namespace decibel

#endif  // DECIBEL_ENGINE_HYBRID_H_
