#ifndef DECIBEL_ENGINE_HYBRID_H_
#define DECIBEL_ENGINE_HYBRID_H_

/// \file hybrid.h
/// The hybrid storage engine (§3.4): data lives in version-first style
/// segment heap files (clustering records with common ancestry), while
/// liveness is tracked tuple-first style — one small branch-oriented
/// bitmap index *local to each segment*, plus a global branch x segment
/// bitmap that maps each branch to the segments holding at least one of
/// its live records. Scans consult the global bitmap to skip irrelevant
/// segments entirely (and may scan segments in parallel); diffs and merges
/// run the tuple-first bitmap algorithms per segment.
///
/// Segments are either *head* segments (the working tail of one branch)
/// or *internal* segments (frozen at the first branch taken from them).

#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bitmap/commit_history.h"
#include "engine/engine.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"

namespace decibel {

class HybridEngine : public StorageEngine {
 public:
  static Result<std::unique_ptr<HybridEngine>> Make(
      const Schema& schema, const EngineOptions& options);

  EngineType type() const override { return EngineType::kHybrid; }
  const Schema& schema() const override { return schema_; }

  Status CreateBranch(BranchId child, BranchId parent, CommitId base_commit,
                      bool at_head) override;
  Status Commit(BranchId branch, CommitId commit_id) override;
  Status Checkout(CommitId commit) override;

  Status ApplyBatch(BranchId branch, const WriteBatch& batch) override;

  Result<std::unique_ptr<ScanCursor>> NewScan(const ScanSpec& spec) override;
  Result<Record> Get(BranchId branch, int64_t pk) override;
  Status Diff(BranchId a, BranchId b, DiffMode mode, const DiffCallback& pos,
              const DiffCallback& neg) override;
  Result<MergeResult> Merge(BranchId into, BranchId from, CommitId lca,
                            CommitId new_commit, MergePolicy policy) override;

  Status Flush() override;
  void DropCaches() override { pool_.EvictAll(); }
  EngineStats Stats() const override;

 private:
  struct Segment {
    uint32_t id = 0;
    /// Branch whose head this is (meaningful while is_head).
    BranchId owner = kInvalidBranch;
    bool is_head = false;
    std::unique_ptr<HeapFile> file;
    /// Local bitmap index: one column per branch with records inherited
    /// from this segment (§3.4).
    BranchOrientedIndex local;
  };

  /// Physical record location.
  struct Loc {
    uint32_t seg = 0;
    uint64_t idx = 0;
  };

  HybridEngine(const Schema& schema, const EngineOptions& options)
      : schema_(schema), options_(options), pool_(options.buffer_pool_bytes) {}

  Status InitFresh();
  Status LoadExisting();
  std::string MetaPath() const;
  std::string SegmentPath(uint32_t seg) const;
  std::string HistoryPath(BranchId branch, uint32_t seg) const;

  Result<uint32_t> NewHeadSegment(BranchId owner);
  Result<CommitHistory*> HistoryFor(BranchId branch, uint32_t seg);
  /// Commit body without write_mu_, for callers already holding it.
  Status CommitImpl(BranchId branch, CommitId commit_id);
  void MarkDirty(BranchId branch, uint32_t seg) {
    dirty_[branch].insert(seg);
  }
  /// Segments whose bit is set in branch \p b's row of the global bitmap.
  std::vector<uint32_t> SegmentsOf(BranchId b) const;
  /// Restores the per-segment columns of \p branch as of \p commit.
  Status CommitColumns(CommitId commit,
                       std::vector<std::pair<uint32_t, Bitmap>>* out);
  Status RebuildPkIndex(BranchId b);

  Schema schema_;
  EngineOptions options_;
  BufferPool pool_;
  /// Lifetime scan-work totals (EngineStats::rows_scanned/bytes_scanned);
  /// mutable so cursors over a const engine can flush into it.
  mutable ScanCounters scan_counters_;

  /// Serializes the mutating entry points (ApplyBatch, CreateBranch,
  /// Merge, Commit) across branches: although each branch appends to its
  /// own head segment, updates and deletes of records inherited from a
  /// shared ancestor segment flip bits in that segment's local bitmap,
  /// which sibling branches share — the facade's per-branch locks cannot
  /// order those.
  std::mutex write_mu_;

  std::vector<std::unique_ptr<Segment>> segments_;
  std::unordered_map<BranchId, uint32_t> head_seg_;
  /// The global branch-segment bitmap: row per branch, bit per segment.
  std::unordered_map<BranchId, Bitmap> branch_segments_;
  using PkIndex = std::unordered_map<int64_t, Loc>;
  std::unordered_map<BranchId, PkIndex> pk_index_;

  /// Commit storage: one history file per (branch, segment) (§5.3).
  std::unordered_map<uint64_t, std::unique_ptr<CommitHistory>> histories_;
  std::unordered_map<BranchId, std::vector<uint32_t>> history_segs_;
  std::unordered_map<BranchId, std::unordered_set<uint32_t>> dirty_;
  std::unordered_map<CommitId, BranchId> commit_branch_;

  /// One unit of a segmented scan: a segment plus the bitmap(s) selecting
  /// its rows (cols carries per-requested-branch columns for multi views).
  struct ScanPart {
    uint32_t seg = 0;
    Bitmap unioned;
    std::vector<Bitmap> cols;
  };

  Result<std::vector<ScanPart>> BuildScanParts(const ScanSpec& spec);
  Result<std::unique_ptr<ScanCursor>> ParallelScan(
      std::vector<ScanPart> parts, const ScanSpec& spec, int threads);

  class PartsCursor;
};

}  // namespace decibel

#endif  // DECIBEL_ENGINE_HYBRID_H_
