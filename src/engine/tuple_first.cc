#include "engine/tuple_first.h"

#include <map>
#include <unordered_set>

#include "common/coding.h"
#include "engine/scan_util.h"

namespace decibel {

namespace {

/// Streaming cursor over one materialized bitmap view of the striped heap.
/// For multi-branch views `cols` holds the requested branches' columns and
/// `bits` their union; the predicate is evaluated on the raw in-page
/// record bytes *before* the per-branch membership annotation, so
/// predicate-failing tuples cost one comparison and no bitmap probes.
///
/// The cursor owns its bitmap snapshot and extent-mapping snapshot, so it
/// never touches engine state after construction: scans stream lock-free
/// and never observe a half-applied batch.
class TupleFirstCursor : public ScanCursor {
 public:
  TupleFirstCursor(StripedHeap::Mapping mapping, const Schema* schema,
                   Bitmap bits, std::vector<Bitmap> cols,
                   std::vector<BranchId> branch_list, const ScanSpec& spec,
                   ScanCounters* counters)
      : bits_(std::move(bits)),
        cols_(std::move(cols)),
        branch_list_(std::move(branch_list)),
        scanner_(std::move(mapping), schema, &bits_),
        prepared_(spec.predicate, *schema),
        limit_(spec.limit),
        row_bytes_(ProjectedRowBytes(*schema, spec.projection)),
        counters_(counters) {
    // The bitmap already resolved visibility, so zone-map page skipping
    // is always sound here (see StripedBitmapScanner::EnablePruning).
    scanner_.EnablePruning(&prepared_, &stats_);
  }
  ~TupleFirstCursor() override { counters_->Add(stats_); }

  bool Next(ScanRow* out) override {
    if (limit_ != 0 && stats_.rows_emitted >= limit_) return false;
    RecordRef rec;
    uint64_t idx;
    while (scanner_.Next(&rec, &idx)) {
      ++stats_.rows_scanned;
      stats_.bytes_scanned += row_bytes_;
      if (!prepared_.Matches(rec.data().data())) continue;
      if (!cols_.empty()) {
        present_.clear();
        for (uint32_t i = 0; i < cols_.size(); ++i) {
          if (cols_[i].Test(idx)) present_.push_back(i);
        }
        out->branches = &present_;
      } else {
        out->branches = nullptr;
      }
      out->record = rec;
      ++stats_.rows_emitted;
      return true;
    }
    return false;
  }

  const Status& status() const override { return scanner_.status(); }
  const ScanStats& stats() const override { return stats_; }
  const std::vector<BranchId>& branches() const override {
    return branch_list_;
  }

 private:
  Bitmap bits_;
  std::vector<Bitmap> cols_;
  std::vector<BranchId> branch_list_;
  StripedBitmapScanner scanner_;
  PreparedPredicate prepared_;
  uint64_t limit_;
  uint32_t row_bytes_;
  ScanCounters* counters_;
  std::vector<uint32_t> present_;
  ScanStats stats_;
};

}  // namespace

Result<std::unique_ptr<TupleFirstEngine>> TupleFirstEngine::Make(
    const Schema& schema, const EngineOptions& options) {
  std::unique_ptr<TupleFirstEngine> engine(
      new TupleFirstEngine(schema, options));
  DECIBEL_RETURN_NOT_OK(CreateDir(options.directory));
  DECIBEL_RETURN_NOT_OK(
      CreateDir(JoinPath(options.directory, "commits")));
  if (!options.checkpoint_tag.empty() || FileExists(engine->MetaPath())) {
    DECIBEL_RETURN_NOT_OK(engine->LoadExisting());
  } else {
    DECIBEL_RETURN_NOT_OK(engine->InitFresh());
  }
  return engine;
}

std::string TupleFirstEngine::MetaPath(const std::string& tag) const {
  const std::string base = JoinPath(options_.directory, "engine.meta");
  return tag.empty() ? base : base + "." + tag;
}

std::string TupleFirstEngine::HistoryPath(BranchId branch) const {
  return JoinPath(options_.directory,
                  "commits/branch_" + std::to_string(branch) + ".hist");
}

Status TupleFirstEngine::InitFresh() {
  StripedHeap::Options hopts;
  hopts.page_size = options_.page_size;
  hopts.verify_checksums = options_.verify_checksums;
  hopts.stripes = static_cast<uint32_t>(stripes_.count());
  hopts.schema = &schema_;
  hopts.compress_pages = options_.compress_pages;
  DECIBEL_ASSIGN_OR_RETURN(
      heap_, StripedHeap::Create(options_.directory, schema_.record_size(),
                                 hopts, &pool_));
  index_ = BitmapIndex::Make(options_.orientation);
  // The master branch exists from the start.
  index_->AddBranch(kMasterBranch);
  pk_index_.try_emplace(kMasterBranch);
  return Status::OK();
}

Status TupleFirstEngine::LoadExisting() {
  const std::string& tag = options_.checkpoint_tag;
  StripedHeap::Options hopts;
  hopts.verify_checksums = options_.verify_checksums;
  hopts.schema = &schema_;
  hopts.compress_pages = options_.compress_pages;
  DECIBEL_ASSIGN_OR_RETURN(heap_,
                           StripedHeap::Open(options_.directory, hopts,
                                             &pool_, tag));
  DECIBEL_ASSIGN_OR_RETURN(std::string meta, ReadFileToString(MetaPath(tag)));
  Slice input(meta);
  DECIBEL_RETURN_NOT_OK(CheckEngineMetaHeader(&input, "tuple-first"));
  Slice schema_blob;
  if (!GetLengthPrefixed(&input, &schema_blob)) {
    return Status::Corruption("tuple-first: truncated meta");
  }
  Slice schema_slice = schema_blob;
  DECIBEL_ASSIGN_OR_RETURN(Schema stored, Schema::DecodeFrom(&schema_slice));
  if (!(stored == schema_)) {
    return Status::InvalidArgument("tuple-first: schema mismatch on reopen");
  }
  DECIBEL_ASSIGN_OR_RETURN(index_, BitmapIndex::DecodeFrom(&input));
  uint64_t num_commits;
  if (!GetVarint64(&input, &num_commits)) {
    return Status::Corruption("tuple-first: truncated commit registry");
  }
  for (uint64_t i = 0; i < num_commits; ++i) {
    uint64_t commit;
    uint32_t branch;
    if (!GetVarint64(&input, &commit) || !GetVarint32(&input, &branch)) {
      return Status::Corruption("tuple-first: truncated commit entry");
    }
    commit_branch_[commit] = branch;
  }
  uint64_t num_branches;
  if (!GetVarint64(&input, &num_branches)) {
    return Status::Corruption("tuple-first: truncated branch list");
  }
  std::vector<BranchId> branches(num_branches);
  for (uint64_t i = 0; i < num_branches; ++i) {
    if (!GetVarint32(&input, &branches[i])) {
      return Status::Corruption("tuple-first: truncated branch entry");
    }
  }
  uint64_t num_histories;
  if (!GetVarint64(&input, &num_histories)) {
    return Status::Corruption("tuple-first: truncated history registry");
  }
  for (uint64_t i = 0; i < num_histories; ++i) {
    uint32_t branch;
    uint64_t bytes;
    if (!GetVarint32(&input, &branch) || !GetVarint64(&input, &bytes)) {
      return Status::Corruption("tuple-first: truncated history entry");
    }
    // When recovering to a checkpoint, records appended to the history
    // after the checkpoint (and any torn tail record) are cut away first
    // so Open parses exactly the checkpointed state and WAL replay can
    // re-append from there.
    if (!tag.empty()) {
      DECIBEL_RETURN_NOT_OK(TruncateFile(HistoryPath(branch), bytes));
    }
    DECIBEL_ASSIGN_OR_RETURN(
        histories_[branch],
        CommitHistory::Open(HistoryPath(branch),
                            {.composite_every = options_.composite_every}));
  }
  for (BranchId branch : branches) {
    // The pk index is memory-only; rebuild it from the branch's bitmap.
    DECIBEL_RETURN_NOT_OK(RebuildPkIndex(branch));
  }
  return Status::OK();
}

std::string TupleFirstEngine::EncodeMeta() {
  std::string meta;
  PutEngineMetaHeader(&meta);
  std::string schema_blob;
  schema_.EncodeTo(&schema_blob);
  PutLengthPrefixed(&meta, schema_blob);
  index_->EncodeTo(&meta);
  PutVarint64(&meta, commit_branch_.size());
  for (const auto& [commit, branch] : commit_branch_) {
    PutVarint64(&meta, commit);
    PutVarint32(&meta, branch);
  }
  PutVarint64(&meta, pk_index_.size());
  for (const auto& [branch, pks] : pk_index_) {
    PutVarint32(&meta, branch);
  }
  {
    std::lock_guard<std::mutex> commits(commit_mu_);
    PutVarint64(&meta, histories_.size());
    for (const auto& [branch, history] : histories_) {
      PutVarint32(&meta, branch);
      PutVarint64(&meta, history->SizeBytes());
    }
  }
  return meta;
}

Status TupleFirstEngine::ReleaseBranch(BranchId branch) {
  // The heap is shared across branches and stays open; only the retired
  // branch's commit-history descriptors are released. The histories_
  // entry stays (it is the authority over the on-disk file — a map miss
  // would truncate on the next HistoryFor) and reopens lazily if read.
  std::lock_guard<std::mutex> commits(commit_mu_);
  auto it = histories_.find(branch);
  if (it == histories_.end()) return Status::OK();
  return it->second->ReleaseFileHandles();
}

Status TupleFirstEngine::Flush() {
  // Unique registry: no writer holds its shared mode, so every stripe is
  // quiesced and the index/commit registries are stable.
  std::unique_lock<std::shared_mutex> registry(registry_mu_);
  DECIBEL_RETURN_NOT_OK(heap_->Flush());
  return WriteStringToFile(MetaPath(), EncodeMeta());
}

Status TupleFirstEngine::Checkpoint(const std::string& tag, bool sync) {
  std::unique_lock<std::shared_mutex> registry(registry_mu_);
  DECIBEL_RETURN_NOT_OK(heap_->Checkpoint(tag, sync));
  if (sync) {
    std::lock_guard<std::mutex> commits(commit_mu_);
    for (auto& [branch, history] : histories_) {
      DECIBEL_RETURN_NOT_OK(history->Sync());
    }
  }
  return AtomicWriteFile(MetaPath(tag), EncodeMeta(), sync);
}

Status TupleFirstEngine::RemoveCheckpoint(const std::string& tag) {
  DECIBEL_RETURN_NOT_OK(heap_->RemoveCheckpoint(tag));
  return RemoveFile(MetaPath(tag));
}

Result<CommitHistory*> TupleFirstEngine::HistoryFor(BranchId branch) {
  std::lock_guard<std::mutex> commits(commit_mu_);
  auto it = histories_.find(branch);
  if (it != histories_.end()) return it->second.get();
  const std::string path = HistoryPath(branch);
  // histories_ (restored from the meta on reopen) is authoritative: a
  // miss means any on-disk history file for this branch is stale
  // post-checkpoint debris from a crash, and Create truncates it away
  // (WAL replay re-appends its commits).
  Result<std::unique_ptr<CommitHistory>> h = CommitHistory::Create(
      path, {.composite_every = options_.composite_every});
  if (!h.ok()) return h.status();
  CommitHistory* raw = h.value().get();
  histories_.emplace(branch, std::move(h).MoveValueUnsafe());
  return raw;
}

Status TupleFirstEngine::RebuildPkIndex(BranchId b) {
  PkIndex& idx = pk_index_[b];
  idx.clear();
  const Bitmap view = index_->MaterializeBranch(b);
  StripedBitmapScanner scanner(heap_->SnapshotMapping(), &schema_, &view);
  RecordRef rec;
  uint64_t pos;
  while (scanner.Next(&rec, &pos)) {
    idx[rec.pk()] = pos;
  }
  return scanner.status();
}

// --------------------------------------------------------- version control

Status TupleFirstEngine::CreateBranch(BranchId child, BranchId parent,
                                      CommitId base_commit, bool at_head) {
  // Branch creation changes registry shape (new bitmap column, new pk
  // map), so it is the one writer that excludes everything engine-wide.
  std::unique_lock<std::shared_mutex> registry(registry_mu_);
  if (at_head) {
    // "A branch operation clones the state of the parent branch's bitmap"
    // (§3.2) — plus the parent's pk index for update support.
    index_->CloneBranch(parent, child);
    pk_index_[child] = pk_index_[parent];
    return Status::OK();
  }
  DECIBEL_ASSIGN_OR_RETURN(Bitmap bits, CommitBitmap(base_commit));
  index_->AddBranch(child);
  index_->RestoreBranch(child, bits);
  return RebuildPkIndex(child);
}

Status TupleFirstEngine::Commit(BranchId branch, CommitId commit_id) {
  std::shared_lock<std::shared_mutex> registry(registry_mu_);
  StripeGuard stripe(this, {branch});
  return CommitImpl(branch, commit_id);
}

Status TupleFirstEngine::CommitImpl(BranchId branch, CommitId commit_id) {
  DECIBEL_ASSIGN_OR_RETURN(CommitHistory * history, HistoryFor(branch));
  const Bitmap* view = index_->BranchView(branch);
  Bitmap owned;
  if (view == nullptr) {
    owned = index_->MaterializeBranch(branch);
    view = &owned;
  }
  DECIBEL_RETURN_NOT_OK(history->AppendCommit(commit_id, *view));
  std::lock_guard<std::mutex> commits(commit_mu_);
  commit_branch_[commit_id] = branch;
  return Status::OK();
}

Result<Bitmap> TupleFirstEngine::CommitBitmap(CommitId commit) {
  BranchId branch;
  {
    std::lock_guard<std::mutex> commits(commit_mu_);
    auto it = commit_branch_.find(commit);
    if (it == commit_branch_.end()) {
      return Status::NotFound("tuple-first: unknown commit " +
                              std::to_string(commit));
    }
    branch = it->second;
  }
  DECIBEL_ASSIGN_OR_RETURN(CommitHistory * history, HistoryFor(branch));
  // The CommitHistory's own lock makes the checkout safe against the
  // owning branch appending a newer commit concurrently.
  return history->Checkout(commit);
}

Status TupleFirstEngine::Checkout(CommitId commit) {
  return CommitBitmap(commit).status();
}

// ----------------------------------------------------------------- mutation

Status TupleFirstEngine::ApplyBatch(BranchId branch, const WriteBatch& batch) {
  // Writers on the same stripe serialize here; disjoint stripes commit in
  // parallel. Writers on the same *branch* are already serialized above
  // us by the facade's branch lock.
  std::shared_lock<std::shared_mutex> registry(registry_mu_);
  StripeGuard stripe(this, {branch});
  auto pk_it = pk_index_.find(branch);
  if (pk_it == pk_index_.end()) {
    return Status::NotFound("tuple-first: unknown branch " +
                            std::to_string(branch));
  }
  PkIndex& pks = pk_it->second;
  DECIBEL_RETURN_NOT_OK(ValidateBatchDeletes(
      batch, [&pks](int64_t pk) { return pks.count(pk) != 0; }));

  // One pass: the record payloads go to this branch's heap stripe in
  // page-sized chunks (the stripe allocator hands back the assigned
  // global indices as at most two contiguous runs), the bitmap universe
  // grows once to the heap's allocated bound, and the pk index is
  // pre-sized — instead of paying each per record.
  StripedHeap::RunList runs;
  if (batch.num_appends() > 0) {
    DECIBEL_RETURN_NOT_OK(heap_->AppendBatch(
        StripeOf(branch), batch.arena(), batch.num_appends(), &runs));
    index_->EnsureTuples(heap_->allocated_bound());
  }
  pks.reserve(pks.size() + batch.num_appends());
  size_t run_pos = 0;
  uint64_t run_off = 0;
  for (const WriteBatch::Op& op : batch.ops()) {
    if (op.kind == WriteBatch::OpKind::kDelete) {
      auto old = pks.find(op.pk);
      index_->Set(old->second, branch, false);
      pks.erase(old);
      continue;
    }
    while (run_off == runs[run_pos].count) {
      ++run_pos;
      run_off = 0;
    }
    const uint64_t idx = runs[run_pos].base + run_off++;
    auto [it, inserted] = pks.try_emplace(batch.RecordAt(op).pk(), idx);
    if (!inserted) {
      // "the index bit of the previous version of the record is unset"
      // §3.2
      index_->Set(it->second, branch, false);
      it->second = idx;
    }
    index_->Set(idx, branch, true);
  }
  return Status::OK();
}

// ------------------------------------------------------------------ queries

Result<std::unique_ptr<ScanCursor>> TupleFirstEngine::NewScan(
    const ScanSpec& spec) {
  DECIBEL_RETURN_NOT_OK(ValidateScanSpec(spec, schema_));
  switch (spec.view) {
    case ScanView::kBranch: {
      std::shared_lock<std::shared_mutex> registry(registry_mu_);
      if (pk_index_.count(spec.branch) == 0) {
        return Status::NotFound("tuple-first: unknown branch " +
                                std::to_string(spec.branch));
      }
      // Materialize the snapshot under the branch's stripe (for the
      // tuple-oriented layout this walks the whole matrix — the
      // single-branch scan penalty of §3.2), then stream lock-free.
      Bitmap bits;
      {
        StripeGuard stripe(this, {spec.branch});
        bits = index_->MaterializeBranch(spec.branch);
      }
      return std::unique_ptr<ScanCursor>(new TupleFirstCursor(
          heap_->SnapshotMapping(), &schema_, std::move(bits), {}, {}, spec,
          &scan_counters_));
    }
    case ScanView::kCommit: {
      DECIBEL_ASSIGN_OR_RETURN(Bitmap bits, CommitBitmap(spec.commit));
      return std::unique_ptr<ScanCursor>(new TupleFirstCursor(
          heap_->SnapshotMapping(), &schema_, std::move(bits), {}, {}, spec,
          &scan_counters_));
    }
    case ScanView::kMulti: {
      // One pass over the heap, each tuple annotated with the branches it
      // is live in (§3.2 Multi-branch Scan). All requested stripes are
      // held together so the cross-branch snapshot is consistent.
      std::shared_lock<std::shared_mutex> registry(registry_mu_);
      std::vector<Bitmap> cols;
      cols.reserve(spec.branches.size());
      Bitmap unioned;
      {
        StripeGuard stripes(this, spec.branches);
        for (BranchId b : spec.branches) {
          cols.push_back(index_->MaterializeBranch(b));
          unioned.OrWith(cols.back());
        }
      }
      return std::unique_ptr<ScanCursor>(new TupleFirstCursor(
          heap_->SnapshotMapping(), &schema_, std::move(unioned),
          std::move(cols), spec.branches, spec, &scan_counters_));
    }
    case ScanView::kDiff:
      return MakeDiffScanCursor(this, spec, &scan_counters_);
    case ScanView::kHeads:
      break;  // rejected by ValidateScanSpec
  }
  return Status::InvalidArgument("tuple-first: unsupported scan view");
}

Result<Record> TupleFirstEngine::Get(BranchId branch, int64_t pk) {
  uint64_t idx;
  {
    std::shared_lock<std::shared_mutex> registry(registry_mu_);
    StripeGuard stripe(this, {branch});
    auto branch_it = pk_index_.find(branch);
    if (branch_it == pk_index_.end()) {
      return Status::NotFound("tuple-first: unknown branch " +
                              std::to_string(branch));
    }
    auto rec_it = branch_it->second.find(pk);
    if (rec_it == branch_it->second.end()) {
      return Status::NotFound("tuple-first: no record with pk " +
                              std::to_string(pk));
    }
    idx = rec_it->second;
  }
  // Appended records are immutable; the read needs no lock.
  std::string buf;
  DECIBEL_RETURN_NOT_OK(heap_->Get(idx, &buf));
  return Record(&schema_, Slice(buf));
}

Status TupleFirstEngine::Diff(BranchId a, BranchId b, DiffMode mode,
                              const DiffCallback& pos,
                              const DiffCallback& neg) {
  // "Diff is straightforward to compute in tuple-first: we simply XOR
  // bitmaps together and emit records on the appropriate iterator" (§3.2).
  // Both stripes are taken together (ascending order) so the two columns
  // form one consistent snapshot; the record passes then run lock-free.
  Bitmap bits_a, bits_b;
  {
    std::shared_lock<std::shared_mutex> registry(registry_mu_);
    StripeGuard stripes(this, {a, b});
    bits_a = index_->MaterializeBranch(a);
    bits_b = index_->MaterializeBranch(b);
  }
  const StripedHeap::Mapping mapping = heap_->SnapshotMapping();
  const Bitmap only_a = Bitmap::AndNot(bits_a, bits_b);
  const Bitmap only_b = Bitmap::AndNot(bits_b, bits_a);

  std::unordered_set<int64_t> pks_a, pks_b;
  if (mode == DiffMode::kByKey) {
    // Key-presence semantics: a key updated on the other side is still
    // "present" there, so collect each side's touched keys first.
    const Bitmap both = Bitmap::Or(only_a, only_b);
    StripedBitmapScanner pass1(mapping, &schema_, &both);
    RecordRef rec;
    uint64_t idx;
    while (pass1.Next(&rec, &idx)) {
      if (only_a.Test(idx)) pks_a.insert(rec.pk());
      if (only_b.Test(idx)) pks_b.insert(rec.pk());
    }
    DECIBEL_RETURN_NOT_OK(pass1.status());
  }

  const Bitmap both = Bitmap::Or(only_a, only_b);
  StripedBitmapScanner scanner(mapping, &schema_, &both);
  RecordRef rec;
  uint64_t idx;
  while (scanner.Next(&rec, &idx)) {
    const bool in_a = only_a.Test(idx);
    if (in_a && pos) {
      if (mode == DiffMode::kByContent || pks_b.count(rec.pk()) == 0) {
        pos(rec);
      }
    }
    if (!in_a && neg) {
      if (mode == DiffMode::kByContent || pks_a.count(rec.pk()) == 0) {
        neg(rec);
      }
    }
  }
  return scanner.status();
}

// -------------------------------------------------------------------- merge

Status TupleFirstEngine::MergeWalk(CommitId left, CommitId right,
                                   CommitId base, const MergeWalkCallback& cb,
                                   MergeWalkStats* stats) {
  // Pure bitmap algebra over three committed snapshots (§3.2): the mask
  // (L⊕B)|(R⊕B) covers every live position of every changed key. Proof:
  // each commit carries at most one live position per pk (update unsets
  // the prior version's bit); a position outside the mask is live in all
  // three commits or none, so a pk with a live position outside the mask
  // has that same position in left, right and base — i.e. it never
  // changed. Commit checkouts are internally locked and heap records are
  // immutable once appended, so the walk needs no engine locks.
  DECIBEL_ASSIGN_OR_RETURN(Bitmap bits_l, CommitBitmap(left));
  DECIBEL_ASSIGN_OR_RETURN(Bitmap bits_r, CommitBitmap(right));
  DECIBEL_ASSIGN_OR_RETURN(Bitmap bits_b, CommitBitmap(base));
  const StripedHeap::Mapping mapping = heap_->SnapshotMapping();
  const uint32_t rs = schema_.record_size();

  const Bitmap mask =
      Bitmap::Or(Bitmap::Xor(bits_l, bits_b), Bitmap::Xor(bits_r, bits_b));

  // One heap pass over the mask, grouping positions by primary key. The
  // ordered map also gives the ascending-pk emission order.
  constexpr uint64_t kAbsent = ~uint64_t{0};
  struct Positions {
    uint64_t l = kAbsent, r = kAbsent, b = kAbsent;
  };
  std::map<int64_t, Positions> keys;
  {
    StripedBitmapScanner scanner(mapping, &schema_, &mask);
    RecordRef rec;
    uint64_t idx;
    while (scanner.Next(&rec, &idx)) {
      Positions& p = keys[rec.pk()];
      if (bits_l.Test(idx)) p.l = idx;
      if (bits_r.Test(idx)) p.r = idx;
      if (bits_b.Test(idx)) p.b = idx;
      stats->bytes_processed += rs;
    }
    DECIBEL_RETURN_NOT_OK(scanner.status());
  }

  // Emit each key's three states. Positions shared between commits share
  // one fetch (common case: unchanged-on-one-side keys).
  std::string buf_l, buf_r, buf_b;
  for (const auto& [pk, pos] : keys) {
    MergeWalkItem item;
    item.pk = pk;
    std::optional<RecordRef> ref_l, ref_r, ref_b;
    if (pos.l != kAbsent) {
      DECIBEL_RETURN_NOT_OK(heap_->Get(pos.l, &buf_l));
      stats->bytes_processed += rs;
      ref_l.emplace(&schema_, Slice(buf_l));
      item.left = &*ref_l;
    }
    if (pos.r != kAbsent) {
      if (pos.r == pos.l) {
        item.right = item.left;
      } else {
        DECIBEL_RETURN_NOT_OK(heap_->Get(pos.r, &buf_r));
        stats->bytes_processed += rs;
        ref_r.emplace(&schema_, Slice(buf_r));
        item.right = &*ref_r;
      }
    }
    if (pos.b != kAbsent) {
      if (pos.b == pos.l) {
        item.base = item.left;
      } else if (pos.b == pos.r) {
        item.base = item.right;
      } else {
        DECIBEL_RETURN_NOT_OK(heap_->Get(pos.b, &buf_b));
        stats->bytes_processed += rs;
        ref_b.emplace(&schema_, Slice(buf_b));
        item.base = &*ref_b;
      }
    }
    ++stats->keys_emitted;
    DECIBEL_RETURN_NOT_OK(cb(item));
  }
  return Status::OK();
}

// -------------------------------------------------------------------- stats

EngineStats TupleFirstEngine::Stats() const {
  std::shared_lock<std::shared_mutex> registry(registry_mu_);
  StripeLocks::AllGuard stripes(stripes_);
  EngineStats stats;
  stats.data_bytes = heap_->SizeBytes();
  stats.index_memory_bytes = index_->MemoryBytes();
  for (const auto& [branch, pks] : pk_index_) {
    stats.index_memory_bytes += pks.size() * 16;
  }
  {
    std::lock_guard<std::mutex> commits(commit_mu_);
    for (const auto& [branch, history] : histories_) {
      stats.commit_store_bytes += history->SizeBytes();
    }
  }
  stats.num_segments = heap_->stripe_count();
  stats.num_records = heap_->num_records();
  stats.rows_scanned = scan_counters_.rows();
  stats.bytes_scanned = scan_counters_.bytes();
  stats.bytes_read = scan_counters_.bytes_read();
  stats.segments_skipped = scan_counters_.segments_skipped();
  stats.pages_skipped = scan_counters_.pages_skipped();
  return stats;
}

}  // namespace decibel
