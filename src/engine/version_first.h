#ifndef DECIBEL_ENGINE_VERSION_FIRST_H_
#define DECIBEL_ENGINE_VERSION_FIRST_H_

/// \file version_first.h
/// The version-first storage engine (§3.3): each branch appends its local
/// modifications to its own head *segment file*; a segment records the
/// (parent segment, byte offset) branch points it inherits from, and a
/// chain of such files constitutes a branch's full lineage. Commits are
/// (segment, offset) pairs in an external structure. Scans walk the
/// ancestry newest-to-oldest suppressing already-seen keys; multi-branch
/// scans and diffs materialize pk -> (segment, offset) "winner" hash
/// tables in a first pass (§3.3 Multi-branch Scan), which is where
/// version-first pays its price on cross-version queries.
///
/// Merge note: merges are staged by the shared merge_spec.cc machinery
/// over MergeWalk and executed as an ordinary WriteBatch against the
/// 'into' head, which *materializes* every adopted or reconciled record
/// (and tombstone) into the branch's own chain. Pure scan-order
/// precedence cannot express "take the union of non-conflicting updates
/// from both sides" in every topology, so materialization is what keeps
/// the result independent of segment tie-breaks. Multi-parent segments
/// written by older layouts are still scanned correctly. See DESIGN.md.
///
/// Concurrency: appends go to per-branch head segments, so writers on
/// disjoint branches share no segment file and proceed in parallel. The
/// lock hierarchy is registry_mu_ (the segments_ vector and head_seg_ map
/// shape; writers take it shared, CreateBranch/Flush — which grow
/// the registry — take it unique) -> stripe locks (branch %
/// write_stripes; the branch's head-segment tail) -> commit_mu_ (the
/// commits_ map, a leaf). Cursors capture HeapFile pointers at open
/// (Segment objects are stable; only the vector itself reallocates) plus
/// per-segment bounds, so established scans stream without any lock and
/// never observe a half-applied batch (HeapFile publishes num_records
/// after the bytes).

#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/stripe_lock.h"
#include "engine/engine.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"

namespace decibel {

class VersionFirstEngine : public StorageEngine {
 public:
  static Result<std::unique_ptr<VersionFirstEngine>> Make(
      const Schema& schema, const EngineOptions& options);

  EngineType type() const override { return EngineType::kVersionFirst; }
  const Schema& schema() const override { return schema_; }

  Status CreateBranch(BranchId child, BranchId parent, CommitId base_commit,
                      bool at_head) override;
  Status Commit(BranchId branch, CommitId commit_id) override;
  Status Checkout(CommitId commit) override;

  Status ApplyBatch(BranchId branch, const WriteBatch& batch) override;

  Result<std::unique_ptr<ScanCursor>> NewScan(const ScanSpec& spec) override;
  Result<Record> Get(BranchId branch, int64_t pk) override;
  Status Diff(BranchId a, BranchId b, DiffMode mode, const DiffCallback& pos,
              const DiffCallback& neg) override;
  Status MergeWalk(CommitId left, CommitId right, CommitId base,
                   const MergeWalkCallback& cb, MergeWalkStats* stats) override;
  Status ReleaseBranch(BranchId branch) override;

  Status Flush() override;
  Status Checkpoint(const std::string& tag, bool sync) override;
  Status RemoveCheckpoint(const std::string& tag) override;
  void DropCaches() override { pool_.EvictAll(); }
  EngineStats Stats() const override;

 private:
  /// Visibility window into a parent segment: records [0, bound) of
  /// segment \p seg are inherited.
  struct ParentLink {
    uint32_t seg = 0;
    uint64_t bound = 0;
  };

  struct Segment {
    uint32_t id = 0;
    BranchId owner = kInvalidBranch;
    std::vector<ParentLink> parents;  ///< priority order, strongest first
    std::unique_ptr<HeapFile> file;
  };

  /// A version root: everything visible from records [0, bound) of \p seg
  /// plus its inherited ancestry.
  struct Root {
    uint32_t seg = 0;
    uint64_t bound = 0;
  };

  /// One step of a scan: read records [0, bound) of segment, newest first.
  struct ScanStep {
    uint32_t seg = 0;
    uint64_t bound = 0;
  };

  /// Location of a key's winning record version for one root.
  struct Winner {
    uint32_t seg = 0;
    uint64_t idx = 0;
    uint32_t rank = 0;   // position of seg in the root's scan order
    bool tombstone = false;
  };
  using WinnerTable = std::unordered_map<int64_t, Winner>;

  /// Physical record location, for the per-branch pk index.
  struct Loc {
    uint32_t seg = 0;
    uint64_t idx = 0;
  };
  using PkIndex = std::unordered_map<int64_t, Loc>;

  VersionFirstEngine(const Schema& schema, const EngineOptions& options)
      : schema_(schema),
        options_(options),
        pool_(options.buffer_pool_bytes),
        stripes_(options.write_stripes == 0 ? 1 : options.write_stripes) {}

  Status InitFresh();
  Status LoadExisting();
  std::string MetaPath(const std::string& tag = "") const;
  std::string SegmentPath(uint32_t seg) const;
  /// Serializes the engine meta (schema, segment graph with per-segment
  /// checkpoint state, heads, commits). Caller holds the registry unique.
  std::string EncodeMeta();
  Result<uint32_t> NewSegment(BranchId owner, std::vector<ParentLink> parents);
  /// Commit body; caller holds registry_mu_ (shared or unique). Takes
  /// commit_mu_ internally for the commits_ write.
  Status CommitImpl(BranchId branch, CommitId commit_id);
  /// Caller holds registry_mu_ (shared or unique).
  Result<Root> RootForBranch(BranchId branch) const;
  /// Takes commit_mu_ internally; safe without registry_mu_.
  Result<Root> RootForCommit(CommitId commit) const;

  /// Children-before-parents scan order for a root, tie-broken by parent
  /// priority ("version-first scans the version tree to determine the
  /// order in which it should read segment files", §3.3).
  std::vector<ScanStep> ComputeScanOrder(const Root& root) const;

  /// Pass 1 of the paper's two-pass machinery: one reverse pass over the
  /// union of the roots' ancestries, producing a winner table per root.
  /// \p bytes_scanned (optional) accumulates records * record_size.
  Status BuildWinnerTables(const std::vector<Root>& roots,
                           std::vector<WinnerTable>* tables,
                           uint64_t* bytes_scanned) const;

  /// Reads record \p idx of segment \p seg into \p buf.
  Status FetchRecord(uint32_t seg, uint64_t idx, std::string* buf) const;

  /// Rebuilds \p branch's pk index from its ancestry (one winner-table
  /// pass). Caller holds registry_mu_ unique.
  Status RebuildPkIndex(BranchId branch, const Root& root);

  Schema schema_;
  EngineOptions options_;
  BufferPool pool_;
  /// Lifetime scan-work totals (EngineStats::rows_scanned/bytes_scanned);
  /// mutable so cursors over a const engine can flush into it.
  mutable ScanCounters scan_counters_;

  /// Shape of segments_ and head_seg_: ApplyBatch/Commit/scan-open take
  /// it shared, CreateBranch/Merge/Flush take it unique. Ordered before
  /// the stripe locks.
  mutable std::shared_mutex registry_mu_;
  /// Per-branch write serialization (a branch's head-segment tail has a
  /// single writer at a time); see file comment for the hierarchy.
  mutable StripeLocks stripes_;
  /// Leaf lock: the commits_ map. Never acquire another engine lock while
  /// holding it.
  mutable std::mutex commit_mu_;

  std::vector<std::unique_ptr<Segment>> segments_;
  std::unordered_map<BranchId, uint32_t> head_seg_;
  std::unordered_map<CommitId, Root> commits_;
  /// pk -> live location at each branch head, making Get a point lookup
  /// instead of an ancestry walk (the fix for §3.3's O(history) reads).
  /// Memory-only: rebuilt on open from one multi-root winner-table pass.
  /// A branch's entry is written under its stripe lock (ApplyBatch) or
  /// the unique registry lock (CreateBranch, LoadExisting).
  std::unordered_map<BranchId, PkIndex> pk_index_;

  class BranchScanCursor;
  class MultiWinnerCursor;
};

}  // namespace decibel

#endif  // DECIBEL_ENGINE_VERSION_FIRST_H_
