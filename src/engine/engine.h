#ifndef DECIBEL_ENGINE_ENGINE_H_
#define DECIBEL_ENGINE_ENGINE_H_

/// \file engine.h
/// The common contract implemented by Decibel's three versioned storage
/// engines (§3): tuple-first, version-first, and hybrid. The Decibel
/// facade (core/decibel.h) owns the version graph and drives engines with
/// already-allocated branch and commit identifiers; engines own the
/// physical layout, the scans, the diffs and the merges.
///
/// Data semantics (§2.2): a dataset is an unordered collection of records
/// identified by primary key. Update is an upsert (a new physical copy of
/// the record is appended; the old copy stays visible to historical
/// commits). Delete hides the key from the branch head but never removes
/// bytes.
///
/// Reads go through one composable surface: NewScan(ScanSpec) returns a
/// ScanCursor over a branch head, a commit, several heads at once, or a
/// positive diff, with predicate/projection/limit pushed into the engine
/// scan loops (scan_spec.h); Get(branch, pk) is the point lookup the pk
/// index makes O(1) in the bitmap engines.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "bitmap/bitmap_index.h"
#include "common/result.h"
#include "engine/merge_spec.h"
#include "engine/scan_spec.h"
#include "storage/record.h"
#include "storage/schema.h"
#include "txn/write_batch.h"
#include "version/types.h"

namespace decibel {

enum class EngineType {
  kTupleFirst,
  kVersionFirst,
  kHybrid,
};

const char* EngineTypeName(EngineType type);

/// engine.meta format header: a fixed magic plus a version number so a
/// meta written by an incompatible layout fails with a clear
/// "unsupported version" error instead of a misleading Corruption from
/// half-way through the decode. v2 added per-segment checkpoint state
/// and history sizes; v3 appends per-segment zone-map stats blobs
/// (HeapFile::EncodeStats) in the segmented engines; v1 metas
/// (pre-durability) had neither the header nor those fields and cannot
/// be opened.
inline constexpr uint32_t kEngineMetaMagic = 0x4d454244;  // "DBEM"
inline constexpr uint32_t kEngineMetaVersion = 3;

/// Appends the engine.meta format header to \p meta.
void PutEngineMetaHeader(std::string* meta);
/// Consumes and validates the format header at the front of \p input.
/// InvalidArgument (naming \p engine_name) on a missing header or an
/// unsupported version.
Status CheckEngineMetaHeader(Slice* input, const char* engine_name);

struct EngineOptions {
  /// Directory this engine stores its files under (created if absent).
  std::string directory;
  uint64_t page_size = 1 << 20;           ///< paper: 4 MB
  uint64_t buffer_pool_bytes = 64 << 20;  ///< read-cache budget
  /// Bitmap layout for tuple-first / hybrid (§5: branch-oriented default).
  BitmapOrientation orientation = BitmapOrientation::kBranchOriented;
  /// Commit-history composite-delta interval (§3.2's second layer).
  uint32_t composite_every = 16;
  bool verify_checksums = true;
  /// >0 enables the hybrid engine's parallel segment scanning (§3.4).
  int scan_threads = 0;
  /// Write-lock stripes per engine: branches on different stripes
  /// (stripe = branch % write_stripes) commit concurrently. Also the
  /// number of heap-file shards the tuple-first engine splits its shared
  /// heap into.
  uint32_t write_stripes = 32;
  /// Non-empty: open the engine at the named checkpoint instead of the
  /// last Flush — data files are rolled back to exactly the state the
  /// checkpoint captured, so a WAL tail can be replayed on top (crash
  /// recovery).
  std::string checkpoint_tag;
  /// Seal full heap pages through the adaptive columnar/LZ page codec
  /// (storage format v2's non-raw page formats). Scans stay byte-identical
  /// either way; predicates evaluate on the compressed strips first.
  bool compress_pages = false;
};

/// Multi-branch scans push each live record once, annotated with the
/// subset of requested branches that contain it (§3.2 Multi-branch Scan).
/// \p branches holds positions into the requested branch vector.
using MultiScanCallback =
    std::function<void(const RecordRef&, const std::vector<uint32_t>&)>;

/// Record-at-a-time sink for diffs.
using DiffCallback = std::function<void(const RecordRef&)>;

// MergePolicy, MergeResult and the merge-walk types live in
// engine/merge_spec.h (included above): the merge surface is shared
// semantics over a per-engine walk primitive, exactly as scan_spec.h is
// shared pushdown over per-engine cursors.

struct EngineStats {
  uint64_t data_bytes = 0;          ///< heap/segment file bytes on disk
  uint64_t index_memory_bytes = 0;  ///< bitmap + pk index heap bytes
  uint64_t commit_store_bytes = 0;  ///< aggregate commit-history file size
  uint64_t num_segments = 0;
  uint64_t num_records = 0;         ///< physical record versions stored
  /// Lifetime scan-work totals flushed by this engine's cursors (see
  /// ScanCounters): live rows examined and their projected bytes.
  uint64_t rows_scanned = 0;
  uint64_t bytes_scanned = 0;
  /// Stored bytes actually pinned from pages (post-skip, post-compression)
  /// and the scan units zone maps let cursors step over entirely.
  uint64_t bytes_read = 0;
  uint64_t segments_skipped = 0;
  uint64_t pages_skipped = 0;
};

class StorageEngine {
 public:
  virtual ~StorageEngine() = default;

  virtual EngineType type() const = 0;
  virtual const Schema& schema() const = 0;

  // ------------------------------------------------------ version control

  /// Registers \p child branched from \p parent at \p base_commit. When
  /// \p at_head is true the parent's current committed state is the base
  /// (the facade auto-commits dirty branches before branching); otherwise
  /// the engine restores the historical commit.
  virtual Status CreateBranch(BranchId child, BranchId parent,
                              CommitId base_commit, bool at_head) = 0;

  /// Snapshots \p branch's current state as \p commit_id (§2.2.3 Commit).
  virtual Status Commit(BranchId branch, CommitId commit_id) = 0;

  /// Materializes whatever internal state is needed to read \p commit
  /// and drops it again — the checkout cost Table 2 measures.
  virtual Status Checkout(CommitId commit) = 0;

  // ------------------------------------------------------------- mutation

  /// The single write path into an engine: applies a staged batch of
  /// Insert/Update/Delete operations to \p branch in one pass, updating
  /// the heap file, the pk index and the bitmaps once per batch instead
  /// of once per record. The facade calls this under the branch's
  /// exclusive lock; per-record mutations arrive as one-op batches.
  ///
  /// Engines that maintain a pk index (tuple-first, hybrid) validate the
  /// batch's deletes up front so a delete of an absent key fails with
  /// NotFound before any operation is applied; version-first keeps its
  /// blind-tombstone delete semantics (§3.3).
  virtual Status ApplyBatch(BranchId branch, const WriteBatch& batch) = 0;

  // -------------------------------------------------------------- queries

  /// The one read entry point: serves the spec's view (branch head,
  /// commit, multi-branch, positive diff) with the predicate, projection
  /// and limit evaluated inside the engine's scan machinery. Rejects
  /// ScanView::kHeads (the facade resolves it to kMulti first).
  virtual Result<std::unique_ptr<ScanCursor>> NewScan(
      const ScanSpec& spec) = 0;

  /// Point lookup of \p pk at the head of \p branch. O(1) through the pk
  /// index in tuple-first and hybrid; version-first walks its segment
  /// ancestry newest-to-oldest and stops at the first version of the key.
  /// NotFound when the key is not live in the branch.
  virtual Result<Record> Get(BranchId branch, int64_t pk) = 0;

  /// Streams the positive diff (in \p a, not in \p b) to \p pos and the
  /// negative diff to \p neg. Either callback may be null. (NewScan's
  /// kDiff view serves the positive side with pushdown; merges and the
  /// facade's Diff need both sides.)
  virtual Status Diff(BranchId a, BranchId b, DiffMode mode,
                      const DiffCallback& pos, const DiffCallback& neg) = 0;

  /// The merge/diff substrate (§2.2.3): streams every primary key whose
  /// record state differs between commits \p left and \p right, with the
  /// key's state at both commits and at ancestor \p base, in ascending pk
  /// order. A null ref means the key is not live at that commit. Refs are
  /// valid only for the duration of the callback. Engines may emit keys
  /// whose two sides turn out byte-equal (the shared staging skips them);
  /// they must never *omit* a key whose states differ. All merge and diff
  /// semantics live on top in merge_spec.cc — engines compete on the cost
  /// of this walk, never on its answers.
  virtual Status MergeWalk(CommitId left, CommitId right, CommitId base,
                           const MergeWalkCallback& cb,
                           MergeWalkStats* stats) = 0;

  /// Releases the file descriptors pinned on behalf of \p branch (its
  /// private segments' heap files, its commit-history files). Called when
  /// the branch is retired: the data stays on disk and stays readable —
  /// every handle reopens lazily on the next access — but a retired
  /// branch no longer costs open fds. Without this, the agentic workload
  /// (fork, work, merge, retire, thousands of times) exhausts the
  /// process's descriptor limit. Unknown branches are a no-op.
  virtual Status ReleaseBranch(BranchId /*branch*/) { return Status::OK(); }

  // -------------------------------------------------------- maintenance

  virtual Status Flush() = 0;
  /// Checkpoints the engine under \p tag: data files are flushed (and, if
  /// \p sync, fsynced) and a tagged metadata snapshot is written that
  /// records exactly how many bytes of each file belong to the
  /// checkpoint. Reopening with EngineOptions::checkpoint_tag == tag
  /// restores this state bit-for-bit, discarding anything written later.
  /// The caller must quiesce writers for the duration of the call.
  virtual Status Checkpoint(const std::string& tag, bool sync) = 0;
  /// Deletes the tagged metadata written by Checkpoint(tag); data files
  /// are shared across checkpoints and stay.
  virtual Status RemoveCheckpoint(const std::string& tag) = 0;
  /// Evicts the buffer pool so the next query starts cold (§5 flushes OS
  /// caches before each measured operation; this is the unprivileged
  /// equivalent for our own caches).
  virtual void DropCaches() = 0;
  virtual EngineStats Stats() const = 0;
};

/// Validates the deletes of \p batch against a branch's current key set
/// before any op is applied, simulating the batch's own earlier
/// inserts/updates and deletes, so ApplyBatch is all-or-nothing for the
/// one data-dependent failure mode (deleting an absent key). \p contains
/// is a callable int64_t -> bool answering "is this pk live in the
/// branch right now".
template <typename Contains>
Status ValidateBatchDeletes(const WriteBatch& batch, Contains&& contains) {
  if (batch.num_appends() == batch.size()) return Status::OK();  // no deletes
  std::unordered_set<int64_t> added, removed;
  for (const WriteBatch::Op& op : batch.ops()) {
    if (op.kind != WriteBatch::OpKind::kDelete) {
      const int64_t pk = batch.RecordAt(op).pk();
      added.insert(pk);
      removed.erase(pk);
      continue;
    }
    const bool live = added.count(op.pk) != 0 ||
                      (removed.count(op.pk) == 0 && contains(op.pk));
    if (!live) {
      return Status::NotFound("batch deletes pk " + std::to_string(op.pk) +
                              " which is not live in the branch");
    }
    removed.insert(op.pk);
    added.erase(op.pk);
  }
  return Status::OK();
}

/// Instantiates an engine of \p type rooted at options.directory.
Result<std::unique_ptr<StorageEngine>> MakeEngine(EngineType type,
                                                  const Schema& schema,
                                                  const EngineOptions& options);

}  // namespace decibel

#endif  // DECIBEL_ENGINE_ENGINE_H_
