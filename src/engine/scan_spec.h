#ifndef DECIBEL_ENGINE_SCAN_SPEC_H_
#define DECIBEL_ENGINE_SCAN_SPEC_H_

/// \file scan_spec.h
/// The unified read-path contract: a ScanSpec describes *what* to read
/// (one view — a branch head, a historical commit, several branch heads
/// at once, or the positive diff of two branches) and *how much* of it
/// (a pushed-down Predicate, a column projection, a row limit, a
/// parallelism hint); StorageEngine::NewScan(spec) returns a ScanCursor
/// streaming the matching rows.
///
/// Pushing the predicate into the engines is what separates a native
/// versioned store from bolt-on versioning (§3): the engines evaluate the
/// predicate on the raw record bytes inside their scan loops — before
/// multi-branch bitmap annotation, before any copy-out — so
/// predicate-failing records cost one comparison, not a materialization.
///
/// Work accounting: a cursor's ScanStats count the *live rows of the
/// view* it examined (after version resolution, before the predicate),
/// and their projected bytes. Engines also accumulate these lifetime
/// totals into EngineStats::rows_scanned / bytes_scanned via the
/// ScanCounters they embed.

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "columnar/zone_map.h"
#include "common/result.h"
#include "query/predicate.h"
#include "storage/record.h"
#include "storage/schema.h"
#include "version/types.h"

namespace decibel {

/// What "in A but not in B" means (§2.2.3 Difference; Table 1 query 2).
enum class DiffMode {
  /// Key presence, the SQL "id NOT IN" semantics of benchmark Q2.
  kByKey,
  /// Record-version identity: an updated record shows up on both sides
  /// (its new version in one, its old version in the other). This is the
  /// mode merges build on.
  kByContent,
};

/// The view a scan reads.
enum class ScanView : uint8_t {
  kBranch,  ///< one branch head
  kCommit,  ///< one historical commit
  kMulti,   ///< several branch heads, rows annotated with membership
  kHeads,   ///< all active branch heads (facade-resolved to kMulti)
  kDiff,    ///< rows of `branch` absent from `diff_base` (positive diff)
};

/// A declarative description of one read. Build with the static view
/// constructors, then chain Where/Project/WithLimit/Parallel:
///
///   db->NewScan(ScanSpec::Branch(dev)
///                   .Where(*Predicate::Compare(schema, "c1",
///                                              CompareOp::kGe, 40))
///                   .Project({0, 1})
///                   .WithLimit(100));
struct ScanSpec {
  ScanView view = ScanView::kBranch;
  BranchId branch = kMasterBranch;      ///< kBranch; left side of kDiff
  CommitId commit = kInvalidCommit;     ///< kCommit
  std::vector<BranchId> branches;       ///< kMulti (facade fills for kHeads)
  BranchId diff_base = kInvalidBranch;  ///< kDiff: the "NOT IN" side
  DiffMode diff_mode = DiffMode::kByKey;

  /// Conjunction of column comparisons evaluated inside the engine scan
  /// loop; empty matches everything.
  Predicate predicate;
  /// Column positions the caller will read; empty means all columns.
  /// Projected bytes (header + projected column widths) are what
  /// bytes_scanned charges per row. The primary key and the projected
  /// columns are always valid in emitted rows; the CONTENTS OF OTHER
  /// COLUMNS ARE UNSPECIFIED — zero-copy streaming paths expose the
  /// stored bytes, materializing paths (diff views, parallel segment
  /// scans) copy only the projection and leave the rest zeroed.
  std::vector<size_t> projection;
  /// Stop after this many emitted rows; 0 means unlimited.
  uint64_t limit = 0;
  /// Scan-thread hint for engines that can scan segments in parallel
  /// (§3.4); 0 defers to EngineOptions::scan_threads.
  int parallelism = 0;

  static ScanSpec Branch(BranchId b) {
    ScanSpec spec;
    spec.view = ScanView::kBranch;
    spec.branch = b;
    return spec;
  }
  static ScanSpec Commit(CommitId c) {
    ScanSpec spec;
    spec.view = ScanView::kCommit;
    spec.commit = c;
    return spec;
  }
  static ScanSpec Multi(std::vector<BranchId> bs) {
    ScanSpec spec;
    spec.view = ScanView::kMulti;
    spec.branches = std::move(bs);
    return spec;
  }
  /// All active branch heads (Table 1 query 4). Only Decibel::NewScan can
  /// resolve the branch list; engines reject this view.
  static ScanSpec Heads() {
    ScanSpec spec;
    spec.view = ScanView::kHeads;
    return spec;
  }
  /// Rows live in \p a whose key (kByKey) or version (kByContent) is
  /// absent from \p b — Table 1 query 2's "id NOT IN" shape.
  static ScanSpec Diff(BranchId a, BranchId b,
                       DiffMode mode = DiffMode::kByKey) {
    ScanSpec spec;
    spec.view = ScanView::kDiff;
    spec.branch = a;
    spec.diff_base = b;
    spec.diff_mode = mode;
    return spec;
  }

  ScanSpec& Where(Predicate p) {
    predicate = std::move(p);
    return *this;
  }
  ScanSpec& Project(std::vector<size_t> columns) {
    projection = std::move(columns);
    return *this;
  }
  ScanSpec& WithLimit(uint64_t n) {
    limit = n;
    return *this;
  }
  ScanSpec& Parallel(int threads) {
    parallelism = threads;
    return *this;
  }
};

/// Resolves column names to a projection list for ScanSpec::Project.
Result<std::vector<size_t>> ResolveProjection(
    const Schema& schema, const std::vector<std::string>& columns);

/// Rejects specs no engine can serve: unknown projection or predicate
/// columns, a kMulti view with no branches, a kHeads view (engines need
/// the facade to resolve the branch list).
Status ValidateScanSpec(const ScanSpec& spec, const Schema& schema);

/// Bytes a scan charges per examined row: the full record when
/// \p projection is empty, otherwise header byte + projected widths.
uint32_t ProjectedRowBytes(const Schema& schema,
                           const std::vector<size_t>& projection);

/// Work counters of one cursor (the engine-reported numbers behind
/// query::QueryStats).
struct ScanStats {
  /// Live rows of the view examined (post version-resolution,
  /// pre-predicate).
  uint64_t rows_scanned = 0;
  /// Rows that passed the predicate and were handed to the caller.
  uint64_t rows_emitted = 0;
  /// Projected bytes of the examined rows (the *logical* work measure —
  /// what a skip-free scan of the view would charge).
  uint64_t bytes_scanned = 0;
  /// Bytes actually fetched from storage pages after zone-map and
  /// compressed-page skipping: stored (possibly compressed) page bytes
  /// for every page the cursor pinned or had to inspect. This is the
  /// real-I/O measure the pushdown benchmarks gate on.
  uint64_t bytes_read = 0;
  /// Whole segment files proven irrelevant by their zone maps and never
  /// opened by the cursor.
  uint64_t segments_skipped = 0;
  /// Pages skipped without decoding: zone-map misses plus compressed
  /// pages whose strip evaluation proved zero matching rows.
  uint64_t pages_skipped = 0;
};

/// One row from a cursor. The record view stays valid until the next
/// call to Next(); `branches` is non-null only for multi-branch views and
/// holds positions into the cursor's branches() list.
struct ScanRow {
  RecordRef record;
  const std::vector<uint32_t>* branches = nullptr;
};

/// Pull cursor over the rows a ScanSpec selects.
class ScanCursor {
 public:
  virtual ~ScanCursor() = default;
  /// Advances to the next matching row; false at end or error (check
  /// status()).
  virtual bool Next(ScanRow* out) = 0;
  virtual const Status& status() const = 0;
  /// Work done so far; final after Next() returns false.
  virtual const ScanStats& stats() const = 0;
  /// The resolved branch list of a multi-branch scan (ScanRow::branches
  /// positions index into it); empty for single-version views.
  virtual const std::vector<BranchId>& branches() const;
};

/// Lifetime scan-work totals an engine embeds; cursors flush their
/// ScanStats here on destruction (surfaced as EngineStats::rows_scanned
/// / bytes_scanned).
class ScanCounters {
 public:
  void Add(const ScanStats& stats) {
    rows_.fetch_add(stats.rows_scanned, std::memory_order_relaxed);
    bytes_.fetch_add(stats.bytes_scanned, std::memory_order_relaxed);
    bytes_read_.fetch_add(stats.bytes_read, std::memory_order_relaxed);
    segments_skipped_.fetch_add(stats.segments_skipped,
                                std::memory_order_relaxed);
    pages_skipped_.fetch_add(stats.pages_skipped, std::memory_order_relaxed);
  }
  uint64_t rows() const { return rows_.load(std::memory_order_relaxed); }
  uint64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  uint64_t bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }
  uint64_t segments_skipped() const {
    return segments_skipped_.load(std::memory_order_relaxed);
  }
  uint64_t pages_skipped() const {
    return pages_skipped_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> rows_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> segments_skipped_{0};
  std::atomic<uint64_t> pages_skipped_{0};
};

/// A Predicate resolved against a schema for tight scan loops: column
/// offsets and types are pre-looked-up so the per-row check touches only
/// the record bytes — no schema indirection, no RecordRef construction
/// for rows that fail.
class PreparedPredicate {
 public:
  PreparedPredicate() = default;  ///< empty: matches everything
  PreparedPredicate(const Predicate& predicate, const Schema& schema);

  bool empty() const { return comparisons_.empty(); }

  /// \p record points at a full serialized record (header + columns).
  bool Matches(const char* record) const {
    for (const Cmp& cmp : comparisons_) {
      if (!MatchesOne(cmp, record)) return false;
    }
    return true;
  }

  /// Batch form of Matches for pinned pages: for i in [0, n),
  /// mask[i] &= Matches(record i). Records are packed with \p stride
  /// bytes between them. Numeric comparisons go through the columnar
  /// SIMD kernels (AVX2 when available); strings fall back to scalar.
  /// The caller seeds the mask (typically all-ones) and is responsible
  /// for tombstone exclusion.
  void MatchBatch(const char* base, uint32_t n, uint32_t stride,
                  uint8_t* mask) const;

  /// Could any live record in \p zone satisfy this predicate? False
  /// proves the zone (a page, segment, or tail) can be skipped whole.
  bool MayMatch(const columnar::ZoneMap& zone) const;

  /// The source comparisons, for evaluation on compressed pages
  /// (columnar::CountMatchesCompressed).
  const std::vector<Comparison>& raw_comparisons() const { return raw_; }

 private:
  struct Cmp {
    uint32_t column = 0;
    uint32_t offset = 0;
    uint32_t width = 0;
    FieldType type = FieldType::kInt32;
    CompareOp op = CompareOp::kEq;
    int64_t int_value = 0;
    double double_value = 0;
    std::string string_value;
  };

  static bool MatchesOne(const Cmp& cmp, const char* record);

  std::vector<Cmp> comparisons_;
  std::vector<Comparison> raw_;
};

}  // namespace decibel

#endif  // DECIBEL_ENGINE_SCAN_SPEC_H_
