#ifndef DECIBEL_ENGINE_SCAN_UTIL_H_
#define DECIBEL_ENGINE_SCAN_UTIL_H_

/// \file scan_util.h
/// Shared ScanCursor building blocks: a buffered cursor for read paths
/// that are naturally producer-driven (diff views, parallel segment
/// scans), and the shared kDiff cursor factory.

#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "engine/scan_spec.h"

namespace decibel {

/// Copies a record for buffered cursors. An empty projection copies the
/// whole record; otherwise only the header, the primary key and the
/// projected columns are copied (the rest stays zero) — the copy-out
/// saving a narrow projection buys on materializing read paths.
inline std::string ProjectRecordCopy(const Schema& schema, Slice record,
                                     const std::vector<size_t>& projection) {
  if (projection.empty()) return record.ToString();
  std::string buf(schema.record_size(), '\0');
  buf[0] = record[0];
  auto copy_column = [&](size_t col) {
    memcpy(buf.data() + schema.offset(col),
           record.data() + schema.offset(col), schema.column(col).width);
  };
  copy_column(0);  // identity travels with every row
  for (size_t col : projection) copy_column(col);
  return buf;
}

/// A cursor over rows materialized up front. Producers filter with the
/// pushed-down predicate *before* adding rows, so predicate-failing
/// records are never copied; a non-empty projection narrows each copy to
/// the header, the key and the projected columns.
class BufferedCursor : public ScanCursor {
 public:
  BufferedCursor(const Schema* schema, ScanCounters* counters)
      : schema_(schema), counters_(counters) {}
  ~BufferedCursor() override {
    if (counters_ != nullptr) counters_->Add(stats_);
  }

  /// Copies one record into the buffer (see ProjectRecordCopy).
  void AddRow(Slice record, const std::vector<size_t>& projection) {
    rows_.push_back(ProjectRecordCopy(*schema_, record, projection));
  }

  /// Adopts an already-projected copy produced elsewhere (the parallel
  /// segment-scan workers).
  void AddOwnedRow(std::string record) { rows_.push_back(std::move(record)); }

  /// AddRow plus the multi-branch membership annotation. Callers must
  /// annotate either every buffered row or none.
  void AddAnnotatedRow(std::string record, std::vector<uint32_t> present) {
    rows_.push_back(std::move(record));
    annotations_.push_back(std::move(present));
  }

  size_t buffered() const { return rows_.size(); }
  std::vector<BranchId>* mutable_branch_list() { return &branch_list_; }
  ScanStats* mutable_stats() { return &stats_; }
  void set_status(Status status) { status_ = std::move(status); }

  bool Next(ScanRow* out) override {
    if (!status_.ok() || next_ >= rows_.size()) return false;
    out->record = RecordRef(schema_, Slice(rows_[next_]));
    out->branches = annotations_.empty() ? nullptr : &annotations_[next_];
    ++next_;
    ++stats_.rows_emitted;
    return true;
  }
  const Status& status() const override { return status_; }
  const ScanStats& stats() const override { return stats_; }
  const std::vector<BranchId>& branches() const override {
    return branch_list_;
  }

 private:
  const Schema* schema_;
  ScanCounters* counters_;
  std::vector<std::string> rows_;
  std::vector<std::vector<uint32_t>> annotations_;
  std::vector<BranchId> branch_list_;
  size_t next_ = 0;
  ScanStats stats_;
  Status status_;
};

/// Serves a kDiff ScanSpec on top of an engine's Diff machinery: runs the
/// positive diff eagerly, applying the pushed-down predicate before each
/// row is copied into the buffer and stopping the copies at spec.limit.
/// All three engines dispatch their kDiff views here.
Result<std::unique_ptr<ScanCursor>> MakeDiffScanCursor(
    StorageEngine* engine, const ScanSpec& spec, ScanCounters* counters);

}  // namespace decibel

#endif  // DECIBEL_ENGINE_SCAN_UTIL_H_
