#include "engine/scan_spec.h"

#include <cstring>

#include "columnar/simd_filter.h"

namespace decibel {

const std::vector<BranchId>& ScanCursor::branches() const {
  static const std::vector<BranchId> kEmpty;
  return kEmpty;
}

Result<std::vector<size_t>> ResolveProjection(
    const Schema& schema, const std::vector<std::string>& columns) {
  std::vector<size_t> out;
  out.reserve(columns.size());
  for (const std::string& name : columns) {
    const int col = schema.FindColumn(name);
    if (col < 0) {
      return Status::InvalidArgument("projection: no column '" + name + "'");
    }
    out.push_back(static_cast<size_t>(col));
  }
  return out;
}

Status ValidateScanSpec(const ScanSpec& spec, const Schema& schema) {
  if (spec.view == ScanView::kHeads) {
    return Status::InvalidArgument(
        "scan: kHeads must be resolved by Decibel::NewScan (engines need "
        "an explicit branch list)");
  }
  if (spec.view == ScanView::kMulti && spec.branches.empty()) {
    return Status::InvalidArgument("scan: multi-branch view needs branches");
  }
  for (size_t col : spec.projection) {
    if (col >= schema.num_columns()) {
      return Status::InvalidArgument("scan: projection column " +
                                     std::to_string(col) + " out of range");
    }
  }
  for (const Comparison& cmp : spec.predicate.comparisons()) {
    if (cmp.column >= schema.num_columns()) {
      return Status::InvalidArgument("scan: predicate column " +
                                     std::to_string(cmp.column) +
                                     " out of range");
    }
  }
  return Status::OK();
}

uint32_t ProjectedRowBytes(const Schema& schema,
                           const std::vector<size_t>& projection) {
  if (projection.empty()) return schema.record_size();
  uint32_t bytes = 1;  // record header
  for (size_t col : projection) bytes += schema.column(col).width;
  return bytes;
}

PreparedPredicate::PreparedPredicate(const Predicate& predicate,
                                     const Schema& schema) {
  raw_ = predicate.comparisons();
  comparisons_.reserve(predicate.comparisons().size());
  for (const Comparison& src : predicate.comparisons()) {
    Cmp cmp;
    cmp.column = static_cast<uint32_t>(src.column);
    cmp.offset = schema.offset(src.column);
    cmp.width = schema.column(src.column).width;
    cmp.type = schema.column(src.column).type;
    cmp.op = src.op;
    cmp.int_value = src.int_value;
    cmp.double_value = src.double_value;
    cmp.string_value = src.string_value;
    comparisons_.push_back(std::move(cmp));
  }
}

bool PreparedPredicate::MatchesOne(const Cmp& cmp, const char* record) {
  const char* p = record + cmp.offset;
  switch (cmp.type) {
    case FieldType::kInt32: {
      int32_t v;
      memcpy(&v, p, sizeof(v));
      return ApplyCompareOp<int64_t>(cmp.op, v, cmp.int_value);
    }
    case FieldType::kInt64: {
      int64_t v;
      memcpy(&v, p, sizeof(v));
      return ApplyCompareOp<int64_t>(cmp.op, v, cmp.int_value);
    }
    case FieldType::kDouble: {
      double v;
      memcpy(&v, p, sizeof(v));
      return ApplyCompareOp<double>(cmp.op, v, cmp.double_value);
    }
    case FieldType::kString: {
      size_t w = cmp.width;
      while (w > 0 && p[w - 1] == '\0') --w;
      return ApplyCompareOp<std::string_view>(cmp.op, std::string_view(p, w),
                                       std::string_view(cmp.string_value));
    }
  }
  return false;
}

void PreparedPredicate::MatchBatch(const char* base, uint32_t n,
                                   uint32_t stride, uint8_t* mask) const {
  for (const Cmp& cmp : comparisons_) {
    const char* col = base + cmp.offset;
    switch (cmp.type) {
      case FieldType::kInt32: {
        // The scalar path compares in the int64 domain; a literal outside
        // int32 range makes the comparison constant over every stored
        // value, so resolve it here rather than truncate the rhs.
        if (cmp.int_value > INT32_MAX || cmp.int_value < INT32_MIN) {
          const bool rhs_high = cmp.int_value > INT32_MAX;
          bool all = false;
          switch (cmp.op) {
            case CompareOp::kEq:
              all = false;
              break;
            case CompareOp::kNe:
              all = true;
              break;
            case CompareOp::kLt:
            case CompareOp::kLe:
              all = rhs_high;
              break;
            case CompareOp::kGt:
            case CompareOp::kGe:
              all = !rhs_high;
              break;
          }
          if (!all) memset(mask, 0, n);
          break;
        }
        columnar::FilterStridedI32(col, stride, n, cmp.op,
                                   static_cast<int32_t>(cmp.int_value), mask);
        break;
      }
      case FieldType::kInt64:
        columnar::FilterStridedI64(col, stride, n, cmp.op, cmp.int_value,
                                   mask);
        break;
      case FieldType::kDouble:
        columnar::FilterStridedF64(col, stride, n, cmp.op, cmp.double_value,
                                   mask);
        break;
      case FieldType::kString:
        for (uint32_t i = 0; i < n; ++i) {
          if (mask[i] &&
              !MatchesOne(cmp, base + static_cast<size_t>(i) * stride)) {
            mask[i] = 0;
          }
        }
        break;
    }
  }
}

bool PreparedPredicate::MayMatch(const columnar::ZoneMap& zone) const {
  if (!zone.has_live_rows()) return false;
  for (const Cmp& cmp : comparisons_) {
    if (!zone.MayMatch(cmp.column, cmp.type, cmp.op, cmp.int_value,
                       cmp.double_value)) {
      return false;
    }
  }
  return true;
}

}  // namespace decibel
