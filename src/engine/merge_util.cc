#include "engine/merge_util.h"

namespace decibel {

bool RecordsDiffer(const Schema& schema, const RecordRef& a,
                   const RecordRef& b) {
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (a.ColumnBytes(c) != b.ColumnBytes(c)) return true;
  }
  return false;
}

FieldMergeOutcome ThreeWayFieldMerge(const Schema& schema,
                                     const RecordRef& base,
                                     const RecordRef& left,
                                     const RecordRef& right, bool left_wins) {
  FieldMergeOutcome out;
  bool any_from_left = false;
  bool any_from_right = false;
  Record merged(&schema, left.data());  // start from left, patch from right

  for (size_t c = 0; c < schema.num_columns(); ++c) {
    const Slice b = base.ColumnBytes(c);
    const Slice l = left.ColumnBytes(c);
    const Slice r = right.ColumnBytes(c);
    const bool left_changed = l != b;
    const bool right_changed = r != b;
    if (left_changed && right_changed && l != r) {
      // Overlapping field update: precedence decides (§2.2.3).
      out.conflict = true;
      out.conflict_columns.push_back(c);
      if (!left_wins) merged.CopyColumnFrom(c, right);
      (left_wins ? any_from_left : any_from_right) = true;
    } else if (right_changed && !left_changed) {
      // Auto-merge the right side's non-overlapping update.
      merged.CopyColumnFrom(c, right);
      any_from_right = true;
    } else if (left_changed) {
      any_from_left = true;
    }
  }

  if (any_from_left && any_from_right) {
    out.needs_new_record = true;
    out.merged = std::move(merged);
  } else {
    // The reconciled record equals one side verbatim; keep that version.
    out.keep_left = any_from_left || !any_from_right;
  }
  return out;
}

}  // namespace decibel
