#ifndef DECIBEL_ENGINE_MERGE_UTIL_H_
#define DECIBEL_ENGINE_MERGE_UTIL_H_

/// \file merge_util.h
/// Conflict semantics shared by all three engines (§2.2.3): "two records
/// conflict if they (a) have the same primary key and (b) different field
/// values"; a three-way merge compares each side against the lowest
/// common ancestor version field by field, auto-merging non-overlapping
/// field updates and resolving overlapping ones by branch precedence.

#include <optional>
#include <vector>

#include "storage/record.h"
#include "storage/schema.h"

namespace decibel {

/// Outcome of reconciling one primary key across a merge.
struct FieldMergeOutcome {
  /// True if overlapping fields changed differently on both sides (a real
  /// conflict that precedence had to resolve).
  bool conflict = false;
  /// True if the reconciled record differs from both inputs (fields taken
  /// from each side) and therefore must be written as a fresh version.
  bool needs_new_record = false;
  /// The reconciled record (set when needs_new_record).
  std::optional<Record> merged;
  /// When !needs_new_record: whether the winning version is the left one.
  bool keep_left = true;
  /// The columns both sides changed differently (set when conflict).
  std::vector<size_t> conflict_columns;
};

/// Three-way field merge of \p left and \p right against ancestor \p base.
/// \p left_wins breaks per-field conflicts in favour of the left record.
FieldMergeOutcome ThreeWayFieldMerge(const Schema& schema,
                                     const RecordRef& base,
                                     const RecordRef& left,
                                     const RecordRef& right, bool left_wins);

/// True if any column's bytes differ between \p a and \p b.
bool RecordsDiffer(const Schema& schema, const RecordRef& a,
                   const RecordRef& b);

}  // namespace decibel

#endif  // DECIBEL_ENGINE_MERGE_UTIL_H_
