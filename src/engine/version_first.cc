#include "engine/version_first.h"

#include <algorithm>
#include <map>

#include "common/coding.h"
#include "engine/merge_util.h"
#include "engine/scan_util.h"

namespace decibel {

namespace {

/// Reads one segment's records [0, bound) newest-to-oldest, pinning one
/// page at a time.
class ReverseSegmentReader {
 public:
  ReverseSegmentReader(HeapFile* file, const Schema* schema, uint64_t bound)
      : file_(file),
        schema_(schema),
        next_(std::min(bound, file->num_records())) {}

  /// Yields the next (older) record; false at the start of the segment or
  /// on error.
  bool Prev(RecordRef* out, uint64_t* index) {
    if (!status_.ok() || next_ == 0) return false;
    const uint64_t idx = --next_;
    const uint64_t page_no = idx / file_->records_per_page();
    if (page_no != pinned_page_no_) {
      auto page = file_->PinPage(page_no);
      if (!page.ok()) {
        status_ = page.status();
        return false;
      }
      page_ = std::move(page).MoveValueUnsafe();
      pinned_page_no_ = page_no;
    }
    const uint64_t slot = idx % file_->records_per_page();
    *out = RecordRef(schema_,
                     Slice(page_.payload + slot * file_->record_size(),
                           file_->record_size()));
    if (index != nullptr) *index = idx;
    return true;
  }

  const Status& status() const { return status_; }

 private:
  HeapFile* file_;
  const Schema* schema_;
  uint64_t next_;
  HeapFile::PinnedPage page_;
  uint64_t pinned_page_no_ = UINT64_MAX;
  Status status_;
};

}  // namespace

// ------------------------------------------------------------ construction

Result<std::unique_ptr<VersionFirstEngine>> VersionFirstEngine::Make(
    const Schema& schema, const EngineOptions& options) {
  std::unique_ptr<VersionFirstEngine> engine(
      new VersionFirstEngine(schema, options));
  DECIBEL_RETURN_NOT_OK(CreateDir(options.directory));
  if (!options.checkpoint_tag.empty() || FileExists(engine->MetaPath())) {
    DECIBEL_RETURN_NOT_OK(engine->LoadExisting());
  } else {
    DECIBEL_RETURN_NOT_OK(engine->InitFresh());
  }
  return engine;
}

std::string VersionFirstEngine::MetaPath(const std::string& tag) const {
  const std::string base = JoinPath(options_.directory, "engine.meta");
  return tag.empty() ? base : base + "." + tag;
}

std::string VersionFirstEngine::SegmentPath(uint32_t seg) const {
  return JoinPath(options_.directory, "seg_" + std::to_string(seg) + ".dbhf");
}

Result<uint32_t> VersionFirstEngine::NewSegment(
    BranchId owner, std::vector<ParentLink> parents) {
  auto segment = std::make_unique<Segment>();
  segment->id = static_cast<uint32_t>(segments_.size());
  segment->owner = owner;
  segment->parents = std::move(parents);
  HeapFile::Options hopts;
  hopts.page_size = options_.page_size;
  hopts.verify_checksums = options_.verify_checksums;
  DECIBEL_ASSIGN_OR_RETURN(
      segment->file, HeapFile::Create(SegmentPath(segment->id),
                                      schema_.record_size(), hopts, &pool_));
  segments_.push_back(std::move(segment));
  return segments_.back()->id;
}

Status VersionFirstEngine::InitFresh() {
  DECIBEL_ASSIGN_OR_RETURN(uint32_t seg, NewSegment(kMasterBranch, {}));
  head_seg_[kMasterBranch] = seg;
  return Status::OK();
}

Status VersionFirstEngine::LoadExisting() {
  const std::string& tag = options_.checkpoint_tag;
  DECIBEL_ASSIGN_OR_RETURN(std::string meta, ReadFileToString(MetaPath(tag)));
  Slice input(meta);
  DECIBEL_RETURN_NOT_OK(CheckEngineMetaHeader(&input, "version-first"));
  Slice schema_blob;
  if (!GetLengthPrefixed(&input, &schema_blob)) {
    return Status::Corruption("version-first: truncated meta");
  }
  Slice schema_slice = schema_blob;
  DECIBEL_ASSIGN_OR_RETURN(Schema stored, Schema::DecodeFrom(&schema_slice));
  if (!(stored == schema_)) {
    return Status::InvalidArgument(
        "version-first: schema mismatch on reopen");
  }
  uint64_t num_segments;
  if (!GetVarint64(&input, &num_segments)) {
    return Status::Corruption("version-first: truncated meta");
  }
  HeapFile::Options hopts;
  hopts.verify_checksums = options_.verify_checksums;
  for (uint64_t i = 0; i < num_segments; ++i) {
    auto segment = std::make_unique<Segment>();
    uint64_t num_parents;
    if (!GetVarint32(&input, &segment->id) ||
        !GetVarint32(&input, &segment->owner) ||
        !GetVarint64(&input, &num_parents)) {
      return Status::Corruption("version-first: truncated segment meta");
    }
    if (segment->id != segments_.size()) {
      return Status::Corruption("version-first: segment ids not dense");
    }
    for (uint64_t p = 0; p < num_parents; ++p) {
      ParentLink link;
      if (!GetVarint32(&input, &link.seg) ||
          !GetVarint64(&input, &link.bound)) {
        return Status::Corruption("version-first: truncated parent link");
      }
      if (link.seg >= segment->id) {
        return Status::Corruption(
            "version-first: parent link to non-ancestor segment");
      }
      segment->parents.push_back(link);
    }
    HeapFile::CheckpointState cs;
    uint32_t tail_crc;
    if (!GetVarint64(&input, &cs.num_records) ||
        !GetVarint32(&input, &tail_crc)) {
      return Status::Corruption("version-first: truncated segment state");
    }
    cs.tail_crc = tail_crc;
    if (!tag.empty()) {
      // Branch heads resolve to file->num_records(), so post-checkpoint
      // appends must be physically discarded — roll the segment back to
      // its checkpointed record count before anything reads it.
      DECIBEL_ASSIGN_OR_RETURN(
          segment->file,
          HeapFile::OpenAtCheckpoint(SegmentPath(segment->id), hopts, &pool_,
                                     cs));
    } else {
      DECIBEL_ASSIGN_OR_RETURN(
          segment->file, HeapFile::Open(SegmentPath(segment->id), hopts,
                                        &pool_));
    }
    segments_.push_back(std::move(segment));
  }
  uint64_t num_heads, num_commits;
  if (!GetVarint64(&input, &num_heads)) {
    return Status::Corruption("version-first: truncated head map");
  }
  for (uint64_t i = 0; i < num_heads; ++i) {
    uint32_t branch, seg;
    if (!GetVarint32(&input, &branch) || !GetVarint32(&input, &seg)) {
      return Status::Corruption("version-first: truncated head entry");
    }
    if (seg >= segments_.size()) {
      return Status::Corruption("version-first: head points past segments");
    }
    head_seg_[branch] = seg;
  }
  if (!GetVarint64(&input, &num_commits)) {
    return Status::Corruption("version-first: truncated commit map");
  }
  for (uint64_t i = 0; i < num_commits; ++i) {
    uint64_t commit;
    Root root;
    if (!GetVarint64(&input, &commit) || !GetVarint32(&input, &root.seg) ||
        !GetVarint64(&input, &root.bound)) {
      return Status::Corruption("version-first: truncated commit entry");
    }
    if (root.seg >= segments_.size()) {
      return Status::Corruption(
          "version-first: commit points past segments");
    }
    commits_[commit] = root;
  }
  return Status::OK();
}

std::string VersionFirstEngine::EncodeMeta() {
  std::string meta;
  PutEngineMetaHeader(&meta);
  std::string schema_blob;
  schema_.EncodeTo(&schema_blob);
  PutLengthPrefixed(&meta, schema_blob);
  PutVarint64(&meta, segments_.size());
  for (const auto& segment : segments_) {
    PutVarint32(&meta, segment->id);
    PutVarint32(&meta, segment->owner);
    PutVarint64(&meta, segment->parents.size());
    for (const ParentLink& link : segment->parents) {
      PutVarint32(&meta, link.seg);
      PutVarint64(&meta, link.bound);
    }
    const HeapFile::CheckpointState cs = segment->file->GetCheckpointState();
    PutVarint64(&meta, cs.num_records);
    PutVarint32(&meta, cs.tail_crc);
  }
  PutVarint64(&meta, head_seg_.size());
  for (const auto& [branch, seg] : head_seg_) {
    PutVarint32(&meta, branch);
    PutVarint32(&meta, seg);
  }
  {
    std::lock_guard<std::mutex> commit_lock(commit_mu_);
    PutVarint64(&meta, commits_.size());
    for (const auto& [commit, root] : commits_) {
      PutVarint64(&meta, commit);
      PutVarint32(&meta, root.seg);
      PutVarint64(&meta, root.bound);
    }
  }
  return meta;
}

Status VersionFirstEngine::Flush() {
  std::unique_lock<std::shared_mutex> registry_lock(registry_mu_);
  for (auto& segment : segments_) {
    DECIBEL_RETURN_NOT_OK(segment->file->Flush());
  }
  return WriteStringToFile(MetaPath(), EncodeMeta());
}

Status VersionFirstEngine::Checkpoint(const std::string& tag, bool sync) {
  std::unique_lock<std::shared_mutex> registry_lock(registry_mu_);
  for (auto& segment : segments_) {
    DECIBEL_RETURN_NOT_OK(sync ? segment->file->Sync()
                               : segment->file->Flush());
  }
  return AtomicWriteFile(MetaPath(tag), EncodeMeta(), sync);
}

Status VersionFirstEngine::RemoveCheckpoint(const std::string& tag) {
  return RemoveFile(MetaPath(tag));
}

// --------------------------------------------------------- version control

Result<VersionFirstEngine::Root> VersionFirstEngine::RootForBranch(
    BranchId branch) const {
  auto it = head_seg_.find(branch);
  if (it == head_seg_.end()) {
    return Status::NotFound("version-first: unknown branch " +
                            std::to_string(branch));
  }
  return Root{it->second, segments_[it->second]->file->num_records()};
}

Result<VersionFirstEngine::Root> VersionFirstEngine::RootForCommit(
    CommitId commit) const {
  std::lock_guard<std::mutex> commit_lock(commit_mu_);
  auto it = commits_.find(commit);
  if (it == commits_.end()) {
    return Status::NotFound("version-first: unknown commit " +
                            std::to_string(commit));
  }
  return it->second;
}

Status VersionFirstEngine::CreateBranch(BranchId child, BranchId parent,
                                        CommitId base_commit, bool at_head) {
  // "a new child segment file is created that notes the parent file and
  // the offset of this branch point" (§3.3). The parent keeps appending
  // to its own segment; records after the branch point are isolated.
  // Growing segments_/head_seg_ changes the registry shape.
  std::unique_lock<std::shared_mutex> registry_lock(registry_mu_);
  Root base{0, 0};
  if (at_head) {
    DECIBEL_ASSIGN_OR_RETURN(base, RootForBranch(parent));
  } else {
    DECIBEL_ASSIGN_OR_RETURN(base, RootForCommit(base_commit));
  }
  DECIBEL_ASSIGN_OR_RETURN(
      uint32_t seg, NewSegment(child, {ParentLink{base.seg, base.bound}}));
  head_seg_[child] = seg;
  return Status::OK();
}

Status VersionFirstEngine::Commit(BranchId branch, CommitId commit_id) {
  std::shared_lock<std::shared_mutex> registry_lock(registry_mu_);
  // The stripe pins the head segment's record count while we capture it.
  std::lock_guard<std::mutex> stripe_lock(stripes_.ForBranch(branch));
  return CommitImpl(branch, commit_id);
}

Status VersionFirstEngine::CommitImpl(BranchId branch, CommitId commit_id) {
  // "version-first supports commits by mapping a commit ID to the byte
  // offset of the latest record active in the committing branch's segment
  // file" (§3.3).
  DECIBEL_ASSIGN_OR_RETURN(Root root, RootForBranch(branch));
  std::lock_guard<std::mutex> commit_lock(commit_mu_);
  commits_[commit_id] = root;
  return Status::OK();
}

Status VersionFirstEngine::Checkout(CommitId commit) {
  // A checkout only needs the (segment, offset) pair — near-free, which is
  // why Table 2 has no version-first rows.
  return RootForCommit(commit).status();
}

// ----------------------------------------------------------------- mutation

Status VersionFirstEngine::ApplyBatch(BranchId branch,
                                      const WriteBatch& batch) {
  // Registry shared (CreateBranch/Merge may not reshape segments_ under
  // us) + the branch's stripe (one writer per head-segment tail). Batches
  // on branches mapping to different stripes run fully in parallel.
  std::shared_lock<std::shared_mutex> registry_lock(registry_mu_);
  std::lock_guard<std::mutex> stripe_lock(stripes_.ForBranch(branch));
  auto it = head_seg_.find(branch);
  if (it == head_seg_.end()) {
    return Status::NotFound("version-first: unknown branch " +
                            std::to_string(branch));
  }
  // Every op is an append to the branch's head segment: "Updates are
  // performed by inserting a new copy of the tuple with the same primary
  // key; branch scans will ignore the earlier copy" and "deletes require
  // a tombstone" (§3.3). A delete-free batch (the bulk-load shape) is
  // one chunked heap append of the whole staged arena.
  HeapFile* file = segments_[it->second]->file.get();
  if (batch.num_appends() == batch.size()) {
    return file->AppendBatch(batch.arena(), batch.num_appends()).status();
  }
  for (const WriteBatch::Op& op : batch.ops()) {
    if (op.kind == WriteBatch::OpKind::kDelete) {
      const Record tombstone = MakeTombstone(&schema_, op.pk);
      DECIBEL_RETURN_NOT_OK(file->Append(tombstone.data()).status());
    } else {
      DECIBEL_RETURN_NOT_OK(file->Append(batch.RecordAt(op).data()).status());
    }
  }
  return Status::OK();
}

// --------------------------------------------------------------- scan order

std::vector<VersionFirstEngine::ScanStep> VersionFirstEngine::ComputeScanOrder(
    const Root& root) const {
  // Collect the ancestry sub-DAG with per-segment visibility bounds
  // (a segment reachable through several paths is visible up to the widest
  // bound) and a lexicographic priority key derived from parent order.
  struct Node {
    uint64_t bound = 0;
    std::vector<uint32_t> priority;  // lexicographically smallest path
    bool has_priority = false;
    std::vector<uint32_t> children;  // children within the sub-DAG
  };
  std::map<uint32_t, Node> nodes;

  // BFS from the root, propagating bounds and priority keys. Priority keys
  // only shrink (lexicographically), bounds only grow, so iterate until
  // fixpoint; ancestries are small (#segments ~ #branches + #merges).
  std::vector<uint32_t> work{root.seg};
  nodes[root.seg].bound = std::min(
      root.bound, segments_[root.seg]->file->num_records());
  nodes[root.seg].has_priority = true;
  while (!work.empty()) {
    const uint32_t cur = work.back();
    work.pop_back();
    const Node& cur_node = nodes[cur];
    const std::vector<uint32_t> cur_priority = cur_node.priority;
    for (uint32_t i = 0; i < segments_[cur]->parents.size(); ++i) {
      const ParentLink& link = segments_[cur]->parents[i];
      Node& parent = nodes[link.seg];
      bool changed = false;
      if (link.bound > parent.bound) {
        parent.bound = link.bound;
        changed = true;
      }
      std::vector<uint32_t> candidate = cur_priority;
      candidate.push_back(i);
      if (!parent.has_priority || candidate < parent.priority) {
        parent.priority = std::move(candidate);
        parent.has_priority = true;
        changed = true;
      }
      if (std::find(parent.children.begin(), parent.children.end(), cur) ==
          parent.children.end()) {
        parent.children.push_back(cur);
      }
      if (changed) work.push_back(link.seg);
    }
  }

  // Kahn's algorithm, children before parents; among ready segments the
  // one with the smallest priority key goes first (this yields the
  // "D - B - C - A" style orders of §3.3).
  std::map<uint32_t, size_t> pending;  // seg -> unscanned children count
  for (auto& [seg, node] : nodes) pending[seg] = 0;
  for (auto& [seg, node] : nodes) {
    for (uint32_t i = 0; i < segments_[seg]->parents.size(); ++i) {
      const uint32_t p = segments_[seg]->parents[i].seg;
      if (nodes.count(p) != 0) ++pending[p];
    }
  }

  std::vector<ScanStep> order;
  order.reserve(nodes.size());
  std::vector<uint32_t> ready;
  for (auto& [seg, node] : nodes) {
    if (pending[seg] == 0) ready.push_back(seg);
  }
  while (!ready.empty()) {
    auto best = std::min_element(
        ready.begin(), ready.end(), [&](uint32_t a, uint32_t b) {
          return nodes[a].priority < nodes[b].priority;
        });
    const uint32_t seg = *best;
    ready.erase(best);
    order.push_back(ScanStep{seg, nodes[seg].bound});
    for (uint32_t i = 0; i < segments_[seg]->parents.size(); ++i) {
      const uint32_t p = segments_[seg]->parents[i].seg;
      auto it = pending.find(p);
      if (it != pending.end() && --it->second == 0) ready.push_back(p);
    }
  }
  return order;
}

// ------------------------------------------------------------ branch scans

/// Streaming single-version scan: walk the scan order newest-to-oldest,
/// suppressing keys already seen ("Decibel uses an in-memory set to track
/// emitted tuples", §3.3). The pushed-down predicate is evaluated inside
/// the segment walk, after version resolution — an old version of a key
/// must still shadow, even when the newest version fails the filter — so
/// a row failing the predicate costs one raw-bytes comparison and never
/// surfaces through the cursor boundary.
///
/// The scan order is captured as (file pointer, bound) pairs at open, so
/// Next never reads the engine's registry: the cursor streams its
/// snapshot while other branches append, create branches, or merge.
class VersionFirstEngine::BranchScanCursor : public ScanCursor {
 public:
  /// One step of the captured scan order.
  struct FileStep {
    HeapFile* file = nullptr;
    uint64_t bound = 0;
  };

  BranchScanCursor(const VersionFirstEngine* engine,
                   std::vector<FileStep> order, const ScanSpec& spec)
      : engine_(engine),
        order_(std::move(order)),
        prepared_(spec.predicate, engine->schema_),
        limit_(spec.limit),
        row_bytes_(ProjectedRowBytes(engine->schema_, spec.projection)) {}
  ~BranchScanCursor() override { engine_->scan_counters_.Add(stats_); }

  bool Next(ScanRow* out) override {
    if (limit_ != 0 && stats_.rows_emitted >= limit_) return false;
    for (;;) {
      if (!reader_.has_value()) {
        if (step_ >= order_.size()) return false;
        const FileStep& step = order_[step_];
        reader_.emplace(step.file, &engine_->schema_, step.bound);
      }
      RecordRef rec;
      if (!reader_->Prev(&rec, nullptr)) {
        if (!reader_->status().ok()) {
          status_ = reader_->status();
          return false;
        }
        reader_.reset();
        ++step_;
        continue;
      }
      if (!seen_.insert(rec.pk()).second) continue;
      if (rec.tombstone()) continue;
      ++stats_.rows_scanned;
      stats_.bytes_scanned += row_bytes_;
      if (!prepared_.Matches(rec.data().data())) continue;
      out->record = rec;
      out->branches = nullptr;
      ++stats_.rows_emitted;
      return true;
    }
  }

  const Status& status() const override { return status_; }
  const ScanStats& stats() const override { return stats_; }

 private:
  const VersionFirstEngine* engine_;
  std::vector<FileStep> order_;
  size_t step_ = 0;
  std::optional<ReverseSegmentReader> reader_;
  std::unordered_set<int64_t> seen_;
  PreparedPredicate prepared_;
  uint64_t limit_;
  uint32_t row_bytes_;
  ScanStats stats_;
  Status status_;
};

/// Multi-branch cursor: pass 1 builds the winner tables eagerly (§3.3's
/// intermediate hash tables); pass 2 streams the winners in (segment,
/// record) order — the paper's output priority queue — pinning one page
/// at a time and checking the predicate on the in-page bytes before the
/// membership annotation, so filtered-out winners are never copied.
class VersionFirstEngine::MultiWinnerCursor : public ScanCursor {
 public:
  using Output =
      std::map<std::pair<uint32_t, uint64_t>, std::vector<uint32_t>>;

  /// \p files is a snapshot of per-segment file pointers (indexed by
  /// segment id) taken under the registry lock at open; Next streams the
  /// winner locations without touching the engine's registry.
  MultiWinnerCursor(const VersionFirstEngine* engine,
                    std::vector<HeapFile*> files, Output output,
                    std::vector<BranchId> branch_list, const ScanSpec& spec)
      : engine_(engine),
        files_(std::move(files)),
        output_(std::move(output)),
        next_(output_.begin()),
        branch_list_(std::move(branch_list)),
        prepared_(spec.predicate, engine->schema_),
        limit_(spec.limit),
        row_bytes_(ProjectedRowBytes(engine->schema_, spec.projection)) {}
  ~MultiWinnerCursor() override { engine_->scan_counters_.Add(stats_); }

  bool Next(ScanRow* out) override {
    if (limit_ != 0 && stats_.rows_emitted >= limit_) return false;
    while (status_.ok() && next_ != output_.end()) {
      const auto& [loc, roots] = *next_;
      HeapFile* file = files_[loc.first];
      const uint64_t page_no = loc.second / file->records_per_page();
      if (loc.first != pinned_seg_ || page_no != pinned_page_no_) {
        auto page = file->PinPage(page_no);
        if (!page.ok()) {
          status_ = page.status();
          return false;
        }
        page_ = std::move(page).MoveValueUnsafe();
        pinned_seg_ = loc.first;
        pinned_page_no_ = page_no;
      }
      const uint64_t slot = loc.second % file->records_per_page();
      const char* bytes = page_.payload + slot * file->record_size();
      ++stats_.rows_scanned;
      stats_.bytes_scanned += row_bytes_;
      const std::vector<uint32_t>* present = &roots;
      ++next_;
      if (!prepared_.Matches(bytes)) continue;
      out->record = RecordRef(&engine_->schema_,
                              Slice(bytes, file->record_size()));
      out->branches = present;
      ++stats_.rows_emitted;
      return true;
    }
    return false;
  }

  const Status& status() const override { return status_; }
  const ScanStats& stats() const override { return stats_; }
  const std::vector<BranchId>& branches() const override {
    return branch_list_;
  }

 private:
  const VersionFirstEngine* engine_;
  std::vector<HeapFile*> files_;
  Output output_;
  Output::const_iterator next_;
  std::vector<BranchId> branch_list_;
  PreparedPredicate prepared_;
  uint64_t limit_;
  uint32_t row_bytes_;
  HeapFile::PinnedPage page_;
  uint32_t pinned_seg_ = UINT32_MAX;
  uint64_t pinned_page_no_ = UINT64_MAX;
  ScanStats stats_;
  Status status_;
};

Result<std::unique_ptr<ScanCursor>> VersionFirstEngine::NewScan(
    const ScanSpec& spec) {
  DECIBEL_RETURN_NOT_OK(ValidateScanSpec(spec, schema_));
  // Roots for live branches are captured under the branch's stripe lock:
  // a head's record count only moves on batch boundaries there, so the
  // snapshot never lands inside a half-applied batch. Commit roots are
  // batch-aligned by construction.
  auto capture_order = [this](const Root& root) {
    std::vector<BranchScanCursor::FileStep> steps;
    for (const ScanStep& s : ComputeScanOrder(root)) {
      steps.push_back({segments_[s.seg]->file.get(), s.bound});
    }
    return steps;
  };
  switch (spec.view) {
    case ScanView::kBranch: {
      std::shared_lock<std::shared_mutex> registry_lock(registry_mu_);
      Root root;
      {
        std::lock_guard<std::mutex> stripe_lock(
            stripes_.ForBranch(spec.branch));
        DECIBEL_ASSIGN_OR_RETURN(root, RootForBranch(spec.branch));
      }
      return std::unique_ptr<ScanCursor>(
          new BranchScanCursor(this, capture_order(root), spec));
    }
    case ScanView::kCommit: {
      DECIBEL_ASSIGN_OR_RETURN(Root root, RootForCommit(spec.commit));
      std::shared_lock<std::shared_mutex> registry_lock(registry_mu_);
      return std::unique_ptr<ScanCursor>(
          new BranchScanCursor(this, capture_order(root), spec));
    }
    case ScanView::kMulti: {
      std::shared_lock<std::shared_mutex> registry_lock(registry_mu_);
      std::vector<Root> roots;
      roots.reserve(spec.branches.size());
      {
        StripeLocks::MultiGuard stripe_locks(stripes_, spec.branches);
        for (BranchId b : spec.branches) {
          DECIBEL_ASSIGN_OR_RETURN(Root root, RootForBranch(b));
          roots.push_back(root);
        }
      }
      std::vector<WinnerTable> tables;
      DECIBEL_RETURN_NOT_OK(BuildWinnerTables(roots, &tables, nullptr));
      MultiWinnerCursor::Output output;
      for (uint32_t r = 0; r < tables.size(); ++r) {
        for (const auto& [pk, winner] : tables[r]) {
          if (winner.tombstone) continue;
          output[{winner.seg, winner.idx}].push_back(r);
        }
      }
      std::vector<HeapFile*> files;
      files.reserve(segments_.size());
      for (const auto& segment : segments_) files.push_back(segment->file.get());
      return std::unique_ptr<ScanCursor>(new MultiWinnerCursor(
          this, std::move(files), std::move(output), spec.branches, spec));
    }
    case ScanView::kDiff:
      return MakeDiffScanCursor(this, spec, &scan_counters_);
    case ScanView::kHeads:
      break;  // rejected by ValidateScanSpec
  }
  return Status::InvalidArgument("version-first: unsupported scan view");
}

Result<Record> VersionFirstEngine::Get(BranchId branch, int64_t pk) {
  // No pk index in this layout (§3.3): walk the ancestry newest-to-oldest
  // and stop at the first version of the key — the same resolution order
  // as a branch scan, with early exit.
  std::shared_lock<std::shared_mutex> registry_lock(registry_mu_);
  Root root;
  {
    std::lock_guard<std::mutex> stripe_lock(stripes_.ForBranch(branch));
    DECIBEL_ASSIGN_OR_RETURN(root, RootForBranch(branch));
  }
  for (const ScanStep& step : ComputeScanOrder(root)) {
    ReverseSegmentReader reader(segments_[step.seg]->file.get(), &schema_,
                                step.bound);
    RecordRef rec;
    while (reader.Prev(&rec, nullptr)) {
      if (rec.pk() != pk) continue;
      if (rec.tombstone()) {
        return Status::NotFound("version-first: pk " + std::to_string(pk) +
                                " deleted in branch " +
                                std::to_string(branch));
      }
      return Record(&schema_, rec.data());
    }
    DECIBEL_RETURN_NOT_OK(reader.status());
  }
  return Status::NotFound("version-first: no record with pk " +
                          std::to_string(pk));
}

// ------------------------------------------------------------ winner tables

Status VersionFirstEngine::BuildWinnerTables(
    const std::vector<Root>& roots, std::vector<WinnerTable>* tables,
    uint64_t* bytes_scanned) const {
  tables->assign(roots.size(), WinnerTable());

  // Per root: scan order and each segment's rank + bound within it.
  struct PerRoot {
    std::unordered_map<uint32_t, uint32_t> rank;
    std::unordered_map<uint32_t, uint64_t> bound;
  };
  std::vector<PerRoot> per_root(roots.size());
  std::map<uint32_t, uint64_t> union_bound;  // seg -> widest bound
  for (size_t r = 0; r < roots.size(); ++r) {
    const std::vector<ScanStep> order = ComputeScanOrder(roots[r]);
    for (uint32_t pos = 0; pos < order.size(); ++pos) {
      per_root[r].rank[order[pos].seg] = pos;
      per_root[r].bound[order[pos].seg] = order[pos].bound;
      uint64_t& ub = union_bound[order[pos].seg];
      ub = std::max(ub, order[pos].bound);
    }
  }

  // One reverse pass over every segment in the union of ancestries
  // ("multiple intermediate hash tables ... scanning the segment from the
  // branch point backwards", §3.3 — we fold the intermediate tables into
  // one winner table per branch keyed by scan rank).
  for (const auto& [seg, bound] : union_bound) {
    ReverseSegmentReader reader(segments_[seg]->file.get(), &schema_, bound);
    RecordRef rec;
    uint64_t idx;
    while (reader.Prev(&rec, &idx)) {
      if (bytes_scanned != nullptr) *bytes_scanned += schema_.record_size();
      const int64_t pk = rec.pk();
      for (size_t r = 0; r < roots.size(); ++r) {
        auto rank_it = per_root[r].rank.find(seg);
        if (rank_it == per_root[r].rank.end()) continue;
        if (idx >= per_root[r].bound[seg]) continue;
        const uint32_t rank = rank_it->second;
        auto [it, inserted] = (*tables)[r].try_emplace(pk);
        // Newer wins: smaller rank, then larger record index.
        if (inserted || rank < it->second.rank ||
            (rank == it->second.rank && idx > it->second.idx)) {
          it->second = Winner{seg, idx, rank, rec.tombstone()};
        }
      }
    }
    DECIBEL_RETURN_NOT_OK(reader.status());
  }
  return Status::OK();
}

Status VersionFirstEngine::FetchRecord(uint32_t seg, uint64_t idx,
                                       std::string* buf) const {
  return segments_[seg]->file->Get(idx, buf);
}

// --------------------------------------------------------------------- diff

Status VersionFirstEngine::Diff(BranchId a, BranchId b, DiffMode mode,
                                const DiffCallback& pos,
                                const DiffCallback& neg) {
  // Version-first diffs pay for full winner-table construction over both
  // ancestries ("the need to make multiple passes over the dataset to
  // identify the active records in both versions", §5.2).
  std::shared_lock<std::shared_mutex> registry_lock(registry_mu_);
  Root root_a, root_b;
  {
    StripeLocks::MultiGuard stripe_locks(stripes_, {a, b});
    DECIBEL_ASSIGN_OR_RETURN(root_a, RootForBranch(a));
    DECIBEL_ASSIGN_OR_RETURN(root_b, RootForBranch(b));
  }
  std::vector<WinnerTable> tables;
  DECIBEL_RETURN_NOT_OK(BuildWinnerTables({root_a, root_b}, &tables, nullptr));
  const WinnerTable& wa = tables[0];
  const WinnerTable& wb = tables[1];

  std::string buf, buf_other;
  auto emit = [&](const Winner& w, const DiffCallback& cb) -> Status {
    DECIBEL_RETURN_NOT_OK(FetchRecord(w.seg, w.idx, &buf));
    cb(RecordRef(&schema_, buf));
    return Status::OK();
  };
  // Merge-materialized copies mean two different locations can hold the
  // same logical record; content comparisons must fall back to bytes.
  auto same_content = [&](const Winner& x, const Winner& y,
                          bool* equal) -> Status {
    if (x.seg == y.seg && x.idx == y.idx) {
      *equal = true;
      return Status::OK();
    }
    DECIBEL_RETURN_NOT_OK(FetchRecord(x.seg, x.idx, &buf));
    DECIBEL_RETURN_NOT_OK(FetchRecord(y.seg, y.idx, &buf_other));
    *equal = buf == buf_other;
    return Status::OK();
  };

  for (const auto& [pk, winner] : wa) {
    if (winner.tombstone) continue;
    auto it = wb.find(pk);
    const bool present_b = it != wb.end() && !it->second.tombstone;
    bool differs;
    if (mode == DiffMode::kByKey) {
      differs = !present_b;
    } else if (!present_b) {
      differs = true;
    } else {
      bool equal;
      DECIBEL_RETURN_NOT_OK(same_content(winner, it->second, &equal));
      differs = !equal;
    }
    if (differs && pos) DECIBEL_RETURN_NOT_OK(emit(winner, pos));
  }
  for (const auto& [pk, winner] : wb) {
    if (winner.tombstone) continue;
    auto it = wa.find(pk);
    const bool present_a = it != wa.end() && !it->second.tombstone;
    bool differs;
    if (mode == DiffMode::kByKey) {
      differs = !present_a;
    } else if (!present_a) {
      differs = true;
    } else {
      bool equal;
      DECIBEL_RETURN_NOT_OK(same_content(winner, it->second, &equal));
      differs = !equal;
    }
    if (differs && neg) DECIBEL_RETURN_NOT_OK(emit(winner, neg));
  }
  return Status::OK();
}

// -------------------------------------------------------------------- merge

Result<MergeResult> VersionFirstEngine::Merge(BranchId into, BranchId from,
                                              CommitId lca,
                                              CommitId new_commit,
                                              MergePolicy policy) {
  MergeResult result;
  const uint32_t rs = schema_.record_size();
  const bool left_wins = LeftWins(policy);

  // Merge grows segments_ and repoints head_seg_[into]; the unique
  // registry lock excludes every writer and scan-open for its duration.
  std::unique_lock<std::shared_mutex> registry_lock(registry_mu_);
  DECIBEL_ASSIGN_OR_RETURN(Root root_a, RootForBranch(into));
  DECIBEL_ASSIGN_OR_RETURN(Root root_b, RootForBranch(from));
  DECIBEL_ASSIGN_OR_RETURN(Root root_l, RootForCommit(lca));

  // "merging involves creating a new branch, a new child segment, and
  // branch points within each parent" (§3.3); the stronger parent is
  // scanned first.
  std::vector<ParentLink> parents;
  const ParentLink link_a{root_a.seg, root_a.bound};
  const ParentLink link_b{root_b.seg, root_b.bound};
  if (left_wins) {
    parents = {link_a, link_b};
  } else {
    parents = {link_b, link_a};
  }
  DECIBEL_ASSIGN_OR_RETURN(uint32_t new_seg, NewSegment(into, parents));

  // Winner tables for both heads and the lca. The paper suggests a pure
  // precedence-based two-way merge needs "no explicit scan" (§3.3); in a
  // DAG with tombstones that is not sound at segment-window granularity
  // (a key absent at the lca but live in 'from' must be adopted, which
  // only the lca's effective state reveals), so both merge flavours
  // materialize their resolutions against full winner tables. Three-way
  // additionally pays the per-conflict record fetches and field compares.
  // This is the cost profile §5.4 reports: version-first trails the bitmap
  // engines on both flavours and loses more ground on three-way.
  std::vector<WinnerTable> tables;
  DECIBEL_RETURN_NOT_OK(BuildWinnerTables({root_a, root_b, root_l}, &tables,
                                          &result.bytes_processed));
  const WinnerTable& wa = tables[0];
  const WinnerTable& wb = tables[1];
  const WinnerTable& wl = tables[2];

  // Merges materialize record *copies* into new head segments, so two
  // winners at different locations can still be the same logical state;
  // equality falls back to byte comparison. A tombstone and a missing
  // entry are both "not present".
  auto absent = [](const Winner* w) {
    return w == nullptr || w->tombstone;
  };
  auto same_state = [&](const Winner* x, const Winner* y,
                        bool* equal) -> Status {
    if (absent(x) || absent(y)) {
      *equal = absent(x) == absent(y);
      return Status::OK();
    }
    if (x->seg == y->seg && x->idx == y->idx) {
      *equal = true;
      return Status::OK();
    }
    std::string bx, by;
    DECIBEL_RETURN_NOT_OK(FetchRecord(x->seg, x->idx, &bx));
    DECIBEL_RETURN_NOT_OK(FetchRecord(y->seg, y->idx, &by));
    result.bytes_processed += 2 * rs;
    *equal = bx == by;
    return Status::OK();
  };
  auto changed_since_lca = [&](const WinnerTable& w, int64_t pk,
                               const Winner** out, bool* changed) -> Status {
    auto it = w.find(pk);
    const Winner* cur = it == w.end() ? nullptr : &it->second;
    auto lit = wl.find(pk);
    const Winner* base = lit == wl.end() ? nullptr : &lit->second;
    *out = cur;
    bool equal = false;
    DECIBEL_RETURN_NOT_OK(same_state(cur, base, &equal));
    *changed = !equal;
    return Status::OK();
  };
  auto append_winner = [&](int64_t pk, const Winner* w,
                           std::string* buf) -> Status {
    if (w == nullptr || w->tombstone) {
      const Record tombstone = MakeTombstone(&schema_, pk);
      return segments_[new_seg]->file->Append(tombstone.data()).status();
    }
    DECIBEL_RETURN_NOT_OK(FetchRecord(w->seg, w->idx, buf));
    return segments_[new_seg]->file->Append(*buf).status();
  };

  std::string buf_a, buf_b, buf_l;
  for (const auto& [pk, wb_winner] : wb) {
    const Winner* cur_b;
    bool b_changed;
    DECIBEL_RETURN_NOT_OK(changed_since_lca(wb, pk, &cur_b, &b_changed));
    const Winner* cur_a = nullptr;
    auto wa_it = wa.find(pk);
    if (wa_it != wa.end()) cur_a = &wa_it->second;
    bool sides_equal = false;
    DECIBEL_RETURN_NOT_OK(same_state(cur_a, cur_b, &sides_equal));
    if (sides_equal) continue;  // any surviving copy has the same bytes
    if (!b_changed) {
      // Only 'into' carries a newer value, but 'from's chain joins the
      // ancestry and its (older) record for this key may outrank 'into's
      // in the combined scan order; pin 'into's state in the new head.
      DECIBEL_RETURN_NOT_OK(append_winner(pk, cur_a, &buf_a));
      continue;
    }
    bool a_changed;
    DECIBEL_RETURN_NOT_OK(changed_since_lca(wa, pk, &cur_a, &a_changed));
    if (!a_changed) {
      // Changed only in 'from': materialize its version in the merged
      // head so the result is independent of segment scan order.
      result.diff_bytes += rs;
      DECIBEL_RETURN_NOT_OK(append_winner(pk, cur_b, &buf_b));
      ++result.merged_records;
      continue;
    }
    // Changed on both sides (to different states).
    result.diff_bytes += 2 * rs;
    const bool a_deleted = absent(cur_a);
    const bool b_deleted = absent(cur_b);
    auto lit = wl.find(pk);
    const Winner* base =
        (lit == wl.end() || lit->second.tombstone) ? nullptr : &lit->second;
    if (!IsThreeWay(policy) || a_deleted || b_deleted || base == nullptr) {
      // Tuple-level precedence: two-way policy, delete-vs-modify, or a
      // double insert with no base version (§2.2.3).
      ++result.conflicts;
      DECIBEL_RETURN_NOT_OK(
          append_winner(pk, left_wins ? cur_a : cur_b, &buf_a));
      ++result.merged_records;
      continue;
    }
    DECIBEL_RETURN_NOT_OK(FetchRecord(cur_a->seg, cur_a->idx, &buf_a));
    DECIBEL_RETURN_NOT_OK(FetchRecord(cur_b->seg, cur_b->idx, &buf_b));
    DECIBEL_RETURN_NOT_OK(FetchRecord(base->seg, base->idx, &buf_l));
    result.bytes_processed += 3 * rs;
    const RecordRef rec_a(&schema_, buf_a);
    const RecordRef rec_b(&schema_, buf_b);
    const RecordRef rec_l(&schema_, buf_l);
    FieldMergeOutcome outcome =
        ThreeWayFieldMerge(schema_, rec_l, rec_a, rec_b, left_wins);
    if (outcome.conflict) ++result.conflicts;
    const Slice resolved = outcome.needs_new_record
                               ? outcome.merged->data()
                               : (outcome.keep_left ? Slice(buf_a)
                                                    : Slice(buf_b));
    if (outcome.needs_new_record) ++result.field_merges;
    DECIBEL_RETURN_NOT_OK(
        segments_[new_seg]->file->Append(resolved).status());
    ++result.merged_records;
  }

  head_seg_[into] = new_seg;
  DECIBEL_RETURN_NOT_OK(CommitImpl(into, new_commit));
  return result;
}

// -------------------------------------------------------------------- stats

EngineStats VersionFirstEngine::Stats() const {
  EngineStats stats;
  std::shared_lock<std::shared_mutex> registry_lock(registry_mu_);
  for (const auto& segment : segments_) {
    stats.data_bytes += segment->file->SizeBytes();
    stats.num_records += segment->file->num_records();
  }
  stats.num_segments = segments_.size();
  {
    // Commits are (segment, offset) pairs — the whole registry is tiny.
    std::lock_guard<std::mutex> commit_lock(commit_mu_);
    stats.commit_store_bytes = commits_.size() * 20;
  }
  stats.rows_scanned = scan_counters_.rows();
  stats.bytes_scanned = scan_counters_.bytes();
  return stats;
}

}  // namespace decibel
