#include "engine/version_first.h"

#include <algorithm>
#include <map>

#include "common/coding.h"
#include "engine/scan_util.h"

namespace decibel {

namespace {

/// Per-page scan decision for a planned branch scan (BranchScanCursor's
/// skip planner). kScanExactPage marks a pk-disjoint page: its keys occur
/// nowhere else in the scan, so proving it match-free (compressed-strip
/// count) skips it without breaking shadowing.
enum PageMode : uint8_t {
  kScanPage = 0,
  kScanExactPage = 1,
  kSkipPage = 2,
};

/// Reads one segment's records [0, bound) newest-to-oldest, pinning one
/// page at a time.
class ReverseSegmentReader {
 public:
  ReverseSegmentReader(HeapFile* file, const Schema* schema, uint64_t bound)
      : file_(file),
        schema_(schema),
        next_(std::min(bound, file->num_records())) {}

  /// Turns on page skipping and scan accounting: \p modes maps page
  /// number to PageMode (pages past the vector's end scan normally),
  /// kScanExactPage pages pin through the compressed-count fast path and
  /// a proven zero-match page is stepped over whole. \p stats receives
  /// pages_skipped and bytes_read. All pointers must outlive the reader
  /// and may be null.
  void EnablePruning(const std::vector<uint8_t>* modes,
                     const PreparedPredicate* predicate, ScanStats* stats) {
    modes_ = modes;
    predicate_ = predicate;
    stats_ = stats;
  }

  /// Yields the next (older) record; false at the start of the segment or
  /// on error.
  bool Prev(RecordRef* out, uint64_t* index) {
    if (!status_.ok()) return false;
    const uint64_t rpp = file_->records_per_page();
    while (next_ != 0) {
      const uint64_t idx = next_ - 1;
      const uint64_t page_no = idx / rpp;
      if (page_no != pinned_page_no_) {
        const uint8_t mode = modes_ != nullptr && page_no < modes_->size()
                                 ? (*modes_)[page_no]
                                 : static_cast<uint8_t>(kScanPage);
        if (mode == kSkipPage) {
          if (stats_ != nullptr) ++stats_->pages_skipped;
          next_ = page_no * rpp;  // step below the page in one move
          continue;
        }
        bool no_matches = false;
        auto page = file_->PinPageCounted(
            page_no, mode == kScanExactPage ? predicate_ : nullptr,
            &no_matches);
        if (!page.ok()) {
          status_ = page.status();
          return false;
        }
        if (stats_ != nullptr) stats_->bytes_read += page.value().io_bytes;
        if (no_matches) {
          if (stats_ != nullptr) ++stats_->pages_skipped;
          next_ = page_no * rpp;
          continue;
        }
        page_ = std::move(page).MoveValueUnsafe();
        pinned_page_no_ = page_no;
      }
      next_ = idx;
      const uint64_t slot = idx % rpp;
      *out = RecordRef(schema_,
                       Slice(page_.payload + slot * file_->record_size(),
                             file_->record_size()));
      if (index != nullptr) *index = idx;
      return true;
    }
    return false;
  }

  const Status& status() const { return status_; }

 private:
  HeapFile* file_;
  const Schema* schema_;
  const std::vector<uint8_t>* modes_ = nullptr;
  const PreparedPredicate* predicate_ = nullptr;
  ScanStats* stats_ = nullptr;
  uint64_t next_;
  HeapFile::PinnedPage page_;
  uint64_t pinned_page_no_ = UINT64_MAX;
  Status status_;
};

}  // namespace

// ------------------------------------------------------------ construction

Result<std::unique_ptr<VersionFirstEngine>> VersionFirstEngine::Make(
    const Schema& schema, const EngineOptions& options) {
  std::unique_ptr<VersionFirstEngine> engine(
      new VersionFirstEngine(schema, options));
  DECIBEL_RETURN_NOT_OK(CreateDir(options.directory));
  if (!options.checkpoint_tag.empty() || FileExists(engine->MetaPath())) {
    DECIBEL_RETURN_NOT_OK(engine->LoadExisting());
  } else {
    DECIBEL_RETURN_NOT_OK(engine->InitFresh());
  }
  return engine;
}

std::string VersionFirstEngine::MetaPath(const std::string& tag) const {
  const std::string base = JoinPath(options_.directory, "engine.meta");
  return tag.empty() ? base : base + "." + tag;
}

std::string VersionFirstEngine::SegmentPath(uint32_t seg) const {
  return JoinPath(options_.directory, "seg_" + std::to_string(seg) + ".dbhf");
}

Result<uint32_t> VersionFirstEngine::NewSegment(
    BranchId owner, std::vector<ParentLink> parents) {
  auto segment = std::make_unique<Segment>();
  segment->id = static_cast<uint32_t>(segments_.size());
  segment->owner = owner;
  segment->parents = std::move(parents);
  HeapFile::Options hopts;
  hopts.page_size = options_.page_size;
  hopts.verify_checksums = options_.verify_checksums;
  hopts.schema = &schema_;
  hopts.compress_pages = options_.compress_pages;
  DECIBEL_ASSIGN_OR_RETURN(
      segment->file, HeapFile::Create(SegmentPath(segment->id),
                                      schema_.record_size(), hopts, &pool_));
  segments_.push_back(std::move(segment));
  return segments_.back()->id;
}

Status VersionFirstEngine::InitFresh() {
  DECIBEL_ASSIGN_OR_RETURN(uint32_t seg, NewSegment(kMasterBranch, {}));
  head_seg_[kMasterBranch] = seg;
  pk_index_.try_emplace(kMasterBranch);
  return Status::OK();
}

Status VersionFirstEngine::LoadExisting() {
  const std::string& tag = options_.checkpoint_tag;
  DECIBEL_ASSIGN_OR_RETURN(std::string meta, ReadFileToString(MetaPath(tag)));
  Slice input(meta);
  DECIBEL_RETURN_NOT_OK(CheckEngineMetaHeader(&input, "version-first"));
  Slice schema_blob;
  if (!GetLengthPrefixed(&input, &schema_blob)) {
    return Status::Corruption("version-first: truncated meta");
  }
  Slice schema_slice = schema_blob;
  DECIBEL_ASSIGN_OR_RETURN(Schema stored, Schema::DecodeFrom(&schema_slice));
  if (!(stored == schema_)) {
    return Status::InvalidArgument(
        "version-first: schema mismatch on reopen");
  }
  uint64_t num_segments;
  if (!GetVarint64(&input, &num_segments)) {
    return Status::Corruption("version-first: truncated meta");
  }
  HeapFile::Options hopts;
  hopts.verify_checksums = options_.verify_checksums;
  hopts.schema = &schema_;
  hopts.compress_pages = options_.compress_pages;
  for (uint64_t i = 0; i < num_segments; ++i) {
    auto segment = std::make_unique<Segment>();
    uint64_t num_parents;
    if (!GetVarint32(&input, &segment->id) ||
        !GetVarint32(&input, &segment->owner) ||
        !GetVarint64(&input, &num_parents)) {
      return Status::Corruption("version-first: truncated segment meta");
    }
    if (segment->id != segments_.size()) {
      return Status::Corruption("version-first: segment ids not dense");
    }
    for (uint64_t p = 0; p < num_parents; ++p) {
      ParentLink link;
      if (!GetVarint32(&input, &link.seg) ||
          !GetVarint64(&input, &link.bound)) {
        return Status::Corruption("version-first: truncated parent link");
      }
      if (link.seg >= segment->id) {
        return Status::Corruption(
            "version-first: parent link to non-ancestor segment");
      }
      segment->parents.push_back(link);
    }
    HeapFile::CheckpointState cs;
    uint32_t tail_crc;
    if (!GetVarint64(&input, &cs.num_records) ||
        !GetVarint32(&input, &tail_crc)) {
      return Status::Corruption("version-first: truncated segment state");
    }
    cs.tail_crc = tail_crc;
    Slice stats_blob;
    if (!GetLengthPrefixed(&input, &stats_blob)) {
      return Status::Corruption("version-first: truncated segment stats blob");
    }
    if (!tag.empty()) {
      // Branch heads resolve to file->num_records(), so post-checkpoint
      // appends must be physically discarded — roll the segment back to
      // its checkpointed record count before anything reads it.
      DECIBEL_ASSIGN_OR_RETURN(
          segment->file,
          HeapFile::OpenAtCheckpoint(SegmentPath(segment->id), hopts, &pool_,
                                     cs));
    } else {
      DECIBEL_ASSIGN_OR_RETURN(
          segment->file, HeapFile::Open(SegmentPath(segment->id), hopts,
                                        &pool_));
    }
    DECIBEL_RETURN_NOT_OK(segment->file->LoadStats(stats_blob));
    DECIBEL_RETURN_NOT_OK(segment->file->EnsureStats());
    segments_.push_back(std::move(segment));
  }
  uint64_t num_heads, num_commits;
  if (!GetVarint64(&input, &num_heads)) {
    return Status::Corruption("version-first: truncated head map");
  }
  for (uint64_t i = 0; i < num_heads; ++i) {
    uint32_t branch, seg;
    if (!GetVarint32(&input, &branch) || !GetVarint32(&input, &seg)) {
      return Status::Corruption("version-first: truncated head entry");
    }
    if (seg >= segments_.size()) {
      return Status::Corruption("version-first: head points past segments");
    }
    head_seg_[branch] = seg;
  }
  if (!GetVarint64(&input, &num_commits)) {
    return Status::Corruption("version-first: truncated commit map");
  }
  for (uint64_t i = 0; i < num_commits; ++i) {
    uint64_t commit;
    Root root;
    if (!GetVarint64(&input, &commit) || !GetVarint32(&input, &root.seg) ||
        !GetVarint64(&input, &root.bound)) {
      return Status::Corruption("version-first: truncated commit entry");
    }
    if (root.seg >= segments_.size()) {
      return Status::Corruption(
          "version-first: commit points past segments");
    }
    commits_[commit] = root;
  }
  // The pk indexes are memory-only: one multi-root winner-table pass over
  // the union ancestry rebuilds every branch's map at once (shared
  // ancestor segments are read once, not once per branch).
  std::vector<BranchId> branch_ids;
  std::vector<Root> roots;
  branch_ids.reserve(head_seg_.size());
  roots.reserve(head_seg_.size());
  for (const auto& [branch, seg] : head_seg_) {
    branch_ids.push_back(branch);
    roots.push_back(Root{seg, segments_[seg]->file->num_records()});
  }
  std::vector<WinnerTable> tables;
  DECIBEL_RETURN_NOT_OK(BuildWinnerTables(roots, &tables, nullptr));
  for (size_t i = 0; i < branch_ids.size(); ++i) {
    PkIndex& idx = pk_index_[branch_ids[i]];
    idx.reserve(tables[i].size());
    for (const auto& [pk, winner] : tables[i]) {
      if (winner.tombstone) continue;
      idx[pk] = Loc{winner.seg, winner.idx};
    }
  }
  return Status::OK();
}

std::string VersionFirstEngine::EncodeMeta() {
  std::string meta;
  PutEngineMetaHeader(&meta);
  std::string schema_blob;
  schema_.EncodeTo(&schema_blob);
  PutLengthPrefixed(&meta, schema_blob);
  PutVarint64(&meta, segments_.size());
  for (const auto& segment : segments_) {
    PutVarint32(&meta, segment->id);
    PutVarint32(&meta, segment->owner);
    PutVarint64(&meta, segment->parents.size());
    for (const ParentLink& link : segment->parents) {
      PutVarint32(&meta, link.seg);
      PutVarint64(&meta, link.bound);
    }
    const HeapFile::CheckpointState cs = segment->file->GetCheckpointState();
    PutVarint64(&meta, cs.num_records);
    PutVarint32(&meta, cs.tail_crc);
    std::string stats_blob;
    segment->file->EncodeStats(&stats_blob);
    PutLengthPrefixed(&meta, stats_blob);
  }
  PutVarint64(&meta, head_seg_.size());
  for (const auto& [branch, seg] : head_seg_) {
    PutVarint32(&meta, branch);
    PutVarint32(&meta, seg);
  }
  {
    std::lock_guard<std::mutex> commit_lock(commit_mu_);
    PutVarint64(&meta, commits_.size());
    for (const auto& [commit, root] : commits_) {
      PutVarint64(&meta, commit);
      PutVarint32(&meta, root.seg);
      PutVarint64(&meta, root.bound);
    }
  }
  return meta;
}

Status VersionFirstEngine::ReleaseBranch(BranchId branch) {
  // A retired branch's segments never append again; close their
  // descriptors. The segments stay in the registry — descendants keep
  // reading inherited records through lazily-reopened handles.
  std::unique_lock<std::shared_mutex> registry_lock(registry_mu_);
  for (auto& segment : segments_) {
    if (segment->owner != branch) continue;
    DECIBEL_RETURN_NOT_OK(segment->file->ReleaseFileHandles());
  }
  return Status::OK();
}

Status VersionFirstEngine::Flush() {
  std::unique_lock<std::shared_mutex> registry_lock(registry_mu_);
  for (auto& segment : segments_) {
    DECIBEL_RETURN_NOT_OK(segment->file->Flush());
  }
  return WriteStringToFile(MetaPath(), EncodeMeta());
}

Status VersionFirstEngine::Checkpoint(const std::string& tag, bool sync) {
  std::unique_lock<std::shared_mutex> registry_lock(registry_mu_);
  for (auto& segment : segments_) {
    DECIBEL_RETURN_NOT_OK(sync ? segment->file->Sync()
                               : segment->file->Flush());
  }
  return AtomicWriteFile(MetaPath(tag), EncodeMeta(), sync);
}

Status VersionFirstEngine::RemoveCheckpoint(const std::string& tag) {
  return RemoveFile(MetaPath(tag));
}

// --------------------------------------------------------- version control

Result<VersionFirstEngine::Root> VersionFirstEngine::RootForBranch(
    BranchId branch) const {
  auto it = head_seg_.find(branch);
  if (it == head_seg_.end()) {
    return Status::NotFound("version-first: unknown branch " +
                            std::to_string(branch));
  }
  return Root{it->second, segments_[it->second]->file->num_records()};
}

Result<VersionFirstEngine::Root> VersionFirstEngine::RootForCommit(
    CommitId commit) const {
  std::lock_guard<std::mutex> commit_lock(commit_mu_);
  auto it = commits_.find(commit);
  if (it == commits_.end()) {
    return Status::NotFound("version-first: unknown commit " +
                            std::to_string(commit));
  }
  return it->second;
}

Status VersionFirstEngine::CreateBranch(BranchId child, BranchId parent,
                                        CommitId base_commit, bool at_head) {
  // "a new child segment file is created that notes the parent file and
  // the offset of this branch point" (§3.3). The parent keeps appending
  // to its own segment; records after the branch point are isolated.
  // Growing segments_/head_seg_ changes the registry shape.
  std::unique_lock<std::shared_mutex> registry_lock(registry_mu_);
  Root base{0, 0};
  if (at_head) {
    DECIBEL_ASSIGN_OR_RETURN(base, RootForBranch(parent));
  } else {
    DECIBEL_ASSIGN_OR_RETURN(base, RootForCommit(base_commit));
  }
  DECIBEL_ASSIGN_OR_RETURN(
      uint32_t seg, NewSegment(child, {ParentLink{base.seg, base.bound}}));
  head_seg_[child] = seg;
  if (at_head) {
    // The parent's pk index IS the child's starting state (both see the
    // same records up to the branch point, and the parent's map is
    // complete at its head).
    pk_index_[child] = pk_index_[parent];
    return Status::OK();
  }
  return RebuildPkIndex(child, base);
}

Status VersionFirstEngine::RebuildPkIndex(BranchId branch, const Root& root) {
  std::vector<WinnerTable> tables;
  DECIBEL_RETURN_NOT_OK(BuildWinnerTables({root}, &tables, nullptr));
  PkIndex& idx = pk_index_[branch];
  idx.clear();
  idx.reserve(tables[0].size());
  for (const auto& [pk, winner] : tables[0]) {
    if (winner.tombstone) continue;
    idx[pk] = Loc{winner.seg, winner.idx};
  }
  return Status::OK();
}

Status VersionFirstEngine::Commit(BranchId branch, CommitId commit_id) {
  std::shared_lock<std::shared_mutex> registry_lock(registry_mu_);
  // The stripe pins the head segment's record count while we capture it.
  std::lock_guard<std::mutex> stripe_lock(stripes_.ForBranch(branch));
  return CommitImpl(branch, commit_id);
}

Status VersionFirstEngine::CommitImpl(BranchId branch, CommitId commit_id) {
  // "version-first supports commits by mapping a commit ID to the byte
  // offset of the latest record active in the committing branch's segment
  // file" (§3.3).
  DECIBEL_ASSIGN_OR_RETURN(Root root, RootForBranch(branch));
  std::lock_guard<std::mutex> commit_lock(commit_mu_);
  commits_[commit_id] = root;
  return Status::OK();
}

Status VersionFirstEngine::Checkout(CommitId commit) {
  // A checkout only needs the (segment, offset) pair — near-free, which is
  // why Table 2 has no version-first rows.
  return RootForCommit(commit).status();
}

// ----------------------------------------------------------------- mutation

Status VersionFirstEngine::ApplyBatch(BranchId branch,
                                      const WriteBatch& batch) {
  // Registry shared (CreateBranch/Merge may not reshape segments_ under
  // us) + the branch's stripe (one writer per head-segment tail). Batches
  // on branches mapping to different stripes run fully in parallel.
  std::shared_lock<std::shared_mutex> registry_lock(registry_mu_);
  std::lock_guard<std::mutex> stripe_lock(stripes_.ForBranch(branch));
  auto it = head_seg_.find(branch);
  if (it == head_seg_.end()) {
    return Status::NotFound("version-first: unknown branch " +
                            std::to_string(branch));
  }
  // Every op is an append to the branch's head segment: "Updates are
  // performed by inserting a new copy of the tuple with the same primary
  // key; branch scans will ignore the earlier copy" and "deletes require
  // a tombstone" (§3.3). A delete-free batch (the bulk-load shape) is
  // one chunked heap append of the whole staged arena. The branch's pk
  // index tracks the newest location per key; deletes erase blindly,
  // preserving the layout's blind-tombstone semantics.
  const uint32_t head = it->second;
  HeapFile* file = segments_[head]->file.get();
  PkIndex& pks = pk_index_[branch];
  pks.reserve(pks.size() + batch.num_appends());
  if (batch.num_appends() == batch.size()) {
    DECIBEL_ASSIGN_OR_RETURN(
        uint64_t first, file->AppendBatch(batch.arena(), batch.num_appends()));
    uint64_t i = 0;
    for (const WriteBatch::Op& op : batch.ops()) {
      pks[batch.RecordAt(op).pk()] = Loc{head, first + i};
      ++i;
    }
    return Status::OK();
  }
  for (const WriteBatch::Op& op : batch.ops()) {
    if (op.kind == WriteBatch::OpKind::kDelete) {
      const Record tombstone = MakeTombstone(&schema_, op.pk);
      DECIBEL_RETURN_NOT_OK(file->Append(tombstone.data()).status());
      pks.erase(op.pk);
    } else {
      DECIBEL_ASSIGN_OR_RETURN(uint64_t idx,
                               file->Append(batch.RecordAt(op).data()));
      pks[batch.RecordAt(op).pk()] = Loc{head, idx};
    }
  }
  return Status::OK();
}

// --------------------------------------------------------------- scan order

std::vector<VersionFirstEngine::ScanStep> VersionFirstEngine::ComputeScanOrder(
    const Root& root) const {
  // Collect the ancestry sub-DAG with per-segment visibility bounds
  // (a segment reachable through several paths is visible up to the widest
  // bound) and a lexicographic priority key derived from parent order.
  struct Node {
    uint64_t bound = 0;
    std::vector<uint32_t> priority;  // lexicographically smallest path
    bool has_priority = false;
    std::vector<uint32_t> children;  // children within the sub-DAG
  };
  std::map<uint32_t, Node> nodes;

  // BFS from the root, propagating bounds and priority keys. Priority keys
  // only shrink (lexicographically), bounds only grow, so iterate until
  // fixpoint; ancestries are small (#segments ~ #branches + #merges).
  std::vector<uint32_t> work{root.seg};
  nodes[root.seg].bound = std::min(
      root.bound, segments_[root.seg]->file->num_records());
  nodes[root.seg].has_priority = true;
  while (!work.empty()) {
    const uint32_t cur = work.back();
    work.pop_back();
    const Node& cur_node = nodes[cur];
    const std::vector<uint32_t> cur_priority = cur_node.priority;
    for (uint32_t i = 0; i < segments_[cur]->parents.size(); ++i) {
      const ParentLink& link = segments_[cur]->parents[i];
      Node& parent = nodes[link.seg];
      bool changed = false;
      if (link.bound > parent.bound) {
        parent.bound = link.bound;
        changed = true;
      }
      std::vector<uint32_t> candidate = cur_priority;
      candidate.push_back(i);
      if (!parent.has_priority || candidate < parent.priority) {
        parent.priority = std::move(candidate);
        parent.has_priority = true;
        changed = true;
      }
      if (std::find(parent.children.begin(), parent.children.end(), cur) ==
          parent.children.end()) {
        parent.children.push_back(cur);
      }
      if (changed) work.push_back(link.seg);
    }
  }

  // Kahn's algorithm, children before parents; among ready segments the
  // one with the smallest priority key goes first (this yields the
  // "D - B - C - A" style orders of §3.3).
  std::map<uint32_t, size_t> pending;  // seg -> unscanned children count
  for (auto& [seg, node] : nodes) pending[seg] = 0;
  for (auto& [seg, node] : nodes) {
    for (uint32_t i = 0; i < segments_[seg]->parents.size(); ++i) {
      const uint32_t p = segments_[seg]->parents[i].seg;
      if (nodes.count(p) != 0) ++pending[p];
    }
  }

  std::vector<ScanStep> order;
  order.reserve(nodes.size());
  std::vector<uint32_t> ready;
  for (auto& [seg, node] : nodes) {
    if (pending[seg] == 0) ready.push_back(seg);
  }
  while (!ready.empty()) {
    auto best = std::min_element(
        ready.begin(), ready.end(), [&](uint32_t a, uint32_t b) {
          return nodes[a].priority < nodes[b].priority;
        });
    const uint32_t seg = *best;
    ready.erase(best);
    order.push_back(ScanStep{seg, nodes[seg].bound});
    for (uint32_t i = 0; i < segments_[seg]->parents.size(); ++i) {
      const uint32_t p = segments_[seg]->parents[i].seg;
      auto it = pending.find(p);
      if (it != pending.end() && --it->second == 0) ready.push_back(p);
    }
  }
  return order;
}

// ------------------------------------------------------------ branch scans

/// Streaming single-version scan: walk the scan order newest-to-oldest,
/// suppressing keys already seen ("Decibel uses an in-memory set to track
/// emitted tuples", §3.3). The pushed-down predicate is evaluated inside
/// the segment walk, after version resolution — an old version of a key
/// must still shadow, even when the newest version fails the filter — so
/// a row failing the predicate costs one raw-bytes comparison and never
/// surfaces through the cursor boundary.
///
/// The scan order is captured as (file pointer, bound) pairs at open, so
/// Next never reads the engine's registry: the cursor streams its
/// snapshot while other branches append, create branches, or merge.
class VersionFirstEngine::BranchScanCursor : public ScanCursor {
 public:
  /// One step of the captured scan order.
  struct FileStep {
    HeapFile* file = nullptr;
    uint64_t bound = 0;
    std::vector<uint8_t> modes;  ///< per-page PageMode from PlanSkips
    bool skip_all = false;       ///< every page of the step is skippable
  };

  BranchScanCursor(const VersionFirstEngine* engine,
                   std::vector<FileStep> order, const ScanSpec& spec)
      : engine_(engine),
        order_(std::move(order)),
        prepared_(spec.predicate, engine->schema_),
        limit_(spec.limit),
        row_bytes_(ProjectedRowBytes(engine->schema_, spec.projection)) {
    if (!prepared_.empty()) PlanSkips();
  }
  ~BranchScanCursor() override { engine_->scan_counters_.Add(stats_); }

  bool Next(ScanRow* out) override {
    if (limit_ != 0 && stats_.rows_emitted >= limit_) return false;
    for (;;) {
      if (!reader_.has_value()) {
        while (step_ < order_.size() && order_[step_].skip_all) {
          ++stats_.segments_skipped;
          ++step_;
        }
        if (step_ >= order_.size()) return false;
        const FileStep& step = order_[step_];
        reader_.emplace(step.file, &engine_->schema_, step.bound);
        reader_->EnablePruning(&step.modes, &prepared_, &stats_);
      }
      RecordRef rec;
      if (!reader_->Prev(&rec, nullptr)) {
        if (!reader_->status().ok()) {
          status_ = reader_->status();
          return false;
        }
        reader_.reset();
        ++step_;
        continue;
      }
      if (!seen_.insert(rec.pk()).second) continue;
      if (rec.tombstone()) continue;
      ++stats_.rows_scanned;
      stats_.bytes_scanned += row_bytes_;
      if (!prepared_.Matches(rec.data().data())) continue;
      out->record = rec;
      out->branches = nullptr;
      ++stats_.rows_emitted;
      return true;
    }
  }

  const Status& status() const override { return status_; }
  const ScanStats& stats() const override { return stats_; }

 private:
  /// Plans page skipping against a zone-map snapshot taken at open.
  ///
  /// Version-first resolves versions by scan order — a record (live OR
  /// tombstone, matching or not) shadows every older version of its key —
  /// so a page whose zone fails the predicate still cannot be skipped
  /// blindly: dropping it would un-suppress older versions of its keys.
  /// A page is skippable iff BOTH hold:
  ///   (a) its zone rules out the predicate (no emittable row), and
  ///   (b) its pk range is disjoint from every other scan unit's, so its
  ///       keys have no other versions anywhere in this scan.
  /// Units are the sealed pages overlapping each step's bound plus one
  /// unit for the step's tail span; disjointness is a sort-by-min-pk +
  /// prefix-max sweep over all units of all steps. Zone pk ranges are
  /// supersets of the visible records (bound-partial pages, tombstone
  /// keys included), which only makes the test more conservative.
  /// Disjoint pages that DO pass the zone test run in kScanExactPage
  /// mode: the compressed-strip count may still prove them match-free.
  void PlanSkips() {
    struct Unit {
      size_t step = 0;
      uint64_t first_page = 0;
      uint64_t last_page = 0;
      int64_t min_pk = 0;
      int64_t max_pk = 0;
      bool may_match = true;
    };
    std::vector<Unit> units;
    for (size_t s = 0; s < order_.size(); ++s) {
      FileStep& step = order_[s];
      if (step.bound == 0 || !step.file->stats_enabled()) continue;
      const uint64_t rpp = step.file->records_per_page();
      const uint64_t num_pages = (step.bound + rpp - 1) / rpp;
      std::vector<HeapFile::PageStats> pages;
      columnar::ZoneMap tail_zone;
      step.file->SnapshotPageStats(&pages, &tail_zone);
      step.modes.assign(num_pages, kScanPage);
      const uint64_t sealed = std::min<uint64_t>(pages.size(), num_pages);
      for (uint64_t p = 0; p < sealed; ++p) {
        const columnar::ZoneMap& zone = pages[p].zone;
        if (zone.rows() == 0) continue;  // defensive: sealed pages are full
        units.push_back(Unit{s, p, p, zone.min_pk(), zone.max_pk(),
                             prepared_.MayMatch(zone)});
      }
      if (num_pages > sealed && tail_zone.rows() != 0) {
        units.push_back(Unit{s, sealed, num_pages - 1, tail_zone.min_pk(),
                             tail_zone.max_pk(),
                             prepared_.MayMatch(tail_zone)});
      }
    }
    if (units.empty()) return;
    std::sort(units.begin(), units.end(),
              [](const Unit& a, const Unit& b) { return a.min_pk < b.min_pk; });
    int64_t prefix_max = 0;
    for (size_t i = 0; i < units.size(); ++i) {
      const Unit& u = units[i];
      const bool disjoint =
          (i == 0 || prefix_max < u.min_pk) &&
          (i + 1 == units.size() || u.max_pk < units[i + 1].min_pk);
      if (disjoint) {
        const uint8_t mode = u.may_match ? kScanExactPage : kSkipPage;
        FileStep& step = order_[u.step];
        for (uint64_t p = u.first_page; p <= u.last_page; ++p) {
          step.modes[p] = mode;
        }
      }
      prefix_max = i == 0 ? u.max_pk : std::max(prefix_max, u.max_pk);
    }
    for (FileStep& step : order_) {
      step.skip_all =
          !step.modes.empty() &&
          std::all_of(step.modes.begin(), step.modes.end(),
                      [](uint8_t m) { return m == kSkipPage; });
    }
  }

  const VersionFirstEngine* engine_;
  std::vector<FileStep> order_;
  size_t step_ = 0;
  std::optional<ReverseSegmentReader> reader_;
  std::unordered_set<int64_t> seen_;
  PreparedPredicate prepared_;
  uint64_t limit_;
  uint32_t row_bytes_;
  ScanStats stats_;
  Status status_;
};

/// Multi-branch cursor: pass 1 builds the winner tables eagerly (§3.3's
/// intermediate hash tables); pass 2 streams the winners in (segment,
/// record) order — the paper's output priority queue — pinning one page
/// at a time and checking the predicate on the in-page bytes before the
/// membership annotation, so filtered-out winners are never copied.
class VersionFirstEngine::MultiWinnerCursor : public ScanCursor {
 public:
  using Output =
      std::map<std::pair<uint32_t, uint64_t>, std::vector<uint32_t>>;

  /// \p files is a snapshot of per-segment file pointers (indexed by
  /// segment id) taken under the registry lock at open; Next streams the
  /// winner locations without touching the engine's registry.
  MultiWinnerCursor(const VersionFirstEngine* engine,
                    std::vector<HeapFile*> files, Output output,
                    std::vector<BranchId> branch_list, const ScanSpec& spec)
      : engine_(engine),
        files_(std::move(files)),
        output_(std::move(output)),
        next_(output_.begin()),
        branch_list_(std::move(branch_list)),
        prepared_(spec.predicate, engine->schema_),
        limit_(spec.limit),
        row_bytes_(ProjectedRowBytes(engine->schema_, spec.projection)) {}
  ~MultiWinnerCursor() override { engine_->scan_counters_.Add(stats_); }

  bool Next(ScanRow* out) override {
    if (limit_ != 0 && stats_.rows_emitted >= limit_) return false;
    while (status_.ok() && next_ != output_.end()) {
      const auto& [loc, roots] = *next_;
      HeapFile* file = files_[loc.first];
      const uint64_t page_no = loc.second / file->records_per_page();
      if (loc.first != pinned_seg_ || page_no != pinned_page_no_) {
        // Zone-map pruning is sound here: the winner table already
        // resolved version visibility, so a skipped winner was only ever
        // going to be filtered out by the predicate.
        if (loc.first == skip_seg_ && page_no == skip_page_no_) {
          ++next_;
          continue;
        }
        if (!prepared_.empty() && !file->PageMayMatch(page_no, prepared_)) {
          skip_seg_ = loc.first;
          skip_page_no_ = page_no;
          ++stats_.pages_skipped;
          ++next_;
          continue;
        }
        bool no_matches = false;
        auto page = file->PinPageCounted(page_no, &prepared_, &no_matches);
        if (!page.ok()) {
          status_ = page.status();
          return false;
        }
        stats_.bytes_read += page.value().io_bytes;
        if (no_matches) {
          skip_seg_ = loc.first;
          skip_page_no_ = page_no;
          ++stats_.pages_skipped;
          ++next_;
          continue;
        }
        page_ = std::move(page).MoveValueUnsafe();
        pinned_seg_ = loc.first;
        pinned_page_no_ = page_no;
      }
      const uint64_t slot = loc.second % file->records_per_page();
      const char* bytes = page_.payload + slot * file->record_size();
      ++stats_.rows_scanned;
      stats_.bytes_scanned += row_bytes_;
      const std::vector<uint32_t>* present = &roots;
      ++next_;
      if (!prepared_.Matches(bytes)) continue;
      out->record = RecordRef(&engine_->schema_,
                              Slice(bytes, file->record_size()));
      out->branches = present;
      ++stats_.rows_emitted;
      return true;
    }
    return false;
  }

  const Status& status() const override { return status_; }
  const ScanStats& stats() const override { return stats_; }
  const std::vector<BranchId>& branches() const override {
    return branch_list_;
  }

 private:
  const VersionFirstEngine* engine_;
  std::vector<HeapFile*> files_;
  Output output_;
  Output::const_iterator next_;
  std::vector<BranchId> branch_list_;
  PreparedPredicate prepared_;
  uint64_t limit_;
  uint32_t row_bytes_;
  HeapFile::PinnedPage page_;
  uint32_t pinned_seg_ = UINT32_MAX;
  uint64_t pinned_page_no_ = UINT64_MAX;
  uint32_t skip_seg_ = UINT32_MAX;
  uint64_t skip_page_no_ = UINT64_MAX;
  ScanStats stats_;
  Status status_;
};

Result<std::unique_ptr<ScanCursor>> VersionFirstEngine::NewScan(
    const ScanSpec& spec) {
  DECIBEL_RETURN_NOT_OK(ValidateScanSpec(spec, schema_));
  // Roots for live branches are captured under the branch's stripe lock:
  // a head's record count only moves on batch boundaries there, so the
  // snapshot never lands inside a half-applied batch. Commit roots are
  // batch-aligned by construction.
  auto capture_order = [this](const Root& root) {
    std::vector<BranchScanCursor::FileStep> steps;
    for (const ScanStep& s : ComputeScanOrder(root)) {
      BranchScanCursor::FileStep step;
      step.file = segments_[s.seg]->file.get();
      step.bound = s.bound;
      steps.push_back(std::move(step));
    }
    return steps;
  };
  switch (spec.view) {
    case ScanView::kBranch: {
      std::shared_lock<std::shared_mutex> registry_lock(registry_mu_);
      Root root;
      {
        std::lock_guard<std::mutex> stripe_lock(
            stripes_.ForBranch(spec.branch));
        DECIBEL_ASSIGN_OR_RETURN(root, RootForBranch(spec.branch));
      }
      return std::unique_ptr<ScanCursor>(
          new BranchScanCursor(this, capture_order(root), spec));
    }
    case ScanView::kCommit: {
      DECIBEL_ASSIGN_OR_RETURN(Root root, RootForCommit(spec.commit));
      std::shared_lock<std::shared_mutex> registry_lock(registry_mu_);
      return std::unique_ptr<ScanCursor>(
          new BranchScanCursor(this, capture_order(root), spec));
    }
    case ScanView::kMulti: {
      std::shared_lock<std::shared_mutex> registry_lock(registry_mu_);
      std::vector<Root> roots;
      roots.reserve(spec.branches.size());
      {
        StripeLocks::MultiGuard stripe_locks(stripes_, spec.branches);
        for (BranchId b : spec.branches) {
          DECIBEL_ASSIGN_OR_RETURN(Root root, RootForBranch(b));
          roots.push_back(root);
        }
      }
      std::vector<WinnerTable> tables;
      DECIBEL_RETURN_NOT_OK(BuildWinnerTables(roots, &tables, nullptr));
      MultiWinnerCursor::Output output;
      for (uint32_t r = 0; r < tables.size(); ++r) {
        for (const auto& [pk, winner] : tables[r]) {
          if (winner.tombstone) continue;
          output[{winner.seg, winner.idx}].push_back(r);
        }
      }
      std::vector<HeapFile*> files;
      files.reserve(segments_.size());
      for (const auto& segment : segments_) files.push_back(segment->file.get());
      return std::unique_ptr<ScanCursor>(new MultiWinnerCursor(
          this, std::move(files), std::move(output), spec.branches, spec));
    }
    case ScanView::kDiff:
      return MakeDiffScanCursor(this, spec, &scan_counters_);
    case ScanView::kHeads:
      break;  // rejected by ValidateScanSpec
  }
  return Status::InvalidArgument("version-first: unsupported scan view");
}

Result<Record> VersionFirstEngine::Get(BranchId branch, int64_t pk) {
  // Point lookup through the branch's pk index (a tombstoned or absent
  // key is simply not in the map) — the old ancestry walk paid O(history)
  // page reads per Get, the cost §3.3 conceded to the bitmap engines.
  std::shared_lock<std::shared_mutex> registry_lock(registry_mu_);
  Loc loc;
  {
    std::lock_guard<std::mutex> stripe_lock(stripes_.ForBranch(branch));
    if (head_seg_.count(branch) == 0) {
      return Status::NotFound("version-first: unknown branch " +
                              std::to_string(branch));
    }
    auto branch_it = pk_index_.find(branch);
    auto rec_it = branch_it == pk_index_.end() ? PkIndex::iterator()
                                               : branch_it->second.find(pk);
    if (branch_it == pk_index_.end() || rec_it == branch_it->second.end()) {
      return Status::NotFound("version-first: no record with pk " +
                              std::to_string(pk));
    }
    loc = rec_it->second;
  }
  // Appended records are immutable; the read needs no lock.
  std::string buf;
  DECIBEL_RETURN_NOT_OK(FetchRecord(loc.seg, loc.idx, &buf));
  return Record(&schema_, Slice(buf));
}

// ------------------------------------------------------------ winner tables

Status VersionFirstEngine::BuildWinnerTables(
    const std::vector<Root>& roots, std::vector<WinnerTable>* tables,
    uint64_t* bytes_scanned) const {
  tables->assign(roots.size(), WinnerTable());

  // Per root: scan order and each segment's rank + bound within it.
  struct PerRoot {
    std::unordered_map<uint32_t, uint32_t> rank;
    std::unordered_map<uint32_t, uint64_t> bound;
  };
  std::vector<PerRoot> per_root(roots.size());
  std::map<uint32_t, uint64_t> union_bound;  // seg -> widest bound
  for (size_t r = 0; r < roots.size(); ++r) {
    const std::vector<ScanStep> order = ComputeScanOrder(roots[r]);
    for (uint32_t pos = 0; pos < order.size(); ++pos) {
      per_root[r].rank[order[pos].seg] = pos;
      per_root[r].bound[order[pos].seg] = order[pos].bound;
      uint64_t& ub = union_bound[order[pos].seg];
      ub = std::max(ub, order[pos].bound);
    }
  }

  // One reverse pass over every segment in the union of ancestries
  // ("multiple intermediate hash tables ... scanning the segment from the
  // branch point backwards", §3.3 — we fold the intermediate tables into
  // one winner table per branch keyed by scan rank).
  for (const auto& [seg, bound] : union_bound) {
    ReverseSegmentReader reader(segments_[seg]->file.get(), &schema_, bound);
    RecordRef rec;
    uint64_t idx;
    while (reader.Prev(&rec, &idx)) {
      if (bytes_scanned != nullptr) *bytes_scanned += schema_.record_size();
      const int64_t pk = rec.pk();
      for (size_t r = 0; r < roots.size(); ++r) {
        auto rank_it = per_root[r].rank.find(seg);
        if (rank_it == per_root[r].rank.end()) continue;
        if (idx >= per_root[r].bound[seg]) continue;
        const uint32_t rank = rank_it->second;
        auto [it, inserted] = (*tables)[r].try_emplace(pk);
        // Newer wins: smaller rank, then larger record index.
        if (inserted || rank < it->second.rank ||
            (rank == it->second.rank && idx > it->second.idx)) {
          it->second = Winner{seg, idx, rank, rec.tombstone()};
        }
      }
    }
    DECIBEL_RETURN_NOT_OK(reader.status());
  }
  return Status::OK();
}

Status VersionFirstEngine::FetchRecord(uint32_t seg, uint64_t idx,
                                       std::string* buf) const {
  return segments_[seg]->file->Get(idx, buf);
}

// --------------------------------------------------------------------- diff

Status VersionFirstEngine::Diff(BranchId a, BranchId b, DiffMode mode,
                                const DiffCallback& pos,
                                const DiffCallback& neg) {
  // Version-first diffs pay for full winner-table construction over both
  // ancestries ("the need to make multiple passes over the dataset to
  // identify the active records in both versions", §5.2).
  std::shared_lock<std::shared_mutex> registry_lock(registry_mu_);
  Root root_a, root_b;
  {
    StripeLocks::MultiGuard stripe_locks(stripes_, {a, b});
    DECIBEL_ASSIGN_OR_RETURN(root_a, RootForBranch(a));
    DECIBEL_ASSIGN_OR_RETURN(root_b, RootForBranch(b));
  }
  std::vector<WinnerTable> tables;
  DECIBEL_RETURN_NOT_OK(BuildWinnerTables({root_a, root_b}, &tables, nullptr));
  const WinnerTable& wa = tables[0];
  const WinnerTable& wb = tables[1];

  std::string buf, buf_other;
  auto emit = [&](const Winner& w, const DiffCallback& cb) -> Status {
    DECIBEL_RETURN_NOT_OK(FetchRecord(w.seg, w.idx, &buf));
    cb(RecordRef(&schema_, buf));
    return Status::OK();
  };
  // Merge-materialized copies mean two different locations can hold the
  // same logical record; content comparisons must fall back to bytes.
  auto same_content = [&](const Winner& x, const Winner& y,
                          bool* equal) -> Status {
    if (x.seg == y.seg && x.idx == y.idx) {
      *equal = true;
      return Status::OK();
    }
    DECIBEL_RETURN_NOT_OK(FetchRecord(x.seg, x.idx, &buf));
    DECIBEL_RETURN_NOT_OK(FetchRecord(y.seg, y.idx, &buf_other));
    *equal = buf == buf_other;
    return Status::OK();
  };

  for (const auto& [pk, winner] : wa) {
    if (winner.tombstone) continue;
    auto it = wb.find(pk);
    const bool present_b = it != wb.end() && !it->second.tombstone;
    bool differs;
    if (mode == DiffMode::kByKey) {
      differs = !present_b;
    } else if (!present_b) {
      differs = true;
    } else {
      bool equal;
      DECIBEL_RETURN_NOT_OK(same_content(winner, it->second, &equal));
      differs = !equal;
    }
    if (differs && pos) DECIBEL_RETURN_NOT_OK(emit(winner, pos));
  }
  for (const auto& [pk, winner] : wb) {
    if (winner.tombstone) continue;
    auto it = wa.find(pk);
    const bool present_a = it != wa.end() && !it->second.tombstone;
    bool differs;
    if (mode == DiffMode::kByKey) {
      differs = !present_a;
    } else if (!present_a) {
      differs = true;
    } else {
      bool equal;
      DECIBEL_RETURN_NOT_OK(same_content(winner, it->second, &equal));
      differs = !equal;
    }
    if (differs && neg) DECIBEL_RETURN_NOT_OK(emit(winner, neg));
  }
  return Status::OK();
}

// -------------------------------------------------------------------- merge

Status VersionFirstEngine::MergeWalk(CommitId left, CommitId right,
                                     CommitId base, const MergeWalkCallback& cb,
                                     MergeWalkStats* stats) {
  // Ancestry-aware walk. \p base must be a common ancestor of both sides
  // (the facade passes the version graph's LCA), so each side's visible
  // regions are base's regions plus a *suffix* — per-segment record
  // ranges beyond base's visibility bound — minus a possible *deficit*:
  // regions base sees but the side does not (the lca can sit on a third
  // branch, or later on a shared ancestor segment than the side's own
  // fork point). Two facts make suffix scanning sufficient:
  //
  //  1. A key with no version in a side's suffix resolves, on that side,
  //     to the first hit among base-pass positions *visible to the side*:
  //     the side's candidates are then a subset of base's, shared
  //     ancestors scan in the same relative order from either root, and
  //     any order-ambiguous versions were reconciled by the merge that
  //     joined their chains (merges materialize every differing key into
  //     the merged head, a descendant of both chains, so
  //     children-before-parents order pins the content regardless of
  //     tie-breaks). No visible hit at all means the key is absent on
  //     that side — base seeing a record in a side's deficit region must
  //     not resurrect it.
  //  2. A key's first hit walking a side's suffix in scan order is that
  //     side's winning content, by the same materialization argument.
  //
  // So: walk both suffixes (cheap — proportional to post-ancestor work,
  // not history size) to collect the candidate set, then resolve the
  // candidates' base states — and the suffix-less sides' states — with
  // one early-exiting pass over base's scan order. This replaces the
  // former three full winner-table passes over the union ancestry — the
  // cost §5.4 showed version-first losing on.
  std::shared_lock<std::shared_mutex> registry_lock(registry_mu_);
  DECIBEL_ASSIGN_OR_RETURN(Root root_l, RootForCommit(left));
  DECIBEL_ASSIGN_OR_RETURN(Root root_r, RootForCommit(right));
  DECIBEL_ASSIGN_OR_RETURN(Root root_b, RootForCommit(base));
  const uint32_t rs = schema_.record_size();

  // Per-root visibility bounds, seg -> bound (absent = invisible).
  std::unordered_map<uint32_t, uint64_t> coverage, vis_l, vis_r;
  for (const ScanStep& step : ComputeScanOrder(root_b)) {
    coverage[step.seg] = step.bound;
  }
  for (const ScanStep& step : ComputeScanOrder(root_l)) {
    vis_l[step.seg] = step.bound;
  }
  for (const ScanStep& step : ComputeScanOrder(root_r)) {
    vis_r[step.seg] = step.bound;
  }

  // pk -> the key's state at {left, right, base}; nullopt = not live.
  // A side whose done flag never rises is absent (no visible version
  // anywhere). The ordered map doubles as the ascending-pk emission
  // order.
  struct States {
    std::optional<Record> l, r, b;
    bool l_done = false, r_done = false, b_done = false;
  };
  std::map<int64_t, States> keys;

  auto walk_suffix = [&](const Root& root, bool is_left) -> Status {
    for (const ScanStep& step : ComputeScanOrder(root)) {
      auto cov = coverage.find(step.seg);
      const uint64_t lo = cov == coverage.end() ? 0 : cov->second;
      if (lo >= step.bound) continue;  // fully covered by base
      ReverseSegmentReader reader(segments_[step.seg]->file.get(), &schema_,
                                  step.bound);
      RecordRef rec;
      uint64_t idx;
      while (reader.Prev(&rec, &idx)) {
        if (idx < lo) break;  // descended into the base-covered range
        stats->bytes_processed += rs;
        States& s = keys[rec.pk()];
        bool& done = is_left ? s.l_done : s.r_done;
        if (done) continue;  // first suffix hit wins (fact 2)
        done = true;
        if (!rec.tombstone()) {
          (is_left ? s.l : s.r).emplace(&schema_, rec.data());
        }
      }
      DECIBEL_RETURN_NOT_OK(reader.status());
    }
    return Status::OK();
  };
  DECIBEL_RETURN_NOT_OK(walk_suffix(root_l, /*is_left=*/true));
  DECIBEL_RETURN_NOT_OK(walk_suffix(root_r, /*is_left=*/false));

  // One base pass, filtered to the candidates, stopping as soon as every
  // candidate is fully resolved. The first hit is the key's base state;
  // the first hit *visible to a suffix-less side* is that side's state
  // (fact 1). Candidates never seen are new inserts (absent at base).
  size_t unresolved = keys.size();
  auto visible = [](const std::unordered_map<uint32_t, uint64_t>& vis,
                    uint32_t seg, uint64_t idx) {
    auto it = vis.find(seg);
    return it != vis.end() && idx < it->second;
  };
  for (const ScanStep& step : ComputeScanOrder(root_b)) {
    if (unresolved == 0) break;
    ReverseSegmentReader reader(segments_[step.seg]->file.get(), &schema_,
                                step.bound);
    RecordRef rec;
    uint64_t idx;
    while (unresolved != 0 && reader.Prev(&rec, &idx)) {
      stats->bytes_processed += rs;
      auto it = keys.find(rec.pk());
      if (it == keys.end()) continue;
      States& s = it->second;
      if (s.b_done && s.l_done && s.r_done) continue;
      if (!s.b_done) {
        s.b_done = true;
        if (!rec.tombstone()) s.b.emplace(&schema_, rec.data());
      }
      if (!s.l_done && visible(vis_l, step.seg, idx)) {
        s.l_done = true;
        if (!rec.tombstone()) s.l.emplace(&schema_, rec.data());
      }
      if (!s.r_done && visible(vis_r, step.seg, idx)) {
        s.r_done = true;
        if (!rec.tombstone()) s.r.emplace(&schema_, rec.data());
      }
      if (s.b_done && s.l_done && s.r_done) --unresolved;
    }
    DECIBEL_RETURN_NOT_OK(reader.status());
  }

  for (auto& [pk, s] : keys) {
    MergeWalkItem item;
    item.pk = pk;
    std::optional<RecordRef> ref_l, ref_r, ref_b;
    if (s.b.has_value()) {
      ref_b.emplace(s.b->ref());
      item.base = &*ref_b;
    }
    if (s.l.has_value()) {
      ref_l.emplace(s.l->ref());
      item.left = &*ref_l;
    }
    if (s.r.has_value()) {
      ref_r.emplace(s.r->ref());
      item.right = &*ref_r;
    }
    ++stats->keys_emitted;
    DECIBEL_RETURN_NOT_OK(cb(item));
  }
  return Status::OK();
}

// -------------------------------------------------------------------- stats

EngineStats VersionFirstEngine::Stats() const {
  EngineStats stats;
  std::shared_lock<std::shared_mutex> registry_lock(registry_mu_);
  for (const auto& segment : segments_) {
    stats.data_bytes += segment->file->SizeBytes();
    stats.num_records += segment->file->num_records();
  }
  stats.num_segments = segments_.size();
  {
    // The pk indexes are per-branch state guarded by the stripes.
    StripeLocks::AllGuard stripe_locks(stripes_);
    for (const auto& [branch, pks] : pk_index_) {
      stats.index_memory_bytes += pks.size() * 24;
    }
  }
  {
    // Commits are (segment, offset) pairs — the whole registry is tiny.
    std::lock_guard<std::mutex> commit_lock(commit_mu_);
    stats.commit_store_bytes = commits_.size() * 20;
  }
  stats.rows_scanned = scan_counters_.rows();
  stats.bytes_scanned = scan_counters_.bytes();
  stats.bytes_read = scan_counters_.bytes_read();
  stats.segments_skipped = scan_counters_.segments_skipped();
  stats.pages_skipped = scan_counters_.pages_skipped();
  return stats;
}

}  // namespace decibel
